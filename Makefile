# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test test-short race bench bench-record bench-compare figures examples vet fmt

all: check

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem -run XXX ./...

# Record a benchmark baseline (BENCH_<gitsha>.json) and diff two
# recordings; see EXPERIMENTS.md "Recording and comparing benchmarks".
bench-record:
	go run ./cmd/scbench record

BASE ?= BENCH_baseline.json
NEW ?=
bench-compare:
	go run ./cmd/scbench compare $(BASE) $(NEW)

# Regenerate every table and figure of the paper (DESIGN.md maps them).
figures:
	go run ./cmd/scbench all

examples:
	go run ./examples/quickstart
	go run ./examples/patterns
	go run ./examples/silica
	go run ./examples/scaling
