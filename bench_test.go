// Package sctuple_test holds the benchmark harness: one testing.B
// benchmark per table/figure of the paper (DESIGN.md maps them), plus
// the ablation benches for the design choices called out there.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Printable report versions of the figures live in cmd/scbench.
package sctuple_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sctuple/internal/bench"
	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/parmd"
	"sctuple/internal/perfmodel"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
	"sctuple/internal/workload"
)

// --- Pattern construction (paper Tables 2-5, Figures 5-6) ---

func BenchmarkPatternGen(b *testing.B) {
	for n := 2; n <= 4; n++ {
		b.Run(fmt.Sprintf("SC-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.SC(n)
			}
		})
		b.Run(fmt.Sprintf("FS-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.GenerateFS(n)
			}
		})
	}
}

func BenchmarkPatternCompleteness(b *testing.B) {
	for n := 2; n <= 3; n++ {
		sc := core.SC(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !sc.IsComplete() {
					b.Fatal("incomplete")
				}
			}
		})
	}
}

// --- Tuple enumeration (Figure 7 and §5.1 search costs) ---

// silicaBench builds a uniform silica configuration binned on a
// lattice with the given cell side.
func silicaBench(b *testing.B, n int, cellSide float64) ([]geom.Vec3, *cell.Binning) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cfg := workload.UniformSilica(rng, n)
	lat, err := cell.NewLattice(cfg.Box, cellSide)
	if err != nil {
		b.Fatal(err)
	}
	return cfg.Pos, cell.NewBinning(lat, cfg.Pos)
}

func BenchmarkFig7TripletCount(b *testing.B) {
	pos, bin := silicaBench(b, 3000, 2.6)
	for _, tc := range []struct {
		name    string
		pattern *core.Pattern
		dedup   tuple.Dedup
	}{
		{"SC", core.SC(3), tuple.DedupAuto},
		{"FS", core.FS(3), tuple.DedupNone},
	} {
		e, err := tuple.NewEnumerator(bin, tc.pattern, 2.6, tc.dedup)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			var emitted int64
			for i := 0; i < b.N; i++ {
				st := e.Count(pos)
				emitted = st.Emitted
			}
			b.ReportMetric(float64(emitted), "triplets")
		})
	}
}

func BenchmarkEnumeratePairs(b *testing.B) {
	pos, bin := silicaBench(b, 3000, 5.5)
	for _, shell := range []core.Shell{core.ShellFull, core.ShellHalf, core.ShellEighth} {
		e, err := tuple.NewEnumerator(bin, shell.Pattern(), 5.5, tuple.DedupAuto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(shell.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Count(pos)
			}
		})
	}
}

func BenchmarkEnumerateTriplets(b *testing.B) {
	pos, bin := silicaBench(b, 3000, 2.6)
	for _, tc := range []struct {
		name    string
		pattern *core.Pattern
	}{
		{"SC", core.SC(3)},
		{"FS", core.FS(3)},
	} {
		e, err := tuple.NewEnumerator(bin, tc.pattern, 2.6, tuple.DedupAuto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Count(pos)
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCollapse isolates the R-COLLAPSE phase: the
// OC-shifted but uncollapsed pattern must search about twice as hard
// for the identical force set.
func BenchmarkAblationCollapse(b *testing.B) {
	pos, bin := silicaBench(b, 3000, 2.6)
	shiftOnly := core.OCShift(core.GenerateFS(3))
	for _, tc := range []struct {
		name    string
		pattern *core.Pattern
	}{
		{"with-collapse", core.SC(3)},
		{"without-collapse", shiftOnly},
	} {
		e, err := tuple.NewEnumerator(bin, tc.pattern, 2.6, tuple.DedupAuto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			var st tuple.Stats
			for i := 0; i < b.N; i++ {
				st = e.Count(pos)
			}
			b.ReportMetric(float64(st.Candidates), "candidates")
		})
	}
}

// BenchmarkAblationShift isolates OC-SHIFT: collapse-only (half-shell
// style) versus the full SC pattern. Search cost is equal; the win is
// the footprint, reported as a metric.
func BenchmarkAblationShift(b *testing.B) {
	pos, bin := silicaBench(b, 3000, 2.6)
	collapseOnly := core.RCollapse(core.GenerateFS(3))
	for _, tc := range []struct {
		name    string
		pattern *core.Pattern
	}{
		{"with-shift", core.SC(3)},
		{"without-shift", collapseOnly},
	} {
		e, err := tuple.NewEnumerator(bin, tc.pattern, 2.6, tuple.DedupAuto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Count(pos)
			}
			b.ReportMetric(float64(tc.pattern.ImportVolume(8)), "import-cells-l8")
		})
	}
}

// BenchmarkAblationHybridPrune contrasts Hybrid-MD's pair-list triplet
// pruning against the SC cell search on the same silica system — the
// §5 trade-off driving Figure 8's crossover.
func BenchmarkAblationHybridPrune(b *testing.B) {
	model := potential.NewSilicaModel()
	rng := rand.New(rand.NewSource(2))
	cfg := workload.UniformSilica(rng, 3000)
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		b.Fatal(err)
	}
	engines := map[string]md.Engine{}
	sc, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		b.Fatal(err)
	}
	engines["cell-search"] = sc
	hy, err := md.NewHybridEngine(model, sys.Box)
	if err != nil {
		b.Fatal(err)
	}
	engines["list-prune"] = hy
	for _, name := range []string{"cell-search", "list-prune"} {
		e := engines[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Compute(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e.Stats().SearchCandidates), "candidates")
		})
	}
}

// --- Full force evaluation (§5 workload, serial engines) ---

func BenchmarkForceSilica(b *testing.B) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	cfg.Thermalize(rand.New(rand.NewSource(3)), model, 300)
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e md.Engine) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Compute(sys); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sys.N()), "atoms")
	}
	scE, _ := md.NewCellEngine(model, sys.Box, md.FamilySC)
	fsE, _ := md.NewCellEngine(model, sys.Box, md.FamilyFS)
	hyE, _ := md.NewHybridEngine(model, sys.Box)
	b.Run("SC-MD", func(b *testing.B) { run(b, scE) })
	b.Run("FS-MD", func(b *testing.B) { run(b, fsE) })
	b.Run("Hybrid-MD", func(b *testing.B) { run(b, hyE) })
}

// BenchmarkKernel sweeps the unified force kernel's worker count over
// the silica pair+triplet model (§6 concurrency): the same
// kernel.Sharded accumulator under 1, 2, 4, and GOMAXPROCS workers.
func BenchmarkKernel(b *testing.B) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	cfg.Thermalize(rand.New(rand.NewSource(6)), model, 300)
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		e, err := md.NewConcurrentCellEngine(model, sys.Box, md.FamilySC, workers)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Compute(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.N()), "atoms")
		})
	}
}

// --- Parallel stepping (Figure 8/9 substrate) ---

func BenchmarkParallelStep(b *testing.B) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	cfg.Thermalize(rand.New(rand.NewSource(4)), model, 300)
	for _, scheme := range parmd.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			cart := comm.NewCart(8)
			for i := 0; i < b.N; i++ {
				if _, err := parmd.Run(cfg, model, parmd.Options{
					Scheme: scheme, Cart: cart, Dt: 1, Steps: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRouting compares SC-MD's 3-step forwarded octant
// import against the full-shell 6-step exchange at equal physics,
// reporting the measured per-step halo traffic.
func BenchmarkAblationRouting(b *testing.B) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	for _, tc := range []struct {
		name   string
		scheme parmd.Scheme
	}{
		{"octant-3step", parmd.SchemeSC},
		{"fullshell-6step", parmd.SchemeFS},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cart := comm.NewCart(8)
			var imported int64
			for i := 0; i < b.N; i++ {
				res, err := parmd.Run(cfg, model, parmd.Options{
					Scheme: tc.scheme, Cart: cart, Dt: 1, Steps: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				imported = res.MaxRank().AtomsImported
			}
			b.ReportMetric(float64(imported), "halo-atoms")
		})
	}
}

// --- Figures 8 and 9 (performance-model generation) ---

func BenchmarkFig8Model(b *testing.B) {
	for _, m := range perfmodel.Machines() {
		mod, err := perfmodel.NewModel(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name, func(b *testing.B) {
			grains := bench.DefaultFig8Grains()
			for i := 0; i < b.N; i++ {
				rows := mod.Fig8(grains)
				if len(rows) != len(grains) {
					b.Fatal("short sweep")
				}
			}
		})
	}
}

func BenchmarkFig9Model(b *testing.B) {
	mod, err := perfmodel.NewModel(perfmodel.BlueGeneQ())
	if err != nil {
		b.Fatal(err)
	}
	tasks := []int{64, 256, 1024, 4096, 16384, 32768}
	for i := 0; i < b.N; i++ {
		rows := mod.Fig9(0.79e6, tasks, 64)
		if len(rows) != len(tasks) {
			b.Fatal("short sweep")
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkBinning(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cfg := workload.UniformSilica(rng, 10000)
	lat, err := cell.NewLattice(cfg.Box, 5.5)
	if err != nil {
		b.Fatal(err)
	}
	bin := cell.NewBinning(lat, cfg.Pos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin.Rebin(cfg.Pos)
	}
}

func BenchmarkCommHaloRing(b *testing.B) {
	// A 3-step ring exchange of a 10 KB payload across 8 ranks: the
	// communication substrate's overhead floor.
	w := comm.NewWorld(8)
	payload := make([]byte, 10240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(p *comm.Proc) error {
			for step := 0; step < 3; step++ {
				next := (p.Rank() + 1) % p.Size()
				prev := (p.Rank() + p.Size() - 1) % p.Size()
				buf := append([]byte(nil), payload...)
				p.SendRecv(next, step, buf, prev, step)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVashishtaPair(b *testing.B) {
	model := potential.NewSilicaModel()
	pair := model.Terms[0]
	pos := []geom.Vec3{{}, geom.V(2.2, 1.1, 0.7)}
	f := make([]geom.Vec3, 2)
	sp := []int32{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair.Eval(sp, pos, f)
	}
}

func BenchmarkVashishtaTriplet(b *testing.B) {
	model := potential.NewSilicaModel()
	trip := model.Terms[1]
	pos := []geom.Vec3{geom.V(1.6, 0, 0), {}, geom.V(0, 1.6, 0.4)}
	f := make([]geom.Vec3, 3)
	sp := []int32{1, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trip.Eval(sp, pos, f)
	}
}
