// Command scbench regenerates every table and figure of the paper's
// analysis and evaluation sections (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results):
//
//	scbench patterns          pattern-cardinality analysis (Eq. 25-29, Fig. 5/6)
//	scbench imports           import-volume analysis (Eq. 33)
//	scbench fig7              triplet-count measurement (Figure 7)
//	scbench fig8 -machine m   runtime vs granularity (Figure 8a/8b)
//	scbench fig9 -machine m   strong scaling (Figure 9a/9b; -extreme for §5.3)
//	scbench midpoint          §6 cell-refinement trade-off (midpoint generalization)
//	scbench ablate            measured ablations of each design choice
//	scbench validate          real parallel runs vs performance model
//	                          (import atoms, search cost, and wire bytes
//	                          from the comm runtime's per-tag counters)
//	scbench workers           intra-node worker sweep of the force kernel (§6)
//	scbench record            record a machine-readable benchmark (BENCH_<sha>.json)
//	scbench compare old new   diff two recorded benchmarks; non-zero exit on regression
//	scbench watch addr        poll a live scmd -serve run and render a terminal dashboard
//	scbench analyze path      replay anomaly detectors over a postmortem bundle
//	                          (scmd -postmortem) or step log; non-zero exit on
//	                          hard anomalies
//	scbench all               everything above (except record/compare/watch/analyze)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"sctuple/internal/bench"
	"sctuple/internal/obs/serve"
	"sctuple/internal/perfmodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "patterns":
		err = runPatterns(args)
	case "imports":
		err = runImports(args)
	case "midpoint":
		err = runMidpoint(args)
	case "fig7":
		err = runFig7(args)
	case "fig8":
		err = runFig8(args)
	case "fig9":
		err = runFig9(args)
	case "ablate":
		err = runAblate(args)
	case "validate":
		err = runValidate(args)
	case "workers":
		err = runWorkers(args)
	case "transport":
		err = runTransport(args)
	case "record":
		err = runRecord(args)
	case "compare":
		err = runCompare(args)
	case "watch":
		err = runWatch(args)
	case "analyze":
		err = runAnalyze(args)
	case "all":
		err = runAll()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scbench {patterns|imports|midpoint|fig7|fig8|fig9|ablate|validate|workers|transport|record|compare|watch|analyze|all} [flags]")
	fmt.Fprintln(os.Stderr, "  transport: chan vs socket fabric on one workload, with a forces bit-identity check")
	fmt.Fprintln(os.Stderr, "  fig8/fig9 flags: -machine {xeon|bgq}; fig9 also -extreme")
	fmt.Fprintln(os.Stderr, "  record flags: -out file -atoms n -steps n -ranks n -seed n -sha s")
	fmt.Fprintln(os.Stderr, "  compare: scbench compare old.json new.json [-threshold pct] [-max-allocs n]")
	fmt.Fprintln(os.Stderr, "  watch:   scbench watch host:port [-every dur] [-n polls] [-plain]  (pairs with scmd -serve)")
	fmt.Fprintln(os.Stderr, "  analyze: scbench analyze {bundle-dir|steps.jsonl}  (pairs with scmd -postmortem)")
}

func machineFlag(fs *flag.FlagSet) *string {
	return fs.String("machine", "xeon", "machine profile: xeon or bgq")
}

func pickMachine(name string) (perfmodel.Machine, error) {
	switch name {
	case "xeon":
		return perfmodel.IntelXeon(), nil
	case "bgq":
		return perfmodel.BlueGeneQ(), nil
	}
	return perfmodel.Machine{}, fmt.Errorf("unknown machine %q (want xeon or bgq)", name)
}

func runPatterns(args []string) error {
	fs := flag.NewFlagSet("patterns", flag.ExitOnError)
	maxN := fs.Int("maxn", 5, "largest tuple length to analyze")
	fs.Parse(args)
	bench.PatternsReport(os.Stdout, *maxN)
	return nil
}

func runImports(args []string) error {
	fs := flag.NewFlagSet("imports", flag.ExitOnError)
	fs.Parse(args)
	bench.ImportsReport(os.Stdout, []int{2, 3, 4}, []int{2, 4, 8, 16})
	return nil
}

func runMidpoint(args []string) error {
	fs := flag.NewFlagSet("midpoint", flag.ExitOnError)
	n := fs.Int("n", 2, "tuple length")
	maxK := fs.Int("maxk", 4, "finest cell radius (cells of r_cut/k)")
	fs.Parse(args)
	bench.MidpointReport(os.Stdout, *n, *maxK, 11.0)
	return nil
}

func runFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	samples := fs.Int("samples", 3, "configurations averaged per point")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	return bench.Fig7Report(os.Stdout, []int{5, 6, 8, 10, 12, 14, 16}, *samples, *seed)
}

func runFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	mName := machineFlag(fs)
	fs.Parse(args)
	m, err := pickMachine(*mName)
	if err != nil {
		return err
	}
	return bench.Fig8Report(os.Stdout, m, bench.DefaultFig8Grains())
}

func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ExitOnError)
	mName := machineFlag(fs)
	extreme := fs.Bool("extreme", false, "run the 50.3M-atom extreme-scale benchmark (§5.3)")
	fs.Parse(args)
	m, err := pickMachine(*mName)
	if err != nil {
		return err
	}
	if *extreme {
		if *mName != "bgq" {
			return fmt.Errorf("the extreme-scale benchmark ran on BlueGene/Q; use -machine bgq")
		}
		return bench.Fig9Report(os.Stdout, m, 50.3e6,
			[]int{128, 1024, 8192, 65536, 262144, 524288}, 128, 4)
	}
	switch *mName {
	case "xeon":
		return bench.Fig9Report(os.Stdout, m, 0.88e6,
			[]int{12, 24, 48, 96, 192, 384, 768}, 12, 1)
	default:
		return bench.Fig9Report(os.Stdout, m, 0.79e6,
			[]int{16, 64, 256, 1024, 4096, 8192}, 16, 4)
	}
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	atoms := fs.Int("atoms", 2000, "atom count of the ablation system")
	steps := fs.Int("steps", 20, "trajectory steps for the skin ablation")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	return bench.AblateReport(os.Stdout, *atoms, *steps, *seed)
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	atoms := fs.Int("atoms", 3000, "approximate atom count of the validation system")
	steps := fs.Int("steps", 3, "MD steps per run")
	seed := fs.Int64("seed", 1, "workload seed")
	trace := fs.String("trace", "", "write the runs' span timelines to this Chrome trace-event file")
	fs.Parse(args)
	return bench.ValidateReportTrace(os.Stdout, *atoms, []int{1, 8}, *steps, *seed, *trace)
}

func runWorkers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	atoms := fs.Int("atoms", 3000, "atom count of the sweep system")
	ranks := fs.Int("ranks", 8, "ranks of the rank-parallel sweep")
	seed := fs.Int64("seed", 1, "workload seed")
	trace := fs.String("trace", "", "write the rank-parallel runs' span timelines to this Chrome trace-event file")
	fs.Parse(args)
	return bench.WorkersReportTrace(os.Stdout, *atoms, *ranks, []int{1, 2, 4, runtime.GOMAXPROCS(0)}, *seed, *trace)
}

func runTransport(args []string) error {
	fs := flag.NewFlagSet("transport", flag.ExitOnError)
	atoms := fs.Int("atoms", 3000, "atom count of the comparison system")
	ranks := fs.Int("ranks", 4, "ranks (goroutines on chan, socket endpoints on socket)")
	steps := fs.Int("steps", 10, "MD steps per run")
	seed := fs.Int64("seed", 1, "workload seed")
	network := fs.String("net", "unix", "socket network: unix or tcp (loopback)")
	fs.Parse(args)
	return bench.TransportReport(os.Stdout, *atoms, *ranks, *steps, *seed, *network)
}

func runRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output path (default BENCH_<sha>.json)")
	atoms := fs.Int("atoms", 1500, "approximate atom count per workload")
	steps := fs.Int("steps", 10, "NVE steps per workload")
	ranks := fs.Int("ranks", 2, "ranks of the in-process world")
	workers := fs.Int("workers", 1, "intra-rank force workers")
	seed := fs.Int64("seed", 1, "thermalization seed (recorded in the file)")
	sha := fs.String("sha", "", "git SHA to stamp (default: git rev-parse HEAD)")
	fs.Parse(args)
	if *sha == "" {
		*sha = gitSHA()
	}
	bf, err := bench.Record(bench.RecordOptions{
		Atoms: *atoms, Steps: *steps, Ranks: *ranks, Workers: *workers,
		Seed: *seed, GitSHA: *sha,
	})
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + shortRef(*sha) + ".json"
	}
	if err := bench.WriteBenchFile(path, bf); err != nil {
		return err
	}
	healthy := true
	for _, w := range bf.Workloads {
		healthy = healthy && w.Health.Healthy()
	}
	fmt.Printf("recorded %d workloads to %s (seed %d, healthy %v)\n",
		len(bf.Workloads), path, bf.Seed, healthy)
	return nil
}

// runCompare accepts flags before or after the two positional paths
// (`scbench compare old.json new.json -threshold 10`), so the
// documented invocation order works even though package flag stops at
// the first non-flag argument.
func runCompare(args []string) error {
	var pos, flags []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flags = append(flags, args[i])
			if !strings.Contains(args[i], "=") && i+1 < len(args) {
				i++
				flags = append(flags, args[i])
			}
			continue
		}
		pos = append(pos, args[i])
	}
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent")
	maxAllocs := fs.Float64("max-allocs", 100, "absolute allocs_per_step ceiling on the new record (0 disables)")
	fs.Parse(flags)
	if len(pos) != 2 {
		return fmt.Errorf("compare needs exactly two files: scbench compare old.json new.json [-threshold pct] [-max-allocs n]")
	}
	return bench.CompareReport(os.Stdout, pos[0], pos[1], *threshold, *maxAllocs)
}

// runWatch accepts the address before or after the flags, like
// runCompare, so `scbench watch :9190 -every 2s` works.
func runWatch(args []string) error {
	var pos, flags []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flags = append(flags, args[i])
			if !strings.Contains(args[i], "=") && i+1 < len(args) && args[i] != "-plain" {
				i++
				flags = append(flags, args[i])
			}
			continue
		}
		pos = append(pos, args[i])
	}
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	every := fs.Duration("every", time.Second, "poll interval")
	polls := fs.Int("n", 0, "stop after this many polls (0 = until the run completes)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing (for logs / non-TTY output)")
	fs.Parse(flags)
	if len(pos) != 1 {
		return fmt.Errorf("watch needs one address: scbench watch host:port [-every dur] [-n polls] [-plain]")
	}
	return serve.Watch(os.Stdout, pos[0], serve.WatchOptions{
		Every: *every, Iterations: *polls, Plain: *plain,
	})
}

func runAnalyze(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("analyze needs one path: scbench analyze {bundle-dir|steps.jsonl}")
	}
	return bench.AnalyzeReport(os.Stdout, args[0])
}

// gitSHA best-effort resolves HEAD; record still works outside a git
// checkout (the SHA is then empty and the default filename generic).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func shortRef(sha string) string {
	if sha == "" {
		return "local"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func runAll() error {
	bench.PatternsReport(os.Stdout, 5)
	fmt.Println()
	bench.ImportsReport(os.Stdout, []int{2, 3, 4}, []int{2, 4, 8, 16})
	fmt.Println()
	bench.MidpointReport(os.Stdout, 2, 4, 11.0)
	fmt.Println()
	if err := bench.Fig7Report(os.Stdout, []int{5, 6, 8, 10, 12, 14, 16}, 3, 1); err != nil {
		return err
	}
	for _, name := range []string{"xeon", "bgq"} {
		m, _ := pickMachine(name)
		fmt.Println()
		if err := bench.Fig8Report(os.Stdout, m, bench.DefaultFig8Grains()); err != nil {
			return err
		}
	}
	fmt.Println()
	mx, _ := pickMachine("xeon")
	if err := bench.Fig9Report(os.Stdout, mx, 0.88e6, []int{12, 24, 48, 96, 192, 384, 768}, 12, 1); err != nil {
		return err
	}
	fmt.Println()
	mb, _ := pickMachine("bgq")
	if err := bench.Fig9Report(os.Stdout, mb, 0.79e6, []int{16, 64, 256, 1024, 4096, 8192}, 16, 4); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.Fig9Report(os.Stdout, mb, 50.3e6, []int{128, 1024, 8192, 65536, 262144, 524288}, 128, 4); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.AblateReport(os.Stdout, 2000, 20, 1); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.ValidateReport(os.Stdout, 3000, []int{1, 8}, 3, 1); err != nil {
		return err
	}
	fmt.Println()
	return bench.WorkersReport(os.Stdout, 3000, 8, []int{1, 2, 4, runtime.GOMAXPROCS(0)}, 1)
}
