// Command scmd runs many-body molecular-dynamics simulations with the
// shift-collapse n-tuple engines:
//
//	scmd -model silica -engine sc -cells 3 -steps 100 -temp 300
//	scmd -model lj -engine hybrid -atoms 864 -steps 500 -dt 2
//	scmd -model silica -engine sc -ranks 8 -steps 100
//
// Models: silica (Vashishta SiO₂, the paper's benchmark application),
// lj (Lennard-Jones argon), sw (Stillinger-Weber silicon), torsion
// (LJ + 4-body dihedral). Engines: sc (SC-MD), fs (FS-MD), hybrid
// (Hybrid-MD). With -ranks > 1 the run uses the parallel message-
// passing stack of the paper's benchmarks (in-process ranks).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sctuple/internal/analysis"
	"sctuple/internal/comm"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
	"sctuple/internal/obs/health"
	"sctuple/internal/obs/serve"
	"sctuple/internal/parmd"
	"sctuple/internal/perfmodel"
	"sctuple/internal/potential"
	"sctuple/internal/trajio"
	"sctuple/internal/workload"
)

func main() {
	var (
		modelName  = flag.String("model", "silica", "potential model: silica, lj, sw, torsion")
		engineName = flag.String("engine", "sc", "force engine: sc, fs, hybrid")
		atoms      = flag.Int("atoms", 0, "atom count for fluid workloads (lj, torsion)")
		cells      = flag.Int("cells", 3, "supercell count per axis for crystal workloads (silica, sw)")
		steps      = flag.Int("steps", 100, "MD steps")
		dt         = flag.Float64("dt", 1.0, "time step (fs)")
		temp       = flag.Float64("temp", 300, "initial temperature (K)")
		thermostat = flag.Float64("thermostat", 0, "Berendsen target temperature (K), 0 = NVE")
		ranks      = flag.Int("ranks", 1, "parallel ranks (in-process); 1 = serial")
		every      = flag.Int("report", 20, "report interval (steps)")
		seed       = flag.Int64("seed", 1, "random seed")
		trajPath   = flag.String("traj", "", "write an extended-XYZ trajectory to this file (serial runs)")
		analyze    = flag.Bool("analyze", false, "print structure analysis (RDF peaks, angles) after the run")
		skin       = flag.Float64("skin", 0, "Verlet-list skin (Å) for the hybrid engine; 0 rebuilds every step")
		workers    = flag.Int("workers", 1, "worker goroutines per force evaluation, serial engines and per rank in parallel runs (0 = GOMAXPROCS)")
		noOverlap  = flag.Bool("no-overlap", false, "disable overlapping halo communication with interior force computation; parallel runs only")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event span timeline (one track per rank) to this file; parallel runs only")
		metricsOut = flag.String("metrics", "", "write per-step JSONL telemetry records and a final metrics snapshot to this file; parallel runs only")
		serveAddr  = flag.String("serve", "", "serve live telemetry on this address (e.g. :9190): /metrics /healthz /steps /phases /trace + /debug/pprof")
		pprofAddr  = flag.String("pprof", "", "deprecated alias for -serve (kept for old scripts; pprof rides on the -serve mux)")
		voidFrac   = flag.Float64("void", 0, "carve a spherical void of this diameter fraction out of a uniform fluid workload (0 = off); uses -atoms (default 6000)")
		balance    = flag.Bool("balance", false, "adaptive repartitioning: move slab boundaries toward equal measured force load; parallel runs only")
		balanceEv  = flag.Int("balance-every", 0, "balance-check cadence in steps (0 = default 20)")
		balanceThr = flag.Float64("balance-threshold", 0, "force-phase imbalance (max/mean) that triggers a repartition (0 = default 1.2)")
		healthEv   = flag.Int("health", 0, "run invariant health probes every N steps (0 = off); parallel runs only")
		parityEv   = flag.Int("parity", 0, "SC-vs-FS tuple-parity probe every N steps (0 = off; expensive, implies -health); parallel runs only")
		abortFail  = flag.Bool("abort-on-fail", false, "abort the run when a health probe fails")
		postmortem = flag.String("postmortem", "", "on abort (rank failure, health fail, SIGINT/SIGTERM) write a postmortem bundle to this directory; parallel runs only")
		faultSpec  = flag.String("fault", "", "inject a message fault: class[:N] corrupts traffic of that class (migrate, halo, force, health, balance) after N clean messages; parallel runs only")
		modelCheck = flag.Bool("model-check", false, "calibrate the perfmodel in the background and flag steps drifting from its prediction; parallel runs only")
		logFormat  = flag.String("log", "", "structured run log to stderr: text or json")
		transport  = flag.String("transport", "chan", "parallel transport: chan (in-process goroutine ranks) or socket (one OS process per rank over a length-prefixed wire protocol)")
		socketNet  = flag.String("socket-net", "unix", "socket transport network: unix or tcp (loopback)")
		dumpForces = flag.String("dump-forces", "", "after a parallel run, write the final per-atom forces as hex float64 bits to this file (for bit-identity comparison across transports)")
		killRank   = flag.Int("kill-rank", -1, "socket fault drill: this worker rank exits hard at -kill-step, exercising the fleet's failure path (-1 = off)")
		killStep   = flag.Int("kill-step", 3, "socket fault drill: step at which -kill-rank exits")
		workerRank = flag.Int("worker-rank", -1, "internal: run as the worker process for this rank (set by the socket launcher)")
		rendezvous = flag.String("rendezvous", "", "internal: rendezvous address of the socket launcher")
		sockToken  = flag.String("socket-token", "", "internal: session token of the socket launcher")
	)
	flag.Parse()

	if *serveAddr == "" && *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "scmd: -pprof is deprecated; use -serve (pprof is mounted on the telemetry mux)")
		*serveAddr = *pprofAddr
	}

	var logger *obs.Logger
	switch *logFormat {
	case "":
	case "text":
		logger = obs.TextLogger(os.Stderr, slog.LevelInfo)
	case "json":
		logger = obs.JSONLogger(os.Stderr, slog.LevelInfo)
	default:
		fmt.Fprintf(os.Stderr, "scmd: unknown -log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}

	opts := serialOpts{traj: *trajPath, analyze: *analyze, skin: *skin, workers: *workers}
	tel := telemetryOpts{
		trace: *tracePath, metrics: *metricsOut, serve: *serveAddr, log: logger,
		healthEvery: *healthEv, parityEvery: *parityEv, abortOnFail: *abortFail,
		noOverlap: *noOverlap,
		balance:   *balance, balanceEvery: *balanceEv, balanceThreshold: *balanceThr,
		postmortem: *postmortem, fault: *faultSpec, modelCheck: *modelCheck,
	}
	sock := socketOpts{
		transport: *transport, network: *socketNet, dump: *dumpForces,
		killRank: *killRank, killStep: *killStep,
		workerRank: *workerRank, rendezvous: *rendezvous, token: *sockToken,
	}
	if err := run(*modelName, *engineName, *atoms, *cells, *steps, *dt, *temp, *thermostat, *ranks, *every, *seed, *voidFrac, opts, tel, sock); err != nil {
		fmt.Fprintln(os.Stderr, "scmd:", err)
		os.Exit(1)
	}
}

// telemetryOpts carries the parallel-run observability outputs and
// exchange-mode selection.
type telemetryOpts struct {
	trace       string
	metrics     string
	serve       string
	log         *obs.Logger
	healthEvery int
	parityEvery int
	abortOnFail bool
	noOverlap   bool

	balance          bool
	balanceEvery     int
	balanceThreshold float64

	postmortem string
	fault      string
	modelCheck bool
}

// serialOpts carries the optional serial-run features.
type serialOpts struct {
	traj    string
	analyze bool
	skin    float64
	workers int
}

func run(modelName, engineName string, atoms, cells, steps int, dt, temp, thermostat float64, ranks, every int, seed int64, voidFrac float64, opts serialOpts, tel telemetryOpts, sock socketOpts) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		model *potential.Model
		cfg   *workload.Config
	)
	switch modelName {
	case "silica":
		model = potential.NewSilicaModel()
		cfg = workload.BetaCristobalite(cells, cells, cells)
	case "lj":
		model = potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
		if atoms == 0 {
			atoms = 864
		}
		cfg = workload.LJFluid(rng, atoms, 0.55, 3.4)
	case "sw":
		model = potential.NewStillingerWeberModel(potential.SiliconSW(), 28.0855)
		if atoms == 0 {
			atoms = 1000
		}
		cfg = workload.LJFluid(rng, atoms, 0.45, 2.0951)
	case "torsion":
		model = potential.NewTorsionModel(0.05, 1.8, 0.02, 1.0, 2.5, 12.0)
		if atoms == 0 {
			atoms = 512
		}
		cfg = workload.LJFluid(rng, atoms, 0.2, 1.0)
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	if voidFrac > 0 {
		if voidFrac >= 1 {
			return fmt.Errorf("-void %g must be in (0, 1)", voidFrac)
		}
		// The void workload replaces the model's default configuration: a
		// uniform fluid at amorphous-silica density with an off-center
		// spherical hole — the nonuniform load the adaptive balancer is
		// for.
		n := atoms
		if n == 0 {
			n = 6000
		}
		cfg = workload.Void(rng, n, voidFrac)
		if len(model.Species) == 1 {
			for i := range cfg.Species {
				cfg.Species[i] = 0
			}
		}
	}
	if temp > 0 {
		cfg.Thermalize(rng, model, temp)
	}
	fmt.Printf("model %s: %d atoms in %v\n", model.Name, cfg.N(), cfg.Box)

	if ranks > 1 {
		if opts.traj != "" {
			return fmt.Errorf("-traj is supported for serial runs only")
		}
		switch sock.transport {
		case "socket":
			return runSocketMode(cfg, model, engineName, steps, dt, ranks, every, opts.workers, tel, sock)
		case "chan":
			return runParallel(cfg, model, engineName, steps, dt, ranks, every, opts.workers, tel, sock.dump)
		default:
			return fmt.Errorf("-transport %q: want chan or socket", sock.transport)
		}
	}
	if sock.transport != "chan" || sock.workerRank >= 0 {
		return fmt.Errorf("-transport socket needs -ranks > 1")
	}
	if tel.trace != "" || tel.metrics != "" {
		return fmt.Errorf("-trace and -metrics record the parallel stack; use -ranks > 1")
	}
	if tel.healthEvery > 0 || tel.parityEvery > 0 {
		return fmt.Errorf("-health and -parity probe the parallel stack; use -ranks > 1")
	}
	if tel.balance {
		return fmt.Errorf("-balance repartitions the parallel decomposition; use -ranks > 1")
	}
	if tel.postmortem != "" || tel.fault != "" || tel.modelCheck {
		return fmt.Errorf("-postmortem, -fault, and -model-check instrument the parallel stack; use -ranks > 1")
	}
	if tel.serve != "" {
		// Serial runs have no registry/recorder wiring (yet); the server
		// still gives pprof and a liveness /healthz.
		srv := &serve.Server{Info: map[string]string{
			"model": model.Name, "engine": engineName, "ranks": "1",
			"atoms": strconv.Itoa(cfg.N()), "steps": strconv.Itoa(steps),
		}}
		if err := srv.Start(tel.serve); err != nil {
			return err
		}
		fmt.Printf("telemetry server on http://%s/ (serial run: pprof and /healthz only)\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.Close(ctx)
		}()
	}
	return runSerial(cfg, model, engineName, steps, dt, thermostat, every, opts, tel.log)
}

func runSerial(cfg *workload.Config, model *potential.Model, engineName string, steps int, dt, thermostat float64, every int, opts serialOpts, logger *obs.Logger) error {
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		return err
	}
	var engine md.Engine
	switch engineName {
	case "sc", "fs":
		fam := md.FamilySC
		if engineName == "fs" {
			fam = md.FamilyFS
		}
		if opts.workers == 1 {
			engine, err = md.NewCellEngine(model, sys.Box, fam)
		} else {
			engine, err = md.NewConcurrentCellEngine(model, sys.Box, fam, opts.workers)
		}
	case "hybrid":
		if opts.skin > 0 {
			engine, err = md.NewHybridEngineSkin(model, sys.Box, opts.skin)
		} else {
			engine, err = md.NewHybridEngine(model, sys.Box)
		}
	default:
		return fmt.Errorf("unknown engine %q", engineName)
	}
	if err != nil {
		return err
	}
	sim, err := md.NewSim(sys, engine, dt)
	if err != nil {
		return err
	}
	sim.Log = logger
	if thermostat > 0 {
		sim.Therm = &md.Berendsen{Target: thermostat, Tau: 100}
	}
	var traj *os.File
	if opts.traj != "" {
		traj, err = os.Create(opts.traj)
		if err != nil {
			return err
		}
		defer traj.Close()
	}
	names := make([]string, sys.N())
	for i, sp := range sys.Species {
		names[i] = model.Species[sp].Name
	}
	writeFrame := func() error {
		if traj == nil {
			return nil
		}
		return trajio.WriteFrame(traj, &trajio.Frame{
			Box:     sys.Box,
			Names:   names,
			Pos:     sys.Pos,
			Comment: fmt.Sprintf("step=%d", sim.Steps()),
		})
	}
	fmt.Printf("engine %s, dt %g fs, %d steps\n", engine.Name(), dt, steps)
	fmt.Printf("%8s %14s %14s %14s %10s\n", "step", "PE (eV)", "KE (eV)", "E total (eV)", "T (K)")
	report := func() {
		fmt.Printf("%8d %14.4f %14.4f %14.4f %10.1f\n",
			sim.Steps(), sim.PotentialEnergy(), sys.KineticEnergy(), sim.TotalEnergy(), sys.Temperature())
	}
	report()
	if err := writeFrame(); err != nil {
		return err
	}
	start := time.Now()
	for sim.Steps() < steps {
		n := min(every, steps-sim.Steps())
		if err := sim.Run(n); err != nil {
			return err
		}
		report()
		if err := writeFrame(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	st := sim.CumulativeStats()
	fmt.Printf("\n%.2f ms/step; search candidates %d, tuples evaluated %d",
		elapsed.Seconds()*1e3/float64(steps), st.SearchCandidates, st.TuplesEvaluated)
	if st.PairListEntries > 0 {
		fmt.Printf(", pair-list entries %d", st.PairListEntries)
	}
	fmt.Println()
	if hy, ok := engine.(*md.HybridEngine); ok && opts.skin > 0 {
		fmt.Printf("Verlet list rebuilt %d times over %d force evaluations (skin %.2f Å)\n",
			hy.ListRebuilds(), sim.Steps()+1, opts.skin)
	}
	if opts.traj != "" {
		fmt.Printf("trajectory written to %s\n", opts.traj)
	}
	if opts.analyze {
		return printStructure(sys, model)
	}
	return nil
}

// printStructure reports simple structural observables of the final
// configuration via the tuple-engine-backed analysis package.
func printStructure(sys *md.System, model *potential.Model) error {
	fmt.Println("\nstructure analysis:")
	rmax := model.MaxCutoff()
	g, err := analysis.RDF(sys.Box, sys.Pos, sys.Species, -1, -1, rmax, 110)
	if err != nil {
		return err
	}
	fmt.Printf("  total g(r): first peak at %.2f Å\n", g.FirstPeak())
	if len(model.Species) == 2 {
		cross, err := analysis.RDF(sys.Box, sys.Pos, sys.Species, 0, 1, rmax, 110)
		if err != nil {
			return err
		}
		fmt.Printf("  %s-%s g(r): first peak at %.2f Å\n",
			model.Species[0].Name, model.Species[1].Name, cross.FirstPeak())
		bond := cross.FirstPeak() * 1.3
		coord, err := analysis.Coordination(sys.Box, sys.Pos, sys.Species, 0, 1, bond)
		if err != nil {
			return err
		}
		fmt.Printf("  %s coordination by %s (r < %.2f Å): %.2f\n",
			model.Species[0].Name, model.Species[1].Name, bond, coord)
		ang, err := analysis.AngleDistribution(sys.Box, sys.Pos, sys.Species, 1, 0, bond, 90)
		if err != nil {
			return err
		}
		fmt.Printf("  %s-%s-%s angle peak: %.1f° (%d samples)\n",
			model.Species[1].Name, model.Species[0].Name, model.Species[1].Name,
			ang.Peak, ang.Samples)
	}
	return nil
}

func runParallel(cfg *workload.Config, model *potential.Model, engineName string, steps int, dt float64, ranks, every, workers int, tel telemetryOpts, dumpForces string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scheme, err := schemeFor(engineName)
	if err != nil {
		return err
	}
	cart := comm.NewCart(ranks)
	fmt.Printf("engine %v on %d ranks (%v topology) × %d workers, dt %g fs, %d steps\n",
		scheme, ranks, cart.Dims, workers, dt, steps)

	popt := parmd.Options{
		Scheme: scheme, Cart: cart, Dt: dt, Steps: steps, Workers: workers, TraceEnergies: true,
		Log: tel.log, NoOverlap: tel.noOverlap,
	}
	if tel.fault != "" {
		class, afterStr, hasAfter := strings.Cut(tel.fault, ":")
		after := 0
		if hasAfter {
			n, err := strconv.Atoi(afterStr)
			if err != nil || n < 0 {
				return fmt.Errorf("-fault %q: count after %q must be a non-negative integer", tel.fault, class)
			}
			after = n
		}
		ft, err := parmd.NewFaultTransport(cart.Size(), class, after)
		if err != nil {
			return err
		}
		popt.Transport = ft
		fmt.Printf("fault injection: corrupting %s traffic after %d clean messages\n", class, after)
	}
	if tel.balance {
		popt.Balance = &parmd.Balancer{Every: tel.balanceEvery, Threshold: tel.balanceThreshold}
	}
	if tel.healthEvery > 0 || tel.parityEvery > 0 {
		every := tel.healthEvery
		if every <= 0 {
			every = tel.parityEvery
		}
		hcfg := health.Config{Every: every, ParityEvery: tel.parityEvery, Logger: tel.log}
		if tel.abortOnFail {
			hcfg.OnFail = health.ActionRecord | health.ActionLog | health.ActionAbort
		}
		popt.Health = health.New(hcfg)
	}
	if tel.trace != "" {
		// ~16 spans per step per rank; keep the whole run in the rings.
		popt.Recorder = obs.NewRecorder(ranks, 16*(steps+2))
	}
	var metricsFile *os.File
	if tel.metrics != "" {
		f, err := os.Create(tel.metrics)
		if err != nil {
			return err
		}
		defer f.Close()
		metricsFile = f
		popt.StepLog = obs.NewStepWriter(f)
		popt.Metrics = obs.NewRegistry()
		if popt.Recorder == nil {
			// Phase decomposition in the step records and registry even
			// without a trace file; a small ring is enough for totals.
			popt.Recorder = obs.NewRecorder(ranks, 16)
		}
	}
	info := map[string]string{
		"model": model.Name, "engine": engineName,
		"ranks": strconv.Itoa(ranks), "workers": strconv.Itoa(workers),
		"atoms": strconv.Itoa(cfg.N()), "steps": strconv.Itoa(steps),
	}

	// The flight recorder is the in-memory black box behind -serve's
	// /history and /anomalies, the -postmortem bundle, and
	// -model-check's residual detector. It rides the step-record line
	// as an in-process sink, so attaching it costs no allocation per
	// step.
	var fl *flight.Recorder
	var tee *obs.StepTee
	if tel.serve != "" || tel.postmortem != "" || tel.modelCheck {
		if popt.Metrics == nil {
			popt.Metrics = obs.NewRegistry()
		}
		if popt.Recorder == nil {
			// Enough ring for /trace to show the last ~256 steps; phase
			// totals cover the whole run regardless of ring depth.
			popt.Recorder = obs.NewRecorder(ranks, 16*256)
		}
		if tel.serve != "" {
			tee = obs.NewStepTee()
		}
		fl = flight.New(flight.Config{
			Ranks: ranks, Registry: popt.Metrics, Tee: tee, Health: popt.Health,
		})
		// The same encoded step records go to the -metrics file (when
		// set) and to live /steps subscribers. The sink must be an
		// untyped nil when no file is open — a typed-nil *os.File would
		// make the writer treat every step as a file write.
		var sink io.Writer
		if metricsFile != nil {
			sink = metricsFile
		}
		popt.StepLog = obs.NewStepWriterTee(sink, tee)
		popt.StepLog.SetSink(fl)
	}
	if tel.modelCheck {
		// Calibration runs a few short benchmark loops; do it off the
		// critical path and arm the residual detector whenever it lands.
		go func() {
			mach, err := perfmodel.LocalMachine()
			if err != nil {
				return
			}
			m, err := perfmodel.NewModel(mach)
			if err != nil {
				return
			}
			p := m.PredictStep(scheme, float64(cfg.N())/float64(ranks))
			fl.SetPrediction(flight.Prediction{
				ComputeNs: p.ComputeNs, CommNs: p.CommNs, TotalNs: p.TotalNs,
			})
		}()
	}
	writeBundle := func(reason string) {
		fl.Flush()
		if err := flight.WriteBundle(tel.postmortem, flight.BundleSources{
			Flight: fl, Trace: popt.Recorder, Registry: popt.Metrics,
			Health: popt.Health, Info: info, Reason: reason,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "scmd:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "scmd: postmortem bundle written to %s\n", tel.postmortem)
	}
	if tel.postmortem != "" {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		go func() {
			s := <-sigCh
			fl.RecordAbort(-1, "signal: "+s.String())
			writeBundle("signal: " + s.String())
			os.Exit(130)
		}()
	}
	var srv *serve.Server
	if tel.serve != "" {
		srv = &serve.Server{
			Registry: popt.Metrics,
			Recorder: popt.Recorder,
			Health:   popt.Health,
			Steps:    tee,
			Flight:   fl,
			Info:     info,
		}
		if err := srv.Start(tel.serve); err != nil {
			return err
		}
		fmt.Printf("telemetry server on http://%s/ (metrics, healthz, steps, phases, trace, history, anomalies, pprof)\n", srv.Addr())
		defer func() {
			// Drain gracefully: mark done, end /steps streams after their
			// buffered lines, let in-flight scrapes finish.
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.Close(ctx)
		}()
	}

	start := time.Now()
	res, err := parmd.Run(cfg, model, popt)
	if err != nil {
		if tel.postmortem != "" {
			// Pin the abort to the step the first failing rank reported;
			// healthy ranks unwind via comm aborts at whatever step they
			// had reached.
			step := -1
			if rerrs := parmd.RankErrors(err); len(rerrs) > 0 {
				step = rerrs[0].Step
			}
			fl.RecordAbort(step, err.Error())
			writeBundle(err.Error())
		}
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%8s %14s %14s %14s\n", "step", "PE (eV)", "KE (eV)", "E total (eV)")
	for s := 0; s < len(res.Energies); s += max(1, every) {
		e := res.Energies[s]
		fmt.Printf("%8d %14.4f %14.4f %14.4f\n", s+1, e.Potential, e.Kinetic, e.Total())
	}
	maxRank := res.MaxRank()
	fmt.Printf("\n%.2f ms/step wall; comm %d messages, %.2f MB total\n",
		elapsed.Seconds()*1e3/float64(max(1, steps)),
		res.Comm.Messages, float64(res.Comm.Bytes)/1e6)
	fmt.Println("comm by traffic class (from the runtime's per-tag counters):")
	for _, class := range []string{"halo", "force", "migrate", "collective"} {
		s := res.CommByClass[class]
		if s.Messages == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d msgs  %10.3f MB  %8.1f ms recv wait\n",
			class, s.Messages, float64(s.Bytes)/1e6, s.Wait.Seconds()*1e3)
	}
	fmt.Printf("max rank: %d owned atoms, %d halo atoms imported, %d search candidates\n",
		maxRank.OwnedAtoms, maxRank.AtomsImported, maxRank.SearchCandidates)
	if popt.Balance != nil {
		fmt.Printf("adaptive balance: %d checks, %d repartitions, final force imbalance %.2f (whole run %.2f)\n",
			res.BalanceChecks, res.Repartitions, res.Imbalance, res.ForceImbalance())
	}

	if len(res.Phases) > 0 {
		fmt.Println("\nper-phase time across ranks (whole run):")
		fmt.Printf("  %-12s %10s %10s %10s\n", "phase", "max ms", "mean ms", "imbalance")
		for _, ps := range res.Phases {
			fmt.Printf("  %-12s %10.2f %10.2f %10.2f\n",
				ps.Phase, float64(ps.MaxNs)/1e6, ps.MeanNs/1e6, ps.Imbalance())
		}
		fmt.Printf("  critical path %.1f%% of %.0f ms wall\n",
			100*float64(obs.CriticalPathNs(res.Phases))/float64(res.Wall.Nanoseconds()),
			res.Wall.Seconds()*1e3)
		if !tel.noOverlap {
			fmt.Printf("  overlap: %.0f%% of the halo-completion window hidden behind interior compute\n",
				100*res.OverlapFraction())
		}
	}
	if popt.Health != nil {
		fmt.Println("\nhealth probes (severity counts over sampled steps):")
		fmt.Printf("  %-14s %6s %6s %6s %14s\n", "probe", "ok", "warn", "fail", "last value")
		for _, p := range res.Health.Probes {
			fmt.Printf("  %-14s %6d %6d %6d %14.3g\n", p.Probe, p.OK, p.Warn, p.Fail, p.Last)
		}
		if res.Health.Healthy() {
			fmt.Println("  all probes ok")
		}
	}
	if tel.trace != "" {
		f, err := os.Create(tel.trace)
		if err != nil {
			return err
		}
		if err := popt.Recorder.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("span timeline written to %s (load in ui.perfetto.dev)\n", tel.trace)
	}
	if metricsFile != nil {
		popt.StepLog.WriteValue(map[string]any{"snapshot": popt.Metrics.Snapshot()})
		if err := popt.StepLog.Err(); err != nil {
			return err
		}
		fmt.Printf("telemetry records written to %s\n", tel.metrics)
	}
	return dumpForcesFile(dumpForces, res)
}
