package main

import (
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/obs/health"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// socketOpts carries the -transport socket configuration: the
// user-facing mode flags plus the internal worker flags the launcher
// passes to the rank processes it spawns.
type socketOpts struct {
	transport string // "chan" or "socket"
	network   string // "unix" or "tcp"
	dump      string // -dump-forces path
	killRank  int    // -kill-rank fault drill (-1 = off)
	killStep  int    // -kill-step

	workerRank int    // internal: ≥ 0 means this process IS rank workerRank
	rendezvous string // internal: launcher's rendezvous address
	token      string // internal: session token (decimal uint64)
}

// socketDialTimeout bounds rendezvous registration and the peer-mesh
// handshakes. Generous: a cold fleet start pays process spawn plus Go
// runtime init per worker.
const socketDialTimeout = 60 * time.Second

// runSocketMode dispatches -transport socket: worker processes (the
// launcher re-execs this binary with -worker-rank) run one rank each
// over the wire fabric; the parent process becomes the launcher.
func runSocketMode(cfg *workload.Config, model *potential.Model, engineName string, steps int, dt float64, ranks, every, workers int, tel telemetryOpts, sock socketOpts) error {
	if sock.network != "unix" && sock.network != "tcp" {
		return fmt.Errorf("-socket-net %q: want unix or tcp", sock.network)
	}
	// These instruments assume every rank lives in this process
	// (shared recorders, one registry, one flight ring); wiring them
	// across processes is future work, so reject rather than silently
	// record one rank's view.
	if tel.serve != "" || tel.postmortem != "" || tel.fault != "" ||
		tel.trace != "" || tel.metrics != "" || tel.modelCheck {
		return fmt.Errorf("-serve, -postmortem, -fault, -trace, -metrics, and -model-check require -transport chan (single-process observability)")
	}
	if sock.workerRank >= 0 {
		return runSocketWorker(cfg, model, engineName, steps, dt, ranks, every, workers, tel, sock)
	}
	return runSocketLauncher(ranks, sock)
}

// runSocketLauncher spawns one worker process per rank (re-execing
// this binary with the internal worker flags appended, so every worker
// reconstructs the identical workload from the identical flags) and
// brokers their rendezvous. Rank 0's stdout is the run's stdout; every
// worker's stderr is inherited so failures surface.
func runSocketLauncher(ranks int, sock socketOpts) error {
	dir, err := os.MkdirTemp("", "scmd-socket")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var ln net.Listener
	if sock.network == "unix" {
		ln, err = net.Listen("unix", filepath.Join(dir, "rdv.sock"))
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return err
	}
	token := comm.NewSessionToken()
	rdvErr := make(chan error, 1)
	go func() { rdvErr <- comm.ServeRendezvous(ln, ranks, token, socketDialTimeout) }()
	fmt.Printf("socket fleet: %d worker processes over %s (rendezvous %s)\n",
		ranks, sock.network, ln.Addr())

	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmds := make([]*exec.Cmd, ranks)
	for rank := 0; rank < ranks; rank++ {
		// Later flags win in the flag package, so appending the worker
		// flags to the original argv reproduces this run's full
		// configuration in the child with only the worker identity
		// changed.
		args := append(append([]string(nil), os.Args[1:]...),
			"-worker-rank", strconv.Itoa(rank),
			"-rendezvous", ln.Addr().String(),
			"-socket-token", strconv.FormatUint(token, 10),
		)
		cmd := exec.Command(exe, args...)
		if rank == 0 {
			cmd.Stdout = os.Stdout
		} else {
			cmd.Stdout = io.Discard
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:rank] {
				c.Process.Kill()
			}
			return fmt.Errorf("spawning worker rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}

	// Forward termination to the fleet: a launcher killed by ^C must
	// not leave orphan workers spinning in the exchange protocol.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-sigCh:
			fmt.Fprintf(os.Stderr, "scmd: %v, stopping %d workers\n", s, ranks)
			for _, c := range cmds {
				c.Process.Signal(syscall.SIGTERM)
			}
		case <-done:
		}
	}()

	var mu sync.Mutex
	var failures []string
	var wg sync.WaitGroup
	for rank, cmd := range cmds {
		wg.Add(1)
		go func(rank int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("rank %d: %v", rank, err))
				mu.Unlock()
			}
		}(rank, cmd)
	}
	wg.Wait()
	close(done)
	ln.Close()
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d workers failed: %v", len(failures), ranks, failures)
	}
	return nil
}

// exitTransport is the -kill-rank fault drill: the worker dies with a
// hard exit (no close, no flush — exactly what a crashed or OOM-killed
// process looks like to its peers) when the step loop reaches killStep.
type exitTransport struct {
	*comm.SocketTransport
	killStep int
}

func (e *exitTransport) MarkStep(step int) {
	if step >= e.killStep {
		fmt.Fprintf(os.Stderr, "scmd: kill drill: rank %d exiting hard at step %d\n",
			e.SocketTransport.Rank(), step)
		os.Exit(3)
	}
	e.SocketTransport.MarkStep(step)
}

// runSocketWorker runs one rank of the fleet: dial the fabric, run the
// simulation with a Worker-mode parmd, and (on rank 0) report the
// gathered result.
func runSocketWorker(cfg *workload.Config, model *potential.Model, engineName string, steps int, dt float64, ranks, every, workers int, tel telemetryOpts, sock socketOpts) error {
	rank := sock.workerRank
	if rank >= ranks {
		return fmt.Errorf("-worker-rank %d outside -ranks %d", rank, ranks)
	}
	token, err := strconv.ParseUint(sock.token, 10, 64)
	if err != nil {
		return fmt.Errorf("-socket-token: %w", err)
	}
	scheme, err := schemeFor(engineName)
	if err != nil {
		return err
	}
	cart := comm.NewCart(ranks)
	tr, err := comm.DialSocket(comm.SocketConfig{
		Network:    sock.network,
		Rendezvous: sock.rendezvous,
		Rank:       rank,
		Size:       ranks,
		Token:      token,
		Timeout:    socketDialTimeout,
		Log:        tel.log,
	})
	if err != nil {
		return fmt.Errorf("rank %d: dial fabric: %w", rank, err)
	}
	defer tr.Close()
	var transport comm.Transport = tr
	if sock.killRank == rank {
		transport = &exitTransport{SocketTransport: tr, killStep: sock.killStep}
	}

	popt := parmd.Options{
		Scheme: scheme, Cart: cart, Dt: dt, Steps: steps, Workers: workers,
		TraceEnergies: true, Log: tel.log, NoOverlap: tel.noOverlap,
		Transport: transport, Worker: &parmd.WorkerRank{Rank: rank},
	}
	if tel.balance {
		popt.Balance = &parmd.Balancer{Every: tel.balanceEvery, Threshold: tel.balanceThreshold}
	}
	if tel.healthEvery > 0 || tel.parityEvery > 0 {
		hevery := tel.healthEvery
		if hevery <= 0 {
			hevery = tel.parityEvery
		}
		hcfg := health.Config{Every: hevery, ParityEvery: tel.parityEvery, Logger: tel.log}
		if tel.abortOnFail {
			hcfg.OnFail = health.ActionRecord | health.ActionLog | health.ActionAbort
		}
		popt.Health = health.New(hcfg)
	}

	start := time.Now()
	res, err := parmd.Run(cfg, model, popt)
	if err != nil {
		return fmt.Errorf("rank %d: %w", rank, err)
	}
	if rank != 0 {
		return nil
	}
	elapsed := time.Since(start)
	fmt.Printf("%8s %14s %14s %14s\n", "step", "PE (eV)", "KE (eV)", "E total (eV)")
	for s := 0; s < len(res.Energies); s += max(1, every) {
		e := res.Energies[s]
		fmt.Printf("%8d %14.4f %14.4f %14.4f\n", s+1, e.Potential, e.Kinetic, e.Total())
	}
	fmt.Printf("\n%.2f ms/step wall; comm %d messages, %.2f MB total (gathered over the wire)\n",
		elapsed.Seconds()*1e3/float64(max(1, steps)),
		res.Comm.Messages, float64(res.Comm.Bytes)/1e6)
	for _, class := range []string{"halo", "force", "migrate", "collective"} {
		s := res.CommByClass[class]
		if s.Messages == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d msgs  %10.3f MB  %8.1f ms recv wait\n",
			class, s.Messages, float64(s.Bytes)/1e6, s.Wait.Seconds()*1e3)
	}
	if popt.Health != nil {
		if res.Health.Healthy() {
			fmt.Println("health probes: all ok")
		} else {
			fmt.Println("health probes: failures recorded")
		}
	}
	return dumpForcesFile(sock.dump, res)
}

// dumpForcesFile writes the final per-atom forces as hex float64 bits,
// one atom per line — the exact-bits artifact CI diffs between the
// channel and socket transports.
func dumpForcesFile(path string, res *parmd.Result) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, v := range res.Forces {
		fmt.Fprintf(f, "%016x %016x %016x\n",
			math.Float64bits(v.X), math.Float64bits(v.Y), math.Float64bits(v.Z))
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("forces written to %s (%d atoms, hex float64 bits)\n", path, len(res.Forces))
	return nil
}

// schemeFor maps the -engine flag to a parallel scheme.
func schemeFor(engineName string) (parmd.Scheme, error) {
	switch engineName {
	case "sc":
		return parmd.SchemeSC, nil
	case "fs":
		return parmd.SchemeFS, nil
	case "hybrid":
		return parmd.SchemeHybrid, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", engineName)
	}
}
