// Patterns: a tour of the computation-pattern algebra at the heart of
// the paper — the shift-collapse pipeline, its invariants, and what it
// buys.
//
// The program walks the three phases of the SC algorithm for triplets
// (n = 3), verifies the completeness and redundancy properties the
// paper proves (Lemmas 1-6, Theorems 1-2), and prints the cardinality
// and import-volume tables that Figures 5 and 6 illustrate.
//
// Run with: go run ./examples/patterns
package main

import (
	"fmt"

	"sctuple/internal/core"
	"sctuple/internal/geom"
)

func main() {
	fmt.Println("The shift-collapse algorithm, phase by phase (n = 3)")
	fmt.Println("====================================================")

	// Phase 1: GENERATE-FS enumerates all 27^(n-1) nearest-neighbor
	// paths — complete but redundant (Lemma 1).
	fs := core.GenerateFS(3)
	fmt.Printf("\nGENERATE-FS: %d paths (27² = %d), footprint %d cells, complete: %v\n",
		fs.Len(), core.FSPathCount(3), fs.Footprint(), fs.IsComplete())
	fmt.Printf("  redundant σ-classes covered twice: %d\n", fs.RedundancyCount())

	// Phase 2: OC-SHIFT pushes every path into the first octant.
	// Theorem 1 (path-shift invariance) guarantees the force set is
	// unchanged; the cell coverage shrinks into [0, n-1]³.
	oc := core.OCShift(fs)
	lo, hi := oc.BoundingBox()
	fmt.Printf("\nOC-SHIFT: still %d paths, coverage now %v..%v (footprint %d), complete: %v\n",
		oc.Len(), lo, hi, oc.Footprint(), oc.IsComplete())

	// Phase 3: R-COLLAPSE removes one path of every reflective twin
	// pair (σ(p') = σ(p⁻¹), Lemma 3); self-reflective paths stay.
	sc := core.RCollapse(oc)
	fmt.Printf("\nR-COLLAPSE: %d paths (Eq. 29 predicts %d), redundancy now %d, complete: %v\n",
		sc.Len(), core.SCPathCount(3), sc.RedundancyCount(), sc.IsComplete())

	// A reflective twin pair, concretely.
	p := core.NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0), geom.IV(1, 1, 0))
	twin := p.ReflectiveTwin()
	fmt.Printf("\nExample (Lemma 6): path %v\n", p)
	fmt.Printf("  reflective twin RPT(p) = p⁻¹ - v₂ = %v\n", twin)
	fmt.Printf("  σ(p⁻¹) = σ(RPT(p)): %v — both generate the same force set\n",
		p.Inverse().Sigma().Equal(twin.Sigma()))

	// The pair case recovers the classic shell methods (§4.3).
	fmt.Println("\nPair computation (n = 2) recovers the classic shells:")
	for _, s := range []core.Shell{core.ShellFull, core.ShellHalf, core.ShellEighth} {
		pat := s.Pattern()
		fmt.Printf("  %-13s |Ψ| = %2d, footprint = %2d\n", s.String()+":", pat.Len(), pat.Footprint())
	}
	fmt.Printf("  SC(2) ≡ eighth shell: %v\n", core.SC(2).EquivalentTo(core.EighthShellPair()))

	// What the compact coverage buys in parallel: import volumes for a
	// cubic per-processor domain (Eq. 33).
	fmt.Println("\nImport volume for an l³-cell domain (Eq. 33):")
	fmt.Printf("  %3s %12s %12s %8s\n", "l", "SC (n=3)", "FS (n=3)", "FS/SC")
	for _, l := range []int{2, 4, 8, 16} {
		scV := core.SC(3).ImportVolume(l)
		fsV := core.FS(3).ImportVolume(l)
		fmt.Printf("  %3d %12d %12d %8.2f\n", l, scV, fsV, float64(fsV)/float64(scV))
	}

	// Search-space compaction for growing n.
	fmt.Println("\nSearch-space compaction (|ΨFS|/|ΨSC| → 2, §4.1):")
	for n := 2; n <= 6; n++ {
		fmt.Printf("  n=%d: %8d → %8d paths (ratio %.3f)\n",
			n, core.FSPathCount(n), core.SCPathCount(n), core.SearchCostRatioFSOverSC(n))
	}
}
