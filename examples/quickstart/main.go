// Quickstart: a minimal molecular-dynamics run with the shift-collapse
// engine.
//
// It builds a small Lennard-Jones argon fluid, attaches the SC-MD cell
// engine, integrates 500 fs of microcanonical dynamics, and prints the
// energy ledger — the five-minute tour of the public API:
//
//	workload.LJFluid  →  md.NewSystem  →  md.NewCellEngine  →  md.NewSim
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

func main() {
	// Argon: ε = 0.0104 eV, σ = 3.4 Å, cutoff 2.5σ, mass 39.948 amu.
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)

	// 512 atoms at reduced density 0.6, thermalized to 120 K.
	rng := rand.New(rand.NewSource(42))
	cfg := workload.LJFluid(rng, 512, 0.6, 3.4)
	cfg.Thermalize(rng, model, 120)

	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		log.Fatal(err)
	}

	// The SC-MD engine: cell-based n-tuple search with shift-collapse
	// patterns (for a pair potential this is the eighth-shell method).
	engine, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := md.NewSim(sys, engine, 2.0 /* fs */)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quickstart: %d LJ atoms in %v, engine %s\n\n", sys.N(), sys.Box, engine.Name())
	fmt.Printf("%6s %12s %12s %12s %8s\n", "t(fs)", "PE (eV)", "KE (eV)", "total (eV)", "T (K)")
	e0 := sim.TotalEnergy()
	for block := 0; block <= 10; block++ {
		fmt.Printf("%6.0f %12.4f %12.4f %12.4f %8.1f\n",
			float64(sim.Steps())*sim.Dt, sim.PotentialEnergy(),
			sys.KineticEnergy(), sim.TotalEnergy(), sys.Temperature())
		if block < 10 {
			if err := sim.Run(25); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := sim.CumulativeStats()
	fmt.Printf("\nenergy drift over %d steps: %.2e eV (%.4f%% of KE)\n",
		sim.Steps(), sim.TotalEnergy()-e0, 100*(sim.TotalEnergy()-e0)/sys.KineticEnergy())
	fmt.Printf("search candidates examined: %d, pairs evaluated: %d\n",
		st.SearchCandidates, st.TuplesEvaluated)
}
