// Scaling: the paper's parallel story in miniature — real in-process
// parallel MD over message-passing ranks, followed by the calibrated
// performance model that extends the curves to cluster scale.
//
// Part 1 runs the same silica system on 1, 2, 4, and 8 ranks with all
// three codes, reporting the per-rank work decomposition (critical-path
// search cost), halo import volumes, and message counts from the actual
// communication layer. (Wall-clock speedup additionally needs as many
// hardware cores as ranks — the decomposition numbers are meaningful on
// any host.) Part 2 prints the modeled strong-scaling table of
// Figure 9(a).
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"sctuple/internal/bench"
	"sctuple/internal/comm"
	"sctuple/internal/parmd"
	"sctuple/internal/perfmodel"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

func main() {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(5, 5, 5)
	cfg.Thermalize(rand.New(rand.NewSource(11)), model, 300)
	const steps = 10
	fmt.Printf("part 1: real parallel runs — %d silica atoms, %d steps each\n\n", cfg.N(), steps)

	fmt.Printf("%-10s %6s %10s %16s %9s %14s %10s\n",
		"scheme", "ranks", "ms/step", "max-rank search", "balance", "halo atoms/st", "messages")
	for _, scheme := range parmd.Schemes() {
		var search1 int64
		for _, p := range []int{1, 2, 4, 8} {
			cart := comm.NewCart(p)
			start := time.Now()
			res, err := parmd.Run(cfg, model, parmd.Options{
				Scheme: scheme, Cart: cart, Dt: 1.0, Steps: steps,
			})
			if err != nil {
				log.Fatalf("%v on %d ranks: %v", scheme, p, err)
			}
			perStep := time.Since(start).Seconds() * 1e3 / steps
			maxRank := res.MaxRank()
			if p == 1 {
				search1 = maxRank.SearchCandidates
			}
			// "balance" is the critical-path compression: the ideal is
			// p, reached when the max rank carries exactly 1/p of the
			// single-rank search work.
			fmt.Printf("%-10v %6d %10.2f %16d %9.2f %14d %10d\n",
				scheme, p, perStep, maxRank.SearchCandidates,
				float64(search1)/float64(maxRank.SearchCandidates),
				maxRank.AtomsImported/int64(steps+1), res.Comm.Messages)
		}
		fmt.Println()
	}

	fmt.Println("part 2: the calibrated cluster model (Figure 9a)")
	fmt.Println()
	if err := bench.Fig9Report(os.Stdout, perfmodel.IntelXeon(),
		0.88e6, []int{12, 48, 192, 768}, 12, 1); err != nil {
		log.Fatal(err)
	}
}
