// Silica: the paper's benchmark application — Vashishta SiO₂ with
// dynamic pair (n = 2) and triplet (n = 3) computation, r_cut3/r_cut2
// ≈ 0.47 (§5).
//
// The program builds a β-cristobalite crystal, evaluates forces with
// all three codes of the paper's benchmarks (SC-MD, FS-MD, Hybrid-MD),
// verifies they agree to machine precision while doing very different
// amounts of search work, and then runs a short NVE trajectory.
//
// Run with: go run ./examples/silica
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

func main() {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	cfg.Thermalize(rand.New(rand.NewSource(7)), model, 300)
	fmt.Printf("silica: %d atoms (β-cristobalite 4×4×4), %s\n", cfg.N(), cfg.Box)
	fmt.Printf("pair cutoff %.2f Å, triplet cutoff %.2f Å (ratio %.2f)\n\n",
		model.Terms[0].Cutoff(), model.Terms[1].Cutoff(),
		model.Terms[1].Cutoff()/model.Terms[0].Cutoff())

	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		log.Fatal(err)
	}

	// The three codes of §5 on identical input.
	engines := []md.Engine{}
	for _, fam := range []md.Family{md.FamilySC, md.FamilyFS} {
		e, err := md.NewCellEngine(model, sys.Box, fam)
		if err != nil {
			log.Fatal(err)
		}
		engines = append(engines, e)
	}
	hy, err := md.NewHybridEngine(model, sys.Box)
	if err != nil {
		log.Fatal(err)
	}
	engines = append(engines, hy)

	fmt.Printf("%-10s %14s %12s %15s %15s\n", "engine", "PE (eV)", "ms/eval", "search cands", "tuples")
	var refForce []geom.Vec3
	var refPE float64
	for i, e := range engines {
		start := time.Now()
		pe, err := e.Compute(sys)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		st := e.Stats()
		fmt.Printf("%-10s %14.4f %12.2f %15d %15d\n",
			e.Name(), pe, elapsed.Seconds()*1e3, st.SearchCandidates, st.TuplesEvaluated)
		if i == 0 {
			refForce = append([]geom.Vec3(nil), sys.Force...)
			refPE = pe
			continue
		}
		if math.Abs(pe-refPE) > 1e-8*math.Abs(refPE) {
			log.Fatalf("%s energy deviates from SC-MD", e.Name())
		}
		maxDiff := 0.0
		for k := range refForce {
			if d := refForce[k].Sub(sys.Force[k]).Norm(); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("%-10s   max force deviation from SC-MD: %.2e eV/Å\n", "", maxDiff)
	}

	// A short NVE trajectory with the SC engine.
	fmt.Println("\nNVE trajectory (SC-MD, dt = 0.5 fs):")
	engine := engines[0]
	sim, err := md.NewSim(sys, engine, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	fmt.Printf("%6s %14s %10s\n", "t(fs)", "E total (eV)", "T (K)")
	for block := 0; block <= 5; block++ {
		fmt.Printf("%6.1f %14.4f %10.1f\n",
			float64(sim.Steps())*sim.Dt, sim.TotalEnergy(), sys.Temperature())
		if block < 5 {
			if err := sim.Run(20); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nenergy drift over %d steps: %.2e eV\n", sim.Steps(), sim.TotalEnergy()-e0)
}
