module sctuple

go 1.22
