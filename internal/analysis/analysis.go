// Package analysis computes structural observables of atomic
// configurations using the same n-tuple machinery the force engines
// run on: radial distribution functions from the pair (n = 2) force
// set and bond-angle distributions from the triplet (n = 3) force set.
// It doubles as a downstream consumer of the public tuple API and as a
// physics check that the silica model produces silica-like structure.
package analysis

import (
	"fmt"
	"math"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/tuple"
)

// Histogram is a uniform-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int64
	total    int64
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if !(max > min) || bins < 1 {
		panic(fmt.Sprintf("analysis: invalid histogram [%g, %g) × %d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}
}

// Add records one sample; out-of-range samples are dropped.
func (h *Histogram) Add(x float64) {
	if x < h.Min || x >= h.Max {
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// ArgMax returns the center of the most populated bin.
func (h *Histogram) ArgMax() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// RDFResult holds a radial distribution function g(r): the local pair
// density relative to the ideal-gas expectation.
type RDFResult struct {
	R []float64 // bin centers (Å)
	G []float64 // g(r)
}

// FirstPeak returns the position of the maximum of g(r), the nearest-
// neighbor distance.
func (r RDFResult) FirstPeak() float64 {
	best := 0
	for i := range r.G {
		if r.G[i] > r.G[best] {
			best = i
		}
	}
	if len(r.R) == 0 {
		return 0
	}
	return r.R[best]
}

// RDF computes the partial radial distribution function g_ab(r) for
// species pair (a, b) up to rmax, using an eighth-shell pair
// enumeration. Pass a = b = -1 for the total g(r).
func RDF(box geom.Box, pos []geom.Vec3, species []int32, a, b int32, rmax float64, bins int) (RDFResult, error) {
	if (a < 0) != (b < 0) {
		return RDFResult{}, fmt.Errorf("analysis: species selectors must be both concrete or both -1")
	}
	lat, err := cell.NewLattice(box, rmax)
	if err != nil {
		return RDFResult{}, fmt.Errorf("analysis: %w", err)
	}
	if !lat.MinSpanOK(3) {
		return RDFResult{}, fmt.Errorf("analysis: box %v too small for rmax %g (needs ≥ 3 cells per side)", box, rmax)
	}
	bin := cell.NewBinning(lat, pos)
	e, err := tuple.NewEnumerator(bin, core.SC(2), rmax, tuple.DedupAuto)
	if err != nil {
		return RDFResult{}, fmt.Errorf("analysis: %w", err)
	}
	h := NewHistogram(0, rmax, bins)
	nA, nB := 0, 0
	for i := range species {
		if a < 0 || species[i] == a {
			nA++
		}
		if b < 0 || species[i] == b {
			nB++
		}
	}
	e.Visit(pos, func(atoms []int32, p []geom.Vec3) {
		sa, sb := species[atoms[0]], species[atoms[1]]
		match := (a < 0 && b < 0) ||
			(sa == a && sb == b) || (sa == b && sb == a)
		if !match {
			return
		}
		h.Add(p[1].Sub(p[0]).Norm())
	})
	res := RDFResult{R: make([]float64, bins), G: make([]float64, bins)}
	// Normalize against the ideal-gas expectation for the number of
	// unordered matching pairs in the shell [r, r+dr): nA(nA-1)/2 for
	// same-species (or total), nA·nB for a cross pair.
	var pairNorm float64
	if a == b || (a < 0 && b < 0) {
		pairNorm = float64(nA) * float64(nA-1) / 2
	} else {
		pairNorm = float64(nA) * float64(nB)
	}
	vol := box.Volume()
	dr := h.BinWidth()
	for i := 0; i < bins; i++ {
		r := h.BinCenter(i)
		res.R[i] = r
		shell := 4 * math.Pi * r * r * dr
		ideal := pairNorm * shell / vol
		if ideal > 0 {
			res.G[i] = float64(h.Counts[i]) / ideal
		}
	}
	return res, nil
}

// AngleResult holds a bond-angle distribution.
type AngleResult struct {
	ThetaDeg []float64 // bin centers (degrees)
	P        []float64 // normalized distribution (sums to 1)
	Peak     float64   // most probable angle (degrees)
	Samples  int64
}

// AngleDistribution computes the distribution of bond angles at
// central atoms of species center, with both neighbors of species end
// within rbond, using an SC triplet enumeration (the chain's middle
// atom is the angle vertex). Pass -1 to accept any species.
func AngleDistribution(box geom.Box, pos []geom.Vec3, species []int32, end, center int32, rbond float64, bins int) (AngleResult, error) {
	lat, err := cell.NewLattice(box, rbond)
	if err != nil {
		return AngleResult{}, fmt.Errorf("analysis: %w", err)
	}
	if !lat.MinSpanOK(3) {
		return AngleResult{}, fmt.Errorf("analysis: box too small for rbond %g", rbond)
	}
	bin := cell.NewBinning(lat, pos)
	e, err := tuple.NewEnumerator(bin, core.SC(3), rbond, tuple.DedupAuto)
	if err != nil {
		return AngleResult{}, fmt.Errorf("analysis: %w", err)
	}
	h := NewHistogram(0, 180, bins)
	e.Visit(pos, func(atoms []int32, p []geom.Vec3) {
		if center >= 0 && species[atoms[1]] != center {
			return
		}
		if end >= 0 && (species[atoms[0]] != end || species[atoms[2]] != end) {
			return
		}
		v1 := p[0].Sub(p[1])
		v2 := p[2].Sub(p[1])
		cos := v1.Dot(v2) / (v1.Norm() * v2.Norm())
		if cos > 1 {
			cos = 1
		} else if cos < -1 {
			cos = -1
		}
		h.Add(math.Acos(cos) * 180 / math.Pi)
	})
	res := AngleResult{
		ThetaDeg: make([]float64, bins),
		P:        make([]float64, bins),
		Peak:     h.ArgMax(),
		Samples:  h.Total(),
	}
	for i := 0; i < bins; i++ {
		res.ThetaDeg[i] = h.BinCenter(i)
		if h.Total() > 0 {
			res.P[i] = float64(h.Counts[i]) / float64(h.Total())
		}
	}
	return res, nil
}

// Coordination returns the average number of neighbors of species b
// within rbond of atoms of species a (-1 matches any species).
func Coordination(box geom.Box, pos []geom.Vec3, species []int32, a, b int32, rbond float64) (float64, error) {
	lat, err := cell.NewLattice(box, rbond)
	if err != nil {
		return 0, fmt.Errorf("analysis: %w", err)
	}
	bin := cell.NewBinning(lat, pos)
	e, err := tuple.NewEnumerator(bin, core.SC(2), rbond, tuple.DedupAuto)
	if err != nil {
		return 0, fmt.Errorf("analysis: %w", err)
	}
	// Each unordered pair is emitted once; check both role
	// assignments, so a same-species pair contributes a neighbor to
	// both of its members.
	count := int64(0)
	e.Visit(pos, func(atoms []int32, _ []geom.Vec3) {
		sa, sb := species[atoms[0]], species[atoms[1]]
		if (a < 0 || sa == a) && (b < 0 || sb == b) {
			count++
		}
		if (a < 0 || sb == a) && (b < 0 || sa == b) {
			count++
		}
	})
	nA := 0
	for _, s := range species {
		if a < 0 || s == a {
			nA++
		}
	}
	if nA == 0 {
		return 0, nil
	}
	return float64(count) / float64(nA), nil
}
