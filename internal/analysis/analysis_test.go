package analysis

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/workload"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0.5, 1.5, 1.6, 9.99, -1, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4 (out-of-range dropped)", h.Total())
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin 1 count %d", h.Counts[1])
	}
	if h.ArgMax() != 1.5 {
		t.Errorf("ArgMax = %g", h.ArgMax())
	}
	if h.BinWidth() != 1 {
		t.Errorf("BinWidth = %g", h.BinWidth())
	}
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	// A uniform random gas must give g(r) ≈ 1 everywhere.
	rng := rand.New(rand.NewSource(1))
	cfg := workload.UniformRandom(rng, 24, 4000, []float64{1})
	res, err := RDF(cfg.Box, cfg.Pos, cfg.Species, -1, -1, 6.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the first bins (few pairs, noisy).
	for i := 3; i < len(res.G); i++ {
		if math.Abs(res.G[i]-1) > 0.15 {
			t.Errorf("g(%.2f) = %.3f, want ≈ 1 for ideal gas", res.R[i], res.G[i])
		}
	}
}

func TestRDFCrystalPeaks(t *testing.T) {
	// β-cristobalite: the Si-O nearest-neighbor distance is
	// a·√3/8 ≈ 1.55 Å.
	cfg := workload.BetaCristobalite(3, 3, 3)
	res, err := RDF(cfg.Box, cfg.Pos, cfg.Species, 0, 1, 4.0, 80)
	if err != nil {
		t.Fatal(err)
	}
	want := 7.16 * math.Sqrt(3) / 8
	if got := res.FirstPeak(); math.Abs(got-want) > 0.1 {
		t.Errorf("Si-O first peak at %.3f Å, want %.3f", got, want)
	}
	// Below the bond length g must vanish.
	for i, r := range res.R {
		if r < want-0.2 && res.G[i] != 0 {
			t.Errorf("g(%.2f) = %g below the bond length", r, res.G[i])
		}
	}
}

func TestRDFSelectorValidation(t *testing.T) {
	cfg := workload.BetaCristobalite(3, 3, 3)
	if _, err := RDF(cfg.Box, cfg.Pos, cfg.Species, -1, 1, 4.0, 10); err == nil {
		t.Error("mixed wildcard selectors accepted")
	}
	tiny := geom.NewCubicBox(5)
	if _, err := RDF(tiny, []geom.Vec3{{}}, []int32{0}, -1, -1, 4.0, 10); err == nil {
		t.Error("undersized box accepted")
	}
}

func TestAngleDistributionTetrahedral(t *testing.T) {
	// O-Si-O angles in ideal β-cristobalite are exactly tetrahedral:
	// 109.47°.
	cfg := workload.BetaCristobalite(3, 3, 3)
	res, err := AngleDistribution(cfg.Box, cfg.Pos, cfg.Species, 1, 0, 1.8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no O-Si-O angles sampled")
	}
	if math.Abs(res.Peak-109.47) > 3.1 {
		t.Errorf("O-Si-O peak at %.1f°, want ≈ 109.5°", res.Peak)
	}
	// Each Si has C(4,2) = 6 angles.
	si := 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		}
	}
	if res.Samples != int64(6*si) {
		t.Errorf("sampled %d angles, want %d", res.Samples, 6*si)
	}
	// Distribution sums to 1.
	sum := 0.0
	for _, p := range res.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g", sum)
	}
}

func TestAngleDistributionSiOSi(t *testing.T) {
	// The Si-O-Si angle of ideal β-cristobalite (collinear bonds
	// through the O midpoint) is 180°.
	cfg := workload.BetaCristobalite(3, 3, 3)
	res, err := AngleDistribution(cfg.Box, cfg.Pos, cfg.Species, 0, 1, 1.8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak < 174 {
		t.Errorf("Si-O-Si peak at %.1f°, want ≈ 180° for the ideal lattice", res.Peak)
	}
}

func TestCoordinationSilica(t *testing.T) {
	cfg := workload.BetaCristobalite(3, 3, 3)
	// Si is 4-coordinated by O; O is 2-coordinated by Si.
	siO, err := Coordination(cfg.Box, cfg.Pos, cfg.Species, 0, 1, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if siO != 4 {
		t.Errorf("Si-O coordination %g, want 4", siO)
	}
	oSi, err := Coordination(cfg.Box, cfg.Pos, cfg.Species, 1, 0, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if oSi != 2 {
		t.Errorf("O-Si coordination %g, want 2", oSi)
	}
	// No Si-Si or O-O bonds at this cutoff.
	siSi, err := Coordination(cfg.Box, cfg.Pos, cfg.Species, 0, 0, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if siSi != 0 {
		t.Errorf("Si-Si coordination %g, want 0", siSi)
	}
}

func TestCoordinationAnyAny(t *testing.T) {
	// Total coordination: Si contributes 4, O contributes 2 — average
	// over all atoms = (4·nSi + 2·nO)/(nSi+nO) = 8/3.
	cfg := workload.BetaCristobalite(2, 2, 2)
	c, err := Coordination(cfg.Box, cfg.Pos, cfg.Species, -1, -1, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-8.0/3.0) > 1e-9 {
		t.Errorf("total coordination %g, want 8/3", c)
	}
}
