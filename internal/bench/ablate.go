package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
	"sctuple/internal/workload"
)

// AblateReport isolates each design choice of the SC algorithm on the
// real silica workload, with measured counts rather than closed forms:
//
//  1. R-COLLAPSE: search cost with and without reflective collapse.
//  2. OC-SHIFT: import volume with and without octant compression.
//  3. Hybrid pruning vs SC cell search (the Fig. 8 trade-off).
//  4. Midpoint cell refinement (§6): candidates per tuple vs k.
//  5. Verlet-skin list reuse: rebuild counts vs skin width.
func AblateReport(w io.Writer, atoms, steps int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.UniformSilica(rng, atoms)
	model := potential.NewSilicaModel()

	fmt.Fprintf(w, "Ablations on a %d-atom uniform silica system\n", cfg.N())

	// --- 1. R-COLLAPSE ---
	fmt.Fprintln(w, "\n1. R-COLLAPSE (reflective redundancy removal), triplet search:")
	lat3, err := cell.NewLattice(cfg.Box, 2.6)
	if err != nil {
		return err
	}
	bin3 := cell.NewBinning(lat3, cfg.Pos)
	tw := newTable(w)
	fmt.Fprintln(tw, "pattern\t|Ψ|\tcandidates\ttuples emitted")
	for _, tc := range []struct {
		name    string
		pattern *core.Pattern
	}{
		{"OC-shift only (no collapse)", core.OCShift(core.GenerateFS(3))},
		{"full SC (shift + collapse)", core.SC(3)},
	} {
		e, err := tuple.NewEnumerator(bin3, tc.pattern, 2.6, tuple.DedupAuto)
		if err != nil {
			return err
		}
		st := e.Count(cfg.Pos)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", tc.name, tc.pattern.Len(), st.Candidates, st.Emitted)
	}
	tw.Flush()

	// --- 2. OC-SHIFT ---
	fmt.Fprintln(w, "\n2. OC-SHIFT (octant compression), import volume for an l³-cell domain:")
	tw = newTable(w)
	fmt.Fprintln(tw, "l\tcollapse only (half-shell style)\tfull SC\treduction")
	rcOnly := core.RCollapse(core.GenerateFS(3))
	sc3 := core.SC(3)
	for _, l := range []int{2, 4, 8} {
		a := rcOnly.ImportVolume(l)
		b := sc3.ImportVolume(l)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f×\n", l, a, b, float64(a)/float64(b))
	}
	tw.Flush()

	// --- 3. Hybrid pruning vs SC search ---
	fmt.Fprintln(w, "\n3. Triplet search strategy (the Figure 8 compute trade-off):")
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		return err
	}
	tw = newTable(w)
	fmt.Fprintln(tw, "engine\tsearch candidates\tms/eval")
	scE, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		return err
	}
	hyE, err := md.NewHybridEngine(model, sys.Box)
	if err != nil {
		return err
	}
	for _, e := range []md.Engine{scE, hyE} {
		start := time.Now()
		if _, err := e.Compute(sys); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\n", e.Name(), e.Stats().SearchCandidates,
			time.Since(start).Seconds()*1e3)
	}
	tw.Flush()

	// --- 4. Midpoint refinement ---
	fmt.Fprintln(w, "\n4. Midpoint cell refinement (§6), SC pair+triplet engine:")
	tw = newTable(w)
	fmt.Fprintln(tw, "k\tcandidates\tcandidates/tuple\tms/eval")
	for _, k := range []int{1, 2} {
		e, err := md.NewCellEngineRadius(model, sys.Box, md.FamilySC, k)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := e.Compute(sys); err != nil {
			return err
		}
		st := e.Stats()
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", k, st.SearchCandidates,
			float64(st.SearchCandidates)/float64(st.TuplesEvaluated),
			time.Since(start).Seconds()*1e3)
	}
	tw.Flush()

	// --- 5. Verlet skin ---
	fmt.Fprintln(w, "\n5. Verlet-skin list reuse (Hybrid engine), short 300 K trajectory:")
	tw = newTable(w)
	fmt.Fprintln(tw, "skin (Å)\tlist rebuilds\tforce evaluations")
	for _, skin := range []float64{0, 0.3, 0.6, 1.0} {
		runCfg := workload.UniformSilica(rand.New(rand.NewSource(seed)), atoms)
		runCfg.Thermalize(rand.New(rand.NewSource(seed+1)), model, 300)
		runSys, err := md.NewSystem(runCfg, model)
		if err != nil {
			return err
		}
		var e *md.HybridEngine
		if skin > 0 {
			e, err = md.NewHybridEngineSkin(model, runSys.Box, skin)
		} else {
			e, err = md.NewHybridEngine(model, runSys.Box)
		}
		if err != nil {
			return err
		}
		sim, err := md.NewSim(runSys, e, 1.0)
		if err != nil {
			return err
		}
		if err := sim.Run(steps); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.1f\t%d\t%d\n", skin, e.ListRebuilds(), steps+1)
	}
	return tw.Flush()
}
