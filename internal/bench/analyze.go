package bench

import (
	"fmt"
	"io"
	"strings"

	"sctuple/internal/obs/flight"
)

// AnalyzeReport replays the flight recorder's online anomaly
// detectors over a postmortem bundle directory (scmd -postmortem) or
// a bare JSONL step log (a bundle's steps.jsonl, or an scmd -metrics
// file) and prints a ranked report: what the run recorded as it died,
// and what the detectors find in the retained step records offline.
// It returns an error when hard anomalies are present, so
// `scbench analyze` exits non-zero exactly when the recorded run
// actually broke.
func AnalyzeReport(w io.Writer, path string) error {
	rep, err := flight.Analyze(path, flight.DetectConfig{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "postmortem analysis of %s\n", rep.Path)
	fmt.Fprintf(w, "  %d ranks, %d step records, %d completed steps\n",
		rep.Ranks, rep.Records, rep.Steps)
	if len(rep.Recorded) > 0 {
		fmt.Fprintf(w, "\nanomalies recorded by the run (%d, log order):\n", len(rep.Recorded))
		anomalyTable(w, rep.Recorded)
	}
	if len(rep.Replayed) == 0 {
		fmt.Fprintln(w, "\ndetector replay: no anomalies in the retained step records")
	} else {
		fmt.Fprintf(w, "\ndetector replay (%d anomalies, ranked by score):\n", len(rep.Replayed))
		anomalyTable(w, rep.Replayed)
	}
	if n := rep.Hard(); n > 0 {
		return fmt.Errorf("%d hard anomalies", n)
	}
	fmt.Fprintln(w, "\nno hard anomalies")
	return nil
}

func anomalyTable(w io.Writer, as []flight.Anomaly) {
	fmt.Fprintf(w, "  %-10s %8s %10s %5s  %s\n", "kind", "step", "score", "hard", "detail")
	for _, a := range as {
		hard := ""
		if a.Hard {
			hard = "HARD"
		}
		msg := strings.ReplaceAll(a.Msg, "\n", " | ")
		if len(msg) > 90 {
			msg = msg[:87] + "..."
		}
		fmt.Fprintf(w, "  %-10s %8d %10.1f %5s  %s\n", a.Kind, a.Step, a.Score, hard, msg)
	}
}
