package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sctuple/internal/perfmodel"
)

func TestPatternsReportContent(t *testing.T) {
	var buf bytes.Buffer
	PatternsReport(&buf, 4)
	out := buf.String()
	for _, want := range []string{
		"27 (27)", "14 (14)", "729 (729)", "378 (378)", "19683 (19683)", "9855 (9855)",
		"eighth-shell",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("patterns report missing %q", want)
		}
	}
}

func TestImportsReportContent(t *testing.T) {
	var buf bytes.Buffer
	ImportsReport(&buf, []int{2, 3}, []int{4, 8})
	out := buf.String()
	// Exact == formula for n=3, l=8: 488 and 1216.
	if !strings.Contains(out, "488") || !strings.Contains(out, "1216") {
		t.Errorf("imports report missing Eq.33 values:\n%s", out)
	}
}

func TestMidpointReportContent(t *testing.T) {
	var buf bytes.Buffer
	MidpointReport(&buf, 2, 3, 11.0)
	out := buf.String()
	for _, want := range []string{"14", "63", "172", "1.00×"} {
		if !strings.Contains(out, want) {
			t.Errorf("midpoint report missing %q:\n%s", want, out)
		}
	}
}

func TestFig7RatioNearTwo(t *testing.T) {
	rows, err := Fig7([]int{5, 8}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Ratio-2.0) > 0.05 {
			t.Errorf("cells=%d: FS/SC ratio %.3f, want ≈ 2 (paper 2.13)", r.Cells, r.Ratio)
		}
		if r.SCTriplets <= 0 || r.FSTriplets <= r.SCTriplets {
			t.Errorf("cells=%d: counts SC %d FS %d", r.Cells, r.SCTriplets, r.FSTriplets)
		}
	}
	// Linear growth: triplets per cell roughly constant.
	perCell0 := float64(rows[0].SCTriplets) / float64(rows[0].Cells)
	perCell1 := float64(rows[1].SCTriplets) / float64(rows[1].Cells)
	if math.Abs(perCell1-perCell0)/perCell0 > 0.25 {
		t.Errorf("triplet density not size-invariant: %.1f vs %.1f per cell", perCell0, perCell1)
	}
}

func TestFig8ReportRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8Report(&buf, perfmodel.IntelXeon(), []float64{24, 425, 2095}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Error("fig8 report missing crossover line")
	}
}

func TestFig9ReportRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9Report(&buf, perfmodel.BlueGeneQ(), 0.79e6, []int{16, 1024, 8192}, 16, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100.0%") {
		t.Errorf("fig9 report missing reference row:\n%s", out)
	}
}

func TestValidateAgreesWithModel(t *testing.T) {
	rows, err := Validate(3000, []int{8}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Import volumes should agree within edge effects (~25%).
		if rel := math.Abs(r.MeasuredImport-r.ModelImport) / r.ModelImport; rel > 0.3 {
			t.Errorf("%v: import measured %.0f vs model %.0f (rel %.2f)",
				r.Scheme, r.MeasuredImport, r.ModelImport, rel)
		}
	}
}

// TestValidateOverlapHidesWait: on the 2×2×2 silica world, the
// overlapped (default) exchange must spend strictly less time blocked
// in receives than the synchronous baseline Validate runs alongside it
// — the point of posting the halo before the interior stage. Wall-time
// comparisons are inherently noisy on a shared machine, so a sweep
// where any scheme loses is retried a few times; only a consistent
// loss fails.
func TestValidateOverlapHidesWait(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison over real runs")
	}
	const attempts = 4
	var last []ValidateRow
	for a := 0; a < attempts; a++ {
		rows, err := Validate(3000, []int{8}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, r := range rows {
			if !(r.WaitMs < r.SyncWaitMs) || !(r.OverlapFrac > 0 && r.OverlapFrac <= 1) {
				ok = false
			}
		}
		if ok {
			return
		}
		last = rows
	}
	for _, r := range last {
		t.Errorf("%v on %d tasks: overlapped wait %.3f ms vs sync %.3f ms (overlap %.2f) after %d attempts",
			r.Scheme, r.Tasks, r.WaitMs, r.SyncWaitMs, r.OverlapFrac, attempts)
	}
}
