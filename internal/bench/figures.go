package bench

import (
	"fmt"
	"io"
	"math"
	"os"

	"sctuple/internal/comm"
	"sctuple/internal/obs"
	"sctuple/internal/parmd"
	"sctuple/internal/perfmodel"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Fig8Report reproduces Figure 8: modeled runtime per MD step versus
// granularity for the three codes on one machine profile, with the
// SC↔Hybrid crossover location.
func Fig8Report(w io.Writer, machine perfmodel.Machine, grains []float64) error {
	m, err := perfmodel.NewModel(machine)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: runtime vs granularity on %s (%d tasks/node)\n",
		machine.Name, machine.TasksPerNode)
	fmt.Fprintln(w, "paper: SC-MD fastest at fine grain (9.7×/5.1× vs Hybrid at N/P=24 on")
	fmt.Fprintln(w, "Xeon/BG/Q); Hybrid-MD overtakes at coarse grain (paper crossover at")
	fmt.Fprintln(w, "N/P ≈ 2095 Xeon / 425 BG/Q; see EXPERIMENTS.md on the model's value)")
	fmt.Fprintln(w)
	tw := newTable(w)
	fmt.Fprintln(tw, "N/P\tSC-MD (ms)\tFS-MD (ms)\tHybrid-MD (ms)\tHy/SC\tFS/SC\tSC comm share")
	for _, row := range m.Fig8(grains) {
		fmt.Fprintf(tw, "%.0f\t%.3f\t%.3f\t%.3f\t%.2f\t%.2f\t%.0f%%\n",
			row.Grain,
			row.SC.Total()*1e3, row.FS.Total()*1e3, row.Hy.Total()*1e3,
			row.Hy.Total()/row.SC.Total(), row.FS.Total()/row.SC.Total(),
			100*row.SC.Comm()/row.SC.Total())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if x, err := m.Crossover(30, 1e8); err == nil {
		fmt.Fprintf(w, "\nSC↔Hybrid crossover: N/P ≈ %.0f\n", x)
	} else {
		fmt.Fprintf(w, "\nSC↔Hybrid crossover: none in range (%v)\n", err)
	}
	return nil
}

// DefaultFig8Grains is the granularity sweep of Figure 8
// (N/P = 24 … 3000).
func DefaultFig8Grains() []float64 {
	return []float64{24, 48, 96, 192, 425, 850, 1500, 2095, 3000}
}

// Fig9Report reproduces Figure 9: modeled strong-scaling speedup of a
// fixed-size silica system. Paper systems: 0.88 M atoms on 12-768
// Xeon cores; 0.79 M atoms on 16-8192 BG/Q cores (×4 tasks/core);
// extreme point 50.3 M atoms to 524 288 cores.
func Fig9Report(w io.Writer, machine perfmodel.Machine, nAtoms float64, cores []int, refCores, tasksPerCore int) error {
	m, err := perfmodel.NewModel(machine)
	if err != nil {
		return err
	}
	tasks := make([]int, len(cores))
	for i, c := range cores {
		tasks[i] = c * tasksPerCore
	}
	rows := m.Fig9(nAtoms, tasks, refCores*tasksPerCore)
	fmt.Fprintf(w, "Figure 9: strong scaling of %.3g atoms on %s (reference %d cores)\n",
		nAtoms, machine.Name, refCores)
	fmt.Fprintln(w)
	tw := newTable(w)
	fmt.Fprintln(tw, "cores\tN/task\tS(SC)\tη(SC)\tS(FS)\tη(FS)\tS(Hybrid)\tη(Hybrid)")
	for i, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.1f%%\t%.1f\t%.1f%%\t%.1f\t%.1f%%\n",
			cores[i], r.Grain, r.SC, 100*r.SCEff, r.FS, 100*r.FSEff, r.Hy, 100*r.HyEff)
	}
	return tw.Flush()
}

// ValidateRow compares a model prediction against a real in-process
// parallel run.
type ValidateRow struct {
	Scheme         parmd.Scheme
	Tasks          int
	Grain          float64
	MeasuredImport float64 // halo atoms per task per step (max rank)
	ModelImport    float64
	MeasuredSearch float64 // candidates per owned atom per step
	ModelSearch    float64
	// Halo + write-back traffic per task per step, from the runtime's
	// per-tag-class counters versus Eq. 31's byte model.
	MeasuredCommKB float64
	ModelCommKB    float64
	// Wall-time comparison per force evaluation on the critical-path
	// rank: the span recorder's phase timings split into compute
	// (binning, tuple search, force kernels) and communication (halo,
	// write-back, migration, reductions), against the analytic model
	// evaluated on the calibrated local machine profile
	// (perfmodel.LocalMachine).
	MeasuredComputeMs float64
	ModelComputeMs    float64
	MeasuredCommMs    float64
	ModelCommMs       float64
	// WaitMs is the per-task receive-blocked time per evaluation — the
	// comm runtime's waitNs counters averaged over tasks, i.e. the part
	// of MeasuredCommMs spent idle rather than packing and copying.
	WaitMs float64
	// SyncWaitMs is WaitMs of the same workload re-run with the
	// overlapped exchange disabled (Options.NoOverlap) — the
	// synchronous baseline the overlap is judged against.
	SyncWaitMs float64
	// OverlapFrac is the overlapped run's measured overlap efficiency,
	// interior compute over interior + halo wait (Result.OverlapFraction).
	OverlapFrac float64
	// Imbalance is the force-phase load imbalance (max/mean of per-rank
	// force-kernel time, Result.ForceImbalance) — the quantity the
	// adaptive balancer drives toward 1.
	Imbalance float64
	// StepMsP50/P90/P99 are per-step wall-time quantiles across all
	// (step, rank) samples, estimated from the run's parmd.step_ms
	// histogram buckets (obs.HistSnapshot.Quantiles) — the tail shape
	// a mean-only column hides.
	StepMsP50 float64
	StepMsP90 float64
	StepMsP99 float64
	// Phases is the run's full per-phase time decomposition across
	// ranks (max/mean/imbalance), for the report's breakdown table.
	Phases []obs.PhaseStat
}

// commPhases marks the span phases that count as communication; every
// other phase (bin, search, force:*, integrate) counts as compute.
var commPhases = map[string]bool{
	"halo": true, "halo:wait": true, "writeback": true, "migrate": true, "reduce": true,
}

// Validate runs real parallel silica MD on small in-process worlds and
// compares measured per-rank import volumes and search costs against
// the performance model's predictions — the evidence that Fig. 8/9 are
// driven by the implemented algorithms rather than assumptions.
func Validate(nAtoms int, ranks []int, steps int, seed int64) ([]ValidateRow, error) {
	return validateInto(nil, nAtoms, ranks, steps, seed)
}

// validateInto is Validate with an optional trace collector: each
// (scheme, rank-count) run's recorder is added as one named process,
// so the whole validation sweep exports as a single timeline file.
func validateInto(mt *obs.MultiTrace, nAtoms int, ranks []int, steps int, seed int64) ([]ValidateRow, error) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(cube(nAtoms / 24))
	local, err := perfmodel.LocalMachine()
	if err != nil {
		return nil, err
	}
	lm, err := perfmodel.NewModel(local)
	if err != nil {
		return nil, err
	}
	var out []ValidateRow
	for _, p := range ranks {
		cart := comm.NewCart(p)
		for _, scheme := range parmd.Schemes() {
			// 16 ring slots per rank suffice for PhaseStats (which reads
			// the cumulative per-phase totals, not the ring); with a trace
			// collector attached, keep every span of the short run.
			spans := 16
			if mt != nil {
				spans = 16 * (steps + 2)
			}
			rec := obs.NewRecorder(p, spans)
			reg := obs.NewRegistry()
			res, err := parmd.Run(cfg, model, parmd.Options{
				Scheme: scheme, Cart: cart, Dt: 1.0, Steps: steps,
				Recorder: rec, Metrics: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %v on %d ranks: %w", scheme, p, err)
			}
			mt.Add(fmt.Sprintf("%v ranks=%d", scheme, p), rec)
			maxRank := res.MaxRank()
			grain := float64(cfg.N()) / float64(p)
			r, err := perfmodel.MeasureRates(scheme)
			if err != nil {
				return nil, err
			}
			haloBytes := res.CommByClass["halo"].Bytes + res.CommByClass["force"].Bytes
			// Phase times accumulate over steps+1 force evaluations
			// (one initial); split them into compute vs communication
			// on the critical-path (max) rank.
			evals := float64(steps + 1)
			var compNs, commNs int64
			for _, ps := range res.Phases {
				if commPhases[ps.Phase] {
					commNs += ps.MaxNs
				} else {
					compNs += ps.MaxNs
				}
			}
			var waitNs int64
			for _, s := range res.CommByClass {
				waitNs += s.Wait.Nanoseconds()
			}
			// Synchronous baseline: the identical workload with the
			// overlapped exchange off, for the wait-time comparison
			// (no recorder — only the comm counters are read).
			syncRes, err := parmd.Run(cfg, model, parmd.Options{
				Scheme: scheme, Cart: cart, Dt: 1.0, Steps: steps,
				NoOverlap: true,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sync baseline %v on %d ranks: %w", scheme, p, err)
			}
			var syncWaitNs int64
			for _, s := range syncRes.CommByClass {
				syncWaitNs += s.Wait.Nanoseconds()
			}
			st := lm.StepTime(scheme, grain)
			p50, p90, p99 := reg.Snapshot().Histograms["parmd.step_ms"].Quantiles()
			out = append(out, ValidateRow{
				Scheme: scheme,
				Tasks:  p,
				Grain:  grain,
				// Import stats accumulate over steps+1 force
				// evaluations (one initial).
				MeasuredImport: float64(maxRank.AtomsImported) / evals,
				ModelImport:    perfmodel.ImportAtoms(scheme, grain),
				MeasuredSearch: float64(maxRank.SearchCandidates) / evals / grain,
				ModelSearch:    r.SearchPerAtom,
				// World totals averaged over tasks (the model predicts a
				// typical task, not the max rank).
				MeasuredCommKB: float64(haloBytes) / float64(p) / evals / 1e3,
				ModelCommKB: perfmodel.ImportAtoms(scheme, grain) *
					(parmd.HaloAtomWireBytes + parmd.ForceWireBytes) / 1e3,
				MeasuredComputeMs: float64(compNs) / evals / 1e6,
				ModelComputeMs:    (st.Search + st.Eval) * 1e3,
				MeasuredCommMs:    float64(commNs) / evals / 1e6,
				ModelCommMs:       st.Comm() * 1e3,
				WaitMs:            float64(waitNs) / float64(p) / evals / 1e6,
				SyncWaitMs:        float64(syncWaitNs) / float64(p) / evals / 1e6,
				OverlapFrac:       res.OverlapFraction(),
				Imbalance:         res.ForceImbalance(),
				StepMsP50:         p50,
				StepMsP90:         p90,
				StepMsP99:         p99,
				Phases:            res.Phases,
			})
		}
	}
	return out, nil
}

// writeTraceFile writes a collected multi-run trace to path.
func writeTraceFile(path string, mt *obs.MultiTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mt.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cube returns near-cubic supercell counts for a unit-cell total.
func cube(cells int) (int, int, int) {
	s := int(math.Round(math.Cbrt(float64(cells))))
	if s < 1 {
		s = 1
	}
	return s, s, s
}

// ValidateReport runs Validate and prints the comparison.
func ValidateReport(w io.Writer, nAtoms int, ranks []int, steps int, seed int64) error {
	return ValidateReportTrace(w, nAtoms, ranks, steps, seed, "")
}

// ValidateReportTrace is ValidateReport plus span-timeline export:
// with tracePath non-empty, every validation run's per-rank spans are
// written there as one Chrome trace-event file (one named process per
// scheme × rank count), loadable in Perfetto.
func ValidateReportTrace(w io.Writer, nAtoms int, ranks []int, steps int, seed int64, tracePath string) error {
	var mt *obs.MultiTrace
	if tracePath != "" {
		mt = &obs.MultiTrace{}
	}
	rows, err := validateInto(mt, nAtoms, ranks, steps, seed)
	if err != nil {
		return err
	}
	if mt != nil {
		if err := writeTraceFile(tracePath, mt); err != nil {
			return err
		}
		fmt.Fprintf(w, "span timeline written to %s\n\n", tracePath)
	}
	fmt.Fprintln(w, "Model validation: real in-process parallel runs vs performance model")
	fmt.Fprintln(w, "(measured = max-rank averages per step; model = analytic geometry + measured rates)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Note: import volumes should agree within edge effects. The SC/FS-MD")
	fmt.Fprintln(w, "search columns differ by design: the parallel engines enumerate all")
	fmt.Fprintln(w, "terms on the shared pair-sized lattice (which keeps the octant halo at")
	fmt.Fprintln(w, "one cell), while the model uses the serial engines' per-cutoff lattices")
	fmt.Fprintln(w, "(§3.1.1); see EXPERIMENTS.md for the analysis of this trade-off.")
	fmt.Fprintln(w)
	tw := newTable(w)
	fmt.Fprintln(tw, "scheme\ttasks\tN/task\timport meas\timport model\tsearch/atom meas\tsearch/atom model\tcomm KB meas\tcomm KB model")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%.1f\n",
			r.Scheme, r.Tasks, r.Grain,
			r.MeasuredImport, r.ModelImport,
			r.MeasuredSearch, r.ModelSearch,
			r.MeasuredCommKB, r.ModelCommKB)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nWall time per force evaluation: span-recorder phase timings (max rank)")
	fmt.Fprintln(w, "vs the analytic model on the calibrated local machine profile; wait is")
	fmt.Fprintln(w, "the per-task receive-blocked share of the measured comm time, sync wait")
	fmt.Fprintln(w, "the same workload with the overlapped exchange disabled, and overlap the")
	fmt.Fprintln(w, "fraction of the exchange window hidden behind interior compute;")
	fmt.Fprintln(w, "imbalance is max/mean per-rank force-kernel time (1.00 = perfect);")
	fmt.Fprintln(w, "step ms p50/p90/p99 are per-(step, rank) wall-time quantiles estimated")
	fmt.Fprintln(w, "from the run's step-time histogram buckets")
	fmt.Fprintln(w)
	tw = newTable(w)
	fmt.Fprintln(tw, "scheme\ttasks\tcompute ms meas\tcompute ms model\tcomm ms meas\tcomm ms model\twait ms\tsync wait ms\toverlap\timbalance\tstep ms p50\tp90\tp99")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Scheme, r.Tasks,
			r.MeasuredComputeMs, r.ModelComputeMs,
			r.MeasuredCommMs, r.ModelCommMs, r.WaitMs, r.SyncWaitMs, r.OverlapFrac, r.Imbalance,
			r.StepMsP50, r.StepMsP90, r.StepMsP99)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nPer-phase decomposition (whole run, max/mean over ranks):")
	fmt.Fprintln(w)
	tw = newTable(w)
	fmt.Fprintln(tw, "scheme\ttasks\tphase\tmax ms\tmean ms\timbalance")
	for _, r := range rows {
		for _, ps := range r.Phases {
			fmt.Fprintf(tw, "%v\t%d\t%s\t%.3f\t%.3f\t%.2f\n",
				r.Scheme, r.Tasks, ps.Phase,
				float64(ps.MaxNs)/1e6, ps.MeanNs/1e6, ps.Imbalance())
		}
	}
	return tw.Flush()
}
