package bench

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
	"sctuple/internal/obs/serve"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// spikeWorkload is the tiny 2-rank system of the end-to-end flight
// test: small enough that sub-millisecond steps make a 25 ms halo
// stall an unmistakable wall-time spike.
func spikeWorkload() (*workload.Config, *potential.Model) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	rng := rand.New(rand.NewSource(7))
	cfg := workload.LJFluid(rng, 256, 0.55, 3.4)
	cfg.Thermalize(rng, model, 120)
	return cfg, model
}

// haloRate measures the halo messages sent during setup and per step
// with two clean counting runs, so the spike window of the main run
// can be pinned to a chosen step exactly — no guessing at the
// topology's message pattern.
func haloRate(t *testing.T, ranks int) (setup, perStep int64) {
	t.Helper()
	count := func(steps int) int64 {
		cfg, model := spikeWorkload()
		dt, err := parmd.NewDelayTransport(ranks, "halo", 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parmd.Run(cfg, model, parmd.Options{
			Scheme: parmd.SchemeSC, Cart: comm.NewCart(ranks),
			Dt: 1, Steps: steps, Transport: dt,
		}); err != nil {
			t.Fatal(err)
		}
		return dt.Matched()
	}
	a, b := count(4), count(8)
	perStep = (b - a) / 4
	if perStep <= 0 {
		t.Fatalf("halo message rate %d per step (counts %d @4, %d @8)", perStep, a, b)
	}
	return a - 4*perStep, perStep
}

// TestFlightSpikeEndToEnd is the observability acceptance path in one
// piece: a 2-rank run with an injected step-time spike must report a
// wall anomaly through the live flight recorder and /anomalies, and
// writing the postmortem bundle and replaying it offline (the
// `scbench analyze` path) must reproduce the finding and flag the run
// as broken.
func TestFlightSpikeEndToEnd(t *testing.T) {
	const (
		ranks     = 2
		steps     = 60
		spikeStep = 45
	)
	setup, perStep := haloRate(t, ranks)

	cfg, model := spikeWorkload()
	// Stall one step's worth of halo sends at spikeStep, well past the
	// wall detector's warmup.
	dt, err := parmd.NewDelayTransport(ranks, "halo",
		int(setup+int64(spikeStep)*perStep), int(perStep), 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tee := obs.NewStepTee()
	fl := flight.New(flight.Config{Ranks: ranks, Registry: reg, Tee: tee})
	sw := obs.NewStepWriterTee(nil, tee)
	sw.SetSink(fl)
	rec := obs.NewRecorder(ranks, 16*(steps+2))
	if _, err := parmd.Run(cfg, model, parmd.Options{
		Scheme: parmd.SchemeSC, Cart: comm.NewCart(ranks),
		Dt: 1, Steps: steps, Transport: dt,
		StepLog: sw, Metrics: reg, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}
	fl.Flush()

	snap := fl.Anomalies()
	if snap.ByKind[flight.KindWall] == 0 {
		t.Fatalf("no wall anomaly after a %d-step spike at step %d: %+v",
			perStep, spikeStep, snap)
	}
	if got := reg.Counter("anomaly.wall.total").Load(); got == 0 {
		t.Error("anomaly.wall.total counter not bumped")
	}

	// The same snapshot over the wire, as scbench watch reads it.
	srv := httptest.NewServer((&serve.Server{
		Registry: reg, Recorder: rec, Steps: tee, Flight: fl,
	}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/anomalies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire flight.AnomalySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.ByKind[flight.KindWall] == 0 {
		t.Errorf("/anomalies lost the wall anomaly: %+v", wire)
	}

	// Postmortem bundle + offline replay reproduce the finding.
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := flight.WriteBundle(dir, flight.BundleSources{
		Flight: fl, Trace: rec, Registry: reg, Reason: "test spike",
	}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = AnalyzeReport(&out, dir)
	if err == nil {
		t.Fatalf("analyze of a spiked run reported no hard anomalies:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "hard anomalies") {
		t.Fatalf("analyze failed for the wrong reason: %v", err)
	}
	if !strings.Contains(out.String(), flight.KindWall) {
		t.Errorf("analyze report missing the wall anomaly:\n%s", out.String())
	}
}
