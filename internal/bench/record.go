package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"

	"sctuple/internal/comm"
	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
	"sctuple/internal/parmd"
	"sctuple/internal/perfmodel"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// BenchSchemaVersion is the schema of the BENCH_*.json files scbench
// record writes and scbench compare reads. Bump it on any breaking
// change to the field layout; compare refuses to diff files with
// mismatched versions.
//
// Version history:
//
//	1  initial layout
//	2  overlapped halo exchange: workloads gain overlap_fraction, and
//	   phase_ns carries the split force:interior/force:boundary and
//	   halo:wait phases in place of SC/FS per-term force spans
//	3  cell-sorted SoA storage and the zero-alloc step loop:
//	   allocs_per_step is now the barrier-fenced steady-state malloc
//	   rate of the step loop alone (Result.StepAllocs) instead of a
//	   whole-run delta that included setup, and compare enforces an
//	   absolute allocs_per_step ceiling on the new record
//	4  adaptive repartitioning: workloads gain repartitions (count of
//	   boundary moves, 0 on these uniform benchmark runs) and
//	   imbalance (max/mean per-rank force-kernel time over the whole
//	   run, the quantity the balancer drives toward 1)
const BenchSchemaVersion = 4

// HostProfile pins a recorded benchmark to the machine it ran on: the
// Go runtime's identification plus the calibrated per-operation
// constants of perfmodel.LocalMachine, so two files can be judged
// comparable (or not) before their timings are.
type HostProfile struct {
	Name        string  `json:"name"`
	GoOS        string  `json:"goos"`
	GoArch      string  `json:"goarch"`
	NumCPU      int     `json:"num_cpu"`
	CandidateNs float64 `json:"candidate_ns"` // tuple-search candidate cost
	PairEvalNs  float64 `json:"pair_eval_ns"`
	TripletNs   float64 `json:"triplet_eval_ns"`
	LatencyNs   float64 `json:"latency_ns"`     // transport λ
	BandwidthMB float64 `json:"bandwidth_mb_s"` // transport β
}

// CommStats is the JSON shape of one tag class's communication volume.
type CommStats struct {
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	WaitNs   int64 `json:"wait_ns"`
}

// BenchWorkload is one recorded run: identification, the per-phase
// max-rank time decomposition, per-class communication volume, the
// allocation rate, and the health-probe summary.
type BenchWorkload struct {
	Name          string               `json:"name"`
	Scheme        string               `json:"scheme"`
	Atoms         int                  `json:"atoms"`
	Steps         int                  `json:"steps"`
	Ranks         int                  `json:"ranks"`
	Workers       int                  `json:"workers"`
	WallMsPerStep float64              `json:"wall_ms_per_step"`
	AllocsPerStep float64              `json:"allocs_per_step"`
	PhaseNs       map[string]int64     `json:"phase_ns"` // cumulative max-rank ns per phase
	Comm          map[string]CommStats `json:"comm"`     // per tag class, world totals
	// OverlapFraction is the run's measured overlap efficiency:
	// interior compute over interior + halo wait (Result.OverlapFraction).
	OverlapFraction float64 `json:"overlap_fraction"`
	// Repartitions counts adaptive boundary moves (0 when the balancer
	// is off or the load never trips its threshold); Imbalance is the
	// whole-run force-phase load imbalance, max/mean of per-rank
	// force-kernel time (Result.ForceImbalance).
	Repartitions int            `json:"repartitions"`
	Imbalance    float64        `json:"imbalance"`
	Health       health.Summary `json:"health"`
}

// BenchFile is the schema-versioned benchmark record scbench record
// writes as BENCH_<gitsha>.json.
type BenchFile struct {
	SchemaVersion int             `json:"schema_version"`
	GitSHA        string          `json:"git_sha"`
	Seed          int64           `json:"seed"`
	Host          HostProfile     `json:"host"`
	Workloads     []BenchWorkload `json:"workloads"`
}

// RecordOptions parameterizes one benchmark recording.
type RecordOptions struct {
	Atoms   int // β-cristobalite is built to the nearest unit-cell cube
	Steps   int
	Ranks   int
	Workers int
	Seed    int64  // thermalization seed, recorded for reproducibility
	GitSHA  string // recorded verbatim
}

// Record runs the standard benchmark sweep — one thermalized
// β-cristobalite NVE run per tuple-search scheme on an in-process rank
// world, with the span recorder and every health probe on — and
// returns the schema-versioned result. Probe thresholds are generous
// (the run must be healthy on any correct build; the probes are here
// to mark a miscompiled or physically broken binary's benchmark as
// untrustworthy, not to grade integration accuracy).
func Record(opt RecordOptions) (*BenchFile, error) {
	// Below ~1500 atoms the β-cristobalite cube is too small for the
	// full-shell scheme's 2-cell halo once the domain is split across
	// ranks, so the floor is part of the recording contract.
	if opt.Atoms < 1500 {
		opt.Atoms = 1500
	}
	if opt.Steps <= 0 {
		opt.Steps = 10
	}
	if opt.Ranks <= 0 {
		opt.Ranks = 2
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}

	local, err := perfmodel.LocalMachine()
	if err != nil {
		return nil, err
	}
	bf := &BenchFile{
		SchemaVersion: BenchSchemaVersion,
		GitSHA:        opt.GitSHA,
		Seed:          opt.Seed,
		Host: HostProfile{
			Name:        local.Name,
			GoOS:        runtime.GOOS,
			GoArch:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			CandidateNs: local.CandidateTime * 1e9,
			PairEvalNs:  local.PairEvalTime * 1e9,
			TripletNs:   local.TripletEvalTime * 1e9,
			LatencyNs:   local.Latency * 1e9,
			BandwidthMB: local.Bandwidth / 1e6,
		},
	}

	model := potential.NewSilicaModel()
	cart := comm.NewCart(opt.Ranks)
	for _, scheme := range parmd.Schemes() {
		cfg := workload.BetaCristobalite(cube(opt.Atoms / 24))
		cfg.Thermalize(rand.New(rand.NewSource(opt.Seed)), model, 300)
		mon := health.New(health.Config{Every: 1, ParityEvery: opt.Steps})
		rec := obs.NewRecorder(opt.Ranks, 16)

		runtime.GC()
		res, err := parmd.Run(cfg, model, parmd.Options{
			Scheme: scheme, Cart: cart, Dt: 0.5, Steps: opt.Steps,
			Workers: opt.Workers, Recorder: rec, Health: mon,
			MeasureAllocs: true,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: record %v: %w", scheme, err)
		}

		w := BenchWorkload{
			Name:          fmt.Sprintf("silica-%v-r%d", scheme, opt.Ranks),
			Scheme:        scheme.String(),
			Atoms:         cfg.N(),
			Steps:         opt.Steps,
			Ranks:         opt.Ranks,
			Workers:       opt.Workers,
			WallMsPerStep: res.Wall.Seconds() * 1e3 / float64(opt.Steps),
			AllocsPerStep: res.StepAllocs,
			PhaseNs:       make(map[string]int64, len(res.Phases)),
			Comm:          make(map[string]CommStats, len(res.CommByClass)),
			OverlapFraction: res.OverlapFraction(),
			Repartitions:    res.Repartitions,
			Imbalance:       res.ForceImbalance(),
			Health:          res.Health,
		}
		for _, ps := range res.Phases {
			w.PhaseNs[ps.Phase] = ps.MaxNs
		}
		for class, s := range res.CommByClass {
			if s.Messages == 0 && s.Bytes == 0 && s.Wait == 0 {
				continue
			}
			w.Comm[class] = CommStats{
				Messages: s.Messages, Bytes: s.Bytes, WaitNs: s.Wait.Nanoseconds(),
			}
		}
		bf.Workloads = append(bf.Workloads, w)
	}
	return bf, nil
}

// WriteBenchFile writes a benchmark record as indented JSON.
func WriteBenchFile(path string, bf *BenchFile) error {
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchFile reads and schema-checks a benchmark record.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if bf.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d, this build reads %d",
			path, bf.SchemaVersion, BenchSchemaVersion)
	}
	return &bf, nil
}

// Regression is one metric of one workload that degraded beyond the
// comparison threshold.
type Regression struct {
	Workload string
	Metric   string
	Old, New float64
	Pct      float64 // relative change in percent (+ = worse)
}

// Absolute floors below which a metric is considered noise: timing
// jitter on sub-millisecond phases and small allocation counts would
// otherwise trip any relative threshold.
const (
	minPhaseNs = 2e6 // ignore phases under 2 ms cumulative
	minAllocs  = 256 // ignore allocation rates under 256 allocs/step
)

// Compare diffs two benchmark records workload by workload and returns
// every regression: a timing, allocation, or communication metric of a
// shared workload that got worse by more than thresholdPct percent
// (after the absolute noise floors), or a health summary that went
// unhealthy in the new record — an unhealthy run's numbers are not a
// benchmark, so that is a regression at any threshold. Workloads
// present in only one file are skipped (recording configurations may
// evolve); an improvement is never a regression.
//
// maxAllocs is an absolute ceiling on every new workload's steady-state
// allocs_per_step, enforced regardless of the baseline — the step loop
// is zero-alloc by construction, so any rate above a small slack means
// a per-step allocation crept back in. Zero or negative disables the
// ceiling.
func Compare(old, new *BenchFile, thresholdPct, maxAllocs float64) []Regression {
	byName := make(map[string]*BenchWorkload, len(old.Workloads))
	for i := range old.Workloads {
		byName[old.Workloads[i].Name] = &old.Workloads[i]
	}
	var regs []Regression
	for i := range new.Workloads {
		nw := &new.Workloads[i]
		ow := byName[nw.Name]
		if ow == nil {
			continue
		}
		add := func(metric string, oldV, newV, floor float64) {
			if oldV < floor && newV < floor {
				return
			}
			base := math.Max(oldV, floor)
			pct := (newV - oldV) / base * 100
			if pct > thresholdPct {
				regs = append(regs, Regression{
					Workload: nw.Name, Metric: metric, Old: oldV, New: newV, Pct: pct,
				})
			}
		}
		add("wall_ms_per_step", ow.WallMsPerStep, nw.WallMsPerStep, 0.01)
		add("allocs_per_step", ow.AllocsPerStep, nw.AllocsPerStep, minAllocs)
		if maxAllocs > 0 && nw.AllocsPerStep > maxAllocs {
			regs = append(regs, Regression{
				Workload: nw.Name, Metric: "allocs_per_step.ceiling",
				Old: maxAllocs, New: nw.AllocsPerStep,
				Pct: (nw.AllocsPerStep - maxAllocs) / maxAllocs * 100,
			})
		}
		for phase, oldNs := range ow.PhaseNs {
			add("phase_ns."+phase, float64(oldNs), float64(nw.PhaseNs[phase]), minPhaseNs)
		}
		for class, oc := range ow.Comm {
			nc := nw.Comm[class]
			add("comm."+class+".bytes", float64(oc.Bytes), float64(nc.Bytes), 1)
			add("comm."+class+".messages", float64(oc.Messages), float64(nc.Messages), 1)
		}
		if !nw.Health.Healthy() {
			for _, p := range nw.Health.Probes {
				if p.Severity() == health.OK {
					continue
				}
				regs = append(regs, Regression{
					Workload: nw.Name,
					Metric:   "health." + p.Probe,
					Old:      0,
					New:      float64(p.Warn + p.Fail),
					Pct:      math.Inf(1),
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Workload != regs[j].Workload {
			return regs[i].Workload < regs[j].Workload
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// CompareReport prints a comparison and returns an error when it found
// regressions — the non-zero-exit contract of scbench compare.
func CompareReport(w *os.File, oldPath, newPath string, thresholdPct, maxAllocs float64) error {
	old, err := LoadBenchFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := LoadBenchFile(newPath)
	if err != nil {
		return err
	}
	regs := Compare(old, cur, thresholdPct, maxAllocs)
	fmt.Fprintf(w, "bench compare: %s (sha %s) vs %s (sha %s), threshold %g%%, alloc ceiling %g/step\n",
		oldPath, shortSHA(old.GitSHA), newPath, shortSHA(cur.GitSHA), thresholdPct, maxAllocs)
	if len(regs) == 0 {
		fmt.Fprintln(w, "no regressions")
		return nil
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "workload\tmetric\told\tnew\tchange")
	for _, r := range regs {
		change := fmt.Sprintf("+%.1f%%", r.Pct)
		if math.IsInf(r.Pct, 1) {
			change = "unhealthy"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%s\n", r.Workload, r.Metric, r.Old, r.New, change)
	}
	tw.Flush()
	return fmt.Errorf("bench: %d regression(s) beyond %g%%", len(regs), thresholdPct)
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "?"
	}
	return sha
}
