package bench

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"sctuple/internal/obs/health"
)

// recordTiny runs the smallest real recording once and shares it
// across the tests in this file — each Record call is three short
// parallel MD runs.
var tinyBench *BenchFile

func recordTiny(t *testing.T) *BenchFile {
	t.Helper()
	if tinyBench != nil {
		return tinyBench
	}
	bf, err := Record(RecordOptions{
		Atoms: 1500, Steps: 2, Ranks: 2, Seed: 7, GitSHA: "deadbeefcafe0123",
	})
	if err != nil {
		t.Fatal(err)
	}
	tinyBench = bf
	return bf
}

// TestBenchFileGoldenSchema pins the serialized shape of a benchmark
// record: the exact top-level key set, the exact per-workload key set,
// and the identification fields a regression pipeline keys on. A field
// rename or removal must fail here and force a schema-version bump.
func TestBenchFileGoldenSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("records a real benchmark")
	}
	bf := recordTiny(t)

	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"schema_version", "git_sha", "seed", "host", "workloads"}
	if len(top) != len(wantTop) {
		t.Errorf("top-level keys %v, want exactly %v", keys(top), wantTop)
	}
	for _, k := range wantTop {
		if _, ok := top[k]; !ok {
			t.Errorf("top-level key %q missing", k)
		}
	}

	var workloads []map[string]json.RawMessage
	if err := json.Unmarshal(top["workloads"], &workloads); err != nil {
		t.Fatal(err)
	}
	if len(workloads) != 3 {
		t.Fatalf("%d workloads, want one per scheme (3)", len(workloads))
	}
	wantWL := []string{"name", "scheme", "atoms", "steps", "ranks", "workers",
		"wall_ms_per_step", "allocs_per_step", "phase_ns", "comm", "overlap_fraction",
		"repartitions", "imbalance", "health"}
	for _, wl := range workloads {
		if len(wl) != len(wantWL) {
			t.Errorf("workload keys %v, want exactly %v", keys(wl), wantWL)
		}
		for _, k := range wantWL {
			if _, ok := wl[k]; !ok {
				t.Errorf("workload key %q missing", k)
			}
		}
	}

	if bf.SchemaVersion != BenchSchemaVersion {
		t.Errorf("schema_version %d, want %d", bf.SchemaVersion, BenchSchemaVersion)
	}
	if bf.Seed != 7 || bf.GitSHA != "deadbeefcafe0123" {
		t.Errorf("identification seed=%d sha=%q not recorded verbatim", bf.Seed, bf.GitSHA)
	}
	if bf.Host.NumCPU <= 0 || bf.Host.GoArch == "" {
		t.Errorf("host profile incomplete: %+v", bf.Host)
	}
	for _, w := range bf.Workloads {
		if !w.Health.Healthy() {
			t.Errorf("workload %s recorded unhealthy: %+v", w.Name, w.Health)
		}
		// SC/FS time their force kernels under the two-stage
		// interior/boundary spans; Hybrid keeps the per-term spans.
		forceNs := w.PhaseNs["force:interior"] + w.PhaseNs["force:boundary"]
		if w.Scheme == "Hybrid-MD" {
			forceNs = w.PhaseNs["force:n2"]
		}
		if w.WallMsPerStep <= 0 || forceNs <= 0 {
			t.Errorf("workload %s has empty timings: wall=%g phases=%v",
				w.Name, w.WallMsPerStep, w.PhaseNs)
		}
		if w.PhaseNs["halo:wait"] <= 0 {
			t.Errorf("workload %s recorded no halo:wait time (overlapped exchange is the default): %v",
				w.Name, w.PhaseNs)
		}
		if w.OverlapFraction <= 0 || w.OverlapFraction > 1 {
			t.Errorf("workload %s overlap_fraction = %g, want in (0, 1]", w.Name, w.OverlapFraction)
		}
		if w.Comm["halo"].Bytes <= 0 {
			t.Errorf("workload %s recorded no halo traffic: %v", w.Name, w.Comm)
		}
		// The benchmark sweep runs with the balancer off: the count must
		// be zero, and the imbalance ratio is max/mean so it is ≥ 1.
		if w.Repartitions != 0 {
			t.Errorf("workload %s recorded %d repartitions with no balancer", w.Name, w.Repartitions)
		}
		if w.Imbalance < 1 {
			t.Errorf("workload %s imbalance = %g, want ≥ 1", w.Name, w.Imbalance)
		}
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestBenchFileRoundTripAndSchemaGate: a written record loads back
// identically, and a file with a foreign schema version is refused.
func TestBenchFileRoundTripAndSchemaGate(t *testing.T) {
	if testing.Short() {
		t.Skip("records a real benchmark")
	}
	bf := recordTiny(t)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBenchFile(path, bf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitSHA != bf.GitSHA || len(got.Workloads) != len(bf.Workloads) {
		t.Errorf("round trip lost data: %+v", got)
	}

	got.SchemaVersion = BenchSchemaVersion + 1
	bad := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := WriteBenchFile(bad, got); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(bad); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("foreign schema version loaded without error (err=%v)", err)
	}
}

// compareFixture builds a small synthetic baseline, bypassing Record —
// Compare's logic is pure data.
func compareFixture() *BenchFile {
	return &BenchFile{
		SchemaVersion: BenchSchemaVersion,
		Workloads: []BenchWorkload{{
			Name:          "silica-SC-MD-r2",
			WallMsPerStep: 10,
			AllocsPerStep: 5000,
			PhaseNs:       map[string]int64{"force:n2": 8e6, "halo": 4e6, "tiny": 1e5},
			Comm: map[string]CommStats{
				"halo":  {Messages: 120, Bytes: 1 << 20},
				"force": {Messages: 120, Bytes: 1 << 19},
			},
			Health: health.Summary{Probes: []health.ProbeSummary{
				{Probe: health.ProbeEnergyDrift, OK: 4},
			}},
		}},
	}
}

func TestCompareCleanOnIdentical(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	if regs := Compare(old, cur, 10, 0); len(regs) != 0 {
		t.Errorf("identical files produced regressions: %+v", regs)
	}
}

// TestCompareFlagsDegradations degrades one copy by hand — slower
// wall clock, fatter halo exchange, a failing probe — and checks each
// shows up as a regression while improvements and sub-floor noise do
// not.
func TestCompareFlagsDegradations(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	w := &cur.Workloads[0]
	w.WallMsPerStep = 25                                      // +150%
	w.Comm["halo"] = CommStats{Messages: 120, Bytes: 3 << 20} // bytes ×3
	w.PhaseNs["force:n2"] = 4e6                               // improvement: not a regression
	w.PhaseNs["tiny"] = 3e5                                   // ×3, but under the 2 ms floor
	w.AllocsPerStep = 5100                                    // +2%, under threshold
	w.Health.Probes[0].Fail = 2                               // unhealthy run

	regs := Compare(old, cur, 10, 0)
	got := map[string]float64{}
	for _, r := range regs {
		if r.Workload != "silica-SC-MD-r2" {
			t.Errorf("regression on unknown workload %q", r.Workload)
		}
		got[r.Metric] = r.Pct
	}
	if pct := got["wall_ms_per_step"]; math.Abs(pct-150) > 1e-9 {
		t.Errorf("wall regression pct = %g, want 150", pct)
	}
	if pct := got["comm.halo.bytes"]; math.Abs(pct-200) > 1e-9 {
		t.Errorf("halo bytes regression pct = %g, want 200", pct)
	}
	if pct, ok := got["health."+health.ProbeEnergyDrift]; !ok || !math.IsInf(pct, 1) {
		t.Errorf("unhealthy probe not flagged (got %v)", got)
	}
	if len(regs) != 3 {
		t.Errorf("%d regressions %v, want exactly wall + halo bytes + health", len(regs), got)
	}
}

// TestCompareAllocCeiling: the absolute allocs_per_step ceiling trips
// on the new record's rate alone — even when the baseline was equally
// bad, so a pair of leaky records can never ratchet the ceiling away —
// and a rate at or under the ceiling (or a disabled ceiling) passes.
func TestCompareAllocCeiling(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	regs := Compare(old, cur, 10, 100)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_step.ceiling" {
		t.Fatalf("ceiling regressions = %+v, want exactly allocs_per_step.ceiling", regs)
	}
	if regs[0].Old != 100 || regs[0].New != 5000 {
		t.Errorf("ceiling regression old=%g new=%g, want 100 and 5000", regs[0].Old, regs[0].New)
	}

	cur.Workloads[0].AllocsPerStep = 100 // at the ceiling: allowed
	if regs := Compare(old, cur, 10, 100); len(regs) != 0 {
		t.Errorf("rate at the ceiling flagged: %+v", regs)
	}
	cur.Workloads[0].AllocsPerStep = 5000
	if regs := Compare(old, cur, 10, 0); len(regs) != 0 {
		t.Errorf("disabled ceiling still flagged: %+v", regs)
	}
}

// TestCompareSkipsUnmatchedWorkloads: a workload present in only one
// file is not comparable and must not fail the pipeline.
func TestCompareSkipsUnmatchedWorkloads(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Workloads[0].Name = "silica-SC-MD-r4"
	cur.Workloads[0].WallMsPerStep = 1000
	if regs := Compare(old, cur, 10, 0); len(regs) != 0 {
		t.Errorf("unmatched workload compared anyway: %+v", regs)
	}
}
