package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblateReportRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep takes a few seconds")
	}
	var buf bytes.Buffer
	if err := AblateReport(&buf, 800, 5, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"R-COLLAPSE", "OC-SHIFT", "Triplet search strategy",
		"Midpoint cell refinement", "Verlet-skin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing section %q", want)
		}
	}
}

func TestValidateReportRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := ValidateReport(&buf, 1500, []int{1}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SC-MD") || !strings.Contains(buf.String(), "Hybrid-MD") {
		t.Error("validate report missing scheme rows")
	}
}

func TestFig7ReportRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7Report(&buf, []int{5}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("fig7 report missing header")
	}
}

func TestDefaultFig8GrainsSpanPaperRange(t *testing.T) {
	g := DefaultFig8Grains()
	if g[0] != 24 || g[len(g)-1] != 3000 {
		t.Errorf("grain sweep %v should span 24..3000 (paper §5.2)", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("grains not increasing at %d", i)
		}
	}
}
