package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TransportReport benchmarks the in-process channel transport against
// the socket fabric (every rank a goroutine with its own
// SocketTransport over the full wire protocol — the same bytes real
// worker processes move) on the same workload, per scheme. Forces are
// required to be bit-identical across transports; any deviation is
// reported and fails the run, because the wire codec round-trips
// float64 bits exactly and the reduction order is fixed by the
// topology, not the transport.
func TransportReport(w io.Writer, atoms, ranks, steps int, seed int64, network string) error {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.UniformSilica(rng, atoms)
	model := potential.NewSilicaModel()
	cart := comm.NewCart(ranks)

	fmt.Fprintf(w, "Transport comparison: %d-atom silica, %d ranks (%v), %d steps, socket network %s\n",
		cfg.N(), ranks, cart.Dims, steps, network)
	tw := newTable(w)
	fmt.Fprintln(tw, "scheme\ttransport\tms/step\tcomm MB\tmsgs\trecv wait ms\tforces")
	for _, scheme := range parmd.Schemes() {
		opt := parmd.Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: steps}
		start := time.Now()
		chanRes, err := parmd.Run(cfg, model, opt)
		if err != nil {
			return fmt.Errorf("%v chan: %w", scheme, err)
		}
		chanMS := time.Since(start).Seconds() * 1e3 / float64(max(1, steps))
		fmt.Fprintf(tw, "%v\tchan\t%.2f\t%.2f\t%d\t%.1f\treference\n",
			scheme, chanMS, float64(chanRes.Comm.Bytes)/1e6, chanRes.Comm.Messages,
			chanRes.Comm.Wait.Seconds()*1e3)

		start = time.Now()
		sockRes, err := parmd.RunSocket(cfg, model, opt, network)
		if err != nil {
			return fmt.Errorf("%v socket: %w", scheme, err)
		}
		sockMS := time.Since(start).Seconds() * 1e3 / float64(max(1, steps))
		verdict := "bit-identical"
		if dev, ok := forcesBitIdentical(chanRes, sockRes); !ok {
			verdict = fmt.Sprintf("DIFFER (max |ΔF| %.2e)", dev)
		}
		fmt.Fprintf(tw, "%v\tsocket\t%.2f\t%.2f\t%d\t%.1f\t%s\n",
			scheme, sockMS, float64(sockRes.Comm.Bytes)/1e6, sockRes.Comm.Messages,
			sockRes.Comm.Wait.Seconds()*1e3, verdict)
		if verdict != "bit-identical" {
			tw.Flush()
			return fmt.Errorf("%v: socket forces differ from channel forces", scheme)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nsocket ms/step includes per-rank connection setup; comm columns count the same")
	fmt.Fprintln(w, "simulation traffic on both transports (the final wire gather is not metered).")
	return nil
}

// forcesBitIdentical reports whether every force component matches in
// float64 bits; when not, it also returns the largest deviation.
func forcesBitIdentical(a, b *parmd.Result) (float64, bool) {
	if len(a.Forces) != len(b.Forces) {
		return math.Inf(1), false
	}
	identical := true
	dev := 0.0
	for i := range a.Forces {
		av, bv := a.Forces[i], b.Forces[i]
		for _, c := range [][2]float64{{av.X, bv.X}, {av.Y, bv.Y}, {av.Z, bv.Z}} {
			if math.Float64bits(c[0]) != math.Float64bits(c[1]) {
				identical = false
				if d := math.Abs(c[0] - c[1]); d > dev {
					dev = d
				}
			}
		}
	}
	return dev, identical
}
