package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// WorkersReport measures the intra-node scaling of the unified force
// kernel (the §6 concurrency property): the shared-memory concurrent
// engine at each worker count against the serial SC engine, and a
// rank-parallel run with intra-rank workers (the paper's hybrid
// rank×thread execution), with force agreement checked each time.
func WorkersReport(w io.Writer, atoms, ranks int, workers []int, seed int64) error {
	return WorkersReportTrace(w, atoms, ranks, workers, seed, "")
}

// WorkersReportTrace is WorkersReport plus span-timeline export: with
// tracePath non-empty, each rank-parallel run's per-rank spans are
// written there as one Chrome trace-event file (one named process per
// worker count), loadable in Perfetto.
func WorkersReportTrace(w io.Writer, atoms, ranks int, workers []int, seed int64, tracePath string) error {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.UniformSilica(rng, atoms)
	model := potential.NewSilicaModel()

	fmt.Fprintf(w, "Force-kernel worker sweep on a %d-atom uniform silica system\n", cfg.N())

	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		return err
	}
	serial, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		return err
	}
	base := time.Now()
	if _, err := serial.Compute(sys); err != nil {
		return err
	}
	serialMS := time.Since(base).Seconds() * 1e3
	ref := append([]geom.Vec3(nil), sys.Force...)

	fmt.Fprintln(w, "\n1. Shared-memory concurrent SC engine (kernel.Sharded, slots = workers):")
	tw := newTable(w)
	fmt.Fprintln(tw, "workers\tms/eval\tspeedup\tmax |ΔF| vs serial (eV/Å)")
	fmt.Fprintf(tw, "serial\t%.2f\t1.00\t—\n", serialMS)
	for _, nw := range dedupInts(workers) {
		e, err := md.NewConcurrentCellEngine(model, sys.Box, md.FamilySC, nw)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := e.Compute(sys); err != nil {
			return err
		}
		ms := time.Since(start).Seconds() * 1e3
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2e\n", nw, ms, serialMS/ms, maxForceDev(ref, sys.Force))
	}
	tw.Flush()

	fmt.Fprintf(w, "\n2. Rank-parallel SC run, %d ranks × workers (forces bit-identical across worker counts):\n", ranks)
	cart := comm.NewCart(ranks)
	var mt *obs.MultiTrace
	if tracePath != "" {
		mt = &obs.MultiTrace{}
	}
	var refPar []geom.Vec3
	tw = newTable(w)
	fmt.Fprintln(tw, "workers\tms/eval\tmax |ΔF| vs 1 worker (eV/Å)")
	for _, nw := range dedupInts(append([]int{1}, workers...)) {
		var rec *obs.Recorder
		if mt != nil {
			rec = obs.NewRecorder(ranks, 64)
		}
		start := time.Now()
		res, err := parmd.Run(cfg, model, parmd.Options{
			Scheme: parmd.SchemeSC, Cart: cart, Dt: 1, Steps: 0, Workers: nw,
			Recorder: rec,
		})
		if err != nil {
			return err
		}
		ms := time.Since(start).Seconds() * 1e3
		mt.Add(fmt.Sprintf("workers=%d", nw), rec)
		if refPar == nil {
			refPar = res.Forces
			fmt.Fprintf(tw, "%d\t%.2f\t—\n", nw, ms)
			continue
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2e\n", nw, ms, maxForceDev(refPar, res.Forces))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if mt != nil {
		if err := writeTraceFile(tracePath, mt); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nspan timeline written to %s\n", tracePath)
	}
	return nil
}

// dedupInts drops repeated worker counts, keeping first-seen order.
func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// maxForceDev returns the largest per-component force deviation.
func maxForceDev(a, b []geom.Vec3) float64 {
	dev := 0.0
	for i := range a {
		d := a[i].Sub(b[i])
		for _, c := range []float64{d.X, d.Y, d.Z} {
			if c < 0 {
				c = -c
			}
			if c > dev {
				dev = c
			}
		}
	}
	return dev
}
