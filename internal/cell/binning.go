package cell

import (
	"fmt"

	"sctuple/internal/geom"
)

// Binning assigns atoms to cells in a compact CSR (compressed sparse
// row) layout: atoms of cell with linear index i occupy
// Atoms[Start[i]:Start[i+1]]. The structure is rebuilt every MD step —
// the "dynamic" part of dynamic n-tuple computation — so Rebin reuses
// all storage.
type Binning struct {
	Lat   Lattice
	Start []int32 // length NumCells+1
	Atoms []int32 // atom indices grouped by cell, stable within a cell

	cellOf []int32 // scratch: cell linear index per atom
}

// NewBinning bins the given positions (which must lie in the primary
// image) into the lattice.
func NewBinning(lat Lattice, positions []geom.Vec3) *Binning {
	b := &Binning{Lat: lat}
	b.Rebin(positions)
	return b
}

// Rebin rebuilds the cell assignment for the current positions,
// reusing internal storage. Positions must lie in the primary image
// (wrap them first); CellOf clamps rounding stragglers.
func (b *Binning) Rebin(positions []geom.Vec3) {
	nc := b.Lat.NumCells()
	if cap(b.Start) < nc+1 {
		b.Start = make([]int32, nc+1)
	}
	b.Start = b.Start[:nc+1]
	for i := range b.Start {
		b.Start[i] = 0
	}
	if cap(b.cellOf) < len(positions) {
		b.cellOf = make([]int32, len(positions))
	}
	b.cellOf = b.cellOf[:len(positions)]
	if cap(b.Atoms) < len(positions) {
		b.Atoms = make([]int32, len(positions))
	}
	b.Atoms = b.Atoms[:len(positions)]

	// Count, prefix-sum, fill: O(N + cells), stable.
	for i, r := range positions {
		c := int32(b.Lat.Linear(b.Lat.CellOf(r)))
		b.cellOf[i] = c
		b.Start[c+1]++
	}
	for i := 0; i < nc; i++ {
		b.Start[i+1] += b.Start[i]
	}
	fill := make([]int32, nc)
	for i := range positions {
		c := b.cellOf[i]
		b.Atoms[b.Start[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// RebinCells rebuilds the CSR structure from caller-supplied local
// linear cell indices, one per atom. Parallel MD uses this so that the
// cell an atom belongs to is decided once (by its owner, in exact
// integer arithmetic on global cell coordinates) and never re-derived
// from floating-point positions, which could round differently on
// different ranks for atoms exactly on a cell boundary.
func (b *Binning) RebinCells(cells []int32) {
	nc := b.Lat.NumCells()
	if cap(b.Start) < nc+1 {
		b.Start = make([]int32, nc+1)
	}
	b.Start = b.Start[:nc+1]
	for i := range b.Start {
		b.Start[i] = 0
	}
	if cap(b.cellOf) < len(cells) {
		b.cellOf = make([]int32, len(cells))
	}
	b.cellOf = b.cellOf[:len(cells)]
	copy(b.cellOf, cells)
	if cap(b.Atoms) < len(cells) {
		b.Atoms = make([]int32, len(cells))
	}
	b.Atoms = b.Atoms[:len(cells)]
	for _, c := range cells {
		b.Start[c+1]++
	}
	for i := 0; i < nc; i++ {
		b.Start[i+1] += b.Start[i]
	}
	fill := make([]int32, nc)
	for i, c := range cells {
		b.Atoms[b.Start[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// CellAtoms returns the atom indices in the (unwrapped) cell q.
// The returned slice aliases internal storage; do not modify it.
func (b *Binning) CellAtoms(q geom.IVec3) []int32 {
	i := b.Lat.Linear(b.Lat.WrapCell(q))
	return b.Atoms[b.Start[i]:b.Start[i+1]]
}

// CellAtomsLinear returns the atom indices of the cell with linear
// index i (already wrapped).
func (b *Binning) CellAtomsLinear(i int) []int32 {
	return b.Atoms[b.Start[i]:b.Start[i+1]]
}

// CellOfAtom returns the linear cell index atom i was binned into.
func (b *Binning) CellOfAtom(i int) int { return int(b.cellOf[i]) }

// NumAtoms returns the number of binned atoms.
func (b *Binning) NumAtoms() int { return len(b.Atoms) }

// MaxOccupancy returns the largest number of atoms in any cell, a
// useful sanity metric for workload balance.
func (b *Binning) MaxOccupancy() int {
	m := 0
	for i := 0; i+1 < len(b.Start); i++ {
		if n := int(b.Start[i+1] - b.Start[i]); n > m {
			m = n
		}
	}
	return m
}

// MeanOccupancy returns ⟨ρcell⟩, the average number of atoms per cell
// (the quantity the paper's Lemma 5 cost model is built on).
func (b *Binning) MeanOccupancy() float64 {
	if b.Lat.NumCells() == 0 {
		return 0
	}
	return float64(len(b.Atoms)) / float64(b.Lat.NumCells())
}

// Validate cross-checks the CSR structure against the positions and
// returns the first inconsistency found, or nil. Tests and debug
// builds call this; production steps do not.
func (b *Binning) Validate(positions []geom.Vec3) error {
	if len(positions) != len(b.Atoms) {
		return fmt.Errorf("cell: binned %d atoms, have %d positions", len(b.Atoms), len(positions))
	}
	seen := make([]bool, len(positions))
	for ci := 0; ci < b.Lat.NumCells(); ci++ {
		for _, ai := range b.CellAtomsLinear(ci) {
			if seen[ai] {
				return fmt.Errorf("cell: atom %d binned twice", ai)
			}
			seen[ai] = true
			if got := b.Lat.Linear(b.Lat.CellOf(positions[ai])); got != ci {
				return fmt.Errorf("cell: atom %d in cell %d, belongs to %d", ai, ci, got)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("cell: atom %d not binned", i)
		}
	}
	return nil
}
