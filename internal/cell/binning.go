package cell

import (
	"fmt"

	"sctuple/internal/geom"
)

// Binning assigns atoms to cells in one of two layouts. The CSR
// (compressed sparse row) layout, built by Rebin/RebinCells/RebinKeyed,
// lists the atoms of cell with linear index i as
// Atoms[Start[i]:Start[i+1]] — an indirection over arbitrary atom
// storage. The span layout, built by RebinSpans over cell-sorted atom
// storage, records each cell's atoms as the contiguous storage range
// [SpanLo[i], SpanHi[i]) with no indirection array at all; consumers
// walk storage directly, which is what makes the cell-sorted
// structure-of-arrays layout cache-friendly. The structure is rebuilt
// every MD step — the "dynamic" part of dynamic n-tuple computation —
// so every rebuild path reuses all storage and allocates nothing at
// warm capacity.
type Binning struct {
	Lat   Lattice
	Start []int32 // CSR: length NumCells+1
	Atoms []int32 // CSR: atom indices grouped by cell, stable within a cell

	// Span layout (nil when the binning is CSR). SpanLo/SpanHi have
	// length NumCells; empty cells have SpanLo == SpanHi.
	SpanLo []int32
	SpanHi []int32

	n      int     // atoms binned (both layouts)
	cellOf []int32 // scratch: cell linear index per atom
	fill   []int32 // scratch: per-cell fill cursor of the CSR build
}

// Spans reports whether the binning is in the span layout (built by
// RebinSpans over cell-sorted storage).
func (b *Binning) Spans() bool { return b.SpanLo != nil }

// CellSpan returns the storage range of the cell with linear index i
// in the span layout.
func (b *Binning) CellSpan(i int) (lo, hi int32) {
	return b.SpanLo[i], b.SpanHi[i]
}

// NewBinning bins the given positions (which must lie in the primary
// image) into the lattice.
func NewBinning(lat Lattice, positions []geom.Vec3) *Binning {
	b := &Binning{Lat: lat}
	b.Rebin(positions)
	return b
}

// Rebin rebuilds the cell assignment for the current positions,
// reusing internal storage. Positions must lie in the primary image
// (wrap them first); CellOf clamps rounding stragglers.
func (b *Binning) Rebin(positions []geom.Vec3) {
	b.prepareCSR(len(positions))
	nc := b.Lat.NumCells()

	// Count, prefix-sum, fill: O(N + cells), stable.
	for i, r := range positions {
		c := int32(b.Lat.Linear(b.Lat.CellOf(r)))
		b.cellOf[i] = c
		b.Start[c+1]++
	}
	for i := 0; i < nc; i++ {
		b.Start[i+1] += b.Start[i]
	}
	fill := b.fill[:nc]
	for i := range positions {
		c := b.cellOf[i]
		b.Atoms[b.Start[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// RebinKeyed is Rebin with each cell's atom list ordered by the given
// per-atom keys instead of by storage order. The resulting CSR is the
// canonical (cell, key) layout: a pure function of positions and keys,
// independent of how the atoms happen to be stored — which is what
// keeps enumeration order (and with it floating-point accumulation
// order) invariant when atom storage is permuted. Keys must be unique
// per atom (global IDs).
func (b *Binning) RebinKeyed(positions []geom.Vec3, keys []int64) {
	b.Rebin(positions)
	b.sortCellsByKey(keys)
}

// RebinCellsKeyed is RebinCells with key-ordered cell lists (see
// RebinKeyed).
func (b *Binning) RebinCellsKeyed(cells []int32, keys []int64) {
	b.RebinCells(cells)
	b.sortCellsByKey(keys)
}

// sortCellsByKey insertion-sorts each cell's CSR atom list by key.
// Cell occupancy is O(1) (bounded by density × cell volume), so the
// quadratic local sort is cheap — and it allocates nothing.
func (b *Binning) sortCellsByKey(keys []int64) {
	nc := b.Lat.NumCells()
	for c := 0; c < nc; c++ {
		atoms := b.Atoms[b.Start[c]:b.Start[c+1]]
		for i := 1; i < len(atoms); i++ {
			a := atoms[i]
			k := keys[a]
			j := i - 1
			for j >= 0 && keys[atoms[j]] > k {
				atoms[j+1] = atoms[j]
				j--
			}
			atoms[j+1] = a
		}
	}
}

// prepareCSR sizes the CSR arrays for n atoms, clears the counters,
// and switches the binning out of span mode.
func (b *Binning) prepareCSR(n int) {
	nc := b.Lat.NumCells()
	if cap(b.Start) < nc+1 {
		b.Start = make([]int32, nc+1)
	}
	b.Start = b.Start[:nc+1]
	clear(b.Start)
	if cap(b.fill) < nc {
		b.fill = make([]int32, nc)
	}
	clear(b.fill[:nc])
	if cap(b.cellOf) < n {
		b.cellOf = make([]int32, n)
	}
	b.cellOf = b.cellOf[:n]
	if cap(b.Atoms) < n {
		b.Atoms = make([]int32, n)
	}
	b.Atoms = b.Atoms[:n]
	b.SpanLo = nil
	b.SpanHi = nil
	b.n = n
}

// RebinCells rebuilds the CSR structure from caller-supplied local
// linear cell indices, one per atom. Parallel MD uses this so that the
// cell an atom belongs to is decided once (by its owner, in exact
// integer arithmetic on global cell coordinates) and never re-derived
// from floating-point positions, which could round differently on
// different ranks for atoms exactly on a cell boundary.
func (b *Binning) RebinCells(cells []int32) {
	b.prepareCSR(len(cells))
	nc := b.Lat.NumCells()
	copy(b.cellOf, cells)
	for _, c := range cells {
		b.Start[c+1]++
	}
	for i := 0; i < nc; i++ {
		b.Start[i+1] += b.Start[i]
	}
	fill := b.fill[:nc]
	for i, c := range cells {
		b.Atoms[b.Start[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// RebinSpans builds the span layout from caller-supplied local linear
// cell indices over cell-run-contiguous atom storage: all atoms of one
// cell must occupy consecutive storage slots (runs may appear in any
// order — the parallel ranks store owned atoms in lattice order
// followed by halo atoms in arrival order, whose runs are contiguous
// but not monotone). A cell whose atoms are split across
// non-consecutive slots is a broken layout contract and is returned as
// an error rather than silently mis-binned.
func (b *Binning) RebinSpans(cells []int32) error {
	nc := b.Lat.NumCells()
	if cap(b.SpanLo) < nc {
		b.SpanLo = make([]int32, nc)
		b.SpanHi = make([]int32, nc)
	}
	b.SpanLo = b.SpanLo[:nc]
	b.SpanHi = b.SpanHi[:nc]
	for i := range b.SpanLo {
		b.SpanLo[i] = -1
		b.SpanHi[i] = -1
	}
	if cap(b.cellOf) < len(cells) {
		// Headroom: in parallel runs the atom count includes a halo that
		// fluctuates with thermal motion; an exact fit would reallocate
		// at every new high-water mark.
		b.cellOf = make([]int32, 0, len(cells)+len(cells)/8)
	}
	b.cellOf = b.cellOf[:len(cells)]
	copy(b.cellOf, cells)
	b.n = len(cells)
	b.Start = b.Start[:0]
	b.Atoms = b.Atoms[:0]

	for i, c := range cells {
		switch {
		case b.SpanLo[c] == -1:
			b.SpanLo[c] = int32(i)
			b.SpanHi[c] = int32(i) + 1
		case b.SpanHi[c] == int32(i):
			b.SpanHi[c]++
		default:
			return fmt.Errorf("cell: atom %d extends cell %d whose span closed at %d (storage not cell-contiguous)",
				i, c, b.SpanHi[c])
		}
	}
	for i := range b.SpanLo {
		if b.SpanLo[i] == -1 {
			b.SpanLo[i] = 0
			b.SpanHi[i] = 0
		}
	}
	return nil
}

// CellAtoms returns the atom indices in the (unwrapped) cell q.
// The returned slice aliases internal storage; do not modify it.
func (b *Binning) CellAtoms(q geom.IVec3) []int32 {
	i := b.Lat.Linear(b.Lat.WrapCell(q))
	return b.Atoms[b.Start[i]:b.Start[i+1]]
}

// CellAtomsLinear returns the atom indices of the cell with linear
// index i (already wrapped).
func (b *Binning) CellAtomsLinear(i int) []int32 {
	return b.Atoms[b.Start[i]:b.Start[i+1]]
}

// CellOfAtom returns the linear cell index atom i was binned into.
func (b *Binning) CellOfAtom(i int) int { return int(b.cellOf[i]) }

// NumAtoms returns the number of binned atoms.
func (b *Binning) NumAtoms() int { return b.n }

// MaxOccupancy returns the largest number of atoms in any cell, a
// useful sanity metric for workload balance.
func (b *Binning) MaxOccupancy() int {
	m := 0
	if b.Spans() {
		for i := range b.SpanLo {
			if n := int(b.SpanHi[i] - b.SpanLo[i]); n > m {
				m = n
			}
		}
		return m
	}
	for i := 0; i+1 < len(b.Start); i++ {
		if n := int(b.Start[i+1] - b.Start[i]); n > m {
			m = n
		}
	}
	return m
}

// MeanOccupancy returns ⟨ρcell⟩, the average number of atoms per cell
// (the quantity the paper's Lemma 5 cost model is built on).
func (b *Binning) MeanOccupancy() float64 {
	if b.Lat.NumCells() == 0 {
		return 0
	}
	return float64(b.n) / float64(b.Lat.NumCells())
}

// SpanValidate cross-checks the span layout against the cell indices
// used to build it: every atom must fall inside exactly its cell's
// span, and the spans must tile [0, n) exactly. Tests and debug builds
// call this; production steps do not.
func (b *Binning) SpanValidate(cells []int32) error {
	if !b.Spans() {
		return fmt.Errorf("cell: binning is not in span layout")
	}
	if len(cells) != b.n {
		return fmt.Errorf("cell: span-binned %d atoms, have %d cells", b.n, len(cells))
	}
	total := 0
	for c := range b.SpanLo {
		lo, hi := b.SpanLo[c], b.SpanHi[c]
		if lo > hi || lo < 0 || int(hi) > b.n {
			return fmt.Errorf("cell: cell %d span [%d,%d) out of range", c, lo, hi)
		}
		total += int(hi - lo)
		for i := lo; i < hi; i++ {
			if int(cells[i]) != c {
				return fmt.Errorf("cell: storage slot %d in span of cell %d, belongs to %d", i, c, cells[i])
			}
		}
	}
	if total != b.n {
		return fmt.Errorf("cell: spans cover %d slots, storage holds %d", total, b.n)
	}
	return nil
}

// Validate cross-checks the CSR structure against the positions and
// returns the first inconsistency found, or nil. Tests and debug
// builds call this; production steps do not.
func (b *Binning) Validate(positions []geom.Vec3) error {
	if len(positions) != len(b.Atoms) {
		return fmt.Errorf("cell: binned %d atoms, have %d positions", len(b.Atoms), len(positions))
	}
	seen := make([]bool, len(positions))
	for ci := 0; ci < b.Lat.NumCells(); ci++ {
		for _, ai := range b.CellAtomsLinear(ci) {
			if seen[ai] {
				return fmt.Errorf("cell: atom %d binned twice", ai)
			}
			seen[ai] = true
			if got := b.Lat.Linear(b.Lat.CellOf(positions[ai])); got != ci {
				return fmt.Errorf("cell: atom %d in cell %d, belongs to %d", ai, ci, got)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("cell: atom %d not binned", i)
		}
	}
	return nil
}
