package cell

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sctuple/internal/geom"
)

func TestNewLatticeDims(t *testing.T) {
	box := geom.NewBox(11, 22, 33)
	lat, err := NewLattice(box, 5.5)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Dims != geom.IV(2, 4, 6) {
		t.Fatalf("dims = %v", lat.Dims)
	}
	// Cell sides must be at least the requested minimum.
	if lat.Side.X < 5.5 || lat.Side.Y < 5.5 || lat.Side.Z < 5.5 {
		t.Fatalf("cell side %v below minimum", lat.Side)
	}
	if lat.NumCells() != 48 {
		t.Fatalf("NumCells = %d", lat.NumCells())
	}
}

func TestNewLatticeTooSmall(t *testing.T) {
	if _, err := NewLattice(geom.NewCubicBox(3), 5); err == nil {
		t.Fatal("expected error for box smaller than cell side")
	}
	if _, err := NewLattice(geom.NewCubicBox(3), -1); err == nil {
		t.Fatal("expected error for negative cell side")
	}
	if _, err := NewLatticeDims(geom.NewCubicBox(3), geom.IV(0, 1, 1)); err == nil {
		t.Fatal("expected error for zero dims")
	}
}

func TestLinearCellAtRoundTrip(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewBox(3, 4, 5), geom.IV(3, 4, 5))
	for i := 0; i < lat.NumCells(); i++ {
		q := lat.CellAt(i)
		if !q.InBox(lat.Dims) {
			t.Fatalf("CellAt(%d) = %v outside lattice", i, q)
		}
		if lat.Linear(q) != i {
			t.Fatalf("Linear(CellAt(%d)) = %d", i, lat.Linear(q))
		}
	}
}

func TestWrapCell(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(10), geom.IV(4, 4, 4))
	cases := []struct{ in, want geom.IVec3 }{
		{geom.IV(0, 0, 0), geom.IV(0, 0, 0)},
		{geom.IV(4, 4, 4), geom.IV(0, 0, 0)},
		{geom.IV(-1, -1, -1), geom.IV(3, 3, 3)},
		{geom.IV(5, -6, 9), geom.IV(1, 2, 1)},
	}
	for _, c := range cases {
		if got := lat.WrapCell(c.in); got != c.want {
			t.Errorf("WrapCell(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapCellProperty(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(10), geom.IV(3, 5, 7))
	f := func(x, y, z int16) bool {
		q := lat.WrapCell(geom.IV(int(x), int(y), int(z)))
		return q.InBox(lat.Dims)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImageShift(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(12), geom.IV(4, 4, 4))
	cases := []struct {
		q    geom.IVec3
		want geom.Vec3
	}{
		{geom.IV(1, 2, 3), geom.V(0, 0, 0)},
		{geom.IV(4, 0, 0), geom.V(12, 0, 0)},
		{geom.IV(-1, 0, 0), geom.V(-12, 0, 0)},
		{geom.IV(9, -5, 4), geom.V(24, -24, 12)},
	}
	for _, c := range cases {
		if got := lat.ImageShift(c.q); got != c.want {
			t.Errorf("ImageShift(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestImageShiftConsistentWithWrap(t *testing.T) {
	// Origin(wrapped q) + ImageShift(q) must equal the unwrapped cell
	// origin extrapolated from the lattice.
	lat, _ := NewLatticeDims(geom.NewBox(8, 12, 16), geom.IV(4, 4, 4))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		q := geom.IV(rng.Intn(13)-6, rng.Intn(13)-6, rng.Intn(13)-6)
		w := lat.WrapCell(q)
		got := lat.Origin(w).Add(lat.ImageShift(q))
		want := geom.V(
			float64(q.X)*lat.Side.X,
			float64(q.Y)*lat.Side.Y,
			float64(q.Z)*lat.Side.Z,
		)
		if got.Sub(want).Norm() > 1e-9 {
			t.Fatalf("q=%v: origin+shift=%v, want %v", q, got, want)
		}
	}
}

func TestCellOfClamping(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(10), geom.IV(3, 3, 3))
	// Position exactly at the box edge (can arise from rounding in
	// Wrap) must clamp to the last cell, not index out of range.
	q := lat.CellOf(geom.V(10, 10, 10))
	if q != geom.IV(2, 2, 2) {
		t.Errorf("CellOf(edge) = %v", q)
	}
}

func TestMinSpanOK(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(10), geom.IV(3, 4, 5))
	if !lat.MinSpanOK(3) {
		t.Error("3×4×5 lattice should satisfy span 3")
	}
	if lat.MinSpanOK(4) {
		t.Error("3×4×5 lattice should fail span 4")
	}
}

func randomPositions(rng *rand.Rand, n int, box geom.Box) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = geom.V(rng.Float64()*box.L.X, rng.Float64()*box.L.Y, rng.Float64()*box.L.Z)
	}
	return out
}

func TestBinningValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := geom.NewBox(10, 12, 14)
	lat, _ := NewLattice(box, 2.0)
	pos := randomPositions(rng, 500, box)
	b := NewBinning(lat, pos)
	if err := b.Validate(pos); err != nil {
		t.Fatal(err)
	}
	if b.NumAtoms() != 500 {
		t.Fatalf("NumAtoms = %d", b.NumAtoms())
	}
}

func TestBinningAllAtomsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := geom.NewCubicBox(9)
	lat, _ := NewLatticeDims(box, geom.IV(3, 3, 3))
	pos := randomPositions(rng, 200, box)
	b := NewBinning(lat, pos)
	count := make(map[int32]int)
	for ci := 0; ci < lat.NumCells(); ci++ {
		for _, ai := range b.CellAtomsLinear(ci) {
			count[ai]++
		}
	}
	if len(count) != 200 {
		t.Fatalf("binned %d distinct atoms", len(count))
	}
	for ai, c := range count {
		if c != 1 {
			t.Fatalf("atom %d binned %d times", ai, c)
		}
	}
}

func TestBinningAtomsInsideTheirCell(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	box := geom.NewCubicBox(8)
	lat, _ := NewLatticeDims(box, geom.IV(4, 4, 4))
	pos := randomPositions(rng, 300, box)
	b := NewBinning(lat, pos)
	for ci := 0; ci < lat.NumCells(); ci++ {
		q := lat.CellAt(ci)
		lo := lat.Origin(q)
		for _, ai := range b.CellAtomsLinear(ci) {
			r := pos[ai]
			for c := 0; c < 3; c++ {
				if r.Comp(c) < lo.Comp(c)-1e-12 || r.Comp(c) > lo.Comp(c)+lat.Side.Comp(c)+1e-12 {
					t.Fatalf("atom %d at %v outside cell %v", ai, r, q)
				}
			}
		}
	}
}

func TestRebinReusesStorageAndTracksMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	box := geom.NewCubicBox(6)
	lat, _ := NewLatticeDims(box, geom.IV(3, 3, 3))
	pos := randomPositions(rng, 100, box)
	b := NewBinning(lat, pos)
	// Move every atom and rebin.
	for i := range pos {
		pos[i] = box.Wrap(pos[i].Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())))
	}
	b.Rebin(pos)
	if err := b.Validate(pos); err != nil {
		t.Fatal(err)
	}
	// Rebin with fewer atoms must shrink cleanly.
	b.Rebin(pos[:10])
	if err := b.Validate(pos[:10]); err != nil {
		t.Fatal(err)
	}
}

func TestCellAtomsWrapsOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	box := geom.NewCubicBox(9)
	lat, _ := NewLatticeDims(box, geom.IV(3, 3, 3))
	pos := randomPositions(rng, 100, box)
	b := NewBinning(lat, pos)
	for i := 0; i < 50; i++ {
		q := geom.IV(rng.Intn(9)-3, rng.Intn(9)-3, rng.Intn(9)-3)
		a := b.CellAtoms(q)
		w := b.CellAtoms(lat.WrapCell(q))
		if len(a) != len(w) {
			t.Fatalf("CellAtoms(%v) inconsistent with wrapped", q)
		}
		for j := range a {
			if a[j] != w[j] {
				t.Fatalf("CellAtoms(%v) inconsistent with wrapped", q)
			}
		}
	}
}

func TestOccupancyStats(t *testing.T) {
	box := geom.NewCubicBox(4)
	lat, _ := NewLatticeDims(box, geom.IV(2, 2, 2))
	// 5 atoms in one cell, none elsewhere.
	pos := make([]geom.Vec3, 5)
	for i := range pos {
		pos[i] = geom.V(0.5, 0.5, 0.5)
	}
	b := NewBinning(lat, pos)
	if b.MaxOccupancy() != 5 {
		t.Errorf("MaxOccupancy = %d", b.MaxOccupancy())
	}
	if b.MeanOccupancy() != 5.0/8.0 {
		t.Errorf("MeanOccupancy = %g", b.MeanOccupancy())
	}
}

func TestBinningStableOrder(t *testing.T) {
	// Atoms within a cell keep ascending index order (stability), which
	// downstream enumeration relies on for deterministic output.
	box := geom.NewCubicBox(4)
	lat, _ := NewLatticeDims(box, geom.IV(2, 2, 2))
	pos := []geom.Vec3{
		geom.V(0.5, 0.5, 0.5),
		geom.V(3.5, 3.5, 3.5),
		geom.V(0.7, 0.7, 0.7),
		geom.V(0.1, 0.1, 0.1),
	}
	b := NewBinning(lat, pos)
	got := b.CellAtoms(geom.IV(0, 0, 0))
	want := []int32{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("cell atoms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell atoms = %v, want %v", got, want)
		}
	}
}
