// Package cell implements the cell data structure of cell-based MD
// (paper §3.1.1): a periodic lattice of cubic-ish cells over the
// simulation box, and the dynamic binning of atoms into cells that is
// rebuilt every MD step.
//
// Cells are indexed by integer vectors q ∈ L = [0,Lx)×[0,Ly)×[0,Lz);
// the cell-offset operation c(q+Δ) wraps periodically (modulo the
// lattice dimensions), matching the paper's periodic boundary
// conditions.
package cell

import (
	"fmt"

	"sctuple/internal/geom"
)

// Lattice divides a periodic box into Dims.X × Dims.Y × Dims.Z cells.
// Cell sides are at least the minimum side requested at construction,
// which callers set to the largest interaction cutoff so that all
// range-limited tuples step only between nearest-neighbor cells.
type Lattice struct {
	Box  geom.Box
	Dims geom.IVec3 // number of cells per direction, all ≥ 1
	Side geom.Vec3  // cell edge lengths: Box.L / Dims
}

// NewLattice builds a lattice whose cell sides are ≥ minSide. It
// returns an error when the box is too small to fit even one cell of
// the requested side.
func NewLattice(box geom.Box, minSide float64) (Lattice, error) {
	if !(minSide > 0) {
		return Lattice{}, fmt.Errorf("cell: minimum cell side %g must be positive", minSide)
	}
	var dims geom.IVec3
	for c := 0; c < 3; c++ {
		n := int(box.L.Comp(c) / minSide)
		if n < 1 {
			return Lattice{}, fmt.Errorf("cell: box side %g smaller than cell side %g",
				box.L.Comp(c), minSide)
		}
		dims.SetComp(c, n)
	}
	return Lattice{
		Box:  box,
		Dims: dims,
		Side: geom.V(box.L.X/float64(dims.X), box.L.Y/float64(dims.Y), box.L.Z/float64(dims.Z)),
	}, nil
}

// NewLatticeDims builds a lattice with exactly the given cell counts.
func NewLatticeDims(box geom.Box, dims geom.IVec3) (Lattice, error) {
	if dims.X < 1 || dims.Y < 1 || dims.Z < 1 {
		return Lattice{}, fmt.Errorf("cell: invalid lattice dims %v", dims)
	}
	return Lattice{
		Box:  box,
		Dims: dims,
		Side: geom.V(box.L.X/float64(dims.X), box.L.Y/float64(dims.Y), box.L.Z/float64(dims.Z)),
	}, nil
}

// NumCells returns the total number of cells |L|.
func (lat Lattice) NumCells() int { return lat.Dims.Volume() }

// CellOf returns the cell index of a position in the primary image.
// Positions exactly on the upper box face (possible only through
// floating-point rounding) are clamped into the last cell.
func (lat Lattice) CellOf(r geom.Vec3) geom.IVec3 {
	var q geom.IVec3
	for c := 0; c < 3; c++ {
		i := int(r.Comp(c) / lat.Side.Comp(c))
		if i >= lat.Dims.Comp(c) {
			i = lat.Dims.Comp(c) - 1
		}
		if i < 0 {
			i = 0
		}
		q.SetComp(c, i)
	}
	return q
}

// WrapCell maps an arbitrary cell index into the primary lattice by
// the periodic cell-offset rule q'α = qα % Lα (non-negative).
func (lat Lattice) WrapCell(q geom.IVec3) geom.IVec3 {
	return geom.IV(
		mod(q.X, lat.Dims.X),
		mod(q.Y, lat.Dims.Y),
		mod(q.Z, lat.Dims.Z),
	)
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// Linear returns the linear index of a (wrapped) cell, in z-fastest
// order. It does not wrap; use WrapCell first for offset cells.
func (lat Lattice) Linear(q geom.IVec3) int {
	return (q.X*lat.Dims.Y+q.Y)*lat.Dims.Z + q.Z
}

// CellAt inverts Linear.
func (lat Lattice) CellAt(i int) geom.IVec3 {
	z := i % lat.Dims.Z
	i /= lat.Dims.Z
	y := i % lat.Dims.Y
	x := i / lat.Dims.Y
	return geom.IV(x, y, z)
}

// Origin returns the lower corner position of a cell.
func (lat Lattice) Origin(q geom.IVec3) geom.Vec3 {
	return geom.V(
		float64(q.X)*lat.Side.X,
		float64(q.Y)*lat.Side.Y,
		float64(q.Z)*lat.Side.Z,
	)
}

// ImageShift returns the real-space displacement that the periodic
// wrap of cell index q implies: a position binned in the wrapped image
// of q must be translated by this vector to sit geometrically adjacent
// to cells around the unwrapped q. The tuple enumerator uses this to
// compute distances without minimum-image searches.
func (lat Lattice) ImageShift(q geom.IVec3) geom.Vec3 {
	var s geom.Vec3
	for c := 0; c < 3; c++ {
		d := floorDiv(q.Comp(c), lat.Dims.Comp(c))
		s.SetComp(c, float64(d)*lat.Box.L.Comp(c))
	}
	return s
}

func floorDiv(a, n int) int {
	d := a / n
	if a%n != 0 && (a < 0) != (n < 0) {
		d--
	}
	return d
}

// MinSpanOK reports whether the lattice has at least span cells in
// every direction. Tuple enumeration with cell offsets in
// [-(span-1)/2, (span-1)/2] (or [0, span-1] after octant compression)
// requires this so that distinct offsets address distinct cells;
// smaller lattices alias neighbors onto each other and would double
// count tuples.
func (lat Lattice) MinSpanOK(span int) bool {
	return lat.Dims.X >= span && lat.Dims.Y >= span && lat.Dims.Z >= span
}

// String formats the lattice for diagnostics.
func (lat Lattice) String() string {
	return fmt.Sprintf("Lattice[%d×%d×%d cells of %.3g×%.3g×%.3g]",
		lat.Dims.X, lat.Dims.Y, lat.Dims.Z, lat.Side.X, lat.Side.Y, lat.Side.Z)
}
