package cell

// Sorter computes canonical (cell, key) permutations of atom storage:
// atoms ordered first by linear cell index, ties broken by a unique
// per-atom key (the global atom ID). Storage laid out this way is a
// pure function of the physics state — positions and identities —
// independent of input or arrival order, which is what lets the
// cell-sorted structure-of-arrays layout keep forces bit-identical
// under any storage permutation. All scratch is reused: Plan allocates
// nothing at warm capacity.
type Sorter struct {
	perm []int32
	cnt  []int32
}

// Ordered reports whether storage is already in canonical (cell, key)
// order — the common case for a solid between rebuilds, where the
// O(n) check saves the permutation entirely.
func Ordered(cells []int32, keys []int64) bool {
	for i := 1; i < len(cells); i++ {
		if cells[i] < cells[i-1] || (cells[i] == cells[i-1] && keys[i] < keys[i-1]) {
			return false
		}
	}
	return true
}

// Plan returns the permutation that brings storage into canonical
// order: perm[k] is the current slot of the atom that belongs at slot
// k. The returned slice aliases internal scratch, valid until the next
// Plan call. Counting sort over cells plus per-cell insertion sort
// over keys: O(n + cells) with O(1) cell occupancy.
func (s *Sorter) Plan(numCells int, cells []int32, keys []int64) []int32 {
	n := len(cells)
	if cap(s.perm) < n {
		// Headroom: the parallel ranks' owned count fluctuates under
		// migration; an exact fit would reallocate at every new
		// high-water mark.
		s.perm = make([]int32, n+n/8)
	}
	s.perm = s.perm[:n]
	if cap(s.cnt) < numCells+1 {
		s.cnt = make([]int32, numCells+1)
	}
	cnt := s.cnt[:numCells+1]
	clear(cnt)
	for _, c := range cells {
		cnt[c+1]++
	}
	for c := 0; c < numCells; c++ {
		cnt[c+1] += cnt[c]
	}
	for i, c := range cells {
		s.perm[cnt[c]] = int32(i)
		cnt[c]++
	}
	// cnt[c] is now the end of cell c's range; its start is the end of
	// cell c-1 (or 0). Insertion-sort each range by key.
	lo := int32(0)
	for c := 0; c < numCells; c++ {
		hi := cnt[c]
		seg := s.perm[lo:hi]
		for i := 1; i < len(seg); i++ {
			a := seg[i]
			k := keys[a]
			j := i - 1
			for j >= 0 && keys[seg[j]] > k {
				seg[j+1] = seg[j]
				j--
			}
			seg[j+1] = a
		}
		lo = hi
	}
	return s.perm
}

// Permute gathers src through perm into dst: dst[k] = src[perm[k]].
// dst and src must not alias; to permute in place, copy the array to
// caller-held scratch first and gather back (keeping the backing array
// stable, so slice headers captured elsewhere stay valid).
func Permute[T any](dst, src []T, perm []int32) {
	for k, i := range perm {
		dst[k] = src[i]
	}
}
