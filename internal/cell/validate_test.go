package cell

import (
	"strings"
	"testing"

	"sctuple/internal/geom"
)

func TestValidateDetectsCorruption(t *testing.T) {
	box := geom.NewCubicBox(6)
	lat, _ := NewLatticeDims(box, geom.IV(3, 3, 3))
	pos := []geom.Vec3{geom.V(1, 1, 1), geom.V(5, 5, 5), geom.V(3, 3, 3)}
	b := NewBinning(lat, pos)

	// Length mismatch.
	if err := b.Validate(pos[:2]); err == nil {
		t.Error("length mismatch not detected")
	}
	// Wrong cell assignment.
	good := b.Atoms[0]
	b.Atoms[0] = b.Atoms[1]
	if err := b.Validate(pos); err == nil {
		t.Error("corrupted assignment not detected")
	}
	b.Atoms[0] = good
	if err := b.Validate(pos); err != nil {
		t.Errorf("restored binning invalid: %v", err)
	}
}

func TestRebinCellsMatchesRebin(t *testing.T) {
	box := geom.NewCubicBox(8)
	lat, _ := NewLatticeDims(box, geom.IV(4, 4, 4))
	pos := []geom.Vec3{geom.V(0.5, 0.5, 0.5), geom.V(7.5, 7.5, 7.5), geom.V(3, 5, 1)}
	a := NewBinning(lat, pos)

	cells := make([]int32, len(pos))
	for i, r := range pos {
		cells[i] = int32(lat.Linear(lat.CellOf(r)))
	}
	b := NewBinning(lat, nil)
	b.RebinCells(cells)
	for ci := 0; ci < lat.NumCells(); ci++ {
		av, bv := a.CellAtomsLinear(ci), b.CellAtomsLinear(ci)
		if len(av) != len(bv) {
			t.Fatalf("cell %d: %v vs %v", ci, av, bv)
		}
		for k := range av {
			if av[k] != bv[k] {
				t.Fatalf("cell %d: %v vs %v", ci, av, bv)
			}
		}
	}
	for i := range pos {
		if a.CellOfAtom(i) != b.CellOfAtom(i) {
			t.Fatalf("atom %d cell differs", i)
		}
	}
}

func TestLatticeString(t *testing.T) {
	lat, _ := NewLatticeDims(geom.NewCubicBox(6), geom.IV(3, 3, 3))
	if s := lat.String(); !strings.Contains(s, "3×3×3") {
		t.Errorf("lattice string %q", s)
	}
}
