package comm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestISendIRecvRoundTrip: a receive posted before the matching send
// completes with the right payload, and two handles posted on one link
// complete in posting order (the non-overtaking rule: FIFO per link,
// matched positionally).
func TestISendIRecvRoundTrip(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			// Post both receives before rank 1 has sent anything.
			h1 := p.IRecvBuffer(1, 5)
			h2 := p.IRecvBuffer(1, 6)
			p.Send(1, 7, nil) // release rank 1's sends
			b1 := h1.Wait()
			b2 := h2.Wait()
			var rd Reader
			rd.Reset(b1.Bytes())
			first := rd.Int64()
			rd.Reset(b2.Bytes())
			second := rd.Int64()
			p.ReleaseBuffer(b1)
			p.ReleaseBuffer(b2)
			if first != 11 || second != 22 {
				return fmt.Errorf("handles completed out of order: %d, %d", first, second)
			}
		} else {
			p.Recv(0, 7)
			b := p.AcquireBuffer()
			b.Int64(11)
			p.ISendBuffer(0, 5, b).Wait()
			b = p.AcquireBuffer()
			b.Int64(22)
			p.ISendBuffer(0, 6, b).Wait()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Completion-point wait accounting lands under the receive tag's
	// class, like the blocking receive's.
	if st := w.TotalStats(); st.Messages != 3 {
		t.Errorf("stats %+v, want 3 messages", st)
	}
}

// TestAsyncExchangeZeroAllocs: a steady-state post/complete cycle —
// IRecv, ISend of a pooled buffer, Wait, release — allocates nothing.
// Handles are plain values; only the warm pooled buffers circulate.
func TestAsyncExchangeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		peer := 1 - p.Rank()
		iter := func() {
			h := p.IRecvBuffer(peer, 3)
			b := p.AcquireBuffer()
			b.Int64(int64(p.Rank()))
			p.ISendBuffer(peer, 3, b).Wait()
			got := h.Wait()
			p.ReleaseBuffer(got)
		}
		for i := 0; i < 8; i++ {
			iter()
		}
		p.Barrier()
		if p.Rank() != 0 {
			for i := 0; i < 11; i++ {
				iter()
			}
			p.Barrier()
			return nil
		}
		allocs := testing.AllocsPerRun(10, iter)
		p.Barrier()
		if allocs != 0 {
			return fmt.Errorf("%g allocs per async exchange cycle", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortUnblocksReceive: when one rank's SPMD function fails, a
// peer blocked in a receive on a message that will never arrive
// unwinds with ErrAborted instead of deadlocking the world.
func TestAbortUnblocksReceive(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			return fmt.Errorf("boom")
		case 1:
			p.RecvBuffer(0, 9) // never sent: must unwind via abort
			return fmt.Errorf("receive from a failed rank returned")
		default:
			h := p.IRecvBuffer(0, 9)
			h.Wait() // posted form of the same dead wait
			return fmt.Errorf("posted receive from a failed rank completed")
		}
	})
	if err == nil {
		t.Fatal("world with a failed rank returned nil")
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("joined error does not carry ErrAborted: %v", err)
	}
	if want := "boom"; !strings.Contains(err.Error(), want) {
		t.Errorf("joined error lost the original failure %q: %v", want, err)
	}
}

// TestAbortDuringBarrierlessDrain: the abort fires even when the
// failing rank errors only after peers are already blocked — the
// select re-checks the abort channel, not just a pre-wait flag.
func TestAbortDuringBarrierlessDrain(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			time.Sleep(20 * time.Millisecond) // let rank 1 block first
			return fmt.Errorf("late failure")
		}
		p.RecvBuffer(0, 4)
		return fmt.Errorf("dead receive returned")
	})
	if !errors.Is(err, ErrAborted) {
		t.Errorf("late abort did not unblock the receive: %v", err)
	}
}

// TestWaitOnUnpostedHandlePanics pins the zero-value guard.
func TestWaitOnUnpostedHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wait on a zero RecvHandle did not panic")
		}
	}()
	var h RecvHandle
	h.Wait()
}
