package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"sctuple/internal/geom"
)

// Buffer serializes message payloads with a fixed little-endian wire
// format. The zero value is ready to use; methods append.
type Buffer struct {
	b []byte
}

// Bytes returns the accumulated payload. The buffer must not be
// written afterwards if the slice is handed to Send.
func (b *Buffer) Bytes() []byte { return b.b }

// Clone returns an independent copy of the payload.
func (b *Buffer) Clone() []byte { return append([]byte(nil), b.b...) }

// Len returns the current payload size.
func (b *Buffer) Len() int { return len(b.b) }

// Reset empties the buffer, retaining capacity — the grow-in-place
// reuse the pooled exchange path depends on: a recycled buffer reaches
// its steady-state capacity once and never allocates again.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// Int64 appends a 64-bit integer.
func (b *Buffer) Int64(v int64) {
	b.b = binary.LittleEndian.AppendUint64(b.b, uint64(v))
}

// Int32 appends a 32-bit integer.
func (b *Buffer) Int32(v int32) {
	b.b = binary.LittleEndian.AppendUint32(b.b, uint32(v))
}

// Float64 appends a float64.
func (b *Buffer) Float64(v float64) {
	b.b = binary.LittleEndian.AppendUint64(b.b, math.Float64bits(v))
}

// Vec3 appends a geometry vector.
func (b *Buffer) Vec3(v geom.Vec3) {
	b.Float64(v.X)
	b.Float64(v.Y)
	b.Float64(v.Z)
}

// Reader decodes payloads produced by Buffer, in the same order.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset re-points the reader at a new payload, rewinding the offset.
// Hot paths keep a Reader value on the stack and Reset it per message
// instead of calling NewReader.
func (r *Reader) Reset(b []byte) { r.b, r.off = b, 0 }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.off+n > len(r.b) {
		panic(fmt.Sprintf("comm: reading %d bytes past end of %d-byte message", n, len(r.b)))
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// Int64 reads a 64-bit integer.
func (r *Reader) Int64() int64 {
	return int64(binary.LittleEndian.Uint64(r.take(8)))
}

// Int32 reads a 32-bit integer.
func (r *Reader) Int32() int32 {
	return int32(binary.LittleEndian.Uint32(r.take(4)))
}

// Float64 reads a float64.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.take(8)))
}

// Vec3 reads a geometry vector.
func (r *Reader) Vec3() geom.Vec3 {
	return geom.V(r.Float64(), r.Float64(), r.Float64())
}
