package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"sctuple/internal/geom"
)

// Buffer serializes message payloads with a fixed little-endian wire
// format. The zero value is ready to use; methods append.
type Buffer struct {
	b []byte
}

// Bytes returns the accumulated payload. The buffer must not be
// written afterwards if the slice is handed to Send.
func (b *Buffer) Bytes() []byte { return b.b }

// Clone returns an independent copy of the payload.
func (b *Buffer) Clone() []byte { return append([]byte(nil), b.b...) }

// Len returns the current payload size.
func (b *Buffer) Len() int { return len(b.b) }

// Reset empties the buffer, retaining capacity — the grow-in-place
// reuse the pooled exchange path depends on: a recycled buffer reaches
// its steady-state capacity once and never allocates again.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// Grow extends the buffer by n uninitialized bytes and returns the
// extension for the caller to fill — the receive path of a byte-stream
// transport reads a frame payload straight into a pooled buffer with
// io.ReadFull(conn, buf.Grow(n)) and hands the buffer to the world
// without copying.
func (b *Buffer) Grow(n int) []byte {
	old := len(b.b)
	if cap(b.b) < old+n {
		nb := make([]byte, old+n, old+n+(old+n)/4)
		copy(nb, b.b)
		b.b = nb
	} else {
		b.b = b.b[:old+n]
	}
	return b.b[old:]
}

// Int64 appends a 64-bit integer.
func (b *Buffer) Int64(v int64) {
	b.b = binary.LittleEndian.AppendUint64(b.b, uint64(v))
}

// Int32 appends a 32-bit integer.
func (b *Buffer) Int32(v int32) {
	b.b = binary.LittleEndian.AppendUint32(b.b, uint32(v))
}

// Float64 appends a float64.
func (b *Buffer) Float64(v float64) {
	b.b = binary.LittleEndian.AppendUint64(b.b, math.Float64bits(v))
}

// Vec3 appends a geometry vector.
func (b *Buffer) Vec3(v geom.Vec3) {
	b.Float64(v.X)
	b.Float64(v.Y)
	b.Float64(v.Z)
}

// DecodeError reports a decoder reading past the end of a payload — a
// truncated or otherwise malformed message. Over the in-process
// channel transport this would be a programming error, but a socket
// peer can legitimately deliver garbage, so decoding must degrade into
// a typed error that flows through the *RankError abort path instead
// of a panic that kills the process.
type DecodeError struct {
	Off  int // byte offset the failed read started at
	Need int // bytes the read wanted
	Len  int // total payload length
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("comm: truncated payload: reading %d bytes at offset %d of %d-byte message",
		e.Need, e.Off, e.Len)
}

// Reader decodes payloads produced by Buffer, in the same order. A
// read past the end of the payload does not panic: it returns zero,
// records a sticky *DecodeError (see Err), and pins the offset to the
// end so `for rd.Remaining() > 0` decode loops terminate. Callers on
// untrusted input check Err after decoding.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset re-points the reader at a new payload, rewinding the offset
// and clearing any sticky decode error. Hot paths keep a Reader value
// on the stack and Reset it per message instead of calling NewReader.
func (r *Reader) Reset(b []byte) { r.b, r.off, r.err = b, 0, nil }

// Remaining returns the number of unread bytes (zero once a decode
// error has been recorded).
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Err returns the first decode failure, or nil while every read so far
// stayed in bounds. Once set it stays set until Reset.
func (r *Reader) Err() error { return r.err }

// zeroWord backs the reads issued after a decode failure: take returns
// a view of it so Int64/Float64/Vec3 decode to zero without branching
// at every call site. Read-only by construction (decoders only read
// the slices take returns).
var zeroWord [8]byte

func (r *Reader) take(n int) []byte {
	if r.off+n > len(r.b) {
		if r.err == nil {
			r.err = &DecodeError{Off: r.off, Need: n, Len: len(r.b)}
		}
		r.off = len(r.b)
		if n <= len(zeroWord) {
			return zeroWord[:n]
		}
		return make([]byte, n) // cold path: only after a decode error
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// Int64 reads a 64-bit integer.
func (r *Reader) Int64() int64 {
	return int64(binary.LittleEndian.Uint64(r.take(8)))
}

// Int32 reads a 32-bit integer.
func (r *Reader) Int32() int32 {
	return int32(binary.LittleEndian.Uint32(r.take(4)))
}

// Float64 reads a float64.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.take(8)))
}

// Vec3 reads a geometry vector.
func (r *Reader) Vec3() geom.Vec3 {
	return geom.V(r.Float64(), r.Float64(), r.Float64())
}
