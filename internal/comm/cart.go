package comm

import (
	"fmt"

	"sctuple/internal/geom"
)

// Cart is a periodic 3-D Cartesian process topology: P ranks arranged
// as Dims.X × Dims.Y × Dims.Z with rank = (x·Dims.Y + y)·Dims.Z + z,
// matching the cell lattice's linearization.
type Cart struct {
	Dims geom.IVec3
}

// NewCart factors p into the most cubic 3-D grid (largest-first
// factor assignment). Any p ≥ 1 works; primes degrade to 1×1×p.
func NewCart(p int) Cart {
	best := geom.IV(1, 1, p)
	bestScore := scoreDims(best)
	for x := 1; x*x*x <= p; x++ {
		if p%x != 0 {
			continue
		}
		rem := p / x
		for y := x; y*y <= rem; y++ {
			if rem%y != 0 {
				continue
			}
			d := geom.IV(x, y, rem/y)
			if s := scoreDims(d); s < bestScore {
				best, bestScore = d, s
			}
		}
	}
	return Cart{Dims: best}
}

// scoreDims prefers near-cubic factorizations (small surface area).
func scoreDims(d geom.IVec3) int {
	return d.X*d.Y + d.Y*d.Z + d.Z*d.X
}

// NewCartDims builds a topology with explicit dimensions.
func NewCartDims(dims geom.IVec3) (Cart, error) {
	if dims.X < 1 || dims.Y < 1 || dims.Z < 1 {
		return Cart{}, fmt.Errorf("comm: invalid cart dims %v", dims)
	}
	return Cart{Dims: dims}, nil
}

// Size returns the number of ranks in the topology.
func (c Cart) Size() int { return c.Dims.Volume() }

// Rank returns the rank of the (wrapped) coordinate.
func (c Cart) Rank(coord geom.IVec3) int {
	w := c.Wrap(coord)
	return (w.X*c.Dims.Y+w.Y)*c.Dims.Z + w.Z
}

// Coord inverts Rank.
func (c Cart) Coord(rank int) geom.IVec3 {
	z := rank % c.Dims.Z
	rank /= c.Dims.Z
	y := rank % c.Dims.Y
	x := rank / c.Dims.Y
	return geom.IV(x, y, z)
}

// Wrap maps a coordinate into the primary grid periodically.
func (c Cart) Wrap(coord geom.IVec3) geom.IVec3 {
	m := func(a, n int) int {
		v := a % n
		if v < 0 {
			v += n
		}
		return v
	}
	return geom.IV(m(coord.X, c.Dims.X), m(coord.Y, c.Dims.Y), m(coord.Z, c.Dims.Z))
}

// Neighbor returns the rank displaced by delta in the periodic grid.
func (c Cart) Neighbor(rank int, delta geom.IVec3) int {
	return c.Rank(c.Coord(rank).Add(delta))
}

// AxisNeighbor returns the rank one step along axis (0,1,2) in
// direction dir (±1).
func (c Cart) AxisNeighbor(rank, axis, dir int) int {
	var d geom.IVec3
	d.SetComp(axis, dir)
	return c.Neighbor(rank, d)
}
