// Package comm implements the distributed-memory message-passing
// runtime the parallel MD codes run on — the stand-in for MPI on the
// paper's clusters. Ranks are goroutines; sends are byte messages over
// per-link buffered channels with strict (source, tag) ordering, so a
// mismatched receive is a protocol error caught immediately rather
// than a silent reorder.
//
// The runtime counts every message and byte per rank. Those counters
// are the communication-cost inputs (Eq. 31) of the performance model
// in package perfmodel.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one point-to-point transfer.
type message struct {
	tag  int
	data []byte
}

// linkBuffer is the per-(src,dst) channel capacity. Halo exchange,
// migration, and collectives post at most a handful of in-flight
// messages per link; the buffer only needs to decouple send/recv
// ordering within a step.
const linkBuffer = 128

// World is a group of ranks that can communicate. Create one with
// NewWorld and run an SPMD function on it with Run.
type World struct {
	size  int
	links [][]chan message // links[src][dst]

	bytesSent []atomic.Int64
	msgsSent  []atomic.Int64
}

// NewWorld builds a world of p ranks. It panics for p < 1 (worlds come
// from code, not input).
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", p))
	}
	w := &World{
		size:      p,
		links:     make([][]chan message, p),
		bytesSent: make([]atomic.Int64, p),
		msgsSent:  make([]atomic.Int64, p),
	}
	for s := range w.links {
		w.links[s] = make([]chan message, p)
		for d := range w.links[s] {
			w.links[s][d] = make(chan message, linkBuffer)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each on its own goroutine, and waits
// for all of them. It returns the first error any rank produced.
func (w *World) Run(fn func(p *Proc) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(&Proc{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes communication volume.
type Stats struct {
	Messages int64
	Bytes    int64
}

// RankStats returns the cumulative send counters of one rank.
func (w *World) RankStats(rank int) Stats {
	return Stats{
		Messages: w.msgsSent[rank].Load(),
		Bytes:    w.bytesSent[rank].Load(),
	}
}

// TotalStats sums the counters over all ranks.
func (w *World) TotalStats() Stats {
	var s Stats
	for r := 0; r < w.size; r++ {
		rs := w.RankStats(r)
		s.Messages += rs.Messages
		s.Bytes += rs.Bytes
	}
	return s
}

// Proc is the per-rank handle passed to the SPMD function.
type Proc struct {
	world *World
	rank  int
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// Send transfers data to rank dst with the given tag. The data slice
// is handed off; the caller must not reuse it afterwards. Send blocks
// only if the link buffer is full.
func (p *Proc) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.world.size {
		panic(fmt.Sprintf("comm: rank %d sending to invalid rank %d", p.rank, dst))
	}
	p.world.msgsSent[p.rank].Add(1)
	p.world.bytesSent[p.rank].Add(int64(len(data)))
	p.world.links[p.rank][dst] <- message{tag: tag, data: data}
}

// Recv blocks until the next message from src arrives and returns its
// payload. The message's tag must match; a mismatch means the SPMD
// protocol is out of step and panics with a diagnostic.
func (p *Proc) Recv(src, tag int) []byte {
	if src < 0 || src >= p.world.size {
		panic(fmt.Sprintf("comm: rank %d receiving from invalid rank %d", p.rank, src))
	}
	m := <-p.world.links[src][p.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from rank %d, got %d",
			p.rank, tag, src, m.tag))
	}
	return m.data
}

// SendRecv exchanges messages with two (possibly equal) partners:
// sends to dst and receives from src, without deadlocking on
// cyclic exchange patterns (the send buffers decouple the two).
func (p *Proc) SendRecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	p.Send(dst, sendTag, data)
	return p.Recv(src, recvTag)
}

// Reserved collective tags, outside the range user phases should use.
const (
	tagBarrier = -1 - iota
	tagReduce
	tagBcast
	tagGather
)

// Barrier blocks until every rank has entered it. Implemented as a
// gather-to-0 plus broadcast.
func (p *Proc) Barrier() {
	if p.rank == 0 {
		for r := 1; r < p.world.size; r++ {
			p.Recv(r, tagBarrier)
		}
		for r := 1; r < p.world.size; r++ {
			p.Send(r, tagBarrier, nil)
		}
		return
	}
	p.Send(0, tagBarrier, nil)
	p.Recv(0, tagBarrier)
}

// AllReduceFloat64 combines one float64 per rank with op and returns
// the result on every rank.
func (p *Proc) AllReduceFloat64(x float64, op func(a, b float64) float64) float64 {
	if p.rank == 0 {
		acc := x
		for r := 1; r < p.world.size; r++ {
			b := NewReader(p.Recv(r, tagReduce))
			acc = op(acc, b.Float64())
		}
		var buf Buffer
		buf.Float64(acc)
		for r := 1; r < p.world.size; r++ {
			p.Send(r, tagReduce, buf.Clone())
		}
		return acc
	}
	var buf Buffer
	buf.Float64(x)
	p.Send(0, tagReduce, buf.Bytes())
	return NewReader(p.Recv(0, tagReduce)).Float64()
}

// AllReduceSum returns the sum of x over all ranks.
func (p *Proc) AllReduceSum(x float64) float64 {
	return p.AllReduceFloat64(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax returns the maximum of x over all ranks.
func (p *Proc) AllReduceMax(x float64) float64 {
	return p.AllReduceFloat64(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceSumInt64 returns the sum of an int64 over all ranks.
func (p *Proc) AllReduceSumInt64(x int64) int64 {
	if p.rank == 0 {
		acc := x
		for r := 1; r < p.world.size; r++ {
			acc += NewReader(p.Recv(r, tagReduce)).Int64()
		}
		var buf Buffer
		buf.Int64(acc)
		for r := 1; r < p.world.size; r++ {
			p.Send(r, tagReduce, buf.Clone())
		}
		return acc
	}
	var buf Buffer
	buf.Int64(x)
	p.Send(0, tagReduce, buf.Bytes())
	return NewReader(p.Recv(0, tagReduce)).Int64()
}

// Bcast distributes root's data to every rank and returns it.
func (p *Proc) Bcast(root int, data []byte) []byte {
	if p.rank == root {
		for r := 0; r < p.world.size; r++ {
			if r != root {
				p.Send(r, tagBcast, data)
			}
		}
		return data
	}
	return p.Recv(root, tagBcast)
}

// GatherTo0 collects each rank's payload on rank 0 (indexed by rank);
// other ranks receive nil.
func (p *Proc) GatherTo0(data []byte) [][]byte {
	if p.rank == 0 {
		out := make([][]byte, p.world.size)
		out[0] = data
		for r := 1; r < p.world.size; r++ {
			out[r] = p.Recv(r, tagGather)
		}
		return out
	}
	p.Send(0, tagGather, data)
	return nil
}
