// Package comm implements the distributed-memory message-passing
// runtime the parallel MD codes run on — the stand-in for MPI on the
// paper's clusters. Ranks are goroutines; sends are byte messages over
// a pluggable Transport (the default moves them over per-link buffered
// channels) with strict (source, tag) ordering, so a mismatched
// receive is a protocol error caught immediately rather than a silent
// reorder.
//
// The runtime counts every message and byte per rank, broken down by
// registered tag class (halo, migration, force write-back, …), plus
// the time each rank spends blocked in receives. Those counters are
// the communication-cost inputs (Eq. 31) of the performance model in
// package perfmodel.
//
// Hot paths use pooled buffers: AcquireBuffer/SendBuffer on the
// sender, RecvBuffer/ReleaseBuffer on the receiver. Buffers circulate
// through per-rank freelists, so steady-state exchanges allocate
// nothing.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sctuple/internal/obs"
)

// Builtin tag-class slots. User classes registered with DefineTagClass
// follow after these.
const (
	classOther      = 0 // tags not matching any registered class
	classCollective = 1 // negative tags (reserved collective protocol)
	classBuiltin    = 2
)

// tagClassDef is one registered half-open tag range [lo, hi).
type tagClassDef struct {
	name   string
	lo, hi int
}

// World is a group of ranks that can communicate. Create one with
// NewWorld (in-process channel transport) or NewWorldTransport, and
// run an SPMD function on it with Run.
type World struct {
	size int
	tr   Transport

	classes []tagClassDef // index = class slot (includes builtins)
	// counters[rank][class]: sends counted at the sender, receive wait
	// at the receiver.
	bytesSent [][]atomic.Int64
	msgsSent  [][]atomic.Int64
	waitNs    [][]atomic.Int64

	// abortCh is closed when any rank's SPMD function fails, so peers
	// blocked in receives unwind instead of deadlocking on messages
	// that will never come (see Run).
	abortCh   chan struct{}
	abortOnce sync.Once

	// fabricMu guards fabricErr, the first failure reported by the
	// underlying fabric (peer disconnect, malformed frame, …). It
	// decorates the ErrAborted the unblocked ranks come back with, so
	// "why did this world abort" survives into the error chain.
	fabricMu  sync.Mutex
	fabricErr error

	// local lists the ranks this process executes (nil = all of them).
	// A multi-process world (NewWorldRank) runs exactly one.
	local []int

	log *obs.Logger
}

// SetLogger attaches a structured logger to the world. Run reports
// per-rank failures through it; a nil logger (the default) disables
// that reporting.
func (w *World) SetLogger(l *obs.Logger) { w.log = l }

// NewWorld builds a world of p ranks over the in-process channel
// transport. It panics for p < 1 (worlds come from code, not input).
func NewWorld(p int) *World {
	return NewWorldTransport(p, NewChanTransport(p))
}

// NewWorldTransport builds a world of p ranks over an explicit
// Transport — the seam for plugging a real network fabric under the
// unchanged simulation stack.
func NewWorldTransport(p int, tr Transport) *World {
	if p < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", p))
	}
	w := &World{
		size: p,
		tr:   tr,
		classes: []tagClassDef{
			{name: "other"},
			{name: "collective"},
		},
		abortCh: make(chan struct{}),
	}
	w.growCounters()
	if a, ok := tr.(AbortAware); ok {
		a.SetAbort(w.abortCh)
	}
	if f, ok := tr.(Fabric); ok {
		f.OnFail(w.failFabric)
	}
	return w
}

// NewWorldRank builds a world of p ranks of which this process runs
// exactly one — the multi-process form, where the transport is a real
// fabric (e.g. a SocketTransport) and each OS process hosts one rank.
// Run executes the SPMD function only for rank; the counter arrays
// still span the full world, but only the local slots are written.
func NewWorldRank(p, rank int, tr Transport) *World {
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("comm: local rank %d outside world of size %d", rank, p))
	}
	w := NewWorldTransport(p, tr)
	w.local = []int{rank}
	return w
}

// growCounters (re)allocates the per-rank per-class counter arrays.
// Only called at construction and from DefineTagClass, both before Run.
func (w *World) growCounters() {
	n := len(w.classes)
	w.bytesSent = make([][]atomic.Int64, w.size)
	w.msgsSent = make([][]atomic.Int64, w.size)
	w.waitNs = make([][]atomic.Int64, w.size)
	for r := 0; r < w.size; r++ {
		w.bytesSent[r] = make([]atomic.Int64, n)
		w.msgsSent[r] = make([]atomic.Int64, n)
		w.waitNs[r] = make([]atomic.Int64, n)
	}
}

// DefineTagClass registers the half-open tag range [lo, hi) under a
// name, so ClassStats can break communication volume down by traffic
// type (e.g. "halo", "migrate", "force"). Must be called before Run;
// ranges must not overlap previously registered ones. Negative tags
// are always accounted to the builtin "collective" class and
// unregistered non-negative tags to "other".
func (w *World) DefineTagClass(name string, lo, hi int) {
	if lo >= hi {
		panic(fmt.Sprintf("comm: tag class %q has empty range [%d, %d)", name, lo, hi))
	}
	for _, c := range w.classes[classBuiltin:] {
		if lo < c.hi && c.lo < hi {
			panic(fmt.Sprintf("comm: tag class %q [%d, %d) overlaps %q [%d, %d)",
				name, lo, hi, c.name, c.lo, c.hi))
		}
	}
	w.classes = append(w.classes, tagClassDef{name: name, lo: lo, hi: hi})
	w.growCounters()
}

// classOf maps a tag to its counter slot. The registered class list is
// short (a handful of traffic types), so a linear scan beats any map
// on the hot path — and allocates nothing.
func (w *World) classOf(tag int) int {
	if tag < 0 {
		return classCollective
	}
	for i := classBuiltin; i < len(w.classes); i++ {
		if c := w.classes[i]; tag >= c.lo && tag < c.hi {
			return i
		}
	}
	return classOther
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// ErrAborted is the error a rank comes back with when it was blocked
// in a receive (or a full-link send) while another rank failed: the
// world's abort signal unwound it instead of leaving it deadlocked on
// a message that will never arrive.
var ErrAborted = errors.New("comm: aborted while waiting for a peer (another rank failed)")

// ProtocolError is a violation of the messaging protocol detected at
// the comm layer: a receive whose tag does not match the next message
// on the link, or an operation naming a rank outside the world. Over
// the trusted in-process transport these are programming errors; over
// a real fabric a desynced peer can produce them at runtime, so they
// abort the world as typed errors flowing through the *RankError path
// instead of panicking the process.
type ProtocolError struct {
	Rank    int // rank that detected the violation
	Peer    int // peer involved, -1 when not applicable
	WantTag int // expected tag (tag mismatches only)
	GotTag  int // received tag (tag mismatches only)
	Reason  string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("comm: protocol error at rank %d: %s", e.Rank, e.Reason)
}

// abortSignal is the sentinel panicked by an abort-unblocked receive
// or send, or by a rank failing with a typed comm error. It unwinds
// the rank's SPMD function up to the recover in Run (or an earlier
// recover installed by the caller — see IsAbort and AbortError).
type abortSignal struct {
	rank, src int
	err       error // typed cause; nil for plain peer-failure aborts
}

// IsAbort reports whether a recovered panic value is the world's abort
// sentinel. SPMD functions that install their own deferred recover
// (e.g. to attach rank context to the failure) must re-panic anything
// for which this returns false.
func IsAbort(v any) bool {
	_, ok := v.(abortSignal)
	return ok
}

// AbortError converts a recovered abort sentinel (IsAbort(v) == true)
// to its error: the typed cause when the unwind originated in a
// protocol, decode, or fabric failure, plain ErrAborted when the rank
// was simply unblocked after a peer failed. Callers with their own
// deferred recover use this instead of hard-coding ErrAborted so typed
// causes survive into their error chains.
func AbortError(v any) error {
	s, ok := v.(abortSignal)
	if !ok || s.err == nil {
		return ErrAborted
	}
	return s.err
}

// abort marks the world failed and unblocks every receive and send
// selecting on the abort channel. Idempotent. A fabric-backed world
// also closes the fabric so remote peers observe the failure (as EOF
// on their links) and abort in turn — without this, killing one worker
// process would leave every other process blocked forever.
func (w *World) abort() {
	w.abortOnce.Do(func() {
		close(w.abortCh)
		if f, ok := w.tr.(Fabric); ok {
			// Off the critical path: Close may be called from a fabric
			// reader goroutine via OnFail → failFabric → abort, and
			// must not deadlock against the fabric's own locks.
			go f.Close()
		}
	})
}

// failFabric records the first fabric failure and aborts the world.
// Registered as the Fabric.OnFail callback at construction.
func (w *World) failFabric(err error) {
	w.fabricMu.Lock()
	if w.fabricErr == nil {
		w.fabricErr = err
	}
	w.fabricMu.Unlock()
	w.abort()
}

func (w *World) fabricError() error {
	w.fabricMu.Lock()
	defer w.fabricMu.Unlock()
	return w.fabricErr
}

// abortCause builds the error an abort-unblocked rank unwinds with:
// ErrAborted decorated with the recorded fabric failure when there is
// one (so "why did the world abort" survives into every rank's error),
// nil for plain peer-failure aborts (AbortError then yields the bare
// ErrAborted). Safe to call after abortCh is closed — the fabric error
// is written before the close.
func (w *World) abortCause() error {
	if fe := w.fabricError(); fe != nil {
		return fmt.Errorf("%w (fabric: %v)", ErrAborted, fe)
	}
	return nil
}

// Run executes fn once per rank, each on its own goroutine, and waits
// for all of them. When a rank's fn returns an error the world aborts:
// peers blocked in receives unwind with ErrAborted (over an
// AsyncTransport; a plain Transport cannot be interrupted) rather than
// deadlocking the whole world on a protocol that lost a participant.
// Run reports each failing rank through the world's logger and returns
// every rank's error joined (nil when all ranks succeeded).
func (w *World) Run(fn func(p *Proc) error) error {
	local := w.local
	if local == nil {
		local = make([]int, w.size)
		for r := range local {
			local[r] = r
		}
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(len(local))
	for _, r := range local {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if !IsAbort(rec) {
						panic(rec)
					}
					errs[rank] = fmt.Errorf("rank %d: %w", rank, AbortError(rec))
				}
				if errs[rank] != nil {
					w.abort()
				}
			}()
			errs[rank] = fn(&Proc{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			w.log.Error("rank failed", "rank", rank, "err", err)
		}
	}
	return errors.Join(errs...)
}

// Stats summarizes communication volume. Messages and Bytes count
// sends; Wait is cumulative receiver-side blocking time.
type Stats struct {
	Messages int64
	Bytes    int64
	Wait     time.Duration
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Wait += o.Wait
}

// ClassNames lists every tag class of the world, builtins first, in
// registration order.
func (w *World) ClassNames() []string {
	names := make([]string, len(w.classes))
	for i, c := range w.classes {
		names[i] = c.name
	}
	return names
}

// RankClassStats returns one rank's counters for one tag class.
// Unknown class names return zero Stats.
func (w *World) RankClassStats(rank int, name string) Stats {
	for i, c := range w.classes {
		if c.name == name {
			return Stats{
				Messages: w.msgsSent[rank][i].Load(),
				Bytes:    w.bytesSent[rank][i].Load(),
				Wait:     time.Duration(w.waitNs[rank][i].Load()),
			}
		}
	}
	return Stats{}
}

// ClassStats sums one tag class's counters over all ranks.
func (w *World) ClassStats(name string) Stats {
	var s Stats
	for r := 0; r < w.size; r++ {
		s.add(w.RankClassStats(r, name))
	}
	return s
}

// RankStats returns the cumulative counters of one rank, summed over
// all tag classes.
func (w *World) RankStats(rank int) Stats {
	var s Stats
	for i := range w.classes {
		s.add(Stats{
			Messages: w.msgsSent[rank][i].Load(),
			Bytes:    w.bytesSent[rank][i].Load(),
			Wait:     time.Duration(w.waitNs[rank][i].Load()),
		})
	}
	return s
}

// TotalStats sums the counters over all ranks and classes.
func (w *World) TotalStats() Stats {
	var s Stats
	for r := 0; r < w.size; r++ {
		s.add(w.RankStats(r))
	}
	return s
}

// Proc is the per-rank handle passed to the SPMD function.
type Proc struct {
	world *World
	rank  int
	// free is this rank's buffer freelist. Only the owning goroutine
	// touches it: a rank acquires send buffers from its own list and
	// releases the buffers it received into it, so pooled buffers
	// circulate between ranks without any locking.
	free []*Buffer
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// Stats returns this rank's own cumulative counters (all tag classes),
// including the receive-wait time the runtime accumulates — the
// per-rank view telemetry emitters read between steps.
func (p *Proc) Stats() Stats { return p.world.RankStats(p.rank) }

// ClassStats returns this rank's counters for one tag class.
func (p *Proc) ClassStats(name string) Stats {
	return p.world.RankClassStats(p.rank, name)
}

// ClassNames lists the world's tag classes, builtins first.
func (p *Proc) ClassNames() []string { return p.world.ClassNames() }

// ClassCount returns the number of tag classes (builtins included) —
// the length callers size ClassStatsInto destinations with.
func (w *World) ClassCount() int { return len(w.classes) }

// RankClassStatsInto copies one rank's counters for every tag class
// into dst, indexed by class slot (ClassNames order). It allocates
// nothing, so per-step emitters can snapshot class traffic each step
// without breaking the steady-state zero-allocation guarantee. dst
// must have length ClassCount.
func (w *World) RankClassStatsInto(rank int, dst []Stats) {
	if len(dst) != len(w.classes) {
		panic(fmt.Sprintf("comm: ClassStatsInto dst length %d != class count %d",
			len(dst), len(w.classes)))
	}
	for i := range w.classes {
		dst[i] = Stats{
			Messages: w.msgsSent[rank][i].Load(),
			Bytes:    w.bytesSent[rank][i].Load(),
			Wait:     time.Duration(w.waitNs[rank][i].Load()),
		}
	}
}

// ClassStatsInto copies this rank's per-class counters into dst
// (see World.RankClassStatsInto).
func (p *Proc) ClassStatsInto(dst []Stats) { p.world.RankClassStatsInto(p.rank, dst) }

// ClassCount returns the number of tag classes of this rank's world.
func (p *Proc) ClassCount() int { return p.world.ClassCount() }

// fail aborts the world with a typed error detected by this rank and
// unwinds the calling goroutine with the abort sentinel carrying it:
// Run's recover (or a caller's, via AbortError) converts the sentinel
// back to the typed error, so tag mismatches, truncated payloads, and
// invalid-rank operations flow through the same *RankError abort path
// as any other rank failure instead of panicking the process.
func (p *Proc) fail(err error) {
	p.world.failFabric(err)
	panic(abortSignal{rank: p.rank, err: err})
}

// checkDecode aborts the world when a Reader hit a truncated payload —
// the guard collectives and protocol decoders run after reading
// untrusted bytes off a fabric.
func (p *Proc) checkDecode(rd *Reader, what string) {
	if err := rd.Err(); err != nil {
		p.fail(fmt.Errorf("comm: rank %d decoding %s: %w", p.rank, what, err))
	}
}

// AcquireBuffer returns an empty buffer from this rank's freelist
// (allocating only when the list is dry). Pass it to SendBuffer — the
// receiving rank returns it to circulation with ReleaseBuffer.
func (p *Proc) AcquireBuffer() *Buffer {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.Reset()
		return b
	}
	return new(Buffer)
}

// ReleaseBuffer returns a buffer (typically one obtained from
// RecvBuffer) to this rank's freelist. The caller must not use it
// afterwards. nil is ignored.
func (p *Proc) ReleaseBuffer(b *Buffer) {
	if b != nil {
		p.free = append(p.free, b)
	}
}

// SendBuffer transfers a pooled buffer's payload to rank dst with the
// given tag. The buffer is handed off; the caller must not touch it
// afterwards (the receiver recycles it via ReleaseBuffer).
func (p *Proc) SendBuffer(dst, tag int, b *Buffer) {
	if dst < 0 || dst >= p.world.size {
		p.fail(&ProtocolError{Rank: p.rank, Peer: dst,
			Reason: fmt.Sprintf("send to invalid rank %d (world size %d)", dst, p.world.size)})
	}
	cls := p.world.classOf(tag)
	p.world.msgsSent[p.rank][cls].Add(1)
	p.world.bytesSent[p.rank][cls].Add(int64(b.Len()))
	p.world.tr.Send(p.rank, dst, Message{Tag: tag, Buf: b})
}

// recvMessage blocks until the next message on the (src → this rank)
// link arrives. Over an AsyncTransport it selects on the world's abort
// channel as well, so a rank stuck waiting on a failed peer unwinds
// (via the abort sentinel, converted to ErrAborted in Run) instead of
// deadlocking. The fast path — message already delivered — takes no
// select at all and allocates nothing.
func (p *Proc) recvMessage(src int) Message {
	at, ok := p.world.tr.(AsyncTransport)
	if !ok {
		return p.world.tr.Recv(p.rank, src)
	}
	ch := at.RecvChan(p.rank, src)
	select {
	case m := <-ch:
		return m
	default:
	}
	select {
	case m := <-ch:
		return m
	case <-p.world.abortCh:
		panic(abortSignal{rank: p.rank, src: src, err: p.world.abortCause()})
	}
}

// RecvBuffer blocks until the next message from src arrives and
// returns its buffer; release it with ReleaseBuffer once decoded. The
// message's tag must match; a mismatch means the SPMD protocol is out
// of step — a desynced peer on a real fabric — and aborts the world
// with a typed *ProtocolError.
func (p *Proc) RecvBuffer(src, tag int) *Buffer {
	if src < 0 || src >= p.world.size {
		p.fail(&ProtocolError{Rank: p.rank, Peer: src,
			Reason: fmt.Sprintf("receive from invalid rank %d (world size %d)", src, p.world.size)})
	}
	start := time.Now()
	m := p.recvMessage(src)
	p.world.waitNs[p.rank][p.world.classOf(tag)].Add(time.Since(start).Nanoseconds())
	if m.Tag == tagLinkDown {
		reason := "peer closed the connection"
		if m.Buf != nil && m.Buf.Len() > 0 {
			reason = string(m.Buf.Bytes())
		}
		p.fail(fmt.Errorf("%w (rank %d waiting on rank %d: %s)", ErrAborted, p.rank, src, reason))
	}
	if m.Tag != tag {
		p.fail(&ProtocolError{Rank: p.rank, Peer: src, WantTag: tag, GotTag: m.Tag,
			Reason: fmt.Sprintf("expected tag %d from rank %d, got %d", tag, src, m.Tag)})
	}
	return m.Buf
}

// SendRecvBuffer exchanges pooled buffers with two (possibly equal)
// partners: sends b to dst and receives from src, without deadlocking
// on cyclic exchange patterns (the transport's buffering decouples the
// two).
func (p *Proc) SendRecvBuffer(dst, sendTag int, b *Buffer, src, recvTag int) *Buffer {
	p.SendBuffer(dst, sendTag, b)
	return p.RecvBuffer(src, recvTag)
}

// SendHandle is the completion handle of a posted asynchronous send.
// The channel transport completes sends at post time (the link buffer
// absorbs them), so Wait returns immediately; the type exists so
// callers are already shaped for a fabric where sends complete later.
type SendHandle struct{}

// Wait blocks until the send has completed.
func (SendHandle) Wait() {}

// ISendBuffer posts an asynchronous send of a pooled buffer and
// returns its completion handle. Exactly like SendBuffer, the buffer
// is handed off at the call: the caller must not touch it afterwards.
// Messages and bytes are counted at post time under the tag's class.
func (p *Proc) ISendBuffer(dst, tag int, b *Buffer) SendHandle {
	p.SendBuffer(dst, tag, b)
	return SendHandle{}
}

// RecvHandle is a posted receive: a claim on the next message of the
// (src → this rank) link carrying the expected tag. Handles on one
// link complete in message order (the transport is FIFO per link, the
// non-overtaking rule), so posting order defines the matching. A
// handle is a plain value — posting allocates nothing — and must be
// completed exactly once with Wait.
type RecvHandle struct {
	p   *Proc
	src int
	tag int
}

// IRecvBuffer posts an asynchronous receive from src with the given
// tag and returns its completion handle.
func (p *Proc) IRecvBuffer(src, tag int) RecvHandle {
	if src < 0 || src >= p.world.size {
		p.fail(&ProtocolError{Rank: p.rank, Peer: src,
			Reason: fmt.Sprintf("posting receive from invalid rank %d (world size %d)", src, p.world.size)})
	}
	return RecvHandle{p: p, src: src, tag: tag}
}

// Wait blocks until the posted receive completes and returns its
// buffer (release it with ReleaseBuffer once decoded). The time spent
// blocked is accounted to the tag's class here, at the completion
// point — the definition that makes receive-wait measure exposed
// latency rather than posting overhead. A tag mismatch is a protocol
// slip and aborts the world, exactly like RecvBuffer.
func (h RecvHandle) Wait() *Buffer {
	if h.p == nil {
		panic("comm: Wait on an unposted RecvHandle")
	}
	return h.p.RecvBuffer(h.src, h.tag)
}

// Send transfers data to rank dst with the given tag. The data slice
// is handed off; the caller must not reuse it afterwards. Send blocks
// only if the transport's buffering is exhausted.
func (p *Proc) Send(dst, tag int, data []byte) {
	p.SendBuffer(dst, tag, &Buffer{b: data})
}

// Recv blocks until the next message from src arrives and returns its
// payload (which stays owned by the caller — unlike RecvBuffer, the
// backing buffer is not recycled). The message's tag must match; a
// mismatch panics with a diagnostic.
func (p *Proc) Recv(src, tag int) []byte {
	return p.RecvBuffer(src, tag).Bytes()
}

// SendRecv exchanges messages with two (possibly equal) partners:
// sends to dst and receives from src, without deadlocking on
// cyclic exchange patterns.
func (p *Proc) SendRecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	p.Send(dst, sendTag, data)
	return p.Recv(src, recvTag)
}

// Reserved collective tags, outside the range user phases should use.
const (
	tagBarrier = -1 - iota
	tagReduce
	tagBcast
	tagGather
)

// Barrier blocks until every rank has entered it. Implemented as a
// gather-to-0 plus broadcast over pooled buffers, so steady-state
// barriers allocate nothing.
func (p *Proc) Barrier() {
	if p.rank == 0 {
		for r := 1; r < p.world.size; r++ {
			p.ReleaseBuffer(p.RecvBuffer(r, tagBarrier))
		}
		for r := 1; r < p.world.size; r++ {
			p.SendBuffer(r, tagBarrier, p.AcquireBuffer())
		}
		return
	}
	p.SendBuffer(0, tagBarrier, p.AcquireBuffer())
	p.ReleaseBuffer(p.RecvBuffer(0, tagBarrier))
}

// AllReduceFloat64 combines one float64 per rank with op and returns
// the result on every rank.
func (p *Proc) AllReduceFloat64(x float64, op func(a, b float64) float64) float64 {
	if p.rank == 0 {
		acc := x
		for r := 1; r < p.world.size; r++ {
			b := p.RecvBuffer(r, tagReduce)
			var rd Reader
			rd.Reset(b.Bytes())
			acc = op(acc, rd.Float64())
			p.checkDecode(&rd, "reduce contribution")
			p.ReleaseBuffer(b)
		}
		for r := 1; r < p.world.size; r++ {
			b := p.AcquireBuffer()
			b.Float64(acc)
			p.SendBuffer(r, tagReduce, b)
		}
		return acc
	}
	b := p.AcquireBuffer()
	b.Float64(x)
	p.SendBuffer(0, tagReduce, b)
	rb := p.RecvBuffer(0, tagReduce)
	var rd Reader
	rd.Reset(rb.Bytes())
	v := rd.Float64()
	p.checkDecode(&rd, "reduce result")
	p.ReleaseBuffer(rb)
	return v
}

// AllReduceSum returns the sum of x over all ranks.
func (p *Proc) AllReduceSum(x float64) float64 {
	return p.AllReduceFloat64(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax returns the maximum of x over all ranks.
func (p *Proc) AllReduceMax(x float64) float64 {
	return p.AllReduceFloat64(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceSumInt64 returns the sum of an int64 over all ranks.
func (p *Proc) AllReduceSumInt64(x int64) int64 {
	if p.rank == 0 {
		acc := x
		for r := 1; r < p.world.size; r++ {
			b := p.RecvBuffer(r, tagReduce)
			var rd Reader
			rd.Reset(b.Bytes())
			acc += rd.Int64()
			p.checkDecode(&rd, "reduce contribution")
			p.ReleaseBuffer(b)
		}
		for r := 1; r < p.world.size; r++ {
			b := p.AcquireBuffer()
			b.Int64(acc)
			p.SendBuffer(r, tagReduce, b)
		}
		return acc
	}
	b := p.AcquireBuffer()
	b.Int64(x)
	p.SendBuffer(0, tagReduce, b)
	rb := p.RecvBuffer(0, tagReduce)
	var rd Reader
	rd.Reset(rb.Bytes())
	v := rd.Int64()
	p.checkDecode(&rd, "reduce result")
	p.ReleaseBuffer(rb)
	return v
}

// Bcast distributes root's data to every rank and returns it.
func (p *Proc) Bcast(root int, data []byte) []byte {
	if p.rank == root {
		for r := 0; r < p.world.size; r++ {
			if r != root {
				p.Send(r, tagBcast, data)
			}
		}
		return data
	}
	return p.Recv(root, tagBcast)
}

// GatherTo0 collects each rank's payload on rank 0 (indexed by rank);
// other ranks receive nil.
func (p *Proc) GatherTo0(data []byte) [][]byte {
	if p.rank == 0 {
		out := make([][]byte, p.world.size)
		out[0] = data
		for r := 1; r < p.world.size; r++ {
			out[r] = p.Recv(r, tagGather)
		}
		return out
	}
	p.Send(0, tagGather, data)
	return nil
}
