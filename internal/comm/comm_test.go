package comm

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"sctuple/internal/geom"
)

func TestSendRecvRoundTrip(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			var b Buffer
			b.Int64(42)
			b.Vec3(geom.V(1, 2, 3))
			p.Send(1, 7, b.Bytes())
			r := NewReader(p.Recv(1, 8))
			if got := r.Int64(); got != 43 {
				return fmt.Errorf("got %d", got)
			}
		} else {
			r := NewReader(p.Recv(0, 7))
			if r.Int64() != 42 {
				return fmt.Errorf("bad payload")
			}
			if v := r.Vec3(); v != geom.V(1, 2, 3) {
				return fmt.Errorf("bad vec %v", v)
			}
			if r.Remaining() != 0 {
				return fmt.Errorf("left-over bytes")
			}
			var b Buffer
			b.Int64(43)
			p.Send(0, 8, b.Bytes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.TotalStats()
	if st.Messages != 2 || st.Bytes != (8+24)+8 {
		t.Errorf("stats %+v", st)
	}
}

func TestRingExchangeManyRanks(t *testing.T) {
	const p = 16
	w := NewWorld(p)
	err := w.Run(func(pr *Proc) error {
		next := (pr.Rank() + 1) % p
		prev := (pr.Rank() + p - 1) % p
		var b Buffer
		b.Int64(int64(pr.Rank()))
		got := NewReader(pr.SendRecv(next, 1, b.Bytes(), prev, 1)).Int64()
		if got != int64(prev) {
			return fmt.Errorf("rank %d received %d, want %d", pr.Rank(), got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	var before, after atomic.Int64
	err := w.Run(func(pr *Proc) error {
		before.Add(1)
		pr.Barrier()
		if before.Load() != p {
			return fmt.Errorf("rank %d passed barrier before all entered", pr.Rank())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != p {
		t.Fatal("not all ranks finished")
	}
}

func TestAllReduce(t *testing.T) {
	const p = 12
	w := NewWorld(p)
	err := w.Run(func(pr *Proc) error {
		sum := pr.AllReduceSum(float64(pr.Rank()))
		if sum != float64(p*(p-1)/2) {
			return fmt.Errorf("sum = %g", sum)
		}
		maxv := pr.AllReduceMax(float64(pr.Rank() % 5))
		if maxv != 4 {
			return fmt.Errorf("max = %g", maxv)
		}
		isum := pr.AllReduceSumInt64(int64(pr.Rank()) * 10)
		if isum != int64(10*p*(p-1)/2) {
			return fmt.Errorf("isum = %d", isum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastGather(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	err := w.Run(func(pr *Proc) error {
		var b Buffer
		b.Float64(math.Pi)
		got := NewReader(pr.Bcast(0, b.Bytes())).Float64()
		if got != math.Pi {
			return fmt.Errorf("bcast got %g", got)
		}
		var mine Buffer
		mine.Int32(int32(pr.Rank() * pr.Rank()))
		all := pr.GatherTo0(mine.Bytes())
		if pr.Rank() == 0 {
			for r := 0; r < p; r++ {
				if v := NewReader(all[r]).Int32(); v != int32(r*r) {
					return fmt.Errorf("gather[%d] = %d", r, v)
				}
			}
		} else if all != nil {
			return fmt.Errorf("non-root got gather data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagMismatchAborts: a receive whose tag does not match the next
// message on the link means the protocol is out of step (a desynced
// socket stream, in the distributed case) and must abort the world
// with a typed *ProtocolError, not kill the process with a panic.
func TestTagMismatchAborts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 0 {
			pr.Send(1, 1, nil)
		} else {
			pr.Recv(0, 2) // wrong tag: aborts the world
			return fmt.Errorf("tag mismatch not caught")
		}
		return nil
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if pe.Rank != 1 || pe.Peer != 0 || pe.WantTag != 2 || pe.GotTag != 1 {
		t.Errorf("ProtocolError %+v", pe)
	}
}

// TestAbortUnblocksBlockedSend: a sender stuck on a full link after
// its peer failed must unwind with ErrAborted instead of blocking
// forever — the sender-side half of the abort protocol (receivers
// have always selected on the abort channel).
func TestAbortUnblocksBlockedSend(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 1 {
			return fmt.Errorf("boom") // never receives anything
		}
		// Far more than the link buffer holds: without the abort
		// select this blocks forever once the channel fills.
		for i := 0; i < 10*linkBuffer; i++ {
			pr.Send(1, 1, nil)
		}
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted in chain", err)
	}
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("original failure lost: %v", err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestCartFactorization(t *testing.T) {
	cases := map[int]geom.IVec3{
		1:  geom.IV(1, 1, 1),
		8:  geom.IV(2, 2, 2),
		12: geom.IV(2, 2, 3),
		64: geom.IV(4, 4, 4),
		7:  geom.IV(1, 1, 7),
	}
	for p, want := range cases {
		c := NewCart(p)
		if c.Size() != p {
			t.Errorf("NewCart(%d) size %d", p, c.Size())
		}
		got := c.Dims
		// Accept permutations of the expected dims.
		a := [3]int{got.X, got.Y, got.Z}
		b := [3]int{want.X, want.Y, want.Z}
		sort3 := func(v *[3]int) {
			if v[0] > v[1] {
				v[0], v[1] = v[1], v[0]
			}
			if v[1] > v[2] {
				v[1], v[2] = v[2], v[1]
			}
			if v[0] > v[1] {
				v[0], v[1] = v[1], v[0]
			}
		}
		sort3(&a)
		sort3(&b)
		if a != b {
			t.Errorf("NewCart(%d) dims %v, want %v", p, got, want)
		}
	}
}

func TestCartRankCoordRoundTrip(t *testing.T) {
	c := NewCart(24)
	for r := 0; r < 24; r++ {
		if c.Rank(c.Coord(r)) != r {
			t.Fatalf("round trip failed at rank %d", r)
		}
	}
}

func TestCartNeighbors(t *testing.T) {
	c, err := NewCartDims(geom.IV(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	center := c.Rank(geom.IV(1, 1, 1))
	if got := c.AxisNeighbor(center, 0, 1); got != c.Rank(geom.IV(2, 1, 1)) {
		t.Errorf("x+ neighbor %d", got)
	}
	// Periodic wrap.
	edge := c.Rank(geom.IV(2, 0, 0))
	if got := c.AxisNeighbor(edge, 0, 1); got != c.Rank(geom.IV(0, 0, 0)) {
		t.Errorf("wrapped neighbor %d", got)
	}
	if got := c.Neighbor(center, geom.IV(-2, 0, 0)); got != c.Rank(geom.IV(2, 1, 1)) {
		t.Errorf("negative wrap neighbor %d", got)
	}
}

func TestCartDimsValidation(t *testing.T) {
	if _, err := NewCartDims(geom.IV(0, 1, 1)); err == nil {
		t.Error("invalid dims accepted")
	}
}

func TestPerRankStats(t *testing.T) {
	w := NewWorld(2)
	_ = w.Run(func(pr *Proc) error {
		if pr.Rank() == 0 {
			pr.Send(1, 1, make([]byte, 100))
		} else {
			pr.Recv(0, 1)
		}
		return nil
	})
	if s := w.RankStats(0); s.Messages != 1 || s.Bytes != 100 {
		t.Errorf("rank 0 stats %+v", s)
	}
	if s := w.RankStats(1); s.Messages != 0 {
		t.Errorf("rank 1 stats %+v", s)
	}
}
