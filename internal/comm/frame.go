package comm

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The socket fabric moves messages as length-prefixed frames. Every
// frame starts with a fixed 28-byte little-endian header:
//
//	offset  size  field
//	     0     4  magic   — frameMagic, stream-desync tripwire
//	     4     2  version — frameVersion, incompatible peers refuse
//	     6     2  kind    — data / handshake discriminator
//	     8     4  src     — sending rank (int32)
//	    12     4  dst     — receiving rank (int32)
//	    16     4  tag     — message tag (int32; collectives negative)
//	    20     4  step    — sender's simulation step when stamped
//	    24     4  payload — payload byte count, then that many bytes
//
// The payload bytes are the Buffer wire format already used by the
// in-process transport (internal/parmd/wire.go layers its records on
// it), so the socket fabric changes the envelope, not the codec — the
// property that keeps forces bit-identical across transports.
const (
	frameMagic   = 0x53435457 // "SCTW" big-endianly read: sctuple wire
	frameVersion = 1

	frameHeaderBytes = 28

	// MaxFramePayload caps a single frame. Real exchanges are a few
	// MB at most; anything larger is a corrupt or hostile length field
	// and is refused before any allocation happens.
	MaxFramePayload = 1 << 28
)

// Frame kinds. Data frames carry Transport messages; the rest are the
// rendezvous/handshake control protocol.
const (
	frameData     = 0 // payload = message bytes, tag field meaningful
	frameHello    = 1 // mesh handshake: dialer announces itself
	frameAck      = 2 // mesh handshake: listener accepts the link
	frameRegister = 3 // rendezvous: worker registers (rank, listen addr)
	framePeers    = 4 // rendezvous: server broadcasts the address map
)

// frameHeader is the decoded fixed header of one frame.
type frameHeader struct {
	kind    uint16
	src     int32
	dst     int32
	tag     int32
	step    int32
	payload uint32
}

// FrameError is a malformed or incompatible socket frame: wrong magic
// (stream desync), wrong protocol version, an oversized length field,
// or a truncated stream. It flows through the fabric's failure
// callback into the world abort, so one bad peer aborts the run as a
// typed error instead of crashing or hanging the process.
type FrameError struct {
	Peer   int // peer rank the frame came from, -1 when unknown
	Reason string
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("comm: bad frame from peer %d: %s", e.Peer, e.Reason)
}

// appendFrameHeader appends the encoded header to b.
func appendFrameHeader(b []byte, h frameHeader) []byte {
	b = binary.LittleEndian.AppendUint32(b, frameMagic)
	b = binary.LittleEndian.AppendUint16(b, frameVersion)
	b = binary.LittleEndian.AppendUint16(b, h.kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.src))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.dst))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.tag))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.step))
	b = binary.LittleEndian.AppendUint32(b, h.payload)
	return b
}

// parseFrameHeader validates and decodes a header. peer only labels
// the error.
func parseFrameHeader(b []byte, peer int) (frameHeader, error) {
	if len(b) < frameHeaderBytes {
		return frameHeader{}, &FrameError{Peer: peer,
			Reason: fmt.Sprintf("truncated header: %d of %d bytes", len(b), frameHeaderBytes)}
	}
	if magic := binary.LittleEndian.Uint32(b[0:]); magic != frameMagic {
		return frameHeader{}, &FrameError{Peer: peer,
			Reason: fmt.Sprintf("bad magic %#08x (stream desynced?)", magic)}
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != frameVersion {
		return frameHeader{}, &FrameError{Peer: peer,
			Reason: fmt.Sprintf("protocol version %d, want %d", v, frameVersion)}
	}
	h := frameHeader{
		kind:    binary.LittleEndian.Uint16(b[6:]),
		src:     int32(binary.LittleEndian.Uint32(b[8:])),
		dst:     int32(binary.LittleEndian.Uint32(b[12:])),
		tag:     int32(binary.LittleEndian.Uint32(b[16:])),
		step:    int32(binary.LittleEndian.Uint32(b[20:])),
		payload: binary.LittleEndian.Uint32(b[24:]),
	}
	if h.payload > MaxFramePayload {
		return frameHeader{}, &FrameError{Peer: peer,
			Reason: fmt.Sprintf("oversized payload length %d (cap %d)", h.payload, MaxFramePayload)}
	}
	return h, nil
}

// writeFrame writes one complete frame. scratch is reused across calls
// so steady-state sends stage header+payload into one Write (one
// syscall, and no interleaving hazard when a link is shared).
func writeFrame(w io.Writer, scratch *[]byte, h frameHeader, payload []byte) error {
	h.payload = uint32(len(payload))
	buf := appendFrameHeader((*scratch)[:0], h)
	buf = append(buf, payload...)
	*scratch = buf
	_, err := w.Write(buf)
	return err
}

// readFrameHeader reads and validates the fixed header. A cleanly
// closed stream (EOF before any header byte) returns io.EOF untouched
// so callers can tell peer shutdown from mid-frame truncation, which
// comes back as a *FrameError.
func readFrameHeader(r io.Reader, hdr *[frameHeaderBytes]byte, peer int) (frameHeader, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frameHeader{}, io.EOF
		}
		return frameHeader{}, &FrameError{Peer: peer,
			Reason: fmt.Sprintf("truncated header: %v", err)}
	}
	return parseFrameHeader(hdr[:], peer)
}

// readFramePayload reads the payload announced by h into dst (len
// h.payload), mapping truncation to a typed *FrameError.
func readFramePayload(r io.Reader, h frameHeader, dst []byte, peer int) error {
	if _, err := io.ReadFull(r, dst); err != nil {
		return &FrameError{Peer: peer,
			Reason: fmt.Sprintf("truncated payload: got fewer than %d bytes: %v", h.payload, err)}
	}
	return nil
}
