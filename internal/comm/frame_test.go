package comm

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameHeaderRoundTrip: every header field survives encode/decode.
func TestFrameHeaderRoundTrip(t *testing.T) {
	h := frameHeader{kind: frameData, src: 3, dst: 7, tag: -2, step: 41, payload: 123}
	b := appendFrameHeader(nil, h)
	if len(b) != frameHeaderBytes {
		t.Fatalf("header is %d bytes, want %d", len(b), frameHeaderBytes)
	}
	got, err := parseFrameHeader(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v, want %+v", got, h)
	}
}

// TestFrameHeaderRejectsTyped: truncated, wrong-magic, wrong-version,
// and oversized-length headers come back as typed *FrameError — never
// a panic, never silently accepted.
func TestFrameHeaderRejectsTyped(t *testing.T) {
	good := appendFrameHeader(nil, frameHeader{kind: frameData, payload: 10})
	cases := map[string][]byte{
		"truncated": good[:frameHeaderBytes-3],
		"bad magic": append([]byte{0xde, 0xad, 0xbe, 0xef}, good[4:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4], b[5] = 0xff, 0xff
			return b
		}(),
		"oversized length": func() []byte {
			b := append([]byte(nil), good...)
			b[24], b[25], b[26], b[27] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
	}
	for name, raw := range cases {
		var fe *FrameError
		if _, err := parseFrameHeader(raw, 0); !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FrameError", name, err)
		}
	}
}

// TestReadFrameHeaderEOF: a stream closing cleanly between frames is
// io.EOF (peer shutdown, handled by link poisoning); closing mid-frame
// is a typed *FrameError (truncation).
func TestReadFrameHeaderEOF(t *testing.T) {
	var hdr [frameHeaderBytes]byte
	if _, err := readFrameHeader(bytes.NewReader(nil), &hdr, 0); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	good := appendFrameHeader(nil, frameHeader{kind: frameData})
	var fe *FrameError
	if _, err := readFrameHeader(bytes.NewReader(good[:5]), &hdr, 0); !errors.As(err, &fe) {
		t.Errorf("mid-header EOF: err = %v, want *FrameError", err)
	}
	h := frameHeader{kind: frameData, payload: 64}
	if _, err := readFrameHeader(bytes.NewReader(appendFrameHeader(nil, h)), &hdr, 0); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
	dst := make([]byte, 64)
	if err := readFramePayload(bytes.NewReader(make([]byte, 10)), h, dst, 0); !errors.As(err, &fe) {
		t.Errorf("truncated payload: err = %v, want *FrameError", err)
	}
}

// FuzzParseFrameHeader: arbitrary bytes must either decode or produce
// a typed *FrameError — no panics, no other error types.
func FuzzParseFrameHeader(f *testing.F) {
	f.Add(appendFrameHeader(nil, frameHeader{kind: frameData, src: 1, dst: 2, tag: 200, step: 9, payload: 48}))
	f.Add([]byte{})
	f.Add(make([]byte, frameHeaderBytes))
	f.Add(appendFrameHeader(nil, frameHeader{payload: MaxFramePayload + 1}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		h, err := parseFrameHeader(raw, 0)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("non-typed error %T: %v", err, err)
			}
			return
		}
		if h.payload > MaxFramePayload {
			t.Fatalf("accepted oversized payload %d", h.payload)
		}
		// A header that parsed must re-encode to the same bytes.
		if got := appendFrameHeader(nil, h); !bytes.Equal(got, raw[:frameHeaderBytes]) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, raw[:frameHeaderBytes])
		}
	})
}

// FuzzReaderDecode: arbitrary payload bytes decoded as a mixed record
// stream must never panic; any failure must surface as *DecodeError.
func FuzzReaderDecode(f *testing.F) {
	var b Buffer
	b.Int64(7)
	b.Float64(3.14)
	b.Int32(-1)
	f.Add(b.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var rd Reader
		rd.Reset(raw)
		for rd.Remaining() > 0 {
			rd.Int64()
			rd.Int32()
			rd.Vec3()
		}
		if err := rd.Err(); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-typed error %T: %v", err, err)
			}
		}
	})
}
