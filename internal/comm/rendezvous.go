package comm

import (
	"fmt"
	"net"
	"time"
)

// The rendezvous protocol bootstraps the mesh: the launcher serves a
// well-known address; each worker listens on its own socket first,
// then registers (rank, listen address) with the launcher; once all
// ranks have registered, the launcher broadcasts the full address map
// and the workers dial each other directly. One round trip per worker,
// all frames in the same format as the data plane.

// ServeRendezvous accepts registrations on ln until every one of size
// ranks has reported its listen address, then sends each worker the
// full address map and returns. Registrations with a bad token, an
// out-of-range or duplicate rank, or a malformed frame are rejected by
// closing the connection (the worker sees EOF and fails its setup);
// the server keeps accepting until the full fleet arrives or the
// timeout expires. Intended to run on the launcher, concurrently with
// worker spawning.
func ServeRendezvous(ln net.Listener, size int, token uint64, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(deadline)
	}
	conns := make([]net.Conn, size)
	addrs := make([]string, size)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for got := 0; got < size; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("comm: rendezvous: %d of %d workers registered: %w", got, size, err)
		}
		conn.SetDeadline(deadline)
		rank, addr, err := readRegistration(conn, size, token)
		if err != nil || conns[rank] != nil {
			conn.Close()
			continue
		}
		conns[rank], addrs[rank] = conn, addr
		got++
	}
	var payload Buffer
	payload.Int32(int32(size))
	for _, a := range addrs {
		payload.Int32(int32(len(a)))
		payload.b = append(payload.b, a...)
	}
	var scratch []byte
	for rank, conn := range conns {
		h := frameHeader{kind: framePeers, src: -1, dst: int32(rank)}
		if err := writeFrame(conn, &scratch, h, payload.Bytes()); err != nil {
			return fmt.Errorf("comm: rendezvous: sending peer map to rank %d: %w", rank, err)
		}
	}
	return nil
}

// readRegistration reads and validates one worker's register frame.
func readRegistration(conn net.Conn, size int, token uint64) (rank int, addr string, err error) {
	h, body, err := readControlFrame(conn, -1)
	if err != nil {
		return 0, "", err
	}
	rank = int(h.src)
	if h.kind != frameRegister || rank < 0 || rank >= size {
		return 0, "", &FrameError{Peer: rank, Reason: "invalid registration frame"}
	}
	var rd Reader
	rd.Reset(body)
	tok := uint64(rd.Int64())
	wsize := int(rd.Int32())
	alen := int(rd.Int32())
	if rd.Err() != nil || tok != token || wsize != size || alen < 0 || alen > rd.Remaining() {
		return 0, "", &FrameError{Peer: rank, Reason: "malformed or cross-launch registration"}
	}
	return rank, string(rd.take(alen)), nil
}

// registerWorker is the worker side: dial the rendezvous server (with
// retry — the launcher may still be starting), register our listen
// address, and wait for the full peer address map.
func registerWorker(cfg SocketConfig, listenAddr string, deadline time.Time) ([]string, error) {
	conn, err := dialRetry(cfg.Network, cfg.Rendezvous, deadline)
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d reaching rendezvous %s: %w", cfg.Rank, cfg.Rendezvous, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)

	var payload Buffer
	payload.Int64(int64(cfg.Token))
	payload.Int32(int32(cfg.Size))
	payload.Int32(int32(len(listenAddr)))
	payload.b = append(payload.b, listenAddr...)
	var scratch []byte
	h := frameHeader{kind: frameRegister, src: int32(cfg.Rank), dst: -1}
	if err := writeFrame(conn, &scratch, h, payload.Bytes()); err != nil {
		return nil, fmt.Errorf("comm: rank %d registering: %w", cfg.Rank, err)
	}

	ph, body, err := readControlFrame(conn, -1)
	if err != nil {
		if fe, ok := err.(*FrameError); ok && fe.Reason == "connection closed during handshake" {
			return nil, fmt.Errorf("comm: rank %d: rendezvous rejected registration (token or rank mismatch): %w", cfg.Rank, err)
		}
		return nil, fmt.Errorf("comm: rank %d awaiting peer map: %w", cfg.Rank, err)
	}
	if ph.kind != framePeers || int(ph.dst) != cfg.Rank {
		return nil, &FrameError{Peer: -1, Reason: "unexpected rendezvous reply"}
	}
	var rd Reader
	rd.Reset(body)
	n := int(rd.Int32())
	if rd.Err() != nil || n != cfg.Size {
		return nil, &FrameError{Peer: -1, Reason: fmt.Sprintf("peer map for %d ranks, want %d", n, cfg.Size)}
	}
	addrs := make([]string, n)
	for i := range addrs {
		alen := int(rd.Int32())
		if rd.Err() != nil || alen < 0 || alen > rd.Remaining() {
			return nil, &FrameError{Peer: -1, Reason: "malformed peer map"}
		}
		addrs[i] = string(rd.take(alen))
	}
	return addrs, nil
}
