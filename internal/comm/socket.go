package comm

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sctuple/internal/obs"
)

// SocketTransport runs a world's ranks as separate OS processes (or
// goroutines in tests) connected by a full mesh of TCP or Unix-domain
// stream sockets — the step from simulated distributed memory to
// genuinely distributed execution. Each unordered rank pair shares one
// bidirectional connection carrying length-prefixed frames (see
// frame.go); a reader goroutine per connection decodes frames into
// per-source inbox channels, which is exactly the shape RecvChan and
// the world's abort machinery already select on. Payload bytes are the
// same Buffer wire format the in-process transport moves by pointer,
// so forces are bit-identical across transports by construction.
//
// Failure mapping: a malformed frame or I/O error fails the fabric
// (OnFail → World abort); a clean EOF poisons only that link, so ranks
// that still wait on the dead peer unwind with ErrAborted while peers
// that already finished can close their ends without killing the
// world mid-shutdown. Closing the fabric (which World.abort does)
// propagates the failure to remote processes as EOF on their links.
type SocketTransport struct {
	rank, size int
	links      []*socketLink  // links[peer]; nil for self
	inbox      []chan Message // inbox[src]; inbox[rank] is the self-link

	closeCh   chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool

	// pool recycles receive buffers: a rank's sent buffers land here
	// after the frame is written, and reader goroutines draw from it,
	// so steady-state exchanges allocate nothing once warm.
	poolMu sync.Mutex
	pool   []*Buffer

	failMu  sync.Mutex
	failErr error
	onFail  []func(error)

	step atomic.Int32
	log  *obs.Logger
}

// socketLink is the sender half of one rank-pair connection. The mutex
// serializes writers (the rank goroutine and, rarely, collectives on
// helper paths); wbuf stages header+payload into a single Write so
// frames never interleave.
type socketLink struct {
	mu   sync.Mutex
	conn net.Conn
	wbuf []byte
}

// SocketConfig configures one rank's side of a socket fabric.
type SocketConfig struct {
	// Network is "tcp" or "unix".
	Network string
	// Rendezvous is the address of the launcher's rendezvous server
	// (ServeRendezvous), where workers trade listen addresses.
	Rendezvous string
	// Listen optionally pins this rank's own listen address. Defaults
	// to 127.0.0.1:0 for tcp and a path derived from Rendezvous for
	// unix.
	Listen string
	// Rank and Size identify this worker within the world.
	Rank, Size int
	// Token is the launcher-generated shared secret validated at
	// registration and on every mesh handshake, so two concurrent
	// launches on one host cannot cross-connect.
	Token uint64
	// Timeout bounds the whole setup (register, dial with backoff,
	// handshakes). Zero means 15s.
	Timeout time.Duration
	// Log, when set, reports fabric failures.
	Log *obs.Logger
}

func (c *SocketConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 15 * time.Second
	}
	return c.Timeout
}

// NewSessionToken draws a random shared secret for one launch.
func NewSessionToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Crypto randomness is only isolation between concurrent
		// launches; degrade to a clock-derived token rather than fail.
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// DialSocket brings up one rank's side of the fabric: listen, register
// the listen address with the rendezvous server, receive the full
// address map, build the connection mesh (dialing every lower rank
// with retry/backoff, accepting every higher one, validating the
// handshake on each link), and start the per-connection readers. It
// returns only when every link is up, or with an error when any part
// of setup fails within the deadline.
func DialSocket(cfg SocketConfig) (*SocketTransport, error) {
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("comm: socket rank %d outside world of size %d", cfg.Rank, cfg.Size)
	}
	switch cfg.Network {
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("comm: socket network %q (want tcp or unix)", cfg.Network)
	}
	deadline := time.Now().Add(cfg.timeout())

	ln, err := net.Listen(cfg.Network, cfg.listenAddr())
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen: %w", cfg.Rank, err)
	}
	t := &SocketTransport{
		rank:    cfg.Rank,
		size:    cfg.Size,
		links:   make([]*socketLink, cfg.Size),
		inbox:   make([]chan Message, cfg.Size),
		closeCh: make(chan struct{}),
		log:     cfg.Log,
	}
	for i := range t.inbox {
		t.inbox[i] = make(chan Message, linkBuffer)
	}
	fail := func(err error) (*SocketTransport, error) {
		ln.Close()
		for _, l := range t.links {
			if l != nil {
				l.conn.Close()
			}
		}
		return nil, err
	}

	addrs, err := registerWorker(cfg, ln.Addr().String(), deadline)
	if err != nil {
		return fail(err)
	}

	// Dial every lower rank; the lower side accepts. Sequential is
	// fine: acceptance is driven by listeners' OS backlogs, so there
	// is no dial/accept ordering deadlock across ranks.
	for peer := 0; peer < cfg.Rank; peer++ {
		conn, err := dialRetry(cfg.Network, addrs[peer], deadline)
		if err != nil {
			return fail(fmt.Errorf("comm: rank %d dialing rank %d: %w", cfg.Rank, peer, err))
		}
		if err := handshakeDial(conn, cfg, peer, deadline); err != nil {
			conn.Close()
			return fail(fmt.Errorf("comm: rank %d handshake with rank %d: %w", cfg.Rank, peer, err))
		}
		t.links[peer] = &socketLink{conn: conn}
	}
	// Accept every higher rank, in whatever order they arrive.
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(deadline)
	}
	for need := cfg.Size - 1 - cfg.Rank; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("comm: rank %d accepting mesh link: %w", cfg.Rank, err))
		}
		src, err := handshakeAccept(conn, cfg, deadline)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("comm: rank %d accepting mesh link: %w", cfg.Rank, err))
		}
		if t.links[src] != nil {
			conn.Close()
			return fail(fmt.Errorf("comm: rank %d: duplicate mesh link from rank %d", cfg.Rank, src))
		}
		t.links[src] = &socketLink{conn: conn}
	}
	// The mesh is complete and fixed; no more connections can join.
	ln.Close()

	for peer, l := range t.links {
		if l != nil {
			go t.serveConn(peer, l.conn)
		}
	}
	return t, nil
}

func (c *SocketConfig) listenAddr() string {
	if c.Listen != "" {
		return c.Listen
	}
	if c.Network == "unix" {
		return filepath.Join(filepath.Dir(c.Rendezvous), fmt.Sprintf("w%d.sock", c.Rank))
	}
	return "127.0.0.1:0"
}

// dialRetry dials with exponential backoff until the deadline — the
// peer may not be listening yet while the fleet starts up.
func dialRetry(network, addr string, deadline time.Time) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		left := time.Until(deadline)
		if left <= 0 {
			return nil, fmt.Errorf("dial %s %s: deadline exceeded (last error: %v)", network, addr, lastErr)
		}
		conn, err := net.DialTimeout(network, addr, min(left, time.Second))
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(min(backoff, left))
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// handshakeDial runs the dialer side of the link handshake: announce
// ourselves with a hello frame, wait for the peer's ack. Token and
// world size catch cross-launch and misconfigured connects before any
// data frame moves.
func handshakeDial(conn net.Conn, cfg SocketConfig, peer int, deadline time.Time) error {
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	var payload Buffer
	payload.Int64(int64(cfg.Token))
	payload.Int32(int32(cfg.Size))
	var scratch []byte
	h := frameHeader{kind: frameHello, src: int32(cfg.Rank), dst: int32(peer)}
	if err := writeFrame(conn, &scratch, h, payload.Bytes()); err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	ack, body, err := readControlFrame(conn, peer)
	if err != nil {
		return err
	}
	if ack.kind != frameAck || int(ack.src) != peer || int(ack.dst) != cfg.Rank {
		return &FrameError{Peer: peer, Reason: fmt.Sprintf(
			"unexpected handshake reply kind=%d src=%d dst=%d", ack.kind, ack.src, ack.dst)}
	}
	var rd Reader
	rd.Reset(body)
	if tok := uint64(rd.Int64()); rd.Err() != nil || tok != cfg.Token {
		return &FrameError{Peer: peer, Reason: "handshake ack token mismatch"}
	}
	return nil
}

// handshakeAccept runs the listener side: read the dialer's hello,
// validate it, ack. Returns the dialer's rank.
func handshakeAccept(conn net.Conn, cfg SocketConfig, deadline time.Time) (int, error) {
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	h, body, err := readControlFrame(conn, -1)
	if err != nil {
		return 0, err
	}
	src := int(h.src)
	if h.kind != frameHello || src <= cfg.Rank || src >= cfg.Size || int(h.dst) != cfg.Rank {
		return 0, &FrameError{Peer: src, Reason: fmt.Sprintf(
			"unexpected hello kind=%d src=%d dst=%d (rank %d of %d accepting)",
			h.kind, h.src, h.dst, cfg.Rank, cfg.Size)}
	}
	var rd Reader
	rd.Reset(body)
	tok := uint64(rd.Int64())
	size := int(rd.Int32())
	if rd.Err() != nil || tok != cfg.Token {
		return 0, &FrameError{Peer: src, Reason: "hello token mismatch (stray or cross-launch connect)"}
	}
	if size != cfg.Size {
		return 0, &FrameError{Peer: src, Reason: fmt.Sprintf(
			"world size mismatch: peer says %d, local %d", size, cfg.Size)}
	}
	var payload Buffer
	payload.Int64(int64(cfg.Token))
	var scratch []byte
	ack := frameHeader{kind: frameAck, src: int32(cfg.Rank), dst: h.src}
	if err := writeFrame(conn, &scratch, ack, payload.Bytes()); err != nil {
		return 0, fmt.Errorf("sending ack to rank %d: %w", src, err)
	}
	return src, nil
}

// readControlFrame reads one complete small frame during handshakes
// (allocating is fine off the hot path).
func readControlFrame(r io.Reader, peer int) (frameHeader, []byte, error) {
	var hdr [frameHeaderBytes]byte
	h, err := readFrameHeader(r, &hdr, peer)
	if err != nil {
		if err == io.EOF {
			return frameHeader{}, nil, &FrameError{Peer: peer, Reason: "connection closed during handshake"}
		}
		return frameHeader{}, nil, err
	}
	body := make([]byte, h.payload)
	if err := readFramePayload(r, h, body, peer); err != nil {
		return frameHeader{}, nil, err
	}
	return h, body, nil
}

// serveConn is the reader goroutine of one link: frames in, messages
// into the per-source inbox. Clean EOF poisons the link (see
// tagLinkDown); anything else fails the fabric.
func (t *SocketTransport) serveConn(peer int, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [frameHeaderBytes]byte
	for {
		h, err := readFrameHeader(br, &hdr, peer)
		if err == io.EOF {
			t.linkDown(peer, "peer closed the connection")
			return
		}
		if err != nil {
			t.fail(err)
			return
		}
		if h.kind != frameData {
			t.fail(&FrameError{Peer: peer, Reason: fmt.Sprintf(
				"control frame kind=%d on an established link", h.kind)})
			return
		}
		if int(h.src) != peer || int(h.dst) != t.rank {
			t.fail(&FrameError{Peer: peer, Reason: fmt.Sprintf(
				"misrouted frame src=%d dst=%d on link %d→%d", h.src, h.dst, peer, t.rank)})
			return
		}
		buf := t.getBuf()
		if err := readFramePayload(br, h, buf.Grow(int(h.payload)), peer); err != nil {
			t.putBuf(buf)
			t.fail(err)
			return
		}
		select {
		case t.inbox[peer] <- Message{Tag: int(h.tag), Buf: buf}:
		case <-t.closeCh:
			t.putBuf(buf)
			return
		}
	}
}

// linkDown delivers the poison message for a cleanly closed link.
func (t *SocketTransport) linkDown(peer int, reason string) {
	if t.closed.Load() {
		return
	}
	select {
	case t.inbox[peer] <- Message{Tag: tagLinkDown, Buf: &Buffer{b: []byte(reason)}}:
	case <-t.closeCh:
	}
}

// fail records the first fabric failure and notifies the registered
// callbacks (the World's abort). Failures after an explicit Close are
// expected teardown noise and are dropped.
func (t *SocketTransport) fail(err error) {
	if t.closed.Load() {
		return
	}
	t.failMu.Lock()
	if t.failErr != nil {
		t.failMu.Unlock()
		return
	}
	t.failErr = err
	cbs := t.onFail
	t.onFail = nil
	t.failMu.Unlock()
	t.log.Error("socket fabric failure", "rank", t.rank, "err", err)
	for _, cb := range cbs {
		cb(err)
	}
}

// error returns what a blocked operation should unwind with: ErrAborted
// decorated with the recorded fabric failure, if any.
func (t *SocketTransport) error() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	if t.failErr != nil {
		return fmt.Errorf("%w (fabric: %v)", ErrAborted, t.failErr)
	}
	return ErrAborted
}

// OnFail implements Fabric. A callback registered after the fabric has
// already failed fires immediately.
func (t *SocketTransport) OnFail(f func(error)) {
	t.failMu.Lock()
	if err := t.failErr; err != nil {
		t.failMu.Unlock()
		f(err)
		return
	}
	t.onFail = append(t.onFail, f)
	t.failMu.Unlock()
}

// Close implements Fabric: tear every connection down. Idempotent.
// Remote peers observe the close as EOF on their side of each link.
func (t *SocketTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		close(t.closeCh)
		for _, l := range t.links {
			if l != nil {
				l.conn.Close()
			}
		}
	})
	return nil
}

// MarkStep implements StepMarker: subsequent frames carry this step in
// their headers.
func (t *SocketTransport) MarkStep(step int) { t.step.Store(int32(step)) }

// Rank returns the local rank this transport serves.
func (t *SocketTransport) Rank() int { return t.rank }

func (t *SocketTransport) getBuf() *Buffer {
	t.poolMu.Lock()
	if n := len(t.pool); n > 0 {
		b := t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
		t.poolMu.Unlock()
		b.Reset()
		return b
	}
	t.poolMu.Unlock()
	return new(Buffer)
}

func (t *SocketTransport) putBuf(b *Buffer) {
	if b == nil {
		return
	}
	t.poolMu.Lock()
	t.pool = append(t.pool, b)
	t.poolMu.Unlock()
}

// Send implements Transport: encode the message as one frame and write
// it on the peer link (self-sends short-circuit through the local
// inbox). The sent buffer is recycled into the receive pool, closing
// the buffer circulation loop the in-process transport gets by handing
// pointers across goroutines. A write failure fails the fabric and
// unwinds the calling rank with the abort sentinel.
func (t *SocketTransport) Send(src, dst int, m Message) {
	if dst == t.rank {
		select {
		case t.inbox[t.rank] <- m:
			return
		default:
		}
		select {
		case t.inbox[t.rank] <- m:
		case <-t.closeCh:
			panic(abortSignal{rank: src, err: t.error()})
		}
		return
	}
	l := t.links[dst]
	h := frameHeader{
		kind: frameData,
		src:  int32(src), dst: int32(dst),
		tag: int32(m.Tag), step: t.step.Load(),
	}
	l.mu.Lock()
	err := writeFrame(l.conn, &l.wbuf, h, m.Buf.Bytes())
	l.mu.Unlock()
	if err != nil {
		t.fail(fmt.Errorf("comm: rank %d send to rank %d: %w", src, dst, err))
		panic(abortSignal{rank: src, err: t.error()})
	}
	t.putBuf(m.Buf)
}

// Recv implements Transport (the blocking fallback; the World's
// receive path uses RecvChan and its abort select instead).
func (t *SocketTransport) Recv(dst, src int) Message {
	select {
	case m := <-t.inbox[src]:
		return m
	case <-t.closeCh:
		panic(abortSignal{rank: dst, src: src, err: t.error()})
	}
}

// RecvChan implements AsyncTransport: the inbox of one source rank.
func (t *SocketTransport) RecvChan(dst, src int) <-chan Message {
	return t.inbox[src]
}
