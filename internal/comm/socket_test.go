package comm

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// runSocketWorld brings up a size-rank socket fabric in-process (one
// goroutine per rank, each with its own World and SocketTransport —
// the same topology as real worker processes, minus fork/exec) and
// runs fn as the SPMD body. Returns the per-rank errors.
func runSocketWorld(t *testing.T, network string, size int, timeout time.Duration, fn func(p *Proc) error) []error {
	t.Helper()
	var ln net.Listener
	var err error
	if network == "unix" {
		ln, err = net.Listen("unix", filepath.Join(t.TempDir(), "rdv.sock"))
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		t.Fatal(err)
	}
	token := NewSessionToken()
	go ServeRendezvous(ln, size, token, timeout)

	errs := make([]error, size)
	transports := make([]*SocketTransport, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := DialSocket(SocketConfig{
				Network: network, Rendezvous: ln.Addr().String(),
				Rank: rank, Size: size, Token: token, Timeout: timeout,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			transports[rank] = tr
			errs[rank] = NewWorldRank(size, rank, tr).Run(fn)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("socket world deadlocked")
	}
	for _, tr := range transports {
		if tr != nil {
			tr.Close()
		}
	}
	return errs
}

// TestSocketWorldExchange: point-to-point sends (including to self),
// collectives, and pooled buffers all behave over a 4-rank Unix-socket
// mesh exactly as over channels.
func TestSocketWorldExchange(t *testing.T) {
	const p = 4
	errs := runSocketWorld(t, "unix", p, 30*time.Second, func(pr *Proc) error {
		next, prev := (pr.Rank()+1)%p, (pr.Rank()+p-1)%p
		b := pr.AcquireBuffer()
		b.Int64(int64(pr.Rank() * 11))
		got := pr.SendRecvBuffer(next, 5, b, prev, 5)
		var rd Reader
		rd.Reset(got.Bytes())
		if v := rd.Int64(); v != int64(prev*11) {
			return fmt.Errorf("rank %d: ring got %d, want %d", pr.Rank(), v, prev*11)
		}
		pr.ReleaseBuffer(got)

		// Self-send through the local inbox.
		self := pr.AcquireBuffer()
		self.Int32(-7)
		echo := pr.SendRecvBuffer(pr.Rank(), 6, self, pr.Rank(), 6)
		rd.Reset(echo.Bytes())
		if v := rd.Int32(); v != -7 {
			return fmt.Errorf("rank %d: self send got %d", pr.Rank(), v)
		}
		pr.ReleaseBuffer(echo)

		if sum := pr.AllReduceSum(float64(pr.Rank())); sum != float64(p*(p-1)/2) {
			return fmt.Errorf("rank %d: allreduce sum %g", pr.Rank(), sum)
		}
		if n := pr.AllReduceSumInt64(1); n != p {
			return fmt.Errorf("rank %d: allreduce count %d", pr.Rank(), n)
		}
		pr.Barrier()
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// TestSocketLargePayload: a payload far beyond the bufio window must
// cross intact (exercises the ReadFull path and Buffer.Grow).
func TestSocketLargePayload(t *testing.T) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	errs := runSocketWorld(t, "unix", 2, 30*time.Second, func(pr *Proc) error {
		if pr.Rank() == 0 {
			pr.Send(1, 9, append([]byte(nil), payload...))
			pr.Barrier()
			return nil
		}
		got := pr.Recv(0, 9)
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("payload corrupted: %d bytes, want %d", len(got), len(payload))
		}
		pr.Barrier()
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// TestSocketTCP: the same mesh over TCP loopback.
func TestSocketTCP(t *testing.T) {
	errs := runSocketWorld(t, "tcp", 2, 30*time.Second, func(pr *Proc) error {
		v := pr.AllReduceMax(float64(pr.Rank() + 1))
		if v != 2 {
			return fmt.Errorf("rank %d: max %g", pr.Rank(), v)
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// TestSocketPeerDeathAborts: when one rank fails, its world closes the
// fabric; the surviving process — blocked in a receive that will never
// complete — must unwind with ErrAborted instead of deadlocking. This
// is the cross-process abort chain (EOF → link poison → typed error)
// that a killed worker rides.
func TestSocketPeerDeathAborts(t *testing.T) {
	errs := runSocketWorld(t, "unix", 2, 30*time.Second, func(pr *Proc) error {
		if pr.Rank() == 1 {
			return fmt.Errorf("simulated crash")
		}
		pr.Recv(1, 9) // never sent: must unwind, not deadlock
		return fmt.Errorf("receive from dead peer returned")
	})
	if errs[1] == nil || errs[1].Error() != "simulated crash" {
		t.Errorf("rank 1 err = %v", errs[1])
	}
	if !errors.Is(errs[0], ErrAborted) {
		t.Errorf("rank 0 err = %v, want ErrAborted", errs[0])
	}
}

// TestSocketTagMismatchAborts: a desynced stream (wrong tag at the
// head of a link) aborts the receiving world with *ProtocolError.
func TestSocketTagMismatchAborts(t *testing.T) {
	errs := runSocketWorld(t, "unix", 2, 30*time.Second, func(pr *Proc) error {
		if pr.Rank() == 0 {
			pr.Send(1, 5, nil)
			pr.Recv(1, 5) // blocks until rank 1's abort tears the link down
			return nil
		}
		pr.Recv(0, 6)
		return fmt.Errorf("tag mismatch not caught")
	})
	var pe *ProtocolError
	if !errors.As(errs[1], &pe) {
		t.Errorf("rank 1 err = %v, want *ProtocolError", errs[1])
	}
	if errs[0] == nil {
		t.Error("rank 0 survived a dead world")
	}
}

// TestSocketTokenMismatch: a worker with the wrong session token must
// be rejected at registration — cross-launch connects cannot mix two
// fleets — and the deadline must fail the rest of the fleet rather
// than hang it.
func TestSocketTokenMismatch(t *testing.T) {
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "rdv.sock"))
	if err != nil {
		t.Fatal(err)
	}
	token := NewSessionToken()
	const timeout = 2 * time.Second
	go ServeRendezvous(ln, 2, token, timeout)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tok := token
			if rank == 1 {
				tok = token + 1
			}
			_, errs[rank] = DialSocket(SocketConfig{
				Network: "unix", Rendezvous: ln.Addr().String(),
				Rank: rank, Size: 2, Token: tok, Timeout: timeout,
			})
		}(r)
	}
	wg.Wait()
	if errs[1] == nil {
		t.Error("wrong-token worker connected")
	}
	if errs[0] == nil {
		t.Error("fleet came up despite a rejected worker")
	}
}

// TestServeConnBadFrame: garbage on an established link (bad magic)
// fails the fabric with a typed *FrameError through OnFail — the
// callback the World turns into a clean abort.
func TestServeConnBadFrame(t *testing.T) {
	local, remote := net.Pipe()
	defer remote.Close()
	tr := &SocketTransport{
		rank: 0, size: 2,
		links:   make([]*socketLink, 2),
		inbox:   []chan Message{make(chan Message, 1), make(chan Message, 1)},
		closeCh: make(chan struct{}),
	}
	failed := make(chan error, 1)
	tr.OnFail(func(err error) { failed <- err })
	go tr.serveConn(1, local)
	garbage := make([]byte, frameHeaderBytes)
	copy(garbage, "not a frame, definitely")
	if _, err := remote.Write(garbage); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-failed:
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Errorf("err = %v, want *FrameError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bad frame did not fail the fabric")
	}
	tr.Close()
}
