package comm

import (
	"fmt"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
)

// TestManyMessagesInterleaved: a randomized all-pairs exchange with
// per-link FIFO ordering must deliver every payload intact.
func TestManyMessagesInterleaved(t *testing.T) {
	const p = 6
	const rounds = 50
	w := NewWorld(p)
	err := w.Run(func(pr *Proc) error {
		rng := rand.New(rand.NewSource(int64(pr.Rank())))
		// Everyone sends `rounds` tagged messages to every other rank…
		for r := 0; r < rounds; r++ {
			for dst := 0; dst < p; dst++ {
				if dst == pr.Rank() {
					continue
				}
				var b Buffer
				b.Int32(int32(pr.Rank()))
				b.Int32(int32(r))
				b.Int64(rng.Int63())
				pr.Send(dst, r, b.Bytes())
			}
		}
		// …then drains them in per-source FIFO order.
		for src := 0; src < p; src++ {
			if src == pr.Rank() {
				continue
			}
			for r := 0; r < rounds; r++ {
				rd := NewReader(pr.Recv(src, r))
				if got := rd.Int32(); got != int32(src) {
					return fmt.Errorf("rank %d: payload source %d, want %d", pr.Rank(), got, src)
				}
				if got := rd.Int32(); got != int32(r) {
					return fmt.Errorf("rank %d: payload round %d, want %d", pr.Rank(), got, r)
				}
				rd.Int64()
				if rd.Remaining() != 0 {
					return fmt.Errorf("trailing bytes")
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.TotalStats()
	if want := int64(p * (p - 1) * rounds); st.Messages != want {
		t.Errorf("messages %d, want %d", st.Messages, want)
	}
}

// TestBcastFromNonZeroRoot.
func TestBcastFromNonZeroRoot(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(pr *Proc) error {
		var payload []byte
		if pr.Rank() == 3 {
			var b Buffer
			b.Vec3(geom.V(1, 2, 3))
			payload = b.Bytes()
		}
		got := NewReader(pr.Bcast(3, payload)).Vec3()
		if got != geom.V(1, 2, 3) {
			return fmt.Errorf("rank %d got %v", pr.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSelfSend: a rank may send to itself through the buffered link
// (the degenerate 1-rank-per-axis halo case relies on this).
func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(pr *Proc) error {
		var b Buffer
		b.Int64(77)
		got := NewReader(pr.SendRecv(0, 5, b.Bytes(), 0, 5)).Int64()
		if got != 77 {
			return fmt.Errorf("self send got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReaderOverrunPanics.
func TestReaderOverrunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reading past end did not panic")
		}
	}()
	var b Buffer
	b.Int32(1)
	rd := NewReader(b.Bytes())
	rd.Int64() // 8 bytes from a 4-byte message
}

// TestInvalidRankPanics.
func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				t.Error("send to invalid rank did not panic")
			}
		}()
		pr.Send(5, 0, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
