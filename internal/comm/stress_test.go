package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
)

// TestManyMessagesInterleaved: a randomized all-pairs exchange with
// per-link FIFO ordering must deliver every payload intact.
func TestManyMessagesInterleaved(t *testing.T) {
	const p = 6
	const rounds = 50
	w := NewWorld(p)
	err := w.Run(func(pr *Proc) error {
		rng := rand.New(rand.NewSource(int64(pr.Rank())))
		// Everyone sends `rounds` tagged messages to every other rank…
		for r := 0; r < rounds; r++ {
			for dst := 0; dst < p; dst++ {
				if dst == pr.Rank() {
					continue
				}
				var b Buffer
				b.Int32(int32(pr.Rank()))
				b.Int32(int32(r))
				b.Int64(rng.Int63())
				pr.Send(dst, r, b.Bytes())
			}
		}
		// …then drains them in per-source FIFO order.
		for src := 0; src < p; src++ {
			if src == pr.Rank() {
				continue
			}
			for r := 0; r < rounds; r++ {
				rd := NewReader(pr.Recv(src, r))
				if got := rd.Int32(); got != int32(src) {
					return fmt.Errorf("rank %d: payload source %d, want %d", pr.Rank(), got, src)
				}
				if got := rd.Int32(); got != int32(r) {
					return fmt.Errorf("rank %d: payload round %d, want %d", pr.Rank(), got, r)
				}
				rd.Int64()
				if rd.Remaining() != 0 {
					return fmt.Errorf("trailing bytes")
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.TotalStats()
	if want := int64(p * (p - 1) * rounds); st.Messages != want {
		t.Errorf("messages %d, want %d", st.Messages, want)
	}
}

// TestBcastFromNonZeroRoot.
func TestBcastFromNonZeroRoot(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(pr *Proc) error {
		var payload []byte
		if pr.Rank() == 3 {
			var b Buffer
			b.Vec3(geom.V(1, 2, 3))
			payload = b.Bytes()
		}
		got := NewReader(pr.Bcast(3, payload)).Vec3()
		if got != geom.V(1, 2, 3) {
			return fmt.Errorf("rank %d got %v", pr.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSelfSend: a rank may send to itself through the buffered link
// (the degenerate 1-rank-per-axis halo case relies on this).
func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(pr *Proc) error {
		var b Buffer
		b.Int64(77)
		got := NewReader(pr.SendRecv(0, 5, b.Bytes(), 0, 5)).Int64()
		if got != 77 {
			return fmt.Errorf("self send got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReaderOverrunStickyError: reading past the end of a payload must
// not panic — a socket peer can deliver a truncated message. The
// reader returns zeros, records a typed *DecodeError, and pins the
// offset so decode loops terminate.
func TestReaderOverrunStickyError(t *testing.T) {
	var b Buffer
	b.Int32(1)
	rd := NewReader(b.Bytes())
	if got := rd.Int64(); got != 0 { // 8 bytes from a 4-byte message
		t.Errorf("overrun read returned %d, want 0", got)
	}
	var de *DecodeError
	if err := rd.Err(); !errors.As(err, &de) {
		t.Fatalf("Err() = %v, want *DecodeError", err)
	} else if de.Off != 0 || de.Need != 8 || de.Len != 4 {
		t.Errorf("DecodeError %+v", de)
	}
	if rd.Remaining() != 0 {
		t.Errorf("Remaining() = %d after decode error, want 0", rd.Remaining())
	}
	if got := rd.Float64(); got != 0 {
		t.Errorf("read after error returned %g, want 0", got)
	}
	rd.Reset(b.Bytes())
	if rd.Err() != nil {
		t.Error("Reset did not clear the sticky error")
	}
	if got := rd.Int32(); got != 1 {
		t.Errorf("reader unusable after Reset: got %d", got)
	}
}

// TestInvalidRankAborts: an operation naming a rank outside the world
// aborts the world with a typed *ProtocolError instead of panicking
// the process.
func TestInvalidRankAborts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() != 0 {
			return nil
		}
		pr.Send(5, 0, nil)
		return nil
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if pe.Rank != 0 || pe.Peer != 5 {
		t.Errorf("ProtocolError %+v", pe)
	}
}
