package comm

// Message is one point-to-point transfer moving through a Transport.
// The payload travels as a *Buffer so pooled buffers can be handed off
// sender → transport → receiver and recycled without copying.
type Message struct {
	Tag int
	Buf *Buffer
}

// tagLinkDown marks a transport-synthesized message reporting that the
// peer on a link closed its connection (EOF). It is delivered in-band
// so a rank blocked waiting on that exact link unwinds with a typed
// error, while ranks that never needed the dead link keep running —
// EOF alone must not abort a world mid-shutdown, when peers that
// finished earlier close their ends while their last frames are still
// being drained. Never appears on the wire; far outside both user tags
// and the reserved collective range.
const tagLinkDown = -1 << 30

// Transport moves messages between ranks. It is the seam that lets the
// simulation stack swap the in-process channel runtime for a real
// network fabric (sockets, RDMA, MPI) without touching any caller: the
// World layers tag matching, per-class accounting, and buffer pooling
// on top, so a Transport only has to deliver messages per (src, dst)
// link in FIFO order.
//
// Send hands the message off; the sender must not touch m.Buf again
// until it comes back through a pool. Recv blocks until the next
// message on the (src → dst) link is available.
type Transport interface {
	Send(src, dst int, m Message)
	Recv(dst, src int) Message
}

// AsyncTransport is the optional extension a Transport can implement
// to support the non-blocking receive API (Proc.IRecvBuffer) and the
// world's abort protocol. RecvChan exposes the delivery channel of one
// (src → dst) link so a receiver can select on it together with the
// abort signal instead of blocking unconditionally in Recv. Transports
// without this extension still work — receives fall back to the
// blocking Recv and cannot be interrupted by an abort.
type AsyncTransport interface {
	Transport
	RecvChan(dst, src int) <-chan Message
}

// AbortAware is the optional extension a Transport can implement to
// make blocked sends interruptible. The World injects its abort
// channel at construction; a send that would otherwise block forever
// on a full link after the receiver has failed selects on the channel
// and unwinds with the abort sentinel instead (converted to ErrAborted
// by Run's recover), closing the sender-side half of the abort
// protocol — receivers have always selected on abortCh in recvMessage.
type AbortAware interface {
	SetAbort(<-chan struct{})
}

// StepMarker is the optional extension a transport can implement to
// receive the simulation step counter. The socket transport stamps it
// into every frame header so captures of a broken stream carry the
// step they broke at; the step loop calls MarkStep when the configured
// transport implements it.
type StepMarker interface {
	MarkStep(step int)
}

// Fabric is a transport backed by external resources — connections,
// file descriptors, reader goroutines — that can fail asynchronously
// and must be torn down explicitly. The World registers OnFail so a
// fabric failure (peer disconnect, malformed frame, I/O error) aborts
// every local rank, and closes the fabric when it aborts so remote
// peers observe the failure as EOF and abort their own worlds in turn:
// that chain is how a killed worker unwinds all survivors.
type Fabric interface {
	AsyncTransport
	// OnFail registers a callback invoked once with the first fabric
	// error; if the fabric has already failed the callback fires
	// immediately.
	OnFail(func(error))
	// Close tears the fabric down. Idempotent; safe to call
	// concurrently with operations, which then fail.
	Close() error
}

// chanTransport is the default in-process Transport: ranks are
// goroutines and every (src, dst) link is a buffered channel with
// strict FIFO ordering, the stand-in for MPI on the paper's clusters.
type chanTransport struct {
	links [][]chan Message // links[src][dst]
	abort <-chan struct{}  // nil until SetAbort (worlds inject theirs)
}

// linkBuffer is the per-(src,dst) channel capacity. Halo exchange,
// migration, and collectives post at most a handful of in-flight
// messages per link; the buffer only needs to decouple send/recv
// ordering within a step.
const linkBuffer = 128

// NewChanTransport builds the default in-process channel transport for
// p ranks.
func NewChanTransport(p int) Transport {
	t := &chanTransport{links: make([][]chan Message, p)}
	for s := range t.links {
		t.links[s] = make([]chan Message, p)
		for d := range t.links[s] {
			t.links[s][d] = make(chan Message, linkBuffer)
		}
	}
	return t
}

// SetAbort implements AbortAware.
func (t *chanTransport) SetAbort(ch <-chan struct{}) { t.abort = ch }

func (t *chanTransport) Send(src, dst int, m Message) {
	// Fast path: the link buffer has room (the steady state — exchange
	// plans post a handful of messages per link per step).
	select {
	case t.links[src][dst] <- m:
		return
	default:
	}
	if t.abort == nil {
		t.links[src][dst] <- m
		return
	}
	select {
	case t.links[src][dst] <- m:
	case <-t.abort:
		panic(abortSignal{rank: src, src: dst})
	}
}

func (t *chanTransport) Recv(dst, src int) Message {
	return <-t.links[src][dst]
}

// RecvChan implements AsyncTransport: the (src → dst) link channel.
func (t *chanTransport) RecvChan(dst, src int) <-chan Message {
	return t.links[src][dst]
}
