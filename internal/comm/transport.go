package comm

// Message is one point-to-point transfer moving through a Transport.
// The payload travels as a *Buffer so pooled buffers can be handed off
// sender → transport → receiver and recycled without copying.
type Message struct {
	Tag int
	Buf *Buffer
}

// Transport moves messages between ranks. It is the seam that lets the
// simulation stack swap the in-process channel runtime for a real
// network fabric (sockets, RDMA, MPI) without touching any caller: the
// World layers tag matching, per-class accounting, and buffer pooling
// on top, so a Transport only has to deliver messages per (src, dst)
// link in FIFO order.
//
// Send hands the message off; the sender must not touch m.Buf again
// until it comes back through a pool. Recv blocks until the next
// message on the (src → dst) link is available.
type Transport interface {
	Send(src, dst int, m Message)
	Recv(dst, src int) Message
}

// AsyncTransport is the optional extension a Transport can implement
// to support the non-blocking receive API (Proc.IRecvBuffer) and the
// world's abort protocol. RecvChan exposes the delivery channel of one
// (src → dst) link so a receiver can select on it together with the
// abort signal instead of blocking unconditionally in Recv. Transports
// without this extension still work — receives fall back to the
// blocking Recv and cannot be interrupted by an abort.
type AsyncTransport interface {
	Transport
	RecvChan(dst, src int) <-chan Message
}

// chanTransport is the default in-process Transport: ranks are
// goroutines and every (src, dst) link is a buffered channel with
// strict FIFO ordering, the stand-in for MPI on the paper's clusters.
type chanTransport struct {
	links [][]chan Message // links[src][dst]
}

// linkBuffer is the per-(src,dst) channel capacity. Halo exchange,
// migration, and collectives post at most a handful of in-flight
// messages per link; the buffer only needs to decouple send/recv
// ordering within a step.
const linkBuffer = 128

// NewChanTransport builds the default in-process channel transport for
// p ranks.
func NewChanTransport(p int) Transport {
	t := &chanTransport{links: make([][]chan Message, p)}
	for s := range t.links {
		t.links[s] = make([]chan Message, p)
		for d := range t.links[s] {
			t.links[s][d] = make(chan Message, linkBuffer)
		}
	}
	return t
}

func (t *chanTransport) Send(src, dst int, m Message) {
	t.links[src][dst] <- m
}

func (t *chanTransport) Recv(dst, src int) Message {
	return <-t.links[src][dst]
}

// RecvChan implements AsyncTransport: the (src → dst) link channel.
func (t *chanTransport) RecvChan(dst, src int) <-chan Message {
	return t.links[src][dst]
}
