package comm

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestTagClassCounters: per-class accounting splits traffic by
// registered tag range, classes sum to the world totals, and negative
// (collective) tags land in the builtin class.
func TestTagClassCounters(t *testing.T) {
	w := NewWorld(2)
	w.DefineTagClass("halo", 200, 300)
	w.DefineTagClass("migrate", 100, 200)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 210, make([]byte, 40)) // halo
			p.Send(1, 150, make([]byte, 7))  // migrate
			p.Send(1, 999, make([]byte, 3))  // unregistered -> other
		} else {
			p.Recv(0, 210)
			p.Recv(0, 150)
			p.Recv(0, 999)
		}
		p.Barrier() // collective traffic
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.ClassStats("halo"); s.Messages != 1 || s.Bytes != 40 {
		t.Errorf("halo stats %+v", s)
	}
	if s := w.ClassStats("migrate"); s.Messages != 1 || s.Bytes != 7 {
		t.Errorf("migrate stats %+v", s)
	}
	if s := w.ClassStats("other"); s.Messages != 1 || s.Bytes != 3 {
		t.Errorf("other stats %+v", s)
	}
	if s := w.ClassStats("collective"); s.Messages != 2 {
		t.Errorf("collective stats %+v (barrier = 2 messages)", s)
	}
	var sum Stats
	for _, name := range w.ClassNames() {
		sum.add(w.ClassStats(name))
	}
	if total := w.TotalStats(); sum != total {
		t.Errorf("classes sum to %+v, world total %+v", sum, total)
	}
	if s := w.RankClassStats(0, "halo"); s.Messages != 1 {
		t.Errorf("rank 0 halo stats %+v", s)
	}
	if s := w.RankClassStats(1, "halo"); s.Messages != 0 {
		t.Errorf("rank 1 halo stats %+v (sends counted at sender)", s)
	}
	if s := w.ClassStats("no-such-class"); s != (Stats{}) {
		t.Errorf("unknown class stats %+v", s)
	}
}

// TestTagClassOverlapPanics: overlapping registrations are programming
// errors and must be rejected immediately.
func TestTagClassOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping tag class accepted")
		}
	}()
	w := NewWorld(1)
	w.DefineTagClass("a", 100, 200)
	w.DefineTagClass("b", 150, 250)
}

// TestBufferPoolRoundTrip: a buffer released by the receiver re-enters
// circulation with its capacity preserved, so a steady-state exchange
// reuses the same backing arrays instead of allocating.
func TestBufferPoolRoundTrip(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(p *Proc) error {
		b := p.AcquireBuffer()
		b.Int64(1)
		got := p.SendRecvBuffer(0, 5, b, 0, 5)
		if got != b {
			return fmt.Errorf("self exchange returned a different buffer")
		}
		p.ReleaseBuffer(got)
		cap0 := cap(got.Bytes())
		again := p.AcquireBuffer()
		if again != b {
			return fmt.Errorf("freelist did not return the released buffer")
		}
		if again.Len() != 0 || cap(again.Bytes()) != cap0 {
			return fmt.Errorf("reacquired buffer len %d cap %d, want 0 and %d",
				again.Len(), cap(again.Bytes()), cap0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// countingTransport wraps another Transport, counting traffic — the
// smallest possible proof that the transport seam is pluggable: the
// whole collective and point-to-point protocol must run unchanged over
// a custom implementation.
type countingTransport struct {
	inner Transport
	sends atomic.Int64
	recvs atomic.Int64
}

func (c *countingTransport) Send(src, dst int, m Message) {
	c.sends.Add(1)
	c.inner.Send(src, dst, m)
}

func (c *countingTransport) Recv(dst, src int) Message {
	c.recvs.Add(1)
	return c.inner.Recv(dst, src)
}

// TestCustomTransport: a world over a wrapped transport behaves
// identically and every message flows through the custom path.
func TestCustomTransport(t *testing.T) {
	const p = 4
	ct := &countingTransport{inner: NewChanTransport(p)}
	w := NewWorldTransport(p, ct)
	err := w.Run(func(pr *Proc) error {
		sum := pr.AllReduceSum(float64(pr.Rank()))
		if sum != float64(p*(p-1)/2) {
			return fmt.Errorf("sum over custom transport = %g", sum)
		}
		pr.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct.sends.Load() == 0 || ct.sends.Load() != ct.recvs.Load() {
		t.Errorf("custom transport saw %d sends, %d recvs", ct.sends.Load(), ct.recvs.Load())
	}
	if total := w.TotalStats(); total.Messages != ct.sends.Load() {
		t.Errorf("world counted %d messages, transport %d", total.Messages, ct.sends.Load())
	}
}

// TestCollectivesAllocationFree: once freelists are warm, barriers and
// reductions run without heap allocation (they carry pooled buffers).
func TestCollectivesAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	w := NewWorld(4)
	err := w.Run(func(p *Proc) error {
		iter := func() {
			p.AllReduceSum(float64(p.Rank()))
			p.Barrier()
		}
		for i := 0; i < 8; i++ {
			iter() // warm freelists on every rank
		}
		p.Barrier()
		// Rank 0 measures; the others run the same 1+10 rounds plainly
		// (AllocsPerRun counts process-wide mallocs, so their steady
		// state must be clean too — exactly what is being asserted).
		if p.Rank() != 0 {
			for i := 0; i < 11; i++ {
				iter()
			}
			p.Barrier()
			return nil
		}
		allocs := testing.AllocsPerRun(10, iter)
		p.Barrier()
		if allocs != 0 {
			return fmt.Errorf("%g allocs per collective round", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
