package core

// This file provides the closed-form results of the paper's
// theoretical analysis (§4.1-4.2) so that benchmarks and tests can
// compare the constructed patterns against theory.

// FSPathCount returns |Ψ(n)FS| = 27^(n-1) (Eq. 25), the number of
// paths in the full-shell pattern.
func FSPathCount(n int) int {
	if n < 2 {
		return 0
	}
	c := 1
	for i := 1; i < n; i++ {
		c *= 27
	}
	return c
}

// SelfReflectivePathCount returns the number of self-reflective
// (non-collapsible) full-shell paths, 27^(⌈n/2⌉-1) (Eq. 27; the paper
// typesets the exponent as ⌈(n+1)/2⌉-1, which evaluates identically
// for odd n and is off by one for even n — e.g. for n = 2 exactly one
// path, (0,0), is self-reflective, matching 27^0).
//
// Derivation: p = p⁻¹ forces v(k) = v(n-1-k); with v0 = 0 fixed, the
// free steps are v1…v(⌈n/2⌉-1), each with 27 choices.
func SelfReflectivePathCount(n int) int {
	if n < 2 {
		return 0
	}
	c := 1
	for i := 1; i < (n+1)/2; i++ {
		c *= 27
	}
	return c
}

// SCPathCount returns |Ψ(n)SC| = ½(27^(n-1) + 27^(⌈n/2⌉-1)) (Eq. 29):
// collapsible full-shell paths are halved, self-reflective ones kept.
// For n = 2 this is 14, the half-shell count; the search cost of SC is
// asymptotically half that of FS (§4.1).
func SCPathCount(n int) int {
	return (FSPathCount(n) + SelfReflectivePathCount(n)) / 2
}

// SCImportVolume returns the SC-pattern import volume for a cubic cell
// domain of side l: (l+n-1)³ − l³ (Eq. 33). The octant-compressed
// coverage spans [0, n-1]³, so a domain imports only the upper-corner
// shell of thickness n-1.
func SCImportVolume(n, l int) int {
	s := l + n - 1
	return s*s*s - l*l*l
}

// FSImportVolume returns the full-shell import volume for a cubic cell
// domain of side l: the full-shell pattern for tuple length n covers
// [-(n-1), n-1]³, so the halo has thickness n-1 on every side:
// (l+2(n-1))³ − l³.
func FSImportVolume(n, l int) int {
	s := l + 2*(n-1)
	return s*s*s - l*l*l
}

// HSImportVolume returns the half-shell pair import volume for a cubic
// domain of side l, computed exactly from the pattern: 5l² + 7l + 1.
// Note that under the owner-compute rule the half shell still touches
// five of the six halo faces (its corner offsets reach cells on
// negative-side planes), so the ratio to the full shell approaches
// 5/6 — genuinely halving the import requires relaxing owner-compute,
// which is what OC-SHIFT (eighth shell / SC) does.
func HSImportVolume(l int) int {
	return HalfShellPair().ImportVolume(l)
}

// SearchCostRatioFSOverSC returns the theoretical FS/SC search-cost
// ratio |ΨFS|/|ΨSC| for tuple length n; it approaches 2 for large n
// (§4.1) and equals 27/14 ≈ 1.93 for both n = 2 and n = 3.
func SearchCostRatioFSOverSC(n int) float64 {
	return float64(FSPathCount(n)) / float64(SCPathCount(n))
}

// CommCost models the per-step communication time of Eq. 31:
// Tcomm = cbandwidth·Vimport + clatency·ncommNodes. Package perfmodel
// instantiates the prefactors from machine profiles.
type CommCost struct {
	BandwidthCost float64 // cbandwidth · Vimport term
	LatencyCost   float64 // clatency · ncomm_nodes term
}

// Total returns the summed communication cost.
func (c CommCost) Total() float64 { return c.BandwidthCost + c.LatencyCost }
