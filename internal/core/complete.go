package core

import "sctuple/internal/geom"

// This file implements a decision procedure for the n-body
// completeness condition (Eq. 11). Completeness of a pattern is
// independent of the cell domain and the atom configuration; it is a
// purely combinatorial property of the pattern's differential
// representations:
//
// An n-tuple χ = (r0,…,r(n-1)) ∈ Γ*(n) has consecutive interatomic
// distances below the cutoff, so with cell size ≥ cutoff the cells of
// consecutive atoms are nearest neighbors. The cell chain of χ is
// therefore described by a step sequence δ ∈ ({-1,0,1}³)^(n-1). UCP
// with pattern Ψ generates χ exactly when some path p ∈ Ψ has
// σ(p) = δ (anchoring the first atom's cell) — and, because tuples
// are undirectional, generating the reversed chain σ(p) = δ-reversed
// is equally sufficient. Hence:
//
//	Ψ is n-complete  ⇔  {σ(p), σ(p⁻¹) : p ∈ Ψ} ⊇ ({-1,0,1}³)^(n-1)
//
// This reduces Lemma 1/Theorem 2 to a finite check that the unit
// tests run for n = 2, 3, 4 (and the tuple-enumeration gold tests
// confirm against brute force on actual atom configurations).

// IsComplete reports whether the pattern satisfies the n-body
// completeness condition: every nearest-neighbor step sequence of
// length n-1 is covered by some path's σ or reversed σ.
func (ps *Pattern) IsComplete() bool {
	missing, _ := ps.completenessScan(false)
	return missing == 0
}

// MissingSigmaClasses returns the step sequences (as σ values) that no
// path of the pattern covers, up to reflection. A complete pattern
// returns an empty slice. Useful for diagnosing hand-built patterns.
func (ps *Pattern) MissingSigmaClasses() []Sigma {
	_, missing := ps.completenessScan(true)
	return missing
}

// RedundancyCount returns the number of σ classes (up to reflection)
// covered by more than one path. The SC pattern has zero redundancy;
// the full-shell pattern has ½(27^(n-1) − 27^(⌈n/2⌉-1)) redundant
// classes.
func (ps *Pattern) RedundancyCount() int {
	cover := make(map[string]int)
	for _, p := range ps.paths {
		cover[canonicalSigmaKey(p.Sigma())]++
	}
	r := 0
	for _, c := range cover {
		if c > 1 {
			r += c - 1
		}
	}
	return r
}

// canonicalSigmaKey returns a key identifying σ up to reflection: the
// lexicographically smaller of σ and its reverse.
func canonicalSigmaKey(s Sigma) string {
	r := s.Reverse()
	ks, kr := s.Key(), r.Key()
	if ks <= kr {
		return ks
	}
	return kr
}

// completenessScan walks all ({-1,0,1}³)^(n-1) step sequences and
// checks coverage. When collect is true it gathers the missing ones.
func (ps *Pattern) completenessScan(collect bool) (missingCount int, missing []Sigma) {
	n := ps.n
	if n < 2 {
		return 0, nil
	}
	covered := make(map[string]bool, 2*len(ps.paths))
	for _, p := range ps.paths {
		s := p.Sigma()
		covered[s.Key()] = true
		covered[s.Reverse().Key()] = true
	}
	steps := NeighborOffsets()
	seq := make(Sigma, n-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n-1 {
			if !covered[seq.Key()] {
				missingCount++
				if collect {
					c := make(Sigma, len(seq))
					copy(c, seq)
					missing = append(missing, c)
				}
			}
			return
		}
		for _, d := range steps {
			seq[k] = d
			rec(k + 1)
		}
	}
	rec(0)
	return missingCount, missing
}

// CoversChain reports whether the pattern generates the cell chain
// with the given step sequence (directly or reflected). The chain must
// have length n-1.
func (ps *Pattern) CoversChain(delta []geom.IVec3) bool {
	if len(delta) != ps.n-1 {
		return false
	}
	want := Sigma(delta)
	rev := want.Reverse()
	for _, p := range ps.paths {
		s := p.Sigma()
		if s.Equal(want) || s.Equal(rev) {
			return true
		}
	}
	return false
}
