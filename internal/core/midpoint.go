package core

import (
	"fmt"

	"sctuple/internal/geom"
)

// This file implements the paper's §6 generalization: cells *smaller*
// than the cutoff, as in the midpoint method of Bowers, Dror & Shaw.
// With cell side ≥ r_cut/k, consecutive tuple atoms may be up to k
// cells apart, so computation paths step within the radius-k stencil
// {-k,…,k}³ instead of the nearest-neighbor stencil. GENERATE-FS,
// OC-SHIFT, and R-COLLAPSE generalize verbatim — the algebra never
// assumed unit steps — and the SC pattern then improves on the
// midpoint method by eliminating the reflectively redundant half of
// the search space, exactly as §6 claims.
//
// Finer cells trade pattern size ((2k+1)³ grows) for search precision
// (candidate volume per path shrinks as 1/k³) and a tighter import
// skin (thickness r_cut instead of rounded-up cells): the classic
// midpoint trade-off, quantified by MidpointAnalysis.

// StencilOffsets returns the radius-k stencil {-k,…,k}³ in
// lexicographic order ((2k+1)³ offsets).
func StencilOffsets(k int) []geom.IVec3 {
	if k < 1 {
		panic(fmt.Sprintf("core: stencil radius %d < 1", k))
	}
	out := make([]geom.IVec3, 0, (2*k+1)*(2*k+1)*(2*k+1))
	for x := -k; x <= k; x++ {
		for y := -k; y <= k; y++ {
			for z := -k; z <= k; z++ {
				out = append(out, geom.IV(x, y, z))
			}
		}
	}
	return out
}

// GenerateFSRadius generalizes GENERATE-FS to cells of side ≥
// r_cut/k: all paths of length n starting at the zero offset with
// steps in the radius-k stencil, (2k+1)^(3(n-1)) in total. For k = 1
// it is GenerateFS. The result is n-complete on a radius-k lattice by
// the same induction as Lemma 1.
func GenerateFSRadius(n, k int) *Pattern {
	if n < 2 {
		panic(fmt.Sprintf("core: GenerateFSRadius needs n ≥ 2, got %d", n))
	}
	stencil := StencilOffsets(k)
	count := 1
	for i := 1; i < n; i++ {
		count *= len(stencil)
	}
	paths := make([]Path, 0, count)
	cur := make(Path, n)
	var rec func(level int)
	rec = func(level int) {
		if level == n {
			paths = append(paths, cur.Clone())
			return
		}
		for _, d := range stencil {
			cur[level] = cur[level-1].Add(d)
			rec(level + 1)
		}
	}
	rec(1)
	return NewPattern(n, paths...)
}

// SCRadius runs the shift-collapse pipeline on the radius-k full
// shell: the midpoint-improved SC pattern of §6. For k = 1 it equals
// SC(n). The collapsed cardinality follows the same derivation as
// Eq. 29 with 27 replaced by (2k+1)³:
//
//	|ΨSC| = ½(m^(n-1) + m^(⌈n/2⌉-1)),  m = (2k+1)³.
func SCRadius(n, k int) *Pattern {
	return RCollapse(OCShift(GenerateFSRadius(n, k))).Sort()
}

// FSPathCountRadius returns m^(n-1) with m = (2k+1)³.
func FSPathCountRadius(n, k int) int {
	if n < 2 {
		return 0
	}
	m := (2*k + 1) * (2*k + 1) * (2*k + 1)
	c := 1
	for i := 1; i < n; i++ {
		c *= m
	}
	return c
}

// SCPathCountRadius returns ½(m^(n-1) + m^(⌈n/2⌉-1)), m = (2k+1)³.
func SCPathCountRadius(n, k int) int {
	m := (2*k + 1) * (2*k + 1) * (2*k + 1)
	self := 1
	for i := 1; i < (n+1)/2; i++ {
		self *= m
	}
	return (FSPathCountRadius(n, k) + self) / 2
}

// IsCompleteRadius reports whether the pattern covers every step
// sequence of the radius-k stencil (the completeness condition on a
// fine lattice, where consecutive cutoff-limited atoms can be up to k
// cells apart).
func (ps *Pattern) IsCompleteRadius(k int) bool {
	n := ps.n
	if n < 2 {
		return false
	}
	covered := make(map[string]bool, 2*len(ps.paths))
	for _, p := range ps.paths {
		s := p.Sigma()
		covered[s.Key()] = true
		covered[s.Reverse().Key()] = true
	}
	stencil := StencilOffsets(k)
	seq := make(Sigma, n-1)
	ok := true
	var rec func(level int)
	rec = func(level int) {
		if !ok {
			return
		}
		if level == n-1 {
			if !covered[seq.Key()] {
				ok = false
			}
			return
		}
		for _, d := range stencil {
			seq[level] = d
			rec(level + 1)
			if !ok {
				return
			}
		}
	}
	rec(0)
	return ok
}

// MidpointCosts quantifies the cell-size trade-off of §6 for one
// (n, k) point at uniform atom density, in units where the cutoff
// is 1.
type MidpointCosts struct {
	N, K          int
	Paths         int     // |ΨSC| on the radius-k lattice
	CellSide      float64 // r_cut/k
	AtomsPerCell  float64 // ⟨ρcell⟩ = (density·r_cut³) / k³
	SearchPerAtom float64 // |ΨSC| · ⟨ρcell⟩^(n-1) — the Lemma 5 search space
}

// MidpointAnalysis evaluates MidpointCosts for radii 1..maxK at
// density ρ·r_cut³ = rhoCut3 (≈ 11 for the silica pair term).
//
// By Lemma 5 (generalized), the per-atom tuple search space is
// |ΨSC(n,k)| · ⟨ρcell⟩^(n-1) with ⟨ρcell⟩ = rhoCut3/k³. Finer cells
// hug the cutoff ball more tightly, so the search space *decreases*
// monotonically in k toward its geometric limit — e.g. for pairs from
// 14·ρ (a (3r)³/2 box) at k = 1 toward (2+1/k)³·ρ/2 → 4ρ·r³ (a (2r)³/2
// box); the pattern size grows as (2k+1)³ but that is a per-cell
// constant, not a per-candidate cost. This quantifies §6's claim that
// the SC algorithm improves the midpoint method: R-COLLAPSE removes
// the same redundant half of the search space at every k.
func MidpointAnalysis(n, maxK int, rhoCut3 float64) []MidpointCosts {
	out := make([]MidpointCosts, 0, maxK)
	for k := 1; k <= maxK; k++ {
		sc := SCRadius(n, k)
		side := 1.0 / float64(k)
		rho := rhoCut3 * side * side * side
		search := float64(sc.Len())
		for i := 0; i < n-1; i++ {
			search *= rho
		}
		out = append(out, MidpointCosts{
			N: n, K: k,
			Paths:         sc.Len(),
			CellSide:      side,
			AtomsPerCell:  rho,
			SearchPerAtom: search,
		})
	}
	return out
}
