package core

import (
	"testing"

	"sctuple/internal/geom"
)

func TestStencilOffsets(t *testing.T) {
	if got := len(StencilOffsets(1)); got != 27 {
		t.Errorf("radius-1 stencil has %d offsets", got)
	}
	if got := len(StencilOffsets(2)); got != 125 {
		t.Errorf("radius-2 stencil has %d offsets", got)
	}
	for _, d := range StencilOffsets(2) {
		if d.X < -2 || d.X > 2 || d.Y < -2 || d.Y > 2 || d.Z < -2 || d.Z > 2 {
			t.Fatalf("offset %v outside radius 2", d)
		}
	}
}

func TestGenerateFSRadiusReducesToFS(t *testing.T) {
	for n := 2; n <= 3; n++ {
		if !GenerateFSRadius(n, 1).Equal(GenerateFS(n)) {
			t.Errorf("GenerateFSRadius(%d, 1) != GenerateFS(%d)", n, n)
		}
	}
}

func TestSCRadiusReducesToSC(t *testing.T) {
	for n := 2; n <= 3; n++ {
		if !SCRadius(n, 1).Equal(SC(n)) {
			t.Errorf("SCRadius(%d, 1) != SC(%d)", n, n)
		}
	}
}

func TestRadiusPathCounts(t *testing.T) {
	// m = (2k+1)³: FS = m^(n-1), SC = ½(m^(n-1) + m^(⌈n/2⌉-1)).
	cases := []struct{ n, k, fs, sc int }{
		{2, 1, 27, 14},
		{2, 2, 125, 63},
		{2, 3, 343, 172},
		{3, 2, 15625, 7875},
	}
	for _, c := range cases {
		if got := FSPathCountRadius(c.n, c.k); got != c.fs {
			t.Errorf("FSPathCountRadius(%d,%d) = %d, want %d", c.n, c.k, got, c.fs)
		}
		if got := SCPathCountRadius(c.n, c.k); got != c.sc {
			t.Errorf("SCPathCountRadius(%d,%d) = %d, want %d", c.n, c.k, got, c.sc)
		}
		if got := GenerateFSRadius(c.n, c.k).Len(); got != c.fs {
			t.Errorf("|GenerateFSRadius(%d,%d)| = %d, want %d", c.n, c.k, got, c.fs)
		}
		if got := SCRadius(c.n, c.k).Len(); got != c.sc {
			t.Errorf("|SCRadius(%d,%d)| = %d, want %d", c.n, c.k, got, c.sc)
		}
	}
}

func TestSCRadiusComplete(t *testing.T) {
	for _, c := range []struct{ n, k int }{{2, 2}, {2, 3}, {3, 2}} {
		sc := SCRadius(c.n, c.k)
		if !sc.IsCompleteRadius(c.k) {
			t.Errorf("SCRadius(%d,%d) not complete on radius-%d lattice", c.n, c.k, c.k)
		}
		if sc.RedundancyCount() != 0 {
			t.Errorf("SCRadius(%d,%d) has redundant paths", c.n, c.k)
		}
	}
	// A radius-1 pattern is NOT complete on a radius-2 lattice.
	if SC(2).IsCompleteRadius(2) {
		t.Error("SC(2) wrongly complete for radius-2 steps")
	}
}

func TestSCRadiusOctantCoverage(t *testing.T) {
	for _, c := range []struct{ n, k int }{{2, 2}, {3, 2}} {
		sc := SCRadius(c.n, c.k)
		if !sc.InFirstOctant() {
			t.Errorf("SCRadius(%d,%d) not in first octant", c.n, c.k)
		}
		_, hi := sc.BoundingBox()
		limit := (c.n - 1) * c.k
		if hi.X > limit || hi.Y > limit || hi.Z > limit {
			t.Errorf("SCRadius(%d,%d) coverage %v exceeds (n-1)k = %d", c.n, c.k, hi, limit)
		}
	}
}

func TestStepRadius(t *testing.T) {
	if got := SC(3).StepRadius(); got != 1 {
		t.Errorf("SC(3) step radius %d", got)
	}
	if got := SCRadius(2, 3).StepRadius(); got != 3 {
		t.Errorf("SCRadius(2,3) step radius %d", got)
	}
	p := NewPattern(2, NewPath(geom.IV(0, 0, 0), geom.IV(0, -4, 1)))
	if got := p.StepRadius(); got != 4 {
		t.Errorf("custom pattern step radius %d, want 4", got)
	}
}

func TestMidpointAnalysisMonotone(t *testing.T) {
	// §6: finer cells shrink the per-atom search space monotonically.
	rows := MidpointAnalysis(2, 4, 11.0)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SearchPerAtom >= rows[i-1].SearchPerAtom {
			t.Errorf("search space not decreasing at k=%d: %g >= %g",
				rows[i].K, rows[i].SearchPerAtom, rows[i-1].SearchPerAtom)
		}
	}
	// k = 1 matches Lemma 5 directly: 14·ρ.
	if got, want := rows[0].SearchPerAtom, 14*11.0; got != want {
		t.Errorf("k=1 search space %g, want %g", got, want)
	}
	// Every k matches the closed form ((2k+1)³+1)/2 · ρ/k³ exactly,
	// approaching the geometric limit 4ρ (a (2r)³/2 box) as k → ∞.
	for _, r := range rows {
		m := (2*r.K + 1) * (2*r.K + 1) * (2*r.K + 1)
		want := float64(m+1) / 2 * 11.0 / float64(r.K*r.K*r.K)
		if diff := r.SearchPerAtom - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("k=%d search space %g, want %g", r.K, r.SearchPerAtom, want)
		}
	}
}
