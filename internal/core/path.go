// Package core implements the computation-pattern algebraic framework
// and the shift-collapse (SC) algorithm of Kunaseth et al., SC'13
// ("A Scalable Parallel Algorithm for Dynamic Range-Limited n-Tuple
// Computation in Many-Body Molecular Dynamics Simulation").
//
// The framework formalizes cell-based dynamic range-limited n-tuple
// search. A computation path p = (v0, …, v(n-1)) is a list of n cell
// offsets; a computation pattern Ψ is a set of paths. Given a cell
// domain Ω, the uniform-cell-pattern (UCP) procedure applies every
// path to every cell, generating a force set of candidate n-tuples
// (Eq. 9-10 in the paper). A pattern is n-complete when the generated
// force set bounds Γ*(n), the set of all range-limited n-tuples
// (Eq. 11).
//
// The shift-collapse algorithm (paper Tables 2-5) builds an optimal
// pattern in three phases:
//
//   - GenerateFS enumerates all 27^(n-1) nearest-neighbor paths
//     (full shell, Lemma 1: complete).
//   - OCShift translates every path into the first octant, shrinking
//     the cell footprint and hence the parallel import volume
//     (Theorem 1: shifts preserve the force set).
//   - RCollapse removes reflectively redundant paths — paths whose
//     reversed differential representation matches another path's
//     (Lemma 3/4: collapses preserve the force set; Lemma 6: each
//     path has a unique reflective path-twin).
//
// For n = 2 the result coincides with the eighth-shell method and the
// collapse step alone reproduces the half-shell method (§4.3).
package core

import (
	"fmt"
	"strings"

	"sctuple/internal/geom"
)

// Path is a computation path p = (v0, …, v(n-1)): an ordered list of
// n cell offsets in the cell-index lattice L. Applied at cell q, the
// path asks for all n-tuples whose k-th atom lies in cell q + v[k].
type Path []geom.IVec3

// NewPath copies the given offsets into a fresh Path.
func NewPath(offsets ...geom.IVec3) Path {
	p := make(Path, len(offsets))
	copy(p, offsets)
	return p
}

// N returns the tuple length n of the path.
func (p Path) N() int { return len(p) }

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical offset sequences.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Inverse returns p⁻¹ = (v(n-1), …, v0), the reversed path. By the
// undirectionality of n-tuples (Newton's third law, §2.1), p and p⁻¹
// generate reflectively equivalent tuples.
func (p Path) Inverse() Path {
	q := make(Path, len(p))
	for i, v := range p {
		q[len(p)-1-i] = v
	}
	return q
}

// Shift returns p + Δ = (v0+Δ, …, v(n-1)+Δ), the path translated by Δ.
// By Theorem 1 (path-shift invariance), shifting never changes the
// force set generated over a periodic cell domain.
func (p Path) Shift(delta geom.IVec3) Path {
	q := make(Path, len(p))
	for i, v := range p {
		q[i] = v.Add(delta)
	}
	return q
}

// Sigma returns the differential representation σ(p) ∈ L^(n-1):
// σ(p) = (v1-v0, …, v(n-1)-v(n-2)). σ is invariant under Shift, and
// two paths generate the same force set iff σ(p') = σ(p) or
// σ(p') = σ(p⁻¹) (Lemma 3).
func (p Path) Sigma() Sigma {
	if len(p) < 2 {
		return nil
	}
	s := make(Sigma, len(p)-1)
	for i := 1; i < len(p); i++ {
		s[i-1] = p[i].Sub(p[i-1])
	}
	return s
}

// IsSelfReflective reports whether σ(p) = σ(p⁻¹), i.e. the path is its
// own reflective twin (Corollary 1). Self-reflective paths cannot be
// collapsed; tuple-level reflection filtering must handle them instead.
func (p Path) IsSelfReflective() bool {
	return p.Sigma().Equal(p.Inverse().Sigma())
}

// ReflectiveTwin returns RPT(p) = p⁻¹ - v(n-1), the unique path in the
// full-shell pattern that generates the same force set as p (Lemma 6).
// The twin starts at the zero offset, like every full-shell path.
func (p Path) ReflectiveTwin() Path {
	if len(p) == 0 {
		return Path{}
	}
	return p.Inverse().Shift(p[len(p)-1].Neg())
}

// BoundingBox returns the component-wise minimum and maximum offsets
// visited by the path.
func (p Path) BoundingBox() (lo, hi geom.IVec3) {
	if len(p) == 0 {
		return geom.IVec3{}, geom.IVec3{}
	}
	lo, hi = p[0], p[0]
	for _, v := range p[1:] {
		lo = lo.Min(v)
		hi = hi.Max(v)
	}
	return lo, hi
}

// Canonical returns the lexicographically smaller of p and its
// reflective twin, both normalized to start at the zero offset. Two
// paths generate the same force set iff their Canonical forms are
// equal. This is the identity used to reason about pattern equality
// independent of shifts and reflections.
func (p Path) Canonical() Path {
	if len(p) == 0 {
		return Path{}
	}
	a := p.Shift(p[0].Neg())
	b := p.ReflectiveTwin()
	b = b.Shift(b[0].Neg()) // twin already starts at 0; normalize defensively
	if a.less(b) {
		return a
	}
	return b
}

// less orders paths lexicographically by their offset sequences.
func (p Path) less(q Path) bool {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] != q[i] {
			return p[i].Less(q[i])
		}
	}
	return len(p) < len(q)
}

// Key returns a compact comparable key for use in maps.
func (p Path) Key() string {
	var b strings.Builder
	for _, v := range p {
		fmt.Fprintf(&b, "%d,%d,%d;", v.X, v.Y, v.Z)
	}
	return b.String()
}

// String formats the path for diagnostics, e.g. "(0,0,0)->(1,0,0)".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("(%d,%d,%d)", v.X, v.Y, v.Z)
	}
	return strings.Join(parts, "->")
}

// Sigma is the differential representation of a path: the sequence of
// consecutive offset steps.
type Sigma []geom.IVec3

// Equal reports whether two differential representations are identical.
func (s Sigma) Equal(t Sigma) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Reverse returns σ applied to the inverse path: if s = σ(p), then
// s.Reverse() = σ(p⁻¹) = (-s[m-1], …, -s[0]).
func (s Sigma) Reverse() Sigma {
	t := make(Sigma, len(s))
	for i, v := range s {
		t[len(s)-1-i] = v.Neg()
	}
	return t
}

// Compare orders differential representations lexicographically,
// comparing steps component-wise. It returns -1, 0, or +1.
func (s Sigma) Compare(t Sigma) int {
	for i := 0; i < len(s) && i < len(t); i++ {
		if s[i] != t[i] {
			if s[i].Less(t[i]) {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Key returns a compact comparable key for use in maps.
func (s Sigma) Key() string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,%d,%d;", v.X, v.Y, v.Z)
	}
	return b.String()
}

// Path reconstructs the unique path with σ = s starting at offset
// origin.
func (s Sigma) Path(origin geom.IVec3) Path {
	p := make(Path, len(s)+1)
	p[0] = origin
	for i, d := range s {
		p[i+1] = p[i].Add(d)
	}
	return p
}

// IsNeighborSteps reports whether every step lies in {-1,0,1}³, i.e.
// the path moves only between nearest-neighbor (face-, edge-, or
// corner-sharing) cells. All paths relevant to range-limited n-tuple
// search with cell size ≥ cutoff satisfy this.
func (s Sigma) IsNeighborSteps() bool {
	for _, d := range s {
		if d.X < -1 || d.X > 1 || d.Y < -1 || d.Y > 1 || d.Z < -1 || d.Z > 1 {
			return false
		}
	}
	return true
}
