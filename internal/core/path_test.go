package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sctuple/internal/geom"
)

// randomPath draws a random nearest-neighbor path of length n starting
// at a random offset in [-3,3]³.
func randomPath(rng *rand.Rand, n int) Path {
	p := make(Path, n)
	p[0] = geom.IV(rng.Intn(7)-3, rng.Intn(7)-3, rng.Intn(7)-3)
	for i := 1; i < n; i++ {
		d := geom.IV(rng.Intn(3)-1, rng.Intn(3)-1, rng.Intn(3)-1)
		p[i] = p[i-1].Add(d)
	}
	return p
}

func TestPathInverseIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 50; trial++ {
			p := randomPath(rng, n)
			if !p.Inverse().Inverse().Equal(p) {
				t.Fatalf("n=%d: (p⁻¹)⁻¹ != p for %v", n, p)
			}
		}
	}
}

func TestPathShiftComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := randomPath(rng, 4)
		a := geom.IV(rng.Intn(5)-2, rng.Intn(5)-2, rng.Intn(5)-2)
		b := geom.IV(rng.Intn(5)-2, rng.Intn(5)-2, rng.Intn(5)-2)
		if !p.Shift(a).Shift(b).Equal(p.Shift(a.Add(b))) {
			t.Fatalf("shift composition failed for %v, %v, %v", p, a, b)
		}
	}
}

func TestSigmaShiftInvariance(t *testing.T) {
	// σ(p+Δ) = σ(p): the property underlying Theorem 1.
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 50; trial++ {
			p := randomPath(rng, n)
			d := geom.IV(rng.Intn(9)-4, rng.Intn(9)-4, rng.Intn(9)-4)
			if !p.Sigma().Equal(p.Shift(d).Sigma()) {
				t.Fatalf("σ not shift invariant: p=%v Δ=%v", p, d)
			}
		}
	}
}

func TestSigmaReverseMatchesInversePath(t *testing.T) {
	// s.Reverse() must equal σ(p⁻¹), the identity used by R-COLLAPSE.
	rng := rand.New(rand.NewSource(4))
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 50; trial++ {
			p := randomPath(rng, n)
			if !p.Sigma().Reverse().Equal(p.Inverse().Sigma()) {
				t.Fatalf("σ(p).Reverse() != σ(p⁻¹) for %v", p)
			}
		}
	}
}

func TestSigmaPathRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 50; trial++ {
			p := randomPath(rng, n)
			back := p.Sigma().Path(p[0])
			if !back.Equal(p) {
				t.Fatalf("σ→Path round trip failed: %v became %v", p, back)
			}
		}
	}
}

func TestReflectiveTwinLemma6(t *testing.T) {
	// Lemma 6: RPT(p) = p⁻¹ - v(n-1) starts at 0 (when p does) and has
	// σ(RPT(p)) = σ(p⁻¹). Applying RPT twice returns the original path.
	for n := 2; n <= 4; n++ {
		fs := GenerateFS(n)
		for _, p := range fs.Paths() {
			tw := p.ReflectiveTwin()
			if tw[0] != (geom.IVec3{}) {
				t.Fatalf("n=%d: twin of %v does not start at origin: %v", n, p, tw)
			}
			if !tw.Sigma().Equal(p.Inverse().Sigma()) {
				t.Fatalf("n=%d: σ(RPT(p)) != σ(p⁻¹) for %v", n, p)
			}
			if !tw.ReflectiveTwin().Equal(p) {
				t.Fatalf("n=%d: RPT(RPT(p)) != p for %v", n, p)
			}
		}
	}
}

func TestReflectiveTwinInFullShell(t *testing.T) {
	// Lemma 6 also asserts RPT(p) ∈ Ψ(n)FS for every p ∈ Ψ(n)FS.
	for n := 2; n <= 4; n++ {
		fs := GenerateFS(n)
		members := make(map[string]bool, fs.Len())
		for _, p := range fs.Paths() {
			members[p.Key()] = true
		}
		for _, p := range fs.Paths() {
			if !members[p.ReflectiveTwin().Key()] {
				t.Fatalf("n=%d: twin of %v not in full shell", n, p)
			}
		}
	}
}

func TestSelfReflectionCorollary1(t *testing.T) {
	// Corollary 1: p = p⁻¹ ⇒ RPT(p) = p.
	for n := 2; n <= 4; n++ {
		for _, p := range GenerateFS(n).Paths() {
			if p.Inverse().Equal(p) && !p.ReflectiveTwin().Equal(p) {
				t.Fatalf("n=%d: self-inverse path %v has RPT %v", n, p, p.ReflectiveTwin())
			}
		}
	}
}

func TestCanonicalIdentifiesEquivalentPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := randomPath(rng, n)
		d := geom.IV(rng.Intn(9)-4, rng.Intn(9)-4, rng.Intn(9)-4)
		variants := []Path{p, p.Shift(d), p.Inverse(), p.Inverse().Shift(d)}
		want := p.Canonical().Key()
		for _, v := range variants {
			if v.Canonical().Key() != want {
				t.Fatalf("canonical differs: %v vs %v", p, v)
			}
		}
	}
}

func TestCanonicalSeparatesInequivalentPaths(t *testing.T) {
	// Distinct σ classes (up to reflection) must canonicalize apart.
	p := NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0), geom.IV(1, 1, 0))
	q := NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0), geom.IV(2, 0, 0))
	if p.Canonical().Key() == q.Canonical().Key() {
		t.Fatalf("inequivalent paths canonicalized together: %v, %v", p, q)
	}
}

func TestPathBoundingBox(t *testing.T) {
	p := NewPath(geom.IV(0, 0, 0), geom.IV(1, -1, 0), geom.IV(2, 0, 1))
	lo, hi := p.BoundingBox()
	if lo != geom.IV(0, -1, 0) || hi != geom.IV(2, 0, 1) {
		t.Fatalf("bounding box = %v..%v", lo, hi)
	}
}

func TestSigmaNeighborSteps(t *testing.T) {
	for _, p := range GenerateFS(3).Paths() {
		if !p.Sigma().IsNeighborSteps() {
			t.Fatalf("full-shell path %v has non-neighbor step", p)
		}
	}
	far := NewPath(geom.IV(0, 0, 0), geom.IV(2, 0, 0))
	if far.Sigma().IsNeighborSteps() {
		t.Fatal("step of size 2 misreported as neighbor step")
	}
}

func TestIVec3QuickProperties(t *testing.T) {
	addComm := func(ax, ay, az, bx, by, bz int8) bool {
		a := geom.IV(int(ax), int(ay), int(az))
		b := geom.IV(int(bx), int(by), int(bz))
		return a.Add(b) == b.Add(a) && a.Add(b).Sub(b) == a
	}
	if err := quick.Check(addComm, nil); err != nil {
		t.Error(err)
	}
	minMax := func(ax, ay, az, bx, by, bz int8) bool {
		a := geom.IV(int(ax), int(ay), int(az))
		b := geom.IV(int(bx), int(by), int(bz))
		lo, hi := a.Min(b), a.Max(b)
		return lo.X <= hi.X && lo.Y <= hi.Y && lo.Z <= hi.Z
	}
	if err := quick.Check(minMax, nil); err != nil {
		t.Error(err)
	}
}

func TestPathKeyUniqueOnFullShell(t *testing.T) {
	for n := 2; n <= 4; n++ {
		fs := GenerateFS(n)
		keys := make(map[string]bool, fs.Len())
		for _, p := range fs.Paths() {
			k := p.Key()
			if keys[k] {
				t.Fatalf("n=%d: duplicate key %q", n, k)
			}
			keys[k] = true
		}
	}
}

func TestPathStringAndClone(t *testing.T) {
	p := NewPath(geom.IV(0, 0, 0), geom.IV(1, 1, 1))
	if got, want := p.String(), "(0,0,0)->(1,1,1)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	q := p.Clone()
	q[0] = geom.IV(9, 9, 9)
	if p[0] == q[0] {
		t.Fatal("Clone shares backing storage")
	}
	if !reflect.DeepEqual(p, NewPath(geom.IV(0, 0, 0), geom.IV(1, 1, 1))) {
		t.Fatal("original path mutated")
	}
}
