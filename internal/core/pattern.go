package core

import (
	"fmt"
	"sort"
	"strings"

	"sctuple/internal/geom"
)

// Pattern is a computation pattern Ψ(n): a set of computation paths,
// all of the same tuple length n. Applied to a cell domain via UCP
// (package tuple), a pattern generates a force set of candidate
// n-tuples.
type Pattern struct {
	n     int
	paths []Path
}

// NewPattern builds a pattern from the given paths. All paths must
// share the same tuple length; duplicates (identical offset sequences)
// are rejected. It panics on malformed input, since patterns are
// constructed from code, not data.
func NewPattern(n int, paths ...Path) *Pattern {
	if n < 1 {
		panic(fmt.Sprintf("core: pattern tuple length %d < 1", n))
	}
	ps := &Pattern{n: n}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if p.N() != n {
			panic(fmt.Sprintf("core: path %v has length %d, pattern wants %d", p, p.N(), n))
		}
		k := p.Key()
		if seen[k] {
			panic(fmt.Sprintf("core: duplicate path %v in pattern", p))
		}
		seen[k] = true
		ps.paths = append(ps.paths, p.Clone())
	}
	return ps
}

// N returns the tuple length n of the pattern.
func (ps *Pattern) N() int { return ps.n }

// Len returns |Ψ|, the number of paths. By Lemma 5 the n-tuple search
// cost of UCP is proportional to |Ψ| for uniform atom distributions.
func (ps *Pattern) Len() int { return len(ps.paths) }

// Paths returns the paths of the pattern. The returned slice is shared;
// callers must not modify it.
func (ps *Pattern) Paths() []Path { return ps.paths }

// Path returns path i.
func (ps *Pattern) Path(i int) Path { return ps.paths[i] }

// Clone returns a deep copy of the pattern.
func (ps *Pattern) Clone() *Pattern {
	q := &Pattern{n: ps.n, paths: make([]Path, len(ps.paths))}
	for i, p := range ps.paths {
		q.paths[i] = p.Clone()
	}
	return q
}

// Sort orders the paths lexicographically in place and returns the
// pattern. Sorting gives patterns a deterministic iteration order,
// which keeps parallel runs reproducible.
func (ps *Pattern) Sort() *Pattern {
	sort.Slice(ps.paths, func(i, j int) bool { return ps.paths[i].less(ps.paths[j]) })
	return ps
}

// Equal reports whether two patterns contain exactly the same paths,
// irrespective of order.
func (ps *Pattern) Equal(qs *Pattern) bool {
	if ps.n != qs.n || len(ps.paths) != len(qs.paths) {
		return false
	}
	set := make(map[string]bool, len(ps.paths))
	for _, p := range ps.paths {
		set[p.Key()] = true
	}
	for _, q := range qs.paths {
		if !set[q.Key()] {
			return false
		}
	}
	return true
}

// EquivalentTo reports whether two patterns generate the same force
// set over any periodic cell domain: their multisets of canonical
// (shift- and reflection-normalized) paths must match.
func (ps *Pattern) EquivalentTo(qs *Pattern) bool {
	if ps.n != qs.n || len(ps.paths) != len(qs.paths) {
		return false
	}
	count := make(map[string]int, len(ps.paths))
	for _, p := range ps.paths {
		count[p.Canonical().Key()]++
	}
	for _, q := range qs.paths {
		k := q.Canonical().Key()
		count[k]--
		if count[k] < 0 {
			return false
		}
	}
	return true
}

// Coverage returns the cell coverage Π(Ψ) relative to the center cell:
// the set of distinct offsets visited by any path (paper §3.1.3,
// specialized to a single cell). The result is sorted.
func (ps *Pattern) Coverage() []geom.IVec3 {
	set := make(map[geom.IVec3]bool)
	for _, p := range ps.paths {
		for _, v := range p {
			set[v] = true
		}
	}
	out := make([]geom.IVec3, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Footprint returns the cell footprint |Π(Ψ)|: the number of distinct
// cells (including the center cell when visited) needed to evaluate
// the pattern at one cell. Smaller footprints mean smaller parallel
// import volumes.
func (ps *Pattern) Footprint() int { return len(ps.Coverage()) }

// BoundingBox returns the component-wise minimum and maximum offsets
// over all paths of the pattern.
func (ps *Pattern) BoundingBox() (lo, hi geom.IVec3) {
	first := true
	for _, p := range ps.paths {
		plo, phi := p.BoundingBox()
		if first {
			lo, hi = plo, phi
			first = false
			continue
		}
		lo = lo.Min(plo)
		hi = hi.Max(phi)
	}
	return lo, hi
}

// StepRadius returns the largest per-axis step magnitude over all
// consecutive offsets of all paths: 1 for nearest-neighbor patterns
// (GenerateFS), k for radius-k midpoint patterns (GenerateFSRadius).
// An enumeration with link cutoff r is valid on a lattice with cell
// side ≥ r / StepRadius.
func (ps *Pattern) StepRadius() int {
	r := 0
	for _, p := range ps.paths {
		for _, d := range p.Sigma() {
			for c := 0; c < 3; c++ {
				if v := d.Comp(c); v > r {
					r = v
				} else if -v > r {
					r = -v
				}
			}
		}
	}
	return r
}

// InFirstOctant reports whether every offset of every path has
// non-negative components, the invariant established by OCShift.
func (ps *Pattern) InFirstOctant() bool {
	lo, _ := ps.BoundingBox()
	return lo.X >= 0 && lo.Y >= 0 && lo.Z >= 0
}

// ImportVolume returns Vω(Ω, Ψ) (Eq. 14): the number of cells outside
// a cubic cell domain of side l that are covered when the pattern is
// applied to every cell of the domain. For the SC pattern this equals
// (l+n-1)³ − l³ (Eq. 33). The computation is exact set arithmetic, so
// it also serves patterns with irregular coverage (e.g. half shell).
func (ps *Pattern) ImportVolume(l int) int {
	return ps.ImportVolumeDims(geom.IV(l, l, l))
}

// ImportVolumeDims is ImportVolume generalized to a rectangular domain
// of the given cell dimensions.
func (ps *Pattern) ImportVolumeDims(dims geom.IVec3) int {
	cov := ps.Coverage()
	outside := make(map[geom.IVec3]bool)
	for qx := 0; qx < dims.X; qx++ {
		for qy := 0; qy < dims.Y; qy++ {
			for qz := 0; qz < dims.Z; qz++ {
				q := geom.IV(qx, qy, qz)
				for _, v := range cov {
					t := q.Add(v)
					if !t.InBox(dims) {
						outside[t] = true
					}
				}
			}
		}
	}
	return len(outside)
}

// ImportRegion returns the sorted set of cell offsets outside a
// rectangular domain of the given dimensions that the pattern requires,
// with offsets expressed in the domain's own coordinates (so components
// may be negative or ≥ dims). parmd uses this to build halo exchange
// plans.
func (ps *Pattern) ImportRegion(dims geom.IVec3) []geom.IVec3 {
	cov := ps.Coverage()
	outside := make(map[geom.IVec3]bool)
	for qx := 0; qx < dims.X; qx++ {
		for qy := 0; qy < dims.Y; qy++ {
			for qz := 0; qz < dims.Z; qz++ {
				q := geom.IV(qx, qy, qz)
				for _, v := range cov {
					t := q.Add(v)
					if !t.InBox(dims) {
						outside[t] = true
					}
				}
			}
		}
	}
	out := make([]geom.IVec3, 0, len(outside))
	for v := range outside {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SelfReflectiveCount returns the number of self-reflective
// (non-collapsible) paths in the pattern (Corollary 1, Eq. 27).
func (ps *Pattern) SelfReflectiveCount() int {
	c := 0
	for _, p := range ps.paths {
		if p.IsSelfReflective() {
			c++
		}
	}
	return c
}

// String summarizes the pattern for diagnostics.
func (ps *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pattern(n=%d, |Ψ|=%d, footprint=%d)", ps.n, ps.Len(), ps.Footprint())
	return b.String()
}
