package core

import (
	"testing"

	"sctuple/internal/geom"
)

func TestFSPathCountEq25(t *testing.T) {
	want := map[int]int{2: 27, 3: 729, 4: 19683}
	for n, w := range want {
		if got := GenerateFS(n).Len(); got != w {
			t.Errorf("|Ψ(%d)FS| = %d, want %d", n, got, w)
		}
		if got := FSPathCount(n); got != w {
			t.Errorf("FSPathCount(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestSelfReflectiveCountEq27(t *testing.T) {
	// Eq. 27 (with the corrected exponent ⌈n/2⌉-1): counts of
	// non-collapsible paths in the full shell.
	want := map[int]int{2: 1, 3: 27, 4: 27, 5: 729}
	for n, w := range want {
		if got := SelfReflectivePathCount(n); got != w {
			t.Errorf("SelfReflectivePathCount(%d) = %d, want %d", n, got, w)
		}
		if n <= 4 {
			if got := GenerateFS(n).SelfReflectiveCount(); got != w {
				t.Errorf("measured self-reflective count n=%d: %d, want %d", n, got, w)
			}
		}
	}
}

func TestSCPathCountEq29(t *testing.T) {
	want := map[int]int{2: 14, 3: 378, 4: 9855}
	for n, w := range want {
		if got := SC(n).Len(); got != w {
			t.Errorf("|Ψ(%d)SC| = %d, want %d", n, got, w)
		}
		if got := SCPathCount(n); got != w {
			t.Errorf("SCPathCount(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestSCIsComplete(t *testing.T) {
	// Theorem 2: Ψ(n)SC is n-complete.
	for n := 2; n <= 4; n++ {
		sc := SC(n)
		if !sc.IsComplete() {
			t.Errorf("SC(%d) incomplete; missing %d σ classes", n, len(sc.MissingSigmaClasses()))
		}
	}
}

func TestFSIsComplete(t *testing.T) {
	// Lemma 1: Ψ(n)FS is n-complete.
	for n := 2; n <= 4; n++ {
		if !GenerateFS(n).IsComplete() {
			t.Errorf("FS(%d) incomplete", n)
		}
	}
}

func TestSCHasNoRedundancy(t *testing.T) {
	// After R-COLLAPSE no two paths cover the same σ class.
	for n := 2; n <= 4; n++ {
		if got := SC(n).RedundancyCount(); got != 0 {
			t.Errorf("SC(%d) redundancy = %d, want 0", n, got)
		}
	}
}

func TestFSRedundancyIsCollapsibleHalf(t *testing.T) {
	// The full shell covers each collapsible σ class twice:
	// redundancy = ½(27^(n-1) − 27^(⌈n/2⌉-1)).
	for n := 2; n <= 4; n++ {
		want := (FSPathCount(n) - SelfReflectivePathCount(n)) / 2
		if got := GenerateFS(n).RedundancyCount(); got != want {
			t.Errorf("FS(%d) redundancy = %d, want %d", n, got, want)
		}
	}
}

func TestOCShiftFirstOctantCoverage(t *testing.T) {
	// After OC-SHIFT the coverage lies inside [0, n-1]³ (§4.2).
	for n := 2; n <= 4; n++ {
		oc := OCShift(GenerateFS(n))
		if !oc.InFirstOctant() {
			t.Errorf("OCShift(FS(%d)) not in first octant", n)
		}
		_, hi := oc.BoundingBox()
		limit := n - 1
		if hi.X > limit || hi.Y > limit || hi.Z > limit {
			t.Errorf("OCShift(FS(%d)) coverage exceeds [0,%d]³: hi=%v", n, limit, hi)
		}
	}
}

func TestOCShiftPreservesSigma(t *testing.T) {
	// Theorem 1 ⇒ OC-SHIFT preserves each path's σ, hence the force set.
	fs := GenerateFS(3)
	oc := OCShift(fs)
	if oc.Len() != fs.Len() {
		t.Fatalf("OCShift changed path count: %d -> %d", fs.Len(), oc.Len())
	}
	for i := range fs.Paths() {
		if !fs.Path(i).Sigma().Equal(oc.Path(i).Sigma()) {
			t.Fatalf("OCShift altered σ of path %d", i)
		}
	}
}

func TestOCShiftIdempotent(t *testing.T) {
	oc := OCShift(GenerateFS(3))
	if !OCShift(oc).Equal(oc) {
		t.Error("OCShift not idempotent")
	}
}

func TestRCollapsePreservesSigmaClasses(t *testing.T) {
	// Lemma 4: collapsing keeps the covered σ classes (up to
	// reflection) identical.
	for n := 2; n <= 4; n++ {
		fs := GenerateFS(n)
		rc := RCollapse(fs)
		classes := func(ps *Pattern) map[string]bool {
			m := make(map[string]bool)
			for _, p := range ps.Paths() {
				m[canonicalSigmaKey(p.Sigma())] = true
			}
			return m
		}
		a, b := classes(fs), classes(rc)
		if len(a) != len(b) {
			t.Fatalf("n=%d: σ classes changed: %d -> %d", n, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("n=%d: σ class lost in collapse", n)
			}
		}
	}
}

func TestRCollapseIdempotent(t *testing.T) {
	rc := RCollapse(GenerateFS(3))
	if RCollapse(rc).Len() != rc.Len() {
		t.Error("RCollapse not idempotent")
	}
}

func TestRCollapseKeepsSelfReflectivePaths(t *testing.T) {
	for n := 2; n <= 4; n++ {
		rc := RCollapse(GenerateFS(n))
		if got, want := rc.SelfReflectiveCount(), SelfReflectivePathCount(n); got != want {
			t.Errorf("n=%d: %d self-reflective paths survived, want %d", n, got, want)
		}
	}
}

func TestHalfShellPair(t *testing.T) {
	hs := HalfShellPair()
	if hs.Len() != 14 {
		t.Fatalf("|ΨHS| = %d, want 14", hs.Len())
	}
	if !hs.IsComplete() {
		t.Fatal("half shell not 2-complete")
	}
	if hs.RedundancyCount() != 0 {
		t.Fatal("half shell has redundant paths")
	}
}

func TestEighthShellPair(t *testing.T) {
	es := EighthShellPair()
	if es.Len() != 14 {
		t.Fatalf("|ΨES| = %d, want 14", es.Len())
	}
	if !es.IsComplete() {
		t.Fatal("eighth shell not 2-complete")
	}
	if got := es.Footprint(); got != 8 {
		t.Fatalf("eighth-shell footprint = %d, want 8 (7 imported + center)", got)
	}
	// Coverage must be exactly the first octant {0,1}³.
	cov := es.Coverage()
	want := FirstOctantOffsets()
	if len(cov) != len(want) {
		t.Fatalf("eighth-shell coverage size %d, want %d", len(cov), len(want))
	}
	for i := range cov {
		if cov[i] != want[i] {
			t.Fatalf("coverage[%d] = %v, want %v", i, cov[i], want[i])
		}
	}
}

func TestSCEqualsEighthShellForPairs(t *testing.T) {
	// §4.3.3: ES = OC-SHIFT(HS) = Ψ(2)SC.
	if !SC(2).EquivalentTo(EighthShellPair()) {
		t.Fatal("SC(2) not equivalent to eighth shell")
	}
}

func TestShellEnumeration(t *testing.T) {
	cases := []struct {
		s         Shell
		name      string
		paths     int
		footprint int
	}{
		{ShellFull, "full-shell", 27, 27},
		{ShellHalf, "half-shell", 14, 14},
		{ShellEighth, "eighth-shell", 14, 8},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("Shell %d name %q, want %q", c.s, c.s.String(), c.name)
		}
		p := c.s.Pattern()
		if p.Len() != c.paths {
			t.Errorf("%s: %d paths, want %d", c.name, p.Len(), c.paths)
		}
		if p.Footprint() != c.footprint {
			t.Errorf("%s: footprint %d, want %d", c.name, p.Footprint(), c.footprint)
		}
		if !p.IsComplete() {
			t.Errorf("%s: not 2-complete", c.name)
		}
	}
}

func TestSCFootprintWithinOctantBound(t *testing.T) {
	for n := 2; n <= 4; n++ {
		sc := SC(n)
		if got, bound := sc.Footprint(), n*n*n; got > bound {
			t.Errorf("SC(%d) footprint %d exceeds n³ = %d", n, got, bound)
		}
	}
}

func TestSCImportVolumeEq33(t *testing.T) {
	// The exact set-arithmetic import volume of the SC pattern must
	// match (l+n-1)³ − l³ when the coverage fills [0, n-1]³.
	for n := 2; n <= 3; n++ {
		sc := SC(n)
		for _, l := range []int{2, 3, 5, 8} {
			got := sc.ImportVolume(l)
			want := SCImportVolume(n, l)
			if got > want {
				t.Errorf("SC(%d) import volume l=%d: %d exceeds Eq.33 bound %d", n, l, got, want)
			}
			// The SC coverage fills the whole octant cube for n ≤ 3,
			// so equality holds.
			if got != want {
				t.Errorf("SC(%d) import volume l=%d: %d, want %d", n, l, got, want)
			}
		}
	}
}

func TestFSImportVolumeFormula(t *testing.T) {
	for n := 2; n <= 3; n++ {
		fs := GenerateFS(n)
		for _, l := range []int{2, 4, 6} {
			got := fs.ImportVolumeDims(geom.IV(l, l, l))
			want := FSImportVolume(n, l)
			if got != want {
				t.Errorf("FS(%d) import volume l=%d: %d, want %d", n, l, got, want)
			}
		}
	}
}

func TestImportVolumeOrderingSCSmallest(t *testing.T) {
	// SC must import no more than HS, which imports less than FS.
	for _, l := range []int{2, 4, 8} {
		fs := FullShellPair().ImportVolume(l)
		hs := HalfShellPair().ImportVolume(l)
		es := EighthShellPair().ImportVolume(l)
		if !(es < hs && hs < fs) {
			t.Errorf("l=%d: import volumes ES=%d HS=%d FS=%d not strictly ordered", l, es, hs, fs)
		}
		if want := SCImportVolume(2, l); es != want {
			t.Errorf("l=%d: ES import %d, want %d", l, es, want)
		}
	}
}

func TestSearchCostRatioApproachesTwo(t *testing.T) {
	// The ratio is flat across each (even, odd) pair of n — e.g. 27/14
	// for both n = 2 and n = 3 — so it is non-decreasing, approaching 2.
	prev := 0.0
	for n := 2; n <= 6; n++ {
		r := SearchCostRatioFSOverSC(n)
		if r < prev {
			t.Errorf("ratio decreasing at n=%d: %g < %g", n, r, prev)
		}
		if r >= 2 {
			t.Errorf("ratio exceeded 2 at n=%d: %g", n, r)
		}
		prev = r
	}
	if r := SearchCostRatioFSOverSC(6); r < 1.99 {
		t.Errorf("ratio at n=6 = %g, expected ≈ 2", r)
	}
}

func TestPatternEquivalenceUnderShift(t *testing.T) {
	// A pattern and its per-path shifted version are equivalent.
	fs := GenerateFS(3)
	shifted := make([]Path, fs.Len())
	for i, p := range fs.Paths() {
		shifted[i] = p.Shift(geom.IV(i%3-1, (i/3)%3-1, 1))
	}
	if !fs.EquivalentTo(NewPattern(3, shifted...)) {
		t.Fatal("pattern not equivalent to shifted copy")
	}
}

func TestNewPatternRejectsMixedLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mixed path lengths")
		}
	}()
	NewPattern(2,
		NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0)),
		NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0), geom.IV(1, 1, 0)))
}

func TestNewPatternRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate paths")
		}
	}()
	p := NewPath(geom.IV(0, 0, 0), geom.IV(1, 0, 0))
	NewPattern(2, p, p.Clone())
}

func TestCoversChain(t *testing.T) {
	es := EighthShellPair()
	for _, d := range NeighborOffsets() {
		if !es.CoversChain([]geom.IVec3{d}) {
			t.Errorf("eighth shell misses pair step %v", d)
		}
	}
	if es.CoversChain([]geom.IVec3{geom.IV(2, 0, 0)}) {
		t.Error("eighth shell claims to cover non-neighbor step")
	}
}

func TestHSImportVolumeExact(t *testing.T) {
	// Cell-based half-shell under the owner-compute rule imports
	// exactly 5l² + 7l + 1 cells for a cubic domain of side l — five
	// of the six halo faces (the corner offsets of the kept half, e.g.
	// (+1,-1,0), still reach cells on four negative-side planes; only
	// one face is fully avoided). The ratio to FS approaches 5/6, not
	// the folklore ½: genuinely halving the import volume requires
	// relaxing owner-compute, which is exactly what OC-SHIFT (the
	// eighth shell, and SC in general) does. The result is independent
	// of which twin of each pair R-COLLAPSE keeps.
	for _, l := range []int{2, 4, 8, 16} {
		got := HSImportVolume(l)
		want := 5*l*l + 7*l + 1
		if got != want {
			t.Errorf("l=%d: HS import volume %d, want %d", l, got, want)
		}
	}
	// And the eighth shell truly halves it (and better):
	for _, l := range []int{4, 8, 16} {
		es := EighthShellPair().ImportVolume(l)
		fs := FSImportVolume(2, l)
		if 2*es > fs {
			t.Errorf("l=%d: ES import %d not ≤ half of FS %d", l, es, fs)
		}
	}
}

func TestRCollapseKeepsUpperTwin(t *testing.T) {
	// The canonical keep rule must retain, for each collapsible pair
	// path, the twin whose step is lexicographically positive — e.g.
	// (0,0)->(1,0,0) survives and (0,0)->(-1,0,0) does not.
	hs := HalfShellPair()
	has := func(d geom.IVec3) bool {
		for _, p := range hs.Paths() {
			if p[1].Sub(p[0]) == d {
				return true
			}
		}
		return false
	}
	if !has(geom.IV(1, 0, 0)) || has(geom.IV(-1, 0, 0)) {
		t.Error("R-COLLAPSE did not keep the upper twin of (±1,0,0)")
	}
	if !has(geom.IV(0, 1, 0)) || has(geom.IV(0, -1, 0)) {
		t.Error("R-COLLAPSE did not keep the upper twin of (0,±1,0)")
	}
	if !has(geom.IV(1, -1, 0)) || has(geom.IV(-1, 1, 0)) {
		t.Error("R-COLLAPSE did not keep the upper twin of (±1,∓1,0)")
	}
}

func TestRCollapseOrderIndependent(t *testing.T) {
	fs := GenerateFS(3)
	rev := make([]Path, fs.Len())
	for i, p := range fs.Paths() {
		rev[fs.Len()-1-i] = p
	}
	a := RCollapse(fs).Sort()
	b := RCollapse(NewPattern(3, rev...)).Sort()
	if !a.Equal(b) {
		t.Error("RCollapse result depends on path order")
	}
}
