package core

import (
	"fmt"

	"sctuple/internal/geom"
)

// neighborOffsets is the 27-element stencil {-1,0,1}³ in lexicographic
// order: the offsets of a cell's nearest neighbors (including itself).
var neighborOffsets = func() []geom.IVec3 {
	out := make([]geom.IVec3, 0, 27)
	for x := -1; x <= 1; x++ {
		for y := -1; y <= 1; y++ {
			for z := -1; z <= 1; z++ {
				out = append(out, geom.IV(x, y, z))
			}
		}
	}
	return out
}()

// NeighborOffsets returns the 27-element nearest-neighbor stencil
// {-1,0,1}³ in lexicographic order. The returned slice is shared;
// callers must not modify it.
func NeighborOffsets() []geom.IVec3 { return neighborOffsets }

// GenerateFS implements the GENERATE-FS subroutine (paper Table 3):
// it enumerates all computation paths of length n that start at the
// zero offset and step between nearest-neighbor cells, yielding the
// full-shell pattern Ψ(n)FS with |Ψ| = 27^(n-1) paths (Eq. 25).
// By Lemma 1 the result is n-complete. It panics for n < 2.
func GenerateFS(n int) *Pattern {
	if n < 2 {
		panic(fmt.Sprintf("core: GenerateFS needs n ≥ 2, got %d", n))
	}
	count := 1
	for i := 1; i < n; i++ {
		count *= 27
	}
	paths := make([]Path, 0, count)
	cur := make(Path, n)
	cur[0] = geom.IVec3{}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			paths = append(paths, cur.Clone())
			return
		}
		for _, d := range neighborOffsets {
			cur[k] = cur[k-1].Add(d)
			rec(k + 1)
		}
	}
	rec(1)
	return NewPattern(n, paths...)
}

// FullShellPair returns the full-shell pair pattern (§4.3.1):
// all 27 paths (0, d) for d in the nearest-neighbor stencil.
// Equivalent to GenerateFS(2).
func FullShellPair() *Pattern { return GenerateFS(2) }

// HalfShellPair returns the half-shell pair pattern (§4.3.2):
// ΨHS = R-COLLAPSE(Ψ(2)FS), 14 paths. The half-shell method uses
// Newton's third law to halve the full-shell search.
func HalfShellPair() *Pattern { return RCollapse(GenerateFS(2)) }

// EighthShellPair returns the eighth-shell pair pattern (§4.3.3):
// ΨES = OC-SHIFT(ΨHS), 14 paths confined to the first octant {0,1}³.
// The eighth-shell method relaxes the owner-compute rule so a cell
// interacts only with its upper-corner octant, shrinking the cell
// footprint to 8 (7 imported cells plus the cell itself). It equals
// the SC pattern for n = 2.
func EighthShellPair() *Pattern { return OCShift(HalfShellPair()) }
