// Package fixture stores and checks golden bit-exact fixtures: IEEE-754
// bit patterns of forces, positions, and energies captured from a
// reference build and pinned against later refactors. The cell-sorted
// storage refactor is required to keep every engine bit-identical to
// the pre-refactor enumeration order; these fixtures are the evidence.
// Floats are compared as raw bit patterns — not within a tolerance —
// so any change to summation order shows up.
package fixture

import (
	"compress/gzip"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"sctuple/internal/geom"
)

// Update reports whether golden files should be rewritten instead of
// checked (GOLDEN_UPDATE=1 in the environment).
func Update() bool { return os.Getenv("GOLDEN_UPDATE") == "1" }

// Record is one captured run: the initial potential energy, the
// per-step potential energies, and the final forces and positions in
// global atom-ID order.
type Record struct {
	PE       string   `json:"pe"`
	Energies []string `json:"energies,omitempty"`
	Forces   string   `json:"forces"`
	Pos      string   `json:"pos"`
}

// Set maps a run label (engine/scheme/topology) to its record.
type Set map[string]Record

// Bits encodes a float64 as its bit pattern, hex.
func Bits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

// PackVec3 encodes a vector array as base64 of the little-endian
// float64 bit stream (x, y, z per atom).
func PackVec3(vs []geom.Vec3) string {
	buf := make([]byte, 0, 24*len(vs))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Y))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Z))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func unpackWords(s string) ([]uint64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("fixture: %d bytes is not a float64 stream", len(buf))
	}
	out := make([]uint64, len(buf)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out, nil
}

// diffPacked locates the first differing float64 word of two packed
// vector arrays for a readable failure message.
func diffPacked(what, want, got string) error {
	if want == got {
		return nil
	}
	ww, err := unpackWords(want)
	if err != nil {
		return fmt.Errorf("fixture: bad golden %s: %v", what, err)
	}
	gw, err := unpackWords(got)
	if err != nil {
		return fmt.Errorf("fixture: bad computed %s: %v", what, err)
	}
	if len(ww) != len(gw) {
		return fmt.Errorf("fixture: %s length %d words, golden %d", what, len(gw), len(ww))
	}
	for i := range ww {
		if ww[i] != gw[i] {
			return fmt.Errorf("fixture: %s atom %d component %d: %.17g (%016x), golden %.17g (%016x)",
				what, i/3, i%3, math.Float64frombits(gw[i]), gw[i], math.Float64frombits(ww[i]), ww[i])
		}
	}
	return fmt.Errorf("fixture: %s differs from golden (encoding mismatch)", what)
}

// Diff compares a computed record against the golden one and returns a
// description of the first mismatch, or nil if bit-identical.
func Diff(want, got Record) error {
	if want.PE != got.PE {
		return fmt.Errorf("fixture: initial PE bits %s, golden %s", got.PE, want.PE)
	}
	if len(want.Energies) != len(got.Energies) {
		return fmt.Errorf("fixture: %d energy samples, golden %d", len(got.Energies), len(want.Energies))
	}
	for i := range want.Energies {
		if want.Energies[i] != got.Energies[i] {
			return fmt.Errorf("fixture: step %d PE bits %s, golden %s", i, got.Energies[i], want.Energies[i])
		}
	}
	if err := diffPacked("force", want.Forces, got.Forces); err != nil {
		return err
	}
	return diffPacked("position", want.Pos, got.Pos)
}

// Save writes the set as (gzipped, when the path ends in .gz) indented
// JSON, creating parent directories.
func Save(path string, s Set) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if !strings.HasSuffix(path, ".gz") {
		_, err = f.Write(data)
		return err
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(data); err != nil {
		return err
	}
	return zw.Close()
}

// Load reads a set written by Save.
func Load(path string) (Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var dec *json.Decoder
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		dec = json.NewDecoder(zr)
	} else {
		dec = json.NewDecoder(f)
	}
	var s Set
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}
