package geom

import (
	"fmt"
	"math"
)

// Box is an orthorhombic simulation volume with periodic boundary
// conditions in all three Cartesian directions, as assumed throughout
// the paper (§3.1.1). The box spans [0, Lx) × [0, Ly) × [0, Lz).
type Box struct {
	L Vec3 // edge lengths, all > 0
}

// NewBox returns a periodic box with the given edge lengths.
// It panics if any length is not strictly positive and finite.
func NewBox(lx, ly, lz float64) Box {
	for _, l := range [3]float64{lx, ly, lz} {
		if !(l > 0) || math.IsInf(l, 0) {
			panic(fmt.Sprintf("geom: invalid box length %g", l))
		}
	}
	return Box{L: Vec3{lx, ly, lz}}
}

// NewCubicBox returns a periodic cube with edge length l.
func NewCubicBox(l float64) Box { return NewBox(l, l, l) }

// Volume returns the box volume Lx·Ly·Lz.
func (b Box) Volume() float64 { return b.L.X * b.L.Y * b.L.Z }

// Wrap maps a position into the primary image [0, L) in each direction.
func (b Box) Wrap(r Vec3) Vec3 {
	return Vec3{
		wrap1(r.X, b.L.X),
		wrap1(r.Y, b.L.Y),
		wrap1(r.Z, b.L.Z),
	}
}

func wrap1(x, l float64) float64 {
	x -= l * math.Floor(x/l)
	// Guard against x == l from floating-point rounding when x was a
	// tiny negative number: Floor(-eps/l) = -1 gives x = l - eps → ok,
	// but x = -1e-17 + l can round to exactly l.
	if x >= l {
		x -= l
	}
	if x < 0 {
		x = 0
	}
	return x
}

// MinImage returns the minimum-image displacement vector equivalent to
// d: each component is shifted by an integer multiple of the box length
// into (-L/2, L/2].
func (b Box) MinImage(d Vec3) Vec3 {
	return Vec3{
		minImage1(d.X, b.L.X),
		minImage1(d.Y, b.L.Y),
		minImage1(d.Z, b.L.Z),
	}
}

func minImage1(x, l float64) float64 {
	x -= l * math.Round(x/l)
	return x
}

// Displacement returns the minimum-image vector from a to b,
// i.e. the shortest periodic image of b - a.
func (b Box) Displacement(from, to Vec3) Vec3 {
	return b.MinImage(to.Sub(from))
}

// Distance returns the minimum-image distance between two positions.
func (b Box) Distance(p, q Vec3) float64 {
	return b.Displacement(p, q).Norm()
}

// Distance2 returns the squared minimum-image distance between two
// positions. Prefer this in cutoff tests to avoid the square root.
func (b Box) Distance2(p, q Vec3) float64 {
	return b.Displacement(p, q).Norm2()
}

// Contains reports whether r lies in the primary image.
func (b Box) Contains(r Vec3) bool {
	return r.X >= 0 && r.X < b.L.X &&
		r.Y >= 0 && r.Y < b.L.Y &&
		r.Z >= 0 && r.Z < b.L.Z
}

// String formats the box for diagnostics.
func (b Box) String() string {
	return fmt.Sprintf("Box[%g × %g × %g]", b.L.X, b.L.Y, b.L.Z)
}
