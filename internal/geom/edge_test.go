package geom

import (
	"strings"
	"testing"
)

func TestStrings(t *testing.T) {
	if s := V(1, 2, 3).String(); !strings.Contains(s, "1") || !strings.Contains(s, "3") {
		t.Errorf("Vec3 string %q", s)
	}
	if s := IV(-1, 0, 7).String(); s != "(-1, 0, 7)" {
		t.Errorf("IVec3 string %q", s)
	}
	if s := NewBox(1, 2, 3).String(); !strings.Contains(s, "Box") {
		t.Errorf("Box string %q", s)
	}
}

func TestComponentPanics(t *testing.T) {
	cases := []func(){
		func() { V(1, 2, 3).Comp(3) },
		func() { v := V(1, 2, 3); v.SetComp(-1, 0) },
		func() { IV(1, 2, 3).Comp(4) },
		func() { v := IV(1, 2, 3); v.SetComp(3, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestIVecScaleNegVec3(t *testing.T) {
	if got := IV(1, -2, 3).Scale(-2); got != IV(-2, 4, -6) {
		t.Errorf("Scale = %v", got)
	}
	if got := IV(1, -2, 3).Neg(); got != IV(-1, 2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := IV(1, 2, 3).Vec3(); got != V(1, 2, 3) {
		t.Errorf("Vec3 = %v", got)
	}
}

func TestBoxContainsEdges(t *testing.T) {
	b := NewBox(1, 1, 1)
	if !b.Contains(V(0, 0, 0)) {
		t.Error("origin not contained")
	}
	if b.Contains(V(1, 0, 0)) || b.Contains(V(0, -1e-12, 0)) {
		t.Error("boundary semantics wrong: [0, L) expected")
	}
}
