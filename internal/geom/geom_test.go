package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Arithmetic(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); got != V(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*-4+2*5+3*0.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if x.Cross(y) != z || y.Cross(z) != x || z.Cross(x) != y {
		t.Error("right-handed basis cross products wrong")
	}
	// a×b ⊥ a and b.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		b := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		c := a.Cross(b)
		if !almostEqual(c.Dot(a), 0, 1e-9) || !almostEqual(c.Dot(b), 0, 1e-9) {
			t.Fatalf("cross product not orthogonal: %v × %v = %v", a, b, c)
		}
	}
}

func TestVec3NormAndNormalized(t *testing.T) {
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	n := V(0, 0, -2).Normalized()
	if n != V(0, 0, -1) {
		t.Errorf("Normalized = %v", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic normalizing zero vector")
		}
	}()
	Vec3{}.Normalized()
}

func TestVec3Components(t *testing.T) {
	a := V(1, 2, 3)
	for i, want := range []float64{1, 2, 3} {
		if got := a.Comp(i); got != want {
			t.Errorf("Comp(%d) = %v, want %v", i, got, want)
		}
	}
	a.SetComp(1, 9)
	if a != V(1, 9, 3) {
		t.Errorf("SetComp result %v", a)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() || V(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestBoxWrapContains(t *testing.T) {
	b := NewBox(10, 20, 30)
	cases := []struct{ in, want Vec3 }{
		{V(5, 5, 5), V(5, 5, 5)},
		{V(-1, 0, 0), V(9, 0, 0)},
		{V(10, 20, 30), V(0, 0, 0)},
		{V(25, -25, 65), V(5, 15, 5)},
	}
	for _, c := range cases {
		got := b.Wrap(c.in)
		if got.Sub(c.want).Norm() > 1e-12 {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
		if !b.Contains(got) {
			t.Errorf("Wrap(%v) = %v not contained", c.in, got)
		}
	}
}

func TestBoxWrapEdgeCases(t *testing.T) {
	b := NewCubicBox(1)
	// A tiny negative coordinate must not wrap to exactly L.
	got := b.Wrap(V(-1e-18, 0, 0))
	if !b.Contains(got) {
		t.Errorf("Wrap(-eps) = %v escapes box", got)
	}
}

func TestBoxWrapProperty(t *testing.T) {
	b := NewBox(7.5, 12.25, 3.125)
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) ||
			math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		// Keep magnitudes sane so x/l is exact enough.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		z = math.Mod(z, 1e6)
		w := b.Wrap(V(x, y, z))
		return b.Contains(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinImageRange(t *testing.T) {
	b := NewBox(10, 10, 10)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		d := V(rng.Float64()*100-50, rng.Float64()*100-50, rng.Float64()*100-50)
		m := b.MinImage(d)
		for c := 0; c < 3; c++ {
			if m.Comp(c) < -5-1e-9 || m.Comp(c) > 5+1e-9 {
				t.Fatalf("MinImage(%v) = %v outside (-L/2, L/2]", d, m)
			}
		}
		// m differs from d by integer multiples of L.
		diff := d.Sub(m)
		for c := 0; c < 3; c++ {
			k := diff.Comp(c) / 10
			if math.Abs(k-math.Round(k)) > 1e-9 {
				t.Fatalf("MinImage(%v) = %v not lattice-equivalent", d, m)
			}
		}
	}
}

func TestDistanceSymmetryAndTriangle(t *testing.T) {
	b := NewBox(6, 8, 10)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		p := V(rng.Float64()*6, rng.Float64()*8, rng.Float64()*10)
		q := V(rng.Float64()*6, rng.Float64()*8, rng.Float64()*10)
		r := V(rng.Float64()*6, rng.Float64()*8, rng.Float64()*10)
		if !almostEqual(b.Distance(p, q), b.Distance(q, p), 1e-12) {
			t.Fatal("distance not symmetric")
		}
		if b.Distance(p, r) > b.Distance(p, q)+b.Distance(q, r)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
		if !almostEqual(b.Distance2(p, q), b.Distance(p, q)*b.Distance(p, q), 1e-9) {
			t.Fatal("Distance2 inconsistent with Distance")
		}
	}
}

func TestDistanceAcrossBoundary(t *testing.T) {
	b := NewCubicBox(10)
	if d := b.Distance(V(0.5, 5, 5), V(9.5, 5, 5)); !almostEqual(d, 1, 1e-12) {
		t.Errorf("periodic distance = %v, want 1", d)
	}
	disp := b.Displacement(V(9.5, 5, 5), V(0.5, 5, 5))
	if disp.Sub(V(1, 0, 0)).Norm() > 1e-12 {
		t.Errorf("Displacement = %v, want (1,0,0)", disp)
	}
}

func TestNewBoxValidation(t *testing.T) {
	for _, bad := range [][3]float64{{0, 1, 1}, {-1, 1, 1}, {1, math.Inf(1), 1}, {1, 1, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBox(%v) did not panic", bad)
				}
			}()
			NewBox(bad[0], bad[1], bad[2])
		}()
	}
}

func TestBoxVolume(t *testing.T) {
	if got := NewBox(2, 3, 4).Volume(); got != 24 {
		t.Errorf("Volume = %v", got)
	}
}

func TestIVec3InBoxVolume(t *testing.T) {
	dims := IV(3, 4, 5)
	if !IV(0, 0, 0).InBox(dims) || !IV(2, 3, 4).InBox(dims) {
		t.Error("in-box points reported outside")
	}
	if IV(-1, 0, 0).InBox(dims) || IV(3, 0, 0).InBox(dims) {
		t.Error("out-of-box points reported inside")
	}
	if dims.Volume() != 60 {
		t.Error("Volume wrong")
	}
}

func TestIVec3Less(t *testing.T) {
	ordered := []IVec3{IV(-1, 5, 5), IV(0, -1, 9), IV(0, 0, 0), IV(0, 0, 1), IV(1, -9, -9)}
	for i := 0; i < len(ordered)-1; i++ {
		if !ordered[i].Less(ordered[i+1]) {
			t.Errorf("%v not < %v", ordered[i], ordered[i+1])
		}
		if ordered[i+1].Less(ordered[i]) {
			t.Errorf("%v < %v unexpectedly", ordered[i+1], ordered[i])
		}
	}
	if IV(1, 2, 3).Less(IV(1, 2, 3)) {
		t.Error("Less not irreflexive")
	}
}
