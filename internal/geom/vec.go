// Package geom provides the geometric primitives shared by every layer
// of the shift-collapse MD stack: 3-component real and integer vectors,
// an orthorhombic periodic simulation box, and minimum-image distance
// computations.
//
// Real-space vectors (Vec3) carry atomic positions, velocities, and
// forces in units of Å, Å/fs, and eV/Å respectively. Integer vectors
// (IVec3) index cells in the cell lattice and appear throughout the
// computation-pattern algebra of package core.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float64, used for positions,
// velocities, and forces.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s*a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|².
func (a Vec3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Normalized returns a/|a|. It panics if a is the zero vector.
func (a Vec3) Normalized() Vec3 {
	n := a.Norm()
	if n == 0 {
		panic("geom: normalizing zero vector")
	}
	return a.Scale(1 / n)
}

// Comp returns component i (0 = X, 1 = Y, 2 = Z).
func (a Vec3) Comp(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("geom: Vec3 component index %d out of range", i))
}

// SetComp sets component i (0 = X, 1 = Y, 2 = Z) to v.
func (a *Vec3) SetComp(i int, v float64) {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("geom: Vec3 component index %d out of range", i))
	}
}

// String formats the vector for diagnostics.
func (a Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", a.X, a.Y, a.Z)
}

// IsFinite reports whether all components are finite (no NaN or Inf).
func (a Vec3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// IVec3 is a 3-component integer vector. It indexes cells in the cell
// lattice and represents cell offsets in computation paths.
type IVec3 struct {
	X, Y, Z int
}

// IV is shorthand for constructing an IVec3.
func IV(x, y, z int) IVec3 { return IVec3{x, y, z} }

// Add returns a + b.
func (a IVec3) Add(b IVec3) IVec3 { return IVec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a IVec3) Sub(b IVec3) IVec3 { return IVec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Neg returns -a.
func (a IVec3) Neg() IVec3 { return IVec3{-a.X, -a.Y, -a.Z} }

// Scale returns s*a.
func (a IVec3) Scale(s int) IVec3 { return IVec3{s * a.X, s * a.Y, s * a.Z} }

// Min returns the component-wise minimum of a and b.
func (a IVec3) Min(b IVec3) IVec3 {
	return IVec3{min(a.X, b.X), min(a.Y, b.Y), min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a IVec3) Max(b IVec3) IVec3 {
	return IVec3{max(a.X, b.X), max(a.Y, b.Y), max(a.Z, b.Z)}
}

// Comp returns component i (0 = X, 1 = Y, 2 = Z).
func (a IVec3) Comp(i int) int {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("geom: IVec3 component index %d out of range", i))
}

// SetComp sets component i (0 = X, 1 = Y, 2 = Z) to v.
func (a *IVec3) SetComp(i, v int) {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("geom: IVec3 component index %d out of range", i))
	}
}

// Vec3 converts the integer vector to a real vector.
func (a IVec3) Vec3() Vec3 { return Vec3{float64(a.X), float64(a.Y), float64(a.Z)} }

// String formats the vector for diagnostics.
func (a IVec3) String() string { return fmt.Sprintf("(%d, %d, %d)", a.X, a.Y, a.Z) }

// Less imposes a total lexicographic order on integer vectors, used
// when canonicalizing computation patterns.
func (a IVec3) Less(b IVec3) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}

// InBox reports whether each component of a lies in [0, dims) for the
// corresponding component of dims.
func (a IVec3) InBox(dims IVec3) bool {
	return a.X >= 0 && a.X < dims.X &&
		a.Y >= 0 && a.Y < dims.Y &&
		a.Z >= 0 && a.Z < dims.Z
}

// Volume returns the product of the components, the number of lattice
// points in a box of these dimensions.
func (a IVec3) Volume() int { return a.X * a.Y * a.Z }
