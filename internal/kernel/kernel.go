// Package kernel is the unified force-evaluation core shared by every
// engine in the tree — the serial cell engines, the concurrent
// shared-memory engine, the Hybrid pair-list engine, and the
// rank-parallel steppers of package parmd.
//
// The paper's §6 observation is that SC's n-tuple computations are
// mutually independent, so the force inner loop is the same regardless
// of where the tuple stream comes from (a tuple.Enumerator, an
// nlist.PairList, or a rank-local bounded enumeration) and of how it
// is parallelized. This package owns that inner loop exactly once:
//
//   - TermKernel evaluates one potential.Term per streamed tuple and
//     accumulates energy, per-atom forces, the virial, and operation
//     counts into a Slot.
//   - An Accumulator manages the Slots: Direct is the single-buffer
//     serial form; Sharded holds a fixed number of padded per-shard
//     buffers that independent workers may fill concurrently, reduced
//     in fixed shard order so results are deterministic — and, because
//     the shard count (not the worker count) fixes the partition,
//     independent of how many goroutines executed the shards.
//
// The per-worker-buffer + ordered-reduction shape follows the standard
// shared-memory short-range MD design (Meyer, arXiv:1305.4196); the
// rank layer in parmd composes it with message passing in the style of
// Beazley & Lomdahl (arXiv:comp-gas/9303002).
package kernel

import (
	"sync"
	"sync/atomic"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// ComputeStats aggregates the per-step operation counts of a force
// engine — the quantities the paper's cost model (Eq. 12, 31) and the
// performance model of package perfmodel are built on.
type ComputeStats struct {
	SearchCandidates int64 // partial chains examined (Eq. 12 search cost)
	PathApplications int64 // (cell, path) combinations processed
	TuplesEvaluated  int64 // tuples passed to potential terms
	PairListEntries  int64 // Verlet-list entries (Hybrid engine only)
	// TermTuples[n] counts evaluated tuples of length n. A fixed array
	// (tuple.MaxN is small) so per-step stats never touch the heap.
	TermTuples [tuple.MaxN + 1]int64
	// Virial is W = Σ_tuples Σ_k f_k·r_k (eV), accumulated with the
	// image-resolved tuple positions so periodic wrapping never
	// corrupts it. The instantaneous pressure is (2·KE + W)/(3V).
	Virial float64
}

// Add accumulates other into cs.
func (cs *ComputeStats) Add(other ComputeStats) {
	cs.SearchCandidates += other.SearchCandidates
	cs.PathApplications += other.PathApplications
	cs.TuplesEvaluated += other.TuplesEvaluated
	cs.PairListEntries += other.PairListEntries
	cs.Virial += other.Virial
	for n, c := range other.TermTuples {
		cs.TermTuples[n] += c
	}
}

// Slot is one accumulation buffer: a force array plus the scalar sums
// and operation counts gathered alongside it. Exactly one worker may
// write a Slot at a time; distinct Slots may be written concurrently.
// The trailing pad keeps adjacent Slots of a Sharded accumulator from
// sharing a cache line, so concurrent scalar accumulation never false-
// shares.
type Slot struct {
	Force  []geom.Vec3
	Energy float64
	Virial float64
	// Enum collects enumeration counters (search candidates, path
	// applications) from whatever produced this slot's tuple stream.
	Enum tuple.Stats
	// Tuples counts tuples actually evaluated through this slot.
	Tuples int64
	// PairEntries counts Verlet-list entries (Hybrid engines only).
	PairEntries int64
	// TermTuples[n] counts evaluated tuples of length n.
	TermTuples [tuple.MaxN + 1]int64

	_ [64]byte // pad against false sharing between adjacent slots
}

// reset clears everything but the force buffer's storage.
func (s *Slot) reset() {
	s.Energy = 0
	s.Virial = 0
	s.Enum = tuple.Stats{}
	s.Tuples = 0
	s.PairEntries = 0
	s.TermTuples = [tuple.MaxN + 1]int64{}
}

// addTo folds the slot's scalar sums into stats.
func (s *Slot) addTo(stats *ComputeStats) {
	stats.SearchCandidates += s.Enum.Candidates
	stats.PathApplications += s.Enum.PathApplications
	stats.TuplesEvaluated += s.Tuples
	stats.PairListEntries += s.PairEntries
	stats.Virial += s.Virial
	for n, c := range s.TermTuples {
		stats.TermTuples[n] += c
	}
}

// Accumulator manages the accumulation buffers of one force
// evaluation. The protocol is Begin → fill slots (possibly from
// several goroutines, one per slot) → End.
type Accumulator interface {
	// Begin prepares the accumulator for one force evaluation whose
	// final forces land in dst; dst is zeroed.
	Begin(dst []geom.Vec3)
	// Slots returns the number of independent accumulation slots.
	Slots() int
	// Slot returns slot s. Distinct slots may be filled concurrently.
	Slot(s int) *Slot
	// End folds every slot into dst in fixed slot order and returns
	// the total energy and the combined stats.
	End() (energy float64, stats ComputeStats)
}

// Direct is the single-buffer Accumulator of the serial engines: its
// one slot accumulates straight into the destination force array, so
// there is no reduction pass at all.
type Direct struct {
	slot Slot
}

// NewDirect builds the serial accumulator.
func NewDirect() *Direct { return &Direct{} }

// Begin implements Accumulator.
func (a *Direct) Begin(dst []geom.Vec3) {
	clear(dst)
	a.slot.Force = dst
	a.slot.reset()
}

// Slots implements Accumulator.
func (a *Direct) Slots() int { return 1 }

// Slot implements Accumulator.
func (a *Direct) Slot(int) *Slot { return &a.slot }

// End implements Accumulator.
func (a *Direct) End() (float64, ComputeStats) {
	var stats ComputeStats
	a.slot.addTo(&stats)
	return a.slot.Energy, stats
}

// Sharded is the parallel Accumulator: a fixed number of private,
// padded slots filled concurrently and reduced in slot order. The
// slot buffers are allocated once and reused across steps — Begin
// performs no allocation after the first evaluation at a given atom
// count. Because the work partition hangs off the shard count, not
// the worker count, results are bit-identical for any number of
// executing workers (and across repeated runs).
type Sharded struct {
	dst   []geom.Vec3
	slots []Slot
}

// NewSharded builds an accumulator with the given number of slots
// (minimum 1).
func NewSharded(slots int) *Sharded {
	if slots < 1 {
		slots = 1
	}
	return &Sharded{slots: make([]Slot, slots)}
}

// Begin implements Accumulator.
func (a *Sharded) Begin(dst []geom.Vec3) {
	a.dst = dst
	clear(dst)
	n := len(dst)
	for s := range a.slots {
		sl := &a.slots[s]
		if cap(sl.Force) < n {
			// Headroom: n tracks owned+halo atoms, which fluctuates with
			// thermal motion; an exact fit would reallocate every slot at
			// each new high-water mark.
			sl.Force = make([]geom.Vec3, n+n/8)
		}
		sl.Force = sl.Force[:n]
		clear(sl.Force)
		sl.reset()
	}
}

// Grow re-points a begun accumulator at a destination that grew since
// Begin — the overlapped rank engines start accumulating over owned
// atoms while halo copies are still in flight, then widen the window
// once the imports land. dst must contain the Begin-time destination
// as a prefix (append may have moved it; the accumulated slot state is
// private, so only the pointer needs refreshing). Each slot's force
// buffer is extended with a zeroed tail; everything accumulated so far
// is preserved, and End reduces over the full new length. Steady-state
// calls at a warm capacity allocate nothing.
func (a *Sharded) Grow(dst []geom.Vec3) {
	prev := len(a.dst)
	if len(dst) < prev {
		panic("kernel: Grow to a destination smaller than Begin's")
	}
	a.dst = dst
	clear(dst[prev:])
	n := len(dst)
	for s := range a.slots {
		sl := &a.slots[s]
		if cap(sl.Force) < n {
			f := make([]geom.Vec3, n, n+n/8)
			copy(f, sl.Force)
			sl.Force = f
			continue
		}
		sl.Force = sl.Force[:n]
		clear(sl.Force[prev:])
	}
}

// Slots implements Accumulator.
func (a *Sharded) Slots() int { return len(a.slots) }

// Slot implements Accumulator.
func (a *Sharded) Slot(s int) *Slot { return &a.slots[s] }

// End implements Accumulator: the deterministic fixed-order reduction.
func (a *Sharded) End() (float64, ComputeStats) {
	energy := 0.0
	var stats ComputeStats
	for s := range a.slots {
		sl := &a.slots[s]
		energy += sl.Energy
		sl.addTo(&stats)
		for i, f := range sl.Force {
			a.dst[i] = a.dst[i].Add(f)
		}
	}
	return energy, stats
}

// Chunk splits n items into parts contiguous chunks (ceiling-sized,
// like the concurrent engine has always done) and returns the
// half-open range of chunk i. Trailing chunks may be empty.
func Chunk(n, parts, i int) (lo, hi int) {
	chunk := (n + parts - 1) / parts
	lo = i * chunk
	if lo > n {
		lo = n
	}
	hi = min(lo+chunk, n)
	return lo, hi
}

// Run executes fn(worker, shard) for every shard in [0, shards) on up
// to workers goroutines. The shard index selects the accumulation
// slot (and through Chunk the work range); the worker index selects
// per-goroutine scratch such as enumerators, which must not be shared
// between goroutines. Shards are handed out dynamically for load
// balance — legal because each shard writes only its own slot, so the
// result does not depend on which worker ran it. workers ≤ 1 runs
// everything inline on the calling goroutine.
func Run(shards, workers int, fn func(worker, shard int)) {
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(w, s)
			}
		}(w)
	}
	wg.Wait()
}

// TermKernel binds one potential term to a species table and produces
// the visitors that evaluate the term for every streamed tuple,
// accumulating energy, forces, virial, and counts into a Slot. This
// is the single audited copy of the force inner loop; every engine
// routes through it.
//
// Species is a pointer to the engine's species slice so that visitors
// built once can be reused across steps: engines that re-sort or grow
// their atom storage update the pointee, and every visitor call reads
// through it. Likewise a visitor reads slot.Force on every call, so
// accumulator Begin/Grow re-pointing the slot buffers is safe.
type TermKernel struct {
	Term    potential.Term
	Species *[]int32
}

// Visitor returns a tuple.Visitor for enumerator streams (the SC/FS
// cell engines, serial and rank-local). Scratch is hoisted into the
// closure, so the per-tuple path allocates nothing; engines cache the
// visitor itself across steps so the closure is not re-created either.
func (k TermKernel) Visitor(slot *Slot) tuple.Visitor {
	term := k.Term
	speciesp := k.Species
	n := term.N()
	var sp [tuple.MaxN]int32
	var fb [tuple.MaxN]geom.Vec3
	return func(atoms []int32, pos []geom.Vec3) {
		species := *speciesp
		for i := 0; i < n; i++ {
			sp[i] = species[atoms[i]]
			fb[i] = geom.Vec3{}
		}
		slot.Energy += term.Eval(sp[:n], pos, fb[:n])
		for i := 0; i < n; i++ {
			slot.Force[atoms[i]] = slot.Force[atoms[i]].Add(fb[i])
			slot.Virial += fb[i].Dot(pos[i])
		}
		slot.Tuples++
		slot.TermTuples[n]++
	}
}

// PairVisitor returns a visitor for directed pair-list streams (the
// Hybrid engines): it receives endpoints i, j and the image-resolved
// displacement from i to j, reconstructing the j-image position from
// positions[i]. The signature matches nlist.PairList.VisitPairs.
// positions is a pointer for the same reuse reason as
// TermKernel.Species.
func (k TermKernel) PairVisitor(slot *Slot, positionsp *[]geom.Vec3) func(i, j int32, disp geom.Vec3, dist float64) {
	term := k.Term
	speciesp := k.Species
	var sp [2]int32
	var fb [2]geom.Vec3
	var pp [2]geom.Vec3
	return func(i, j int32, disp geom.Vec3, _ float64) {
		species, positions := *speciesp, *positionsp
		sp[0], sp[1] = species[i], species[j]
		fb[0], fb[1] = geom.Vec3{}, geom.Vec3{}
		pp[0] = positions[i]
		pp[1] = positions[i].Add(disp)
		slot.Energy += term.Eval(sp[:2], pp[:2], fb[:2])
		slot.Force[i] = slot.Force[i].Add(fb[0])
		slot.Force[j] = slot.Force[j].Add(fb[1])
		slot.Virial += fb[0].Dot(pp[0]) + fb[1].Dot(pp[1])
		slot.Tuples++
		slot.TermTuples[2]++
	}
}

// TripletVisitor returns a visitor for pruned triplet streams (the
// Hybrid engines), matching nlist.PairList.VisitTriplets: atoms and
// image-resolved chain positions arrive ready-made, center in the
// middle.
func (k TermKernel) TripletVisitor(slot *Slot) func(atoms [3]int32, pos [3]geom.Vec3) {
	term := k.Term
	speciesp := k.Species
	var sp [3]int32
	var fb [3]geom.Vec3
	var pp [3]geom.Vec3
	return func(atoms [3]int32, pos [3]geom.Vec3) {
		species := *speciesp
		for m := 0; m < 3; m++ {
			sp[m] = species[atoms[m]]
			fb[m] = geom.Vec3{}
			pp[m] = pos[m]
		}
		slot.Energy += term.Eval(sp[:3], pp[:3], fb[:3])
		for m := 0; m < 3; m++ {
			slot.Force[atoms[m]] = slot.Force[atoms[m]].Add(fb[m])
			slot.Virial += fb[m].Dot(pp[m])
		}
		slot.Tuples++
		slot.TermTuples[3]++
	}
}
