package kernel

import (
	"math"
	"sync/atomic"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
)

func TestChunkCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		for _, parts := range []int{1, 2, 7, 16, 40} {
			next := 0
			for i := 0; i < parts; i++ {
				lo, hi := Chunk(n, parts, i)
				if lo != next {
					t.Fatalf("n=%d parts=%d: chunk %d starts at %d, want %d", n, parts, i, lo, next)
				}
				if hi < lo || hi > n {
					t.Fatalf("n=%d parts=%d: chunk %d = [%d,%d)", n, parts, i, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: chunks cover [0,%d), want [0,%d)", n, parts, next, n)
			}
		}
	}
}

func TestRunCoversEveryShardOnce(t *testing.T) {
	const shards = 16
	for _, workers := range []int{0, 1, 2, 5, 16, 64} {
		var hits [shards]atomic.Int64
		Run(shards, workers, func(w, s int) {
			if w < 0 || (workers > 1 && w >= workers) || (workers <= 1 && w != 0) {
				t.Errorf("workers=%d: worker index %d out of range", workers, w)
			}
			hits[s].Add(1)
		})
		for s := range hits {
			if got := hits[s].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, s, got)
			}
		}
	}
}

// TestShardedMatchesDirect: the same tuple stream split across shards
// must reduce to the direct accumulator's result exactly (forces
// bitwise, since each atom is touched by exactly one shard here).
func TestShardedMatchesDirect(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	term := model.Terms[0]
	pos := []geom.Vec3{
		geom.V(0, 0, 0), geom.V(3.5, 0, 0),
		geom.V(0, 3.6, 0), geom.V(3.4, 3.4, 0.5),
	}
	species := []int32{0, 0, 0, 0}
	pairs := [][2]int32{{0, 1}, {2, 3}}
	k := TermKernel{Term: term, Species: &species}

	dir := NewDirect()
	fDir := make([]geom.Vec3, len(pos))
	dir.Begin(fDir)
	visit := k.Visitor(dir.Slot(0))
	for _, p := range pairs {
		visit(p[:], []geom.Vec3{pos[p[0]], pos[p[1]]})
	}
	eDir, stDir := dir.End()

	sh := NewSharded(2)
	fSh := make([]geom.Vec3, len(pos))
	sh.Begin(fSh)
	for s, p := range pairs {
		k.Visitor(sh.Slot(s))(p[:], []geom.Vec3{pos[p[0]], pos[p[1]]})
	}
	eSh, stSh := sh.End()

	if eSh != eDir {
		t.Errorf("energy: sharded %v, direct %v", eSh, eDir)
	}
	if stSh.TuplesEvaluated != stDir.TuplesEvaluated || stSh.TermTuples[2] != stDir.TermTuples[2] {
		t.Errorf("stats: sharded %+v, direct %+v", stSh, stDir)
	}
	if math.Abs(stSh.Virial-stDir.Virial) > 1e-15*(1+math.Abs(stDir.Virial)) {
		t.Errorf("virial: sharded %v, direct %v", stSh.Virial, stDir.Virial)
	}
	for i := range fDir {
		if fSh[i] != fDir[i] {
			t.Errorf("atom %d force: sharded %v, direct %v", i, fSh[i], fDir[i])
		}
	}
}

// TestShardedReuseAcrossSizes: Begin must clear stale forces and stats
// when reused, including at a smaller atom count.
func TestShardedReuseAcrossSizes(t *testing.T) {
	sh := NewSharded(4)
	big := make([]geom.Vec3, 8)
	sh.Begin(big)
	sh.Slot(2).Force[5] = geom.V(1, 2, 3)
	sh.Slot(2).Energy = 7
	sh.Slot(2).Tuples = 9
	sh.End()

	small := []geom.Vec3{geom.V(4, 4, 4), geom.V(5, 5, 5)}
	sh.Begin(small)
	e, st := sh.End()
	if e != 0 || st.TuplesEvaluated != 0 {
		t.Errorf("stale sums after reuse: energy %v, stats %+v", e, st)
	}
	for i, f := range small {
		if f != (geom.Vec3{}) {
			t.Errorf("atom %d force %v after empty evaluation, want zero", i, f)
		}
	}
}

// TestVisitorVirial: the accumulated virial equals Σ f·r over the
// evaluated tuple.
func TestVisitorVirial(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	term := model.Terms[0]
	pos := []geom.Vec3{geom.V(1, 2, 3), geom.V(4.4, 2.5, 3.1)}
	species := []int32{0, 0}

	dir := NewDirect()
	f := make([]geom.Vec3, 2)
	dir.Begin(f)
	k := TermKernel{Term: term, Species: &species}
	k.Visitor(dir.Slot(0))([]int32{0, 1}, pos)
	_, st := dir.End()

	want := f[0].Dot(pos[0]) + f[1].Dot(pos[1])
	if math.Abs(st.Virial-want) > 1e-12*(1+math.Abs(want)) {
		t.Errorf("virial %v, Σ f·r = %v", st.Virial, want)
	}
}
