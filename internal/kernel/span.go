package kernel

import (
	"fmt"
	"sync"

	"sctuple/internal/obs"
	"sctuple/internal/tuple"
)

// Per-term timing seam: engines that record phase timelines wrap each
// term's sharded evaluation in an obs span here, at the kernel
// boundary, so every engine decomposes force time the same way and a
// disabled recorder costs a single branch.

var (
	termPhaseOnce sync.Once
	termPhases    [tuple.MaxN + 1]obs.PhaseID
)

// TermPhase returns the interned phase of an n-body force term
// ("force:n2", "force:n3", …) — the names the per-term spans and the
// trace timeline share.
func TermPhase(n int) obs.PhaseID {
	termPhaseOnce.Do(func() {
		for k := 2; k <= tuple.MaxN; k++ {
			termPhases[k] = obs.Phase(fmt.Sprintf("force:n%d", k))
		}
	})
	if n < 2 || n > tuple.MaxN {
		return obs.Phase("force:other")
	}
	return termPhases[n]
}

// RunTimed is Run wrapped in one span of the given phase on rec — the
// per-term timing seam. A nil rec records nothing and adds one branch.
func RunTimed(rec *obs.RankRecorder, phase obs.PhaseID, shards, workers int, fn func(worker, shard int)) {
	sp := rec.StartSpan(phase)
	Run(shards, workers, fn)
	sp.End()
}
