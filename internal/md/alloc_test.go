package md

import (
	"math/rand"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// stepSystem builds a thermalized silica crystal for the allocation
// tests and step benchmarks (testing.TB so benchmarks share it).
func stepSystem(tb testing.TB, cells int) *System {
	tb.Helper()
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(cells, cells, cells)
	cfg.Thermalize(rand.New(rand.NewSource(7)), model, 300)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// stepEngines lists every engine variant whose steady-state step must
// not allocate. The concurrent engine is included at one worker (the
// inline path); multi-worker runs spawn goroutines per evaluation,
// which is an accepted per-step cost covered by the bench ceiling.
func stepEngines(tb testing.TB, sys *System) map[string]Engine {
	tb.Helper()
	mk := func(e Engine, err error) Engine {
		if err != nil {
			tb.Fatal(err)
		}
		return e
	}
	return map[string]Engine{
		"sc":          mk(NewCellEngine(sys.Model, sys.Box, FamilySC)),
		"fs":          mk(NewCellEngine(sys.Model, sys.Box, FamilyFS)),
		"hybrid":      mk(NewHybridEngine(sys.Model, sys.Box)),
		"hybrid-skin": mk(NewHybridEngineSkin(sys.Model, sys.Box, 0.5)),
		"concurrent":  mk(NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, 1)),
	}
}

// TestStepZeroAllocs: after warm-up, a full velocity-Verlet step —
// integrate, canonical re-sort check, rebin, tuple search, force
// kernels, Verlet-list rebuild or refresh — allocates nothing on any
// engine. The initial Compute of NewSim performs the one canonical
// sort and warms every scratch buffer, so the measured steps exercise
// the reuse paths only.
func TestStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	base := stepSystem(t, 3)
	for name := range stepEngines(t, base) {
		t.Run(name, func(t *testing.T) {
			sys := stepSystem(t, 3)
			eng := stepEngines(t, sys)[name]
			sim, err := NewSim(sys, eng, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 5; k++ {
				if err := sim.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var stepErr error
			allocs := testing.AllocsPerRun(10, func() {
				if err := sim.Step(); err != nil && stepErr == nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if allocs != 0 {
				t.Errorf("%s: %g allocs per step, want 0", name, allocs)
			}
		})
	}
}

// TestSortedLayoutIdentity: GatherByID must invert the canonical sort —
// gathering positions by global ID returns the adoption-order
// trajectory view whatever the storage permutation is.
func TestSortedLayoutIdentity(t *testing.T) {
	sys := stepSystem(t, 3)
	orig := make([]geom.Vec3, len(sys.Pos))
	copy(orig, sys.Pos)
	eng, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute(sys); err != nil {
		t.Fatal(err)
	}
	sorted := false
	for i := range sys.ID {
		if sys.ID[i] != int64(i) {
			sorted = true
			break
		}
	}
	if !sorted {
		t.Fatal("canonical sort left adoption order untouched; identity test is vacuous")
	}
	byID := sys.GatherByID(nil, sys.Pos)
	for i := range orig {
		if byID[i] != orig[i] {
			t.Fatalf("atom %d: gathered position %v != original %v", i, byID[i], orig[i])
		}
	}
	slot := sys.SlotByID()
	for i := range sys.ID {
		if int(slot[sys.ID[i]]) != i {
			t.Fatalf("slotOf[%d] = %d, want %d", sys.ID[i], slot[sys.ID[i]], i)
		}
	}
}

// BenchmarkStep is the per-engine step benchmark the CI allocation
// gate runs with -benchmem: allocs/op must be 0 for every serial
// engine.
func BenchmarkStep(b *testing.B) {
	for _, name := range []string{"sc", "fs", "hybrid", "hybrid-skin"} {
		b.Run(name, func(b *testing.B) {
			sys := stepSystem(b, 3)
			eng := stepEngines(b, sys)[name]
			sim, err := NewSim(sys, eng, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
