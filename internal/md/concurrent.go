package md

import (
	"fmt"
	"runtime"

	"sctuple/internal/cell"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// ConcurrentCellEngine exploits the concurrency property the paper
// highlights in §6: because SC executes different n-tuple computations
// independently — no sequential dependence like Hybrid-MD's
// list-then-prune pipeline — the cell search-spaces can be evaluated
// by any number of workers in parallel.
//
// The engine partitions each term's anchor cells across W shards of a
// kernel.Sharded accumulator; every worker enumerates its shard's
// cells with a private Enumerator and accumulates forces into the
// shard's private buffer, and the buffers are reduced in fixed shard
// order, so results are deterministic for a given worker count (force
// sums are floating-point-identical run to run, and agree with the
// serial engine to rounding).
type ConcurrentCellEngine struct {
	family  Family
	model   *potential.Model
	workers int

	lats  []cell.Lattice
	bins  []*cell.Binning
	cells [][]geom.IVec3 // all anchor cells per term

	canonLat cell.Lattice
	useSpans []bool // term lattice == canonical lattice

	// Per-worker, per-term enumerators (enumerators hold scratch and
	// must not be shared between goroutines).
	enums [][]*tuple.Enumerator

	// Per-slot, per-term visitors, bound once per System; the shard
	// function is hoisted so the step loop re-creates no closures.
	boundTo  *System
	visitors [][]tuple.Visitor
	runFn    func(w, s int)
	curTerm  int

	acc   *kernel.Sharded
	stats ComputeStats
}

// NewConcurrentCellEngine builds the engine with the given worker
// count; workers ≤ 0 selects GOMAXPROCS.
func NewConcurrentCellEngine(model *potential.Model, box geom.Box, family Family, workers int) (*ConcurrentCellEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &ConcurrentCellEngine{
		family:  family,
		model:   model,
		workers: workers,
		acc:     kernel.NewSharded(workers),
	}
	canon, err := cell.NewLattice(box, model.MaxCutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	e.canonLat = canon
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff())
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		bin := cell.NewBinning(lat, nil)
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		e.useSpans = append(e.useSpans, term.Cutoff() == model.MaxCutoff())
		all := make([]geom.IVec3, 0, lat.NumCells())
		for i := 0; i < lat.NumCells(); i++ {
			all = append(all, lat.CellAt(i))
		}
		e.cells = append(e.cells, all)
	}
	e.enums = make([][]*tuple.Enumerator, workers)
	for w := 0; w < workers; w++ {
		for ti, term := range model.Terms {
			pattern, err := family.Pattern(term.N())
			if err != nil {
				return nil, err
			}
			en, err := tuple.NewEnumerator(e.bins[ti], pattern, term.Cutoff(), tuple.DedupAuto)
			if err != nil {
				return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
			}
			e.enums[w] = append(e.enums[w], en)
		}
	}
	return e, nil
}

// Name implements Engine.
func (e *ConcurrentCellEngine) Name() string {
	return fmt.Sprintf("%s-MD(×%d)", e.family, e.workers)
}

// Workers returns the worker count.
func (e *ConcurrentCellEngine) Workers() int { return e.workers }

// bind caches per-slot visitors and the shard function for one
// System. Visitors read species and forces through pointers, so the
// caches survive re-sorts; only a System switch rebuilds them.
func (e *ConcurrentCellEngine) bind(sys *System) {
	if e.boundTo == sys {
		return
	}
	e.boundTo = sys
	slots := e.acc.Slots()
	e.visitors = e.visitors[:0]
	for s := 0; s < slots; s++ {
		slot := e.acc.Slot(s)
		vs := make([]tuple.Visitor, 0, len(e.model.Terms))
		for _, term := range e.model.Terms {
			k := kernel.TermKernel{Term: term, Species: &sys.Species}
			vs = append(vs, k.Visitor(slot))
		}
		e.visitors = append(e.visitors, vs)
	}
	for w := range e.enums {
		for ti := range e.enums[w] {
			e.enums[w][ti].SetKeys(sys.ID)
		}
	}
	e.runFn = func(w, s int) {
		ti := e.curTerm
		all := e.cells[ti]
		lo, hi := kernel.Chunk(len(all), e.acc.Slots(), s)
		if lo >= hi {
			return
		}
		slot := e.acc.Slot(s)
		e.enums[w][ti].VisitCellsInto(all[lo:hi], sys.Pos, e.visitors[s][ti], &slot.Enum)
	}
}

// Compute implements Engine: canonical sort, span (or keyed-CSR)
// rebin per term, then shard the anchor cells across the accumulator
// slots exactly as before — the chunk partition hangs off the cell
// list, so results stay bit-identical to the unsorted layout.
func (e *ConcurrentCellEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	sys.EnsureLayout(e.canonLat)
	e.bind(sys)
	e.acc.Begin(sys.Force)
	for ti := range e.model.Terms {
		if e.useSpans[ti] {
			if err := e.bins[ti].RebinSpans(sys.CanonicalCells()); err != nil {
				return 0, fmt.Errorf("md: %w", err)
			}
		} else {
			e.bins[ti].RebinKeyed(sys.Pos, sys.ID)
		}
		e.curTerm = ti
		kernel.Run(e.acc.Slots(), e.workers, e.runFn)
	}
	// Deterministic reduction in fixed shard order.
	energy, stats := e.acc.End()
	e.stats = stats
	return energy, nil
}

// Stats implements Engine.
func (e *ConcurrentCellEngine) Stats() ComputeStats { return e.stats }
