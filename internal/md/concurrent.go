package md

import (
	"fmt"
	"runtime"
	"sync"

	"sctuple/internal/cell"
	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// ConcurrentCellEngine exploits the concurrency property the paper
// highlights in §6: because SC executes different n-tuple computations
// independently — no sequential dependence like Hybrid-MD's
// list-then-prune pipeline — the cell search-spaces can be evaluated
// by any number of workers in parallel.
//
// The engine partitions each term's anchor cells across W workers;
// every worker enumerates its cells with a private Enumerator and
// accumulates forces into a private buffer, and the buffers are
// reduced in fixed worker order, so results are deterministic for a
// given worker count (force sums are floating-point-identical run to
// run, and agree with the serial engine to rounding).
type ConcurrentCellEngine struct {
	family  Family
	model   *potential.Model
	workers int

	lats  []cell.Lattice
	bins  []*cell.Binning
	cells [][]geom.IVec3 // all anchor cells per term

	// Per-worker, per-term enumerators (enumerators hold scratch and
	// must not be shared between goroutines).
	enums [][]*tuple.Enumerator

	forces [][]geom.Vec3 // per-worker force buffers
	stats  ComputeStats
}

// NewConcurrentCellEngine builds the engine with the given worker
// count; workers ≤ 0 selects GOMAXPROCS.
func NewConcurrentCellEngine(model *potential.Model, box geom.Box, family Family, workers int) (*ConcurrentCellEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &ConcurrentCellEngine{family: family, model: model, workers: workers}
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff())
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		bin := cell.NewBinning(lat, nil)
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		all := make([]geom.IVec3, 0, lat.NumCells())
		for i := 0; i < lat.NumCells(); i++ {
			all = append(all, lat.CellAt(i))
		}
		e.cells = append(e.cells, all)
	}
	e.enums = make([][]*tuple.Enumerator, workers)
	for w := 0; w < workers; w++ {
		for ti, term := range model.Terms {
			en, err := tuple.NewEnumerator(e.bins[ti], family.Pattern(term.N()), term.Cutoff(), tuple.DedupAuto)
			if err != nil {
				return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
			}
			e.enums[w] = append(e.enums[w], en)
		}
	}
	e.forces = make([][]geom.Vec3, workers)
	return e, nil
}

// Name implements Engine.
func (e *ConcurrentCellEngine) Name() string {
	return fmt.Sprintf("%s-MD(×%d)", e.family, e.workers)
}

// Workers returns the worker count.
func (e *ConcurrentCellEngine) Workers() int { return e.workers }

// Compute implements Engine.
func (e *ConcurrentCellEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	n := sys.N()
	for w := range e.forces {
		if cap(e.forces[w]) < n {
			e.forces[w] = make([]geom.Vec3, n)
		}
		e.forces[w] = e.forces[w][:n]
		for i := range e.forces[w] {
			e.forces[w][i] = geom.Vec3{}
		}
	}
	e.stats = ComputeStats{TermTuples: make(map[int]int64)}
	energy := 0.0

	for ti, term := range e.model.Terms {
		e.bins[ti].Rebin(sys.Pos)
		all := e.cells[ti]
		chunk := (len(all) + e.workers - 1) / e.workers

		energies := make([]float64, e.workers)
		virials := make([]float64, e.workers)
		statList := make([]tuple.Stats, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			lo := w * chunk
			if lo >= len(all) {
				break
			}
			hi := min(lo+chunk, len(all))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				nTerm := term.N()
				var species [tuple.MaxN]int32
				var fbuf [tuple.MaxN]geom.Vec3
				force := e.forces[w]
				statList[w] = e.enums[w][ti].VisitCells(all[lo:hi], sys.Pos, func(atoms []int32, pos []geom.Vec3) {
					for k := 0; k < nTerm; k++ {
						species[k] = sys.Species[atoms[k]]
						fbuf[k] = geom.Vec3{}
					}
					energies[w] += term.Eval(species[:nTerm], pos, fbuf[:nTerm])
					for k := 0; k < nTerm; k++ {
						force[atoms[k]] = force[atoms[k]].Add(fbuf[k])
						virials[w] += fbuf[k].Dot(pos[k])
					}
				})
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < e.workers; w++ {
			energy += energies[w]
			e.stats.Virial += virials[w]
			e.stats.SearchCandidates += statList[w].Candidates
			e.stats.PathApplications += statList[w].PathApplications
			e.stats.TuplesEvaluated += statList[w].Emitted
			e.stats.TermTuples[term.N()] += statList[w].Emitted
		}
	}

	// Deterministic reduction in fixed worker order.
	sys.ZeroForces()
	for w := 0; w < e.workers; w++ {
		fw := e.forces[w]
		for i := range fw {
			sys.Force[i] = sys.Force[i].Add(fw[i])
		}
	}
	return energy, nil
}

// Stats implements Engine.
func (e *ConcurrentCellEngine) Stats() ComputeStats { return e.stats }
