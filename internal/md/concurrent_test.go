package md

import (
	"math"
	"testing"

	"sctuple/internal/geom"
)

// TestConcurrentEngineMatchesSerial: the §6 concurrent engine must
// reproduce the serial SC engine's energy and forces for several
// worker counts.
func TestConcurrentEngineMatchesSerial(t *testing.T) {
	sys := silicaSystem(t, 3, 300, 21)
	serial, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	wantPE, err := serial.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	wantF := append([]geom.Vec3(nil), sys.Force...)
	wantStats := serial.Stats()

	for _, workers := range []int{1, 2, 3, 8} {
		conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, workers)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := conc.Compute(sys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pe-wantPE) > 1e-9*math.Abs(wantPE) {
			t.Errorf("workers=%d: PE %.12g, serial %.12g", workers, pe, wantPE)
		}
		for i := range wantF {
			if d := sys.Force[i].Sub(wantF[i]).Norm(); d > 1e-9 {
				t.Fatalf("workers=%d: atom %d force differs by %g", workers, i, d)
			}
		}
		st := conc.Stats()
		if st.SearchCandidates != wantStats.SearchCandidates ||
			st.TuplesEvaluated != wantStats.TuplesEvaluated {
			t.Errorf("workers=%d: stats %+v, serial %+v", workers, st, wantStats)
		}
	}
}

// TestConcurrentEngineDeterministic: same worker count → bit-identical
// forces across repeated evaluations (fixed-order reduction).
func TestConcurrentEngineDeterministic(t *testing.T) {
	sys := silicaSystem(t, 3, 600, 22)
	conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, 4)
	if err != nil {
		t.Fatal(err)
	}
	pe1, err := conc.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	f1 := append([]geom.Vec3(nil), sys.Force...)
	for trial := 0; trial < 3; trial++ {
		pe2, err := conc.Compute(sys)
		if err != nil {
			t.Fatal(err)
		}
		if pe2 != pe1 {
			t.Fatalf("trial %d: PE %v != %v (nondeterministic)", trial, pe2, pe1)
		}
		for i := range f1 {
			if sys.Force[i] != f1[i] {
				t.Fatalf("trial %d: atom %d force differs bitwise", trial, i)
			}
		}
	}
}

// TestConcurrentEngineDynamics: full NVE trajectory through the
// concurrent engine conserves energy like the serial one.
func TestConcurrentEngineDynamics(t *testing.T) {
	sys := silicaSystem(t, 3, 300, 23)
	conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, conc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	ke0 := sys.KineticEnergy()
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(sim.TotalEnergy() - e0); drift > 0.02*ke0 {
		t.Errorf("energy drift %g eV (KE₀ %g)", drift, ke0)
	}
}

// TestConcurrentEngineFS: the FS family works too.
func TestConcurrentEngineFS(t *testing.T) {
	sys := silicaSystem(t, 3, 300, 24)
	serial, err := NewCellEngine(sys.Model, sys.Box, FamilyFS)
	if err != nil {
		t.Fatal(err)
	}
	wantPE, err := serial.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilyFS, 3)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := conc.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe-wantPE) > 1e-9*math.Abs(wantPE) {
		t.Errorf("FS concurrent PE %g, serial %g", pe, wantPE)
	}
}

// TestConcurrentEngineDefaultWorkers: workers ≤ 0 picks GOMAXPROCS.
func TestConcurrentEngineDefaultWorkers(t *testing.T) {
	sys := silicaSystem(t, 3, 0, 25)
	conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Workers() < 1 {
		t.Errorf("Workers = %d", conc.Workers())
	}
	if _, err := conc.Compute(sys); err != nil {
		t.Fatal(err)
	}
}
