package md

import (
	"math"
	"testing"

	"sctuple/internal/geom"
)

// TestFamilyPatternUnknown: an invalid family yields an error, not a
// panic, while the known families yield their patterns.
func TestFamilyPatternUnknown(t *testing.T) {
	for _, f := range []Family{FamilySC, FamilyFS} {
		p, err := f.Pattern(3)
		if err != nil || p == nil {
			t.Errorf("%v.Pattern(3) = %v, %v", f, p, err)
		}
	}
	if _, err := Family(99).Pattern(2); err == nil {
		t.Error("Family(99).Pattern(2) succeeded, want error")
	}
	sys := silicaSystem(t, 3, 0, 1)
	if _, err := NewCellEngine(sys.Model, sys.Box, Family(99)); err == nil {
		t.Error("NewCellEngine with unknown family succeeded, want error")
	}
	if _, err := NewConcurrentCellEngine(sys.Model, sys.Box, Family(99), 2); err == nil {
		t.Error("NewConcurrentCellEngine with unknown family succeeded, want error")
	}
}

// TestConcurrentEngineDeterministicAcrossWorkerCounts: for every fixed
// worker count — including counts exceeding the cell count, where
// trailing shards are empty — repeated evaluations are bit-identical,
// and each agrees with the serial engine to rounding.
func TestConcurrentEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	sys := silicaSystem(t, 3, 500, 26)
	serial, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	wantPE, err := serial.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	wantF := append([]geom.Vec3(nil), sys.Force...)

	// The triplet term bins 2.6 Å cells on a 21.5 Å box → 8³ cells, but
	// the pair term has only 3³ = 27, so 32 workers exceeds it.
	for _, workers := range []int{1, 2, 4, 27, 32} {
		conc, err := NewConcurrentCellEngine(sys.Model, sys.Box, FamilySC, workers)
		if err != nil {
			t.Fatal(err)
		}
		pe1, err := conc.Compute(sys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pe1-wantPE) > 1e-9*math.Abs(wantPE) {
			t.Errorf("workers=%d: PE %.12g, serial %.12g", workers, pe1, wantPE)
		}
		for i := range wantF {
			if d := sys.Force[i].Sub(wantF[i]).Norm(); d > 1e-9 {
				t.Fatalf("workers=%d: atom %d force differs from serial by %g", workers, i, d)
			}
		}
		f1 := append([]geom.Vec3(nil), sys.Force...)
		for trial := 0; trial < 3; trial++ {
			pe2, err := conc.Compute(sys)
			if err != nil {
				t.Fatal(err)
			}
			if pe2 != pe1 {
				t.Fatalf("workers=%d trial %d: PE %v != %v (nondeterministic)", workers, trial, pe2, pe1)
			}
			for i := range f1 {
				if sys.Force[i] != f1[i] {
					t.Fatalf("workers=%d trial %d: atom %d force differs bitwise", workers, trial, i)
				}
			}
		}
	}
}
