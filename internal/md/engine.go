package md

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/nlist"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// Family selects the computation-pattern family of a cell engine.
type Family int

// Pattern families.
const (
	FamilySC Family = iota // shift-collapse patterns (SC-MD)
	FamilyFS               // full-shell patterns (FS-MD)
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilySC:
		return "SC"
	case FamilyFS:
		return "FS"
	}
	return "?"
}

// Pattern returns the family's pattern for tuple length n, or an
// error for an unknown family (matching the error handling of
// NewCellEngineRadius).
func (f Family) Pattern(n int) (*core.Pattern, error) {
	switch f {
	case FamilySC:
		return core.SC(n), nil
	case FamilyFS:
		return core.FS(n), nil
	}
	return nil, fmt.Errorf("md: unknown pattern family %v", f)
}

// CellEngine evaluates all model terms by cell-based UCP enumeration
// with one pattern per tuple length — SC-MD when built with FamilySC,
// FS-MD with FamilyFS. Following §3.1.1 ("side lengths equal or
// slightly larger than r_cut-n"), every term enumerates on its own
// cell lattice sized by its own cutoff: the silica triplet term
// searches 2.6 Å cells rather than the 5.5 Å pair cells, which is
// what keeps the SC triplet search space compact.
type CellEngine struct {
	family Family
	model  *potential.Model
	lats   []cell.Lattice
	bins   []*cell.Binning
	enums  []*tuple.Enumerator

	acc   *kernel.Direct
	stats ComputeStats
}

// NewCellEngine builds the engine for a model over a box, with one
// lattice, binning, and enumerator per term.
func NewCellEngine(model *potential.Model, box geom.Box, family Family) (*CellEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &CellEngine{family: family, model: model, acc: kernel.NewDirect()}
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff())
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		pattern, err := family.Pattern(term.N())
		if err != nil {
			return nil, err
		}
		bin := cell.NewBinning(lat, nil)
		en, err := tuple.NewEnumerator(bin, pattern, term.Cutoff(), tuple.DedupAuto)
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		e.enums = append(e.enums, en)
	}
	return e, nil
}

// NewCellEngineRadius builds a cell engine in the midpoint mode of the
// paper's §6: every term enumerates on a lattice with cells of side ≥
// cutoff/k using radius-k shift-collapse (or full-shell) patterns.
// Finer cells hug the cutoff ball more tightly, trading pattern size
// for fewer distance-rejected candidates; k = 1 is NewCellEngine.
func NewCellEngineRadius(model *potential.Model, box geom.Box, family Family, k int) (*CellEngine, error) {
	if k < 1 {
		return nil, fmt.Errorf("md: cell radius %d < 1", k)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &CellEngine{family: family, model: model, acc: kernel.NewDirect()}
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff()/float64(k))
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		var pattern *core.Pattern
		switch family {
		case FamilySC:
			pattern = core.SCRadius(term.N(), k)
		case FamilyFS:
			pattern = core.GenerateFSRadius(term.N(), k).Sort()
		default:
			return nil, fmt.Errorf("md: unknown family %v", family)
		}
		bin := cell.NewBinning(lat, nil)
		en, err := tuple.NewEnumerator(bin, pattern, term.Cutoff(), tuple.DedupAuto)
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		e.enums = append(e.enums, en)
	}
	return e, nil
}

// Name implements Engine.
func (e *CellEngine) Name() string { return e.family.String() + "-MD" }

// Lattice returns the cell lattice of term i.
func (e *CellEngine) Lattice(i int) cell.Lattice { return e.lats[i] }

// Compute implements Engine: rebin per term, enumerate each term's
// force set, and evaluate through the shared kernel layer into the
// direct (single-buffer) accumulator.
func (e *CellEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	e.acc.Begin(sys.Force)
	slot := e.acc.Slot(0)
	for ti, term := range e.model.Terms {
		e.bins[ti].Rebin(sys.Pos)
		k := kernel.TermKernel{Term: term, Species: sys.Species}
		e.enums[ti].VisitInto(sys.Pos, k.Visitor(slot), &slot.Enum)
	}
	energy, stats := e.acc.End()
	e.stats = stats
	return energy, nil
}

// Stats implements Engine.
func (e *CellEngine) Stats() ComputeStats { return e.stats }

// HybridEngine reproduces the paper's production Hybrid-MD baseline:
// the pair term is evaluated from a Verlet pair list built by a
// full-shell cell search each step, and the triplet term is pruned
// directly from that list using the shorter triplet cutoff — no
// second cell search. It supports models with exactly one pair term
// and at most one triplet term (the silica application of §5).
type HybridEngine struct {
	model   *potential.Model
	lat     cell.Lattice
	bin     *cell.Binning
	pair    potential.Term
	triplet potential.Term // nil when the model is pair-only

	// skin > 0 enables Verlet-list reuse: the list is built with
	// cutoff r+skin and refreshed in place until some atom has moved
	// more than skin/2 since the build.
	skin     float64
	pl       *nlist.PairList
	buildPos []geom.Vec3
	rebuilds int64

	acc   *kernel.Direct
	stats ComputeStats
}

// NewHybridEngine builds the engine; it rejects models outside the
// pair(+triplet) shape, mirroring the specialization of the production
// code the paper describes.
func NewHybridEngine(model *potential.Model, box geom.Box) (*HybridEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &HybridEngine{model: model, acc: kernel.NewDirect()}
	for _, t := range model.Terms {
		switch t.N() {
		case 2:
			if e.pair != nil {
				return nil, fmt.Errorf("md: hybrid engine supports one pair term")
			}
			e.pair = t
		case 3:
			if e.triplet != nil {
				return nil, fmt.Errorf("md: hybrid engine supports one triplet term")
			}
			e.triplet = t
		default:
			return nil, fmt.Errorf("md: hybrid engine cannot handle n=%d terms", t.N())
		}
	}
	if e.pair == nil {
		return nil, fmt.Errorf("md: hybrid engine needs a pair term")
	}
	if e.triplet != nil && e.triplet.Cutoff() > e.pair.Cutoff() {
		return nil, fmt.Errorf("md: hybrid engine needs r_cut3 ≤ r_cut2 (have %g > %g)",
			e.triplet.Cutoff(), e.pair.Cutoff())
	}
	lat, err := cell.NewLattice(box, e.pair.Cutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	e.lat = lat
	e.bin = cell.NewBinning(lat, nil)
	return e, nil
}

// NewHybridEngineSkin builds a Hybrid engine whose Verlet list is
// built with cutoff r+skin and reused across steps until an atom has
// moved more than skin/2 — the standard production optimization over
// the paper's per-step rebuild. The skin must be positive and small
// enough that the skinned cutoff still fits the cell lattice
// (skin ≤ r/2 is always safe).
func NewHybridEngineSkin(model *potential.Model, box geom.Box, skin float64) (*HybridEngine, error) {
	if !(skin > 0) {
		return nil, fmt.Errorf("md: skin %g must be positive", skin)
	}
	e, err := NewHybridEngine(model, box)
	if err != nil {
		return nil, err
	}
	skinned := e.pair.Cutoff() + skin
	lat, err := cell.NewLattice(box, skinned)
	if err != nil {
		return nil, fmt.Errorf("md: skinned cutoff: %w", err)
	}
	if !lat.MinSpanOK(3) {
		return nil, fmt.Errorf("md: box too small for skinned cutoff %g", skinned)
	}
	e.lat = lat
	e.bin = cell.NewBinning(lat, nil)
	e.skin = skin
	return e, nil
}

// ListRebuilds returns how many times the Verlet list was rebuilt
// (always one per Compute when no skin is configured).
func (e *HybridEngine) ListRebuilds() int64 { return e.rebuilds }

// listIsStale reports whether any atom moved more than skin/2 since
// the last build.
func (e *HybridEngine) listIsStale(sys *System) bool {
	if e.pl == nil || len(e.buildPos) != sys.N() {
		return true
	}
	limit2 := (e.skin / 2) * (e.skin / 2)
	for i, r := range sys.Pos {
		if sys.Box.Displacement(e.buildPos[i], r).Norm2() > limit2 {
			return true
		}
	}
	return false
}

// Name implements Engine.
func (e *HybridEngine) Name() string { return "Hybrid-MD" }

// Compute implements Engine.
func (e *HybridEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	e.acc.Begin(sys.Force)
	slot := e.acc.Slot(0)

	var pl *nlist.PairList
	if e.skin > 0 {
		if e.listIsStale(sys) {
			e.bin.Rebin(sys.Pos)
			fresh, err := nlist.Build(e.bin, sys.Pos, e.pair.Cutoff()+e.skin)
			if err != nil {
				return 0, err
			}
			e.pl = fresh
			e.buildPos = append(e.buildPos[:0], sys.Pos...)
			e.rebuilds++
			slot.Enum.Candidates = fresh.BuildStats.Candidates
			slot.Enum.PathApplications = fresh.BuildStats.PathApplications
		} else {
			e.pl.Refresh(sys.Box, sys.Pos)
			slot.Enum.Candidates = int64(e.pl.NumEntries())
		}
		pl = e.pl
	} else {
		e.bin.Rebin(sys.Pos)
		fresh, err := nlist.Build(e.bin, sys.Pos, e.pair.Cutoff())
		if err != nil {
			return 0, err
		}
		pl = fresh
		e.rebuilds++
		slot.Enum.Candidates = fresh.BuildStats.Candidates
		slot.Enum.PathApplications = fresh.BuildStats.PathApplications
	}
	slot.PairEntries = int64(pl.NumEntries())

	pairK := kernel.TermKernel{Term: e.pair, Species: sys.Species}
	pl.VisitPairs(pairK.PairVisitor(slot, sys.Pos))

	if e.triplet != nil {
		tripK := kernel.TermKernel{Term: e.triplet, Species: sys.Species}
		tst := pl.VisitTriplets(sys.Pos, e.triplet.Cutoff(), tripK.TripletVisitor(slot))
		// The pruning scan and the neighbor-pair expansion are the
		// triplet search cost of Hybrid-MD.
		slot.Enum.Candidates += tst.ShortNeighbors + tst.PairsExamined
	}
	energy, stats := e.acc.End()
	e.stats = stats
	return energy, nil
}

// Stats implements Engine.
func (e *HybridEngine) Stats() ComputeStats { return e.stats }
