package md

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/nlist"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// Family selects the computation-pattern family of a cell engine.
type Family int

// Pattern families.
const (
	FamilySC Family = iota // shift-collapse patterns (SC-MD)
	FamilyFS               // full-shell patterns (FS-MD)
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilySC:
		return "SC"
	case FamilyFS:
		return "FS"
	}
	return "?"
}

// Pattern returns the family's pattern for tuple length n, or an
// error for an unknown family (matching the error handling of
// NewCellEngineRadius).
func (f Family) Pattern(n int) (*core.Pattern, error) {
	switch f {
	case FamilySC:
		return core.SC(n), nil
	case FamilyFS:
		return core.FS(n), nil
	}
	return nil, fmt.Errorf("md: unknown pattern family %v", f)
}

// CellEngine evaluates all model terms by cell-based UCP enumeration
// with one pattern per tuple length — SC-MD when built with FamilySC,
// FS-MD with FamilyFS. Following §3.1.1 ("side lengths equal or
// slightly larger than r_cut-n"), every term enumerates on its own
// cell lattice sized by its own cutoff: the silica triplet term
// searches 2.6 Å cells rather than the 5.5 Å pair cells, which is
// what keeps the SC triplet search space compact.
//
// Storage layout: Compute first sorts the system into canonical
// (cell, ID) order over the model's MaxCutoff lattice (the coarsest
// term lattice). Terms on that lattice then walk contiguous storage
// spans with no indirection at all; finer-lattice terms bin CSR with
// ID-ordered cell lists, which makes their enumeration order equal to
// the canonical one regardless of storage order. Visitors and
// enumerator keys are bound once per System, so steady-state Compute
// calls allocate nothing.
type CellEngine struct {
	family Family
	model  *potential.Model
	lats   []cell.Lattice
	bins   []*cell.Binning
	enums  []*tuple.Enumerator

	canonLat cell.Lattice
	useSpans []bool // term lattice == canonical lattice

	boundTo  *System
	visitors []tuple.Visitor

	acc   *kernel.Direct
	stats ComputeStats
}

// NewCellEngine builds the engine for a model over a box, with one
// lattice, binning, and enumerator per term.
func NewCellEngine(model *potential.Model, box geom.Box, family Family) (*CellEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &CellEngine{family: family, model: model, acc: kernel.NewDirect()}
	canon, err := cell.NewLattice(box, model.MaxCutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	e.canonLat = canon
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff())
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		pattern, err := family.Pattern(term.N())
		if err != nil {
			return nil, err
		}
		bin := cell.NewBinning(lat, nil)
		en, err := tuple.NewEnumerator(bin, pattern, term.Cutoff(), tuple.DedupAuto)
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		e.enums = append(e.enums, en)
		e.useSpans = append(e.useSpans, term.Cutoff() == model.MaxCutoff())
	}
	return e, nil
}

// NewCellEngineRadius builds a cell engine in the midpoint mode of the
// paper's §6: every term enumerates on a lattice with cells of side ≥
// cutoff/k using radius-k shift-collapse (or full-shell) patterns.
// Finer cells hug the cutoff ball more tightly, trading pattern size
// for fewer distance-rejected candidates; k = 1 is NewCellEngine.
func NewCellEngineRadius(model *potential.Model, box geom.Box, family Family, k int) (*CellEngine, error) {
	if k < 1 {
		return nil, fmt.Errorf("md: cell radius %d < 1", k)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &CellEngine{family: family, model: model, acc: kernel.NewDirect()}
	canon, err := cell.NewLattice(box, model.MaxCutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	e.canonLat = canon
	for _, term := range model.Terms {
		lat, err := cell.NewLattice(box, term.Cutoff()/float64(k))
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		var pattern *core.Pattern
		switch family {
		case FamilySC:
			pattern = core.SCRadius(term.N(), k)
		case FamilyFS:
			pattern = core.GenerateFSRadius(term.N(), k).Sort()
		default:
			return nil, fmt.Errorf("md: unknown family %v", family)
		}
		bin := cell.NewBinning(lat, nil)
		en, err := tuple.NewEnumerator(bin, pattern, term.Cutoff(), tuple.DedupAuto)
		if err != nil {
			return nil, fmt.Errorf("md: term n=%d: %w", term.N(), err)
		}
		e.lats = append(e.lats, lat)
		e.bins = append(e.bins, bin)
		e.enums = append(e.enums, en)
		e.useSpans = append(e.useSpans, term.Cutoff()/float64(k) == model.MaxCutoff())
	}
	return e, nil
}

// Name implements Engine.
func (e *CellEngine) Name() string { return e.family.String() + "-MD" }

// Lattice returns the cell lattice of term i.
func (e *CellEngine) Lattice(i int) cell.Lattice { return e.lats[i] }

// bind caches the per-term visitors and enumerator dedup keys for one
// System. The visitors read species, forces, and positions through
// pointers, so they survive re-sorts; only switching the engine to a
// different System rebuilds them.
func (e *CellEngine) bind(sys *System) {
	if e.boundTo == sys {
		return
	}
	e.boundTo = sys
	slot := e.acc.Slot(0)
	e.visitors = e.visitors[:0]
	for ti, term := range e.model.Terms {
		k := kernel.TermKernel{Term: term, Species: &sys.Species}
		e.visitors = append(e.visitors, k.Visitor(slot))
		e.enums[ti].SetKeys(sys.ID)
	}
}

// Compute implements Engine: sort storage into the canonical layout,
// rebin per term (contiguous spans on the canonical lattice, keyed CSR
// on finer ones), enumerate each term's force set, and evaluate
// through the shared kernel layer into the direct (single-buffer)
// accumulator. Steady-state calls allocate nothing.
func (e *CellEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	sys.EnsureLayout(e.canonLat)
	e.bind(sys)
	e.acc.Begin(sys.Force)
	slot := e.acc.Slot(0)
	for ti := range e.model.Terms {
		if e.useSpans[ti] {
			if err := e.bins[ti].RebinSpans(sys.CanonicalCells()); err != nil {
				return 0, fmt.Errorf("md: %w", err)
			}
		} else {
			e.bins[ti].RebinKeyed(sys.Pos, sys.ID)
		}
		e.enums[ti].VisitInto(sys.Pos, e.visitors[ti], &slot.Enum)
	}
	energy, stats := e.acc.End()
	e.stats = stats
	return energy, nil
}

// Stats implements Engine.
func (e *CellEngine) Stats() ComputeStats { return e.stats }

// HybridEngine reproduces the paper's production Hybrid-MD baseline:
// the pair term is evaluated from a Verlet pair list built by a
// full-shell cell search each step, and the triplet term is pruned
// directly from that list using the shorter triplet cutoff — no
// second cell search. It supports models with exactly one pair term
// and at most one triplet term (the silica application of §5).
type HybridEngine struct {
	model   *potential.Model
	lat     cell.Lattice
	bin     *cell.Binning
	pair    potential.Term
	triplet potential.Term // nil when the model is pair-only

	canonLat cell.Lattice

	// skin > 0 enables Verlet-list reuse: the list is built with
	// cutoff r+skin and refreshed in place until some atom has moved
	// more than skin/2 since the build. The list indexes storage
	// slots, so it is additionally invalidated when the system's
	// layout epoch moved (some other engine re-sorted the storage);
	// the engine itself re-sorts only at rebuild steps.
	skin       float64
	builder    *nlist.Builder
	pl         *nlist.PairList
	buildPos   []geom.Vec3
	buildEpoch uint64
	rebuilds   int64

	boundTo *System
	pairV   func(i, j int32, disp geom.Vec3, dist float64)
	tripV   func(atoms [3]int32, pos [3]geom.Vec3)

	acc   *kernel.Direct
	stats ComputeStats
}

// NewHybridEngine builds the engine; it rejects models outside the
// pair(+triplet) shape, mirroring the specialization of the production
// code the paper describes.
func NewHybridEngine(model *potential.Model, box geom.Box) (*HybridEngine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	e := &HybridEngine{model: model, acc: kernel.NewDirect()}
	for _, t := range model.Terms {
		switch t.N() {
		case 2:
			if e.pair != nil {
				return nil, fmt.Errorf("md: hybrid engine supports one pair term")
			}
			e.pair = t
		case 3:
			if e.triplet != nil {
				return nil, fmt.Errorf("md: hybrid engine supports one triplet term")
			}
			e.triplet = t
		default:
			return nil, fmt.Errorf("md: hybrid engine cannot handle n=%d terms", t.N())
		}
	}
	if e.pair == nil {
		return nil, fmt.Errorf("md: hybrid engine needs a pair term")
	}
	if e.triplet != nil && e.triplet.Cutoff() > e.pair.Cutoff() {
		return nil, fmt.Errorf("md: hybrid engine needs r_cut3 ≤ r_cut2 (have %g > %g)",
			e.triplet.Cutoff(), e.pair.Cutoff())
	}
	lat, err := cell.NewLattice(box, e.pair.Cutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	canon, err := cell.NewLattice(box, model.MaxCutoff())
	if err != nil {
		return nil, fmt.Errorf("md: %w", err)
	}
	e.canonLat = canon
	e.lat = lat
	e.bin = cell.NewBinning(lat, nil)
	return e, nil
}

// NewHybridEngineSkin builds a Hybrid engine whose Verlet list is
// built with cutoff r+skin and reused across steps until an atom has
// moved more than skin/2 — the standard production optimization over
// the paper's per-step rebuild. The skin must be positive and small
// enough that the skinned cutoff still fits the cell lattice
// (skin ≤ r/2 is always safe).
func NewHybridEngineSkin(model *potential.Model, box geom.Box, skin float64) (*HybridEngine, error) {
	if !(skin > 0) {
		return nil, fmt.Errorf("md: skin %g must be positive", skin)
	}
	e, err := NewHybridEngine(model, box)
	if err != nil {
		return nil, err
	}
	skinned := e.pair.Cutoff() + skin
	lat, err := cell.NewLattice(box, skinned)
	if err != nil {
		return nil, fmt.Errorf("md: skinned cutoff: %w", err)
	}
	if !lat.MinSpanOK(3) {
		return nil, fmt.Errorf("md: box too small for skinned cutoff %g", skinned)
	}
	e.lat = lat
	e.bin = cell.NewBinning(lat, nil)
	e.skin = skin
	return e, nil
}

// ListRebuilds returns how many times the Verlet list was rebuilt
// (always one per Compute when no skin is configured).
func (e *HybridEngine) ListRebuilds() int64 { return e.rebuilds }

// listIsStale reports whether the Verlet list must be rebuilt: the
// storage layout moved under it (slot indices would dangle), or some
// atom moved more than skin/2 since the build.
func (e *HybridEngine) listIsStale(sys *System) bool {
	if e.pl == nil || e.buildEpoch != sys.LayoutEpoch() || len(e.buildPos) != sys.N() {
		return true
	}
	limit2 := (e.skin / 2) * (e.skin / 2)
	for i, r := range sys.Pos {
		if sys.Box.Displacement(e.buildPos[i], r).Norm2() > limit2 {
			return true
		}
	}
	return false
}

// bind caches the builder (whose pattern generation is expensive) and
// the pair/triplet visitors for one System; they read species and
// positions through pointers and so survive re-sorts.
func (e *HybridEngine) bind(sys *System) error {
	if e.boundTo == sys {
		return nil
	}
	e.boundTo = sys
	b, err := nlist.NewBuilder(e.bin, e.pair.Cutoff()+e.skin, sys.ID)
	if err != nil {
		return err
	}
	e.builder = b
	e.pl = nil // slot indices of a previous system are meaningless
	slot := e.acc.Slot(0)
	pairK := kernel.TermKernel{Term: e.pair, Species: &sys.Species}
	e.pairV = pairK.PairVisitor(slot, &sys.Pos)
	if e.triplet != nil {
		tripK := kernel.TermKernel{Term: e.triplet, Species: &sys.Species}
		e.tripV = tripK.TripletVisitor(slot)
	}
	return nil
}

// Name implements Engine.
func (e *HybridEngine) Name() string { return "Hybrid-MD" }

// Compute implements Engine. Storage is sorted into the canonical
// layout at every list rebuild (every step without a skin); between
// skinned rebuilds the storage is left untouched so the list's slot
// indices stay valid, and pair/triplet streams are walked in global-ID
// row order so the accumulation order is independent of the layout.
func (e *HybridEngine) Compute(sys *System) (float64, error) {
	if sys.Model != e.model {
		return 0, fmt.Errorf("md: engine model %q does not match system model %q",
			e.model.Name, sys.Model.Name)
	}
	if err := e.bind(sys); err != nil {
		return 0, err
	}
	rebuild := e.skin == 0 || e.listIsStale(sys)
	if rebuild {
		sys.EnsureLayout(e.canonLat)
	}
	e.acc.Begin(sys.Force)
	slot := e.acc.Slot(0)

	if rebuild {
		e.bin.RebinKeyed(sys.Pos, sys.ID)
		fresh, err := e.builder.Build(sys.Pos)
		if err != nil {
			return 0, err
		}
		e.pl = fresh
		e.buildEpoch = sys.LayoutEpoch()
		e.rebuilds++
		slot.Enum.Candidates = fresh.BuildStats.Candidates
		slot.Enum.PathApplications = fresh.BuildStats.PathApplications
		if e.skin > 0 {
			e.buildPos = append(e.buildPos[:0], sys.Pos...)
		}
	} else {
		e.pl.Refresh(sys.Box, sys.Pos)
		slot.Enum.Candidates = int64(e.pl.NumEntries())
	}
	pl := e.pl
	slot.PairEntries = int64(pl.NumEntries())

	pl.VisitPairsOrdered(sys.SlotByID(), sys.ID, e.pairV)

	if e.triplet != nil {
		tst := pl.VisitTripletsOrdered(sys.SlotByID(), sys.Pos, e.triplet.Cutoff(), e.tripV)
		// The pruning scan and the neighbor-pair expansion are the
		// triplet search cost of Hybrid-MD.
		slot.Enum.Candidates += tst.ShortNeighbors + tst.PairsExamined
	}
	energy, stats := e.acc.End()
	e.stats = stats
	return energy, nil
}

// Stats implements Engine.
func (e *HybridEngine) Stats() ComputeStats { return e.stats }
