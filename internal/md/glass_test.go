package md

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/analysis"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestMeltQuenchSilicaGlass is the end-to-end physics integration
// test: melt a silica crystal with a thermostat, quench it, and check
// that the resulting structure is still silica-like — the Si-O bond
// survives, silicon stays (near-)tetrahedral, and the O-Si-O angle
// distribution peaks near 109°. This exercises the full stack
// (enumeration, Vashishta forces, integrator, thermostat, analysis)
// over a thousand steps.
func TestMeltQuenchSilicaGlass(t *testing.T) {
	if testing.Short() {
		t.Skip("melt-quench takes ~20 s")
	}
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(3, 3, 3)
	cfg.Thermalize(rand.New(rand.NewSource(81)), model, 300)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	// Melt at 4000 K…
	sim.Therm = &Berendsen{Target: 4000, Tau: 40}
	if err := sim.Run(400); err != nil {
		t.Fatal(err)
	}
	if sys.Temperature() < 2000 {
		t.Fatalf("melt failed: T = %.0f K", sys.Temperature())
	}
	// …then quench to 300 K.
	sim.Therm = &Berendsen{Target: 300, Tau: 30}
	if err := sim.Run(600); err != nil {
		t.Fatal(err)
	}
	if sys.Temperature() > 900 {
		t.Fatalf("quench failed: T = %.0f K", sys.Temperature())
	}

	// Structural integrity of the glass.
	gSiO, err := analysis.RDF(sys.Box, sys.Pos, sys.Species, 0, 1, 5.5, 110)
	if err != nil {
		t.Fatal(err)
	}
	if p := gSiO.FirstPeak(); math.Abs(p-1.62) > 0.25 {
		t.Errorf("Si-O bond peak at %.2f Å, want ≈ 1.6", p)
	}
	coord, err := analysis.Coordination(sys.Box, sys.Pos, sys.Species, 0, 1, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if coord < 3.3 || coord > 4.5 {
		t.Errorf("Si-O coordination %.2f, want ≈ 4 for a silica glass", coord)
	}
	ang, err := analysis.AngleDistribution(sys.Box, sys.Pos, sys.Species, 1, 0, 2.2, 36)
	if err != nil {
		t.Fatal(err)
	}
	if ang.Peak < 85 || ang.Peak > 135 {
		t.Errorf("O-Si-O angle peak %.0f°, want near tetrahedral", ang.Peak)
	}
	t.Logf("glass: Si-O peak %.2f Å, coordination %.2f, O-Si-O peak %.0f°",
		gSiO.FirstPeak(), coord, ang.Peak)
}
