package md

import (
	"runtime"
	"testing"

	"sctuple/internal/fixture"
	"sctuple/internal/geom"
	"sctuple/internal/potential"
)

const goldenSerialPath = "testdata/golden_serial.json.gz"

// gatherByID returns arr reordered from storage order into global
// atom-ID order, the layout-independent identity under which golden
// fixtures pin bit-exact values.
func gatherByID(ids []int64, arr []geom.Vec3) []geom.Vec3 {
	out := make([]geom.Vec3, len(arr))
	for slot, id := range ids {
		out[id] = arr[slot]
	}
	return out
}

// goldenEngines enumerates the serial engines pinned by the fixture.
func goldenEngines(t *testing.T, model *potential.Model, box geom.Box) map[string]Engine {
	t.Helper()
	sc, err := NewCellEngine(model, box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewCellEngine(model, box, FamilyFS)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := NewHybridEngine(model, box)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHybridEngineSkin(model, box, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Engine{"sc": sc, "fs": fs, "hybrid": hy, "hybrid-skin": hs}
}

// TestGoldenSerialBitIdentity pins the serial engines bit-for-bit
// against fixtures captured from the pre-refactor (unsorted, ID-order)
// storage layout: 6 velocity-Verlet steps of thermalized crystalline
// silica, with the initial and per-step potential energies and the
// final forces and positions compared as raw IEEE-754 bit patterns in
// atom-ID order. Regenerate with GOLDEN_UPDATE=1 (amd64 only — other
// architectures may contract FMAs differently and are skipped).
func TestGoldenSerialBitIdentity(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("bit-exact fixtures are pinned on amd64; GOARCH=%s", runtime.GOARCH)
	}
	const (
		dt    = 0.5
		steps = 6
	)
	got := fixture.Set{}
	sysProbe := silicaSystem(t, 4, 300, 1)
	for name := range goldenEngines(t, sysProbe.Model, sysProbe.Box) {
		sys := silicaSystem(t, 4, 300, 1)
		engine := goldenEngines(t, sys.Model, sys.Box)[name]
		sim, err := NewSim(sys, engine, dt)
		if err != nil {
			t.Fatal(err)
		}
		rec := fixture.Record{PE: fixture.Bits(sim.PotentialEnergy())}
		for s := 0; s < steps; s++ {
			if err := sim.Step(); err != nil {
				t.Fatalf("%s step %d: %v", name, s, err)
			}
			rec.Energies = append(rec.Energies, fixture.Bits(sim.PotentialEnergy()))
		}
		rec.Forces = fixture.PackVec3(gatherByID(sys.ID, sys.Force))
		rec.Pos = fixture.PackVec3(gatherByID(sys.ID, sys.Pos))
		got[name] = rec
	}

	if fixture.Update() {
		if err := fixture.Save(goldenSerialPath, got); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenSerialPath)
		return
	}
	want, err := fixture.Load(goldenSerialPath)
	if err != nil {
		t.Fatalf("load golden (run with GOLDEN_UPDATE=1 to capture): %v", err)
	}
	for name, rec := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden record", name)
			continue
		}
		if err := fixture.Diff(w, rec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
