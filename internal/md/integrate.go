package md

import (
	"fmt"
	"math"

	"sctuple/internal/obs"
)

// Thermostat rescales velocities after each step. Implementations must
// be cheap; they run once per step.
type Thermostat interface {
	// Apply adjusts velocities given the step size in fs.
	Apply(sys *System, dt float64)
}

// Berendsen is the Berendsen weak-coupling thermostat: velocities are
// scaled by √(1 + dt/τ·(T₀/T − 1)) each step, relaxing the kinetic
// temperature toward Target with time constant Tau.
type Berendsen struct {
	Target float64 // K
	Tau    float64 // fs
}

// Apply implements Thermostat.
func (b *Berendsen) Apply(sys *System, dt float64) {
	t := sys.Temperature()
	if t <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dt/b.Tau*(b.Target/t-1))
	// Clamp to keep a cold or pathological start from exploding.
	if lambda > 1.25 {
		lambda = 1.25
	} else if lambda < 0.8 {
		lambda = 0.8
	}
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Scale(lambda)
	}
}

// Sim couples a System to a force Engine and integrates Newton's
// equations (Eq. 1) with the velocity-Verlet scheme. Construct with
// NewSim, which performs the initial force evaluation.
type Sim struct {
	Sys    *System
	Engine Engine
	Dt     float64 // fs
	Therm  Thermostat
	// Log receives structured integrator events (currently a warning
	// when a force evaluation returns a non-finite potential — the
	// first visible sign of a blown-up integration). nil disables it.
	Log *obs.Logger

	potential float64
	steps     int
	stats     ComputeStats
}

// NewSim builds a simulation and computes initial forces.
func NewSim(sys *System, engine Engine, dt float64) (*Sim, error) {
	if !(dt > 0) {
		return nil, fmt.Errorf("md: time step %g must be positive", dt)
	}
	s := &Sim{Sys: sys, Engine: engine, Dt: dt}
	pe, err := engine.Compute(sys)
	if err != nil {
		return nil, err
	}
	s.potential = pe
	s.stats = engine.Stats()
	return s, nil
}

// Step advances one velocity-Verlet step:
//
//	v ← v + a·dt/2 ; x ← x + v·dt (wrapped) ; recompute F ; v ← v + a·dt/2.
func (s *Sim) Step() error {
	sys := s.Sys
	half := 0.5 * s.Dt * ForceToAccel
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Force[i].Scale(half / sys.mass[i]))
	}
	for i := range sys.Pos {
		sys.Pos[i] = sys.Box.Wrap(sys.Pos[i].Add(sys.Vel[i].Scale(s.Dt)))
	}
	pe, err := s.Engine.Compute(sys)
	if err != nil {
		return err
	}
	if math.IsNaN(pe) || math.IsInf(pe, 0) {
		s.Log.Warn("non-finite potential energy", "step", s.steps+1, "pe", pe)
	}
	s.potential = pe
	s.stats.Add(s.Engine.Stats())
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Force[i].Scale(half / sys.mass[i]))
	}
	if s.Therm != nil {
		s.Therm.Apply(sys, s.Dt)
	}
	s.steps++
	return nil
}

// Run advances n steps.
func (s *Sim) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("md: step %d: %w", s.steps+1, err)
		}
	}
	return nil
}

// PotentialEnergy returns the potential energy of the last force
// evaluation (eV).
func (s *Sim) PotentialEnergy() float64 { return s.potential }

// TotalEnergy returns kinetic + potential energy (eV).
func (s *Sim) TotalEnergy() float64 { return s.potential + s.Sys.KineticEnergy() }

// Steps returns the number of completed steps.
func (s *Sim) Steps() int { return s.steps }

// CumulativeStats returns the operation counts accumulated over all
// force evaluations so far (including the initial one).
func (s *Sim) CumulativeStats() ComputeStats { return s.stats }
