package md

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// silicaSystem builds a small crystalline silica system.
func silicaSystem(t *testing.T, cells int, tempK float64, seed int64) *System {
	t.Helper()
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(cells, cells, cells)
	if tempK > 0 {
		cfg.Thermalize(rand.New(rand.NewSource(seed)), model, tempK)
	}
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func ljSystem(t *testing.T, n int, tempK float64, seed int64) (*System, *potential.Model) {
	t.Helper()
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948) // argon
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.LJFluid(rng, n, 0.55, 3.4)
	if tempK > 0 {
		cfg.Thermalize(rng, model, tempK)
	}
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	return sys, model
}

// TestEnginesAgreeOnSilica is the central integration test: the three
// engines of the paper's §5 benchmark must produce identical energies
// and forces on the silica workload.
func TestEnginesAgreeOnSilica(t *testing.T) {
	sys := silicaSystem(t, 4, 300, 1)
	model := sys.Model

	sc, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewCellEngine(model, sys.Box, FamilyFS)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := NewHybridEngine(model, sys.Box)
	if err != nil {
		t.Fatal(err)
	}

	eSC, err := sc.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	fSC := append([]geom.Vec3(nil), sys.Force...)

	eFS, err := fs.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	fFS := append([]geom.Vec3(nil), sys.Force...)

	eHY, err := hy.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	fHY := append([]geom.Vec3(nil), sys.Force...)

	if math.Abs(eSC-eFS) > 1e-8*math.Abs(eSC) {
		t.Errorf("SC energy %.10g != FS energy %.10g", eSC, eFS)
	}
	if math.Abs(eSC-eHY) > 1e-8*math.Abs(eSC) {
		t.Errorf("SC energy %.10g != Hybrid energy %.10g", eSC, eHY)
	}
	for i := range fSC {
		if fSC[i].Sub(fFS[i]).Norm() > 1e-9 {
			t.Fatalf("atom %d: SC force %v != FS force %v", i, fSC[i], fFS[i])
		}
		if fSC[i].Sub(fHY[i]).Norm() > 1e-9 {
			t.Fatalf("atom %d: SC force %v != Hybrid force %v", i, fSC[i], fHY[i])
		}
	}

	// Tuple counts must agree term by term.
	if sc.Stats().TermTuples[2] != hy.Stats().TermTuples[2] ||
		sc.Stats().TermTuples[3] != hy.Stats().TermTuples[3] {
		t.Errorf("tuple counts differ: SC %v, Hybrid %v", sc.Stats().TermTuples, hy.Stats().TermTuples)
	}
	// FS must search roughly twice as hard as SC for the same answer.
	r := float64(fs.Stats().SearchCandidates) / float64(sc.Stats().SearchCandidates)
	if r < 1.5 || r > 2.3 {
		t.Errorf("FS/SC search-candidate ratio %g, want ≈ 2", r)
	}
}

// TestEnginesAgreeAfterDynamics: agreement must persist after real
// dynamics moved atoms across cell and boundary lines.
func TestEnginesAgreeAfterDynamics(t *testing.T) {
	sys := silicaSystem(t, 3, 600, 2)
	model := sys.Model
	sc, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, sc, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(25); err != nil {
		t.Fatal(err)
	}

	eSC, err := sc.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	fSC := append([]geom.Vec3(nil), sys.Force...)
	hy, err := NewHybridEngine(model, sys.Box)
	if err != nil {
		t.Fatal(err)
	}
	eHY, err := hy.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eSC-eHY) > 1e-8*math.Abs(eSC)+1e-12 {
		t.Errorf("after dynamics: SC %.10g != Hybrid %.10g", eSC, eHY)
	}
	for i := range fSC {
		if fSC[i].Sub(sys.Force[i]).Norm() > 1e-9 {
			t.Fatalf("after dynamics: atom %d force mismatch", i)
		}
	}
}

// TestNVEEnergyConservation: a microcanonical run must conserve total
// energy to high relative accuracy.
func TestNVEEnergyConservation(t *testing.T) {
	sys, _ := ljSystem(t, 343, 120, 3)
	engine, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	ke0 := sys.KineticEnergy()
	if err := sim.Run(200); err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(sim.TotalEnergy() - e0)
	if drift > 0.01*ke0 {
		t.Errorf("energy drift %g eV over 200 steps (KE₀ = %g eV)", drift, ke0)
	}
}

// TestNVEEnergyConservationSilica: the stiff many-body silica model
// with a smaller time step.
func TestNVEEnergyConservationSilica(t *testing.T) {
	sys := silicaSystem(t, 3, 300, 4)
	engine, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	ke0 := sys.KineticEnergy()
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(sim.TotalEnergy() - e0)
	if drift > 0.02*ke0 {
		t.Errorf("silica energy drift %g eV over 100 steps (KE₀ = %g eV)", drift, ke0)
	}
}

// TestMomentumConservation: Newton's third law at system level.
func TestMomentumConservation(t *testing.T) {
	sys := silicaSystem(t, 3, 400, 5)
	engine, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p0 := sys.Momentum()
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	if drift := sys.Momentum().Sub(p0).Norm(); drift > 1e-9 {
		t.Errorf("momentum drift %g", drift)
	}
	// Net force must vanish.
	var f geom.Vec3
	for _, fi := range sys.Force {
		f = f.Add(fi)
	}
	if f.Norm() > 1e-9 {
		t.Errorf("net force %v", f)
	}
}

// TestBerendsenThermostat drives the system toward the target
// temperature.
func TestBerendsenThermostat(t *testing.T) {
	sys, _ := ljSystem(t, 343, 40, 6)
	engine, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Therm = &Berendsen{Target: 120, Tau: 50}
	if err := sim.Run(400); err != nil {
		t.Fatal(err)
	}
	if tK := sys.Temperature(); math.Abs(tK-120) > 30 {
		t.Errorf("temperature %g K after thermostatting to 120 K", tK)
	}
}

// TestTorsionModelRuns: an n = 4 model must integrate stably through
// the SC(4) pattern.
func TestTorsionModelRuns(t *testing.T) {
	// Small σ and a low density keep the SC(4) enumeration (9855
	// paths) affordable in a unit test.
	model := potential.NewTorsionModel(0.05, 1.8, 0.02, 1.0, 2.5, 12.0)
	rng := rand.New(rand.NewSource(7))
	cfg := workload.LJFluid(rng, 200, 0.2, 1.0)
	cfg.Thermalize(rng, model, 60)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sim.TotalEnergy()) {
		t.Fatal("NaN energy")
	}
	if drift := math.Abs(sim.TotalEnergy() - e0); drift > 0.05*math.Abs(e0)+0.5 {
		t.Errorf("torsion model energy drift %g (E₀ = %g)", drift, e0)
	}
}

// TestHybridEngineRestrictions: shape validation.
func TestHybridEngineRestrictions(t *testing.T) {
	box := geom.NewCubicBox(30)
	tor := potential.NewTorsionModel(0.05, 2.0, 1.0, 1.0, 2.5, 12)
	if _, err := NewHybridEngine(tor, box); err == nil {
		t.Error("hybrid engine accepted an n=4 model")
	}
	if _, err := NewHybridEngine(potential.NewSilicaModel(), box); err != nil {
		t.Errorf("hybrid engine rejected silica: %v", err)
	}
}

// TestNewSystemValidation.
func TestNewSystemValidation(t *testing.T) {
	model := potential.NewLJModel(1, 1, 2.5, 1)
	cfg := &workload.Config{
		Box:     geom.NewCubicBox(10),
		Pos:     []geom.Vec3{geom.V(1, 1, 1)},
		Species: []int32{5}, // out of range
		Vel:     []geom.Vec3{{}},
	}
	if _, err := NewSystem(cfg, model); err == nil {
		t.Error("out-of-range species accepted")
	}
}

// TestKineticTemperature: Maxwell-Boltzmann initialization lands near
// the requested temperature for a reasonably large system.
func TestKineticTemperature(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(3, 3, 3)
	cfg.Thermalize(rand.New(rand.NewSource(8)), model, 500)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if tK := sys.Temperature(); math.Abs(tK-500) > 50 {
		t.Errorf("initialized temperature %g K, want ≈ 500", tK)
	}
	if p := sys.Momentum().Norm(); p > 1e-9 {
		t.Errorf("net momentum %g after thermalization", p)
	}
}

// TestSimValidation.
func TestSimValidation(t *testing.T) {
	sys, _ := ljSystem(t, 343, 0, 9)
	engine, _ := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if _, err := NewSim(sys, engine, 0); err == nil {
		t.Error("zero time step accepted")
	}
	if _, err := NewSim(sys, engine, -1); err == nil {
		t.Error("negative time step accepted")
	}
}

// TestEngineModelMismatch.
func TestEngineModelMismatch(t *testing.T) {
	sys, _ := ljSystem(t, 343, 0, 10)
	other := potential.NewLJModel(1, 1, 2.5, 1)
	engine, err := NewCellEngine(other, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Compute(sys); err == nil {
		t.Error("model mismatch accepted")
	}
}

// TestCumulativeStatsGrow.
func TestCumulativeStatsGrow(t *testing.T) {
	sys, _ := ljSystem(t, 343, 60, 11)
	engine, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, engine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s0 := sim.CumulativeStats()
	if err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	s1 := sim.CumulativeStats()
	if s1.SearchCandidates <= s0.SearchCandidates || s1.TuplesEvaluated <= s0.TuplesEvaluated {
		t.Error("cumulative stats did not grow")
	}
}
