package md

import (
	"math"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
)

// TestMidpointEngineMatchesStandard: the §6 midpoint mode (cells of
// cutoff/k, radius-k SC patterns) must produce identical energies and
// forces to the standard engine.
func TestMidpointEngineMatchesStandard(t *testing.T) {
	sys := silicaSystem(t, 3, 300, 61)
	std, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	wantPE, err := std.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	wantF := append([]geom.Vec3(nil), sys.Force...)
	wantStats := std.Stats()

	mid, err := NewCellEngineRadius(sys.Model, sys.Box, FamilySC, 2)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := mid.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe-wantPE) > 1e-9*math.Abs(wantPE) {
		t.Errorf("midpoint PE %.12g, standard %.12g", pe, wantPE)
	}
	for i := range wantF {
		if d := sys.Force[i].Sub(wantF[i]).Norm(); d > 1e-9 {
			t.Fatalf("atom %d force differs by %g", i, d)
		}
	}
	// Same physics, fewer distance rejections per tuple.
	st := mid.Stats()
	if st.TuplesEvaluated != wantStats.TuplesEvaluated {
		t.Errorf("tuple counts differ: midpoint %d, standard %d",
			st.TuplesEvaluated, wantStats.TuplesEvaluated)
	}
	coarse := float64(wantStats.SearchCandidates) / float64(wantStats.TuplesEvaluated)
	fine := float64(st.SearchCandidates) / float64(st.TuplesEvaluated)
	if !(fine < coarse) {
		t.Errorf("midpoint not tighter: %.2f vs %.2f candidates/tuple", fine, coarse)
	}
	t.Logf("candidates per tuple: k=1 %.2f, k=2 %.2f", coarse, fine)
}

// TestMidpointEngineK1EqualsStandard: k = 1 is exactly the standard
// construction.
func TestMidpointEngineK1EqualsStandard(t *testing.T) {
	sys := silicaSystem(t, 3, 0, 62)
	std, err := NewCellEngine(sys.Model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := NewCellEngineRadius(sys.Model, sys.Box, FamilySC, 1)
	if err != nil {
		t.Fatal(err)
	}
	peStd, _ := std.Compute(sys)
	stStd := std.Stats()
	peMid, _ := mid.Compute(sys)
	stMid := mid.Stats()
	if peStd != peMid || stStd.SearchCandidates != stMid.SearchCandidates {
		t.Errorf("k=1 differs from standard: PE %v/%v candidates %d/%d",
			peStd, peMid, stStd.SearchCandidates, stMid.SearchCandidates)
	}
}

// TestMidpointEngineDynamics: a short NVE run through the midpoint
// engine conserves energy.
func TestMidpointEngineDynamics(t *testing.T) {
	// A 2×2×2 crystal is too small for the standard 5.5 Å pair lattice
	// but fine for the k = 2 midpoint lattice — itself a point of the
	// §6 generalization (finer cells relax the box-size floor).
	sys := silicaSystem(t, 2, 300, 63)
	mid, err := NewCellEngineRadius(sys.Model, sys.Box, FamilySC, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(sys, mid, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergy()
	ke0 := sys.KineticEnergy()
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(sim.TotalEnergy() - e0); drift > 0.02*ke0 {
		t.Errorf("energy drift %g eV", drift)
	}
}

// TestMidpointEngineValidation.
func TestMidpointEngineValidation(t *testing.T) {
	model := potential.NewSilicaModel()
	box := geom.NewCubicBox(30)
	if _, err := NewCellEngineRadius(model, box, FamilySC, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
