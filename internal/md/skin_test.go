package md

import (
	"math"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestSkinnedHybridMatchesPlain: the skinned engine must produce the
// same energies and forces as the per-step-rebuild engine at every
// step of a trajectory, while rebuilding its list far less often.
func TestSkinnedHybridMatchesPlain(t *testing.T) {
	sysA := silicaSystem(t, 3, 600, 41)
	sysB := silicaSystem(t, 3, 600, 41) // identical twin

	plain, err := NewHybridEngine(sysA.Model, sysA.Box)
	if err != nil {
		t.Fatal(err)
	}
	skinned, err := NewHybridEngineSkin(sysB.Model, sysB.Box, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	simA, err := NewSim(sysA, plain, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSim(sysB, skinned, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	for s := 0; s < steps; s++ {
		if err := simA.Step(); err != nil {
			t.Fatal(err)
		}
		if err := simB.Step(); err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(simA.PotentialEnergy() - simB.PotentialEnergy()); d > 1e-8 {
			t.Fatalf("step %d: PE differs by %g", s, d)
		}
	}
	// The skinned engine re-sorts storage only at rebuild steps, so the
	// two systems may hold atoms in different slots; compare by ID.
	fa := sysA.GatherByID(nil, sysA.Force)
	fb := sysB.GatherByID(nil, sysB.Force)
	for i := range fa {
		if d := fa[i].Sub(fb[i]).Norm(); d > 1e-8 {
			t.Fatalf("atom %d: force differs by %g", i, d)
		}
	}
	if skinned.ListRebuilds() >= steps {
		t.Errorf("skinned engine rebuilt %d times over %d steps — no reuse", skinned.ListRebuilds(), steps)
	}
	if plain.ListRebuilds() != steps+1 {
		t.Errorf("plain engine rebuilt %d times, want %d", plain.ListRebuilds(), steps+1)
	}
	t.Logf("skinned rebuilds: %d / %d force evaluations", skinned.ListRebuilds(), steps+1)
}

// TestSkinnedHybridWrapsCorrectly: refreshes must stay exact when
// atoms wrap across the periodic boundary between rebuilds.
func TestSkinnedHybridWrapsCorrectly(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	// Two atoms straddling the boundary, one drifting across it.
	cfg := ljConfigTwoAtoms(t, model)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	skinned, err := NewHybridEngineSkin(model, sys.Box, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pe0, err := skinned.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Move atom 0 across the boundary by a tiny wrap-inducing amount
	// (< skin/2 so the list is reused) and verify against a fresh
	// engine.
	sys.Pos[0] = sys.Box.Wrap(sys.Pos[0].Add(geom.V(0.3, 0, 0)))
	peSkin, err := skinned.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	if skinned.ListRebuilds() != 1 {
		t.Fatalf("list rebuilt %d times; wrap test needs reuse", skinned.ListRebuilds())
	}
	fresh, err := NewHybridEngine(model, sys.Box)
	if err != nil {
		t.Fatal(err)
	}
	peFresh, err := fresh.Compute(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peSkin-peFresh) > 1e-12 {
		t.Errorf("skinned PE %g != fresh PE %g after boundary wrap (pe0 %g)", peSkin, peFresh, pe0)
	}
}

// ljConfigTwoAtoms builds a two-atom configuration near the periodic
// boundary of a box comfortably larger than the skinned cutoff.
func ljConfigTwoAtoms(t *testing.T, _ *potential.Model) *workload.Config {
	t.Helper()
	return &workload.Config{
		Box:     geom.NewCubicBox(30),
		Pos:     []geom.Vec3{geom.V(29.8, 15, 15), geom.V(3.0, 15, 15)},
		Species: []int32{0, 0},
		Vel:     make([]geom.Vec3, 2),
	}
}

// TestSkinValidation.
func TestSkinValidation(t *testing.T) {
	model := potential.NewSilicaModel()
	box := geom.NewCubicBox(30)
	if _, err := NewHybridEngineSkin(model, box, 0); err == nil {
		t.Error("zero skin accepted")
	}
	if _, err := NewHybridEngineSkin(model, box, -1); err == nil {
		t.Error("negative skin accepted")
	}
	// Skinned cutoff 5.5+6 = 11.5 does not fit 3 cells in a 30 Å box.
	if _, err := NewHybridEngineSkin(model, box, 6); err == nil {
		t.Error("oversized skin accepted")
	}
}
