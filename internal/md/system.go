// Package md implements the serial molecular-dynamics engine: the
// simulation state, velocity-Verlet integration of Eq. 1, and the
// force engines that realize the paper's three codes —
//
//   - SC engine: cell-based n-tuple search with the shift-collapse
//     pattern (the paper's SC-MD),
//   - FS engine: the same search with the uncollapsed full-shell
//     pattern (FS-MD),
//   - Hybrid engine: a full-shell pair search building a Verlet
//     neighbor list, with triplets pruned from the list (Hybrid-MD).
//
// All three engines produce identical forces; they differ in search
// cost and (in parallel, package parmd) in import volume — the paper's
// central trade-off.
//
// Units: Å, fs, eV, amu. The conversion constant ForceToAccel maps
// eV/Å/amu to Å/fs².
package md

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Physical constants.
const (
	// ForceToAccel converts force/mass (eV/Å/amu) to acceleration (Å/fs²).
	ForceToAccel = 9.648533212e-3
	// KB is Boltzmann's constant in eV/K.
	KB = 8.617333262e-5
)

// System is the mutable simulation state. Atom arrays are stored in
// an engine-chosen storage order (the cell-sorted canonical layout
// once an engine has adopted the system); ID maps each storage slot to
// the atom's immutable global identity — its index in the originating
// workload.Config — and is the key under which trajectories, golden
// fixtures, and any cross-run comparison address atoms.
type System struct {
	Box     geom.Box
	Pos     []geom.Vec3
	Vel     []geom.Vec3
	Force   []geom.Vec3
	Species []int32
	ID      []int64
	Model   *potential.Model

	mass []float64 // per-atom mass cache

	// Canonical-layout state. Engines call EnsureLayout to sort the
	// atom arrays into (cell, ID) order over the model's MaxCutoff
	// lattice; slotOf inverts ID to the current storage slot, epoch
	// counts re-sorts (consumers holding slot-indexed caches — the
	// Hybrid Verlet list — invalidate on a change), and the rest is
	// reusable sort scratch so steady-state steps allocate nothing.
	slotOf   []int32
	epoch    uint64
	cells    []int32 // canonical cell of each storage slot
	sorter   cell.Sorter
	scratchV []geom.Vec3
	scratchS []int32
	scratchI []int64
	scratchM []float64
}

// NewSystem builds a System from a workload configuration and a model.
func NewSystem(cfg *workload.Config, model *potential.Model) (*System, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := int32(len(model.Species))
	for i, s := range cfg.Species {
		if s < 0 || s >= ns {
			return nil, fmt.Errorf("md: atom %d species %d out of range for model %q", i, s, model.Name)
		}
	}
	sys := &System{
		Box:     cfg.Box,
		Pos:     append([]geom.Vec3(nil), cfg.Pos...),
		Vel:     append([]geom.Vec3(nil), cfg.Vel...),
		Force:   make([]geom.Vec3, len(cfg.Pos)),
		Species: append([]int32(nil), cfg.Species...),
		ID:      make([]int64, len(cfg.Pos)),
		Model:   model,
	}
	sys.slotOf = make([]int32, len(cfg.Pos))
	for i := range sys.ID {
		sys.ID[i] = int64(i)
		sys.slotOf[i] = int32(i)
	}
	sys.mass = make([]float64, len(sys.Pos))
	for i, s := range sys.Species {
		sys.mass[i] = model.Species[s].Mass
	}
	return sys, nil
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Pos) }

// EnsureLayout brings the atom arrays into canonical (cell, global-ID)
// order over the given lattice — atoms of one cell contiguous in
// storage, ordered by cell linear index, ties broken by ID. The layout
// is a pure function of positions and identities, so every engine
// sharing the same lattice sees the same storage order, and the
// enumeration (hence floating-point accumulation) order is independent
// of how atoms arrived. Returns whether storage actually moved; the
// common solid-state case is an O(n) already-ordered check. All sort
// scratch is reused — steady-state calls allocate nothing.
func (s *System) EnsureLayout(lat cell.Lattice) bool {
	n := s.N()
	if cap(s.cells) < n {
		s.cells = make([]int32, n)
	}
	s.cells = s.cells[:n]
	for i, r := range s.Pos {
		s.cells[i] = int32(lat.Linear(lat.CellOf(r)))
	}
	if cell.Ordered(s.cells, s.ID) {
		return false
	}
	perm := s.sorter.Plan(lat.NumCells(), s.cells, s.ID)
	permuteInPlace(&s.scratchV, s.Pos, perm)
	permuteInPlace(&s.scratchV, s.Vel, perm)
	permuteInPlace(&s.scratchV, s.Force, perm)
	permuteInPlace(&s.scratchS, s.Species, perm)
	permuteInPlace(&s.scratchS, s.cells, perm)
	permuteInPlace(&s.scratchI, s.ID, perm)
	permuteInPlace(&s.scratchM, s.mass, perm)
	for slot, id := range s.ID {
		s.slotOf[id] = int32(slot)
	}
	s.epoch++
	return true
}

// permuteInPlace gathers arr through perm using caller-held scratch,
// keeping arr's backing array stable so slice headers captured by
// persistent visitors stay valid.
func permuteInPlace[T any](scratch *[]T, arr []T, perm []int32) {
	if cap(*scratch) < len(arr) {
		*scratch = make([]T, len(arr))
	}
	sc := (*scratch)[:len(arr)]
	copy(sc, arr)
	cell.Permute(arr, sc, perm)
}

// LayoutEpoch counts completed re-sorts. A consumer holding
// slot-indexed state (the Hybrid engine's Verlet list) records the
// epoch at build time and rebuilds when it changes.
func (s *System) LayoutEpoch() uint64 { return s.epoch }

// CanonicalCells returns the canonical cell index of every storage
// slot as computed by the last EnsureLayout call. The slice aliases
// internal state; do not modify.
func (s *System) CanonicalCells() []int32 { return s.cells }

// SlotByID returns the storage slot of every global atom ID —
// both the identity map for trajectory output and the row order that
// walks slot-indexed structures in ID order. Aliases internal state.
func (s *System) SlotByID() []int32 { return s.slotOf }

// GatherByID fills dst (grown as needed) with src reordered from
// storage order into global-ID order and returns it.
func (s *System) GatherByID(dst []geom.Vec3, src []geom.Vec3) []geom.Vec3 {
	if cap(dst) < len(src) {
		dst = make([]geom.Vec3, len(src))
	}
	dst = dst[:len(src)]
	for slot, id := range s.ID {
		dst[id] = src[slot]
	}
	return dst
}

// Mass returns the mass of atom i.
func (s *System) Mass(i int) float64 { return s.mass[i] }

// KineticEnergy returns Σ ½mv² in eV.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i, v := range s.Vel {
		ke += 0.5 * s.mass[i] * v.Norm2()
	}
	return ke / ForceToAccel
}

// Temperature returns the instantaneous kinetic temperature in K.
func (s *System) Temperature() float64 {
	if len(s.Pos) == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(len(s.Pos)) * KB)
}

// Momentum returns the total momentum Σmv (amu·Å/fs).
func (s *System) Momentum() geom.Vec3 {
	var p geom.Vec3
	for i, v := range s.Vel {
		p = p.Add(v.Scale(s.mass[i]))
	}
	return p
}

// ZeroForces clears the force array.
func (s *System) ZeroForces() {
	for i := range s.Force {
		s.Force[i] = geom.Vec3{}
	}
}

// ComputeStats aggregates the per-step operation counts of a force
// engine. It lives in package kernel (the unified force-evaluation
// layer, which owns all accumulation); the alias keeps the md API
// unchanged.
type ComputeStats = kernel.ComputeStats

// Pressure returns the instantaneous pressure of the system given the
// virial W from the last force evaluation: P = (2·KE + W)/(3V), in
// eV/Å³ (multiply by 160.2176 for GPa).
func (s *System) Pressure(virial float64) float64 {
	return (2*s.KineticEnergy() + virial) / (3 * s.Box.Volume())
}

// EVPerCubicAngstromToGPa converts pressure units.
const EVPerCubicAngstromToGPa = 160.2176621

// Engine computes forces and potential energy for a System.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Compute fills sys.Force with the current forces and returns the
	// potential energy.
	Compute(sys *System) (float64, error)
	// Stats returns the operation counts of the last Compute call.
	Stats() ComputeStats
}
