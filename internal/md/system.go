// Package md implements the serial molecular-dynamics engine: the
// simulation state, velocity-Verlet integration of Eq. 1, and the
// force engines that realize the paper's three codes —
//
//   - SC engine: cell-based n-tuple search with the shift-collapse
//     pattern (the paper's SC-MD),
//   - FS engine: the same search with the uncollapsed full-shell
//     pattern (FS-MD),
//   - Hybrid engine: a full-shell pair search building a Verlet
//     neighbor list, with triplets pruned from the list (Hybrid-MD).
//
// All three engines produce identical forces; they differ in search
// cost and (in parallel, package parmd) in import volume — the paper's
// central trade-off.
//
// Units: Å, fs, eV, amu. The conversion constant ForceToAccel maps
// eV/Å/amu to Å/fs².
package md

import (
	"fmt"

	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Physical constants.
const (
	// ForceToAccel converts force/mass (eV/Å/amu) to acceleration (Å/fs²).
	ForceToAccel = 9.648533212e-3
	// KB is Boltzmann's constant in eV/K.
	KB = 8.617333262e-5
)

// System is the mutable simulation state.
type System struct {
	Box     geom.Box
	Pos     []geom.Vec3
	Vel     []geom.Vec3
	Force   []geom.Vec3
	Species []int32
	Model   *potential.Model

	mass []float64 // per-atom mass cache
}

// NewSystem builds a System from a workload configuration and a model.
func NewSystem(cfg *workload.Config, model *potential.Model) (*System, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := int32(len(model.Species))
	for i, s := range cfg.Species {
		if s < 0 || s >= ns {
			return nil, fmt.Errorf("md: atom %d species %d out of range for model %q", i, s, model.Name)
		}
	}
	sys := &System{
		Box:     cfg.Box,
		Pos:     append([]geom.Vec3(nil), cfg.Pos...),
		Vel:     append([]geom.Vec3(nil), cfg.Vel...),
		Force:   make([]geom.Vec3, len(cfg.Pos)),
		Species: append([]int32(nil), cfg.Species...),
		Model:   model,
	}
	sys.mass = make([]float64, len(sys.Pos))
	for i, s := range sys.Species {
		sys.mass[i] = model.Species[s].Mass
	}
	return sys, nil
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Pos) }

// Mass returns the mass of atom i.
func (s *System) Mass(i int) float64 { return s.mass[i] }

// KineticEnergy returns Σ ½mv² in eV.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i, v := range s.Vel {
		ke += 0.5 * s.mass[i] * v.Norm2()
	}
	return ke / ForceToAccel
}

// Temperature returns the instantaneous kinetic temperature in K.
func (s *System) Temperature() float64 {
	if len(s.Pos) == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(len(s.Pos)) * KB)
}

// Momentum returns the total momentum Σmv (amu·Å/fs).
func (s *System) Momentum() geom.Vec3 {
	var p geom.Vec3
	for i, v := range s.Vel {
		p = p.Add(v.Scale(s.mass[i]))
	}
	return p
}

// ZeroForces clears the force array.
func (s *System) ZeroForces() {
	for i := range s.Force {
		s.Force[i] = geom.Vec3{}
	}
}

// ComputeStats aggregates the per-step operation counts of a force
// engine. It lives in package kernel (the unified force-evaluation
// layer, which owns all accumulation); the alias keeps the md API
// unchanged.
type ComputeStats = kernel.ComputeStats

// Pressure returns the instantaneous pressure of the system given the
// virial W from the last force evaluation: P = (2·KE + W)/(3V), in
// eV/Å³ (multiply by 160.2176 for GPa).
func (s *System) Pressure(virial float64) float64 {
	return (2*s.KineticEnergy() + virial) / (3 * s.Box.Volume())
}

// EVPerCubicAngstromToGPa converts pressure units.
const EVPerCubicAngstromToGPa = 160.2176621

// Engine computes forces and potential energy for a System.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Compute fills sys.Force with the current forces and returns the
	// potential energy.
	Compute(sys *System) (float64, error)
	// Stats returns the operation counts of the last Compute call.
	Stats() ComputeStats
}
