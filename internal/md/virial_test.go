package md

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestVirialConsistentAcrossEngines: all engines must report the same
// virial, since it is a pure function of the force set.
func TestVirialConsistentAcrossEngines(t *testing.T) {
	sys := silicaSystem(t, 4, 300, 71)
	model := sys.Model
	var virials []float64
	sc, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := NewHybridEngine(model, sys.Box)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewConcurrentCellEngine(model, sys.Box, FamilySC, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{sc, hy, conc} {
		if _, err := e.Compute(sys); err != nil {
			t.Fatal(err)
		}
		virials = append(virials, e.Stats().Virial)
	}
	for i := 1; i < len(virials); i++ {
		if math.Abs(virials[i]-virials[0]) > 1e-7*(1+math.Abs(virials[0])) {
			t.Errorf("virial %d = %.10g differs from %.10g", i, virials[i], virials[0])
		}
	}
}

// TestVirialMatchesVolumeDerivative: the virial theorem identity
// W = -3V·dU/dV, checked by uniformly rescaling an LJ fluid.
func TestVirialMatchesVolumeDerivative(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	rng := rand.New(rand.NewSource(72))
	cfg := workload.LJFluid(rng, 343, 0.7, 3.4)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Compute(sys); err != nil {
		t.Fatal(err)
	}
	virial := engine.Stats().Virial

	// Numerical dU/dV by symmetric scaling of box and positions. The
	// scaled engine needs its own lattice over the scaled box.
	eps := 1e-5
	up, err := scaledEnergy(cfg, model, 1+eps)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := scaledEnergy(cfg, model, 1-eps)
	if err != nil {
		t.Fatal(err)
	}
	v0 := cfg.Box.Volume()
	dUdV := (up - dn) / (v0 * (math.Pow(1+eps, 3) - math.Pow(1-eps, 3)))
	want := -3 * v0 * dUdV
	if math.Abs(virial-want) > 1e-2*(1+math.Abs(want)) {
		t.Errorf("virial %.6g, -3V·dU/dV = %.6g", virial, want)
	}
}

// scaledEnergy returns the potential energy of the configuration with
// box and positions uniformly scaled.
func scaledEnergy(cfg *workload.Config, model *potential.Model, s float64) (float64, error) {
	scaled := &workload.Config{
		Box:     cfg.Box,
		Species: cfg.Species,
		Vel:     cfg.Vel,
	}
	scaled.Box.L = cfg.Box.L.Scale(s)
	for _, r := range cfg.Pos {
		scaled.Pos = append(scaled.Pos, r.Scale(s))
	}
	sys, err := NewSystem(scaled, model)
	if err != nil {
		return 0, err
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		return 0, err
	}
	return engine.Compute(sys)
}

// TestPressureIdealGasLimit: with no interactions in range, pressure
// reduces to N·kB·T/V.
func TestPressureIdealGasLimit(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	rng := rand.New(rand.NewSource(73))
	// Extremely dilute: no pair within the cutoff.
	cfg := workload.LJFluid(rng, 64, 0.001, 3.4)
	cfg.Thermalize(rng, model, 200)
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Compute(sys); err != nil {
		t.Fatal(err)
	}
	p := sys.Pressure(engine.Stats().Virial)
	ideal := float64(sys.N()) * KB * sys.Temperature() / sys.Box.Volume()
	if math.Abs(p-ideal) > 1e-9 {
		t.Errorf("dilute pressure %g, ideal-gas %g", p, ideal)
	}
}

// TestPressureCompressedLJIsPositive: a dense cold LJ fluid pushes out.
func TestPressureCompressedLJIsPositive(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	rng := rand.New(rand.NewSource(74))
	cfg := workload.LJFluid(rng, 729, 1.1, 3.4) // well above liquid density
	sys, err := NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewCellEngine(model, sys.Box, FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Compute(sys); err != nil {
		t.Fatal(err)
	}
	if p := sys.Pressure(engine.Stats().Virial); p <= 0 {
		t.Errorf("compressed LJ pressure %g, want > 0", p)
	}
}
