package nlist

import (
	"testing"

	"sctuple/internal/geom"
)

// TestBuilderRebuildZeroAllocs: once the staging array, the CSR fill
// cursors, and the list storage have reached working capacity, a full
// rebuild — rebin, cell search, degree count, two-direction fill —
// allocates nothing.
func TestBuilderRebuildZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	_, pos, bin := buildSystem(t, 7, 300, 9, geom.IV(4, 4, 4))
	b, err := NewBuilder(bin, 2.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rebuild := func() {
		bin.Rebin(pos)
		if _, err := b.Build(pos); err != nil {
			t.Error(err)
		}
	}
	for k := 0; k < 3; k++ {
		rebuild()
	}
	if allocs := testing.AllocsPerRun(10, rebuild); allocs != 0 {
		t.Errorf("%g allocs per list rebuild, want 0", allocs)
	}

	// The skin-reuse refresh must be allocation-free as well.
	pl, err := b.Build(pos)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.NewCubicBox(9)
	if allocs := testing.AllocsPerRun(10, func() { pl.Refresh(box, pos) }); allocs != 0 {
		t.Errorf("%g allocs per list refresh, want 0", allocs)
	}
}
