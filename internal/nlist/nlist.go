// Package nlist implements the Verlet neighbor list used by the
// Hybrid-MD baseline of the paper (§5): a dynamic pair list built
// every step from the full-shell cell pattern, from which shorter-
// range triplets are pruned directly — avoiding a second cell search
// at the triplet cutoff, at the price of full-shell import volume.
package nlist

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/tuple"
)

// PairList is a full (both-directions) neighbor list in CSR layout:
// the neighbors of atom i are Nbr[Start[i]:Start[i+1]], with
// image-resolved displacement vectors from i to each neighbor and the
// corresponding distances stored alongside.
type PairList struct {
	Cutoff float64
	Start  []int32
	Nbr    []int32
	Disp   []geom.Vec3
	Dist   []float64

	// BuildStats holds the enumeration counters of the cell-based
	// pair search that produced the list.
	BuildStats tuple.Stats

	short []int32 // triplet-pruning scratch, reused across visits
}

// half is one undirected pair as emitted by the cell search.
type half struct {
	i, j int32
	d    geom.Vec3
}

// Builder owns everything a pair-list rebuild needs — the full-shell
// pair enumerator (whose shift-collapse pattern generation is far too
// expensive to redo each step), the half-pair staging array, the CSR
// fill cursors, and the list storage itself. Storage grows in place
// and is reused across rebuilds: at warm capacity a rebuild allocates
// nothing.
type Builder struct {
	cutoff float64
	enum   *tuple.Enumerator
	pairs  []half
	fill   []int32
	pl     PairList
}

// NewBuilder prepares a reusable pair-list builder over the given
// binning. keys, when non-nil, orders the canonical pair dedup by
// per-atom key (global atom ID) instead of storage index, which keeps
// the emitted pair stream invariant under storage permutations; it
// may alias a caller array that is updated between builds.
func NewBuilder(bin *cell.Binning, cutoff float64, keys []int64) (*Builder, error) {
	e, err := tuple.NewEnumerator(bin, core.FS(2), cutoff, tuple.DedupCanonical)
	if err != nil {
		return nil, fmt.Errorf("nlist: %w", err)
	}
	e.SetKeys(keys)
	return &Builder{cutoff: cutoff, enum: e}, nil
}

// Build constructs the pair list for all atoms within the cutoff,
// reusing all storage from the previous build. The returned list is
// valid until the next Build call. The list is symmetric: (i→j) and
// (j→i) both appear.
func (b *Builder) Build(positions []geom.Vec3) (*PairList, error) {
	n := len(positions)
	pl := &b.pl
	pl.Cutoff = b.cutoff
	if cap(pl.Start) < n+1 {
		pl.Start = make([]int32, n+1)
	}
	pl.Start = pl.Start[:n+1]
	clear(pl.Start)

	b.pairs = b.pairs[:0]
	pl.BuildStats = b.enum.Visit(positions, func(atoms []int32, pos []geom.Vec3) {
		b.pairs = append(b.pairs, half{atoms[0], atoms[1], pos[1].Sub(pos[0])})
	})

	// Count degrees, prefix-sum, fill both directions.
	for _, p := range b.pairs {
		pl.Start[p.i+1]++
		pl.Start[p.j+1]++
	}
	for i := 0; i < n; i++ {
		pl.Start[i+1] += pl.Start[i]
	}
	total := int(pl.Start[n])
	if cap(pl.Nbr) < total {
		pl.Nbr = make([]int32, total)
		pl.Disp = make([]geom.Vec3, total)
		pl.Dist = make([]float64, total)
	}
	pl.Nbr = pl.Nbr[:total]
	pl.Disp = pl.Disp[:total]
	pl.Dist = pl.Dist[:total]
	if cap(b.fill) < n {
		b.fill = make([]int32, n)
	}
	fill := b.fill[:n]
	clear(fill)
	for _, p := range b.pairs {
		ki := pl.Start[p.i] + fill[p.i]
		pl.Nbr[ki] = p.j
		pl.Disp[ki] = p.d
		pl.Dist[ki] = p.d.Norm()
		fill[p.i]++
		kj := pl.Start[p.j] + fill[p.j]
		pl.Nbr[kj] = p.i
		pl.Disp[kj] = p.d.Neg()
		pl.Dist[kj] = pl.Dist[ki]
		fill[p.j]++
	}
	return pl, nil
}

// Build constructs a fresh pair list with a one-shot Builder — the
// convenience form for callers without a rebuild loop.
func Build(bin *cell.Binning, positions []geom.Vec3, cutoff float64) (*PairList, error) {
	b, err := NewBuilder(bin, cutoff, nil)
	if err != nil {
		return nil, err
	}
	return b.Build(positions)
}

// Refresh recomputes every entry's displacement and distance from the
// current (possibly re-wrapped) positions under the minimum-image
// convention. This is the Verlet-skin reuse path: a list built with
// cutoff r+skin stays valid while no atom has moved more than skin/2
// since the build, and refreshing costs O(entries) instead of a full
// cell search. Minimum-image resolution requires every box side to
// exceed 2·(r+skin), which the Build lattice (≥ 3 cells of side ≥
// cutoff) already guarantees.
func (pl *PairList) Refresh(box geom.Box, positions []geom.Vec3) {
	n := len(pl.Start) - 1
	for i := 0; i < n; i++ {
		ri := positions[i]
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			d := box.MinImage(positions[pl.Nbr[k]].Sub(ri))
			pl.Disp[k] = d
			pl.Dist[k] = d.Norm()
		}
	}
}

// Degree returns the number of neighbors of atom i.
func (pl *PairList) Degree(i int32) int {
	return int(pl.Start[i+1] - pl.Start[i])
}

// NumEntries returns the total number of directed neighbor entries
// (twice the number of pairs).
func (pl *PairList) NumEntries() int { return len(pl.Nbr) }

// VisitPairs calls fn once per undirected pair (i < j) with the
// displacement from i to j.
func (pl *PairList) VisitPairs(fn func(i, j int32, disp geom.Vec3, dist float64)) {
	n := len(pl.Start) - 1
	for i := 0; i < n; i++ {
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			j := pl.Nbr[k]
			if int32(i) < j {
				fn(int32(i), j, pl.Disp[k], pl.Dist[k])
			}
		}
	}
}

// VisitPairsOrdered is VisitPairs for cell-sorted storage: rows are
// walked in the given order (storage slots listed in global-ID order)
// and each undirected pair is emitted once from its lower-keyed
// endpoint. With keys = global IDs this reproduces, tuple for tuple,
// the stream VisitPairs produces over ID-ordered storage — keeping
// force accumulation bit-identical however storage is permuted.
func (pl *PairList) VisitPairsOrdered(order []int32, keys []int64,
	fn func(i, j int32, disp geom.Vec3, dist float64)) {

	for _, i := range order {
		ki := keys[i]
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			j := pl.Nbr[k]
			if ki < keys[j] {
				fn(i, j, pl.Disp[k], pl.Dist[k])
			}
		}
	}
}

// TripletStats counts the pruning work of VisitTriplets.
type TripletStats struct {
	ShortNeighbors int64 // list entries examined against the triplet cutoff
	PairsExamined  int64 // neighbor pairs considered around a center
	Emitted        int64 // triplets delivered
}

// VisitTriplets prunes triplets (i, j, k) with central atom j from the
// pair list: both links within rcut3 ≤ Cutoff, each undirected triplet
// visited once (neighbor order in the list with i-entry before
// k-entry). fn receives the chain positions (center at its primary
// position, ends displaced by the stored image-resolved
// displacements) in the same layout the tuple enumerator uses, so the
// same potential terms apply.
func (pl *PairList) VisitTriplets(positions []geom.Vec3, rcut3 float64,
	fn func(atoms [3]int32, pos [3]geom.Vec3)) TripletStats {

	var st TripletStats
	n := len(pl.Start) - 1
	for j := 0; j < n; j++ {
		pl.visitTripletsAround(int32(j), positions, rcut3, fn, &st)
	}
	return st
}

// VisitTripletsOrdered is VisitTriplets with centers walked in the
// given order (storage slots in global-ID order) — the cell-sorted
// counterpart, matching the accumulation order of ID-ordered storage.
func (pl *PairList) VisitTripletsOrdered(order []int32, positions []geom.Vec3, rcut3 float64,
	fn func(atoms [3]int32, pos [3]geom.Vec3)) TripletStats {

	var st TripletStats
	for _, j := range order {
		pl.visitTripletsAround(j, positions, rcut3, fn, &st)
	}
	return st
}

// visitTripletsAround expands the pruned triplets centered on atom j.
func (pl *PairList) visitTripletsAround(j int32, positions []geom.Vec3, rcut3 float64,
	fn func(atoms [3]int32, pos [3]geom.Vec3), st *TripletStats) {

	short := pl.short[:0]
	for k := pl.Start[j]; k < pl.Start[j+1]; k++ {
		st.ShortNeighbors++
		if pl.Dist[k] < rcut3 {
			short = append(short, k)
		}
	}
	pl.short = short // keep grown capacity for the next center
	center := positions[j]
	for a := 0; a < len(short); a++ {
		for b := a + 1; b < len(short); b++ {
			st.PairsExamined++
			ka, kb := short[a], short[b]
			st.Emitted++
			fn(
				[3]int32{pl.Nbr[ka], j, pl.Nbr[kb]},
				[3]geom.Vec3{center.Add(pl.Disp[ka]), center, center.Add(pl.Disp[kb])},
			)
		}
	}
}
