// Package nlist implements the Verlet neighbor list used by the
// Hybrid-MD baseline of the paper (§5): a dynamic pair list built
// every step from the full-shell cell pattern, from which shorter-
// range triplets are pruned directly — avoiding a second cell search
// at the triplet cutoff, at the price of full-shell import volume.
package nlist

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/tuple"
)

// PairList is a full (both-directions) neighbor list in CSR layout:
// the neighbors of atom i are Nbr[Start[i]:Start[i+1]], with
// image-resolved displacement vectors from i to each neighbor and the
// corresponding distances stored alongside.
type PairList struct {
	Cutoff float64
	Start  []int32
	Nbr    []int32
	Disp   []geom.Vec3
	Dist   []float64

	// BuildStats holds the enumeration counters of the cell-based
	// pair search that produced the list.
	BuildStats tuple.Stats
}

// Build constructs the pair list for all atoms within cutoff, using a
// full-shell cell search (Ψ(2)FS with canonical dedup) exactly as
// Hybrid-MD does. The list is symmetric: (i→j) and (j→i) both appear.
func Build(bin *cell.Binning, positions []geom.Vec3, cutoff float64) (*PairList, error) {
	e, err := tuple.NewEnumerator(bin, core.FS(2), cutoff, tuple.DedupCanonical)
	if err != nil {
		return nil, fmt.Errorf("nlist: %w", err)
	}
	n := len(positions)
	pl := &PairList{Cutoff: cutoff, Start: make([]int32, n+1)}

	type half struct {
		i, j int32
		d    geom.Vec3
	}
	var pairs []half
	st := e.Visit(positions, func(atoms []int32, pos []geom.Vec3) {
		pairs = append(pairs, half{atoms[0], atoms[1], pos[1].Sub(pos[0])})
	})
	pl.BuildStats = st

	// Count degrees, prefix-sum, fill both directions.
	for _, p := range pairs {
		pl.Start[p.i+1]++
		pl.Start[p.j+1]++
	}
	for i := 0; i < n; i++ {
		pl.Start[i+1] += pl.Start[i]
	}
	total := int(pl.Start[n])
	pl.Nbr = make([]int32, total)
	pl.Disp = make([]geom.Vec3, total)
	pl.Dist = make([]float64, total)
	fill := make([]int32, n)
	put := func(i, j int32, d geom.Vec3) {
		k := pl.Start[i] + fill[i]
		pl.Nbr[k] = j
		pl.Disp[k] = d
		pl.Dist[k] = d.Norm()
		fill[i]++
	}
	for _, p := range pairs {
		put(p.i, p.j, p.d)
		put(p.j, p.i, p.d.Neg())
	}
	return pl, nil
}

// Refresh recomputes every entry's displacement and distance from the
// current (possibly re-wrapped) positions under the minimum-image
// convention. This is the Verlet-skin reuse path: a list built with
// cutoff r+skin stays valid while no atom has moved more than skin/2
// since the build, and refreshing costs O(entries) instead of a full
// cell search. Minimum-image resolution requires every box side to
// exceed 2·(r+skin), which the Build lattice (≥ 3 cells of side ≥
// cutoff) already guarantees.
func (pl *PairList) Refresh(box geom.Box, positions []geom.Vec3) {
	n := len(pl.Start) - 1
	for i := 0; i < n; i++ {
		ri := positions[i]
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			d := box.MinImage(positions[pl.Nbr[k]].Sub(ri))
			pl.Disp[k] = d
			pl.Dist[k] = d.Norm()
		}
	}
}

// Degree returns the number of neighbors of atom i.
func (pl *PairList) Degree(i int32) int {
	return int(pl.Start[i+1] - pl.Start[i])
}

// NumEntries returns the total number of directed neighbor entries
// (twice the number of pairs).
func (pl *PairList) NumEntries() int { return len(pl.Nbr) }

// VisitPairs calls fn once per undirected pair (i < j) with the
// displacement from i to j.
func (pl *PairList) VisitPairs(fn func(i, j int32, disp geom.Vec3, dist float64)) {
	n := len(pl.Start) - 1
	for i := 0; i < n; i++ {
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			j := pl.Nbr[k]
			if int32(i) < j {
				fn(int32(i), j, pl.Disp[k], pl.Dist[k])
			}
		}
	}
}

// TripletStats counts the pruning work of VisitTriplets.
type TripletStats struct {
	ShortNeighbors int64 // list entries examined against the triplet cutoff
	PairsExamined  int64 // neighbor pairs considered around a center
	Emitted        int64 // triplets delivered
}

// VisitTriplets prunes triplets (i, j, k) with central atom j from the
// pair list: both links within rcut3 ≤ Cutoff, each undirected triplet
// visited once (neighbor order in the list with i-entry before
// k-entry). fn receives the chain positions (center at its primary
// position, ends displaced by the stored image-resolved
// displacements) in the same layout the tuple enumerator uses, so the
// same potential terms apply.
func (pl *PairList) VisitTriplets(positions []geom.Vec3, rcut3 float64,
	fn func(atoms [3]int32, pos [3]geom.Vec3)) TripletStats {

	var st TripletStats
	n := len(pl.Start) - 1
	short := make([]int32, 0, 64) // indices into the CSR arrays
	for j := 0; j < n; j++ {
		short = short[:0]
		for k := pl.Start[j]; k < pl.Start[j+1]; k++ {
			st.ShortNeighbors++
			if pl.Dist[k] < rcut3 {
				short = append(short, k)
			}
		}
		center := positions[j]
		for a := 0; a < len(short); a++ {
			for b := a + 1; b < len(short); b++ {
				st.PairsExamined++
				ka, kb := short[a], short[b]
				st.Emitted++
				fn(
					[3]int32{pl.Nbr[ka], int32(j), pl.Nbr[kb]},
					[3]geom.Vec3{center.Add(pl.Disp[ka]), center, center.Add(pl.Disp[kb])},
				)
			}
		}
	}
	return st
}
