package nlist

import (
	"math/rand"
	"testing"

	"sctuple/internal/cell"
	"sctuple/internal/geom"
	"sctuple/internal/tuple"
)

func buildSystem(t *testing.T, seed int64, n int, side float64, dims geom.IVec3) (geom.Box, []geom.Vec3, *cell.Binning) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	box := geom.NewCubicBox(side)
	pos := make([]geom.Vec3, n)
	for i := range pos {
		pos[i] = geom.V(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
	}
	lat, err := cell.NewLatticeDims(box, dims)
	if err != nil {
		t.Fatal(err)
	}
	return box, pos, cell.NewBinning(lat, pos)
}

func TestPairListMatchesBruteForce(t *testing.T) {
	box, pos, bin := buildSystem(t, 1, 200, 9, geom.IV(4, 4, 4))
	cutoff := 2.0
	pl, err := Build(bin, pos, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int32
	pl.VisitPairs(func(i, j int32, _ geom.Vec3, _ float64) {
		got = append(got, []int32{i, j})
	})
	want := tuple.BruteForce(box, pos, 2, cutoff)
	if len(got) != len(want) {
		t.Fatalf("pair list has %d pairs, brute force %d", len(got), len(want))
	}
	seen := make(map[[2]int32]bool)
	for _, p := range got {
		seen[[2]int32{p[0], p[1]}] = true
	}
	for _, w := range want {
		if !seen[[2]int32{w[0], w[1]}] {
			t.Fatalf("pair (%d,%d) missing from list", w[0], w[1])
		}
	}
}

func TestPairListSymmetry(t *testing.T) {
	_, pos, bin := buildSystem(t, 2, 150, 9, geom.IV(4, 4, 4))
	pl, err := Build(bin, pos, 2.1)
	if err != nil {
		t.Fatal(err)
	}
	// Every (i→j) entry must have a matching (j→i) with negated
	// displacement.
	type key struct{ i, j int32 }
	entries := make(map[key]geom.Vec3)
	n := len(pl.Start) - 1
	for i := 0; i < n; i++ {
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			entries[key{int32(i), pl.Nbr[k]}] = pl.Disp[k]
		}
	}
	for kk, d := range entries {
		rev, ok := entries[key{kk.j, kk.i}]
		if !ok {
			t.Fatalf("entry %v has no reverse", kk)
		}
		if rev.Add(d).Norm() > 1e-12 {
			t.Fatalf("entry %v displacement not antisymmetric", kk)
		}
	}
	if pl.NumEntries() != len(entries) {
		t.Fatalf("NumEntries %d != %d", pl.NumEntries(), len(entries))
	}
}

func TestTripletsMatchBruteForce(t *testing.T) {
	box, pos, bin := buildSystem(t, 3, 120, 9, geom.IV(4, 4, 4))
	rcut2, rcut3 := 2.2, 1.4
	pl, err := Build(bin, pos, rcut2)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int32
	pl.VisitTriplets(pos, rcut3, func(atoms [3]int32, _ [3]geom.Vec3) {
		c := []int32{atoms[0], atoms[1], atoms[2]}
		if c[0] > c[2] {
			c[0], c[2] = c[2], c[0]
		}
		got = append(got, c)
	})
	want := tuple.BruteForce(box, pos, 3, rcut3)
	if len(got) != len(want) {
		t.Fatalf("pruned %d triplets, brute force %d", len(got), len(want))
	}
	seen := make(map[[3]int32]int)
	for _, g := range got {
		seen[[3]int32{g[0], g[1], g[2]}]++
	}
	for _, w := range want {
		k := [3]int32{w[0], w[1], w[2]}
		if seen[k] != 1 {
			t.Fatalf("triplet %v seen %d times", k, seen[k])
		}
	}
}

func TestTripletPositionsImageResolved(t *testing.T) {
	_, pos, bin := buildSystem(t, 4, 150, 9, geom.IV(4, 4, 4))
	pl, err := Build(bin, pos, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	pl.VisitTriplets(pos, 1.5, func(atoms [3]int32, p [3]geom.Vec3) {
		if p[0].Sub(p[1]).Norm() >= 1.5 || p[2].Sub(p[1]).Norm() >= 1.5 {
			t.Fatalf("triplet %v link exceeds cutoff", atoms)
		}
	})
}

func TestDegreeConsistency(t *testing.T) {
	_, pos, bin := buildSystem(t, 5, 100, 9, geom.IV(4, 4, 4))
	pl, err := Build(bin, pos, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := int32(0); i < 100; i++ {
		total += pl.Degree(i)
	}
	if total != pl.NumEntries() {
		t.Fatalf("degree sum %d != entries %d", total, pl.NumEntries())
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	_, pos, bin := buildSystem(t, 6, 100, 9, geom.IV(4, 4, 4))
	pl, err := Build(bin, pos, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.BuildStats.Candidates == 0 || pl.BuildStats.Cells != 64 {
		t.Errorf("build stats %v", pl.BuildStats)
	}
}
