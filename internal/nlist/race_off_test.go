//go:build !race

package nlist

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation allocates.
const raceEnabled = false
