package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
)

// Bundle file names. A postmortem bundle is a plain directory of
// them; offline tools key on the names.
const (
	BundleSteps     = "steps.jsonl"
	BundleAnomalies = "anomalies.jsonl"
	BundleMetrics   = "metrics.json"
	BundleHealth    = "health.json"
	BundleTrace     = "trace.json"
	BundleConfig    = "config.json"
)

// BundleSources collects everything a postmortem bundle snapshots.
// Only Flight is required; nil sources skip their file.
type BundleSources struct {
	Flight   *Recorder
	Trace    *obs.Recorder
	Registry *obs.Registry
	Health   *health.Monitor
	// Info is the run's static metadata (model, scheme, ranks, …).
	Info map[string]string
	// Reason is why the bundle was written ("rank failure: …",
	// "signal: interrupt", …).
	Reason string
}

// bundleConfig is the config.json shape.
type bundleConfig struct {
	Reason    string            `json:"reason"`
	WrittenAt string            `json:"written_at"`
	Ranks     int               `json:"ranks"`
	Records   int64             `json:"records"`
	Steps     int64             `json:"steps_completed"`
	Anomalies int64             `json:"anomalies"`
	Info      map[string]string `json:"info,omitempty"`
}

// WriteBundle writes a postmortem bundle directory: the retained step
// records as JSONL, the anomaly log, a metrics snapshot, the health
// summary, a Chrome trace snapshot, and the run config — everything
// needed to ask "what was the run doing when it died" without the
// process that died.
func WriteBundle(dir string, src BundleSources) error {
	if src.Flight == nil {
		return fmt.Errorf("flight: bundle needs a flight recorder")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flight: bundle dir: %w", err)
	}
	write := func(name string, fill func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("flight: bundle %s: %w", name, err)
		}
		if err := fill(f); err != nil {
			f.Close()
			return fmt.Errorf("flight: bundle %s: %w", name, err)
		}
		return f.Close()
	}

	if err := write(BundleSteps, func(f *os.File) error {
		return src.Flight.WriteSteps(f)
	}); err != nil {
		return err
	}
	if err := write(BundleAnomalies, func(f *os.File) error {
		enc := json.NewEncoder(f)
		for _, a := range src.Flight.Anomalies().Anomalies {
			if err := enc.Encode(a); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if src.Registry != nil {
		if err := write(BundleMetrics, func(f *os.File) error {
			return json.NewEncoder(f).Encode(src.Registry.Snapshot())
		}); err != nil {
			return err
		}
	}
	if src.Health != nil {
		if err := write(BundleHealth, func(f *os.File) error {
			return json.NewEncoder(f).Encode(src.Health.Summary())
		}); err != nil {
			return err
		}
	}
	if src.Trace != nil {
		if err := write(BundleTrace, func(f *os.File) error {
			return src.Trace.WriteTrace(f)
		}); err != nil {
			return err
		}
	}
	return write(BundleConfig, func(f *os.File) error {
		return json.NewEncoder(f).Encode(bundleConfig{
			Reason:    src.Reason,
			WrittenAt: time.Now().UTC().Format(time.RFC3339),
			Ranks:     src.Flight.Ranks(),
			Records:   src.Flight.Records(),
			Steps:     src.Flight.CompletedSteps(),
			Anomalies: src.Flight.Anomalies().Total,
			Info:      src.Info,
		})
	})
}

// WriteSteps writes the retained raw records as JSONL, oldest first —
// the same schema the StepWriter emits, so a bundle's steps.jsonl and
// an scmd -metrics file are interchangeable inputs to Analyze.
func (r *Recorder) WriteSteps(f *os.File) error {
	snap := r.History(1, nil)
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range snap.Records {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Report is the outcome of an offline Analyze pass.
type Report struct {
	// Path is the analyzed bundle directory or step log.
	Path string
	// Ranks and Records describe the replayed input; Steps is how
	// many steps completed the detector pass.
	Ranks   int
	Records int64
	Steps   int64
	// Replayed holds the anomalies the offline detector replay found,
	// ranked by Score descending.
	Replayed []Anomaly
	// Recorded holds the anomalies the run itself logged (from the
	// bundle's anomalies.jsonl; empty when analyzing a bare step
	// log), in log order.
	Recorded []Anomaly
}

// Hard counts the hard anomalies across both the replayed and the
// recorded sets — the "this run actually broke" signal analyze keys
// its exit status on.
func (r *Report) Hard() int {
	n := 0
	for _, a := range r.Replayed {
		if a.Hard {
			n++
		}
	}
	for _, a := range r.Recorded {
		if a.Hard {
			n++
		}
	}
	return n
}

// Analyze replays the online detectors over a recorded step log —
// either a postmortem bundle directory or a bare steps.jsonl /
// scmd -metrics file — and returns the ranked findings. The replay
// uses the same detector code the live run ran, so a bundle's
// recorded anomalies are reproducible offline, with different
// thresholds if the caller tunes det.
func Analyze(path string, det DetectConfig) (*Report, error) {
	stepsPath := path
	anomPath := ""
	if fi, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("flight: analyze %s: %w", path, err)
	} else if fi.IsDir() {
		stepsPath = filepath.Join(path, BundleSteps)
		anomPath = filepath.Join(path, BundleAnomalies)
	}

	records, err := readStepRecords(stepsPath)
	if err != nil {
		return nil, err
	}
	ranks := 1
	for _, rec := range records {
		if rec.Rank+1 > ranks {
			ranks = rec.Rank + 1
		}
	}
	rec := New(Config{Ranks: ranks, Detect: det})
	for _, r := range records {
		rec.ObserveStep(r)
	}
	rec.Flush()

	rep := &Report{
		Path:    path,
		Ranks:   ranks,
		Records: rec.Records(),
		Steps:   rec.CompletedSteps(),
	}
	rep.Replayed = rec.Anomalies().Anomalies
	sort.SliceStable(rep.Replayed, func(i, j int) bool {
		return rep.Replayed[i].Score > rep.Replayed[j].Score
	})
	if anomPath != "" {
		if recorded, err := readAnomalies(anomPath); err == nil {
			rep.Recorded = recorded
		}
	}
	return rep, nil
}

// readStepRecords reads a JSONL step log, skipping non-record lines
// (the trailing {"snapshot": …} line of scmd -metrics files).
func readStepRecords(path string) ([]obs.StepRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flight: analyze: %w", err)
	}
	defer f.Close()
	var out []obs.StepRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Step *int `json:"step"`
			Rank *int `json:"rank"`
		}
		if err := json.Unmarshal(line, &probe); err != nil || probe.Step == nil || probe.Rank == nil {
			continue
		}
		var rec obs.StepRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flight: analyze %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flight: analyze %s: no step records", path)
	}
	return out, nil
}

func readAnomalies(path string) ([]Anomaly, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Anomaly
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var a Anomaly
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			continue
		}
		if a.Kind != "" {
			out = append(out, a)
		}
	}
	return out, sc.Err()
}
