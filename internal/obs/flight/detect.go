package flight

import (
	"encoding/json"
	"math"

	"sctuple/internal/obs"
)

// DetectConfig tunes the online anomaly detectors. Zero fields take
// the defaults below; the defaults are deliberately conservative —
// a detector that cries wolf on ordinary jitter is worse than none.
type DetectConfig struct {
	// Warmup is the number of completed steps used to seed the
	// running statistics before any detector may fire (default 30).
	Warmup int
	// WallZWarn/WallZHard are the robust z-score thresholds of the
	// step-wall-time spike detector (defaults 8 and 16): the per-step
	// max-over-ranks wall time is scored against an EWMA mean and an
	// EWMA absolute deviation scaled by 1.4826 (the MAD-to-σ factor
	// for normal data), floored at 5% of the mean so an ultra-steady
	// run doesn't turn scheduler noise into anomalies.
	WallZWarn float64
	WallZHard float64
	// ImbalanceWarn fires the imbalance-drift detector when the EWMA
	// of per-step max/mean wall time stays at or above it for
	// ImbalanceSteps consecutive completed steps (defaults 1.6, 25).
	ImbalanceWarn  float64
	ImbalanceSteps int
	// CommWaitRatio fires the comm-wait growth detector when a fast
	// EWMA of the run's comm-wait fraction (comm_wait_ns summed over
	// ranks / wall summed over ranks) exceeds CommWaitRatio times its
	// slow EWMA while above CommWaitFloor (defaults 2.5, 0.15) — the
	// signature of communication degrading mid-run rather than being
	// constitutionally slow.
	CommWaitRatio float64
	CommWaitFloor float64
	// WarnStreak fires the health detector after this many
	// consecutive sampled health observations that produced new warn
	// results (default 5). New fail results fire a hard anomaly
	// immediately.
	WarnStreak int
	// ModelBand/ModelSteps tune the measured-vs-perfmodel residual
	// detector: once a prediction is set, the EWMA of the measured
	// max-over-ranks compute (and, separately, comm) phase time is
	// compared against the model's expectation, and a ratio outside
	// [1/ModelBand, ModelBand] for ModelSteps consecutive steps fires
	// (defaults 3.0, 50).
	ModelBand  float64
	ModelSteps int
	// Cooldown is the minimum number of steps between two anomalies
	// of the same kind (default 50), bounding the event rate of a
	// persistently sick run.
	Cooldown int
	// LogSize bounds the retained anomaly ring (default 256).
	LogSize int
}

func (c DetectConfig) withDefaults() DetectConfig {
	if c.Warmup <= 0 {
		c.Warmup = 30
	}
	if c.WallZWarn <= 0 {
		c.WallZWarn = 8
	}
	if c.WallZHard <= 0 {
		c.WallZHard = 16
	}
	if c.ImbalanceWarn <= 0 {
		c.ImbalanceWarn = 1.6
	}
	if c.ImbalanceSteps <= 0 {
		c.ImbalanceSteps = 25
	}
	if c.CommWaitRatio <= 0 {
		c.CommWaitRatio = 2.5
	}
	if c.CommWaitFloor <= 0 {
		c.CommWaitFloor = 0.15
	}
	if c.WarnStreak <= 0 {
		c.WarnStreak = 5
	}
	if c.ModelBand <= 0 {
		c.ModelBand = 3
	}
	if c.ModelSteps <= 0 {
		c.ModelSteps = 50
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50
	}
	if c.LogSize <= 0 {
		c.LogSize = 256
	}
	return c
}

// Anomaly kinds. AnomalyKinds lists them for consumers that
// pre-resolve per-kind state (registry counters, dashboards).
const (
	KindWall      = "wall"
	KindImbalance = "imbalance"
	KindCommWait  = "comm_wait"
	KindHealth    = "health"
	KindModel     = "model"
	KindAbort     = "abort"
)

// AnomalyKinds enumerates every kind the detectors emit.
var AnomalyKinds = []string{KindWall, KindImbalance, KindCommWait, KindHealth, KindModel, KindAbort}

// Anomaly is one detector event. Hard anomalies are the ones worth
// failing a CI job over (an extreme spike, a health fail, an abort);
// the rest are warnings. Score is the severity ranking key: how many
// thresholds-worth the observation was (z-score for wall, ratio for
// the drift detectors), so reports can rank mixed kinds.
type Anomaly struct {
	Kind string `json:"kind"`
	// Phase distinguishes sub-signals of one kind (the model detector
	// emits "compute" and "comm" residuals).
	Phase string `json:"phase,omitempty"`
	Step  int    `json:"step"`
	TNs   int64  `json:"t_ns,omitempty"`
	// Value is the measured quantity, Threshold what it was judged
	// against (both in the detector's native unit).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold,omitempty"`
	Score     float64 `json:"score"`
	Hard      bool    `json:"hard,omitempty"`
	Msg       string  `json:"msg,omitempty"`
}

// anomalyLog is the bounded anomaly ring plus per-kind accounting.
type anomalyLog struct {
	buf      []Anomaly
	n        int64
	byKind   map[string]int64
	counters map[string]*obs.Counter
}

func (l *anomalyLog) init(reg *obs.Registry, size int) {
	l.buf = make([]Anomaly, size)
	l.byKind = make(map[string]int64, len(AnomalyKinds))
	for _, k := range AnomalyKinds {
		l.byKind[k] = 0
	}
	if reg != nil {
		l.counters = make(map[string]*obs.Counter, len(AnomalyKinds))
		for _, k := range AnomalyKinds {
			l.counters[k] = reg.Counter("anomaly." + k + ".total")
		}
	}
}

// detectors holds all online detector state: a fixed set of scalars,
// so running them per completed step costs no allocation.
type detectors struct {
	cfg       DetectConfig
	completed int64

	wallMean float64
	wallDev  float64

	imbEwma   float64
	imbStreak int

	cwFast   float64
	cwSlow   float64
	cwSeeded bool

	hOK, hWarn, hFail int64
	hStreak           int

	compEwma, commEwma     float64
	modSeeded              bool
	compStreak, commStreak int

	lastFire map[string]int
}

func (d *detectors) init(cfg DetectConfig) {
	d.cfg = cfg
	d.lastFire = make(map[string]int, len(AnomalyKinds))
	for _, k := range AnomalyKinds {
		d.lastFire[k] = -1 << 30
	}
}

// cooled reports (and records) whether a kind may fire at step —
// at most one anomaly per kind per Cooldown window.
func (d *detectors) cooled(kind string, step int) bool {
	if step-d.lastFire[kind] < d.cfg.Cooldown {
		return false
	}
	d.lastFire[kind] = step
	return true
}

// step runs every detector over one completed step. Caller holds
// r.mu.
func (d *detectors) step(r *Recorder, acc *stepAcc) {
	d.completed++
	warm := d.completed > int64(d.cfg.Warmup)
	x := acc.wallMax

	// Wall-time spike: robust z-score against EWMA mean / EWMA
	// absolute deviation. Score first, then let the sample update the
	// running statistics — a single spike must not drag the baseline
	// up before it is judged.
	if !warm {
		n := float64(d.completed)
		d.wallMean += (x - d.wallMean) / n
		d.wallDev += (math.Abs(x-d.wallMean) - d.wallDev) / n
	} else {
		sigma := 1.4826 * d.wallDev
		if floor := 0.05 * d.wallMean; sigma < floor {
			sigma = floor
		}
		if sigma > 0 {
			z := (x - d.wallMean) / sigma
			if z >= d.cfg.WallZWarn && d.cooled(KindWall, acc.step) {
				r.emit(Anomaly{
					Kind: KindWall, Step: acc.step, TNs: acc.tNs,
					Value: x, Threshold: d.wallMean + d.cfg.WallZWarn*sigma,
					Score: z, Hard: z >= d.cfg.WallZHard,
				})
			}
		}
		const a = 0.05
		d.wallMean += a * (x - d.wallMean)
		d.wallDev += a * (math.Abs(x-d.wallMean) - d.wallDev)
	}

	// Imbalance drift: EWMA of per-step max/mean wall over ranks.
	if acc.n > 1 {
		imb := acc.wallMax / (acc.wallSum / float64(acc.n))
		if d.imbEwma == 0 {
			d.imbEwma = imb
		}
		const a = 0.1
		d.imbEwma += a * (imb - d.imbEwma)
		if warm && d.imbEwma >= d.cfg.ImbalanceWarn {
			d.imbStreak++
		} else {
			d.imbStreak = 0
		}
		if d.imbStreak >= d.cfg.ImbalanceSteps {
			d.imbStreak = 0
			if d.cooled(KindImbalance, acc.step) {
				r.emit(Anomaly{
					Kind: KindImbalance, Step: acc.step, TNs: acc.tNs,
					Value: d.imbEwma, Threshold: d.cfg.ImbalanceWarn,
					Score: d.imbEwma / d.cfg.ImbalanceWarn,
				})
			}
		}
	}

	// Comm-wait growth: fast vs slow EWMA of the receive-wait
	// fraction.
	if acc.wallSum > 0 {
		frac := acc.commWaitNs / acc.wallSum
		if !d.cwSeeded {
			d.cwFast, d.cwSlow, d.cwSeeded = frac, frac, true
		}
		d.cwFast += 0.1 * (frac - d.cwFast)
		d.cwSlow += 0.01 * (frac - d.cwSlow)
		if warm && d.cwFast >= d.cfg.CommWaitFloor && d.cwSlow > 0 &&
			d.cwFast >= d.cfg.CommWaitRatio*d.cwSlow && d.cooled(KindCommWait, acc.step) {
			r.emit(Anomaly{
				Kind: KindCommWait, Step: acc.step, TNs: acc.tNs,
				Value: d.cwFast, Threshold: d.cfg.CommWaitRatio * d.cwSlow,
				Score: d.cwFast / (d.cfg.CommWaitRatio * d.cwSlow),
			})
		}
	}

	// Health: new fail observations are hard anomalies immediately; a
	// streak of sampled observations producing new warns is a soft
	// one. Steps without new observations (the monitor samples every
	// Nth step) leave the streak untouched.
	if r.cfg.Health != nil {
		ok, warnC, fail := r.cfg.Health.Totals()
		if fail > d.hFail && d.cooled(KindHealth, acc.step) {
			r.emit(Anomaly{
				Kind: KindHealth, Step: acc.step, TNs: acc.tNs,
				Value: float64(fail), Score: 100, Hard: true,
			})
		}
		if warnC > d.hWarn {
			d.hStreak++
		} else if ok+warnC+fail > d.hOK+d.hWarn+d.hFail {
			d.hStreak = 0
		}
		if d.hStreak >= d.cfg.WarnStreak {
			d.hStreak = 0
			if d.cooled(KindHealth, acc.step) {
				r.emit(Anomaly{
					Kind: KindHealth, Step: acc.step, TNs: acc.tNs,
					Value: float64(warnC), Threshold: float64(d.cfg.WarnStreak),
					Score: float64(d.cfg.WarnStreak),
				})
			}
		}
		d.hOK, d.hWarn, d.hFail = ok, warnC, fail
	}

	// Model residual: measured max-over-ranks compute/comm EWMAs vs
	// the armed prediction, fired only after the band has been
	// violated for ModelSteps consecutive steps.
	if r.hasPred {
		if !d.modSeeded {
			d.compEwma, d.commEwma, d.modSeeded = acc.computeMax, acc.commMax, true
		}
		const a = 0.1
		d.compEwma += a * (acc.computeMax - d.compEwma)
		d.commEwma += a * (acc.commMax - d.commEwma)
		if warm {
			d.compStreak = d.residual(r, acc, "compute", d.compEwma, r.pred.ComputeNs, d.compStreak)
			d.commStreak = d.residual(r, acc, "comm", d.commEwma, r.pred.CommNs, d.commStreak)
		}
	}
}

// residual advances one model-residual streak and fires when it
// crosses the configured persistence, returning the updated streak.
func (d *detectors) residual(r *Recorder, acc *stepAcc, phase string, measured, predicted float64, streak int) int {
	if predicted <= 0 || measured <= 0 {
		return 0
	}
	ratio := measured / predicted
	score := ratio
	if score < 1 {
		score = 1 / score
	}
	if score < d.cfg.ModelBand {
		return 0
	}
	streak++
	if streak < d.cfg.ModelSteps {
		return streak
	}
	if d.cooled(KindModel, acc.step) {
		r.emit(Anomaly{
			Kind: KindModel, Phase: phase, Step: acc.step, TNs: acc.tNs,
			Value: ratio, Threshold: d.cfg.ModelBand, Score: score / d.cfg.ModelBand,
		})
	}
	return 0
}

// emit appends an anomaly to the bounded log, bumps its registry
// counter, and publishes it as an "anomaly" event on the tee. Caller
// holds r.mu. The JSON encoding only happens when a live subscriber
// is attached — the fire itself is allocation-free otherwise.
func (r *Recorder) emit(a Anomaly) {
	r.log.buf[r.log.n%int64(len(r.log.buf))] = a
	r.log.n++
	r.log.byKind[a.Kind]++
	if c := r.log.counters[a.Kind]; c != nil {
		c.Add(1)
	}
	if r.cfg.Tee.Active() {
		if line, err := json.Marshal(struct {
			Anomaly Anomaly `json:"anomaly"`
		}{a}); err == nil {
			r.cfg.Tee.PublishEvent("anomaly", append(line, '\n'))
		}
	}
}

// RecordAbort logs the run's terminal failure as a hard "abort"
// anomaly — called by the postmortem path before the bundle is
// written, so offline analysis of a crashed run always has at least
// the crash itself, even when no detector fired beforehand. A step of
// -1 means the failing step is unknown (e.g. a signal).
func (r *Recorder) RecordAbort(step int, msg string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emit(Anomaly{Kind: KindAbort, Step: step, Value: 1, Score: 1000, Hard: true, Msg: msg})
}

// AnomalySnapshot is the /anomalies body.
type AnomalySnapshot struct {
	Total  int64            `json:"total"`
	ByKind map[string]int64 `json:"by_kind,omitempty"`
	Last   *Anomaly         `json:"last,omitempty"`
	// Anomalies is the retained ring, oldest first (the ring is
	// bounded, so a long-sick run keeps the newest).
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// Anomalies snapshots the anomaly log.
func (r *Recorder) Anomalies() AnomalySnapshot {
	if r == nil {
		return AnomalySnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := AnomalySnapshot{Total: r.log.n}
	for k, n := range r.log.byKind {
		if n > 0 {
			if snap.ByKind == nil {
				snap.ByKind = make(map[string]int64)
			}
			snap.ByKind[k] = n
		}
	}
	if r.log.n > 0 {
		n := int64(len(r.log.buf))
		start := int64(0)
		if r.log.n > n {
			start = r.log.n - n
		}
		for i := start; i < r.log.n; i++ {
			snap.Anomalies = append(snap.Anomalies, r.log.buf[i%n])
		}
		last := snap.Anomalies[len(snap.Anomalies)-1]
		snap.Last = &last
	}
	return snap
}
