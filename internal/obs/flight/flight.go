// Package flight is the retained-history layer of the telemetry
// stack: a flight recorder that keeps the last N steps of every
// rank's step records in multi-resolution ring buffers (raw, 10×, and
// 100× downsampled min/max/mean aggregates), runs online anomaly
// detectors over each completed step, and writes postmortem bundles
// when a run aborts.
//
// The recorder is fed from the existing StepWriter line (it
// implements obs.StepSink), so the on-disk JSONL log, the live /steps
// stream, and the retained history can never disagree — they all see
// the identical records. The ingest path is allocation-free in the
// steady state: records land in preallocated fixed-shape slots
// indexed by an interned field table, aggregates update in place, and
// detector state is a handful of scalars. The only allocations after
// warm-up happen when an anomaly actually fires (its JSON event line)
// — and anomalies are, by construction, rare.
package flight

import (
	"math"
	"strings"
	"sync"

	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
)

// maxFields bounds the interned field vocabulary (wall time, phases,
// counters). The simulation emits ~30; the bound keeps every ring
// slot a fixed-size value. Fields past the bound are counted in
// DroppedFields instead of silently vanishing.
const maxFields = 128

// Config configures a Recorder. Every reference field is optional and
// nil-safe.
type Config struct {
	// Ranks is the number of ranks feeding records — the records-per-
	// step count the step-completion tracking needs (minimum 1).
	Ranks int
	// RawSteps is the raw ring depth in steps (default 1024): the
	// recorder retains Ranks×RawSteps full records.
	RawSteps int
	// AggBuckets is the bucket count of each downsampled ring
	// (default 512): the 10× ring spans 10×AggBuckets steps, the 100×
	// ring 100×AggBuckets.
	AggBuckets int
	// Registry, when non-nil, receives anomaly.<kind>.total counters.
	Registry *obs.Registry
	// Tee, when non-nil, receives one "anomaly" event line per fired
	// anomaly — SSE subscribers of /steps see them as event:anomaly
	// frames interleaved with the step records.
	Tee *obs.StepTee
	// Health, when non-nil, feeds the warn-streak detector.
	Health *health.Monitor
	// Detect tunes the online detectors; zero fields take defaults.
	Detect DetectConfig
}

// fieldClass buckets a field for the model-residual detector: which
// side of the perfmodel's compute/comm decomposition it lands on.
type fieldClass uint8

const (
	classOther fieldClass = iota
	classCompute
	classComm
)

// phaseClass maps a recorded phase name onto the perfmodel's
// decomposition: force evaluation, tuple search, integration, and
// binning are compute; the exchange phases (halo, write-back,
// migration, reductions, balance traffic) are communication.
func phaseClass(name string) fieldClass {
	switch {
	case strings.HasPrefix(name, "force"), name == "search", name == "integrate", name == "bin":
		return classCompute
	case strings.HasPrefix(name, "halo"), name == "writeback", name == "migrate",
		name == "reduce", name == "balance", name == "repartition":
		return classComm
	}
	return classOther
}

// fieldTable interns field names to dense indices. Phase and counter
// namespaces are interned through separate maps so the hot path never
// concatenates a prefix; display names ("wall_ns", "phase.halo",
// "comm_wait_ns") are built once at intern time.
type fieldTable struct {
	names   []string
	class   []fieldClass
	phase   map[string]int
	counter map[string]int
	dropped int64
}

func newFieldTable() *fieldTable {
	ft := &fieldTable{
		names:   make([]string, 0, maxFields),
		class:   make([]fieldClass, 0, maxFields),
		phase:   make(map[string]int, 32),
		counter: make(map[string]int, 32),
	}
	ft.names = append(ft.names, "wall_ns") // index 0, always present
	ft.class = append(ft.class, classOther)
	return ft
}

const wallField = 0

func (ft *fieldTable) add(display string, class fieldClass) int {
	if len(ft.names) >= maxFields {
		ft.dropped++
		return -1
	}
	ft.names = append(ft.names, display)
	ft.class = append(ft.class, class)
	return len(ft.names) - 1
}

func (ft *fieldTable) phaseField(name string) int {
	if id, ok := ft.phase[name]; ok {
		return id
	}
	id := ft.add("phase."+name, phaseClass(name))
	ft.phase[name] = id
	return id
}

func (ft *fieldTable) counterField(name string) int {
	if id, ok := ft.counter[name]; ok {
		return id
	}
	id := ft.add(name, classOther)
	ft.counter[name] = id
	return id
}

// rawRec is one retained record in fixed shape: scalar header plus a
// dense field vector indexed by the intern table (NaN = field absent
// from the record).
type rawRec struct {
	step   int
	rank   int
	wallNs int64
	tNs    int64
	used   bool
	vals   [maxFields]float64
}

// fieldAgg is one field's min/max/sum aggregate inside one bucket.
type fieldAgg struct {
	min, max, sum float64
	n             int64
}

// aggBucket aggregates all records of res consecutive steps.
type aggBucket struct {
	start  int // first step of the bucket; -1 = empty
	count  int64
	fields [maxFields]fieldAgg
}

// aggRing is one downsampled resolution: a ring of buckets, each
// spanning res steps, indexed by (step/res) mod len.
type aggRing struct {
	res     int
	buckets []aggBucket
}

func newAggRing(res, buckets int) *aggRing {
	r := &aggRing{res: res, buckets: make([]aggBucket, buckets)}
	for i := range r.buckets {
		r.buckets[i].start = -1
	}
	return r
}

func (r *aggRing) bucket(step int) *aggBucket {
	start := (step / r.res) * r.res
	b := &r.buckets[(step/r.res)%len(r.buckets)]
	if b.start != start {
		b.start = start
		b.count = 0
		for i := range b.fields {
			b.fields[i] = fieldAgg{}
		}
	}
	return b
}

func (b *aggBucket) observe(id int, v float64) {
	fa := &b.fields[id]
	if fa.n == 0 {
		fa.min, fa.max = v, v
	} else {
		if v < fa.min {
			fa.min = v
		}
		if v > fa.max {
			fa.max = v
		}
	}
	fa.sum += v
	fa.n++
}

// stepAcc accumulates one in-flight step across ranks; when all Ranks
// records have arrived the step is "complete" and runs through the
// detectors.
type stepAcc struct {
	step       int
	n          int
	tNs        int64
	wallMax    float64
	wallSum    float64
	commWaitNs float64 // summed over ranks
	computeMax float64 // max over ranks of the compute-class phase sum
	commMax    float64 // max over ranks of the comm-class phase sum
}

// pendingSteps bounds how many partially-observed steps the recorder
// tracks at once; with ranks emitting in step order the live spread
// is 1–2 steps, and offline replay of interleaved logs stays well
// under the bound.
const pendingSteps = 256

// Recorder retains step records and runs the online detectors. It
// implements obs.StepSink; attach with StepWriter.SetSink. All
// methods are safe for concurrent use; a nil *Recorder is a valid
// disabled recorder on the query paths.
type Recorder struct {
	mu      sync.Mutex
	cfg     Config
	ft      *fieldTable
	raw     []rawRec
	rawN    int64 // total records ingested
	res10   *aggRing
	res100  *aggRing
	pending [pendingSteps]stepAcc
	det     detectors
	log     anomalyLog
	pred    Prediction
	hasPred bool
}

// New builds a Recorder. Zero Config sizes take defaults (1024 raw
// steps, 512 aggregate buckets per ring).
func New(cfg Config) *Recorder {
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	if cfg.RawSteps <= 0 {
		cfg.RawSteps = 1024
	}
	if cfg.AggBuckets <= 0 {
		cfg.AggBuckets = 512
	}
	cfg.Detect = cfg.Detect.withDefaults()
	r := &Recorder{
		cfg:    cfg,
		ft:     newFieldTable(),
		raw:    make([]rawRec, cfg.RawSteps*cfg.Ranks),
		res10:  newAggRing(10, cfg.AggBuckets),
		res100: newAggRing(100, cfg.AggBuckets),
	}
	for i := range r.pending {
		r.pending[i].step = -1
	}
	r.det.init(cfg.Detect)
	r.log.init(cfg.Registry, cfg.Detect.LogSize)
	return r
}

// Ranks returns the configured rank count.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return r.cfg.Ranks
}

// Prediction is the performance model's per-step expectation mapped
// onto the recorder's phase classes, in nanoseconds per step per
// task. The residual detector compares the measured max-over-ranks
// compute and comm phase times against it. Plain floats (rather than
// a perfmodel type) keep this package free of an import cycle:
// perfmodel sits above parmd, which is fed by this layer's records.
type Prediction struct {
	ComputeNs float64 `json:"compute_ns"`
	CommNs    float64 `json:"comm_ns"`
	TotalNs   float64 `json:"total_ns"`
}

// SetPrediction arms the model-residual detector — callable mid-run
// (calibrating perfmodel.LocalMachine takes seconds, so scmd does it
// in the background while the run is already stepping).
func (r *Recorder) SetPrediction(p Prediction) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pred = p
	r.hasPred = true
}

// ObserveStep ingests one rank's record for one step (the
// obs.StepSink hook). Allocation-free in the steady state.
func (r *Recorder) ObserveStep(rec obs.StepRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Raw ring: arrival order, fixed-shape slot.
	slot := &r.raw[r.rawN%int64(len(r.raw))]
	r.rawN++
	slot.step, slot.rank, slot.wallNs, slot.tNs, slot.used = rec.Step, rec.Rank, rec.WallNs, rec.TNs, true
	for i := range slot.vals {
		slot.vals[i] = math.NaN()
	}
	slot.vals[wallField] = float64(rec.WallNs)
	for k, v := range rec.PhaseNs {
		if id := r.ft.phaseField(k); id >= 0 {
			slot.vals[id] = float64(v)
		}
	}
	for k, v := range rec.Counters {
		if id := r.ft.counterField(k); id >= 0 {
			slot.vals[id] = float64(v)
		}
	}

	// Downsampled rings.
	if rec.Step >= 0 {
		for _, ring := range [2]*aggRing{r.res10, r.res100} {
			b := ring.bucket(rec.Step)
			b.count++
			for id := 0; id < len(r.ft.names); id++ {
				if v := slot.vals[id]; !math.IsNaN(v) {
					b.observe(id, v)
				}
			}
		}
	}

	// Step-completion tracking for the detectors.
	if rec.Step < 0 {
		return
	}
	acc := &r.pending[rec.Step%pendingSteps]
	if acc.step != rec.Step {
		if acc.step >= 0 && acc.n > 0 {
			r.finalize(acc)
		}
		*acc = stepAcc{step: rec.Step}
	}
	acc.n++
	if t := rec.TNs; t > acc.tNs {
		acc.tNs = t
	}
	wall := float64(rec.WallNs)
	acc.wallSum += wall
	if wall > acc.wallMax {
		acc.wallMax = wall
	}
	var compute, comm float64
	for id := 1; id < len(r.ft.names); id++ {
		v := slot.vals[id]
		if math.IsNaN(v) {
			continue
		}
		switch r.ft.class[id] {
		case classCompute:
			compute += v
		case classComm:
			comm += v
		}
	}
	if compute > acc.computeMax {
		acc.computeMax = compute
	}
	if comm > acc.commMax {
		acc.commMax = comm
	}
	if cw, ok := rec.Counters["comm_wait_ns"]; ok {
		acc.commWaitNs += float64(cw)
	}
	if acc.n >= r.cfg.Ranks {
		r.finalize(acc)
		acc.step = -1
	}
}

// finalize runs the detectors over a completed (or abandoned-partial)
// step. Caller holds r.mu.
func (r *Recorder) finalize(acc *stepAcc) {
	r.det.step(r, acc)
}

// Flush finalizes every still-pending step in step order — the
// offline replay path calls it after the last record, so trailing
// steps that never saw all ranks (a rank died mid-run) still reach
// the detectors.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var live []*stepAcc
	for i := range r.pending {
		if acc := &r.pending[i]; acc.step >= 0 && acc.n > 0 {
			live = append(live, acc)
		}
	}
	for swapped := true; swapped; { // tiny slice; step-order finalize
		swapped = false
		for i := 1; i < len(live); i++ {
			if live[i-1].step > live[i].step {
				live[i-1], live[i] = live[i], live[i-1]
				swapped = true
			}
		}
	}
	for _, acc := range live {
		r.finalize(acc)
		acc.step = -1
	}
}

// CompletedSteps returns how many steps have passed through the
// detectors.
func (r *Recorder) CompletedSteps() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.det.completed
}

// Records returns the total record count ingested.
func (r *Recorder) Records() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rawN
}

// DroppedFields returns how many field-intern requests were refused
// by the vocabulary bound (0 in any normal run).
func (r *Recorder) DroppedFields() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ft.dropped
}

// FieldStats is one field's aggregate over one history bucket.
type FieldStats struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

// HistoryBucket is one downsampled history entry: all records of
// Steps consecutive steps starting at Step, aggregated per field.
type HistoryBucket struct {
	Step   int                   `json:"step"`
	Steps  int                   `json:"steps"`
	Count  int64                 `json:"count"`
	Fields map[string]FieldStats `json:"fields"`
}

// HistorySnapshot is the /history body: raw records at Res 1, bucket
// aggregates at Res 10 or 100, oldest first.
type HistorySnapshot struct {
	Res     int              `json:"res"`
	Ranks   int              `json:"ranks"`
	Records []obs.StepRecord `json:"records,omitempty"`
	Buckets []HistoryBucket  `json:"buckets,omitempty"`
}

// History snapshots the retained history at a resolution (1 = raw
// records, 10 or 100 = downsampled buckets; anything else returns an
// empty snapshot). fields, when non-empty, filters which fields the
// snapshot carries — display names as listed by the buckets
// ("wall_ns", "phase.halo", "comm_wait_ns", plus raw counter and
// phase names); wall time and timestamps always ride along on raw
// records.
func (r *Recorder) History(res int, fields []string) HistorySnapshot {
	if r == nil {
		return HistorySnapshot{Res: res}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := HistorySnapshot{Res: res, Ranks: r.cfg.Ranks}
	keep := func(display string) bool {
		if len(fields) == 0 {
			return true
		}
		for _, f := range fields {
			if f == display || f == strings.TrimPrefix(display, "phase.") {
				return true
			}
		}
		return false
	}
	switch res {
	case 1:
		n := int64(len(r.raw))
		start := int64(0)
		if r.rawN > n {
			start = r.rawN - n
		}
		for i := start; i < r.rawN; i++ {
			snap.Records = append(snap.Records, r.record(&r.raw[i%n], keep))
		}
	case 10, 100:
		ring := r.res10
		if res == 100 {
			ring = r.res100
		}
		// Walk buckets oldest-first: ring order starting after the
		// newest bucket, skipping empties.
		type idxStart struct{ idx, start int }
		var order []idxStart
		for i := range ring.buckets {
			if ring.buckets[i].start >= 0 {
				order = append(order, idxStart{i, ring.buckets[i].start})
			}
		}
		for swapped := true; swapped; {
			swapped = false
			for i := 1; i < len(order); i++ {
				if order[i-1].start > order[i].start {
					order[i-1], order[i] = order[i], order[i-1]
					swapped = true
				}
			}
		}
		for _, o := range order {
			b := &ring.buckets[o.idx]
			hb := HistoryBucket{
				Step: b.start, Steps: ring.res, Count: b.count,
				Fields: make(map[string]FieldStats),
			}
			for id, name := range r.ft.names {
				fa := b.fields[id]
				if fa.n == 0 || !keep(name) {
					continue
				}
				hb.Fields[name] = FieldStats{
					Min: fa.min, Max: fa.max, Mean: fa.sum / float64(fa.n), Count: fa.n,
				}
			}
			snap.Buckets = append(snap.Buckets, hb)
		}
	}
	return snap
}

// record rebuilds an obs.StepRecord from a raw slot (cold path:
// snapshots and bundle writing).
func (r *Recorder) record(slot *rawRec, keep func(string) bool) obs.StepRecord {
	rec := obs.StepRecord{Step: slot.step, Rank: slot.rank, WallNs: slot.wallNs, TNs: slot.tNs}
	for name, id := range r.ft.phase {
		if id < 0 || math.IsNaN(slot.vals[id]) || !keep(r.ft.names[id]) {
			continue
		}
		if rec.PhaseNs == nil {
			rec.PhaseNs = make(map[string]int64)
		}
		rec.PhaseNs[name] = int64(slot.vals[id])
	}
	for name, id := range r.ft.counter {
		if id < 0 || math.IsNaN(slot.vals[id]) || !keep(name) {
			continue
		}
		if rec.Counters == nil {
			rec.Counters = make(map[string]int64)
		}
		rec.Counters[name] = int64(slot.vals[id])
	}
	return rec
}
