package flight

import (
	"os"
	"path/filepath"
	"testing"

	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
)

// mkRec builds one step record; phases/counters may be nil.
func mkRec(step, rank int, wallNs int64, phases, counters map[string]int64) obs.StepRecord {
	return obs.StepRecord{
		Step: step, Rank: rank, WallNs: wallNs,
		TNs:     int64(step+1) * 1_000_000,
		PhaseNs: phases, Counters: counters,
	}
}

func TestHistoryRawRing(t *testing.T) {
	r := New(Config{Ranks: 1, RawSteps: 4})
	for step := 0; step < 6; step++ {
		r.ObserveStep(mkRec(step, 0, int64(1000+step),
			map[string]int64{"halo": int64(10 * (step + 1))},
			map[string]int64{"comm_wait_ns": int64(step)}))
	}
	snap := r.History(1, nil)
	if snap.Ranks != 1 || len(snap.Records) != 4 {
		t.Fatalf("raw snapshot: ranks=%d records=%d, want 1/4", snap.Ranks, len(snap.Records))
	}
	first, last := snap.Records[0], snap.Records[3]
	if first.Step != 2 || last.Step != 5 {
		t.Fatalf("ring window [%d..%d], want [2..5]", first.Step, last.Step)
	}
	if last.WallNs != 1005 || last.TNs != 6_000_000 {
		t.Errorf("last record wall=%d t=%d, want 1005/6000000", last.WallNs, last.TNs)
	}
	if last.PhaseNs["halo"] != 60 || last.Counters["comm_wait_ns"] != 5 {
		t.Errorf("last record fields: %+v %+v", last.PhaseNs, last.Counters)
	}
	if got := r.Records(); got != 6 {
		t.Errorf("Records()=%d, want 6", got)
	}

	// Field filtering: keep the phase, drop the counter.
	snap = r.History(1, []string{"halo"})
	rec := snap.Records[0]
	if len(rec.PhaseNs) != 1 || len(rec.Counters) != 0 {
		t.Errorf("filtered record carries %+v %+v, want only phase.halo", rec.PhaseNs, rec.Counters)
	}
}

func TestHistoryAggregates(t *testing.T) {
	r := New(Config{Ranks: 1, AggBuckets: 8})
	for step := 0; step < 30; step++ {
		r.ObserveStep(mkRec(step, 0, int64(step), nil, nil))
	}
	snap := r.History(10, nil)
	if len(snap.Buckets) != 3 {
		t.Fatalf("res-10 buckets=%d, want 3", len(snap.Buckets))
	}
	b := snap.Buckets[0]
	if b.Step != 0 || b.Steps != 10 || b.Count != 10 {
		t.Fatalf("bucket 0: %+v", b)
	}
	fs, ok := b.Fields["wall_ns"]
	if !ok {
		t.Fatal("bucket 0 missing wall_ns")
	}
	if fs.Min != 0 || fs.Max != 9 || fs.Mean != 4.5 || fs.Count != 10 {
		t.Errorf("wall_ns agg = %+v, want min 0 max 9 mean 4.5 n 10", fs)
	}
	if snap.Buckets[2].Step != 20 {
		t.Errorf("bucket 2 start=%d, want 20", snap.Buckets[2].Step)
	}
	if got := r.History(100, nil); len(got.Buckets) != 1 || got.Buckets[0].Count != 30 {
		t.Errorf("res-100 snapshot: %+v", got.Buckets)
	}
}

// spikeRecorder feeds a steady 2-rank run with one huge wall-time
// spike at step 40 — the canonical wall-anomaly fixture shared by the
// detector and bundle tests.
func spikeRecorder(reg *obs.Registry) *Recorder {
	r := New(Config{
		Ranks: 2, Registry: reg,
		Detect: DetectConfig{Warmup: 10, Cooldown: 5},
	})
	for step := 0; step < 60; step++ {
		wall := int64(1_000_000)
		if step == 40 {
			wall = 100_000_000
		}
		for rank := 0; rank < 2; rank++ {
			r.ObserveStep(mkRec(step, rank, wall, nil, nil))
		}
	}
	return r
}

func TestWallSpikeDetector(t *testing.T) {
	reg := obs.NewRegistry()
	r := spikeRecorder(reg)
	snap := r.Anomalies()
	if snap.Total != 1 {
		t.Fatalf("anomalies=%d (%+v), want exactly the spike", snap.Total, snap.Anomalies)
	}
	a := snap.Anomalies[0]
	if a.Kind != KindWall || a.Step != 40 || !a.Hard {
		t.Errorf("anomaly = %+v, want hard wall at step 40", a)
	}
	if a.Score < 16 {
		t.Errorf("spike z-score %.1f, want >= hard threshold", a.Score)
	}
	if got := reg.Counter("anomaly.wall.total").Load(); got != 1 {
		t.Errorf("anomaly.wall.total=%d, want 1", got)
	}
	if r.CompletedSteps() != 60 {
		t.Errorf("completed=%d, want 60", r.CompletedSteps())
	}
}

func TestImbalanceDetector(t *testing.T) {
	r := New(Config{
		Ranks:  2,
		Detect: DetectConfig{Warmup: 5, ImbalanceWarn: 1.6, ImbalanceSteps: 5, Cooldown: 10},
	})
	// rank 1 takes 5× rank 0: imbalance max/mean = 5/3 ≈ 1.67.
	for step := 0; step < 40; step++ {
		r.ObserveStep(mkRec(step, 0, 1_000_000, nil, nil))
		r.ObserveStep(mkRec(step, 1, 5_000_000, nil, nil))
	}
	snap := r.Anomalies()
	if snap.ByKind[KindImbalance] == 0 {
		t.Fatalf("no imbalance anomaly fired: %+v", snap.Anomalies)
	}
	a := *snap.Last
	if a.Kind != KindImbalance || a.Value < 1.6 {
		t.Errorf("imbalance anomaly = %+v", a)
	}
}

func TestCommWaitDetector(t *testing.T) {
	r := New(Config{
		Ranks:  1,
		Detect: DetectConfig{Warmup: 5, Cooldown: 10},
	})
	step := 0
	feed := func(n int, waitNs int64) {
		for i := 0; i < n; i++ {
			r.ObserveStep(mkRec(step, 0, 1_000_000, nil,
				map[string]int64{"comm_wait_ns": waitNs}))
			step++
		}
	}
	feed(20, 50_000)  // 5% wait: healthy baseline
	feed(10, 800_000) // 80% wait: comm degraded mid-run
	snap := r.Anomalies()
	if snap.ByKind[KindCommWait] == 0 {
		t.Fatalf("no comm_wait anomaly fired: %+v", snap.Anomalies)
	}
	if a := *snap.Last; a.Value < 0.15 {
		t.Errorf("comm_wait anomaly = %+v, want fast EWMA above floor", a)
	}
}

func TestModelResidualDetector(t *testing.T) {
	r := New(Config{
		Ranks:  1,
		Detect: DetectConfig{Warmup: 5, ModelBand: 3, ModelSteps: 5, Cooldown: 10},
	})
	r.SetPrediction(Prediction{ComputeNs: 1_000_000, CommNs: 500_000})
	// Measured force time 5× the model's expectation, comm on-model.
	for step := 0; step < 30; step++ {
		r.ObserveStep(mkRec(step, 0, 6_000_000,
			map[string]int64{"force:interior": 5_000_000, "halo": 500_000}, nil))
	}
	snap := r.Anomalies()
	if snap.ByKind[KindModel] == 0 {
		t.Fatalf("no model anomaly fired: %+v", snap.Anomalies)
	}
	a := *snap.Last
	if a.Phase != "compute" || a.Value < 3 {
		t.Errorf("model anomaly = %+v, want compute residual ratio >= band", a)
	}
}

func TestHealthDetector(t *testing.T) {
	mon := health.New(health.Config{Every: 1})
	r := New(Config{Ranks: 1, Detect: DetectConfig{Warmup: 5, Cooldown: 10}, Health: mon})
	for step := 0; step < 10; step++ {
		mon.ObserveAtomCount(step, 100, 100)
		r.ObserveStep(mkRec(step, 0, 1_000_000, nil, nil))
	}
	if n := r.Anomalies().Total; n != 0 {
		t.Fatalf("healthy run produced %d anomalies", n)
	}
	mon.ObserveAtomCount(10, 99, 100) // an atom went missing: probe fails
	r.ObserveStep(mkRec(10, 0, 1_000_000, nil, nil))
	snap := r.Anomalies()
	if snap.ByKind[KindHealth] != 1 {
		t.Fatalf("health anomaly missing: %+v", snap.Anomalies)
	}
	if a := *snap.Last; !a.Hard || a.Step != 10 {
		t.Errorf("health anomaly = %+v, want hard at step 10", a)
	}
}

func TestAnomalyTeeEventAndLog(t *testing.T) {
	tee := obs.NewStepTee()
	sub := tee.Subscribe(4)
	r := New(Config{Ranks: 1, Tee: tee})
	r.RecordAbort(7, "rank 1: halo checksum mismatch")

	line := <-sub.Lines()
	if line.Event != "anomaly" {
		t.Errorf("tee event = %q, want anomaly", line.Event)
	}
	for _, want := range []string{`"anomaly"`, `"kind":"abort"`, `"hard":true`, "halo checksum"} {
		if !contains(string(line.Data), want) {
			t.Errorf("anomaly line %s missing %q", line.Data, want)
		}
	}
	snap := r.Anomalies()
	if snap.Total != 1 || snap.ByKind[KindAbort] != 1 || snap.Last == nil {
		t.Fatalf("anomaly log snapshot: %+v", snap)
	}
	if snap.Last.Step != 7 || snap.Last.Msg == "" {
		t.Errorf("abort anomaly = %+v", snap.Last)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAnomalyLogBounded(t *testing.T) {
	r := New(Config{Ranks: 1, Detect: DetectConfig{LogSize: 4}})
	for i := 0; i < 10; i++ {
		r.RecordAbort(i, "x")
	}
	snap := r.Anomalies()
	if snap.Total != 10 || len(snap.Anomalies) != 4 {
		t.Fatalf("total=%d retained=%d, want 10/4", snap.Total, len(snap.Anomalies))
	}
	if snap.Anomalies[0].Step != 6 || snap.Last.Step != 9 {
		t.Errorf("retained window [%d..%d], want [6..9]", snap.Anomalies[0].Step, snap.Last.Step)
	}
}

func TestObserveStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	r := New(Config{Ranks: 2, RawSteps: 64})
	phases := map[string]int64{"force:interior": 900_000, "halo": 50_000, "search": 20_000}
	counters := map[string]int64{"comm_wait_ns": 40_000, "halo.bytes": 4096}
	step := 0
	ingest := func() {
		for rank := 0; rank < 2; rank++ {
			r.ObserveStep(mkRec(step, rank, 1_000_000, phases, counters))
		}
		step++
	}
	// Warm-up: intern every field and roll once through the raw ring so
	// steady state is genuinely steady.
	for i := 0; i < 100; i++ {
		ingest()
	}
	if allocs := testing.AllocsPerRun(50, ingest); allocs != 0 {
		t.Errorf("ObserveStep allocates %.1f per step in steady state, want 0", allocs)
	}
	if r.DroppedFields() != 0 {
		t.Errorf("dropped fields: %d", r.DroppedFields())
	}
}

func TestBundleWriteAnalyze(t *testing.T) {
	reg := obs.NewRegistry()
	r := spikeRecorder(reg)
	r.RecordAbort(59, "test abort")
	mon := health.New(health.Config{Every: 1})
	mon.ObserveAtomCount(0, 100, 100)

	dir := filepath.Join(t.TempDir(), "bundle")
	err := WriteBundle(dir, BundleSources{
		Flight:   r,
		Registry: reg,
		Health:   mon,
		Info:     map[string]string{"model": "test", "ranks": "2"},
		Reason:   "test abort",
	})
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	for _, name := range []string{BundleSteps, BundleAnomalies, BundleMetrics, BundleHealth, BundleConfig} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("bundle %s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, BundleTrace)); err == nil {
		t.Error("trace.json written without a trace recorder attached")
	}

	// Offline replay over the bundle reproduces the live detection.
	rep, err := Analyze(dir, DetectConfig{Warmup: 10, Cooldown: 5})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Ranks != 2 || rep.Records != 120 {
		t.Errorf("report ranks=%d records=%d, want 2/120", rep.Ranks, rep.Records)
	}
	var wall *Anomaly
	for i := range rep.Replayed {
		if rep.Replayed[i].Kind == KindWall {
			wall = &rep.Replayed[i]
			break
		}
	}
	if wall == nil || wall.Step != 40 || !wall.Hard {
		t.Fatalf("replay did not reproduce the wall spike: %+v", rep.Replayed)
	}
	// The run's own log (wall spike + abort) rides along verbatim.
	if len(rep.Recorded) != 2 {
		t.Errorf("recorded anomalies = %+v, want the spike and the abort", rep.Recorded)
	}
	if rep.Hard() < 2 {
		t.Errorf("Hard()=%d, want >= 2 (spike + abort)", rep.Hard())
	}

	// A bare steps.jsonl (no bundle directory) analyzes too.
	rep2, err := Analyze(filepath.Join(dir, BundleSteps), DetectConfig{Warmup: 10, Cooldown: 5})
	if err != nil {
		t.Fatalf("Analyze(steps.jsonl): %v", err)
	}
	if len(rep2.Recorded) != 0 {
		t.Error("bare step-log analysis should carry no recorded anomalies")
	}
	hasWall := false
	for _, a := range rep2.Replayed {
		hasWall = hasWall || a.Kind == KindWall
	}
	if !hasWall {
		t.Errorf("bare-log replay missed the wall spike: %+v", rep2.Replayed)
	}
}
