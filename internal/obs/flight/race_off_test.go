//go:build !race

package flight

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation allocates.
const raceEnabled = false
