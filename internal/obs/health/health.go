// Package health is the in-run invariant-probe layer of the parallel
// MD stack: a sampled monitor that checks, at a configurable cadence
// inside the step loop, the physical and structural invariants a
// correct parallel MD code must preserve — total-energy drift relative
// to the initial kinetic energy, total linear momentum, global
// atom-count conservation across migration, halo mirror consistency
// (exported-vs-imported checksums per exchange phase), and SC-vs-FS
// tuple-count parity on sampled steps.
//
// Every probe observation classifies into a severity (OK, Warn, Fail)
// against configurable thresholds, and each severity maps to a set of
// actions: record into the probe summary (and a metrics Registry),
// emit a structured log event through the obs.Logger seam, or abort
// the run. Abort is cooperative and collective — a failing probe arms
// the monitor, and the simulation loop turns the armed state into an
// error at a global synchronization point, so no rank ever exits an
// exchange protocol unilaterally (which would deadlock its peers).
//
// A nil *Monitor is a valid disabled monitor: Due and ParityDue return
// false after a single nil test, every Observe call is a no-op, and
// the step loop's probe sites cost one branch — the same zero-cost-
// when-disabled contract the span recorder keeps (asserted by the
// halo-exchange zero-allocation tests in package parmd).
package health

import (
	"fmt"
	"math"
	"sync"

	"sctuple/internal/obs"
)

// Severity classifies one probe observation.
type Severity uint8

// Probe severities, in escalation order.
const (
	OK Severity = iota
	Warn
	Fail
)

// String names the severity for logs and summaries.
func (s Severity) String() string {
	switch s {
	case OK:
		return "ok"
	case Warn:
		return "warn"
	case Fail:
		return "fail"
	}
	return fmt.Sprintf("severity#%d", uint8(s))
}

// Action is a bit set of responses to a probe observation.
type Action uint8

// The three actions a severity can trigger.
const (
	// ActionRecord counts the observation in the probe summary and
	// exports it to the configured Registry.
	ActionRecord Action = 1 << iota
	// ActionLog emits a structured event through the configured Logger
	// (warn severity at Warn level, fail at Error; ok observations log
	// at Debug only).
	ActionLog
	// ActionAbort arms the monitor so the simulation loop aborts the
	// run at its next collective synchronization point. Only meaningful
	// on OnFail.
	ActionAbort
)

// Config tunes a Monitor. The zero value of any field selects its
// default.
type Config struct {
	// Every is the probe cadence in steps: the cheap invariant probes
	// (energy, momentum, atom count, halo mirrors) run on steps where
	// step % Every == 0. Default 1 (every step).
	Every int
	// ParityEvery is the cadence of the expensive SC-vs-FS tuple-count
	// parity probe (it gathers the configuration and re-enumerates both
	// patterns serially). 0 disables parity probing.
	ParityEvery int

	// EnergyWarn and EnergyFail bound the relative total-energy drift
	// |E(t) − E₀| / KE₀ of an NVE run. Defaults 1e-2 and 1e-1: a
	// healthy velocity-Verlet trajectory at MD time steps oscillates a
	// few 1e-3 of KE₀ around E₀, a percent-level excursion deserves a
	// look, and a tenth of the kinetic scale means the integration is
	// broken.
	EnergyWarn, EnergyFail float64
	// MomentumWarn and MomentumFail bound the total linear momentum
	// drift |P(t) − P₀| relative to the Σ m|v| momentum scale at the
	// baseline. Defaults 1e-9 and 1e-5.
	MomentumWarn, MomentumFail float64

	// OnWarn and OnFail select the actions of each severity. Defaults:
	// OnWarn = Record|Log, OnFail = Record|Log (abort is opt-in).
	OnWarn, OnFail Action

	// Logger receives structured probe events under ActionLog (nil
	// drops them).
	Logger *obs.Logger
	// Registry receives per-probe severity counters
	// (health.<probe>.{ok,warn,fail}) and last-value gauges
	// (health.<probe>.value) under ActionRecord (nil drops them).
	Registry *obs.Registry
}

// Probe names, shared by summaries, registry metrics, and log events.
const (
	ProbeEnergyDrift = "energy_drift"
	ProbeMomentum    = "momentum"
	ProbeAtomCount   = "atom_count"
	ProbeHaloMirror  = "halo_mirror"
	ProbeTupleParity = "tuple_parity"
)

// FailError reports the probe failure that aborted a run.
type FailError struct {
	Probe     string
	Step      int
	Rank      int
	Value     float64
	Threshold float64
}

// Error formats the failure with its full context.
func (e *FailError) Error() string {
	return fmt.Sprintf("health: probe %s failed at step %d (rank %d): value %g exceeds threshold %g",
		e.Probe, e.Step, e.Rank, e.Value, e.Threshold)
}

// ErrPeerFailure is returned by ranks whose own probes passed when the
// collective abort check learns another rank armed an abort.
var ErrPeerFailure = fmt.Errorf("health: probe failed on another rank")

// probeState accumulates one probe's observations.
type probeState struct {
	name       string
	ok         int64
	warn       int64
	fail       int64
	worst      float64
	last       float64
	lastStep   int
	lastSevere Severity
}

// Monitor runs the sampled invariant probes of one simulation. All
// methods are safe for concurrent use by multiple ranks; a nil
// *Monitor is a valid disabled monitor.
type Monitor struct {
	cfg Config

	mu          sync.Mutex
	probes      map[string]*probeState
	order       []string
	baselineSet bool
	e0          float64 // total energy at the first sampled step
	keDenom     float64 // |KE₀| fallback chain, for the relative drift
	p0          [3]float64
	pScale      float64
	abort       *FailError
}

// New builds a Monitor, applying defaults for zero Config fields.
func New(cfg Config) *Monitor {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	if cfg.EnergyWarn <= 0 {
		cfg.EnergyWarn = 1e-2
	}
	if cfg.EnergyFail <= 0 {
		cfg.EnergyFail = 1e-1
	}
	if cfg.MomentumWarn <= 0 {
		cfg.MomentumWarn = 1e-9
	}
	if cfg.MomentumFail <= 0 {
		cfg.MomentumFail = 1e-5
	}
	if cfg.OnWarn == 0 {
		cfg.OnWarn = ActionRecord | ActionLog
	}
	if cfg.OnFail == 0 {
		cfg.OnFail = ActionRecord | ActionLog
	}
	return &Monitor{cfg: cfg, probes: make(map[string]*probeState)}
}

// Due reports whether the cheap invariant probes sample the given step
// (false on a nil monitor).
func (m *Monitor) Due(step int) bool {
	return m != nil && step >= 0 && step%m.cfg.Every == 0
}

// ParityDue reports whether the tuple-parity probe samples the given
// step (false on a nil monitor or when parity probing is disabled).
func (m *Monitor) ParityDue(step int) bool {
	return m != nil && m.cfg.ParityEvery > 0 && step >= 0 && step%m.cfg.ParityEvery == 0
}

// ParityEnabled reports whether the tuple-parity probe will sample any
// step of the run — the hook rank 0 uses to pre-build the probe's
// enumerators outside the step loop.
func (m *Monitor) ParityEnabled() bool {
	return m != nil && m.cfg.ParityEvery > 0
}

// ObserveEnergy feeds one sampled global energy measurement. The first
// observation sets the baseline E₀ and the KE₀ normalization; later
// observations classify |E − E₀| / KE₀ against the energy thresholds.
func (m *Monitor) ObserveEnergy(step int, pe, ke float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if !m.baselineSet {
		m.e0 = pe + ke
		// KE₀ normalizes the drift; a cold start (KE₀ = 0) falls back
		// to |E₀|, and a fully degenerate baseline to 1.
		m.keDenom = math.Abs(ke)
		if m.keDenom == 0 {
			m.keDenom = math.Abs(m.e0)
		}
		if m.keDenom == 0 {
			m.keDenom = 1
		}
		m.baselineSet = true
		m.mu.Unlock()
		m.observe(ProbeEnergyDrift, step, -1, 0, m.cfg.EnergyWarn, m.cfg.EnergyFail)
		return
	}
	drift := math.Abs((pe+ke)-m.e0) / m.keDenom
	if !isFinite(pe + ke) {
		drift = math.Inf(1)
	}
	m.mu.Unlock()
	m.observe(ProbeEnergyDrift, step, -1, drift, m.cfg.EnergyWarn, m.cfg.EnergyFail)
}

// ObserveMomentum feeds one sampled total linear momentum (amu·Å/fs
// components) with its normalization scale Σ m|v|. The first
// observation sets the baseline P₀; later ones classify |P − P₀|
// relative to the baseline scale.
func (m *Monitor) ObserveMomentum(step int, px, py, pz, scale float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	st, ok := m.probes[ProbeMomentum]
	_ = st
	if !ok {
		m.p0 = [3]float64{px, py, pz}
		m.pScale = math.Abs(scale)
		if m.pScale == 0 {
			m.pScale = 1
		}
		m.mu.Unlock()
		m.observe(ProbeMomentum, step, -1, 0, m.cfg.MomentumWarn, m.cfg.MomentumFail)
		return
	}
	dx, dy, dz := px-m.p0[0], py-m.p0[1], pz-m.p0[2]
	drift := math.Sqrt(dx*dx+dy*dy+dz*dz) / m.pScale
	if !isFinite(px + py + pz) {
		drift = math.Inf(1)
	}
	m.mu.Unlock()
	m.observe(ProbeMomentum, step, -1, drift, m.cfg.MomentumWarn, m.cfg.MomentumFail)
}

// ObserveAtomCount feeds one sampled global atom count against the
// run's invariant total. Any mismatch is a Fail (atoms were lost or
// duplicated in migration — there is no benign amount).
func (m *Monitor) ObserveAtomCount(step int, got, want int64) {
	if m == nil {
		return
	}
	m.observeExact(ProbeAtomCount, step, -1, float64(got-want), got == want)
}

// ObserveHaloMirror feeds one rank's halo-consistency check for one
// exchange phase: the checksum this rank computed over the bytes it
// received versus the checksum its peer computed over the bytes it
// sent. A mismatch is a Fail (the mirror copies diverged in flight).
func (m *Monitor) ObserveHaloMirror(step, rank int, local, remote uint64) {
	if m == nil {
		return
	}
	diff := 0.0
	if local != remote {
		diff = 1
	}
	m.observeExact(ProbeHaloMirror, step, rank, diff, local == remote)
}

// ObserveTupleParity feeds one sampled SC-vs-FS tuple-count
// comparison: the number of tuples the shift-collapse pattern
// enumerates versus the deduplicated full-shell count on the same
// configuration. Any disagreement is a Fail (the SC search dropped or
// invented tuples).
func (m *Monitor) ObserveTupleParity(step int, sc, fs int64) {
	if m == nil {
		return
	}
	m.observeExact(ProbeTupleParity, step, -1, float64(sc-fs), sc == fs)
}

// observeExact handles the binary probes: pass = OK with value 0,
// mismatch = Fail carrying the discrepancy.
func (m *Monitor) observeExact(probe string, step, rank int, value float64, pass bool) {
	if pass {
		m.observe(probe, step, rank, 0, 0.5, 0.5)
		return
	}
	if value == 0 {
		value = 1
	}
	m.observe(probe, step, rank, math.Abs(value)+1, 0.5, 0.5)
}

// observe classifies one observation and applies the configured
// actions.
func (m *Monitor) observe(probe string, step, rank int, value, warnTh, failTh float64) {
	sev := OK
	switch {
	case value >= failTh || math.IsNaN(value):
		sev = Fail
	case value >= warnTh:
		sev = Warn
	}

	var actions Action
	switch sev {
	case Warn:
		actions = m.cfg.OnWarn
	case Fail:
		actions = m.cfg.OnFail
	default:
		actions = ActionRecord
	}

	m.mu.Lock()
	st := m.probes[probe]
	if st == nil {
		st = &probeState{name: probe}
		m.probes[probe] = st
		m.order = append(m.order, probe)
	}
	switch sev {
	case OK:
		st.ok++
	case Warn:
		st.warn++
	case Fail:
		st.fail++
	}
	if value > st.worst || math.IsNaN(value) {
		st.worst = value
	}
	st.last, st.lastStep, st.lastSevere = value, step, sev
	armed := false
	if sev == Fail && actions&ActionAbort != 0 && m.abort == nil {
		m.abort = &FailError{Probe: probe, Step: step, Rank: rank, Value: value, Threshold: failTh}
		armed = true
	}
	_ = armed
	m.mu.Unlock()

	if actions&ActionRecord != 0 && m.cfg.Registry != nil {
		m.cfg.Registry.Counter("health." + probe + "." + sev.String()).Inc()
		m.cfg.Registry.Gauge("health." + probe + ".value").Set(value)
	}
	if actions&ActionLog != 0 {
		args := []any{"probe", probe, "severity", sev.String(), "step", step, "value", value}
		if rank >= 0 {
			args = append(args, "rank", rank)
		}
		switch sev {
		case Fail:
			m.cfg.Logger.Error("health probe", append(args, "threshold", failTh)...)
		case Warn:
			m.cfg.Logger.Warn("health probe", append(args, "threshold", warnTh)...)
		default:
			m.cfg.Logger.Debug("health probe", args...)
		}
	}
}

// Logger exposes the monitor's configured logger (nil on a nil
// monitor or when none was configured) — probe implementations use it
// to report sites where a probe could not run, e.g. a lattice too
// small for the full-shell parity re-enumeration.
func (m *Monitor) Logger() *obs.Logger {
	if m == nil {
		return nil
	}
	return m.cfg.Logger
}

// AbortPending reports whether a failed probe armed an abort (always
// false on a nil monitor). The simulation loop reduces this flag over
// all ranks at a synchronization point and turns a set flag into
// AbortError on the arming rank and ErrPeerFailure elsewhere, so the
// abort is collective and cannot deadlock the exchange protocol.
func (m *Monitor) AbortPending() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.abort != nil
}

// AbortError returns the arming failure, or nil when no abort is
// pending.
func (m *Monitor) AbortError() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.abort == nil {
		return nil
	}
	return m.abort
}

// ProbeSummary is one probe's accumulated outcome.
type ProbeSummary struct {
	Probe    string  `json:"probe"`
	OK       int64   `json:"ok"`
	Warn     int64   `json:"warn"`
	Fail     int64   `json:"fail"`
	Worst    float64 `json:"worst"`
	Last     float64 `json:"last"`
	LastStep int     `json:"last_step"`
}

// Severity returns the probe's worst observed severity.
func (p ProbeSummary) Severity() Severity {
	switch {
	case p.Fail > 0:
		return Fail
	case p.Warn > 0:
		return Warn
	}
	return OK
}

// Summary is the monitor's accumulated outcome, one entry per probe in
// first-observation order.
type Summary struct {
	Probes []ProbeSummary `json:"probes"`
}

// Healthy reports whether every probe stayed OK.
func (s Summary) Healthy() bool {
	for _, p := range s.Probes {
		if p.Severity() != OK {
			return false
		}
	}
	return true
}

// Probe returns the summary of one probe (zero value when the probe
// never observed anything).
func (s Summary) Probe(name string) ProbeSummary {
	for _, p := range s.Probes {
		if p.Probe == name {
			return p
		}
	}
	return ProbeSummary{Probe: name}
}

// Summary snapshots the monitor's accumulated probe outcomes (empty on
// a nil monitor).
func (m *Monitor) Summary() Summary {
	if m == nil {
		return Summary{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{Probes: make([]ProbeSummary, 0, len(m.order))}
	for _, name := range m.order {
		st := m.probes[name]
		s.Probes = append(s.Probes, ProbeSummary{
			Probe: st.name, OK: st.ok, Warn: st.warn, Fail: st.fail,
			Worst: st.worst, Last: st.last, LastStep: st.lastStep,
		})
	}
	return s
}

// Totals returns the cumulative ok/warn/fail observation counts
// summed over all probes (zeros on a nil monitor). Unlike Summary it
// is allocation-free, so in-loop consumers — the flight recorder's
// warn-streak detector samples it every step — can poll it without
// touching the heap.
func (m *Monitor) Totals() (ok, warn, fail int64) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.probes {
		ok += st.ok
		warn += st.warn
		fail += st.fail
	}
	return ok, warn, fail
}

// Checksum64 is the FNV-1a hash the halo mirror probe runs over wire
// payloads — cheap, allocation-free, and identical on both endpoints.
func Checksum64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
