package health

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"

	"sctuple/internal/obs"
)

// TestNilMonitorIsInert: a nil monitor is the documented disabled
// state — never due, every observation a no-op, no abort, empty
// summary.
func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	if m.Due(0) || m.ParityDue(0) {
		t.Error("nil monitor reports probes due")
	}
	m.ObserveEnergy(0, -100, 10)
	m.ObserveMomentum(0, 1, 2, 3, 4)
	m.ObserveAtomCount(0, 5, 6)
	m.ObserveHaloMirror(0, 0, 1, 2)
	m.ObserveTupleParity(0, 7, 8)
	if m.AbortPending() {
		t.Error("nil monitor has an abort pending")
	}
	if err := m.AbortError(); err != nil {
		t.Errorf("nil monitor abort error: %v", err)
	}
	if s := m.Summary(); len(s.Probes) != 0 || !s.Healthy() {
		t.Errorf("nil monitor summary: %+v", s)
	}
	if m.Logger() != nil {
		t.Error("nil monitor returned a logger")
	}
}

func TestCadence(t *testing.T) {
	m := New(Config{Every: 5, ParityEvery: 10})
	for step, want := range map[int]bool{0: true, 1: false, 4: false, 5: true, 10: true} {
		if m.Due(step) != want {
			t.Errorf("Due(%d) = %v, want %v", step, m.Due(step), want)
		}
	}
	for step, want := range map[int]bool{0: true, 5: false, 10: true, 15: false, 20: true} {
		if m.ParityDue(step) != want {
			t.Errorf("ParityDue(%d) = %v, want %v", step, m.ParityDue(step), want)
		}
	}
	if New(Config{}).ParityDue(0) {
		t.Error("parity probing should default off")
	}
	if !New(Config{}).Due(3) {
		t.Error("default cadence should sample every step")
	}
}

// TestEnergyEscalation injects a drifting total energy — the signature
// of a broken integrator — and asserts the ok → warn → fail
// escalation against the configured thresholds.
func TestEnergyEscalation(t *testing.T) {
	m := New(Config{EnergyWarn: 1e-3, EnergyFail: 1e-1})
	const pe0, ke0 = -100.0, 10.0
	m.ObserveEnergy(0, pe0, ke0) // baseline
	m.ObserveEnergy(1, pe0+1e-4*ke0, ke0)
	m.ObserveEnergy(2, pe0+1e-2*ke0, ke0) // drift 1e-2 of KE₀: warn
	m.ObserveEnergy(3, pe0+ke0, ke0)      // drift 1.0 of KE₀: fail

	p := m.Summary().Probe(ProbeEnergyDrift)
	if p.OK != 2 || p.Warn != 1 || p.Fail != 1 {
		t.Fatalf("energy escalation: ok=%d warn=%d fail=%d, want 2/1/1", p.OK, p.Warn, p.Fail)
	}
	if p.Severity() != Fail {
		t.Errorf("probe severity %v, want Fail", p.Severity())
	}
	if math.Abs(p.Worst-1.0) > 1e-12 {
		t.Errorf("worst drift %g, want 1.0", p.Worst)
	}
	if m.Summary().Healthy() {
		t.Error("summary healthy after a fail")
	}
	// Abort was not configured, so even a fail does not arm it.
	if m.AbortPending() {
		t.Error("abort armed without ActionAbort")
	}
}

// TestNonFiniteEnergyFails: a NaN or Inf total energy is an immediate
// fail regardless of thresholds — the first symptom of a blown-up run.
func TestNonFiniteEnergyFails(t *testing.T) {
	m := New(Config{})
	m.ObserveEnergy(0, -100, 10)
	m.ObserveEnergy(1, math.NaN(), 10)
	if p := m.Summary().Probe(ProbeEnergyDrift); p.Fail != 1 {
		t.Errorf("NaN energy: fail=%d, want 1", p.Fail)
	}
}

func TestMomentumDrift(t *testing.T) {
	m := New(Config{MomentumWarn: 1e-6, MomentumFail: 1e-3})
	m.ObserveMomentum(0, 0, 0, 0, 100)    // baseline, scale Σm|v| = 100
	m.ObserveMomentum(1, 1e-3, 0, 0, 100) // relative 1e-5: warn
	m.ObserveMomentum(2, 0.5, 0, 0, 100)  // relative 5e-3: fail
	p := m.Summary().Probe(ProbeMomentum)
	if p.OK != 1 || p.Warn != 1 || p.Fail != 1 {
		t.Errorf("momentum: ok=%d warn=%d fail=%d, want 1/1/1", p.OK, p.Warn, p.Fail)
	}
}

// TestExactProbes: atom count, halo mirror, and tuple parity are
// binary — any mismatch is a fail, matches are ok.
func TestExactProbes(t *testing.T) {
	m := New(Config{})
	m.ObserveAtomCount(0, 648, 648)
	m.ObserveAtomCount(1, 647, 648)
	m.ObserveHaloMirror(0, 1, 0xdead, 0xdead)
	m.ObserveHaloMirror(1, 1, 0xdead, 0xbeef)
	m.ObserveTupleParity(0, 1000, 1000)
	m.ObserveTupleParity(1, 1000, 999)
	for _, probe := range []string{ProbeAtomCount, ProbeHaloMirror, ProbeTupleParity} {
		p := m.Summary().Probe(probe)
		if p.OK != 1 || p.Fail != 1 || p.Warn != 0 {
			t.Errorf("%s: ok=%d warn=%d fail=%d, want 1/0/1", probe, p.OK, p.Warn, p.Fail)
		}
	}
}

// TestAbortOnFail: with ActionAbort configured on fail, the first
// failing probe arms the abort and AbortError carries its context.
func TestAbortOnFail(t *testing.T) {
	m := New(Config{OnFail: ActionRecord | ActionAbort})
	m.ObserveEnergy(0, -100, 10)
	if m.AbortPending() {
		t.Fatal("abort armed by the baseline observation")
	}
	m.ObserveHaloMirror(7, 3, 1, 2) // rank 3 fails at step 7
	m.ObserveEnergy(8, -100+100, 10)
	if !m.AbortPending() {
		t.Fatal("fail with ActionAbort did not arm the abort")
	}
	err := m.AbortError()
	fe, ok := err.(*FailError)
	if !ok {
		t.Fatalf("abort error %T, want *FailError", err)
	}
	// The first failure wins; later fails must not overwrite it.
	if fe.Probe != ProbeHaloMirror || fe.Step != 7 || fe.Rank != 3 {
		t.Errorf("abort context = %+v, want halo_mirror step 7 rank 3", fe)
	}
	for _, want := range []string{ProbeHaloMirror, "step 7", "rank 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("abort error %q does not mention %q", err, want)
		}
	}
}

// TestActionsLogAndRecord: warn/fail observations emit structured log
// records with probe/step context and export severity counters plus a
// last-value gauge to the registry.
func TestActionsLogAndRecord(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	m := New(Config{
		Logger:   obs.JSONLogger(&buf, slog.LevelWarn),
		Registry: reg,
	})
	m.ObserveEnergy(0, -100, 10)
	m.ObserveEnergy(5, -100+0.05*10, 10) // warn at default 1e-2
	m.ObserveEnergy(6, -100+10, 10)      // fail at default 1e-1

	out := buf.String()
	if !strings.Contains(out, `"probe":"energy_drift"`) || !strings.Contains(out, `"step":5`) {
		t.Errorf("log output missing probe/step context: %s", out)
	}
	if !strings.Contains(out, "WARN") || !strings.Contains(out, "ERROR") {
		t.Errorf("log output missing severity levels: %s", out)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["health.energy_drift.ok"]; got != 1 {
		t.Errorf("ok counter = %d, want 1", got)
	}
	if got := snap.Counters["health.energy_drift.warn"]; got != 1 {
		t.Errorf("warn counter = %d, want 1", got)
	}
	if got := snap.Counters["health.energy_drift.fail"]; got != 1 {
		t.Errorf("fail counter = %d, want 1", got)
	}
	if got := snap.Gauges["health.energy_drift.value"]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("value gauge = %g, want 1.0", got)
	}
}

func TestSummaryOrderAndLookup(t *testing.T) {
	m := New(Config{})
	m.ObserveHaloMirror(0, 0, 1, 1)
	m.ObserveEnergy(0, -1, 1)
	s := m.Summary()
	if len(s.Probes) != 2 || s.Probes[0].Probe != ProbeHaloMirror || s.Probes[1].Probe != ProbeEnergyDrift {
		t.Errorf("summary order: %+v, want first-observation order", s.Probes)
	}
	if p := s.Probe("no_such_probe"); p.OK != 0 || p.Probe != "no_such_probe" {
		t.Errorf("unknown probe lookup: %+v", p)
	}
}

func TestChecksum64(t *testing.T) {
	a := Checksum64([]byte("halo payload"))
	b := Checksum64([]byte("halo payload"))
	c := Checksum64([]byte("halo paylo4d"))
	if a != b {
		t.Error("checksum not deterministic")
	}
	if a == c {
		t.Error("checksum missed a byte flip")
	}
	if Checksum64(nil) != Checksum64([]byte{}) {
		t.Error("nil and empty payloads should hash alike")
	}
}
