package obs

import (
	"io"
	"log/slog"
)

// Logger is the structured logging seam of the simulation stack: a
// nil-safe wrapper over log/slog threaded through parmd, md, and comm
// in place of ad-hoc prints, so run-lifecycle events, health-probe
// reports, and rank failures all emit machine-parseable records with
// consistent attributes (rank, step, probe, …).
//
// A nil *Logger is a valid disabled logger: every method is a cheap
// no-op, so call sites stay unconditional and the hot paths carry no
// logging branches beyond one nil test.
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog handler as a Logger.
func NewLogger(h slog.Handler) *Logger {
	return &Logger{s: slog.New(h)}
}

// TextLogger builds a Logger emitting human-readable key=value lines
// to w at the given minimum level.
func TextLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// JSONLogger builds a Logger emitting one JSON object per line to w at
// the given minimum level.
func JSONLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// With returns a Logger with the given attributes attached to every
// subsequent record (e.g. rank=3). Nil receivers stay nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Enabled reports whether records at the given level would be emitted
// (false on a nil logger), so callers can skip expensive attribute
// construction.
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	return l.s.Enabled(nil, level)
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.s.Debug(msg, args...)
	}
}

// Info emits an info-level record.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.s.Info(msg, args...)
	}
}

// Warn emits a warning-level record.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.s.Warn(msg, args...)
	}
}

// Error emits an error-level record.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.s.Error(msg, args...)
	}
}
