package obs

import "strings"

// This file is the single authority for how telemetry names map
// between the three surfaces that carry them:
//
//   - registry names — dotted, hierarchical ("comm.halo.bytes",
//     "phase.halo:wait.max_ms"), the keys of Registry/Snapshot;
//   - JSONL step-record counter keys — snake_case
//     ("comm_halo_bytes"), flat because they live beside the
//     rankStatFields counters in one map;
//   - Prometheus exposition names — [a-zA-Z0-9_:] with class-like
//     middle segments lifted into labels
//     (comm_bytes{class="halo"}, phase_max_ms{phase="halo:wait"}).
//
// Emitters (parmd's publishMetrics and step records, health's
// registry export) and the exposition renderer in obs/serve all go
// through these helpers, and a consistency test in package parmd
// pins the round trip, so the three surfaces cannot drift apart.

// PromName maps a dotted registry name to a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_' (dots and
// the ':' of phase names included — ':' is reserved for recording
// rules in Prometheus naming conventions), and a leading digit gets
// a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// labeledPrefixes names the registry families whose middle segment is
// an instance label, not part of the metric name: comm.<class>.bytes,
// phase.<phase>.max_ms, health.<probe>.ok. Their exposition form is
// <prefix>_<field>{<labelKey>="<middle>"}.
var labeledPrefixes = map[string]string{
	"comm":   "class",
	"phase":  "phase",
	"health": "probe",
}

// SplitLabeled recognizes a three-segment registry name whose family
// lifts its middle segment into a label (see labeledPrefixes). It
// returns the exposition metric name, the label key, and the label
// value; ok is false for every other name (which exposes flat under
// PromName). The middle segment may itself contain ':' (phase names
// like "halo:wait") but never '.'.
func SplitLabeled(name string) (metric, labelKey, labelValue string, ok bool) {
	head, rest, found := strings.Cut(name, ".")
	if !found {
		return "", "", "", false
	}
	key, isLabeled := labeledPrefixes[head]
	if !isLabeled {
		return "", "", "", false
	}
	mid, field, found := strings.Cut(rest, ".")
	if !found || mid == "" || field == "" || strings.Contains(field, ".") {
		return "", "", "", false
	}
	return PromName(head + "_" + field), key, mid, true
}

// CommClassMetric builds the registry name of one traffic class's
// counter: "comm.<class>.<field>".
func CommClassMetric(class, field string) string {
	return "comm." + class + "." + field
}

// CommClassKey builds the JSONL step-record key of one traffic
// class's per-step delta: "comm_<class>_<field>".
func CommClassKey(class, field string) string {
	return "comm_" + class + "_" + field
}
