package obs

import (
	"bytes"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"parmd.steps", "parmd_steps"},
		{"comm.halo.bytes", "comm_halo_bytes"},
		{"phase.force:interior.max_ms", "phase_force_interior_max_ms"},
		{"already_fine_123", "already_fine_123"},
		{"has-dash", "has_dash"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"", "_"},
		{"weird\"quote\nnewline", "weird_quote_newline"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitLabeled(t *testing.T) {
	cases := []struct {
		in               string
		metric, key, val string
		ok               bool
	}{
		{"comm.halo.bytes", "comm_bytes", "class", "halo", true},
		{"comm.migrate.wait_ns", "comm_wait_ns", "class", "migrate", true},
		{"phase.halo:wait.max_ms", "phase_max_ms", "phase", "halo:wait", true},
		{"health.energy_drift.ok", "health_ok", "probe", "energy_drift", true},
		// Not labeled: wrong family, too few or too many segments.
		{"parmd.steps", "", "", "", false},
		{"comm.bytes", "", "", "", false},
		{"comm.halo.deep.bytes", "", "", "", false},
		{"comm..bytes", "", "", "", false},
		{"serve_uptime_seconds", "", "", "", false},
	}
	for _, c := range cases {
		metric, key, val, ok := SplitLabeled(c.in)
		if ok != c.ok || metric != c.metric || key != c.key || val != c.val {
			t.Errorf("SplitLabeled(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				c.in, metric, key, val, ok, c.metric, c.key, c.val, c.ok)
		}
	}
}

// TestCommClassNamesAgree pins the round trip between the three
// surfaces a traffic-class counter appears on: the registry name, the
// JSONL step-record key, and the exposition family+label.
func TestCommClassNamesAgree(t *testing.T) {
	for _, class := range []string{"halo", "force", "migrate", "collective", "health", "balance", "other"} {
		reg := CommClassMetric(class, "bytes")
		if want := "comm." + class + ".bytes"; reg != want {
			t.Fatalf("CommClassMetric(%q) = %q, want %q", class, reg, want)
		}
		metric, key, val, ok := SplitLabeled(reg)
		if !ok || metric != "comm_bytes" || key != "class" || val != class {
			t.Fatalf("SplitLabeled(%q) = (%q, %q, %q, %v); registry and exposition drifted",
				reg, metric, key, val, ok)
		}
		if got, want := CommClassKey(class, "bytes"), PromName(reg); got != want {
			t.Fatalf("JSONL key %q != flattened registry name %q", got, want)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4})
	// 4 observations spread over the buckets: (0,1], (1,2], (2,4], >4.
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100)
	snap := r.Snapshot().Histograms["q"]
	p50, p90, p99 := snap.Quantiles()
	if !(p50 > 1 && p50 <= 2) {
		t.Errorf("p50 = %g, want in (1, 2]", p50)
	}
	// Overflow-bucket quantiles clamp to the last finite bound.
	if p99 != 4 {
		t.Errorf("p99 = %g, want clamp to 4", p99)
	}
	if p90 < p50 || p99 < p90 {
		t.Errorf("quantiles not monotone: p50 %g p90 %g p99 %g", p50, p90, p99)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestStepTeeDrops(t *testing.T) {
	tee := NewStepTee()
	if tee.Active() {
		t.Fatal("empty tee reports active")
	}
	sub := tee.Subscribe(1)
	if !tee.Active() || tee.Subscribers() != 1 {
		t.Fatal("subscribe did not activate the tee")
	}
	for i := 0; i < 10; i++ {
		tee.Publish([]byte("line\n"))
	}
	if got := sub.Dropped(); got != 9 {
		t.Errorf("subscriber dropped %d lines, want 9", got)
	}
	if got := tee.Dropped(); got != 9 {
		t.Errorf("tee dropped %d lines, want 9", got)
	}
	if got := <-sub.Lines(); string(got.Data) != "line\n" || got.Event != "" {
		t.Errorf("delivered line %q event %q", got.Data, got.Event)
	}
	tee.Close()
	if _, ok := <-sub.Lines(); ok {
		t.Error("subscriber channel still open after tee close")
	}
	// Nil-safety: all methods are no-ops.
	var nilTee *StepTee
	nilTee.Publish([]byte("x"))
	nilTee.Close()
	if nilTee.Active() || nilTee.Subscribe(4) != nil || nilTee.Dropped() != 0 {
		t.Error("nil tee is not inert")
	}
}

// TestStepWriterTeeOnly: with no file sink, the writer is active only
// while a subscriber listens, and published lines match the encoded
// records.
func TestStepWriterTeeOnly(t *testing.T) {
	tee := NewStepTee()
	w := NewStepWriterTee(nil, tee)
	if w.Active() {
		t.Fatal("tee-only writer active with no subscriber")
	}
	w.WriteStep(StepRecord{Step: 0, Rank: 0}) // dropped: nobody listens
	sub := tee.Subscribe(4)
	if !w.Active() {
		t.Fatal("writer inactive with a live subscriber")
	}
	w.WriteStep(StepRecord{Step: 1, Rank: 0, WallNs: 7})
	line := <-sub.Lines()
	if want := `"step":1`; !bytes.Contains(line.Data, []byte(want)) {
		t.Errorf("streamed line %q missing %q", line.Data, want)
	}
	if err := w.Err(); err != nil {
		t.Errorf("tee-only writer reported sink error: %v", err)
	}
	sub.Cancel()
	if w.Active() {
		t.Error("writer still active after the only subscriber left")
	}
}
