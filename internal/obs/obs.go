// Package obs is the telemetry layer of the parallel stack: per-rank
// phase span timelines, a metrics registry (counters, gauges,
// fixed-bucket histograms), per-step JSONL emission, and Chrome
// trace-event export — the instrumentation behind the paper's
// per-phase runtime decomposition (§5) and the load-imbalance evidence
// scalability claims rest on.
//
// The design constraint is that telemetry must never perturb what it
// measures. All hot-path entry points are nil-safe and branch-cheap: a
// nil *RankRecorder (or a disabled Recorder, one atomic load) makes
// StartSpan/End complete no-ops with zero allocations, so the
// simulation loops carry their instrumentation unconditionally and the
// bit-identical determinism and 0 allocs/op guarantees of the halo
// exchange are preserved whether telemetry is on or off (asserted by
// tests in package parmd). Enabled spans write into preallocated
// per-rank ring buffers — recording cost is two monotonic clock reads
// and one ring store, still allocation-free.
//
// Ring slots and the per-phase accumulators are written and read with
// atomic word operations, so a live reader (the telemetry HTTP server
// of obs/serve) can snapshot PhaseStats, per-rank phase totals, and
// the span rings while ranks are still recording: publication order
// (slot words first, then the ring counter) plus a recheck of the
// counter after copying lets the reader discard the slots a concurrent
// writer may have been overwriting, and everything else is a plain
// atomic load.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MaxPhases bounds the process-wide phase table. Phases are a small
// fixed vocabulary (step phases of the MD loop plus one per force
// term), so a tight bound lets per-rank accumulators be flat arrays.
const MaxPhases = 64

var (
	phaseMu    sync.Mutex
	phaseNames []string
)

// Phase interns a phase name and returns its dense ID. Interning is
// idempotent (same name, same ID) and meant for initialization paths —
// hot loops hold the returned PhaseID, never the string. It panics
// when the table overflows MaxPhases, which would mean phase names are
// being generated per step instead of per program.
func Phase(name string) PhaseID {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	for i, n := range phaseNames {
		if n == name {
			return PhaseID(i)
		}
	}
	if len(phaseNames) >= MaxPhases {
		panic(fmt.Sprintf("obs: more than %d phases registered (interning per-step names?)", MaxPhases))
	}
	phaseNames = append(phaseNames, name)
	return PhaseID(len(phaseNames) - 1)
}

// PhaseID identifies an interned phase name.
type PhaseID uint8

// Name returns the interned name of the phase.
func (p PhaseID) Name() string {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase#%d", int(p))
}

// numPhases returns the current size of the phase table.
func numPhases() int {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	return len(phaseNames)
}

// span is one recorded interval in its ring slot: start nanoseconds
// since the recorder's epoch, duration, and the packed step + phase.
// Fields are atomic words so a live exporter can read slots while the
// owning rank overwrites them (tearing between fields is handled by
// the ring-counter recheck in snapshotSpans, not per slot).
type span struct {
	start atomic.Int64
	dur   atomic.Int64
	meta  atomic.Int64 // step<<8 | phase
}

// packSpanMeta and its inverse move (step, phase) through one atomic
// word. The arithmetic right shift recovers negative steps (-1 tags
// pre-loop work).
func packSpanMeta(step int32, phase PhaseID) int64 {
	return int64(step)<<8 | int64(phase)
}

func unpackSpanMeta(meta int64) (step int32, phase PhaseID) {
	return int32(meta >> 8), PhaseID(uint8(meta))
}

// SpanCopy is one span read out of a ring by a live snapshot.
type SpanCopy struct {
	StartNs int64
	DurNs   int64
	Step    int32
	Phase   PhaseID
}

// Recorder records phase spans for a fixed set of ranks, each into its
// own preallocated ring buffer. A nil *Recorder is a valid disabled
// recorder: Rank returns nil and every downstream call is a no-op.
type Recorder struct {
	epoch   time.Time
	enabled atomic.Bool
	ranks   []RankRecorder
}

// NewRecorder builds an enabled recorder for the given number of
// ranks, each with a ring of spansPerRank spans (minimum 16). When a
// ring fills, the oldest spans are overwritten and counted as dropped,
// so long runs degrade to a trailing window instead of growing.
func NewRecorder(ranks, spansPerRank int) *Recorder {
	if ranks < 1 {
		ranks = 1
	}
	if spansPerRank < 16 {
		spansPerRank = 16
	}
	r := &Recorder{epoch: time.Now(), ranks: make([]RankRecorder, ranks)}
	for i := range r.ranks {
		rr := &r.ranks[i]
		rr.rec = r
		rr.rank = i
		rr.spans = make([]span, spansPerRank)
		rr.flows = make([]flowPoint, spansPerRank)
	}
	r.enabled.Store(true)
	return r
}

// Enable switches recording on or off. Spans started while disabled
// are dropped entirely (their End is a no-op).
func (r *Recorder) Enable(on bool) { r.enabled.Store(on) }

// Ranks returns the number of rank tracks (0 for a nil recorder).
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Rank returns rank i's recorder, or nil when r is nil — the handle
// each rank threads through its step loop. Distinct ranks may record
// concurrently; a single rank's recorder is not safe for concurrent
// use (ranks are single goroutines).
func (r *Recorder) Rank(i int) *RankRecorder {
	if r == nil {
		return nil
	}
	return &r.ranks[i]
}

// flowPoint is one endpoint of a sender→receiver message flow: the
// outgoing point recorded at send time on the sender's track, or the
// incoming point recorded at receive time on the receiver's track.
// Matching endpoints share an ID, so the trace exporter can emit
// Chrome flow events ("s"/"f") that draw message-causality arrows
// between rank tracks in Perfetto. Fields are atomic words for the
// same live-snapshot reason as span's.
type flowPoint struct {
	id   atomic.Uint64
	ts   atomic.Int64 // nanoseconds since the recorder's epoch
	meta atomic.Int64 // step<<1 | out (out = 1 at the sender)
}

// flowCopy is one flow point read out of a ring by a live snapshot.
type flowCopy struct {
	id   uint64
	ts   int64
	step int32
	out  bool
}

// RankRecorder is one rank's span sink.
type RankRecorder struct {
	rec     *Recorder
	rank    int
	spans   []span
	n       atomic.Int64 // total spans recorded; ring index is n % len(spans)
	flows   []flowPoint
	fn      atomic.Int64 // total flow points recorded; ring index is fn % len(flows)
	step    int32
	phaseNs [MaxPhases]int64 // accessed with sync/atomic only
	_       [64]byte         // pad: rank recorders sit in one slice, ranks write concurrently
}

// SetStep tags subsequently recorded spans with an MD step number
// (use -1 for pre-loop work such as the initial force evaluation).
func (r *RankRecorder) SetStep(step int) {
	if r == nil {
		return
	}
	r.step = int32(step)
}

// Span is an in-flight interval returned by StartSpan. It is a plain
// value (no allocation); call End exactly once. The zero Span (from a
// nil or disabled recorder) is valid and End on it is a no-op.
type Span struct {
	r     *RankRecorder
	start int64
	phase PhaseID
}

// StartSpan opens a span of the given phase. On a nil or disabled
// recorder it returns the no-op zero Span after a single nil test plus
// one atomic load.
func (r *RankRecorder) StartSpan(phase PhaseID) Span {
	if r == nil || !r.rec.enabled.Load() {
		return Span{}
	}
	return Span{r: r, start: int64(time.Since(r.rec.epoch)), phase: phase}
}

// End closes the span, accumulating its duration into the rank's
// per-phase total and storing it in the ring. The slot words are
// published before the ring counter advances, so a live snapshot
// either sees the complete span or none of it.
func (s Span) End() {
	r := s.r
	if r == nil {
		return
	}
	d := int64(time.Since(r.rec.epoch)) - s.start
	atomic.AddInt64(&r.phaseNs[s.phase], d)
	slot := &r.spans[r.n.Load()%int64(len(r.spans))]
	slot.start.Store(s.start)
	slot.dur.Store(d)
	slot.meta.Store(packSpanMeta(r.step, s.phase))
	r.n.Add(1)
}

// flowID builds the shared flow identifier of one message: the step,
// tag, and sending rank pin it uniquely within a run, and both
// endpoints can compute it independently (the receiver knows who sent
// to it from the compiled exchange plan).
func flowID(step int32, tag, sender int) uint64 {
	return uint64(uint32(step+1))<<32 | uint64(uint32(tag))<<8 | uint64(uint8(sender))
}

// FlowSend records the outgoing endpoint of a message this rank sends
// with the given tag — call it at send time. Nil or disabled recorders
// make it a no-op; enabled ones store into the preallocated flow ring,
// so the call never allocates.
func (r *RankRecorder) FlowSend(tag int) {
	if r == nil || !r.rec.enabled.Load() {
		return
	}
	r.putFlow(flowID(r.step, tag, r.rank), true)
}

// FlowRecv records the incoming endpoint of a message received from
// rank `from` with the given tag — call it at receive time. Both
// endpoints of one message resolve to the same flow ID.
func (r *RankRecorder) FlowRecv(tag, from int) {
	if r == nil || !r.rec.enabled.Load() {
		return
	}
	r.putFlow(flowID(r.step, tag, from), false)
}

func (r *RankRecorder) putFlow(id uint64, out bool) {
	meta := int64(r.step) << 1
	if out {
		meta |= 1
	}
	slot := &r.flows[r.fn.Load()%int64(len(r.flows))]
	slot.id.Store(id)
	slot.ts.Store(int64(time.Since(r.rec.epoch)))
	slot.meta.Store(meta)
	r.fn.Add(1)
}

// PhaseNs returns the rank's accumulated nanoseconds in a phase. Safe
// to call concurrently with recording.
func (r *RankRecorder) PhaseNs(phase PhaseID) int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.phaseNs[phase])
}

// CopyPhaseNs copies the rank's cumulative per-phase totals into dst —
// the delta primitive per-step emitters subtract against.
func (r *RankRecorder) CopyPhaseNs(dst *[MaxPhases]int64) {
	if r == nil {
		*dst = [MaxPhases]int64{}
		return
	}
	for i := range dst {
		dst[i] = atomic.LoadInt64(&r.phaseNs[i])
	}
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (r *RankRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	if d := r.n.Load() - int64(len(r.spans)); d > 0 {
		return d
	}
	return 0
}

// snapshotSpans appends the ring's surviving spans, oldest first, to
// dst. It is safe to call while the owning rank records: the counter
// is read before and after copying, and the window a concurrent
// writer may have been overwriting — spans older than n₂ − len, whose
// slots were reused for spans [n₁, n₂) — is discarded, so every
// returned span is fully published.
func (r *RankRecorder) snapshotSpans(dst []SpanCopy) []SpanCopy {
	n1 := r.n.Load()
	ringLen := int64(len(r.spans))
	lo := int64(0)
	if d := n1 - ringLen; d > 0 {
		lo = d
	}
	type raw struct{ start, dur, meta int64 }
	tmp := make([]raw, 0, n1-lo)
	for k := lo; k < n1; k++ {
		slot := &r.spans[k%ringLen]
		tmp = append(tmp, raw{slot.start.Load(), slot.dur.Load(), slot.meta.Load()})
	}
	n2 := r.n.Load()
	if d := n2 - ringLen; d > lo {
		if d >= n1 {
			tmp = tmp[:0] // the whole ring churned during the copy
		} else {
			tmp = tmp[d-lo:]
		}
	}
	for _, t := range tmp {
		step, phase := unpackSpanMeta(t.meta)
		dst = append(dst, SpanCopy{StartNs: t.start, DurNs: t.dur, Step: step, Phase: phase})
	}
	return dst
}

// snapshotFlows is snapshotSpans for the flow-point ring.
func (r *RankRecorder) snapshotFlows(dst []flowCopy) []flowCopy {
	n1 := r.fn.Load()
	ringLen := int64(len(r.flows))
	lo := int64(0)
	if d := n1 - ringLen; d > 0 {
		lo = d
	}
	type raw struct {
		id       uint64
		ts, meta int64
	}
	tmp := make([]raw, 0, n1-lo)
	for k := lo; k < n1; k++ {
		slot := &r.flows[k%ringLen]
		tmp = append(tmp, raw{slot.id.Load(), slot.ts.Load(), slot.meta.Load()})
	}
	n2 := r.fn.Load()
	if d := n2 - ringLen; d > lo {
		if d >= n1 {
			tmp = tmp[:0]
		} else {
			tmp = tmp[d-lo:]
		}
	}
	for _, t := range tmp {
		dst = append(dst, flowCopy{id: t.id, ts: t.ts, step: int32(t.meta >> 1), out: t.meta&1 != 0})
	}
	return dst
}

// PhaseStat is one phase's per-rank time decomposition: the
// load-imbalance view (max vs mean across ranks) the paper's critical-
// path analysis is built on.
type PhaseStat struct {
	Phase     string
	PerRankNs []int64
	MaxNs     int64
	MeanNs    float64
}

// Imbalance returns max/mean — 1.0 is a perfectly balanced phase.
func (s PhaseStat) Imbalance() float64 {
	if s.MeanNs == 0 {
		return 0
	}
	return float64(s.MaxNs) / s.MeanNs
}

// PhaseStats aggregates every rank's accumulated per-phase time into
// one row per phase with nonzero total, in phase-registration order.
// The accumulators are read atomically, so it is safe to call while
// ranks are still recording — the live /phases endpoint does.
func (r *Recorder) PhaseStats() []PhaseStat {
	if r == nil {
		return nil
	}
	var out []PhaseStat
	for p := 0; p < numPhases(); p++ {
		per := make([]int64, len(r.ranks))
		total := int64(0)
		for i := range r.ranks {
			per[i] = atomic.LoadInt64(&r.ranks[i].phaseNs[p])
			total += per[i]
		}
		if total == 0 {
			continue
		}
		xs := make([]float64, len(per))
		for i, v := range per {
			xs[i] = float64(v)
		}
		mx, mean := MaxMean(xs)
		out = append(out, PhaseStat{
			Phase:     PhaseID(p).Name(),
			PerRankNs: per,
			MaxNs:     int64(mx),
			MeanNs:    mean,
		})
	}
	return out
}

// CriticalPathNs sums the per-phase max-rank times — the lower bound
// on wall time if every phase ended at a global synchronization point.
// Its ratio to measured wall time is the critical-path fraction.
func CriticalPathNs(stats []PhaseStat) int64 {
	var sum int64
	for _, s := range stats {
		sum += s.MaxNs
	}
	return sum
}

// MaxMean returns the maximum and arithmetic mean of xs (0, 0 for an
// empty slice) — the shared reduction behind phase imbalance and the
// per-field RankStats reductions in package parmd.
func MaxMean(xs []float64) (max, mean float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	max = xs[0]
	sum := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
		sum += x
	}
	return max, sum / float64(len(xs))
}
