package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestPhaseInterning(t *testing.T) {
	a := Phase("test.alpha")
	b := Phase("test.beta")
	if a == b {
		t.Fatalf("distinct names interned to one ID %d", a)
	}
	if again := Phase("test.alpha"); again != a {
		t.Errorf("re-interning test.alpha: %d, want %d", again, a)
	}
	if a.Name() != "test.alpha" || b.Name() != "test.beta" {
		t.Errorf("names round-trip: %q, %q", a.Name(), b.Name())
	}
}

func TestRecorderSpansAndPhaseTotals(t *testing.T) {
	p1, p2 := Phase("test.p1"), Phase("test.p2")
	rec := NewRecorder(2, 64)
	rr := rec.Rank(1)
	rr.SetStep(3)
	for i := 0; i < 4; i++ {
		sp := rr.StartSpan(p1)
		time.Sleep(100 * time.Microsecond)
		sp.End()
	}
	sp := rr.StartSpan(p2)
	sp.End()

	if got := rr.PhaseNs(p1); got <= 0 {
		t.Errorf("phase p1 total %d ns, want > 0", got)
	}
	if rr.Dropped() != 0 {
		t.Errorf("dropped %d spans in an oversized ring", rr.Dropped())
	}
	if rec.Rank(0).PhaseNs(p1) != 0 {
		t.Error("rank 0 accumulated time it never recorded")
	}

	stats := rec.PhaseStats()
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Phase] = s
	}
	s1, ok := byName["test.p1"]
	if !ok {
		t.Fatal("PhaseStats missing test.p1")
	}
	if len(s1.PerRankNs) != 2 || s1.PerRankNs[0] != 0 || s1.PerRankNs[1] != rr.PhaseNs(p1) {
		t.Errorf("p1 per-rank %v, want [0 %d]", s1.PerRankNs, rr.PhaseNs(p1))
	}
	if s1.MaxNs != rr.PhaseNs(p1) {
		t.Errorf("p1 max %d, want %d", s1.MaxNs, rr.PhaseNs(p1))
	}
	if want := float64(rr.PhaseNs(p1)) / 2; s1.MeanNs != want {
		t.Errorf("p1 mean %g, want %g", s1.MeanNs, want)
	}
	if imb := s1.Imbalance(); imb != 2 {
		t.Errorf("p1 imbalance %g on a 2-rank world with one idle rank, want 2", imb)
	}
	if cp := CriticalPathNs(stats); cp < s1.MaxNs {
		t.Errorf("critical path %d below largest phase %d", cp, s1.MaxNs)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	p := Phase("test.wrap")
	rec := NewRecorder(1, 16)
	rr := rec.Rank(0)
	for i := 0; i < 40; i++ {
		rr.SetStep(i)
		sp := rr.StartSpan(p)
		sp.End()
	}
	if got := rr.Dropped(); got != 40-16 {
		t.Errorf("dropped %d, want %d", got, 40-16)
	}
	events := rec.Events()
	// 1 metadata + 16 surviving spans, tagged with the latest steps.
	var spans []TraceEvent
	for _, e := range events {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 16 {
		t.Fatalf("%d surviving spans, want 16", len(spans))
	}
	if first, last := spans[0].Args["step"], spans[15].Args["step"]; first != 24 || last != 39 {
		t.Errorf("surviving window steps [%v, %v], want [24, 39]", first, last)
	}
}

func TestDisabledAndNilRecorderAreFreeAndInert(t *testing.T) {
	p := Phase("test.disabled")
	var nilRec *Recorder
	if nilRec.Rank(0) != nil {
		t.Fatal("nil recorder returned a rank")
	}
	var nilRank *RankRecorder
	nilRank.SetStep(1)
	sp := nilRank.StartSpan(p)
	sp.End() // must not panic

	rec := NewRecorder(1, 16)
	rec.Enable(false)
	rr := rec.Rank(0)
	sp = rr.StartSpan(p)
	sp.End()
	if rr.PhaseNs(p) != 0 || rr.n.Load() != 0 {
		t.Error("disabled recorder recorded a span")
	}

	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s := nilRank.StartSpan(p)
		s.End()
	}); allocs != 0 {
		t.Errorf("nil rank recorder: %g allocs/op", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s := rr.StartSpan(p)
		s.End()
	}); allocs != 0 {
		t.Errorf("disabled recorder: %g allocs/op", allocs)
	}
	rec.Enable(true)
	if allocs := testing.AllocsPerRun(100, func() {
		s := rr.StartSpan(p)
		s.End()
	}); allocs != 0 {
		t.Errorf("enabled recorder: %g allocs/op", allocs)
	}
}

func TestWriteTraceWellFormed(t *testing.T) {
	pa, pb := Phase("test.trace.a"), Phase("test.trace.b")
	rec := NewRecorder(2, 32)
	for rank := 0; rank < 2; rank++ {
		rr := rec.Rank(rank)
		rr.SetStep(0)
		for _, p := range []PhaseID{pa, pb} {
			sp := rr.StartSpan(p)
			sp.End()
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[int]bool{}
	names := map[int]string{}
	spans := 0
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			names[e.Tid], _ = e.Args["name"].(string)
		case "X":
			tracks[e.Tid] = true
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("event %q has ts %g dur %g", e.Name, e.Ts, e.Dur)
			}
			if _, ok := e.Args["step"]; !ok {
				t.Errorf("event %q missing step arg", e.Name)
			}
			spans++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if len(tracks) != 2 {
		t.Errorf("%d tracks, want one per rank (2)", len(tracks))
	}
	if spans != 4 {
		t.Errorf("%d span events, want 4", spans)
	}
	if names[0] != "rank 0" || names[1] != "rank 1" {
		t.Errorf("track names %v, want rank 0 / rank 1", names)
	}

	// A nil recorder still writes a valid, empty trace.
	buf.Reset()
	var nilRec *Recorder
	if err := nilRec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil-recorder trace invalid: %v", err)
	}
}

func TestMaxMean(t *testing.T) {
	if mx, mean := MaxMean(nil); mx != 0 || mean != 0 {
		t.Errorf("empty: (%g, %g)", mx, mean)
	}
	if mx, mean := MaxMean([]float64{2, 8, 5}); mx != 8 || mean != 5 {
		t.Errorf("got (%g, %g), want (8, 5)", mx, mean)
	}
	if mx, mean := MaxMean([]float64{-3, -1}); mx != -1 || mean != -2 {
		t.Errorf("negatives: (%g, %g), want (-1, -2)", mx, mean)
	}
}
