//go:build !race

package obs

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation allocates.
const raceEnabled = false
