package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store overwrites the counter with an exact value — the end-of-run
// reconciliation primitive: a run that published approximate per-step
// deltas live replaces them with the authoritative total, idempotently
// (a second Store of the same total is a no-op), without double
// counting the live adds.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable float64 metric. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation v lands in the
// first bucket whose upper bound is ≥ v, or the overflow bucket past
// the last bound. Buckets are fixed at construction, so Observe is a
// lock-free linear scan over a handful of bounds plus two atomic adds.
type Histogram struct {
	uppers []float64
	counts []atomic.Int64 // len(uppers)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Uppers holds the bucket upper bounds; Counts has one extra
	// trailing entry for observations above the last bound.
	Uppers []float64 `json:"uppers"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation inside the bucket the quantile rank
// lands in (the first bucket interpolates from 0, matching the
// latency-style layouts ExpBuckets produces). Observations in the
// overflow bucket clamp to the last finite bound — the histogram
// carries no upper limit for them. Returns 0 when empty.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Uppers) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := float64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i >= len(h.Uppers) {
				return h.Uppers[len(h.Uppers)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Uppers[i-1]
			}
			return lo + (h.Uppers[i]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Uppers[len(h.Uppers)-1]
}

// Quantiles returns the conventional p50/p90/p99 summary of the
// snapshot — the tail view /metrics and the bench validation tables
// surface next to the mean.
func (h HistSnapshot) Quantiles() (p50, p90, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// first with the given growth factor — the standard latency-style
// bucket layout.
func ExpBuckets(first, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := first
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of counters, gauges, and histograms —
// the single snapshot surface that absorbs the stack's ad-hoc counters
// (parmd RankStats, comm per-class traffic, receive-wait time).
// Metric handles are created on first use and stable thereafter;
// lookups take a mutex, so callers hold handles across hot loops
// rather than re-resolving names.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls keep the original
// buckets).
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		u := append([]float64(nil), uppers...)
		sort.Float64s(u)
		h = &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. It is safe to call
// concurrently with metric updates (values are read atomically,
// per-metric).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Uppers: append([]float64(nil), h.uppers...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}
