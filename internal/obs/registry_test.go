package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.ops")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("test.ops").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter %d, want 8000", got)
	}
	reg.Gauge("test.level").Set(2.5)
	if got := reg.Gauge("test.level").Load(); got != 2.5 {
		t.Errorf("gauge %g, want 2.5", got)
	}
	s := reg.Snapshot()
	if s.Counters["test.ops"] != 8000 || s.Gauges["test.level"] != 2.5 {
		t.Errorf("snapshot %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1.0, 3, 50, 1000} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["test.ms"]
	// v ≤ 1 → bucket 0 (both 0.5 and the boundary value 1.0),
	// 3 → bucket 1, 50 → bucket 2, 1000 → overflow.
	if want := []int64{2, 1, 1, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] ||
		s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Errorf("bucket counts %v, want %v", s.Counts, want)
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if want := (0.5 + 1 + 3 + 50 + 1000) / 5; s.Mean() != want {
		t.Errorf("mean %g, want %g", s.Mean(), want)
	}
	// Second lookup with different bounds keeps the original buckets.
	if h2 := reg.Histogram("test.ms", []float64{7}); h2 != h {
		t.Error("histogram identity not stable across lookups")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets %v, want %v", b, want)
		}
	}
}

func TestStepWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewStepWriter(&buf)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for step := 0; step < 5; step++ {
				w.WriteStep(StepRecord{
					Step: step, Rank: rank, WallNs: 100,
					PhaseNs:  map[string]int64{"halo": 40, "force": 50},
					Counters: map[string]int64{"atoms_imported": 7},
				})
			}
		}(rank)
	}
	wg.Wait()
	w.WriteValue(map[string]any{"snapshot": NewRegistry().Snapshot()})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		lines++
	}
	if lines != 4*5+1 {
		t.Errorf("%d JSONL lines, want %d", lines, 4*5+1)
	}

	// A nil writer is inert.
	var nilW *StepWriter
	nilW.WriteStep(StepRecord{})
	if nilW.Err() != nil {
		t.Error("nil StepWriter produced an error")
	}
}

// TestStepRecordGoldenSchema pins the serialized shape of one JSONL
// step record — the exact key set downstream log pipelines parse. A
// field rename or addition must fail here deliberately.
func TestStepRecordGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	w := NewStepWriter(&buf)
	w.WriteStep(StepRecord{
		Step: 3, Rank: 1, WallNs: 100, TNs: 5000,
		PhaseNs:  map[string]int64{"halo": 40},
		Counters: map[string]int64{"comm_halo_bytes": 512},
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	want := []string{"step", "rank", "wall_ns", "t_ns", "phase_ns", "counters"}
	if len(rec) != len(want) {
		t.Errorf("record has %d keys %v, want exactly %v", len(rec), recKeys(rec), want)
	}
	for _, k := range want {
		if _, ok := rec[k]; !ok {
			t.Errorf("record key %q missing", k)
		}
	}
	// Empty maps are elided, not emitted as null/{}.
	buf.Reset()
	w = NewStepWriter(&buf)
	w.WriteStep(StepRecord{Step: 0, Rank: 0, WallNs: 1})
	var bare map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &bare); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare["phase_ns"]; ok {
		t.Error("empty phase_ns serialized instead of omitted")
	}
	if _, ok := bare["counters"]; ok {
		t.Error("empty counters serialized instead of omitted")
	}
}

func recKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
