// Package serve is the live-telemetry HTTP server of the parallel MD
// stack: an embeddable, dependency-free (net/http only) endpoint set
// that exposes a running simulation — Prometheus text exposition of
// the metrics registry, a health summary usable as a liveness probe,
// a streaming NDJSON/SSE feed of per-step records, live per-phase
// timing, and on-demand Chrome-trace snapshots — plus net/http/pprof
// on the same mux. Every endpoint reads only lock-free or
// mutex-guarded snapshot surfaces (obs.Registry.Snapshot, atomic
// recorder rings, health.Monitor.Summary, the StepTee), so serving
// never blocks or perturbs the step loop; with no subscriber
// attached the simulation's hot path stays allocation-free.
package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sctuple/internal/obs"
)

// sample is one exposition line: an optional label pair and a
// pre-formatted value.
type sample struct {
	labelKey, labelValue string
	value                string
}

// family is one exposition metric family: a TYPE line plus its
// samples, grouped so multi-class families (comm_bytes over halo,
// migrate, …) render contiguously as the format requires.
type family struct {
	name    string
	typ     string
	samples []sample
}

// formatFloat renders a float the way the exposition format expects
// (shortest round-trip form; integers without exponent).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// addSample files one registry metric into its exposition family,
// lifting class-like middle segments into labels via obs.SplitLabeled
// (comm.halo.bytes → comm_bytes{class="halo"}) and flattening
// everything else through obs.PromName.
func addSample(fams map[string]*family, typ, name, value string) {
	metric, lk, lv, labeled := obs.SplitLabeled(name)
	if !labeled {
		metric, lk, lv = obs.PromName(name), "", ""
	}
	f := fams[metric]
	if f == nil {
		f = &family{name: metric, typ: typ}
		fams[metric] = f
	}
	f.samples = append(f.samples, sample{labelKey: lk, labelValue: lv, value: value})
}

// WriteExposition renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges one sample
// per line, histograms as cumulative _bucket/_sum/_count series plus
// derived _p50/_p90/_p99 quantile gauges (estimated from the bucket
// counts — see obs.HistSnapshot.Quantile). Families are emitted in
// sorted name order with their samples sorted by label value, so the
// output is deterministic and golden-testable.
func WriteExposition(w io.Writer, snap obs.Snapshot) error {
	fams := make(map[string]*family)
	for name, v := range snap.Counters {
		addSample(fams, "counter", name, strconv.FormatInt(v, 10))
	}
	for name, v := range snap.Gauges {
		addSample(fams, "gauge", name, formatFloat(v))
	}
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.samples, func(i, j int) bool {
			return f.samples[i].labelValue < f.samples[j].labelValue
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			var err error
			if s.labelKey == "" {
				_, err = fmt.Fprintf(w, "%s %s\n", f.name, s.value)
			} else {
				// escapeLabel already applied the format's escaping; %q
				// here would escape a second time.
				_, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", f.name, s.labelKey, escapeLabel(s.labelValue), s.value)
			}
			if err != nil {
				return err
			}
		}
	}
	for _, name := range histNames {
		if err := writeHistogram(w, obs.PromName(name), snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram family plus its quantile
// gauges.
func writeHistogram(w io.Writer, name string, h obs.HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := int64(0)
	for i, upper := range h.Uppers {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(upper), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count); err != nil {
		return err
	}
	p50, p90, p99 := h.Quantiles()
	for _, q := range []struct {
		suffix string
		v      float64
	}{{"p50", p50}, {"p90", p90}, {"p99", p99}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %s\n",
			name, q.suffix, name, q.suffix, formatFloat(q.v)); err != nil {
			return err
		}
	}
	return nil
}
