package serve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sctuple/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a deterministic registry covering every
// exposition shape: flat counters and gauges, labeled comm/phase
// families, a label value needing escaping, and a histogram.
func goldenSnapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter("parmd.steps").Add(42)
	reg.Counter("parmd.tuples_evaluated").Add(123456)
	reg.Counter("comm.halo.bytes").Add(1024)
	reg.Counter("comm.migrate.bytes").Add(8)
	reg.Counter("comm.halo.messages").Add(6)
	reg.Gauge("parmd.imbalance").Set(1.25)
	reg.Gauge("phase.force:interior.max_ms").Set(3.5)
	reg.Gauge("phase.halo:wait.max_ms").Set(0.75)
	reg.Gauge(`phase.odd"phase\name.max_ms`).Set(1)
	h := reg.Histogram("parmd.step_ms", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100)
	return reg.Snapshot()
}

func TestWriteExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteExposition(&a, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteExposition(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same snapshot differ (map-order leak)")
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`dou"ble`, `dou\"ble`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Exposition-format line shapes accepted by the test parser.
var (
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\})? (\S+)$`)
)

// parseExposition validates the text format strictly enough to catch
// real drift: every line is a TYPE or sample line; every sample
// belongs to the most recent TYPE family (exact name, or the
// _bucket/_sum/_count suffixes of a histogram); values parse as
// numbers; cumulative histogram buckets never decrease and the +Inf
// bucket equals _count. Returns the sample map name{labels} → value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	var fam, famType string
	var lastBucket float64
	bucketMax := make(map[string]float64)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := typeLine.FindStringSubmatch(line); m != nil {
			fam, famType = m[1], m[2]
			lastBucket = 0
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed exposition line %q", ln+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		var val float64
		if valStr == "+Inf" || valStr == "-Inf" || valStr == "NaN" {
			t.Fatalf("line %d: non-finite sample value %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		switch {
		case name == fam:
		case famType == "histogram" &&
			(name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count"):
		default:
			t.Fatalf("line %d: sample %q outside its family %q (%s)", ln+1, name, fam, famType)
		}
		if famType == "histogram" && name == fam+"_bucket" {
			if val < lastBucket {
				t.Fatalf("line %d: histogram bucket decreased: %g after %g", ln+1, val, lastBucket)
			}
			lastBucket = val
			bucketMax[fam] = val
		}
		if famType == "histogram" && name == fam+"_count" {
			if inf := bucketMax[fam]; val != inf {
				t.Fatalf("line %d: %s_count %g != +Inf bucket %g", ln+1, fam, val, inf)
			}
		}
		samples[name+labels] = val
	}
	return samples
}

func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	checks := map[string]float64{
		`parmd_steps`:                                           42,
		`comm_bytes{class="halo"}`:                              1024,
		`comm_bytes{class="migrate"}`:                           8,
		`parmd_imbalance`:                                       1.25,
		`phase_max_ms{phase="force:interior"}`:                  3.5,
		fmt.Sprintf(`phase_max_ms{phase=%q}`, `odd"phase\name`): 1,
		`parmd_step_ms_count`:                                   4,
		`parmd_step_ms_p99`:                                     4, // overflow clamps to the last bound
	}
	for key, want := range checks {
		got, ok := samples[key]
		if !ok {
			t.Errorf("sample %s missing from exposition", key)
			continue
		}
		if got != want {
			t.Errorf("sample %s = %g, want %g", key, got, want)
		}
	}
}
