package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
	"sctuple/internal/obs/health"
)

// Server exposes one live run's telemetry over HTTP. Every source
// field is optional and nil-safe: a missing source turns its
// endpoints into informative 404s rather than panics, so the same
// server embeds in a serial run (pprof only), a bare parallel run
// (metrics + phases), or a fully-instrumented one. Construct by
// struct literal and call Start; the zero value serves only pprof
// and the index.
//
// Endpoints:
//
//	GET /            endpoint index (text)
//	GET /metrics     Prometheus text exposition of the registry
//	GET /healthz     health-probe summary JSON; status code maps the
//	                 worst severity (ok/none→200, warn→203, fail→503)
//	GET /steps       live per-step records; NDJSON by default, SSE
//	                 with Accept: text/event-stream; ?buf=N sets the
//	                 subscriber buffer (default 256 lines)
//	GET /phases      live per-phase time decomposition JSON
//	GET /trace       on-demand Chrome trace-event snapshot
//	GET /registry    raw registry snapshot JSON
//	GET /history     flight-recorder step history; ?res=1|10|100 picks
//	                 the ring resolution, ?fields=a,b filters fields
//	GET /anomalies   flight-recorder anomaly log JSON
//	GET /debug/pprof net/http/pprof profiles
type Server struct {
	// Registry feeds /metrics and /registry.
	Registry *obs.Registry
	// Recorder feeds /phases and /trace.
	Recorder *obs.Recorder
	// Health feeds /healthz.
	Health *health.Monitor
	// Steps feeds /steps; the simulation's StepWriter must publish
	// into the same tee (obs.NewStepWriterTee).
	Steps *obs.StepTee
	// Flight feeds /history and /anomalies.
	Flight *flight.Recorder
	// Info is static run metadata (model, scheme, ranks, …) echoed by
	// /healthz and the index for dashboards to display.
	Info map[string]string

	start   time.Time
	done    atomic.Bool
	httpSrv *http.Server
	lis     net.Listener
}

// Start listens on addr (e.g. ":9190", "127.0.0.1:0") and serves in
// a background goroutine. Call Addr for the bound address.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.start = time.Now()
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
			// The listener died under us; nothing to do but note it —
			// the simulation must not be taken down by its telemetry.
			fmt.Printf("serve: telemetry server: %v\n", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Finish marks the run complete: /healthz reports done, and the step
// tee closes so /steps streams end cleanly after delivering their
// buffered lines. The server keeps answering scrape endpoints until
// Close.
func (s *Server) Finish() {
	s.done.Store(true)
	s.Steps.Close()
}

// Close drains and stops the server: Finish (idempotent), then an
// HTTP shutdown that waits for in-flight handlers — including /steps
// streams flushing their remaining lines — up to the context's
// deadline.
func (s *Server) Close(ctx context.Context) error {
	s.Finish()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Handler builds the endpoint mux — exported so a multi-job daemon
// (the planned cmd/scserve) can mount one server per job under a
// path prefix, and so tests can drive handlers without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/steps", s.handleSteps)
	mux.HandleFunc("/phases", s.handlePhases)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/registry", s.handleRegistry)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/anomalies", s.handleAnomalies)
	// net/http/pprof normally registers on http.DefaultServeMux as an
	// import side effect — a footgun for embeddable servers (anything
	// else in the process using the default mux would leak into our
	// listener and vice versa). Mount its handlers explicitly instead.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) uptime() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	return time.Since(s.start)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "sctuple live telemetry")
	keys := make([]string, 0, len(s.Info))
	for k := range s.Info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s: %s\n", k, s.Info[k])
	}
	fmt.Fprintln(w, "\nendpoints:")
	fmt.Fprintln(w, "  /metrics   Prometheus text exposition")
	fmt.Fprintln(w, "  /healthz   health summary (200 ok, 203 warn, 503 fail)")
	fmt.Fprintln(w, "  /steps     live step records (NDJSON; SSE with Accept: text/event-stream)")
	fmt.Fprintln(w, "  /phases    per-phase time decomposition")
	fmt.Fprintln(w, "  /trace     Chrome trace-event snapshot")
	fmt.Fprintln(w, "  /registry  raw registry snapshot JSON")
	fmt.Fprintln(w, "  /history   flight-recorder step history (?res=1|10|100, ?fields=a,b)")
	fmt.Fprintln(w, "  /anomalies flight-recorder anomaly log")
	fmt.Fprintln(w, "  /debug/pprof")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if s.Registry != nil {
		snap = s.Registry.Snapshot()
	}
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]float64)
	}
	// The server's own meters ride along in the same exposition.
	snap.Gauges["serve_uptime_seconds"] = s.uptime().Seconds()
	snap.Gauges["serve_steps_subscribers"] = float64(s.Steps.Subscribers())
	snap.Counters["serve_steps_dropped_lines"] = s.Steps.Dropped()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteExposition(w, snap); err != nil {
		// Mid-body failure: the client sees a truncated scrape; nothing
		// sensible to send at this point.
		return
	}
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	// Status is the worst probe severity observed so far: "ok",
	// "warn", "fail" — or "none" when no health monitor is attached.
	Status string `json:"status"`
	// Done reports whether the run has completed (Finish was called).
	Done          bool    `json:"done"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// UptimeMs duplicates the uptime at millisecond precision for
	// dashboards that want integer math.
	UptimeMs int64 `json:"uptime_ms"`
	// Step is the latest completed step (the parmd.steps counter);
	// StepsTotal is the run's configured step count, 0 when unknown.
	Step          int64                 `json:"step"`
	StepsTotal    int64                 `json:"steps_total"`
	Info          map[string]string     `json:"info,omitempty"`
	Probes        []health.ProbeSummary `json:"probes,omitempty"`
}

// healthzStatus maps probe severity to an HTTP status usable as a
// liveness probe: ok (and no monitor) is 200; warn is 203
// Non-Authoritative Information — still 2xx, so an orchestrator's
// liveness check keeps passing while dashboards can distinguish the
// degraded state; fail is 503.
func healthzStatus(sum health.Summary, hasMonitor bool) (string, int) {
	if !hasMonitor {
		return "none", http.StatusOK
	}
	worst := health.OK
	for _, p := range sum.Probes {
		if sev := p.Severity(); sev > worst {
			worst = sev
		}
	}
	switch worst {
	case health.Fail:
		return worst.String(), http.StatusServiceUnavailable
	case health.Warn:
		return worst.String(), http.StatusNonAuthoritativeInfo
	}
	return worst.String(), http.StatusOK
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sum := s.Health.Summary()
	status, code := healthzStatus(sum, s.Health != nil)
	resp := healthzResponse{
		Status:        status,
		Done:          s.done.Load(),
		UptimeSeconds: s.uptime().Seconds(),
		UptimeMs:      s.uptime().Milliseconds(),
		Info:          s.Info,
		Probes:        sum.Probes,
	}
	if s.Registry != nil {
		resp.Step = s.Registry.Counter("parmd.steps").Load()
	}
	if v, ok := s.Info["steps"]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			resp.StepsTotal = n
		}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleSteps(w http.ResponseWriter, r *http.Request) {
	if s.Steps == nil {
		http.Error(w, "step streaming disabled: no step tee attached", http.StatusNotFound)
		return
	}
	buf := 256
	if v := r.URL.Query().Get("buf"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "buf must be a positive integer", http.StatusBadRequest)
			return
		}
		buf = n
	}
	sub := s.Steps.Subscribe(buf)
	if sub == nil {
		// The tee already closed: the run is over; an empty, cleanly
		// ended stream tells the client exactly that.
		w.WriteHeader(http.StatusOK)
		return
	}
	defer sub.Cancel()
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case line, ok := <-sub.Lines():
			if !ok {
				if sse {
					fmt.Fprintf(w, "event: end\ndata: {\"dropped\":%d}\n\n", sub.Dropped())
				}
				return
			}
			if sse {
				// Lines carry their own trailing '\n' from the JSON
				// encoder; SSE data frames terminate with a blank line.
				// Out-of-band lines (anomalies, …) become named events.
				if line.Event != "" {
					if _, err := fmt.Fprintf(w, "event: %s\n", line.Event); err != nil {
						return
					}
				}
				if _, err := fmt.Fprintf(w, "data: %s\n", strings.TrimRight(string(line.Data), "\n")); err != nil {
					return
				}
				if _, err := fmt.Fprint(w, "\n"); err != nil {
					return
				}
			} else {
				if _, err := w.Write(line.Data); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// phaseJSON is one phase row of the /phases body.
type phaseJSON struct {
	Phase     string    `json:"phase"`
	MaxMs     float64   `json:"max_ms"`
	MeanMs    float64   `json:"mean_ms"`
	Imbalance float64   `json:"imbalance"`
	PerRankMs []float64 `json:"per_rank_ms"`
}

// phasesResponse is the /phases body: the live per-phase time
// decomposition across ranks, plus the critical-path and
// force-imbalance summaries derived from it.
type phasesResponse struct {
	Ranks          int         `json:"ranks"`
	UptimeSeconds  float64     `json:"uptime_seconds"`
	Phases         []phaseJSON `json:"phases"`
	CriticalPathMs float64     `json:"critical_path_ms"`
	// CriticalPathFraction is the per-phase max-rank time sum over the
	// server's uptime — a live approximation of the run's
	// critical-path fraction (exact only once the run spans the
	// server's whole lifetime).
	CriticalPathFraction float64 `json:"critical_path_fraction"`
	// ForceImbalance is max/mean per-rank time in the force
	// evaluation phases (force:interior + force:boundary) — the
	// quantity the adaptive balancer drives toward 1.
	ForceImbalance float64 `json:"force_imbalance"`
}

func (s *Server) handlePhases(w http.ResponseWriter, r *http.Request) {
	if s.Recorder == nil {
		http.Error(w, "phase timing disabled: no recorder attached", http.StatusNotFound)
		return
	}
	stats := s.Recorder.PhaseStats()
	resp := phasesResponse{
		Ranks:         s.Recorder.Ranks(),
		UptimeSeconds: s.uptime().Seconds(),
		Phases:        make([]phaseJSON, 0, len(stats)),
	}
	var forcePerRank []float64
	for _, ps := range stats {
		row := phaseJSON{
			Phase:     ps.Phase,
			MaxMs:     float64(ps.MaxNs) / 1e6,
			MeanMs:    ps.MeanNs / 1e6,
			Imbalance: ps.Imbalance(),
			PerRankMs: make([]float64, len(ps.PerRankNs)),
		}
		for i, ns := range ps.PerRankNs {
			row.PerRankMs[i] = float64(ns) / 1e6
		}
		resp.Phases = append(resp.Phases, row)
		if ps.Phase == "force:interior" || ps.Phase == "force:boundary" {
			if forcePerRank == nil {
				forcePerRank = make([]float64, len(ps.PerRankNs))
			}
			for i, ns := range ps.PerRankNs {
				forcePerRank[i] += float64(ns)
			}
		}
	}
	resp.CriticalPathMs = float64(obs.CriticalPathNs(stats)) / 1e6
	if up := s.uptime().Nanoseconds(); up > 0 {
		resp.CriticalPathFraction = float64(obs.CriticalPathNs(stats)) / float64(up)
		if resp.CriticalPathFraction > 1 {
			resp.CriticalPathFraction = 1
		}
	}
	if mx, mean := obs.MaxMean(forcePerRank); mean > 0 {
		resp.ForceImbalance = mx / mean
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.Recorder == nil {
		http.Error(w, "trace snapshot disabled: no recorder attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	// WriteTrace snapshots the atomic span rings — safe while ranks
	// still record; slots churned mid-copy are dropped, not torn.
	_ = s.Recorder.WriteTrace(w)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.Flight == nil {
		http.Error(w, "step history disabled: no flight recorder attached", http.StatusNotFound)
		return
	}
	res := 1
	switch v := r.URL.Query().Get("res"); v {
	case "", "1", "raw":
		res = 1
	case "10":
		res = 10
	case "100":
		res = 100
	default:
		http.Error(w, "res must be 1, 10, or 100", http.StatusBadRequest)
		return
	}
	var fields []string
	if v := r.URL.Query().Get("fields"); v != "" {
		for _, f := range strings.Split(v, ",") {
			if f = strings.TrimSpace(f); f != "" {
				fields = append(fields, f)
			}
		}
	}
	writeJSON(w, http.StatusOK, s.Flight.History(res, fields))
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if s.Flight == nil {
		http.Error(w, "anomaly detection disabled: no flight recorder attached", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.Flight.Anomalies())
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if s.Registry != nil {
		snap = s.Registry.Snapshot()
	}
	writeJSON(w, http.StatusOK, snap)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
