package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
	"sctuple/internal/obs/health"
)

func get(t *testing.T, s *Server, target string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func TestHealthzStatusMapping(t *testing.T) {
	okMon := health.New(health.Config{})
	okMon.ObserveAtomCount(0, 100, 100)

	warnMon := health.New(health.Config{})
	// Baseline, then a total-energy excursion between the default warn
	// (1e-2) and fail (1e-1) thresholds relative to KE₀.
	warnMon.ObserveEnergy(0, 0, 1)
	warnMon.ObserveEnergy(1, 0.05, 1)

	failMon := health.New(health.Config{})
	failMon.ObserveAtomCount(0, 99, 100) // the injected probe failure

	cases := []struct {
		name   string
		mon    *health.Monitor
		status string
		code   int
	}{
		{"no monitor", nil, "none", http.StatusOK},
		{"all ok", okMon, "ok", http.StatusOK},
		{"warn stays 2xx", warnMon, "warn", http.StatusNonAuthoritativeInfo},
		{"fail", failMon, "fail", http.StatusServiceUnavailable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Server{Health: c.mon}
			rr := get(t, s, "/healthz")
			if rr.Code != c.code {
				t.Errorf("status code %d, want %d", rr.Code, c.code)
			}
			var resp healthzResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
				t.Fatalf("healthz body not JSON: %v", err)
			}
			if resp.Status != c.status {
				t.Errorf("status %q, want %q", resp.Status, c.status)
			}
		})
	}
}

func TestHealthzReportsDone(t *testing.T) {
	s := &Server{}
	s.Finish()
	var resp healthzResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Done {
		t.Error("healthz does not report done after Finish")
	}
}

// TestStepsMidRunJoin: a subscriber that attaches while records are
// already flowing sees a contiguous step sequence from its join point
// and a clean end-of-stream when the run finishes.
func TestStepsMidRunJoin(t *testing.T) {
	tee := obs.NewStepTee()
	w := obs.NewStepWriterTee(nil, tee)
	s := &Server{Steps: tee}

	// Half the run happens before anyone listens: these lines vanish
	// (the writer is inactive) rather than queue.
	for step := 0; step < 50; step++ {
		w.WriteStep(obs.StepRecord{Step: step, Rank: 0})
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Publish the rest once the handler's subscription lands, then
		// end the run.
		for !tee.Active() {
		}
		for step := 50; step < 80; step++ {
			w.WriteStep(obs.StepRecord{Step: step, Rank: 0})
		}
		s.Finish()
	}()

	rr := get(t, s, "/steps?buf=64")
	wg.Wait()
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var steps []int
	sc := bufio.NewScanner(rr.Body)
	for sc.Scan() {
		var rec obs.StepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		steps = append(steps, rec.Step)
	}
	if len(steps) == 0 {
		t.Fatal("mid-run subscriber saw no records")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] != steps[i-1]+1 {
			t.Fatalf("step sequence not contiguous: %v", steps)
		}
	}
	if steps[len(steps)-1] != 79 {
		t.Errorf("stream ended at step %d, want 79", steps[len(steps)-1])
	}
}

func TestStepsSSEFraming(t *testing.T) {
	tee := obs.NewStepTee()
	w := obs.NewStepWriterTee(nil, tee)
	s := &Server{Steps: tee}
	go func() {
		for !tee.Active() {
		}
		w.WriteStep(obs.StepRecord{Step: 7, Rank: 1})
		s.Finish()
	}()
	rr := get(t, s, "/steps", "Accept", "text/event-stream")
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, `data: {"step":7,"rank":1`) {
		t.Errorf("missing SSE data frame:\n%s", body)
	}
	if !strings.Contains(body, "event: end") {
		t.Errorf("missing SSE end event:\n%s", body)
	}
}

// TestSlowSubscriberDrops: a subscriber with a full buffer loses lines
// without ever blocking Publish, and the losses surface both on the
// subscription and in the server's own /metrics meters.
func TestSlowSubscriberDrops(t *testing.T) {
	tee := obs.NewStepTee()
	sub := tee.Subscribe(2)
	for i := 0; i < 10; i++ {
		tee.Publish([]byte("{}\n"))
	}
	if got := sub.Dropped(); got != 8 {
		t.Errorf("subscriber dropped %d, want 8", got)
	}
	s := &Server{Steps: tee}
	body := get(t, s, "/metrics").Body.String()
	if !strings.Contains(body, "serve_steps_dropped_lines 8") {
		t.Errorf("/metrics missing drop counter:\n%s", body)
	}
	if !strings.Contains(body, "serve_steps_subscribers 1") {
		t.Errorf("/metrics missing subscriber gauge:\n%s", body)
	}
	sub.Cancel()
}

func TestStepsAfterFinishEndsCleanly(t *testing.T) {
	tee := obs.NewStepTee()
	s := &Server{Steps: tee}
	s.Finish()
	rr := get(t, s, "/steps")
	if rr.Code != http.StatusOK || rr.Body.Len() != 0 {
		t.Errorf("post-run stream: code %d body %q, want empty 200", rr.Code, rr.Body.String())
	}
}

func TestStepsBadBuf(t *testing.T) {
	s := &Server{Steps: obs.NewStepTee()}
	if rr := get(t, s, "/steps?buf=bogus"); rr.Code != http.StatusBadRequest {
		t.Errorf("bad buf: code %d, want 400", rr.Code)
	}
}

func TestHealthzStepFields(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("parmd.steps").Store(42)
	s := &Server{Registry: reg, Info: map[string]string{"steps": "100"}}
	var resp healthzResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Step != 42 || resp.StepsTotal != 100 {
		t.Errorf("healthz step=%d steps_total=%d, want 42/100", resp.Step, resp.StepsTotal)
	}
	// The raw body carries the wire field names dashboards key on.
	body := get(t, s, "/healthz").Body.String()
	for _, want := range []string{`"step":42`, `"steps_total":100`, `"uptime_ms":`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz body missing %s:\n%s", want, body)
		}
	}
}

func TestHistoryAndAnomalies(t *testing.T) {
	fl := flight.New(flight.Config{Ranks: 1, RawSteps: 16})
	for step := 0; step < 25; step++ {
		fl.ObserveStep(obs.StepRecord{
			Step: step, Rank: 0, WallNs: 1000,
			PhaseNs: map[string]int64{"halo": 10},
		})
	}
	fl.RecordAbort(24, "boom")
	s := &Server{Flight: fl}

	rr := get(t, s, "/history")
	if rr.Code != http.StatusOK {
		t.Fatalf("/history: status %d", rr.Code)
	}
	var hist flight.HistorySnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Res != 1 || len(hist.Records) != 16 {
		t.Errorf("raw history res=%d records=%d, want 1/16", hist.Res, len(hist.Records))
	}

	if err := json.Unmarshal(get(t, s, "/history?res=10&fields=halo").Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Res != 10 || len(hist.Buckets) == 0 {
		t.Fatalf("downsampled history: %+v", hist)
	}
	if _, ok := hist.Buckets[0].Fields["phase.halo"]; !ok {
		t.Errorf("field filter lost phase.halo: %+v", hist.Buckets[0].Fields)
	}
	if _, ok := hist.Buckets[0].Fields["wall_ns"]; ok {
		t.Errorf("field filter kept wall_ns: %+v", hist.Buckets[0].Fields)
	}

	if rr := get(t, s, "/history?res=7"); rr.Code != http.StatusBadRequest {
		t.Errorf("bad res: code %d, want 400", rr.Code)
	}

	var anom flight.AnomalySnapshot
	if err := json.Unmarshal(get(t, s, "/anomalies").Body.Bytes(), &anom); err != nil {
		t.Fatal(err)
	}
	if anom.Total != 1 || anom.Last == nil || anom.Last.Kind != flight.KindAbort {
		t.Errorf("/anomalies snapshot: %+v", anom)
	}
}

func TestStepsSSEAnomalyEvent(t *testing.T) {
	tee := obs.NewStepTee()
	s := &Server{Steps: tee}
	go func() {
		for !tee.Active() {
		}
		fl := flight.New(flight.Config{Ranks: 1, Tee: tee})
		fl.RecordAbort(3, "boom")
		s.Finish()
	}()
	body := get(t, s, "/steps", "Accept", "text/event-stream").Body.String()
	if !strings.Contains(body, "event: anomaly\ndata: {\"anomaly\":") {
		t.Errorf("missing named anomaly SSE frame:\n%s", body)
	}
}

func TestMissingSourcesAre404(t *testing.T) {
	s := &Server{}
	for _, target := range []string{"/phases", "/trace", "/steps", "/history", "/anomalies"} {
		if rr := get(t, s, target); rr.Code != http.StatusNotFound {
			t.Errorf("%s with no source: code %d, want 404", target, rr.Code)
		}
	}
	// /metrics and /registry answer even on an empty server (the
	// server's own meters / an empty snapshot).
	if rr := get(t, s, "/metrics"); rr.Code != http.StatusOK {
		t.Errorf("/metrics on empty server: code %d", rr.Code)
	}
	if rr := get(t, s, "/registry"); rr.Code != http.StatusOK {
		t.Errorf("/registry on empty server: code %d", rr.Code)
	}
}

func TestPhasesLive(t *testing.T) {
	rec := obs.NewRecorder(2, 64)
	for rank := 0; rank < 2; rank++ {
		rr := rec.Rank(rank)
		rr.SetStep(0)
		sp := rr.StartSpan(obs.Phase("force:interior"))
		sp.End()
	}
	s := &Server{Recorder: rec}
	rr := get(t, s, "/phases")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp phasesResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ranks != 2 {
		t.Errorf("ranks %d, want 2", resp.Ranks)
	}
	found := false
	for _, p := range resp.Phases {
		if p.Phase == "force:interior" && len(p.PerRankMs) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("force:interior phase missing from live /phases: %+v", resp.Phases)
	}
}

func TestIndexListsEndpoints(t *testing.T) {
	s := &Server{Info: map[string]string{"model": "silica"}}
	body := get(t, s, "/").Body.String()
	for _, want := range []string{"/metrics", "/healthz", "/steps", "/phases", "/trace", "/history", "/anomalies", "/debug/pprof", "model: silica"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
	if rr := get(t, s, "/nonexistent"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", rr.Code)
	}
}

func TestPprofMounted(t *testing.T) {
	s := &Server{}
	if rr := get(t, s, "/debug/pprof/cmdline"); rr.Code != http.StatusOK {
		t.Errorf("pprof cmdline: code %d, want 200", rr.Code)
	}
}
