package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
)

// WatchOptions configures the polling terminal dashboard.
type WatchOptions struct {
	// Every is the poll interval (default 1s).
	Every time.Duration
	// Iterations caps the number of polls; 0 means poll until the run
	// reports done or a request fails.
	Iterations int
	// Plain disables the ANSI clear-and-redraw, appending each frame
	// instead — for logs and non-TTY output.
	Plain bool
}

// Watch polls a live telemetry server (base is "host:port" or a full
// http:// URL) and renders a refreshing terminal dashboard to w:
// health state, step progress and rate, the per-phase time table with
// imbalance, comm bytes by traffic class, repartition count, and
// /steps subscriber pressure. It returns nil when the watched run
// completes, or the first request/decode error once the server stops
// answering.
func Watch(w io.Writer, base string, opt WatchOptions) error {
	if opt.Every <= 0 {
		opt.Every = time.Second
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	var prevSteps int64
	var prevAt time.Time
	for i := 0; opt.Iterations == 0 || i < opt.Iterations; i++ {
		if i > 0 {
			time.Sleep(opt.Every)
		}
		var hz healthzResponse
		// /healthz intentionally answers 503 on failing probes; that is
		// a dashboard state, not a poll error, so status codes are not
		// checked on this endpoint.
		if err := getJSON(client, base+"/healthz", &hz); err != nil {
			return fmt.Errorf("watch %s: %w", base, err)
		}
		var ph phasesResponse
		phErr := getJSON(client, base+"/phases", &ph)
		var snap obs.Snapshot
		if err := getJSON(client, base+"/registry", &snap); err != nil {
			return fmt.Errorf("watch %s: %w", base, err)
		}
		// 404-tolerant like /phases: runs without a flight recorder just
		// omit the anomaly line.
		var anom flight.AnomalySnapshot
		anomErr := getJSON(client, base+"/anomalies", &anom)

		now := time.Now()
		var rate float64
		steps := snap.Counters["parmd.steps"]
		if !prevAt.IsZero() && now.After(prevAt) {
			rate = float64(steps-prevSteps) / now.Sub(prevAt).Seconds()
		}
		prevSteps, prevAt = steps, now

		if !opt.Plain {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderFrame(w, base, hz, ph, phErr, snap, rate, anom, anomErr)
		if hz.Done {
			fmt.Fprintln(w, "run complete")
			return nil
		}
	}
	return nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The endpoint's source isn't attached on this run; leave v
		// zero and let the renderer omit the section.
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func renderFrame(w io.Writer, base string, hz healthzResponse, ph phasesResponse, phErr error, snap obs.Snapshot, rate float64, anom flight.AnomalySnapshot, anomErr error) {
	fmt.Fprintf(w, "watching %s   health=%s   up %s\n", base, hz.Status, fmtDuration(hz.UptimeSeconds))
	if len(hz.Info) > 0 {
		keys := make([]string, 0, len(hz.Info))
		for k := range hz.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+hz.Info[k])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}

	steps := snap.Counters["parmd.steps"]
	fmt.Fprintf(w, "  steps %d (%.1f/s)   imbalance %.3f   repartitions %d\n",
		steps, rate, snap.Gauges["parmd.imbalance"], snap.Counters["parmd.repartitions"])

	if anomErr == nil && anom.Total > 0 && anom.Last != nil {
		hard := ""
		if anom.Last.Hard {
			hard = " HARD"
		}
		fmt.Fprintf(w, "  anomalies %d   last: %s step %d (score %.1f)%s\n",
			anom.Total, anom.Last.Kind, anom.Last.Step, anom.Last.Score, hard)
	}

	if phErr == nil && len(ph.Phases) > 0 {
		fmt.Fprintf(w, "\n  %-18s %10s %10s %8s\n", "phase", "max ms", "mean ms", "imbal")
		rows := append([]phaseJSON(nil), ph.Phases...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].MaxMs > rows[j].MaxMs })
		for _, p := range rows {
			fmt.Fprintf(w, "  %-18s %10.1f %10.1f %8.3f\n", p.Phase, p.MaxMs, p.MeanMs, p.Imbalance)
		}
		fmt.Fprintf(w, "  critical path %.1f ms (%.0f%% of wall)   force imbalance %.3f\n",
			ph.CriticalPathMs, ph.CriticalPathFraction*100, ph.ForceImbalance)
	}

	type classRow struct {
		class string
		bytes int64
		msgs  int64
	}
	byClass := map[string]*classRow{}
	for name, v := range snap.Counters {
		metric, _, class, ok := obs.SplitLabeled(name)
		if !ok || (metric != "comm_bytes" && metric != "comm_messages") {
			continue
		}
		row := byClass[class]
		if row == nil {
			row = &classRow{class: class}
			byClass[class] = row
		}
		if metric == "comm_bytes" {
			row.bytes = v
		} else {
			row.msgs = v
		}
	}
	if len(byClass) > 0 {
		rows := make([]classRow, 0, len(byClass))
		for _, r := range byClass {
			rows = append(rows, *r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].bytes > rows[j].bytes })
		fmt.Fprintf(w, "\n  %-12s %12s %10s\n", "comm class", "bytes", "msgs")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-12s %12s %10d\n", r.class, fmtBytes(r.bytes), r.msgs)
		}
	}

	if subs := snap.Gauges["serve_steps_subscribers"]; subs > 0 || snap.Counters["serve_steps_dropped_lines"] > 0 {
		fmt.Fprintf(w, "\n  step subscribers %.0f   dropped lines %d\n",
			subs, snap.Counters["serve_steps_dropped_lines"])
	}
	fmt.Fprintln(w)
}

func fmtDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	return d.Truncate(time.Second).String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
