package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
)

// watchServer builds a fully-populated server behind an httptest
// listener: registry counters, live phase spans, a flight recorder
// with one logged anomaly, and run info — everything the dashboard
// renders.
func watchServer(t *testing.T) (*Server, string) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("parmd.steps").Store(12)
	reg.Counter("parmd.repartitions").Store(1)
	reg.Counter(obs.CommClassMetric("halo", "bytes")).Store(4096)
	reg.Counter(obs.CommClassMetric("halo", "messages")).Store(8)

	rec := obs.NewRecorder(2, 64)
	for rank := 0; rank < 2; rank++ {
		rr := rec.Rank(rank)
		rr.SetStep(0)
		rr.StartSpan(obs.Phase("force:interior")).End()
	}

	fl := flight.New(flight.Config{Ranks: 2})
	fl.RecordAbort(11, "test")

	s := &Server{
		Registry: reg,
		Recorder: rec,
		Flight:   fl,
		Info:     map[string]string{"model": "silica", "steps": "100"},
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

func TestWatchPlainFrame(t *testing.T) {
	_, url := watchServer(t)
	var buf strings.Builder
	if err := Watch(&buf, url, WatchOptions{Iterations: 1, Plain: true}); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"watching " + url,
		"health=none",
		"model=silica",
		"steps 12",
		"repartitions 1",
		"force:interior",
		"critical path",
		"halo",
		"4.0 KiB",
		"anomalies 1",
		"last: abort step 11",
		"HARD",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plain frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("plain mode emitted ANSI clear")
	}
}

func TestWatchANSIRedraw(t *testing.T) {
	_, url := watchServer(t)
	var buf strings.Builder
	if err := Watch(&buf, url, WatchOptions{Iterations: 2, Every: 1}); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if n := strings.Count(buf.String(), "\x1b[2J\x1b[H"); n != 2 {
		t.Errorf("ANSI clear appeared %d times, want one per frame (2)", n)
	}
}

// TestWatchStopsOnDone: a run that reports done ends the watch with a
// completion line even when Iterations would keep polling.
func TestWatchStopsOnDone(t *testing.T) {
	s, url := watchServer(t)
	s.done.Store(true)
	var buf strings.Builder
	if err := Watch(&buf, url, WatchOptions{Iterations: 50, Plain: true}); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "run complete") {
		t.Errorf("done run did not report completion:\n%s", out)
	}
	if strings.Count(out, "watching ") != 1 {
		t.Errorf("watch kept polling after done:\n%s", out)
	}
}

// TestWatchWithoutSources: a bare server (no flight recorder, no
// phases) renders the header lines and omits the optional sections.
func TestWatchWithoutSources(t *testing.T) {
	s := &Server{}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var buf strings.Builder
	if err := Watch(&buf, ts.URL, WatchOptions{Iterations: 1, Plain: true}); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "watching ") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, absent := range []string{"anomalies", "critical path", "comm class"} {
		if strings.Contains(out, absent) {
			t.Errorf("bare server frame should omit %q:\n%s", absent, out)
		}
	}
}
