package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// StepRecord is one rank's telemetry for one MD step: wall time, the
// per-phase time decomposition, and the step's counter deltas. One
// JSONL line per (step, rank) pair keeps emission synchronization-free
// — ranks proceed at their own pace, and per-rank imbalance over time
// falls out of the records instead of being averaged away.
type StepRecord struct {
	Step   int   `json:"step"`
	Rank   int   `json:"rank"`
	WallNs int64 `json:"wall_ns"`
	// TNs is the record's monotonic timestamp: nanoseconds since the
	// run started. History consumers align records by it instead of
	// assuming a fixed step cadence.
	TNs      int64            `json:"t_ns"`
	PhaseNs  map[string]int64 `json:"phase_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// StepSink consumes step records in-process, synchronously with the
// emitting rank — the hook the flight recorder hangs off the writer,
// so disk, stream, and retained history all see the same records.
// ObserveStep receives the record by value; map fields are the
// emitter's reusable scratch and must be copied, not retained, before
// the call returns.
type StepSink interface {
	ObserveStep(rec StepRecord)
}

// StepWriter serializes telemetry records as JSON Lines into an
// optional file sink and an optional live StepTee — the same encoded
// line goes to both, so on-disk logs and streamed /steps records can
// never disagree. Writes from concurrent ranks are ordered by an
// internal mutex; sink errors are sticky and reported once by Err, so
// per-step call sites stay unconditional.
type StepWriter struct {
	mu   sync.Mutex
	w    io.Writer // may be nil: tee-only writer
	tee  *StepTee  // may be nil: file-only writer
	sink StepSink  // may be nil: set once via SetSink before the run
	buf  bytes.Buffer
	enc  *json.Encoder
	err  error
}

// NewStepWriter wraps w (typically a file) as a JSONL sink.
func NewStepWriter(w io.Writer) *StepWriter { return NewStepWriterTee(w, nil) }

// NewStepWriterTee wraps an optional file sink and an optional live
// tee. With w nil, records exist only as streamed lines — and only
// while someone subscribes: Active gates the emitters, so an idle
// tee-only writer costs nothing per step (no encoding, no
// allocation).
func NewStepWriterTee(w io.Writer, tee *StepTee) *StepWriter {
	s := &StepWriter{w: w, tee: tee}
	s.enc = json.NewEncoder(&s.buf)
	return s
}

// SetSink attaches an in-process record consumer (typically the
// flight recorder). Call before the run starts: the field is read
// without synchronization on the emit path.
func (s *StepWriter) SetSink(sink StepSink) {
	if s == nil {
		return
	}
	s.sink = sink
}

// Active reports whether a write would go anywhere: a file sink is
// configured, an in-process sink is attached, or a live subscriber is
// attached to the tee. Emitters that maintain per-step delta state
// check it each step and skip record construction while it is false —
// the deltas still advance, so a subscriber that joins mid-run sees
// per-step values from its first full step, not cumulative totals.
func (s *StepWriter) Active() bool {
	return s != nil && (s.w != nil || s.sink != nil || s.tee.Active())
}

// Tee returns the writer's live tee (nil when none is attached).
func (s *StepWriter) Tee() *StepTee {
	if s == nil {
		return nil
	}
	return s.tee
}

// WriteStep appends one step record line. The in-process sink, when
// attached, observes the record first and without JSON encoding — the
// path stays allocation-free when neither a file nor a live
// subscriber needs the encoded line.
func (s *StepWriter) WriteStep(rec StepRecord) {
	if s == nil {
		return
	}
	if s.sink != nil {
		s.sink.ObserveStep(rec)
	}
	if s.w == nil && !s.tee.Active() {
		return
	}
	s.WriteValue(rec)
}

// WriteValue appends an arbitrary record line — used for the final
// registry-snapshot line ({"snapshot": …}) after the per-step stream.
func (s *StepWriter) WriteValue(v any) {
	if s == nil || (s.w == nil && !s.tee.Active()) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	line := s.buf.Bytes()
	if s.w != nil && s.err == nil {
		if _, err := s.w.Write(line); err != nil {
			s.err = err
		}
	}
	s.tee.Publish(line)
}

// Err returns the first sink write error, if any. Tee subscribers
// cannot fail a writer — a slow one drops lines and counts them.
func (s *StepWriter) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
