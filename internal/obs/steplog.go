package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// StepRecord is one rank's telemetry for one MD step: wall time, the
// per-phase time decomposition, and the step's counter deltas. One
// JSONL line per (step, rank) pair keeps emission synchronization-free
// — ranks proceed at their own pace, and per-rank imbalance over time
// falls out of the records instead of being averaged away.
type StepRecord struct {
	Step     int              `json:"step"`
	Rank     int              `json:"rank"`
	WallNs   int64            `json:"wall_ns"`
	PhaseNs  map[string]int64 `json:"phase_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// StepWriter serializes telemetry records as JSON Lines. Writes from
// concurrent ranks are ordered by an internal mutex; errors are
// sticky and reported once by Err, so per-step call sites stay
// unconditional.
type StepWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewStepWriter wraps w (typically a file) as a JSONL sink.
func NewStepWriter(w io.Writer) *StepWriter {
	return &StepWriter{enc: json.NewEncoder(w)}
}

// WriteStep appends one step record line.
func (s *StepWriter) WriteStep(rec StepRecord) { s.WriteValue(rec) }

// WriteValue appends an arbitrary record line — used for the final
// registry-snapshot line ({"snapshot": …}) after the per-step stream.
func (s *StepWriter) WriteValue(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(v)
}

// Err returns the first write error, if any.
func (s *StepWriter) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
