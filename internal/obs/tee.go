package obs

import (
	"sync"
	"sync/atomic"
)

// StepTee fans one stream of encoded step-record lines out to any
// number of live subscribers — the pipe between the simulation's
// per-step JSONL emission and the /steps streaming endpoint of the
// telemetry server. The backpressure rule is strict: Publish never
// blocks the simulation. Each subscriber owns a bounded buffer
// (channel); a subscriber that falls behind loses the lines that
// arrive while its buffer is full, and both the subscriber and the
// tee count every dropped line, so slowness is visible instead of
// contagious.
//
// A nil *StepTee is a valid disabled tee: Active reports false and
// Publish/Close are no-ops, mirroring the nil-safety contract of the
// rest of the package.
type StepTee struct {
	// active is the current subscriber count, read lock-free on the
	// publish fast path so an idle tee costs one atomic load per line.
	active  atomic.Int32
	dropped atomic.Int64

	mu     sync.Mutex
	subs   map[*StepSub]struct{}
	closed bool
}

// NewStepTee builds an empty tee.
func NewStepTee() *StepTee {
	return &StepTee{subs: make(map[*StepSub]struct{})}
}

// Active reports whether any subscriber is attached (false on nil).
// Emitters use it to skip record encoding entirely when nothing
// listens and no file sink is configured.
func (t *StepTee) Active() bool {
	return t != nil && t.active.Load() > 0
}

// Dropped returns the total lines dropped across all subscribers,
// past and present (0 on nil).
func (t *StepTee) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Subscribers returns the current subscriber count (0 on nil).
func (t *StepTee) Subscribers() int {
	if t == nil {
		return 0
	}
	return int(t.active.Load())
}

// StepLine is one published line as a subscriber receives it: the
// encoded data plus an optional event kind. The empty kind is a step
// record (the NDJSON default); non-empty kinds ("anomaly", …) become
// named SSE events on /steps, so out-of-band detector events ride the
// same ordered stream as the records they annotate.
type StepLine struct {
	Event string
	Data  []byte
}

// Publish fans a step-record line out to every subscriber without
// blocking: a full subscriber buffer drops the line for that
// subscriber and counts it. The line is copied once (subscribers
// share the copy and must treat it as immutable), so callers may
// reuse their encoding buffer. After Close, Publish is a no-op.
func (t *StepTee) Publish(line []byte) { t.PublishEvent("", line) }

// PublishEvent publishes a line under an event kind; the empty kind
// is a plain step record. Same non-blocking and copy semantics as
// Publish.
func (t *StepTee) PublishEvent(event string, line []byte) {
	if t == nil || t.active.Load() == 0 {
		return
	}
	cp := make([]byte, len(line))
	copy(cp, line)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	for s := range t.subs {
		select {
		case s.ch <- StepLine{Event: event, Data: cp}:
		default:
			s.dropped.Add(1)
			t.dropped.Add(1)
		}
	}
}

// Subscribe attaches a new subscriber with a buffer of buf lines
// (minimum 1). It returns nil on a nil or closed tee — streaming
// handlers treat that as an immediately-ended stream.
func (t *StepTee) Subscribe(buf int) *StepSub {
	if t == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	s := &StepSub{t: t, ch: make(chan StepLine, buf)}
	t.subs[s] = struct{}{}
	t.active.Add(1)
	return s
}

// Close detaches every subscriber (their Lines channels close once
// buffered lines drain — receivers see the stream end, not a cut) and
// makes later Publish and Subscribe calls no-ops. Safe to call more
// than once.
func (t *StepTee) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for s := range t.subs {
		s.closeLocked()
	}
	clear(t.subs)
	t.active.Store(0)
}

// StepSub is one subscriber's end of the tee.
type StepSub struct {
	t       *StepTee
	ch      chan StepLine
	dropped atomic.Int64
	closed  bool // guarded by t.mu
}

// Lines returns the subscriber's line channel. It closes when the
// subscriber cancels or the tee closes; buffered lines are delivered
// first either way.
func (s *StepSub) Lines() <-chan StepLine { return s.ch }

// Dropped returns how many lines this subscriber lost to a full
// buffer.
func (s *StepSub) Dropped() int64 { return s.dropped.Load() }

// Cancel detaches the subscriber and closes its channel. Safe to call
// more than once and after tee Close.
func (s *StepSub) Cancel() {
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.closed {
		return
	}
	delete(t.subs, s)
	t.active.Add(-1)
	s.closeLocked()
}

// closeLocked closes the channel; callers hold t.mu and have removed
// s from the subscriber set (or are clearing it wholesale).
func (s *StepSub) closeLocked() {
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}
