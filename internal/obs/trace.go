package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// TraceEvent is one Chrome trace-event record. The exporter emits
// complete events (Ph == "X", one self-contained record per span, no
// begin/end pairing to break) plus one thread-name metadata event
// (Ph == "M") per rank, so the file loads directly in Perfetto or
// chrome://tracing with one named track per rank.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds since recorder epoch
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	// ID pairs flow events ("s"/"f"): both endpoints of one message
	// carry the same identifier (matched together with Cat and Name).
	ID string `json:"id,omitempty"`
	// Bp is the flow binding point; "e" makes a terminating flow event
	// bind to the enclosing slice rather than the next one.
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the on-disk trace shape (the JSON Object Format of the
// trace-event specification).
type TraceFile struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Events flattens the recorder's rings into trace events: per rank,
// one thread-name metadata event and the recorded spans in ring order
// (oldest surviving span first). Safe to call while ranks are still
// recording — the on-demand /trace endpoint snapshots a live run with
// it (slots a concurrent writer churned during the copy are dropped).
func (r *Recorder) Events() []TraceEvent { return r.eventsAt(0, nil) }

// eventsAt appends the recorder's events under process ID pid — the
// seam MultiTrace uses to lay several runs side by side in one file.
func (r *Recorder) eventsAt(pid int, events []TraceEvent) []TraceEvent {
	if r == nil {
		return events
	}
	var spans []SpanCopy
	var flows []flowCopy
	for i := range r.ranks {
		rr := &r.ranks[i]
		events = append(events, TraceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  pid,
			Tid:  rr.rank,
			Args: map[string]any{"name": "rank " + strconv.Itoa(rr.rank)},
		})
		spans = rr.snapshotSpans(spans[:0])
		for _, sp := range spans {
			events = append(events, TraceEvent{
				Name: sp.Phase.Name(),
				Cat:  "phase",
				Ph:   "X",
				Ts:   float64(sp.StartNs) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
				Pid:  pid,
				Tid:  rr.rank,
				Args: map[string]any{"step": int(sp.Step)},
			})
		}
		// Flow events: one "s" (start) at the sender's send time and one
		// "f" (finish, bound to the enclosing slice) at the receiver's
		// receive time per message, matched by ID — Perfetto draws them
		// as arrows between the rank tracks.
		flows = rr.snapshotFlows(flows[:0])
		for _, fp := range flows {
			ev := TraceEvent{
				Name: "msg",
				Cat:  "flow",
				Ph:   "s",
				Ts:   float64(fp.ts) / 1e3,
				Pid:  pid,
				Tid:  rr.rank,
				ID:   strconv.FormatUint(fp.id, 16),
				Args: map[string]any{"step": int(fp.step)},
			}
			if !fp.out {
				ev.Ph = "f"
				ev.Bp = "e"
			}
			events = append(events, ev)
		}
	}
	return events
}

// WriteTrace exports the recorded spans as Chrome trace-event JSON:
// one track (tid) per rank, phase names as event names, the MD step in
// each event's args. Load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var dropped int64
	if r != nil {
		for i := range r.ranks {
			dropped += r.ranks[i].Dropped()
		}
	}
	tf := TraceFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     r.Events(),
	}
	if tf.TraceEvents == nil {
		tf.TraceEvents = []TraceEvent{}
	}
	if dropped > 0 {
		tf.OtherData = map[string]any{"dropped_spans": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// MultiTrace lays several runs' recorders side by side in one Chrome
// trace, one named process (pid) per run — how a benchmark sweep
// (e.g. one run per scheme × rank count) exports a single comparable
// timeline file.
type MultiTrace struct {
	runs []multiRun
}

type multiRun struct {
	name string
	rec  *Recorder
}

// Add registers one run under a process name. A nil recorder adds an
// empty process. Nil MultiTrace receivers ignore the call, so callers
// can thread an optional collector without branching.
func (m *MultiTrace) Add(name string, rec *Recorder) {
	if m == nil {
		return
	}
	m.runs = append(m.runs, multiRun{name: name, rec: rec})
}

// WriteTrace exports all registered runs into one trace-event file.
func (m *MultiTrace) WriteTrace(w io.Writer) error {
	tf := TraceFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     []TraceEvent{},
	}
	var dropped int64
	if m != nil {
		for pid, run := range m.runs {
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  pid,
				Args: map[string]any{"name": run.name},
			})
			tf.TraceEvents = run.rec.eventsAt(pid, tf.TraceEvents)
			if run.rec != nil {
				for i := range run.rec.ranks {
					dropped += run.rec.ranks[i].Dropped()
				}
			}
		}
	}
	if dropped > 0 {
		tf.OtherData = map[string]any{"dropped_spans": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
