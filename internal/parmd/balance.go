package parmd

// Telemetry-driven adaptive repartitioning. The static near-uniform
// decomposition (§3.1.3) leaves nonuniform workloads — voids, droplets,
// density gradients — bounded by the most-loaded rank. The balancer
// closes the telemetry→repartition loop: every Every steps the ranks
// gather their measured force-evaluation time on rank 0, which decides
// whether moving slab boundaries pays (Decomp.Rebalance with a
// min-gain hysteresis guard, after Meyer's repartition cost model) and
// broadcasts the verdict. A repartition recompiles each rank's
// exchange plan against the new boundaries and hands whole cell slabs
// to their new owners through the existing migration machinery, one
// hop per round. Because the per-rank storage is kept in canonical
// (cell, global-ID) order — a pure function of the physics state — a
// repartitioned world is bit-identical to a world freshly built on the
// new boundaries, which is what pins the forces across the move.

import (
	"fmt"

	"sctuple/internal/comm"
)

// Balancer configures telemetry-driven adaptive repartitioning of a
// parallel run. The zero value of each field selects its default.
type Balancer struct {
	// Every is the balance-check cadence in steps (default 20). Each
	// check is one collective exchange (per-rank force-work times to
	// rank 0, decision back); non-repartitioning checks allocate
	// nothing.
	Every int
	// Threshold is the force-phase imbalance — max over mean of the
	// per-rank force-evaluation time since the previous check — at
	// which a repartition is attempted (default 1.2).
	Threshold float64
	// MinGain is the hysteresis guard passed to Decomp.Rebalance: an
	// axis's boundaries move only when the predicted per-axis imbalance
	// improves by at least this much (default 0.02), so a uniform
	// workload's measurement noise never causes churn.
	MinGain float64
	// MaxShift caps how many cells one slab boundary may move per
	// repartition (default 2), bounding the migration rounds (and the
	// transient traffic) a single repartition triggers; convergence to
	// a distant optimum takes several checks instead.
	MaxShift int
}

func (b *Balancer) every() int {
	if b.Every > 0 {
		return b.Every
	}
	return 20
}

func (b *Balancer) threshold() float64 {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 1.2
}

func (b *Balancer) minGain() float64 {
	if b.MinGain > 0 {
		return b.MinGain
	}
	return 0.02
}

func (b *Balancer) maxShift() int {
	if b.MaxShift > 0 {
		return b.MaxShift
	}
	return 2
}

// balanceState is one rank's preallocated balance-protocol scratch;
// rank 0 additionally carries the decision scratch. Everything is
// sized at setup so steady-state checks allocate nothing.
type balanceState struct {
	cfg *Balancer

	// prevForceNs marks the cumulative force-work counter at the last
	// check; the interval delta is what the decision weighs.
	prevForceNs int64

	// newStarts receives the broadcast boundary decision on every rank.
	newStarts [3][]int

	// counts is the per-axis histogram of this rank's owned atoms over
	// its block's cell layers — the report that lets rank 0 see the
	// intra-block load gradient (sized to the full lattice so a
	// repartition's wider block never reallocates).
	counts [3][]int64

	// Rank 0 only: gathered per-rank interval times, the per-axis layer
	// weights derived from them, and the candidate-boundary scratch of
	// rebalanceInto.
	times   []int64
	weights [3][]float64
	cand    [3][]int

	checks       int
	repartitions int
	lastImb      float64 // rank 0: imbalance measured at the last check
}

// initBalance attaches a balancer to the rank, preallocating all
// protocol scratch.
func (r *rankState) initBalance(cfg *Balancer) {
	b := &balanceState{cfg: cfg}
	for axis := 0; axis < 3; axis++ {
		b.newStarts[axis] = make([]int, r.dec.Cart.Dims.Comp(axis)+1)
		b.counts[axis] = make([]int64, r.dec.Lat.Dims.Comp(axis))
	}
	if r.p.Rank() == 0 {
		b.times = make([]int64, r.p.Size())
		for axis := 0; axis < 3; axis++ {
			b.weights[axis] = make([]float64, r.dec.Lat.Dims.Comp(axis))
			b.cand[axis] = make([]int, r.dec.Cart.Dims.Comp(axis)+1)
		}
	}
	r.bal = b
}

// balanceCheck runs one collective balance decision and, when rank 0
// calls for it, the repartition. Every rank must enter it on the same
// step (the loop gates on the shared cadence). Returns whether a
// repartition ran.
func (r *rankState) balanceCheck() (bool, error) {
	b := r.bal
	b.checks++
	interval := r.stats.ForceNs - b.prevForceNs
	b.prevForceNs = r.stats.ForceNs

	repartition := false
	if r.p.Rank() == 0 {
		for axis := 0; axis < 3; axis++ {
			w := b.weights[axis]
			for i := range w {
				w[i] = 0
			}
		}
		b.times[0] = interval
		r.countLayers()
		r.addLayerWeights(0, interval, int64(r.nOwned), nil)
		for rank := 1; rank < r.p.Size(); rank++ {
			buf := r.p.RecvBuffer(rank, tagBalance)
			co := r.dec.Cart.Coord(rank)
			ext := r.dec.BlockHi(co).Sub(r.dec.BlockLo(co))
			want := 8 * (2 + ext.X + ext.Y + ext.Z)
			if buf.Len() != want {
				r.p.ReleaseBuffer(buf)
				return false, fmt.Errorf("malformed balance report from rank %d: %d bytes, want %d",
					rank, buf.Len(), want)
			}
			var rd comm.Reader
			rd.Reset(buf.Bytes())
			b.times[rank] = rd.Int64()
			nOwned := rd.Int64()
			r.addLayerWeights(rank, b.times[rank], nOwned, &rd)
			err := rd.Err()
			r.p.ReleaseBuffer(buf)
			if err != nil {
				return false, fmt.Errorf("decoding balance report from rank %d: %w", rank, err)
			}
		}
		repartition = r.decideBalance()
		for rank := 1; rank < r.p.Size(); rank++ {
			buf := r.p.AcquireBuffer()
			r.encodeDecision(buf, repartition)
			r.p.SendBuffer(rank, tagBalance+1, buf)
		}
		if repartition {
			for axis := 0; axis < 3; axis++ {
				copy(b.newStarts[axis], b.cand[axis])
			}
		}
	} else {
		r.countLayers()
		buf := r.p.AcquireBuffer()
		buf.Int64(interval)
		buf.Int64(int64(r.nOwned))
		for axis := 0; axis < 3; axis++ {
			ext := r.hi.Comp(axis) - r.lo.Comp(axis)
			for x := 0; x < ext; x++ {
				buf.Int64(b.counts[axis][x])
			}
		}
		r.p.SendBuffer(0, tagBalance, buf)
		rb := r.p.RecvBuffer(0, tagBalance+1)
		var err error
		repartition, err = r.decodeDecision(rb)
		r.p.ReleaseBuffer(rb)
		if err != nil {
			return false, err
		}
	}
	if !repartition {
		return false, nil
	}

	b.repartitions++
	newDec, err := NewDecompStarts(r.dec.Lat, r.dec.Cart, b.newStarts)
	if err != nil {
		return false, fmt.Errorf("balance decision: %w", err)
	}
	sp := r.rec.StartSpan(phaseRepartition)
	err = r.repartition(newDec)
	sp.End()
	if err != nil {
		return false, err
	}
	return true, nil
}

// countLayers fills b.counts with this rank's per-axis histogram of
// owned atoms over its block's global cell layers (index 0 = the
// block's first layer).
func (r *rankState) countLayers() {
	b := r.bal
	for axis := 0; axis < 3; axis++ {
		ext := r.hi.Comp(axis) - r.lo.Comp(axis)
		c := b.counts[axis][:ext]
		for i := range c {
			c[i] = 0
		}
	}
	for i := 0; i < r.nOwned; i++ {
		gc := r.gcell[i]
		b.counts[0][gc.X-r.lo.X]++
		b.counts[1][gc.Y-r.lo.Y]++
		b.counts[2][gc.Z-r.lo.Z]++
	}
}

// addLayerWeights projects one rank's measured interval time onto the
// per-axis layer weights, distributed over its block's cell layers in
// proportion to that rank's owned-atom histogram — the intra-block
// gradient that lets a boundary move even when every block is only a
// couple of cells wide. rd, when non-nil, supplies the remote rank's
// histogram off the wire (3 axes, block-extent entries each); nil
// reads rank 0's own b.counts. An empty rank spreads its (tiny) time
// uniformly. Layers covered by several ranks (the other axes' splits)
// accumulate every owner's share, the standard separable
// approximation.
func (r *rankState) addLayerWeights(rank int, t, nOwned int64, rd *comm.Reader) {
	b := r.bal
	d := r.dec
	co := d.Cart.Coord(rank)
	blo, bhi := d.BlockLo(co), d.BlockHi(co)
	for axis := 0; axis < 3; axis++ {
		lo, hi := blo.Comp(axis), bhi.Comp(axis)
		w := b.weights[axis]
		for x := lo; x < hi; x++ {
			var c int64
			if rd != nil {
				c = rd.Int64()
			} else {
				c = b.counts[axis][x-lo]
			}
			if nOwned > 0 {
				w[x] += float64(t) * float64(c) / float64(nOwned)
			} else {
				w[x] += float64(t) / float64(hi-lo)
			}
		}
	}
}

// decideBalance is rank 0's verdict on the gathered interval times:
// measure the imbalance, and past the threshold ask Decomp.Rebalance
// for a better boundary layout against the atom-weighted layer
// profile accumulated during the gather. The candidate boundaries land
// in b.cand; the return value says whether they differ from the
// current ones (the hysteresis guard inside rebalanceInto already
// rejected non-improvements).
func (r *rankState) decideBalance() bool {
	b := r.bal
	var maxT, sumT int64
	for _, t := range b.times {
		sumT += t
		if t > maxT {
			maxT = t
		}
	}
	if sumT <= 0 {
		b.lastImb = 1
		return false
	}
	mean := float64(sumT) / float64(len(b.times))
	b.lastImb = float64(maxT) / mean
	if b.lastImb < b.cfg.threshold() {
		return false
	}
	minWidth := max(r.mLo, r.mHi)
	return r.dec.rebalanceInto(b.weights, minWidth, b.cfg.maxShift(), b.cfg.minGain(), &b.cand)
}

// encodeDecision writes rank 0's verdict: a flag, then the new
// boundaries when repartitioning. The message length is fixed per
// topology, so the pooled buffer reaches steady capacity at the first
// repartitioning check.
func (r *rankState) encodeDecision(buf *comm.Buffer, repartition bool) {
	if !repartition {
		buf.Int64(0)
		return
	}
	buf.Int64(1)
	for axis := 0; axis < 3; axis++ {
		for _, s := range r.bal.cand[axis] {
			buf.Int64(int64(s))
		}
	}
}

// decodeDecision reads rank 0's verdict into b.newStarts.
func (r *rankState) decodeDecision(buf *comm.Buffer) (bool, error) {
	var rd comm.Reader
	rd.Reset(buf.Bytes())
	if rd.Remaining() < 8 {
		return false, fmt.Errorf("malformed balance decision: %d bytes", buf.Len())
	}
	if rd.Int64() == 0 {
		return false, nil
	}
	b := r.bal
	for axis := 0; axis < 3; axis++ {
		for i := range b.newStarts[axis] {
			if rd.Remaining() < 8 {
				return false, fmt.Errorf("truncated balance decision: %d bytes", buf.Len())
			}
			b.newStarts[axis][i] = int(rd.Int64())
		}
	}
	return true, nil
}

// repartition moves this rank onto a new decomposition of the same
// lattice and topology: rebuild every boundary-dependent piece of
// state (block geometry, extended lattice and binning, exchange plan,
// interior/boundary split, enumerators), then hand off atoms to their
// new owners by running the migration exchange for as many one-hop
// rounds as the largest boundary shift requires. All ranks must call
// it together with the same newDec. The next force evaluation
// re-canonicalizes storage into (cell, ID) order on the new extended
// lattice, so the rank state — and with it the forces, bit for bit —
// matches a world freshly constructed on newDec at the same physics
// state.
func (r *rankState) repartition(newDec *Decomp) error {
	rounds := maxBoundaryShift(r.dec, newDec)
	if rounds == 0 {
		return nil
	}
	if err := r.initGeometry(newDec); err != nil {
		return err
	}
	if err := r.buildEnumerators(); err != nil {
		return err
	}
	r.hopClamp = true
	defer func() { r.hopClamp = false }()
	for i := 0; i < rounds; i++ {
		if err := r.migrate(); err != nil {
			return err
		}
	}
	r.idOrderStale = true
	return nil
}
