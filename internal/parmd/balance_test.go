package parmd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestBalancerReducesVoidImbalance: on the void workload over a
// 4-rank x-slab decomposition, the balancer must actually repartition
// and converge to a force-phase imbalance well below the static
// decomposition's. Wall-clock driven, so noisy sweeps retry; only a
// consistent miss fails.
func TestBalancerReducesVoidImbalance(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock load comparison; race instrumentation distorts it")
	}
	if testing.Short() {
		t.Skip("timing comparison over real runs")
	}
	rng := rand.New(rand.NewSource(13))
	cfg := workload.Void(rng, 9000, 0.7)
	// A short-cutoff single-species LJ model: the 3.4 Å cells give the
	// slab boundaries 15 cells of granularity along x, enough for the
	// equalizer to meaningfully improve on the uniform split (the
	// silica cutoff would leave only 2 coarse cells per rank, where no
	// boundary move can pay).
	model := potential.NewLJModel(0.005, 1.3, 3.4, 39.948)
	for i := range cfg.Species {
		cfg.Species[i] = 0
	}
	cfg.Thermalize(rng, model, 30)
	cart, err := comm.NewCartDims(geom.IV(4, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Scheme: SchemeSC, Cart: cart, Dt: 0.5, Steps: 60, Workers: 1}

	const attempts = 3
	var lastErr error
	for a := 0; a < attempts; a++ {
		// Static baseline: same collective checks (so Imbalance is the
		// same last-interval measure), but an infinite threshold keeps the
		// boundaries fixed.
		static := base
		static.Balance = &Balancer{Every: 10, Threshold: math.Inf(1)}
		sres, err := Run(cfg, model, static)
		if err != nil {
			t.Fatal(err)
		}
		balanced := base
		balanced.Balance = &Balancer{Every: 10, Threshold: 1.05}
		bres, err := Run(cfg, model, balanced)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Repartitions != 0 {
			t.Fatalf("static run repartitioned %d times", sres.Repartitions)
		}
		lastErr = nil
		if bres.Repartitions < 1 {
			lastErr = fmt.Errorf("balanced run never repartitioned (imbalance %.2f)", bres.Imbalance)
		} else if excess, want := bres.Imbalance-1, 0.6*(sres.Imbalance-1); excess > want {
			lastErr = fmt.Errorf("converged imbalance %.2f (excess %.2f), want excess ≤ %.2f of static %.2f (%d repartitions)",
				bres.Imbalance, excess, want, sres.Imbalance, bres.Repartitions)
		}
		if lastErr == nil {
			return
		}
	}
	t.Error(lastErr)
}

// TestBalancerUniformHysteresis: on a perfectly uniform crystal the
// balancer's threshold and min-gain guards must hold — zero
// repartitions, every check a cheap no-op. Retries absorb the rare
// noise spike a shared machine can inject into one interval.
func TestBalancerUniformHysteresis(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent run")
	}
	cfg, model := silicaConfig(t, 4, 300, 17)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Scheme: SchemeSC, Cart: cart, Dt: 0.5, Steps: 40, Workers: 1,
		Balance: &Balancer{Every: 10}}
	const attempts = 3
	reparts := 0
	for a := 0; a < attempts; a++ {
		res, err := Run(cfg, model, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.BalanceChecks == 0 {
			t.Fatal("no balance checks ran")
		}
		reparts = res.Repartitions
		if reparts == 0 {
			return
		}
	}
	t.Errorf("uniform workload repartitioned %d times on every attempt", reparts)
}

// TestBalanceStepZeroAllocs: with the balancer active and checking on
// every step, non-repartitioning steps stay allocation-free — the
// protocol runs on pooled buffers and preallocated scratch. The
// infinite threshold pins every check to the no-repartition path
// (repartition steps are allowed to allocate; they rebuild geometry).
func TestBalanceStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg, model := silicaConfig(t, 4, 300, 22)
	for i := range cfg.Pos {
		cfg.Pos[i] = cfg.Box.Wrap(cfg.Pos[i].Add(geom.V(0.8, 0.8, 0.8)))
	}
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	masses := make([]float64, len(model.Species))
	for i, s := range model.Species {
		masses[i] = s.Mass
	}
	const dt = 0.5
	dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
	if err != nil {
		t.Fatal(err)
	}
	world := comm.NewWorld(cart.Size())
	defineTagClasses(world)
	err = world.Run(func(p *comm.Proc) error {
		r, err := newRankState(p, dec, model, SchemeSC, 1, true)
		if err != nil {
			return err
		}
		r.initBalance(&Balancer{Every: 1, Threshold: math.Inf(1)})
		r.adopt(cfg)
		if _, err := r.computeForces(); err != nil {
			return err
		}
		step := func() error {
			half := 0.5 * dt * md.ForceToAccel
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			for i := 0; i < r.nOwned; i++ {
				r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(dt))
			}
			if err := r.migrate(); err != nil {
				return err
			}
			if _, err := r.balanceCheck(); err != nil {
				return err
			}
			if _, err := r.computeForces(); err != nil {
				return err
			}
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			return nil
		}
		var stepErr error
		run := func() {
			if err := step(); err != nil && stepErr == nil {
				stepErr = err
			}
		}
		for k := 0; k < 30; k++ {
			run()
		}
		p.Barrier()
		if p.Rank() != 0 {
			for k := 0; k < 11; k++ {
				run()
			}
			p.Barrier()
			return stepErr
		}
		allocs := testing.AllocsPerRun(10, run)
		p.Barrier()
		if stepErr != nil {
			return stepErr
		}
		if allocs != 0 {
			return fmt.Errorf("%g allocs per balanced step, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}
