package parmd

import (
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
)

// computeForces runs one complete force evaluation: refresh the halo,
// enumerate and evaluate all potential terms anchored at owned cells
// through the shared kernel layer, and write imported atoms' force
// contributions back to their owners. It returns this rank's share of
// the potential energy.
func (r *rankState) computeForces() float64 {
	sp := r.rec.StartSpan(phaseBin)
	r.dropHalo()
	r.deriveOwned()
	sp.End()
	r.importHalo()
	sp = r.rec.StartSpan(phaseBin)
	r.rebin()
	sp.End()

	// The accumulator covers owned + halo atoms; Begin zeroes it, and
	// End reduces the shards in fixed order so the forces are
	// bit-identical for every Options.Workers setting.
	r.acc.Begin(r.force)
	switch r.scheme {
	case SchemeSC, SchemeFS:
		r.evalCellTerms()
	case SchemeHybrid:
		r.evalHybrid()
	}
	pe, cs := r.acc.End()
	r.stats.SearchCandidates += cs.SearchCandidates
	r.stats.TuplesEvaluated += cs.TuplesEvaluated
	r.stats.PairListEntries += cs.PairListEntries
	r.stats.Virial += cs.Virial

	r.writeBackForces()
	r.stats.Steps++
	return pe
}

// evalCellTerms is the SC-/FS-MD force kernel: one bounded UCP
// enumeration per n-body term, the owned cells split across the
// accumulator's shards and executed by up to r.workers goroutines.
// Each term runs under its own span (kernel.RunTimed), so the trace
// timeline decomposes force time per term length.
func (r *rankState) evalCellTerms() {
	for ti, term := range r.model.Terms {
		k := kernel.TermKernel{Term: term, Species: r.species}
		kernel.RunTimed(r.rec, kernel.TermPhase(term.N()), r.acc.Slots(), r.workers, func(w, s int) {
			lo, hi := kernel.Chunk(len(r.ownedCells), r.acc.Slots(), s)
			if lo >= hi {
				return
			}
			en := r.enums[w][ti]
			en.SetKeys(r.ids)
			slot := r.acc.Slot(s)
			en.VisitCellsInto(r.ownedCells[lo:hi], r.lpos, k.Visitor(slot), &slot.Enum)
		})
	}
}

// hybridEntry is one directed Verlet-list entry i → j.
type hybridEntry struct {
	j    int32
	disp geom.Vec3
	dist float64
}

// rawPair is one raw emission of the FS(2) search, before bucketing
// into the directed list.
type rawPair struct {
	i, j int32
	disp geom.Vec3
}

// evalHybrid is the Hybrid-MD force kernel: a raw full-shell pair
// search anchored at owned cells builds a directed Verlet list over
// owned first atoms; pair forces come from the list (each pair
// evaluated on exactly one rank, chosen by global ID), and triplets
// are pruned from each owned center's complete neighbor list. The
// list build is serial (it is the sequential dependence §6 contrasts
// SC against); the pair and triplet evaluation loops are sharded over
// owned atoms.
func (r *rankState) evalHybrid() {
	slot0 := r.acc.Slot(0)

	// Build the directed list: start offsets per owned atom. The
	// scratch buffers are hoisted on rankState and reused across steps.
	sp := r.rec.StartSpan(phaseSearch)
	if cap(r.hybCounts) < r.nOwned+1 {
		r.hybCounts = make([]int32, r.nOwned+1)
		r.hybFill = make([]int32, r.nOwned)
	}
	counts := r.hybCounts[:r.nOwned+1]
	clear(counts)
	r.hybRaw = r.hybRaw[:0]
	r.pairEnum.VisitCellsInto(r.ownedCells, r.lpos, func(atoms []int32, pos []geom.Vec3) {
		r.hybRaw = append(r.hybRaw, rawPair{atoms[0], atoms[1], pos[1].Sub(pos[0])})
		counts[atoms[0]+1]++
	}, &slot0.Enum)
	for i := 0; i < r.nOwned; i++ {
		counts[i+1] += counts[i]
	}
	if cap(r.hybEntries) < len(r.hybRaw) {
		r.hybEntries = make([]hybridEntry, len(r.hybRaw))
	}
	entries := r.hybEntries[:len(r.hybRaw)]
	fill := r.hybFill[:r.nOwned]
	clear(fill)
	for _, p := range r.hybRaw {
		k := counts[p.i] + fill[p.i]
		entries[k] = hybridEntry{j: p.j, disp: p.disp, dist: p.disp.Norm()}
		fill[p.i]++
	}
	slot0.PairEntries += int64(len(entries))
	sp.End()

	// Pair forces: each undirected pair on exactly one rank, chosen by
	// global ID order.
	pairK := kernel.TermKernel{Term: r.pairTerm, Species: r.species}
	kernel.RunTimed(r.rec, kernel.TermPhase(2), r.acc.Slots(), r.workers, func(w, s int) {
		lo, hi := kernel.Chunk(r.nOwned, r.acc.Slots(), s)
		if lo >= hi {
			return
		}
		slot := r.acc.Slot(s)
		pv := pairK.PairVisitor(slot, r.lpos)
		for i := lo; i < hi; i++ {
			for k := counts[i]; k < counts[i+1]; k++ {
				e := entries[k]
				if r.ids[i] >= r.ids[e.j] {
					continue
				}
				pv(int32(i), e.j, e.disp, e.dist)
			}
		}
	})

	// Triplets around owned centers, pruned from the list.
	if r.tripTerm != nil {
		rc3 := r.tripTerm.Cutoff()
		tripK := kernel.TermKernel{Term: r.tripTerm, Species: r.species}
		kernel.RunTimed(r.rec, kernel.TermPhase(3), r.acc.Slots(), r.workers, func(w, s int) {
			lo, hi := kernel.Chunk(r.nOwned, r.acc.Slots(), s)
			if lo >= hi {
				return
			}
			slot := r.acc.Slot(s)
			tv := tripK.TripletVisitor(slot)
			short := r.tripShort[w][:0]
			for j := lo; j < hi; j++ {
				short = short[:0]
				for k := counts[j]; k < counts[j+1]; k++ {
					slot.Enum.Candidates++
					if entries[k].dist < rc3 {
						short = append(short, k)
					}
				}
				for a := 0; a < len(short); a++ {
					for b := a + 1; b < len(short); b++ {
						slot.Enum.Candidates++
						ea, eb := entries[short[a]], entries[short[b]]
						tv([3]int32{ea.j, int32(j), eb.j}, [3]geom.Vec3{
							r.lpos[j].Add(ea.disp),
							r.lpos[j],
							r.lpos[j].Add(eb.disp),
						})
					}
				}
			}
			r.tripShort[w] = short
		})
	}
}
