package parmd

import (
	"time"

	"sctuple/internal/geom"
	"sctuple/internal/kernel"
)

// computeForces runs one complete force evaluation and returns this
// rank's share of the potential energy.
//
// The evaluation is two-stage in both exchange modes: interior cells
// (whose tuples touch no imported atoms) first, boundary cells second,
// with the accumulator's fixed shard order making the result
// bit-identical for every Workers setting. In the overlapped mode (the
// default) the halo exchange is posted before the interior stage and
// completed after it, so the import latency hides behind interior
// compute; the synchronous mode completes the exchange first and then
// runs the identical dispatch, so the two modes' forces agree bit for
// bit — the property the A/B determinism tests pin down.
//
// Owned cells hold only owned atoms under both binnings (halo copies
// land in margin cells), so the interior stage sees the same per-cell
// atom lists whether or not the halo has arrived; only the enumerator's
// probe of empty margin cells can differ, which affects search
// counters, never forces.
func (r *rankState) computeForces() (float64, error) {
	sp := r.rec.StartSpan(phaseBin)
	r.dropHalo()
	r.deriveOwned()
	r.canonicalizeOwned()
	sp.End()

	if r.overlap {
		sp = r.rec.StartSpan(phaseBin)
		err := r.rebin() // owned atoms only; margin cells are empty for the interior stage
		sp.End()
		if err != nil {
			return 0, r.rankErr("bin", err)
		}
		r.beginHalo()
		r.acc.Begin(r.force)
		r.evalInterior()
		if err := r.finishHalo(); err != nil {
			return 0, err
		}
		sp = r.rec.StartSpan(phaseBin)
		err = r.rebin() // full binning: the imports fill the margin cells
		sp.End()
		if err != nil {
			return 0, r.rankErr("bin", err)
		}
		r.acc.Grow(r.force) // the force array grew (and may have moved) with the imports
		r.evalBoundary()
	} else {
		if err := r.importHalo(); err != nil {
			return 0, err
		}
		sp = r.rec.StartSpan(phaseBin)
		err := r.rebin()
		sp.End()
		if err != nil {
			return 0, r.rankErr("bin", err)
		}
		r.acc.Begin(r.force)
		r.evalInterior()
		r.evalBoundary()
	}

	pe, cs := r.acc.End()
	r.stats.SearchCandidates += cs.SearchCandidates
	r.stats.TuplesEvaluated += cs.TuplesEvaluated
	r.stats.PairListEntries += cs.PairListEntries
	r.stats.Virial += cs.Virial

	if err := r.writeBackForces(); err != nil {
		return 0, err
	}
	r.stats.Steps++
	return pe, nil
}

// evalInterior runs the interior stage under the force:interior span —
// the work whose duration is the overlap budget for hiding the halo
// receives. For SC/FS it evaluates every term over interior cells; for
// Hybrid it runs the raw pair search anchored there (the evaluation
// loops need the complete directed list, so they stay in the boundary
// stage).
// Both stages also accumulate their wall time into RankStats.ForceNs —
// the force-work measure the adaptive balancer weighs ranks by. It is
// timed here, around the pure compute, so halo-wait time between the
// stages never counts as load.
func (r *rankState) evalInterior() {
	start := time.Now()
	sp := r.rec.StartSpan(phaseForceInterior)
	switch r.scheme {
	case SchemeSC, SchemeFS:
		r.evalCellTerms(r.interiorCells)
	case SchemeHybrid:
		r.hybridSearch(r.interiorCells, true)
	}
	sp.End()
	r.stats.ForceNs += time.Since(start).Nanoseconds()
}

// evalBoundary runs the boundary stage once the halo is complete. For
// SC/FS it is the force:boundary span over boundary cells; for Hybrid
// it finishes the raw search over boundary cells, builds the directed
// list, and runs the pair/triplet evaluation loops under their own
// spans (matching the serial Hybrid engine's phase decomposition).
func (r *rankState) evalBoundary() {
	start := time.Now()
	switch r.scheme {
	case SchemeSC, SchemeFS:
		sp := r.rec.StartSpan(phaseForceBoundary)
		r.evalCellTerms(r.boundaryCells)
		sp.End()
	case SchemeHybrid:
		sp := r.rec.StartSpan(phaseSearch)
		r.hybridSearch(r.boundaryCells, false)
		r.hybridBuildList()
		sp.End()
		r.hybridEval()
	}
	r.stats.ForceNs += time.Since(start).Nanoseconds()
}

// evalCellTerms is the SC-/FS-MD force kernel over one cell subset:
// one bounded UCP enumeration per n-body term, the cells split across
// the accumulator's shards by kernel.Chunk and executed by up to
// r.workers goroutines. The interior and boundary stages pass disjoint
// subsets that together cover ownedCells in order, so the per-shard
// accumulation order is a pure function of the partition — identical
// whether or not the stages were separated by a halo completion.
func (r *rankState) evalCellTerms(cells []geom.IVec3) {
	r.curCells = cells
	for ti := range r.model.Terms {
		r.curTerm = ti
		kernel.Run(r.acc.Slots(), r.workers, r.cellFn)
	}
}

// hybridEntry is one directed Verlet-list entry i → j.
type hybridEntry struct {
	j    int32
	disp geom.Vec3
	dist float64
}

// rawPair is one raw emission of the FS(2) search, before bucketing
// into the directed list.
type rawPair struct {
	i, j int32
	disp geom.Vec3
}

// hybridSearch runs the raw full-shell pair search anchored at the
// given cell subset, appending emissions to the directed-list scratch.
// reset starts a fresh step (the interior stage); the boundary stage
// appends to it. Anchors are owned cells, so every emission's first
// atom is owned and the count array, sized by owned atoms, is valid
// even before the halo arrives. The search is serial — it is the
// sequential dependence §6 contrasts SC against.
func (r *rankState) hybridSearch(cells []geom.IVec3, reset bool) {
	slot0 := r.acc.Slot(0)
	if cap(r.hybCounts) < r.nOwned+1 {
		// Headroom: the owned count fluctuates under migration; an exact
		// fit would reallocate at every new high-water mark.
		r.hybCounts = make([]int32, r.nOwned+1+r.nOwned/8)
		r.hybFill = make([]int32, r.nOwned+r.nOwned/8)
	}
	r.hybCounts = r.hybCounts[:r.nOwned+1]
	if reset {
		clear(r.hybCounts)
		r.hybRaw = r.hybRaw[:0]
	}
	r.pairEnum.VisitCellsInto(cells, r.lpos, r.hybEmit, &slot0.Enum)
}

// hybridBuildList buckets the raw emissions into the directed list:
// start offsets per owned atom, then a stable fill. Raw order is
// interior anchors first, then boundary anchors — fixed by the cell
// partition, so the per-atom entry order (and with it the evaluation
// order) is identical in both exchange modes.
func (r *rankState) hybridBuildList() {
	counts := r.hybCounts[:r.nOwned+1]
	for i := 0; i < r.nOwned; i++ {
		counts[i+1] += counts[i]
	}
	if cap(r.hybEntries) < len(r.hybRaw) {
		// An eighth of headroom: the pair count fluctuates with thermal
		// motion, and an exact fit would reallocate at every new
		// high-water mark for the life of the run.
		r.hybEntries = make([]hybridEntry, 0, len(r.hybRaw)+len(r.hybRaw)/8)
	}
	r.hybEntries = r.hybEntries[:len(r.hybRaw)]
	entries := r.hybEntries
	fill := r.hybFill[:r.nOwned]
	clear(fill)
	for _, p := range r.hybRaw {
		k := counts[p.i] + fill[p.i]
		entries[k] = hybridEntry{j: p.j, disp: p.disp, dist: p.disp.Norm()}
		fill[p.i]++
	}
	r.acc.Slot(0).PairEntries += int64(len(entries))
}

// hybridEval is the Hybrid-MD force evaluation over the completed
// directed list: pair forces from the list (each pair evaluated on
// exactly one rank, chosen by global ID), and triplets pruned from
// each owned center's complete neighbor list. Both loops shard the
// owned atoms by global-ID rank and walk them in ID order (idOrder),
// so the accumulation stream — and with it the forces, bit for bit —
// is invariant under the canonical cell sort of the storage.
func (r *rankState) hybridEval() {
	r.ensureIDOrder()
	kernel.RunTimed(r.rec, kernel.TermPhase(2), r.acc.Slots(), r.workers, r.hybPairFn)
	if r.tripTerm != nil {
		kernel.RunTimed(r.rec, kernel.TermPhase(3), r.acc.Slots(), r.workers, r.hybTripFn)
	}
}
