package parmd

import (
	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
)

// computeForces runs one complete force evaluation: refresh the halo,
// enumerate and evaluate all potential terms anchored at owned cells,
// and write imported atoms' force contributions back to their owners.
// It returns this rank's share of the potential energy.
func (r *rankState) computeForces() float64 {
	r.dropHalo()
	for i := 0; i < r.nOwned; i++ {
		r.force[i] = geom.Vec3{}
	}
	r.deriveOwned()
	r.importHalo()
	r.rebin()

	var pe float64
	switch r.scheme {
	case SchemeSC, SchemeFS:
		pe = r.evalCellTerms()
	case SchemeHybrid:
		pe = r.evalHybrid()
	}
	r.writeBackForces()
	r.stats.Steps++
	return pe
}

// evalCellTerms is the SC-/FS-MD force kernel: one bounded UCP
// enumeration per n-body term.
func (r *rankState) evalCellTerms() float64 {
	energy := 0.0
	var sp [tuple.MaxN]int32
	var fb [tuple.MaxN]geom.Vec3
	for ti, term := range r.model.Terms {
		n := term.N()
		en := r.enums[ti]
		en.SetKeys(r.ids)
		st := en.VisitCells(r.ownedCells, r.lpos, func(atoms []int32, pos []geom.Vec3) {
			for k := 0; k < n; k++ {
				sp[k] = r.species[atoms[k]]
				fb[k] = geom.Vec3{}
			}
			energy += term.Eval(sp[:n], pos, fb[:n])
			for k := 0; k < n; k++ {
				r.force[atoms[k]] = r.force[atoms[k]].Add(fb[k])
			}
		})
		r.stats.SearchCandidates += st.Candidates
		r.stats.TuplesEvaluated += st.Emitted
	}
	return energy
}

// hybridEntry is one directed Verlet-list entry i → j.
type hybridEntry struct {
	j    int32
	disp geom.Vec3
	dist float64
}

// evalHybrid is the Hybrid-MD force kernel: a raw full-shell pair
// search anchored at owned cells builds a directed Verlet list over
// owned first atoms; pair forces come from the list (each pair
// evaluated on exactly one rank, chosen by global ID), and triplets
// are pruned from each owned center's complete neighbor list.
func (r *rankState) evalHybrid() float64 {
	var pairTerm, tripTerm potential.Term
	for _, t := range r.model.Terms {
		switch t.N() {
		case 2:
			pairTerm = t
		case 3:
			tripTerm = t
		}
	}

	// Build the directed list: start offsets per owned atom.
	counts := make([]int32, r.nOwned+1)
	type rawPair struct {
		i, j int32
		disp geom.Vec3
	}
	var raw []rawPair
	st := r.pairEnum.VisitCells(r.ownedCells, r.lpos, func(atoms []int32, pos []geom.Vec3) {
		raw = append(raw, rawPair{atoms[0], atoms[1], pos[1].Sub(pos[0])})
		counts[atoms[0]+1]++
	})
	r.stats.SearchCandidates += st.Candidates
	for i := 0; i < r.nOwned; i++ {
		counts[i+1] += counts[i]
	}
	entries := make([]hybridEntry, len(raw))
	fill := make([]int32, r.nOwned)
	for _, p := range raw {
		k := counts[p.i] + fill[p.i]
		entries[k] = hybridEntry{j: p.j, disp: p.disp, dist: p.disp.Norm()}
		fill[p.i]++
	}
	r.stats.PairListEntries += int64(len(entries))

	energy := 0.0
	var sp [3]int32
	var fb [3]geom.Vec3
	var pp [3]geom.Vec3

	// Pair forces: each undirected pair on exactly one rank, chosen by
	// global ID order.
	for i := 0; i < r.nOwned; i++ {
		for k := counts[i]; k < counts[i+1]; k++ {
			e := entries[k]
			if r.ids[i] >= r.ids[e.j] {
				continue
			}
			sp[0], sp[1] = r.species[i], r.species[e.j]
			fb[0], fb[1] = geom.Vec3{}, geom.Vec3{}
			pp[0], pp[1] = r.lpos[i], r.lpos[i].Add(e.disp)
			energy += pairTerm.Eval(sp[:2], pp[:2], fb[:2])
			r.force[i] = r.force[i].Add(fb[0])
			r.force[e.j] = r.force[e.j].Add(fb[1])
			r.stats.TuplesEvaluated++
		}
	}

	// Triplets around owned centers, pruned from the list.
	if tripTerm != nil {
		rc3 := tripTerm.Cutoff()
		short := make([]int32, 0, 64)
		for j := 0; j < r.nOwned; j++ {
			short = short[:0]
			for k := counts[j]; k < counts[j+1]; k++ {
				r.stats.SearchCandidates++
				if entries[k].dist < rc3 {
					short = append(short, k)
				}
			}
			for a := 0; a < len(short); a++ {
				for b := a + 1; b < len(short); b++ {
					r.stats.SearchCandidates++
					ea, eb := entries[short[a]], entries[short[b]]
					sp[0], sp[1], sp[2] = r.species[ea.j], r.species[j], r.species[eb.j]
					fb[0], fb[1], fb[2] = geom.Vec3{}, geom.Vec3{}, geom.Vec3{}
					pp[0] = r.lpos[j].Add(ea.disp)
					pp[1] = r.lpos[j]
					pp[2] = r.lpos[j].Add(eb.disp)
					energy += tripTerm.Eval(sp[:3], pp[:3], fb[:3])
					r.force[ea.j] = r.force[ea.j].Add(fb[0])
					r.force[j] = r.force[j].Add(fb[1])
					r.force[eb.j] = r.force[eb.j].Add(fb[2])
					r.stats.TuplesEvaluated++
				}
			}
		}
	}
	return energy
}
