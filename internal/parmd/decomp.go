// Package parmd implements the parallel MD codes of the paper's
// benchmarks (§5) on the message-passing runtime of package comm:
//
//   - SC-MD: shift-collapse patterns, octant halo import from 7
//     neighbor ranks in 3 forwarded communication steps (§4.2),
//   - FS-MD: full-shell patterns, 26-neighbor halo import,
//   - Hybrid-MD: full-shell pair search building a Verlet list with
//     triplets pruned from it, 26-neighbor halo import.
//
// The spatial decomposition assigns each rank a contiguous block of
// global cells (the per-processor cell domain Ω of §3.1.3). Each force
// step imports a halo of boundary atoms from neighbor ranks, runs the
// rank-local bounded UCP enumeration anchored at owned cells, and
// returns the forces accumulated on imported atoms to their owners
// (the owner-compute rule is relaxed exactly as in the eighth-shell
// method, so force write-back mirrors the import).
//
// All three engines compute bit-identical global forces; they differ
// in search cost and import volume — the trade-off the paper measures.
package parmd

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// Decomp is the global spatial decomposition: a global cell lattice
// split into contiguous blocks over a Cartesian process grid. Blocks
// differ by at most one cell per axis when the cell count does not
// divide evenly.
type Decomp struct {
	Cart comm.Cart
	Lat  cell.Lattice // global cell lattice

	starts [3][]int // starts[axis][i] = first global cell of block i; len = cartDim+1
}

// NewDecomp builds the decomposition of a box into cells of side ≥
// minCell, split over the given topology. Every rank must receive at
// least one cell per axis.
func NewDecomp(box geom.Box, minCell float64, cart comm.Cart) (*Decomp, error) {
	lat, err := cell.NewLattice(box, minCell)
	if err != nil {
		return nil, fmt.Errorf("parmd: %w", err)
	}
	return NewDecompLattice(lat, cart)
}

// NewDecompLattice builds the decomposition of an existing lattice.
func NewDecompLattice(lat cell.Lattice, cart comm.Cart) (*Decomp, error) {
	d := &Decomp{Cart: cart, Lat: lat}
	for axis := 0; axis < 3; axis++ {
		cells := lat.Dims.Comp(axis)
		procs := cart.Dims.Comp(axis)
		if cells < procs {
			return nil, fmt.Errorf("parmd: %d cells along axis %d cannot cover %d ranks",
				cells, axis, procs)
		}
		base := cells / procs
		rem := cells % procs
		d.starts[axis] = make([]int, procs+1)
		pos := 0
		for i := 0; i < procs; i++ {
			d.starts[axis][i] = pos
			pos += base
			if i < rem {
				pos++
			}
		}
		d.starts[axis][procs] = cells
	}
	return d, nil
}

// BlockLo returns the first owned global cell of the block at the
// given process coordinate.
func (d *Decomp) BlockLo(coord geom.IVec3) geom.IVec3 {
	return geom.IV(d.starts[0][coord.X], d.starts[1][coord.Y], d.starts[2][coord.Z])
}

// BlockHi returns one past the last owned global cell of the block.
func (d *Decomp) BlockHi(coord geom.IVec3) geom.IVec3 {
	return geom.IV(d.starts[0][coord.X+1], d.starts[1][coord.Y+1], d.starts[2][coord.Z+1])
}

// BlockDims returns the owned cell counts of the block.
func (d *Decomp) BlockDims(coord geom.IVec3) geom.IVec3 {
	return d.BlockHi(coord).Sub(d.BlockLo(coord))
}

// MinBlockDim returns the smallest block extent over all ranks and
// axes, which bounds the halo thickness a single staged exchange can
// serve.
func (d *Decomp) MinBlockDim() int {
	m := int(^uint(0) >> 1)
	for axis := 0; axis < 3; axis++ {
		s := d.starts[axis]
		for i := 0; i+1 < len(s); i++ {
			if w := s[i+1] - s[i]; w < m {
				m = w
			}
		}
	}
	return m
}

// OwnerCoord returns the process coordinate owning a global cell.
func (d *Decomp) OwnerCoord(q geom.IVec3) geom.IVec3 {
	var c geom.IVec3
	for axis := 0; axis < 3; axis++ {
		c.SetComp(axis, d.ownerIndex(axis, q.Comp(axis)))
	}
	return c
}

// ownerIndex finds the block index along one axis by binary search.
func (d *Decomp) ownerIndex(axis, cellIdx int) int {
	s := d.starts[axis]
	lo, hi := 0, len(s)-1 // blocks [lo, hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if cellIdx >= s[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OwnerRank returns the rank owning the atom at a wrapped global
// position.
func (d *Decomp) OwnerRank(pos geom.Vec3) int {
	return d.Cart.Rank(d.OwnerCoord(d.Lat.CellOf(pos)))
}
