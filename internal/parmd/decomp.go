// Package parmd implements the parallel MD codes of the paper's
// benchmarks (§5) on the message-passing runtime of package comm:
//
//   - SC-MD: shift-collapse patterns, octant halo import from 7
//     neighbor ranks in 3 forwarded communication steps (§4.2),
//   - FS-MD: full-shell patterns, 26-neighbor halo import,
//   - Hybrid-MD: full-shell pair search building a Verlet list with
//     triplets pruned from it, 26-neighbor halo import.
//
// The spatial decomposition assigns each rank a contiguous block of
// global cells (the per-processor cell domain Ω of §3.1.3). Each force
// step imports a halo of boundary atoms from neighbor ranks, runs the
// rank-local bounded UCP enumeration anchored at owned cells, and
// returns the forces accumulated on imported atoms to their owners
// (the owner-compute rule is relaxed exactly as in the eighth-shell
// method, so force write-back mirrors the import).
//
// All three engines compute bit-identical global forces; they differ
// in search cost and import volume — the trade-off the paper measures.
package parmd

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// Decomp is the global spatial decomposition: a global cell lattice
// split into contiguous blocks over a Cartesian process grid. Blocks
// differ by at most one cell per axis when the cell count does not
// divide evenly.
type Decomp struct {
	Cart comm.Cart
	Lat  cell.Lattice // global cell lattice

	starts [3][]int // starts[axis][i] = first global cell of block i; len = cartDim+1
}

// NewDecomp builds the decomposition of a box into cells of side ≥
// minCell, split over the given topology. Every rank must receive at
// least one cell per axis.
func NewDecomp(box geom.Box, minCell float64, cart comm.Cart) (*Decomp, error) {
	lat, err := cell.NewLattice(box, minCell)
	if err != nil {
		return nil, fmt.Errorf("parmd: %w", err)
	}
	return NewDecompLattice(lat, cart)
}

// NewDecompLattice builds the decomposition of an existing lattice.
func NewDecompLattice(lat cell.Lattice, cart comm.Cart) (*Decomp, error) {
	d := &Decomp{Cart: cart, Lat: lat}
	for axis := 0; axis < 3; axis++ {
		cells := lat.Dims.Comp(axis)
		procs := cart.Dims.Comp(axis)
		if cells < procs {
			return nil, fmt.Errorf("parmd: %d cells along axis %d cannot cover %d ranks",
				cells, axis, procs)
		}
		base := cells / procs
		rem := cells % procs
		d.starts[axis] = make([]int, procs+1)
		pos := 0
		for i := 0; i < procs; i++ {
			d.starts[axis][i] = pos
			pos += base
			if i < rem {
				pos++
			}
		}
		d.starts[axis][procs] = cells
	}
	return d, nil
}

// NewDecompStarts builds a decomposition with explicit per-axis slab
// boundaries: starts[axis][i] is the first global cell of block i, with
// starts[axis][0] = 0 and starts[axis][procs] = cells. Boundaries must
// be strictly increasing (every block at least one cell wide). The
// slices are copied, so the caller may reuse its scratch — the
// repartition path installs each balance decision through here.
func NewDecompStarts(lat cell.Lattice, cart comm.Cart, starts [3][]int) (*Decomp, error) {
	d := &Decomp{Cart: cart, Lat: lat}
	for axis := 0; axis < 3; axis++ {
		procs := cart.Dims.Comp(axis)
		cells := lat.Dims.Comp(axis)
		s := starts[axis]
		if len(s) != procs+1 {
			return nil, fmt.Errorf("parmd: axis %d: %d boundaries for %d ranks (want %d)",
				axis, len(s), procs, procs+1)
		}
		if s[0] != 0 || s[procs] != cells {
			return nil, fmt.Errorf("parmd: axis %d: boundaries [%d, %d] must span [0, %d]",
				axis, s[0], s[procs], cells)
		}
		for i := 0; i < procs; i++ {
			if s[i+1] <= s[i] {
				return nil, fmt.Errorf("parmd: axis %d: block %d is empty (boundaries %d, %d)",
					axis, i, s[i], s[i+1])
			}
		}
		d.starts[axis] = append([]int(nil), s...)
	}
	return d, nil
}

// Starts returns a copy of the slab boundaries along one axis
// (length = process-grid extent + 1).
func (d *Decomp) Starts(axis int) []int {
	return append([]int(nil), d.starts[axis]...)
}

// Rebalance returns a new decomposition whose slab boundaries shift
// toward equalizing per-block weight, and whether any boundary moved.
// weights[axis][x] is the measured cost of global cell layer x along
// that axis (a nil axis is left untouched). minWidth is the smallest
// block extent any rank may shrink to (the halo thickness); maxShift
// caps how far one boundary moves per call, bounding the migration a
// repartition triggers; minGain is the hysteresis guard — an axis's
// boundaries move only when the predicted per-axis imbalance (max
// block weight over mean) improves by at least minGain, so measurement
// noise on an already balanced run never causes churn.
func (d *Decomp) Rebalance(weights [3][]float64, minWidth, maxShift int, minGain float64) (*Decomp, bool) {
	var cand [3][]int
	for axis := 0; axis < 3; axis++ {
		cand[axis] = make([]int, len(d.starts[axis]))
	}
	if !d.rebalanceInto(weights, minWidth, maxShift, minGain, &cand) {
		return d, false
	}
	nd, err := NewDecompStarts(d.Lat, d.Cart, cand)
	if err != nil {
		// rebalanceInto only emits valid boundaries; defend anyway.
		return d, false
	}
	return nd, true
}

// rebalanceInto computes the rebalanced boundaries into the
// caller-provided scratch (cand[axis] sized len(starts[axis])) and
// reports whether any axis moved. Split from Rebalance so the balance
// protocol's steady-state checks allocate nothing.
func (d *Decomp) rebalanceInto(weights [3][]float64, minWidth, maxShift int, minGain float64, cand *[3][]int) bool {
	changed := false
	for axis := 0; axis < 3; axis++ {
		old := d.starts[axis]
		out := cand[axis][:len(old)]
		copy(out, old)
		procs := len(old) - 1
		w := weights[axis]
		if procs < 2 || len(w) != old[procs] {
			continue
		}
		total := 0.0
		for _, x := range w {
			total += x
		}
		if !(total > 0) {
			continue
		}
		// Equalize prefix sums: boundary i lands where the cumulative
		// weight crosses i/procs of the total, rounded to the closer of
		// the two bracketing cell boundaries.
		for i := 1; i < procs; i++ {
			target := total * float64(i) / float64(procs)
			s, acc := 0, 0.0
			for s < len(w) && acc < target {
				acc += w[s]
				s++
			}
			if s > 0 && acc-target > target-(acc-w[s-1]) {
				s--
			}
			// Bound the per-repartition movement (and with it the
			// migration rounds the installation needs).
			if s > old[i]+maxShift {
				s = old[i] + maxShift
			} else if s < old[i]-maxShift {
				s = old[i] - maxShift
			}
			out[i] = s
		}
		// Enforce the minimum block width with a forward then backward
		// clamp; the current boundaries satisfy it, so the passes always
		// land on a feasible layout.
		for i := 1; i <= procs; i++ {
			if out[i] < out[i-1]+minWidth {
				out[i] = out[i-1] + minWidth
			}
		}
		out[procs] = old[procs]
		for i := procs - 1; i >= 1; i-- {
			if out[i] > out[i+1]-minWidth {
				out[i] = out[i+1] - minWidth
			}
		}
		// Hysteresis: adopt the axis only when the predicted imbalance
		// improves by at least minGain.
		if axisImbalance(w, old)-axisImbalance(w, out) < minGain {
			copy(out, old)
			continue
		}
		for i := range out {
			if out[i] != old[i] {
				changed = true
				break
			}
		}
	}
	return changed
}

// axisImbalance is the predicted per-axis load imbalance of a boundary
// layout: the maximum block weight over the mean block weight.
func axisImbalance(w []float64, starts []int) float64 {
	procs := len(starts) - 1
	maxW, total := 0.0, 0.0
	for i := 0; i < procs; i++ {
		bw := 0.0
		for x := starts[i]; x < starts[i+1]; x++ {
			bw += w[x]
		}
		total += bw
		if bw > maxW {
			maxW = bw
		}
	}
	if !(total > 0) {
		return 1
	}
	return maxW / (total / float64(procs))
}

// maxBoundaryShift returns the largest per-boundary cell distance
// between two decompositions of the same lattice and topology — the
// number of one-hop migration rounds that provably suffice to hand
// every atom to its new owner (an atom whose owner index moves by k
// requires k boundaries to have crossed its cell, and boundaries stay
// ≥ 1 cell apart, so some boundary moved by ≥ k).
func maxBoundaryShift(a, b *Decomp) int {
	m := 0
	for axis := 0; axis < 3; axis++ {
		for i, s := range a.starts[axis] {
			d := b.starts[axis][i] - s
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}

// BlockLo returns the first owned global cell of the block at the
// given process coordinate.
func (d *Decomp) BlockLo(coord geom.IVec3) geom.IVec3 {
	return geom.IV(d.starts[0][coord.X], d.starts[1][coord.Y], d.starts[2][coord.Z])
}

// BlockHi returns one past the last owned global cell of the block.
func (d *Decomp) BlockHi(coord geom.IVec3) geom.IVec3 {
	return geom.IV(d.starts[0][coord.X+1], d.starts[1][coord.Y+1], d.starts[2][coord.Z+1])
}

// BlockDims returns the owned cell counts of the block.
func (d *Decomp) BlockDims(coord geom.IVec3) geom.IVec3 {
	return d.BlockHi(coord).Sub(d.BlockLo(coord))
}

// MinBlockDim returns the smallest block extent over all ranks and
// axes, which bounds the halo thickness a single staged exchange can
// serve.
func (d *Decomp) MinBlockDim() int {
	m := int(^uint(0) >> 1)
	for axis := 0; axis < 3; axis++ {
		s := d.starts[axis]
		for i := 0; i+1 < len(s); i++ {
			if w := s[i+1] - s[i]; w < m {
				m = w
			}
		}
	}
	return m
}

// OwnerCoord returns the process coordinate owning a global cell.
func (d *Decomp) OwnerCoord(q geom.IVec3) geom.IVec3 {
	var c geom.IVec3
	for axis := 0; axis < 3; axis++ {
		c.SetComp(axis, d.ownerIndex(axis, q.Comp(axis)))
	}
	return c
}

// ownerIndex finds the block index along one axis by binary search.
func (d *Decomp) ownerIndex(axis, cellIdx int) int {
	s := d.starts[axis]
	lo, hi := 0, len(s)-1 // blocks [lo, hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if cellIdx >= s[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OwnerRank returns the rank owning the atom at a wrapped global
// position.
func (d *Decomp) OwnerRank(pos geom.Vec3) int {
	return d.Cart.Rank(d.OwnerCoord(d.Lat.CellOf(pos)))
}
