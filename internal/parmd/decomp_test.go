package parmd

import (
	"math/rand"
	"testing"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// testDecomp builds a decomposition of a dims-cell lattice over a
// cart-dims process grid with the default near-uniform boundaries.
func testDecomp(t *testing.T, dims, cartDims geom.IVec3) *Decomp {
	t.Helper()
	lat, err := cell.NewLatticeDims(geom.NewBox(float64(dims.X)*5, float64(dims.Y)*5, float64(dims.Z)*5), dims)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := comm.NewCartDims(cartDims)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecompLattice(lat, cart)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// randomStarts draws a valid boundary layout: strictly increasing,
// spanning [0, cells].
func randomStarts(rng *rand.Rand, procs, cells int) []int {
	for {
		s := make([]int, procs+1)
		s[procs] = cells
		used := map[int]bool{0: true, cells: true}
		ok := true
		for i := 1; i < procs; i++ {
			v := 1 + rng.Intn(cells-1)
			if used[v] {
				ok = false
				break
			}
			used[v] = true
			s[i] = v
		}
		if !ok {
			continue
		}
		// Sort the interior boundaries (procs is small; insertion sort).
		for i := 2; i < procs; i++ {
			for j := i; j > 1 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s
	}
}

// TestOwnerIndexProperty: for arbitrary valid boundary layouts, every
// global cell maps to the block whose [lo, hi) contains it — the
// contract ownerIndex's binary search must keep once boundaries are no
// longer the uniform base/remainder layout.
func TestOwnerIndexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := testDecomp(t, geom.IV(17, 9, 12), geom.IV(4, 2, 3))
	for trial := 0; trial < 200; trial++ {
		var starts [3][]int
		for axis := 0; axis < 3; axis++ {
			starts[axis] = randomStarts(rng,
				base.Cart.Dims.Comp(axis), base.Lat.Dims.Comp(axis))
		}
		d, err := NewDecompStarts(base.Lat, base.Cart, starts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for axis := 0; axis < 3; axis++ {
			s := starts[axis]
			for c := 0; c < base.Lat.Dims.Comp(axis); c++ {
				i := d.ownerIndex(axis, c)
				if !(s[i] <= c && c < s[i+1]) {
					t.Fatalf("trial %d axis %d: cell %d mapped to block %d = [%d,%d)",
						trial, axis, c, i, s[i], s[i+1])
				}
			}
		}
		// The block views agree with the starts.
		for rank := 0; rank < d.Cart.Size(); rank++ {
			co := d.Cart.Coord(rank)
			lo, hi := d.BlockLo(co), d.BlockHi(co)
			for axis := 0; axis < 3; axis++ {
				if lo.Comp(axis) != starts[axis][co.Comp(axis)] ||
					hi.Comp(axis) != starts[axis][co.Comp(axis)+1] {
					t.Fatalf("trial %d rank %d: block [%v,%v) disagrees with starts", trial, rank, lo, hi)
				}
			}
		}
	}
}

func TestNewDecompStartsRejectsInvalid(t *testing.T) {
	d := testDecomp(t, geom.IV(8, 8, 8), geom.IV(2, 1, 1))
	good := [3][]int{d.Starts(0), d.Starts(1), d.Starts(2)}
	cases := []struct {
		name   string
		mutate func(s *[3][]int)
	}{
		{"wrong length", func(s *[3][]int) { s[0] = []int{0, 2, 5, 8} }},
		{"nonzero first", func(s *[3][]int) { s[0][0] = 1 }},
		{"short span", func(s *[3][]int) { s[0][len(s[0])-1] = 7 }},
		{"empty block", func(s *[3][]int) { s[0][1] = 0 }},
		{"decreasing", func(s *[3][]int) { s[0][1] = 9 }},
	}
	for _, tc := range cases {
		s := [3][]int{
			append([]int(nil), good[0]...),
			append([]int(nil), good[1]...),
			append([]int(nil), good[2]...),
		}
		tc.mutate(&s)
		if _, err := NewDecompStarts(d.Lat, d.Cart, s); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewDecompStarts(d.Lat, d.Cart, good); err != nil {
		t.Errorf("valid starts rejected: %v", err)
	}
}

// TestRebalanceEqualizes: a strongly skewed weight profile moves the
// boundary toward the heavy side, never past maxShift, never below
// minWidth, and the predicted imbalance improves.
func TestRebalanceEqualizes(t *testing.T) {
	d := testDecomp(t, geom.IV(16, 4, 4), geom.IV(4, 1, 1))
	// All weight in the last quarter of x.
	var w [3][]float64
	w[0] = make([]float64, 16)
	for x := 12; x < 16; x++ {
		w[0][x] = 1
	}
	old := d.Starts(0)
	nd, moved := d.Rebalance(w, 2, 3, 0.02)
	if !moved {
		t.Fatal("no move on a maximally skewed profile")
	}
	ns := nd.Starts(0)
	for i := 1; i < 4; i++ {
		if ns[i] < old[i] {
			t.Errorf("boundary %d moved away from the load: %d -> %d", i, old[i], ns[i])
		}
		if diff := ns[i] - old[i]; diff > 3 {
			t.Errorf("boundary %d moved %d > maxShift 3", i, diff)
		}
	}
	for i := 0; i < 4; i++ {
		if ns[i+1]-ns[i] < 2 {
			t.Errorf("block %d width %d < minWidth 2", i, ns[i+1]-ns[i])
		}
	}
	if before, after := axisImbalance(w[0], old), axisImbalance(w[0], ns); after >= before {
		t.Errorf("imbalance %g -> %g did not improve", before, after)
	}
	// Untouched axes keep their boundaries.
	for axis := 1; axis < 3; axis++ {
		got, want := nd.Starts(axis), d.Starts(axis)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("axis %d boundaries moved without weights", axis)
			}
		}
	}
	// Iterating converges onto the loaded quarter (one cell per rank is
	// impossible under minWidth 2; it packs as tight as feasibility
	// allows and then stops moving).
	cur := d
	for i := 0; i < 10; i++ {
		next, m := cur.Rebalance(w, 2, 3, 0.02)
		if !m {
			break
		}
		cur = next
	}
	if s := cur.Starts(0); s[3] < 10 {
		t.Errorf("converged boundary 3 at %d, want pulled toward the loaded quarter", s[3])
	}
}

// TestRebalanceHysteresis: a near-uniform profile whose best move buys
// less than minGain keeps the current boundaries — the guard that makes
// measurement noise on balanced runs cause zero churn.
func TestRebalanceHysteresis(t *testing.T) {
	d := testDecomp(t, geom.IV(16, 4, 4), geom.IV(4, 1, 1))
	var w [3][]float64
	w[0] = make([]float64, 16)
	rng := rand.New(rand.NewSource(7))
	for x := range w[0] {
		w[0][x] = 1 + 0.01*rng.Float64()
	}
	if _, moved := d.Rebalance(w, 1, 2, 0.05); moved {
		t.Error("noisy uniform profile moved boundaries")
	}
	// The same profile with a zero guard may move; with the guard the
	// result must be the identical decomposition.
	nd, moved := d.Rebalance(w, 1, 2, 0.05)
	if moved {
		t.Fatal("moved")
	}
	for axis := 0; axis < 3; axis++ {
		got, want := nd.Starts(axis), d.Starts(axis)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("axis %d boundaries changed", axis)
			}
		}
	}
}

func TestMaxBoundaryShift(t *testing.T) {
	d := testDecomp(t, geom.IV(16, 4, 4), geom.IV(4, 1, 1))
	if got := maxBoundaryShift(d, d); got != 0 {
		t.Errorf("self shift %d", got)
	}
	s := [3][]int{d.Starts(0), d.Starts(1), d.Starts(2)}
	s[0][1] -= 3
	s[0][2] -= 1
	nd, err := NewDecompStarts(d.Lat, d.Cart, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxBoundaryShift(d, nd); got != 3 {
		t.Errorf("shift %d, want 3", got)
	}
	if got := maxBoundaryShift(nd, d); got != 3 {
		t.Errorf("reverse shift %d, want 3", got)
	}
}
