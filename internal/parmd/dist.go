package parmd

import (
	"fmt"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// finalAtom is one atom of the gathered end state. In-process runs
// collect these through shared memory; worker-mode runs encode them
// with the wire helpers below and gather them to rank 0 as the run's
// final collective.
type finalAtom struct {
	id      int64
	pos     geom.Vec3
	vel     geom.Vec3
	force   geom.Vec3
	species int32
}

// finalAtomWireBytes is the encoded size of one finalAtom record:
// id i64 + species i32 + pos/vel/force 3×Vec3.
const finalAtomWireBytes = 8 + 4 + 3*24

// encodeFinalGather serializes one rank's end-of-run contribution:
// its finalAtom records, its RankStats counters (driven off the
// rankStatFields table so the format tracks the struct), and its
// per-class comm counters in ClassNames order.
func encodeFinalGather(b *comm.Buffer, fin []finalAtom, st *RankStats, classes []comm.Stats) {
	b.Int64(int64(len(fin)))
	for i := range fin {
		a := &fin[i]
		b.Int64(a.id)
		b.Int32(a.species)
		b.Vec3(a.pos)
		b.Vec3(a.vel)
		b.Vec3(a.force)
	}
	b.Int64(int64(len(rankStatFields)))
	for _, f := range rankStatFields {
		b.Float64(f.Get(st))
	}
	b.Int64(int64(len(classes)))
	for _, s := range classes {
		b.Int64(s.Messages)
		b.Int64(s.Bytes)
		b.Int64(s.Wait.Nanoseconds())
	}
}

// decodeFinalGather is the inverse of encodeFinalGather. Every count
// is validated and every decode error surfaces typed — a truncated or
// desynced payload from a remote worker must not panic rank 0.
func decodeFinalGather(raw []byte, classCount int) (fin []finalAtom, st RankStats, classes []comm.Stats, err error) {
	var rd comm.Reader
	rd.Reset(raw)
	n := rd.Int64()
	if err := rd.Err(); err != nil {
		return nil, st, nil, err
	}
	if n < 0 || n > int64(len(raw))/finalAtomWireBytes {
		return nil, st, nil, fmt.Errorf("atom count %d does not fit %d payload bytes", n, len(raw))
	}
	fin = make([]finalAtom, n)
	for i := range fin {
		fin[i].id = rd.Int64()
		fin[i].species = rd.Int32()
		fin[i].pos = rd.Vec3()
		fin[i].vel = rd.Vec3()
		fin[i].force = rd.Vec3()
	}
	if nf := rd.Int64(); nf != int64(len(rankStatFields)) {
		return nil, st, nil, fmt.Errorf("stat table has %d fields, want %d (version skew?)", nf, len(rankStatFields))
	}
	for _, f := range rankStatFields {
		f.Set(&st, rd.Float64())
	}
	if nc := rd.Int64(); nc != int64(classCount) {
		return nil, st, nil, fmt.Errorf("%d traffic classes, want %d", nc, classCount)
	}
	classes = make([]comm.Stats, classCount)
	for i := range classes {
		classes[i].Messages = rd.Int64()
		classes[i].Bytes = rd.Int64()
		classes[i].Wait = time.Duration(rd.Int64())
	}
	if err := rd.Err(); err != nil {
		return nil, st, nil, err
	}
	if rd.Remaining() != 0 {
		return nil, st, nil, fmt.Errorf("%d trailing bytes", rd.Remaining())
	}
	return fin, st, classes, nil
}

// gatherDistributed ships this rank's final atoms and counters to
// rank 0 over the fabric and, on rank 0, decodes every contribution
// into finals/res. The counters are snapshotted before the gather
// sends so — like the in-process shared-memory collection — the
// gather's own traffic isn't metered into the run's comm totals.
func gatherDistributed(p *comm.Proc, r *rankState, fin []finalAtom, finals [][]finalAtom, res *Result) error {
	classes := make([]comm.Stats, p.ClassCount())
	p.ClassStatsInto(classes)
	var b comm.Buffer
	encodeFinalGather(&b, fin, &r.stats, classes)
	parts := p.GatherTo0(b.Bytes())
	if p.Rank() != 0 {
		return nil
	}
	names := p.ClassNames()
	res.CommByClass = make(map[string]comm.Stats, len(names))
	for rank, part := range parts {
		fa, st, cls, err := decodeFinalGather(part, len(names))
		if err != nil {
			return fmt.Errorf("final gather from rank %d: %w", rank, err)
		}
		finals[rank] = fa
		res.RankStats[rank] = st
		for i, s := range cls {
			t := res.CommByClass[names[i]]
			t.Messages += s.Messages
			t.Bytes += s.Bytes
			t.Wait += s.Wait
			res.CommByClass[names[i]] = t
			res.Comm.Messages += s.Messages
			res.Comm.Bytes += s.Bytes
			res.Comm.Wait += s.Wait
		}
	}
	return nil
}
