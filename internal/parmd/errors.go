package parmd

import (
	"errors"
	"fmt"
)

// RankError is the typed failure of one rank of a parallel run: which
// rank failed, at which step (−1 is the initial force evaluation), in
// which phase of the step protocol ("halo", "writeback", "migrate",
// "health", …), and the underlying cause. The exchange hot paths
// return these instead of panicking, so one malformed message aborts
// the run with full context rather than taking down the process.
type RankError struct {
	Rank  int
	Step  int
	Phase string
	Err   error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("parmd: rank %d step %d phase %s: %v", e.Rank, e.Step, e.Phase, e.Err)
}

// Unwrap exposes the cause, so errors.Is/As see through the rank
// context (e.g. to a health.FailError or comm.ErrAborted).
func (e *RankError) Unwrap() error { return e.Err }

// rankErr wraps err with this rank's identity and current step.
func (r *rankState) rankErr(phase string, err error) *RankError {
	return &RankError{Rank: r.p.Rank(), Step: r.curStep, Phase: phase, Err: err}
}

// RankErrors flattens a parallel run's error into the per-rank typed
// failures it joins — one *RankError per failed rank (every rank, when
// a failure aborted the whole world). Non-rank errors are skipped.
func RankErrors(err error) []*RankError {
	var out []*RankError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		// Multi-errors (errors.Join) fan out before errors.As runs, or
		// the join would collapse to its first rank error only.
		if j, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range j.Unwrap() {
				walk(sub)
			}
			return
		}
		var re *RankError
		if errors.As(e, &re) {
			out = append(out, re)
		}
	}
	walk(err)
	return out
}
