package parmd

import (
	"fmt"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestExchangePlanCompile: the compiled schedule has the paper's phase
// structure — 3 one-directional phases for SC-MD's octant import, 6
// for the full shell — with slab bounds matching the margins and
// symmetric peer/tag pairs.
func TestExchangePlanCompile(t *testing.T) {
	model := potential.NewSilicaModel()
	box := geom.NewCubicBox(8 * 5.5)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	dec, err := NewDecomp(box, model.MaxCutoff(), cart)
	if err != nil {
		t.Fatal(err)
	}
	side := minSide(dec.Lat.Side)
	for _, scheme := range Schemes() {
		mLo, mHi, err := scheme.margins(model, side)
		if err != nil {
			t.Fatal(err)
		}
		wantPhases := 0
		if mHi > 0 {
			wantPhases += 3
		}
		if mLo > 0 {
			wantPhases += 3
		}
		for rank := 0; rank < cart.Size(); rank++ {
			plan := compileExchangePlan(dec, rank, mLo, mHi)
			if len(plan.Halo) != wantPhases {
				t.Fatalf("%v rank %d: %d halo phases, want %d", scheme, rank, len(plan.Halo), wantPhases)
			}
			coord := cart.Coord(rank)
			block := dec.BlockHi(coord).Sub(dec.BlockLo(coord))
			for _, ph := range plan.Halo {
				if ph.SendPeer != cart.AxisNeighbor(rank, ph.Axis, ph.Dir) ||
					ph.RecvPeer != cart.AxisNeighbor(rank, ph.Axis, -ph.Dir) {
					t.Errorf("%v rank %d axis %d dir %d: peers (%d, %d)",
						scheme, rank, ph.Axis, ph.Dir, ph.SendPeer, ph.RecvPeer)
				}
				if got := ph.SlabHi - ph.SlabLo; (ph.Dir < 0 && got != mHi) || (ph.Dir > 0 && got != mLo) {
					t.Errorf("%v rank %d axis %d dir %d: slab thickness %d (margins %d/%d)",
						scheme, rank, ph.Axis, ph.Dir, got, mLo, mHi)
				}
				// The top slab of thickness mLo ends at the owned range's
				// upper edge mLo+block, so it starts at exactly block.
				if ph.Dir > 0 && ph.SlabLo != block.Comp(ph.Axis) {
					t.Errorf("%v rank %d axis %d: top slab starts at %d, want block extent %d",
						scheme, rank, ph.Axis, ph.SlabLo, block.Comp(ph.Axis))
				}
				if ph.ForceTag-ph.Tag != tagForce-tagHalo {
					t.Errorf("%v rank %d: halo tag %d and force tag %d out of step",
						scheme, rank, ph.Tag, ph.ForceTag)
				}
			}
			for axis := 0; axis < 3; axis++ {
				mp := plan.Migrate[axis]
				if !mp.Active {
					t.Errorf("%v rank %d axis %d: inactive migration on a 2-rank axis", scheme, rank, axis)
				}
				if mp.Dim != 2 || mp.BlockIdx != coord.Comp(axis) {
					t.Errorf("%v rank %d axis %d: dim %d idx %d", scheme, rank, axis, mp.Dim, mp.BlockIdx)
				}
			}
		}
	}

	// A 1-rank axis compiles to an inactive migration phase.
	cart1, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	dec1, err := NewDecomp(box, model.MaxCutoff(), cart1)
	if err != nil {
		t.Fatal(err)
	}
	plan := compileExchangePlan(dec1, 0, 0, 1)
	if plan.Migrate[0].Active != true || plan.Migrate[1].Active || plan.Migrate[2].Active {
		t.Errorf("migration activity %v %v %v, want true false false",
			plan.Migrate[0].Active, plan.Migrate[1].Active, plan.Migrate[2].Active)
	}
}

// TestCommByClassAccounting is the byte-accounting regression test:
// SC-MD's octant import must move strictly fewer halo and write-back
// bytes than FS-MD's full shell on the same silica workload, wire
// volumes must match the codec's record sizes exactly, and the
// per-class counters must sum to the world totals.
func TestCommByClassAccounting(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 21)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	const steps = 2
	byClass := map[Scheme]map[string]comm.Stats{}
	imported := map[Scheme]int64{}
	for _, scheme := range []Scheme{SchemeSC, SchemeFS} {
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: steps})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		var sum comm.Stats
		for _, s := range res.CommByClass {
			sum.Messages += s.Messages
			sum.Bytes += s.Bytes
			sum.Wait += s.Wait
		}
		if sum != res.Comm {
			t.Errorf("%v: classes sum to %+v, world total %+v", scheme, sum, res.Comm)
		}
		for _, s := range res.RankStats {
			imported[scheme] += s.AtomsImported
		}
		byClass[scheme] = res.CommByClass
	}

	for _, class := range []string{"halo", "force"} {
		sc, fs := byClass[SchemeSC][class], byClass[SchemeFS][class]
		if !(sc.Bytes < fs.Bytes) {
			t.Errorf("%s bytes: SC %d not strictly below FS %d", class, sc.Bytes, fs.Bytes)
		}
		if !(2*sc.Messages == fs.Messages) {
			t.Errorf("%s messages: SC %d vs FS %d, want exactly half", class, sc.Messages, fs.Messages)
		}
	}
	// Wire volume = imported atoms × codec record size, exactly: every
	// imported atom crosses the wire once on import (48 B) and its
	// force once on write-back (24 B).
	for _, scheme := range []Scheme{SchemeSC, SchemeFS} {
		if got, want := byClass[scheme]["halo"].Bytes, imported[scheme]*HaloAtomWireBytes; got != want {
			t.Errorf("%v halo bytes %d, want %d imported atoms × %d", scheme, got, imported[scheme], HaloAtomWireBytes)
		}
		if got, want := byClass[scheme]["force"].Bytes, imported[scheme]*ForceWireBytes; got != want {
			t.Errorf("%v force bytes %d, want %d imported atoms × %d", scheme, got, imported[scheme], ForceWireBytes)
		}
	}
}

// exchangeRig builds the per-rank state used by the allocation tests
// and benchmark: a thermalized silica block adopted by each rank.
// overlap selects the exchange mode the iter closure exercises: the
// synchronous import, or the split-phase begin/finish pair the
// overlapped force path runs (with nothing in the overlap window, so
// only the exchange itself is measured).
func exchangeRig(p *comm.Proc, dec *Decomp, cfg *workload.Config, model *potential.Model, scheme Scheme, overlap bool) (*rankState, func() error, error) {
	r, err := newRankState(p, dec, model, scheme, 1, overlap)
	if err != nil {
		return nil, nil, err
	}
	r.adopt(cfg)
	iter := func() error {
		r.dropHalo()
		r.deriveOwned()
		if overlap {
			r.beginHalo()
			if err := r.finishHalo(); err != nil {
				return err
			}
		} else if err := r.importHalo(); err != nil {
			return err
		}
		return r.writeBackForces()
	}
	return r, iter, nil
}

// TestHaloExchangeZeroAllocs: after warm-up, a full halo import plus
// force write-back cycle must not allocate — the compiled plan reuses
// its index scratch and the pooled buffers circulate through the
// per-rank freelists. Both exchange modes are covered: the synchronous
// import and the split-phase (posted handles) exchange the overlapped
// force path runs.
func TestHaloExchangeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg, model := silicaConfig(t, 4, 300, 22)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	for _, overlap := range []bool{false, true} {
		for _, scheme := range []Scheme{SchemeSC, SchemeFS} {
			dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
			if err != nil {
				t.Fatal(err)
			}
			world := comm.NewWorld(cart.Size())
			defineTagClasses(world)
			err = world.Run(func(p *comm.Proc) error {
				_, iter, err := exchangeRig(p, dec, cfg, model, scheme, overlap)
				if err != nil {
					return err
				}
				var iterErr error
				run := func() {
					if err := iter(); err != nil && iterErr == nil {
						iterErr = err
					}
				}
				// Pooled buffers circulate between ranks and grow in place;
				// enough warm-up rounds let every circulating buffer reach
				// the largest payload on its route.
				for k := 0; k < 30; k++ {
					run()
				}
				p.Barrier()
				// Rank 0 measures; the others run the same 1+10 cycles
				// plainly (AllocsPerRun counts process-wide mallocs, so
				// their steady state must be clean too).
				if p.Rank() != 0 {
					for k := 0; k < 11; k++ {
						run()
					}
					p.Barrier()
					return iterErr
				}
				allocs := testing.AllocsPerRun(10, run)
				p.Barrier()
				if iterErr != nil {
					return iterErr
				}
				if allocs != 0 {
					return fmt.Errorf("%v overlap=%v: %g allocs per halo+write-back cycle", scheme, overlap, allocs)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}
	}
}

// BenchmarkHaloExchange measures one full halo import + force
// write-back cycle per scheme on an 8-rank silica world (the hot comm
// path of every MD step).
func BenchmarkHaloExchange(b *testing.B) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(4, 4, 4)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	for _, scheme := range []Scheme{SchemeSC, SchemeFS} {
		b.Run(scheme.String(), func(b *testing.B) {
			dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
			if err != nil {
				b.Fatal(err)
			}
			world := comm.NewWorld(cart.Size())
			defineTagClasses(world)
			b.ReportAllocs()
			err = world.Run(func(p *comm.Proc) error {
				r, iter, err := exchangeRig(p, dec, cfg, model, scheme, false)
				if err != nil {
					return err
				}
				if err := iter(); err != nil { // warm up before the measured loop
					return err
				}
				p.Barrier()
				if p.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					if err := iter(); err != nil {
						return err
					}
				}
				if p.Rank() == 0 {
					b.ReportMetric(float64(r.stats.AtomsImported)/float64(r.stats.HaloMessages/2), "atoms/phase")
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
