package parmd

import (
	"fmt"
	"sync/atomic"
	"time"

	"sctuple/internal/comm"
)

// FaultTransport wraps the in-process channel transport and corrupts
// messages of one traffic class by appending garbage, so payloads stop
// being a whole number of wire records — the fault the typed-error
// paths must turn into a *RankError instead of a process-killing
// panic, and the injection seam behind scmd's -fault flag for
// exercising the postmortem pipeline on demand. It forwards RecvChan,
// keeping the world's abort protocol able to unblock healthy ranks.
type FaultTransport struct {
	comm.AsyncTransport
	lo, hi int
	after  int64
	n      atomic.Int64
	// Dst, when non-nil, restricts corruption to matching destination
	// ranks (poison one rank, watch its peers unwind via abort).
	Dst func(dst int) bool
}

// faultClasses mirrors defineTagClasses: the tag range of each named
// traffic class a fault can target.
var faultClasses = map[string][2]int{
	"migrate": {tagMigrate, tagHalo},
	"halo":    {tagHalo, tagForce},
	"force":   {tagForce, tagHealth},
	"health":  {tagHealth, tagHealth + 100},
	"balance": {tagBalance, tagBalance + 100},
}

// NewFaultTransport builds a transport for a ranks-sized world that
// corrupts every message of the named traffic class ("migrate",
// "halo", "force", "health", "balance") after the first `after`
// matching messages have passed clean — so a run can step healthily
// for a while before the fault lands mid-run.
func NewFaultTransport(ranks int, class string, after int) (*FaultTransport, error) {
	r, ok := faultClasses[class]
	if !ok {
		return nil, fmt.Errorf("parmd: unknown fault class %q (want migrate, halo, force, health, or balance)", class)
	}
	return &FaultTransport{
		AsyncTransport: comm.NewChanTransport(ranks).(comm.AsyncTransport),
		lo:             r[0], hi: r[1], after: int64(after),
	}, nil
}

// SetAbort forwards the world's abort channel to the wrapped channel
// transport so blocked sends stay interruptible under injection (the
// interface-typed embed does not promote the extension).
func (t *FaultTransport) SetAbort(ch <-chan struct{}) {
	if a, ok := t.AsyncTransport.(comm.AbortAware); ok {
		a.SetAbort(ch)
	}
}

// Send forwards the message, appending 8 garbage bytes (no wire record
// size divides them) once the class's clean-message budget is spent.
func (t *FaultTransport) Send(src, dst int, m comm.Message) {
	if m.Tag >= t.lo && m.Tag < t.hi && (t.Dst == nil || t.Dst(dst)) && t.n.Add(1) > t.after {
		m.Buf.Int64(0x0BAD)
	}
	t.AsyncTransport.Send(src, dst, m)
}

// DelayTransport wraps the in-process channel transport and stalls the
// sender of messages in one traffic class for a fixed duration over a
// bounded window of matching messages — a step-time spike injector
// that perturbs performance without touching any payload. Matched
// reports how many class messages passed, so a caller can calibrate
// the window in messages-per-step with a clean dry run first.
type DelayTransport struct {
	comm.AsyncTransport
	lo, hi       int
	after, count int64
	delay        time.Duration
	n            atomic.Int64
}

// NewDelayTransport builds a transport for a ranks-sized world that
// sleeps for delay on each message of the named class (the classes of
// NewFaultTransport) numbered (after, after+count]. count <= 0 delays
// nothing — the counting dry-run configuration.
func NewDelayTransport(ranks int, class string, after, count int, delay time.Duration) (*DelayTransport, error) {
	r, ok := faultClasses[class]
	if !ok {
		return nil, fmt.Errorf("parmd: unknown fault class %q (want migrate, halo, force, health, or balance)", class)
	}
	return &DelayTransport{
		AsyncTransport: comm.NewChanTransport(ranks).(comm.AsyncTransport),
		lo:             r[0], hi: r[1],
		after: int64(after), count: int64(count), delay: delay,
	}, nil
}

// SetAbort forwards the world's abort channel to the wrapped channel
// transport, exactly like FaultTransport.SetAbort.
func (t *DelayTransport) SetAbort(ch <-chan struct{}) {
	if a, ok := t.AsyncTransport.(comm.AbortAware); ok {
		a.SetAbort(ch)
	}
}

// Matched returns how many messages of the target class have been
// sent so far.
func (t *DelayTransport) Matched() int64 { return t.n.Load() }

// Send stalls inside the delay window, then forwards the message.
func (t *DelayTransport) Send(src, dst int, m comm.Message) {
	if m.Tag >= t.lo && m.Tag < t.hi {
		if n := t.n.Add(1); n > t.after && n <= t.after+t.count {
			time.Sleep(t.delay)
		}
	}
	t.AsyncTransport.Send(src, dst, m)
}
