package parmd

import (
	"fmt"
	"runtime"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/fixture"
	"sctuple/internal/geom"
)

const goldenParmdPath = "testdata/golden_parmd.json.gz"

// TestGoldenParallelBitIdentity pins the parallel step loop bit-for-bit
// against fixtures captured from the pre-refactor (unsorted, ID-order)
// rank storage: 6 steps of thermalized crystalline silica for every
// scheme, a 2-rank and a 2x2x2 topology, overlapped and synchronous
// halo exchange. Initial and per-step global potential energies and
// the gathered final forces and positions (ID order) are compared as
// raw bit patterns. The workload is a solid over a short run, so no
// atom migrates — asserted below, since the capture relies on owned
// storage keeping its adoption order on the pre-refactor side.
// Regenerate with GOLDEN_UPDATE=1 (amd64 only).
func TestGoldenParallelBitIdentity(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("bit-exact fixtures are pinned on amd64; GOARCH=%s", runtime.GOARCH)
	}
	if testing.Short() {
		t.Skip("12 six-step parallel runs")
	}
	const (
		dt    = 0.5
		steps = 6
	)
	cfg, model := silicaConfig(t, 4, 300, 1)
	// Lattice sites sit exactly on the x=y=z=0 rank boundary planes;
	// translate the crystal so every atom clears every decomposition
	// plane by ≫ the thermal displacement of the run, keeping the
	// fixture migration-free by construction.
	for i := range cfg.Pos {
		cfg.Pos[i] = cfg.Box.Wrap(cfg.Pos[i].Add(geom.V(0.8, 0.8, 0.8)))
	}
	topos := []geom.IVec3{{X: 2, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}}

	got := fixture.Set{}
	for _, scheme := range Schemes() {
		for _, dims := range topos {
			for _, noOverlap := range []bool{false, true} {
				label := fmt.Sprintf("%v/%dx%dx%d/overlap", scheme, dims.X, dims.Y, dims.Z)
				if noOverlap {
					label = fmt.Sprintf("%v/%dx%dx%d/sync", scheme, dims.X, dims.Y, dims.Z)
				}
				cart, err := comm.NewCartDims(dims)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cfg, model, Options{
					Scheme: scheme, Cart: cart, Dt: dt, Steps: steps,
					Workers: 2, TraceEnergies: true, NoOverlap: noOverlap,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				var migrated int64
				for _, s := range res.RankStats {
					migrated += s.AtomsMigrated
				}
				if migrated != 0 {
					t.Fatalf("%s: %d atoms migrated; fixture workload must be migration-free", label, migrated)
				}
				rec := fixture.Record{PE: fixture.Bits(res.InitialPotential)}
				for _, e := range res.Energies {
					rec.Energies = append(rec.Energies, fixture.Bits(e.Potential))
				}
				rec.Forces = fixture.PackVec3(res.Forces)
				rec.Pos = fixture.PackVec3(res.Final.Pos)
				got[label] = rec
			}
		}
	}

	if fixture.Update() {
		if err := fixture.Save(goldenParmdPath, got); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenParmdPath)
		return
	}
	want, err := fixture.Load(goldenParmdPath)
	if err != nil {
		t.Fatalf("load golden (run with GOLDEN_UPDATE=1 to capture): %v", err)
	}
	for label, rec := range got {
		w, ok := want[label]
		if !ok {
			t.Errorf("%s: no golden record", label)
			continue
		}
		if err := fixture.Diff(w, rec); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
}
