package parmd

import (
	"fmt"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// importHalo runs the staged halo exchange. Per axis there is one
// transfer for SC-MD (receive the upper-corner slab from the +axis
// neighbor — 7 effective source ranks reached in 3 communication
// steps via forwarded routing, §4.2) and two for FS-/Hybrid-MD
// (both directions — 26 effective sources in 6 steps). Because each
// phase's slab selection includes halo atoms received in earlier
// phases, edge and corner data are forwarded automatically.
//
// The wire format per atom is (id, species, extended-lattice cell in
// the receiver's frame, local position in the receiver's frame); the
// sender performs the frame shift, including the periodic image
// correction when the transfer crosses the global boundary.
func (r *rankState) importHalo() {
	for axis := 0; axis < 3; axis++ {
		// d = -1: my bottom slab fills the -axis neighbor's upper
		// margin (the SC direction). d = +1: my top slab fills the
		// +axis neighbor's lower margin (full-shell only).
		if r.mHi > 0 {
			r.haloPhaseExchange(axis, -1)
		}
		if r.mLo > 0 {
			r.haloPhaseExchange(axis, +1)
		}
	}
}

// haloPhaseExchange sends this rank's slab toward direction d on one
// axis and receives the symmetric slab from the opposite neighbor.
func (r *rankState) haloPhaseExchange(axis, d int) {
	cart := r.dec.Cart
	sendPeer := cart.AxisNeighbor(r.p.Rank(), axis, d)
	recvPeer := cart.AxisNeighbor(r.p.Rank(), axis, -d)
	tag := tagHalo + axis*2 + (d+1)/2

	// Slab selection in extended-cell coordinates along the axis:
	// sending toward -axis means my low owned cells (thickness mHi,
	// they become the receiver's upper margin); toward +axis my high
	// owned cells (thickness mLo).
	block := r.hi.Sub(r.lo)
	var slabLo, slabHi int
	if d < 0 {
		slabLo, slabHi = r.mLo, r.mLo+r.mHi
	} else {
		slabLo, slabHi = r.mLo+block.Comp(axis)-r.mLo, r.mLo+block.Comp(axis)
	}

	// Frame shift into the receiver's coordinates.
	cellAdj, posAdj := r.hopAdjust(axis, d)

	var buf comm.Buffer
	var sendIdx []int32
	count := 0
	for i := range r.ecell {
		e := r.ecell[i].Comp(axis)
		if e < slabLo || e >= slabHi {
			continue
		}
		ec := r.ecell[i]
		ec.SetComp(axis, e+cellAdj)
		lp := r.lpos[i]
		lp.SetComp(axis, lp.Comp(axis)+posAdj)
		buf.Int64(r.ids[i])
		buf.Int32(r.species[i])
		buf.Int32(int32(ec.X))
		buf.Int32(int32(ec.Y))
		buf.Int32(int32(ec.Z))
		buf.Vec3(lp)
		sendIdx = append(sendIdx, int32(i))
		count++
	}
	payload := buf.Bytes()
	recv := r.p.SendRecv(sendPeer, tag, payload, recvPeer, tag)
	r.stats.HaloMessages++

	ph := haloPhase{
		sendPeer:  sendPeer,
		recvPeer:  recvPeer,
		tag:       tag,
		sendIdx:   sendIdx,
		recvStart: len(r.ids),
	}
	rd := comm.NewReader(recv)
	for rd.Remaining() > 0 {
		id := rd.Int64()
		sp := rd.Int32()
		ec := geom.IV(int(rd.Int32()), int(rd.Int32()), int(rd.Int32()))
		lp := rd.Vec3()
		if !ec.InBox(r.extLat.Dims) {
			panic(fmt.Sprintf("parmd: rank %d received halo atom %d in cell %v outside %v",
				r.p.Rank(), id, ec, r.extLat.Dims))
		}
		r.ids = append(r.ids, id)
		r.species = append(r.species, sp)
		r.ecell = append(r.ecell, ec)
		r.lpos = append(r.lpos, lp)
		r.force = append(r.force, geom.Vec3{})
		ph.recvCount++
	}
	r.stats.AtomsImported += int64(ph.recvCount)
	r.phases = append(r.phases, ph)
}

// hopAdjust returns the extended-cell index shift and local-position
// shift that map this rank's frame onto the frame of its axis-d
// neighbor, including the periodic image correction at the global
// boundary.
func (r *rankState) hopAdjust(axis, d int) (cellAdj int, posAdj float64) {
	cart := r.dec.Cart
	nbCoordRaw := r.coord.Comp(axis) + d
	crossed := 0
	if nbCoordRaw < 0 || nbCoordRaw >= cart.Dims.Comp(axis) {
		crossed = -d // image shift in box lengths
	}
	nbCoord := r.coord
	nbCoord.SetComp(axis, nbCoordRaw)
	nb := cart.Wrap(nbCoord)
	nbBase := r.dec.BlockLo(nb).Comp(axis) - r.mLo

	gdims := r.dec.Lat.Dims.Comp(axis)
	cellAdj = r.base.Comp(axis) - nbBase + crossed*gdims
	posAdj = float64(crossed)*r.dec.Lat.Box.L.Comp(axis) +
		float64(r.base.Comp(axis)-nbBase)*r.dec.Lat.Side.Comp(axis)
	return cellAdj, posAdj
}

// writeBackForces returns the forces accumulated on imported halo
// atoms to their senders, in reverse phase order so forwarded
// contributions propagate back through the same routing.
func (r *rankState) writeBackForces() {
	for i := len(r.phases) - 1; i >= 0; i-- {
		ph := r.phases[i]
		var buf comm.Buffer
		for k := 0; k < ph.recvCount; k++ {
			buf.Vec3(r.force[ph.recvStart+k])
		}
		tag := tagForce + ph.tag - tagHalo
		recv := r.p.SendRecv(ph.recvPeer, tag, buf.Bytes(), ph.sendPeer, tag)
		r.stats.HaloMessages++
		rd := comm.NewReader(recv)
		for _, idx := range ph.sendIdx {
			r.force[idx] = r.force[idx].Add(rd.Vec3())
		}
		if rd.Remaining() != 0 {
			panic(fmt.Sprintf("parmd: rank %d force write-back size mismatch", r.p.Rank()))
		}
	}
}
