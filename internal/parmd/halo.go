package parmd

import (
	"fmt"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/obs/health"
)

// The staged halo exchange over the compiled plan. Per axis there is
// one transfer for SC-MD (receive the upper-corner slab from the +axis
// neighbor — 7 effective source ranks reached in 3 communication steps
// via forwarded routing, §4.2) and two for FS-/Hybrid-MD (both
// directions — 26 effective sources in 6 steps). Because each phase's
// slab selection includes halo atoms received in earlier phases, edge
// and corner data are forwarded automatically — which also means only
// the first phase's send can be posted up front; each later send waits
// for the receive one phase earlier.
//
// The exchange is therefore split into beginHalo (post every receive
// handle plus the first send) and finishHalo (complete the receives in
// phase order, appending arrivals and posting the next forwarded
// send). The overlapped force path evaluates interior cells between
// the two; the synchronous importHalo runs them back to back.
//
// Every geometric decision — slab bounds, peers, tags, frame shifts —
// was compiled once into r.plan; the per-step loop only selects atoms,
// streams them through the shared wire codec into pooled buffers, and
// appends the arrivals. In steady state (capacities warmed up) the
// whole exchange allocates nothing.

// haloPhaseState is the per-step scratch of one compiled halo phase:
// which local atoms were exported (for the force write-back), where
// the received atoms landed, the posted receive handle, and the
// health probe's pack-time checksum. The slices are reused across
// steps.
type haloPhaseState struct {
	sendIdx   []int32 // local indices sent, reset each step
	recvStart int     // first local index received
	recvCount int
	recv      comm.RecvHandle // posted by beginHalo, completed by finishHalo
	sentSum   uint64          // checksum of the exported slab (health steps only)
}

// importHalo is the synchronous exchange: post and complete every
// phase with nothing in between. It shares all machinery with the
// overlapped path, so the two differ only in when the receives are
// completed — never in what is evaluated or in which order.
func (r *rankState) importHalo() error {
	r.beginHalo()
	return r.finishHalo()
}

// beginHalo posts the asynchronous side of the staged exchange: one
// receive handle per compiled phase, then the first phase's send. The
// checksum the health mirror probe audits is taken at pack time —
// the handoff point — because the buffer belongs to the receiver the
// moment the send is posted.
func (r *rankState) beginHalo() {
	sp := r.rec.StartSpan(phaseHalo)
	defer sp.End()
	for pi := range r.plan.Halo {
		ph := &r.plan.Halo[pi]
		r.phaseState[pi].recv = r.p.IRecvBuffer(ph.RecvPeer, ph.Tag)
	}
	r.postHaloSend(0)
}

// postHaloSend packs phase pi's slab — owned atoms plus any halo atoms
// already appended by earlier phases (the forwarding) — and posts its
// send. The flow event is emitted at post time; its receive side pairs
// up at the peer's completion point.
func (r *rankState) postHaloSend(pi int) {
	ph := &r.plan.Halo[pi]
	st := &r.phaseState[pi]
	st.sendIdx = st.sendIdx[:0]

	buf := r.p.AcquireBuffer()
	for i := range r.ecell {
		e := r.ecell[i].Comp(ph.Axis)
		if e < ph.SlabLo || e >= ph.SlabHi {
			continue
		}
		// Shift into the receiver's frame (compiled cell/position
		// adjustments, including the periodic image correction).
		ec := r.ecell[i]
		ec.SetComp(ph.Axis, e+ph.CellAdj)
		lp := r.lpos[i]
		lp.SetComp(ph.Axis, lp.Comp(ph.Axis)+ph.PosAdj)
		putHaloAtom(buf, r.ids[i], r.species[i], ec, lp)
		st.sendIdx = append(st.sendIdx, int32(i))
	}
	st.sentSum = 0
	if r.healthStep {
		st.sentSum = health.Checksum64(buf.Bytes())
	}
	r.rec.FlowSend(ph.Tag)
	r.p.ISendBuffer(ph.SendPeer, ph.Tag, buf)
}

// finishHalo completes the posted receives in phase order: wait for
// the phase's margin fill (the halo:wait span — with interior work
// overlapped, this is the latency the computation failed to hide),
// append it, and post the next phase's forwarded send. Malformed
// messages come back as typed errors; the caller propagates them so
// the world aborts with rank/step/phase context instead of crashing.
func (r *rankState) finishHalo() error {
	for pi := range r.plan.Halo {
		ph := &r.plan.Halo[pi]
		st := &r.phaseState[pi]
		wsp := r.rec.StartSpan(phaseHaloWait)
		recv := st.recv.Wait()
		wsp.End()
		r.rec.FlowRecv(ph.Tag, ph.RecvPeer)
		r.stats.HaloMessages++
		sp := r.rec.StartSpan(phaseHalo)
		if r.healthStep {
			if err := r.mirrorCheck(ph, st.sentSum, health.Checksum64(recv.Bytes())); err != nil {
				r.p.ReleaseBuffer(recv)
				sp.End()
				return r.rankErr("health", err)
			}
		}
		err := r.appendHalo(pi, recv)
		if err == nil && pi+1 < len(r.plan.Halo) {
			r.postHaloSend(pi + 1)
		}
		sp.End()
		if err != nil {
			return r.rankErr("halo", err)
		}
	}
	return nil
}

// appendHalo decodes one phase's margin fill and appends it to the
// atom arrays, recording where it landed for the force write-back.
// The buffer is validated before decoding: a payload that is not a
// whole number of wire records, or an atom landing outside the
// extended lattice, is a malformed message, not a panic.
func (r *rankState) appendHalo(pi int, recv *comm.Buffer) error {
	st := &r.phaseState[pi]
	if recv.Len()%HaloAtomWireBytes != 0 {
		err := fmt.Errorf("malformed halo message from rank %d: %d bytes is not a whole number of %d-byte atom records",
			r.plan.Halo[pi].RecvPeer, recv.Len(), HaloAtomWireBytes)
		r.p.ReleaseBuffer(recv)
		return err
	}
	st.recvStart = len(r.ids)
	st.recvCount = 0
	var rd comm.Reader
	rd.Reset(recv.Bytes())
	for rd.Remaining() > 0 {
		id, sp, ec, lp := getHaloAtom(&rd)
		if !ec.InBox(r.extLat.Dims) {
			err := fmt.Errorf("received halo atom %d from rank %d in cell %v outside extended lattice %v",
				id, r.plan.Halo[pi].RecvPeer, ec, r.extLat.Dims)
			r.p.ReleaseBuffer(recv)
			return err
		}
		r.ids = append(r.ids, id)
		r.species = append(r.species, sp)
		r.ecell = append(r.ecell, ec)
		r.lpos = append(r.lpos, lp)
		r.force = append(r.force, geom.Vec3{})
		st.recvCount++
	}
	err := rd.Err()
	r.p.ReleaseBuffer(recv)
	if err != nil {
		return fmt.Errorf("decoding halo message from rank %d: %w", r.plan.Halo[pi].RecvPeer, err)
	}
	r.stats.AtomsImported += int64(st.recvCount)
	return nil
}

// writeBackForces returns the forces accumulated on imported halo
// atoms to their senders, replaying the compiled phases in reverse
// order so forwarded contributions propagate back through the same
// routing. Before replaying it audits the exchange bookkeeping: the
// phases' [recvStart, recvStart+recvCount) windows must tile the halo
// range of the atom arrays exactly — a mis-offset window would read
// the wrong atoms' forces without any trailing-byte mismatch to catch
// it. The returned payload is also size-checked up front against the
// exported-atom count, which detects both truncation and mis-offsets,
// unlike the old trailing-bytes check.
func (r *rankState) writeBackForces() error {
	sp := r.rec.StartSpan(phaseWriteback)
	defer sp.End()
	next := r.nOwned
	for pi := range r.plan.Halo {
		st := &r.phaseState[pi]
		if st.recvStart != next {
			return r.rankErr("writeback", fmt.Errorf(
				"halo bookkeeping: phase %d imports start at index %d, expected %d", pi, st.recvStart, next))
		}
		next += st.recvCount
	}
	if next != len(r.ids) {
		return r.rankErr("writeback", fmt.Errorf(
			"halo bookkeeping: phases cover %d imported atoms, arrays hold %d", next-r.nOwned, len(r.ids)-r.nOwned))
	}
	for pi := len(r.plan.Halo) - 1; pi >= 0; pi-- {
		ph := &r.plan.Halo[pi]
		st := &r.phaseState[pi]
		buf := r.p.AcquireBuffer()
		for k := 0; k < st.recvCount; k++ {
			putForce(buf, r.force[st.recvStart+k])
		}
		r.rec.FlowSend(ph.ForceTag)
		recv := r.p.SendRecvBuffer(ph.RecvPeer, ph.ForceTag, buf, ph.SendPeer, ph.ForceTag)
		r.rec.FlowRecv(ph.ForceTag, ph.SendPeer)
		r.stats.HaloMessages++
		if recv.Len() != len(st.sendIdx)*ForceWireBytes {
			err := fmt.Errorf("force write-back size mismatch from rank %d: %d bytes for %d exported atoms (want %d)",
				ph.SendPeer, recv.Len(), len(st.sendIdx), len(st.sendIdx)*ForceWireBytes)
			r.p.ReleaseBuffer(recv)
			return r.rankErr("writeback", err)
		}
		var rd comm.Reader
		rd.Reset(recv.Bytes())
		for _, idx := range st.sendIdx {
			r.force[idx] = r.force[idx].Add(getForce(&rd))
		}
		err := rd.Err()
		r.p.ReleaseBuffer(recv)
		if err != nil {
			return r.rankErr("writeback", fmt.Errorf("decoding force write-back from rank %d: %w", ph.SendPeer, err))
		}
	}
	return nil
}
