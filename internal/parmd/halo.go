package parmd

import (
	"fmt"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/obs/health"
)

// importHalo runs the staged halo exchange over the compiled plan. Per
// axis there is one transfer for SC-MD (receive the upper-corner slab
// from the +axis neighbor — 7 effective source ranks reached in 3
// communication steps via forwarded routing, §4.2) and two for
// FS-/Hybrid-MD (both directions — 26 effective sources in 6 steps).
// Because each phase's slab selection includes halo atoms received in
// earlier phases, edge and corner data are forwarded automatically.
//
// Every geometric decision — slab bounds, peers, tags, frame shifts —
// was compiled once into r.plan; the per-step loop only selects atoms,
// streams them through the shared wire codec into pooled buffers, and
// appends the arrivals. In steady state (capacities warmed up) the
// whole exchange allocates nothing.
func (r *rankState) importHalo() {
	sp := r.rec.StartSpan(phaseHalo)
	for pi := range r.plan.Halo {
		r.haloPhaseExchange(pi)
	}
	sp.End()
}

// haloPhaseState is the per-step scratch of one compiled halo phase:
// which local atoms were exported (for the force write-back) and where
// the received atoms landed. The slices are reused across steps.
type haloPhaseState struct {
	sendIdx   []int32 // local indices sent, reset each step
	recvStart int     // first local index received
	recvCount int
}

// haloPhaseExchange executes one compiled phase: export the slab,
// exchange with the precompiled peers, and append the margin fill.
func (r *rankState) haloPhaseExchange(pi int) {
	ph := &r.plan.Halo[pi]
	st := &r.phaseState[pi]
	st.sendIdx = st.sendIdx[:0]

	buf := r.p.AcquireBuffer()
	for i := range r.ecell {
		e := r.ecell[i].Comp(ph.Axis)
		if e < ph.SlabLo || e >= ph.SlabHi {
			continue
		}
		// Shift into the receiver's frame (compiled cell/position
		// adjustments, including the periodic image correction).
		ec := r.ecell[i]
		ec.SetComp(ph.Axis, e+ph.CellAdj)
		lp := r.lpos[i]
		lp.SetComp(ph.Axis, lp.Comp(ph.Axis)+ph.PosAdj)
		putHaloAtom(buf, r.ids[i], r.species[i], ec, lp)
		st.sendIdx = append(st.sendIdx, int32(i))
	}
	// The health probe's sent-side checksum must be taken before the
	// exchange: SendRecvBuffer hands the buffer off to the receiver.
	var sentSum uint64
	if r.healthStep {
		sentSum = health.Checksum64(buf.Bytes())
	}
	r.rec.FlowSend(ph.Tag)
	recv := r.p.SendRecvBuffer(ph.SendPeer, ph.Tag, buf, ph.RecvPeer, ph.Tag)
	r.rec.FlowRecv(ph.Tag, ph.RecvPeer)
	r.stats.HaloMessages++
	if r.healthStep {
		r.mirrorCheck(ph, sentSum, health.Checksum64(recv.Bytes()))
	}

	st.recvStart = len(r.ids)
	st.recvCount = 0
	var rd comm.Reader
	rd.Reset(recv.Bytes())
	for rd.Remaining() > 0 {
		id, sp, ec, lp := getHaloAtom(&rd)
		if !ec.InBox(r.extLat.Dims) {
			panic(fmt.Sprintf("parmd: rank %d received halo atom %d in cell %v outside %v",
				r.p.Rank(), id, ec, r.extLat.Dims))
		}
		r.ids = append(r.ids, id)
		r.species = append(r.species, sp)
		r.ecell = append(r.ecell, ec)
		r.lpos = append(r.lpos, lp)
		r.force = append(r.force, geom.Vec3{})
		st.recvCount++
	}
	r.p.ReleaseBuffer(recv)
	r.stats.AtomsImported += int64(st.recvCount)
}

// writeBackForces returns the forces accumulated on imported halo
// atoms to their senders, replaying the compiled phases in reverse
// order so forwarded contributions propagate back through the same
// routing.
func (r *rankState) writeBackForces() {
	sp := r.rec.StartSpan(phaseWriteback)
	defer sp.End()
	for pi := len(r.plan.Halo) - 1; pi >= 0; pi-- {
		ph := &r.plan.Halo[pi]
		st := &r.phaseState[pi]
		buf := r.p.AcquireBuffer()
		for k := 0; k < st.recvCount; k++ {
			putForce(buf, r.force[st.recvStart+k])
		}
		r.rec.FlowSend(ph.ForceTag)
		recv := r.p.SendRecvBuffer(ph.RecvPeer, ph.ForceTag, buf, ph.SendPeer, ph.ForceTag)
		r.rec.FlowRecv(ph.ForceTag, ph.SendPeer)
		r.stats.HaloMessages++
		var rd comm.Reader
		rd.Reset(recv.Bytes())
		for _, idx := range st.sendIdx {
			r.force[idx] = r.force[idx].Add(getForce(&rd))
		}
		if rd.Remaining() != 0 {
			panic(fmt.Sprintf("parmd: rank %d force write-back size mismatch", r.p.Rank()))
		}
		r.p.ReleaseBuffer(recv)
	}
}
