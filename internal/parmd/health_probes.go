package parmd

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/tuple"
)

// mirrorCheck runs the halo-mirror probe for one exchange phase on a
// health-sampled step: each rank sends the checksum of the slab it just
// exported to the rank that imported it (on the health tag parallel to
// the phase's halo tag), and compares the checksum of what it imported
// against what its own upstream peer claims to have sent. Per-link
// FIFO ordering guarantees the checksum message follows the halo
// payload it audits, so the extra exchange can never be confused with
// simulation traffic.
func (r *rankState) mirrorCheck(ph *HaloPhase, sentSum, recvSum uint64) error {
	buf := r.p.AcquireBuffer()
	buf.Int64(int64(sentSum))
	tag := tagHealth + (ph.Tag - tagHalo)
	recv := r.p.SendRecvBuffer(ph.SendPeer, tag, buf, ph.RecvPeer, tag)
	var rd comm.Reader
	rd.Reset(recv.Bytes())
	remoteSent := uint64(rd.Int64())
	err := rd.Err()
	r.p.ReleaseBuffer(recv)
	if err != nil {
		return fmt.Errorf("decoding halo-mirror checksum from rank %d: %w", ph.RecvPeer, err)
	}
	r.monitor.ObserveHaloMirror(r.curStep, r.p.Rank(), recvSum, remoteSent)
	return nil
}

// runHealthProbes executes the end-of-step invariant probes on a
// sampled step: global energy drift, total linear momentum, and atom
// count (observed on rank 0, which holds the reduced values), plus the
// SC-vs-FS tuple-count parity re-enumeration when due. It finishes
// with the collective abort check — an all-reduce of the monitor's
// armed flag — so a failing probe aborts every rank together at a
// synchronization point instead of deadlocking peers blocked in the
// exchange protocol.
func (r *rankState) runHealthProbes(step int, pe float64, masses []float64, totalAtoms int64) error {
	mon := r.monitor
	p := r.p
	sp := r.rec.StartSpan(phaseHealth)
	defer sp.End()

	ke := 0.0
	var px, py, pz, pScale float64
	for i := 0; i < r.nOwned; i++ {
		m := masses[r.species[i]]
		v := r.vel[i]
		ke += 0.5 * m * v.Norm2()
		px += m * v.X
		py += m * v.Y
		pz += m * v.Z
		pScale += m * v.Norm()
	}
	ke /= md.ForceToAccel

	gpe := p.AllReduceSum(pe)
	gke := p.AllReduceSum(ke)
	gpx := p.AllReduceSum(px)
	gpy := p.AllReduceSum(py)
	gpz := p.AllReduceSum(pz)
	gScale := p.AllReduceSum(pScale)
	gn := p.AllReduceSumInt64(int64(r.nOwned))
	if p.Rank() == 0 {
		mon.ObserveEnergy(step, gpe, gke)
		mon.ObserveMomentum(step, gpx, gpy, gpz, gScale)
		mon.ObserveAtomCount(step, gn, totalAtoms)
	}

	if mon.ParityDue(step) {
		r.probeTupleParity(step)
	}

	armed := int64(0)
	if mon.AbortPending() {
		armed = 1
	}
	if p.AllReduceSumInt64(armed) > 0 {
		return mon.AbortError()
	}
	return nil
}

// probeTupleParity gathers the wrapped global configuration on rank 0
// and re-enumerates every potential term's tuple set with both search
// patterns — shift-collapse and deduplicated full-shell — over the
// global periodic lattice. Equal counts are the invariant the SC
// scheme's correctness rests on (Theorem 1: the collapsed path set
// covers exactly the unique n-tuples); any disagreement is a Fail.
// This is the expensive probe (a full serial enumeration), which is
// why it has its own cadence.
func (r *rankState) probeTupleParity(step int) {
	buf := r.p.AcquireBuffer()
	for i := 0; i < r.nOwned; i++ {
		g := r.dec.Lat.Box.Wrap(r.gpos[i])
		buf.Float64(g.X)
		buf.Float64(g.Y)
		buf.Float64(g.Z)
	}
	parts := r.p.GatherTo0(buf.Clone())
	r.p.ReleaseBuffer(buf)
	if r.p.Rank() != 0 || r.parityOff {
		return
	}

	r.parityPos = r.parityPos[:0]
	var rd comm.Reader
	for _, part := range parts {
		rd.Reset(part)
		for rd.Remaining() > 0 {
			r.parityPos = append(r.parityPos, geom.V(rd.Float64(), rd.Float64(), rd.Float64()))
		}
	}
	pos := r.parityPos

	if r.parityBin == nil {
		r.parityBin = cell.NewBinning(r.dec.Lat, pos)
	} else {
		r.parityBin.Rebin(pos)
	}
	if r.parityEnums == nil && !r.buildParityEnums(step) {
		return
	}

	var scCount, fsCount int64
	for _, pair := range r.parityEnums {
		scCount += pair[0].Count(pos).Emitted
		fsCount += pair[1].Count(pos).Emitted
	}
	r.monitor.ObserveTupleParity(step, scCount, fsCount)
}

// prewarmParity builds the parity probe's cached state — the gathered-
// position buffer, the global binning, and the enumerator pairs —
// before the step loop, so a sampled step performs only the gather,
// rebin, and two counting sweeps. Rank 0 only; a no-op when already
// warm or latched off.
func (r *rankState) prewarmParity(totalAtoms int) {
	if r.p.Rank() != 0 || r.parityOff || r.parityEnums != nil {
		return
	}
	if cap(r.parityPos) < totalAtoms {
		r.parityPos = make([]geom.Vec3, 0, totalAtoms)
	}
	if r.parityBin == nil {
		r.parityBin = cell.NewBinning(r.dec.Lat, nil)
	}
	r.buildParityEnums(-1)
}

// buildParityEnums constructs the cached SC/FS enumerator pair for
// every term over the parity binning. A constructor error — typically a
// global lattice too small for the full-shell pattern's span (FS(n)
// needs ≥ 2(n−1)+1 cells per axis) — is a configuration limit, not a
// parity violation: it is logged once and the probe is disabled for the
// rest of the run.
func (r *rankState) buildParityEnums(step int) bool {
	enums := make([][2]*tuple.Enumerator, 0, len(r.model.Terms))
	for _, term := range r.model.Terms {
		scPat, err := md.FamilySC.Pattern(term.N())
		if err == nil {
			var fsPat *core.Pattern
			fsPat, err = md.FamilyFS.Pattern(term.N())
			if err == nil {
				var scEn, fsEn *tuple.Enumerator
				scEn, err = tuple.NewEnumerator(r.parityBin, scPat, term.Cutoff(), tuple.DedupAuto)
				if err == nil {
					fsEn, err = tuple.NewEnumerator(r.parityBin, fsPat, term.Cutoff(), tuple.DedupAuto)
					if err == nil {
						enums = append(enums, [2]*tuple.Enumerator{scEn, fsEn})
					}
				}
			}
		}
		if err != nil {
			r.monitor.Logger().Warn("tuple parity probe disabled",
				"step", step, "n", term.N(), "err", err.Error())
			r.parityOff = true
			return false
		}
	}
	r.parityEnums = enums
	return true
}
