package parmd

import (
	"errors"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/obs/health"
)

// TestHealthProbesAllOK is the headline health-monitor acceptance
// test: a short 2-rank NVE run with every probe enabled — energy
// drift, momentum, atom count, halo mirror checksums, and the
// SC-vs-FS tuple parity re-enumeration — must report ok for every
// observation. 5³ unit cells are required so the global lattice fits
// the FS(3) pattern's 5-cell span for the parity probe.
func TestHealthProbesAllOK(t *testing.T) {
	if testing.Short() {
		t.Skip("parity probe re-enumerates the global tuple set")
	}
	cfg, model := silicaConfig(t, 5, 300, 3)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	mon := health.New(health.Config{Every: 2, ParityEvery: 4})
	res, err := Run(cfg, model, Options{
		Scheme: SchemeSC,
		Cart:   cart,
		Dt:     0.5,
		Steps:  8,
		Health: mon,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Health.Healthy() {
		t.Errorf("run unhealthy: %+v", res.Health)
	}
	wantProbes := map[string]int{
		health.ProbeEnergyDrift: 4, // steps 1,3,5,7 (cadence 2, after step 0 baseline at first sampled step)
		health.ProbeMomentum:    4,
		health.ProbeAtomCount:   4,
		health.ProbeHaloMirror:  0, // > 0, exact count depends on plan phases × ranks
		health.ProbeTupleParity: 2, // steps 3,7
	}
	for probe, wantOK := range wantProbes {
		p := res.Health.Probe(probe)
		if p.Warn != 0 || p.Fail != 0 {
			t.Errorf("%s: warn=%d fail=%d, want clean", probe, p.Warn, p.Fail)
		}
		if wantOK > 0 && p.OK != int64(wantOK) {
			t.Errorf("%s: ok=%d, want %d", probe, p.OK, wantOK)
		}
		if p.OK == 0 {
			t.Errorf("%s: never observed", probe)
		}
	}
}

// TestHealthAbortOnBrokenIntegrator wires a deliberately unstable
// configuration — a 50 fs timestep, two orders of magnitude past
// stability for silica — into a run with abort-on-fail. The energy
// probe must escalate to Fail, and Run must return the monitor's
// *health.FailError on every rank instead of completing or
// deadlocking.
func TestHealthAbortOnBrokenIntegrator(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 600, 5)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	mon := health.New(health.Config{
		Every:  1,
		OnFail: health.ActionRecord | health.ActionAbort,
	})
	_, err = Run(cfg, model, Options{
		Scheme: SchemeSC,
		Cart:   cart,
		Dt:     50,
		Steps:  200,
		Health: mon,
	})
	if err == nil {
		t.Fatal("broken integrator ran to completion without aborting")
	}
	var fe *health.FailError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T (%v), want *health.FailError", err, err)
	}
	if fe.Probe != health.ProbeEnergyDrift {
		t.Errorf("failing probe %q, want %q", fe.Probe, health.ProbeEnergyDrift)
	}
	if mon.Summary().Healthy() {
		t.Error("summary healthy after an abort")
	}
	if p := mon.Summary().Probe(health.ProbeEnergyDrift); p.Fail == 0 {
		t.Errorf("energy probe recorded no fails: %+v", p)
	}
}

// TestHealthNilMonitorUnchanged: Options without a Health monitor must
// behave exactly as before the probe layer existed — no health spans,
// no health-class traffic, an empty summary.
func TestHealthNilMonitorUnchanged(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 1)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 0.5, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Health.Probes) != 0 || !res.Health.Healthy() {
		t.Errorf("monitor-less run produced health data: %+v", res.Health)
	}
	for class, st := range res.CommByClass {
		if class == "health" && (st.Messages != 0 || st.Bytes != 0) {
			t.Errorf("monitor-less run sent health traffic: %+v", st)
		}
	}
}
