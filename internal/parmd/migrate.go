package parmd

import (
	"fmt"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// migrate moves atoms that drifted out of this rank's block to their
// new owners, with one staged exchange per axis (two directions each),
// following the compiled migration plan. An atom may hop at most one
// rank per axis per step — guaranteed for any sane time step, since
// blocks are at least one cutoff wide — and diagonal moves complete
// over the successive axis phases. Positions travel in wrapped global
// coordinates through the shared wire codec; the receiving owner
// reassigns the global cell, so every downstream consumer sees
// owner-authoritative integer cells. When no atoms move, the exchange
// sends empty pooled buffers and allocates nothing.
func (r *rankState) migrate() error {
	sp := r.rec.StartSpan(phaseMigrate)
	defer sp.End()
	for i := 0; i < r.nOwned; i++ {
		r.gpos[i] = r.dec.Lat.Box.Wrap(r.gpos[i])
		r.gcell[i] = r.dec.Lat.CellOf(r.gpos[i])
	}
	for axis := 0; axis < 3; axis++ {
		mp := &r.plan.Migrate[axis]
		if !mp.Active {
			continue
		}
		if err := r.migrateAxis(axis, mp); err != nil {
			return r.rankErr("migrate", err)
		}
	}
	r.stats.OwnedAtoms = r.nOwned
	return nil
}

// migrateAxis exchanges leavers with both axis neighbors of the
// compiled phase.
func (r *rankState) migrateAxis(axis int, mp *MigratePhase) error {
	out := [2]*comm.Buffer{r.p.AcquireBuffer(), r.p.AcquireBuffer()} // 0: toward -1, 1: toward +1
	before := r.nOwned
	keep := 0
	for i := 0; i < r.nOwned; i++ {
		target := r.dec.ownerIndex(axis, r.gcell[i].Comp(axis))
		d, err := hopDir(mp.BlockIdx, target, mp.Dim)
		if err != nil {
			if !r.hopClamp {
				r.p.ReleaseBuffer(out[0])
				r.p.ReleaseBuffer(out[1])
				return fmt.Errorf("axis %d atom %d: %w", axis, r.ids[i], err)
			}
			// Repartition handoff: an atom left several blocks from its
			// new owner walks over one hop per round.
			d = hopDirClamped(mp.BlockIdx, target, mp.Dim)
		}
		if d == 0 {
			r.copyAtom(keep, i)
			keep++
			continue
		}
		putMigrant(out[(d+1)/2], r.ids[i], r.species[i], r.gpos[i], r.vel[i])
	}
	r.truncateOwned(keep)

	for di := range out {
		recv := r.p.SendRecvBuffer(mp.SendPeer[di], mp.Tag[di], out[di], mp.RecvPeer[di], mp.Tag[di])
		if recv.Len()%MigrantWireBytes != 0 {
			err := fmt.Errorf("malformed migration message from rank %d: %d bytes is not a whole number of %d-byte records",
				mp.RecvPeer[di], recv.Len(), MigrantWireBytes)
			r.p.ReleaseBuffer(recv)
			return err
		}
		var rd comm.Reader
		rd.Reset(recv.Bytes())
		for rd.Remaining() > 0 {
			id, sp, g, v := getMigrant(&rd)
			gc := r.dec.Lat.CellOf(g)
			r.ids = append(r.ids, id)
			r.species = append(r.species, sp)
			r.gpos = append(r.gpos, g)
			r.gcell = append(r.gcell, gc)
			r.vel = append(r.vel, v)
			r.force = append(r.force, geom.Vec3{})
			r.nOwned++
			r.stats.AtomsMigrated++
		}
		err := rd.Err()
		r.p.ReleaseBuffer(recv)
		if err != nil {
			return fmt.Errorf("decoding migration message from rank %d: %w", mp.RecvPeer[di], err)
		}
	}
	// Any leaver or arrival changes the owned set, so the ID-order walk
	// of the Hybrid evaluation must be rebuilt (a canonical re-sort also
	// marks it, but an append that happens to keep cell order would not).
	if keep != before || r.nOwned != keep {
		r.idOrderStale = true
	}
	return nil
}

// hopDir returns the single-step direction (-1, 0, +1) from block
// index my toward block index target on a periodic axis of the given
// dimension. A move needing more than one hop — an atom crossing a
// whole block in one step — is reported as an error (it means the
// integration blew up, which should abort the run, not the process).
func hopDir(my, target, dim int) (int, error) {
	if my == target {
		return 0, nil
	}
	diff := target - my
	// Shortest periodic direction.
	if diff > dim/2 {
		diff -= dim
	} else if diff < -dim/2 {
		diff += dim
	}
	switch diff {
	case 1, -1:
		return diff, nil
	}
	// dim == 2 wraps +1 and -1 onto the same neighbor.
	if dim == 2 {
		return 1, nil
	}
	return 0, fmt.Errorf("atom moved %d blocks in one step (axis dim %d)", diff, dim)
}

// hopDirClamped is hopDir for moves hopDir rejects: the shortest
// periodic direction, clamped to one hop. Repeated migration rounds
// (repartition's slab handoff) then deliver a multi-block move one
// neighbor at a time; maxBoundaryShift bounds the rounds needed.
func hopDirClamped(my, target, dim int) int {
	d, err := hopDir(my, target, dim)
	if err == nil {
		return d
	}
	diff := target - my
	if diff > dim/2 {
		diff -= dim
	} else if diff < -dim/2 {
		diff += dim
	}
	if diff > 0 {
		return 1
	}
	return -1
}

// copyAtom moves atom src's owned fields to slot dst (dst ≤ src).
func (r *rankState) copyAtom(dst, src int) {
	if dst == src {
		return
	}
	r.ids[dst] = r.ids[src]
	r.species[dst] = r.species[src]
	r.gpos[dst] = r.gpos[src]
	r.gcell[dst] = r.gcell[src]
	r.vel[dst] = r.vel[src]
	r.force[dst] = r.force[src]
}

// truncateOwned shrinks the owned arrays to n atoms.
func (r *rankState) truncateOwned(n int) {
	r.ids = r.ids[:n]
	r.species = r.species[:n]
	r.gpos = r.gpos[:n]
	r.gcell = r.gcell[:n]
	r.vel = r.vel[:n]
	r.force = r.force[:n]
	r.nOwned = n
}
