package parmd

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// TestNonCubicBoxAndTopology: rectangular boxes with anisotropic
// topologies and uneven block splits must still match the serial
// engine exactly.
func TestNonCubicBoxAndTopology(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(5, 4, 3) // 35.8 × 28.6 × 21.5 Å → 6×5×3 cells
	cfg.Thermalize(rand.New(rand.NewSource(51)), model, 300)
	wantF, wantPE, _ := serialReference(t, cfg, model, 0, 1)

	for _, dims := range []geom.IVec3{
		{X: 3, Y: 1, Z: 1}, // uneven 6/3 split
		{X: 2, Y: 2, Z: 1},
		{X: 3, Y: 2, Z: 1},
	} {
		cart, err := comm.NewCartDims(dims)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range Schemes() {
			res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 0})
			if err != nil {
				t.Fatalf("%v %v: %v", scheme, dims, err)
			}
			if rel := math.Abs(res.InitialPotential-wantPE) / math.Abs(wantPE); rel > 1e-10 {
				t.Errorf("%v %v: PE rel error %g", scheme, dims, rel)
			}
			for i := range wantF {
				if d := res.Forces[i].Sub(wantF[i]).Norm(); d > 1e-8 {
					t.Fatalf("%v %v: atom %d force differs by %g", scheme, dims, i, d)
				}
			}
		}
	}
}

// TestManyRanksDynamics: a 12-rank world (2×3×2) running real dynamics
// against the serial reference.
func TestManyRanksDynamics(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(5, 5, 5) // 6 cells per axis
	cfg.Thermalize(rand.New(rand.NewSource(52)), model, 500)
	_, _, sys := serialReference(t, cfg, model, 5, 1.0)

	cart, err := comm.NewCartDims(geom.IV(2, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 1.0, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	pos := sys.GatherByID(nil, sys.Pos)
	for i := range pos {
		if d := cfg.Box.Distance(res.Final.Pos[i], pos[i]); d > 1e-8 {
			t.Fatalf("atom %d position differs by %g", i, d)
		}
	}
	// Every rank should own some atoms for this uniform crystal.
	for r, st := range res.RankStats {
		if st.OwnedAtoms == 0 {
			t.Errorf("rank %d owns no atoms", r)
		}
	}
}

// TestRankStatsAccumulate: the Add helper and MaxRank reduction.
func TestRankStatsAccumulate(t *testing.T) {
	a := RankStats{Steps: 1, SearchCandidates: 10, AtomsImported: 5, HaloMessages: 6}
	b := RankStats{Steps: 2, SearchCandidates: 20, AtomsImported: 2, HaloMessages: 6}
	a.Add(b)
	if a.Steps != 3 || a.SearchCandidates != 30 || a.AtomsImported != 7 || a.HaloMessages != 12 {
		t.Errorf("Add result %+v", a)
	}
	res := &Result{RankStats: []RankStats{
		{SearchCandidates: 5, AtomsImported: 9, OwnedAtoms: 3},
		{SearchCandidates: 8, AtomsImported: 2, OwnedAtoms: 7},
	}}
	m := res.MaxRank()
	if m.SearchCandidates != 8 || m.AtomsImported != 9 || m.OwnedAtoms != 7 {
		t.Errorf("MaxRank %+v", m)
	}
}

// TestRunValidation: malformed options are rejected cleanly.
func TestRunValidation(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(3, 3, 3)
	if _, err := Run(cfg, model, Options{Cart: comm.Cart{}, Dt: 1, Steps: 1}); err == nil {
		t.Error("empty topology accepted")
	}
	cart := comm.NewCart(1)
	if _, err := Run(cfg, model, Options{Cart: cart, Dt: 0, Steps: 1}); err == nil {
		t.Error("zero dt accepted with steps > 0")
	}
	// Zero steps with zero dt is fine (pure force evaluation).
	if _, err := Run(cfg, model, Options{Cart: cart, Dt: 0, Steps: 0}); err != nil {
		t.Errorf("zero-step run rejected: %v", err)
	}
}

// TestSchemeStrings.
func TestSchemeStrings(t *testing.T) {
	names := map[Scheme]string{SchemeSC: "SC-MD", SchemeFS: "FS-MD", SchemeHybrid: "Hybrid-MD"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(99).String() == "SC-MD" {
		t.Error("unknown scheme mislabeled")
	}
}

// TestHaloReach: the physical halo-thickness computation.
func TestHaloReach(t *testing.T) {
	silica := potential.NewSilicaModel()
	// Pair: 1·5.5/5.5 = 1; triplet: 2·2.6/5.5 < 1 → 1. Max = 1.
	if got := haloReach(silica, 5.5); got != 1 {
		t.Errorf("silica halo reach %d, want 1", got)
	}
	// Torsion model on 2.5 cells: 3·1.8/2.5 = 2.16 → 3 capped at n-1=3.
	tor := potential.NewTorsionModel(0.05, 1.8, 0.02, 1.0, 2.5, 12.0)
	if got := haloReach(tor, 2.5); got != 3 {
		t.Errorf("torsion halo reach %d, want 3", got)
	}
}
