package parmd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/obs"
)

// TestTelemetryDeterminism: attaching the full telemetry stack —
// recorder, step log, metrics registry — must not perturb the physics.
// Positions, forces, and energies are bit-identical with and without.
func TestTelemetryDeterminism(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 31)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	base := Options{Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 3, TraceEnergies: true}

	plain, err := Run(cfg, model, base)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	inst := base
	inst.Recorder = obs.NewRecorder(cart.Size(), 256)
	inst.StepLog = obs.NewStepWriter(&buf)
	inst.Metrics = obs.NewRegistry()
	traced, err := Run(cfg, model, inst)
	if err != nil {
		t.Fatal(err)
	}

	for i := range plain.Forces {
		if plain.Forces[i] != traced.Forces[i] {
			t.Fatalf("force %d differs with telemetry on: %v vs %v", i, plain.Forces[i], traced.Forces[i])
		}
		if plain.Final.Pos[i] != traced.Final.Pos[i] {
			t.Fatalf("position %d differs with telemetry on", i)
		}
	}
	if plain.InitialPotential != traced.InitialPotential {
		t.Errorf("initial PE differs: %v vs %v", plain.InitialPotential, traced.InitialPotential)
	}
	for s := range plain.Energies {
		if plain.Energies[s] != traced.Energies[s] {
			t.Errorf("step %d energies differ: %+v vs %+v", s, plain.Energies[s], traced.Energies[s])
		}
	}
	if len(traced.Phases) == 0 {
		t.Error("instrumented run returned no phase stats")
	}
	if plain.Phases != nil {
		t.Error("uninstrumented run returned phase stats")
	}
}

// TestTraceShape: a 2-rank run exports one named track per rank, and
// each simulated step carries at least 6 named phases on every rank.
func TestTraceShape(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 32)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	const steps = 3
	rec := obs.NewRecorder(cart.Size(), 1024)
	_, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: steps, TraceEnergies: true,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	tracks := map[int]bool{}
	// phases[rank][step] = set of phase names recorded in that step.
	phases := map[int]map[int]map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Tid] = true
			}
		case "X":
			step := int(ev.Args["step"].(float64))
			if phases[ev.Tid] == nil {
				phases[ev.Tid] = map[int]map[string]bool{}
			}
			if phases[ev.Tid][step] == nil {
				phases[ev.Tid][step] = map[string]bool{}
			}
			phases[ev.Tid][step][ev.Name] = true
		}
	}
	if len(tracks) != cart.Size() {
		t.Fatalf("%d named tracks, want one per rank (%d)", len(tracks), cart.Size())
	}
	for rank := 0; rank < cart.Size(); rank++ {
		for step := 0; step < steps; step++ {
			got := phases[rank][step]
			if len(got) < 6 {
				t.Errorf("rank %d step %d: %d named phases %v, want ≥ 6", rank, step, len(got), got)
			}
		}
	}
}

// TestHaloExchangeZeroAllocsRecorder: the zero-alloc guarantee of the
// steady-state exchange holds with a recorder attached — both live
// (spans written into the preallocated rings) and disabled (the
// single-branch fast path).
func TestHaloExchangeZeroAllocsRecorder(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg, model := silicaConfig(t, 4, 300, 22)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	for _, enabled := range []bool{true, false} {
		dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(cart.Size(), 64)
		rec.Enable(enabled)
		world := comm.NewWorld(cart.Size())
		defineTagClasses(world)
		err = world.Run(func(p *comm.Proc) error {
			r, iter, err := exchangeRig(p, dec, cfg, model, SchemeSC, false)
			if err != nil {
				return err
			}
			r.rec = rec.Rank(p.Rank())
			var iterErr error
			run := func() {
				if err := iter(); err != nil && iterErr == nil {
					iterErr = err
				}
			}
			for k := 0; k < 30; k++ {
				run()
			}
			p.Barrier()
			if p.Rank() != 0 {
				for k := 0; k < 11; k++ {
					run()
				}
				p.Barrier()
				return iterErr
			}
			allocs := testing.AllocsPerRun(10, run)
			p.Barrier()
			if iterErr != nil {
				return iterErr
			}
			if allocs != 0 {
				return fmt.Errorf("recorder enabled=%v: %g allocs per halo+write-back cycle", enabled, allocs)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		if enabled {
			if got := rec.Rank(0).PhaseNs(phaseHalo); got <= 0 {
				t.Errorf("enabled recorder accumulated no halo time")
			}
		} else if got := rec.Rank(0).PhaseNs(phaseHalo); got != 0 {
			t.Errorf("disabled recorder accumulated %d ns of halo time", got)
		}
	}
}

// stepRecordJSON mirrors obs.StepRecord for decoding the JSONL stream.
type stepRecordJSON struct {
	Step     int              `json:"step"`
	Rank     int              `json:"rank"`
	WallNs   int64            `json:"wall_ns"`
	PhaseNs  map[string]int64 `json:"phase_ns"`
	Counters map[string]int64 `json:"counters"`
}

// TestStepRecordsAndRegistryConsistency: the per-step JSONL stream is
// internally consistent (every line parses; per-step phase time fits
// inside the step's wall time) and the registry's published counters
// match the run's own RankStats and per-class comm totals.
func TestStepRecordsAndRegistryConsistency(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 33)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	const steps = 3

	var buf bytes.Buffer
	reg := obs.NewRegistry()
	res, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: steps,
		Recorder: obs.NewRecorder(cart.Size(), 256),
		StepLog:  obs.NewStepWriter(&buf),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if want := cart.Size() * steps; len(lines) != want {
		t.Fatalf("%d JSONL lines, want %d (ranks × steps)", len(lines), want)
	}
	perRank := map[int]map[string]int64{}
	for _, line := range lines {
		var rec stepRecordJSON
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.WallNs <= 0 {
			t.Errorf("rank %d step %d: wall %d ns", rec.Rank, rec.Step, rec.WallNs)
		}
		var phaseSum int64
		for _, ns := range rec.PhaseNs {
			phaseSum += ns
		}
		if phaseSum > rec.WallNs {
			t.Errorf("rank %d step %d: phase sum %d ns exceeds wall %d ns",
				rec.Rank, rec.Step, phaseSum, rec.WallNs)
		}
		if perRank[rec.Rank] == nil {
			perRank[rec.Rank] = map[string]int64{}
		}
		for k, v := range rec.Counters {
			if k == "owned_atoms" || k == "comm_wait_ns" {
				continue // absolute / runtime values, not step deltas
			}
			perRank[rec.Rank][k] += v
		}
	}
	// Summed step deltas reproduce the cumulative RankStats, minus the
	// initial force evaluation the loop's records never cover.
	for rank, sums := range perRank {
		rs := res.RankStats[rank]
		if got, want := sums["steps"], int64(rs.Steps-1); got != want {
			t.Errorf("rank %d: step records sum to %d steps, stats say %d", rank, got, want)
		}
		if sums["tuples_evaluated"] >= rs.TuplesEvaluated {
			t.Errorf("rank %d: step deltas %d should exclude the initial evaluation (total %d)",
				rank, sums["tuples_evaluated"], rs.TuplesEvaluated)
		}
	}

	snap := reg.Snapshot()
	var tuples int64
	for _, rs := range res.RankStats {
		tuples += rs.TuplesEvaluated
	}
	if got := snap.Counters["parmd.tuples_evaluated"]; got != tuples {
		t.Errorf("registry parmd.tuples_evaluated = %d, RankStats sum %d", got, tuples)
	}
	if got, want := snap.Counters["comm.halo.bytes"], res.CommByClass["halo"].Bytes; got != want {
		t.Errorf("registry comm.halo.bytes = %d, run counted %d", got, want)
	}
	if got, want := snap.Counters["comm.halo.wait_ns"], res.CommByClass["halo"].Wait.Nanoseconds(); got != want {
		t.Errorf("registry comm.halo.wait_ns = %d, run counted %d", got, want)
	}
	if got := snap.Gauges["parmd.ranks"]; got != float64(cart.Size()) {
		t.Errorf("registry parmd.ranks = %g, want %d", got, cart.Size())
	}
	hist, ok := snap.Histograms["parmd.step_ms"]
	if !ok {
		t.Fatal("registry has no parmd.step_ms histogram")
	}
	if hist.Count != int64(cart.Size()*steps) {
		t.Errorf("parmd.step_ms count = %d, want %d", hist.Count, cart.Size()*steps)
	}
	cp, ok := snap.Gauges["phase.critical_path_fraction"]
	if !ok || cp <= 0 || cp > 1 {
		t.Errorf("phase.critical_path_fraction = %g (present=%v), want in (0, 1]", cp, ok)
	}
}

// TestMaxRankPin pins the table-driven MaxRank against the previous
// hand-written reduction for the five fields it covered, and checks
// the new fields reduce component-wise too (each column's maximum may
// come from a different rank).
func TestMaxRankPin(t *testing.T) {
	res := &Result{RankStats: []RankStats{
		{Steps: 3, OwnedAtoms: 10, SearchCandidates: 100, TuplesEvaluated: 5,
			PairListEntries: 7, AtomsImported: 50, AtomsMigrated: 2, HaloMessages: 12, Virial: -3.5},
		{Steps: 2, OwnedAtoms: 40, SearchCandidates: 90, TuplesEvaluated: 9,
			PairListEntries: 1, AtomsImported: 60, AtomsMigrated: 8, HaloMessages: 6, Virial: 1.25},
	}}
	// The pre-table implementation, verbatim.
	var legacy RankStats
	for _, s := range res.RankStats {
		legacy.SearchCandidates = max(legacy.SearchCandidates, s.SearchCandidates)
		legacy.TuplesEvaluated = max(legacy.TuplesEvaluated, s.TuplesEvaluated)
		legacy.AtomsImported = max(legacy.AtomsImported, s.AtomsImported)
		legacy.OwnedAtoms = max(legacy.OwnedAtoms, s.OwnedAtoms)
		legacy.HaloMessages = max(legacy.HaloMessages, s.HaloMessages)
	}
	got := res.MaxRank()
	if got.SearchCandidates != legacy.SearchCandidates || got.TuplesEvaluated != legacy.TuplesEvaluated ||
		got.AtomsImported != legacy.AtomsImported || got.OwnedAtoms != legacy.OwnedAtoms ||
		got.HaloMessages != legacy.HaloMessages {
		t.Errorf("MaxRank disagrees with the legacy reduction: %+v vs %+v", got, legacy)
	}
	want := RankStats{Steps: 3, OwnedAtoms: 40, SearchCandidates: 100, TuplesEvaluated: 9,
		PairListEntries: 7, AtomsImported: 60, AtomsMigrated: 8, HaloMessages: 12, Virial: 1.25}
	if got != want {
		t.Errorf("MaxRank = %+v, want %+v", got, want)
	}

	mean := res.MeanRank()
	if mean.SearchCandidates != 95 || mean.Virial != (-3.5+1.25)/2 {
		t.Errorf("MeanRank = %+v", mean)
	}
	if (&Result{}).MaxRank() != (RankStats{}) {
		t.Error("MaxRank of an empty result should be zero")
	}
}

// TestTraceFlowEvents: every point-to-point exchange on a recorded
// step emits a Chrome-trace flow pair — a "s" (start) event on the
// sender's track and a matching "f" (finish, bp "e") event on the
// receiver's — sharing one ID, so the viewer draws arrows from each
// send into the receive that consumed it. Covered for both exchange
// modes: the overlapped default (send posted in beginHalo/finishHalo,
// receive paired at the handle's completion point) and the synchronous
// path.
func TestTraceFlowEvents(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 32)
	// Fully split topology: an unsplit axis would wrap its halo phase
	// back to the sender itself, putting both flow endpoints on one
	// track and weakening the cross-track assertion below.
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	for _, noOverlap := range []bool{false, true} {
		rec := obs.NewRecorder(cart.Size(), 1024)
		_, err := Run(cfg, model, Options{
			Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 3, Recorder: rec,
			NoOverlap: noOverlap,
		})
		if err != nil {
			t.Fatal(err)
		}

		type endpoints struct {
			starts, finishes int
			startTid, finTid int
		}
		flows := map[string]*endpoints{}
		for _, ev := range rec.Events() {
			if ev.Cat != "flow" {
				continue
			}
			if ev.Name != "msg" {
				t.Fatalf("flow event named %q, want \"msg\"", ev.Name)
			}
			ep := flows[ev.ID]
			if ep == nil {
				ep = &endpoints{}
				flows[ev.ID] = ep
			}
			switch ev.Ph {
			case "s":
				ep.starts++
				ep.startTid = ev.Tid
			case "f":
				if ev.Bp != "e" {
					t.Errorf("flow finish %s has bp %q, want \"e\"", ev.ID, ev.Bp)
				}
				ep.finishes++
				ep.finTid = ev.Tid
			default:
				t.Errorf("flow event %s has phase %q, want \"s\" or \"f\"", ev.ID, ev.Ph)
			}
		}
		if len(flows) == 0 {
			t.Fatal("trace contains no flow events")
		}
		for id, ep := range flows {
			if ep.starts != 1 || ep.finishes != 1 {
				t.Errorf("noOverlap=%v flow %s: %d starts, %d finishes, want exactly one of each",
					noOverlap, id, ep.starts, ep.finishes)
			}
			if ep.startTid == ep.finTid {
				t.Errorf("noOverlap=%v flow %s starts and finishes on the same track %d",
					noOverlap, id, ep.startTid)
			}
		}
	}
}

// TestStepRecordClassBytes: the JSONL step records carry per-tag-class
// byte deltas (comm_halo_bytes, comm_force_bytes, ...) whose per-rank
// sums — plus the initial force evaluation the loop's records never
// cover — reproduce the run's cumulative per-class totals.
func TestStepRecordClassBytes(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 33)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	const steps = 3

	var buf bytes.Buffer
	res, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: steps,
		StepLog: obs.NewStepWriter(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}

	sums := map[string]int64{}
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec stepRecordJSON
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		stepHalo := rec.Counters["comm_halo_bytes"]
		if stepHalo <= 0 {
			t.Errorf("rank %d step %d: comm_halo_bytes = %d, want > 0 (halo refresh every step)",
				rec.Rank, rec.Step, stepHalo)
		}
		for k, v := range rec.Counters {
			if strings.HasPrefix(k, "comm_") && strings.HasSuffix(k, "_bytes") {
				sums[strings.TrimSuffix(strings.TrimPrefix(k, "comm_"), "_bytes")] += v
			}
		}
	}
	for _, class := range []string{"halo", "force", "migrate"} {
		total := res.CommByClass[class].Bytes
		if sums[class] <= 0 || sums[class] > total {
			t.Errorf("class %s: step deltas sum to %d, cumulative total %d", class, sums[class], total)
		}
	}
	if sums["health"] != 0 {
		t.Errorf("monitor-less run recorded %d health bytes", sums["health"])
	}
}
