package parmd

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/obs"
)

// TestOverlapMatchesSyncBitIdentical is the A/B determinism pin of the
// overlapped exchange: for every scheme, on a 2-rank axis split and on
// the fully split 2×2×2 topology, the overlapped (default) run and the
// synchronous (NoOverlap) run produce bit-identical forces, energies,
// and final positions. Both modes dispatch the identical two-stage
// interior/boundary partition into the fixed-shard accumulator, so any
// difference would mean the exchange timing leaked into the physics.
func TestOverlapMatchesSyncBitIdentical(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 41)
	for _, dims := range []geom.IVec3{geom.IV(2, 1, 1), geom.IV(2, 2, 2)} {
		cart, err := comm.NewCartDims(dims)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range Schemes() {
			base := Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 2, TraceEnergies: true}
			over, err := Run(cfg, model, base)
			if err != nil {
				t.Fatalf("%v %v overlapped: %v", scheme, dims, err)
			}
			syncOpt := base
			syncOpt.NoOverlap = true
			sync, err := Run(cfg, model, syncOpt)
			if err != nil {
				t.Fatalf("%v %v synchronous: %v", scheme, dims, err)
			}

			if over.InitialPotential != sync.InitialPotential {
				t.Errorf("%v %v: initial PE %v (overlapped) vs %v (sync)",
					scheme, dims, over.InitialPotential, sync.InitialPotential)
			}
			for i := range over.Forces {
				if over.Forces[i] != sync.Forces[i] {
					t.Fatalf("%v %v: force %d differs bitwise: %v vs %v",
						scheme, dims, i, over.Forces[i], sync.Forces[i])
				}
				if over.Final.Pos[i] != sync.Final.Pos[i] {
					t.Fatalf("%v %v: position %d differs bitwise", scheme, dims, i)
				}
			}
			for s := range over.Energies {
				if over.Energies[s] != sync.Energies[s] {
					t.Errorf("%v %v: step %d energies differ: %+v vs %+v",
						scheme, dims, s, over.Energies[s], sync.Energies[s])
				}
			}
		}
	}
}

// TestOverlapPhasesRecorded: the overlapped run exports the split
// phases (force:interior, halo:wait, force:boundary) and a sane
// overlap fraction; the synchronous run reports no wait-derived
// overlap above 1 either.
func TestOverlapPhasesRecorded(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 42)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	rec := obs.NewRecorder(cart.Size(), 256)
	res, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 2, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, ps := range res.Phases {
		got[ps.Phase] = true
	}
	for _, want := range []string{"force:interior", "force:boundary", "halo:wait", "halo"} {
		if !got[want] {
			t.Errorf("phase %q missing from overlapped run (have %v)", want, got)
		}
	}
	if f := res.OverlapFraction(); !(f > 0 && f <= 1) {
		t.Errorf("overlap fraction %g, want in (0, 1]", f)
	}
}

// mustFaultTransport builds a FaultTransport or fails the test — the
// exported fault-injection seam is also what these corruption tests
// exercise.
func mustFaultTransport(t *testing.T, ranks int, class string) *FaultTransport {
	t.Helper()
	ft, err := NewFaultTransport(ranks, class, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// TestMalformedHaloMessageTypedError: corrupting every halo payload
// must fail the run with one *RankError per rank — no panic, no
// deadlock — in both exchange modes, with the detecting rank(s)
// reporting phase "halo" and the failure logged through Options.Log.
func TestMalformedHaloMessageTypedError(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 43)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	for _, noOverlap := range []bool{false, true} {
		var logBuf bytes.Buffer
		_, err := Run(cfg, model, Options{
			Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 1,
			NoOverlap: noOverlap,
			Log:       obs.TextLogger(&logBuf, slog.LevelInfo),
			Transport: mustFaultTransport(t, cart.Size(), "halo"),
		})
		if err == nil {
			t.Fatalf("noOverlap=%v: corrupted halo exchange succeeded", noOverlap)
		}
		rerrs := RankErrors(err)
		if len(rerrs) != cart.Size() {
			t.Fatalf("noOverlap=%v: %d rank errors for %d ranks: %v", noOverlap, len(rerrs), cart.Size(), err)
		}
		seen := map[int]bool{}
		haloErrs := 0
		for _, re := range rerrs {
			if seen[re.Rank] {
				t.Errorf("noOverlap=%v: rank %d reported twice", noOverlap, re.Rank)
			}
			seen[re.Rank] = true
			if re.Phase == "halo" {
				haloErrs++
				if !strings.Contains(re.Error(), "malformed halo message") {
					t.Errorf("noOverlap=%v: halo error lost its diagnostic: %v", noOverlap, re)
				}
			} else if !errors.Is(re, comm.ErrAborted) {
				t.Errorf("noOverlap=%v: rank %d failed outside the halo without an abort: %v",
					noOverlap, re.Rank, re)
			}
		}
		if haloErrs == 0 {
			t.Errorf("noOverlap=%v: no rank reported the halo corruption: %v", noOverlap, err)
		}
		if !strings.Contains(logBuf.String(), "rank failed") {
			t.Errorf("noOverlap=%v: failures not logged through Options.Log: %q", noOverlap, logBuf.String())
		}
	}
}

// TestMalformedWriteBackTypedError: corrupting the force write-back
// payloads fails the run with typed phase "writeback" errors (the
// size check runs before any force is applied).
func TestMalformedWriteBackTypedError(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 44)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	_, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 1,
		Transport: mustFaultTransport(t, cart.Size(), "force"),
	})
	if err == nil {
		t.Fatal("corrupted write-back succeeded")
	}
	rerrs := RankErrors(err)
	if len(rerrs) != cart.Size() {
		t.Fatalf("%d rank errors for %d ranks: %v", len(rerrs), cart.Size(), err)
	}
	wbErrs := 0
	for _, re := range rerrs {
		if re.Phase == "writeback" {
			wbErrs++
			if !strings.Contains(re.Error(), "size mismatch") {
				t.Errorf("write-back error lost its diagnostic: %v", re)
			}
		} else if !errors.Is(re, comm.ErrAborted) {
			t.Errorf("rank %d failed outside the write-back without an abort: %v", re.Rank, re)
		}
	}
	if wbErrs == 0 {
		t.Errorf("no rank reported the write-back corruption: %v", err)
	}
}

// TestAbortPropagatesToHealthyRanks: when only one rank's inbound halo
// traffic is corrupted, that rank fails with a typed halo error and
// every healthy peer — eventually blocked on messages the failed rank
// will never send — unwinds with comm.ErrAborted wrapped in its own
// *RankError, instead of deadlocking the world.
func TestAbortPropagatesToHealthyRanks(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 45)
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	ft := mustFaultTransport(t, cart.Size(), "halo")
	ft.Dst = func(dst int) bool { return dst == 0 }
	_, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 1,
		Transport: ft,
	})
	if err == nil {
		t.Fatal("run with a poisoned rank succeeded")
	}
	rerrs := RankErrors(err)
	if len(rerrs) != cart.Size() {
		t.Fatalf("%d rank errors for %d ranks: %v", len(rerrs), cart.Size(), err)
	}
	for _, re := range rerrs {
		switch re.Rank {
		case 0:
			if re.Phase != "halo" {
				t.Errorf("poisoned rank failed in phase %q, want halo: %v", re.Phase, re)
			}
		default:
			if !errors.Is(re, comm.ErrAborted) {
				t.Errorf("healthy rank %d did not unwind via abort: %v", re.Rank, re)
			}
		}
	}
	// Sanity: the same closure with a clean transport runs fine.
	if _, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 1}); err != nil {
		t.Fatalf("clean control run failed: %v", err)
	}
}

// TestHopDirOverflowIsRunError: the migration path's impossible-hop
// condition (an atom crossing a whole block in one step — a blown-up
// integration) surfaces as a typed migrate error from Run, not a
// panic. Forced by an absurd time step.
func TestHopDirOverflowIsRunError(t *testing.T) {
	cfg, model := silicaConfig(t, 8, 300, 46)
	cart, _ := comm.NewCartDims(geom.IV(4, 1, 1))
	_, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 1e7, Steps: 2})
	if err == nil {
		t.Skip("absurd time step did not push an atom across a block this run")
	}
	rerrs := RankErrors(err)
	if len(rerrs) == 0 {
		t.Fatalf("blown-up run failed without typed rank errors: %v", err)
	}
	found := false
	for _, re := range rerrs {
		if re.Phase == "migrate" && strings.Contains(re.Error(), "blocks in one step") {
			found = true
		}
	}
	if !found {
		// The blow-up can also surface as a halo atom outside the
		// extended lattice, which is an acceptable typed failure too.
		for _, re := range rerrs {
			if re.Phase == "halo" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no typed migrate/halo error in %v", err)
	}
}

