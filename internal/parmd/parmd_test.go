package parmd

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// serialReference runs the same configuration through the serial SC
// engine and returns per-atom forces and the potential energy.
func serialReference(t *testing.T, cfg *workload.Config, model *potential.Model, steps int, dt float64) ([]geom.Vec3, float64, *md.System) {
	t.Helper()
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := md.NewSim(sys, engine, dt)
	if err != nil {
		t.Fatal(err)
	}
	if steps > 0 {
		if err := sim.Run(steps); err != nil {
			t.Fatal(err)
		}
	}
	// Serial storage is cell-sorted; parmd results are ID-ordered.
	return sys.GatherByID(nil, sys.Force), sim.PotentialEnergy(), sys
}

// silicaConfig builds a thermalized silica crystal spanning ≥ minCells
// global cells per axis.
func silicaConfig(t *testing.T, unitCells int, tempK float64, seed int64) (*workload.Config, *potential.Model) {
	t.Helper()
	model := potential.NewSilicaModel()
	cfg := workload.BetaCristobalite(unitCells, unitCells, unitCells)
	if tempK > 0 {
		cfg.Thermalize(rand.New(rand.NewSource(seed)), model, tempK)
	}
	return cfg, model
}

// TestParallelForcesMatchSerial is the central parallel correctness
// test: for all three schemes and several topologies, the zero-step
// parallel forces and energy must match the serial SC engine.
func TestParallelForcesMatchSerial(t *testing.T) {
	// 4³ unit cells = 28.64 Å = 5 pair cells per axis, so 2-way splits
	// give blocks of 3 and 2 cells — enough for FS-MD's 2-cell halo.
	cfg, model := silicaConfig(t, 4, 300, 1)
	wantF, wantPE, _ := serialReference(t, cfg, model, 0, 1)

	topos := []geom.IVec3{
		{X: 1, Y: 1, Z: 1},
		{X: 2, Y: 1, Z: 1},
		{X: 2, Y: 2, Z: 1},
		{X: 1, Y: 2, Z: 2},
		{X: 2, Y: 2, Z: 2},
	}
	for _, scheme := range Schemes() {
		for _, dims := range topos {
			cart, err := comm.NewCartDims(dims)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 0})
			if err != nil {
				t.Fatalf("%v %v: %v", scheme, dims, err)
			}
			if rel := math.Abs(res.InitialPotential-wantPE) / math.Abs(wantPE); rel > 1e-10 {
				t.Errorf("%v %v: PE %.12g, serial %.12g (rel %g)", scheme, dims, res.InitialPotential, wantPE, rel)
			}
			for i := range wantF {
				if d := res.Forces[i].Sub(wantF[i]).Norm(); d > 1e-8 {
					t.Fatalf("%v %v: atom %d force differs by %g", scheme, dims, i, d)
				}
			}
		}
	}
}

// TestParallelDynamicsMatchSerial runs real dynamics: after 10 steps
// with migration and halo refresh every step, positions and energies
// must still track the serial engine.
func TestParallelDynamicsMatchSerial(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 600, 2)
	_, _, sys := serialReference(t, cfg, model, 10, 1.0)

	for _, scheme := range Schemes() {
		cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1.0, Steps: 10})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		pos := sys.GatherByID(nil, sys.Pos)
		vel := sys.GatherByID(nil, sys.Vel)
		for i := range pos {
			if d := cfg.Box.Distance(res.Final.Pos[i], pos[i]); d > 1e-7 {
				t.Fatalf("%v: atom %d position differs by %g after 10 steps", scheme, i, d)
			}
			if d := res.Final.Vel[i].Sub(vel[i]).Norm(); d > 1e-8 {
				t.Fatalf("%v: atom %d velocity differs by %g", scheme, i, d)
			}
		}
	}
}

// TestParallelEnergyConservation: the parallel stack must conserve
// total energy in NVE like the serial one.
func TestParallelEnergyConservation(t *testing.T) {
	cfg, model := silicaConfig(t, 3, 300, 3)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 1))
	res, err := Run(cfg, model, Options{
		Scheme: SchemeSC, Cart: cart, Dt: 0.5, Steps: 60, TraceEnergies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e0 := res.Energies[0].Total()
	ke0 := res.Energies[0].Kinetic
	for s, e := range res.Energies {
		if math.Abs(e.Total()-e0) > 0.02*ke0 {
			t.Fatalf("step %d: energy drifted to %g from %g (KE0 %g)", s, e.Total(), e0, ke0)
		}
	}
}

// TestMigrationConservesAtoms: after many steps at high temperature,
// every atom is still owned exactly once (Run checks ID completeness).
func TestMigrationConservesAtoms(t *testing.T) {
	cfg, model := silicaConfig(t, 3, 1500, 4)
	cart, _ := comm.NewCartDims(geom.IV(3, 2, 1))
	res, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 1.0, Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	migrated := int64(0)
	for _, s := range res.RankStats {
		migrated += s.AtomsMigrated
	}
	if migrated == 0 {
		t.Error("no atoms migrated in 40 hot steps — migration path untested")
	}
}

// TestSCImportSmallerThanFS: the headline communication claim — for
// the same run, SC-MD must import roughly half the atoms of FS-MD and
// use fewer halo messages (3 vs 6 per step).
func TestSCImportSmallerThanFS(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 5)
	cart, _ := comm.NewCartDims(geom.IV(2, 2, 2))
	imports := map[Scheme]int64{}
	messages := map[Scheme]int64{}
	for _, scheme := range Schemes() {
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.RankStats {
			imports[scheme] += s.AtomsImported
			messages[scheme] += s.HaloMessages
		}
	}
	if !(imports[SchemeSC] < imports[SchemeFS]) {
		t.Errorf("SC imported %d atoms, FS %d — SC should be smaller", imports[SchemeSC], imports[SchemeFS])
	}
	if !(imports[SchemeSC] < imports[SchemeHybrid]) {
		t.Errorf("SC imported %d atoms, Hybrid %d — SC should be smaller", imports[SchemeSC], imports[SchemeHybrid])
	}
	// Octant one-cell slab vs thickness-2 full shell: the measured
	// ratio is large at this block size ((l+4)³-l³ over (l+1)³-l³).
	ratio := float64(imports[SchemeFS]) / float64(imports[SchemeSC])
	if ratio < 4 || ratio > 20 {
		t.Errorf("FS/SC import ratio %g, expected ≈ 10 for octant slab vs 2-cell full shell", ratio)
	}
	if imports[SchemeFS] != imports[SchemeHybrid] {
		t.Errorf("Hybrid import %d != FS import %d — §5 says they match", imports[SchemeHybrid], imports[SchemeFS])
	}
	// Halo message count: SC has 3 import phases per step vs 6.
	if 2*messages[SchemeSC] != messages[SchemeFS] {
		t.Errorf("halo messages SC %d vs FS %d, want exactly half", messages[SchemeSC], messages[SchemeFS])
	}
}

// TestHybridSearchCheaperThanSCForSilica: with r_cut3 ≪ r_cut2 the
// Hybrid triplet pruning must examine far fewer candidates than the
// SC cell search (the paper's rationale for Hybrid-MD winning at
// coarse grain).
func TestHybridSearchCheaperThanSCForSilica(t *testing.T) {
	cfg, model := silicaConfig(t, 3, 300, 6)
	cart, _ := comm.NewCartDims(geom.IV(1, 1, 1))
	search := map[Scheme]int64{}
	for _, scheme := range Schemes() {
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.RankStats {
			search[scheme] += s.SearchCandidates
		}
	}
	if !(search[SchemeHybrid] < search[SchemeSC]) {
		t.Errorf("Hybrid search %d not below SC %d", search[SchemeHybrid], search[SchemeSC])
	}
	if !(search[SchemeSC] < search[SchemeFS]) {
		t.Errorf("SC search %d not below FS %d", search[SchemeSC], search[SchemeFS])
	}
}

// TestSingleRankTopology: the degenerate 1×1×1 world must work (self
// halo exchange across the periodic boundary).
func TestSingleRankTopology(t *testing.T) {
	cfg, model := silicaConfig(t, 3, 300, 7)
	wantF, wantPE, _ := serialReference(t, cfg, model, 0, 1)
	cart, _ := comm.NewCartDims(geom.IV(1, 1, 1))
	res, err := Run(cfg, model, Options{Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.InitialPotential-wantPE) / math.Abs(wantPE); rel > 1e-10 {
		t.Errorf("PE %g vs serial %g", res.InitialPotential, wantPE)
	}
	for i := range wantF {
		if d := res.Forces[i].Sub(wantF[i]).Norm(); d > 1e-8 {
			t.Fatalf("atom %d force differs by %g", i, d)
		}
	}
}

// TestDecompBlocks: block arithmetic.
func TestDecompBlocks(t *testing.T) {
	box := geom.NewCubicBox(55)
	cart, _ := comm.NewCartDims(geom.IV(3, 2, 1))
	dec, err := NewDecomp(box, 5.5, cart) // 10 cells per axis
	if err != nil {
		t.Fatal(err)
	}
	// Axis 0 split 10 into 3: 4,3,3.
	if dec.BlockDims(geom.IV(0, 0, 0)) != geom.IV(4, 5, 10) {
		t.Errorf("block(0,0,0) dims %v", dec.BlockDims(geom.IV(0, 0, 0)))
	}
	if dec.BlockLo(geom.IV(2, 1, 0)) != geom.IV(7, 5, 0) {
		t.Errorf("block(2,1,0) lo %v", dec.BlockLo(geom.IV(2, 1, 0)))
	}
	// Every cell owned exactly once.
	counts := make(map[int]int)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			for z := 0; z < 10; z++ {
				c := dec.OwnerCoord(geom.IV(x, y, z))
				counts[cart.Rank(c)]++
			}
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1000 || len(counts) != 6 {
		t.Errorf("ownership coverage: %d cells over %d ranks", total, len(counts))
	}
	if dec.MinBlockDim() != 3 {
		t.Errorf("MinBlockDim %d", dec.MinBlockDim())
	}
}

// TestDecompRejectsTooManyRanks.
func TestDecompRejectsTooManyRanks(t *testing.T) {
	box := geom.NewCubicBox(20)
	cart, _ := comm.NewCartDims(geom.IV(5, 1, 1))
	if _, err := NewDecomp(box, 5.5, cart); err == nil { // only 3 cells per axis
		t.Error("decomposition with more ranks than cells accepted")
	}
}

// TestHopDir covers the periodic hop logic.
func TestHopDir(t *testing.T) {
	hop := func(my, target, dim int) int {
		t.Helper()
		d, err := hopDir(my, target, dim)
		if err != nil {
			t.Fatalf("hopDir(%d, %d, %d): %v", my, target, dim, err)
		}
		return d
	}
	if hop(0, 0, 4) != 0 {
		t.Error("same block")
	}
	if hop(0, 1, 4) != 1 || hop(1, 0, 4) != -1 {
		t.Error("adjacent hop")
	}
	if hop(0, 3, 4) != -1 || hop(3, 0, 4) != 1 {
		t.Error("periodic wrap hop")
	}
	if hop(0, 1, 2) == 0 {
		t.Error("dim-2 hop")
	}
	if _, err := hopDir(0, 2, 5); err == nil {
		t.Error("two-block hop accepted")
	}
}

// TestLJParallelMatchesSerial: a second model (pair-only) through the
// same machinery.
func TestLJParallelMatchesSerial(t *testing.T) {
	model := potential.NewLJModel(0.0104, 3.4, 8.5, 39.948)
	rng := rand.New(rand.NewSource(8))
	cfg := workload.LJFluid(rng, 512, 0.5, 3.4)
	cfg.Thermalize(rng, model, 120)
	wantF, wantPE, _ := serialReference(t, cfg, model, 0, 1)
	for _, scheme := range []Scheme{SchemeSC, SchemeFS, SchemeHybrid} {
		cart, _ := comm.NewCartDims(geom.IV(2, 2, 1))
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 0})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if rel := math.Abs(res.InitialPotential-wantPE) / math.Abs(wantPE); rel > 1e-10 {
			t.Errorf("%v: PE %g vs serial %g", scheme, res.InitialPotential, wantPE)
		}
		for i := range wantF {
			if d := res.Forces[i].Sub(wantF[i]).Norm(); d > 1e-9 {
				t.Fatalf("%v: atom %d force differs by %g", scheme, i, d)
			}
		}
	}
}

// TestTorsionParallel: n = 4 terms through SC-MD and FS-MD (Hybrid
// cannot handle them by design).
func TestTorsionParallel(t *testing.T) {
	// 15σ box = 6 pair cells, so a 2-way split gives 3-cell blocks —
	// enough for the n = 4 pattern-reach halo of 3 cells.
	model := potential.NewTorsionModel(0.05, 1.8, 0.02, 1.0, 2.5, 12.0)
	rng := rand.New(rand.NewSource(9))
	cfg := workload.LJFluid(rng, 520, 0.15, 1.0)
	wantF, wantPE, _ := serialReference(t, cfg, model, 0, 1)
	for _, scheme := range []Scheme{SchemeSC, SchemeFS} {
		cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
		res, err := Run(cfg, model, Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 0})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if rel := math.Abs(res.InitialPotential-wantPE) / (math.Abs(wantPE) + 1e-12); rel > 1e-9 {
			t.Errorf("%v: PE %g vs serial %g", scheme, res.InitialPotential, wantPE)
		}
		for i := range wantF {
			if d := res.Forces[i].Sub(wantF[i]).Norm(); d > 1e-9 {
				t.Fatalf("%v: atom %d force differs by %g", scheme, i, d)
			}
		}
	}
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	if _, err := Run(cfg, model, Options{Scheme: SchemeHybrid, Cart: cart, Dt: 1, Steps: 0}); err == nil {
		t.Error("Hybrid accepted an n=4 model")
	}
}
