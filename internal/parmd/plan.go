package parmd

import (
	"sctuple/internal/geom"
)

// ExchangePlan is one rank's compiled communication schedule: every
// peer, tag, slab bound, and frame-shift adjustment of the staged halo
// import, force write-back, and atom migration, derived once per
// (decomposition, scheme, rank) at startup. The per-step exchange
// loops then only walk precompiled entries — no geometry is recomputed
// on the hot path, in the spirit of the precompiled message schedules
// of Beazley & Lomdahl's CM-5 multi-cell MD (see PAPERS.md).
type ExchangePlan struct {
	// Halo lists the staged import phases in execution order: per axis,
	// toward −axis first (the SC direction), then +axis (full-shell
	// only). Force write-back replays the same list in reverse.
	Halo []HaloPhase
	// Migrate holds one entry per axis; axes a single rank spans are
	// marked inactive.
	Migrate [3]MigratePhase

	// InteriorLo/InteriorHi bound the interior cells in extended-cell
	// coordinates: an owned cell c with InteriorLo ≤ c < InteriorHi
	// (component-wise) anchors only tuples whose atoms lie in owned
	// cells. The margins are the scheme's maximal per-axis tuple reach
	// (mLo below the anchor, mHi above — the same bound that sizes the
	// halo import), so a cell at least mLo cells above the lower owned
	// edge and mHi below the upper one can be evaluated before any halo
	// data arrives. The remaining owned cells are the boundary set. An
	// axis may compile to an empty interior range (InteriorHi ≤
	// InteriorLo) when the block is thinner than both margins combined;
	// the overlapped path then degenerates gracefully to all-boundary.
	InteriorLo, InteriorHi geom.IVec3
}

// HaloPhase is one compiled slab transfer of the staged halo exchange.
type HaloPhase struct {
	Axis int // 0, 1, 2
	Dir  int // slab travel direction: −1 (SC) or +1 (full-shell only)

	SendPeer int // rank this phase's slab is sent to
	RecvPeer int // rank the symmetric margin fill comes from
	Tag      int // halo import tag
	ForceTag int // matching force write-back tag

	// Slab selection in extended-cell coordinates along Axis: atoms
	// with SlabLo ≤ ecell < SlabHi are exported.
	SlabLo, SlabHi int

	// Frame shift into the receiver's coordinates, including the
	// periodic image correction at the global boundary.
	CellAdj int
	PosAdj  float64
}

// MigratePhase is the compiled per-axis migration exchange: both
// directions' peers and tags plus the block geometry hopDir needs.
type MigratePhase struct {
	Active   bool   // false when this rank is the axis's sole owner
	BlockIdx int    // this rank's block index along the axis
	Dim      int    // process-grid extent along the axis
	SendPeer [2]int // index 0: toward −1, 1: toward +1
	RecvPeer [2]int
	Tag      [2]int
}

// compileExchangePlan builds the rank's full communication schedule.
// mLo/mHi are the scheme's halo margins (scheme.margins).
func compileExchangePlan(dec *Decomp, rank, mLo, mHi int) *ExchangePlan {
	cart := dec.Cart
	coord := cart.Coord(rank)
	lo := dec.BlockLo(coord)
	hi := dec.BlockHi(coord)
	base := lo.Sub(geom.IV(mLo, mLo, mLo))
	block := hi.Sub(lo)

	plan := &ExchangePlan{}
	for axis := 0; axis < 3; axis++ {
		// Owned cells span [mLo, mLo+block) in extended coordinates; the
		// interior keeps the scheme's reach away from both edges.
		plan.InteriorLo.SetComp(axis, mLo+mLo)
		plan.InteriorHi.SetComp(axis, mLo+block.Comp(axis)-mHi)
		// Dir = −1: my bottom slab fills the −axis neighbor's upper
		// margin (the SC direction). Dir = +1: my top slab fills the
		// +axis neighbor's lower margin (full-shell only). The phase
		// order (all of one axis before the next, each phase's slab
		// selection covering halo atoms received earlier) is what makes
		// edge and corner data forward automatically.
		for _, d := range [2]int{-1, +1} {
			if (d < 0 && mHi == 0) || (d > 0 && mLo == 0) {
				continue
			}
			ph := HaloPhase{
				Axis:     axis,
				Dir:      d,
				SendPeer: cart.AxisNeighbor(rank, axis, d),
				RecvPeer: cart.AxisNeighbor(rank, axis, -d),
				Tag:      tagHalo + axis*2 + (d+1)/2,
				ForceTag: tagForce + axis*2 + (d+1)/2,
			}
			if d < 0 {
				// Bottom slab: the first mHi owned cells. Owned cells
				// span [mLo, mLo+block) in extended coordinates.
				ph.SlabLo, ph.SlabHi = mLo, mLo+mHi
			} else {
				// Top slab: the last mLo owned cells. Its lower bound is
				// (mLo + block) − mLo = block — the slab of thickness
				// mLo ending at the owned range's upper edge starts
				// exactly block cells above the extended origin.
				ph.SlabLo, ph.SlabHi = block.Comp(axis), mLo+block.Comp(axis)
			}
			ph.CellAdj, ph.PosAdj = hopAdjust(dec, coord, base, axis, d)
			plan.Halo = append(plan.Halo, ph)
		}

		mp := &plan.Migrate[axis]
		mp.BlockIdx = coord.Comp(axis)
		mp.Dim = cart.Dims.Comp(axis)
		if mp.Dim == 1 {
			continue // sole owner along this axis
		}
		mp.Active = true
		for di, d := range [2]int{-1, +1} {
			mp.SendPeer[di] = cart.AxisNeighbor(rank, axis, d)
			mp.RecvPeer[di] = cart.AxisNeighbor(rank, axis, -d)
			mp.Tag[di] = tagMigrate + axis*2 + di
		}
	}
	return plan
}

// hopAdjust returns the extended-cell index shift and local-position
// shift that map the frame of the rank at coord (with extended origin
// base) onto the frame of its axis-d neighbor, including the periodic
// image correction at the global boundary.
func hopAdjust(dec *Decomp, coord, base geom.IVec3, axis, d int) (cellAdj int, posAdj float64) {
	cart := dec.Cart
	nbCoordRaw := coord.Comp(axis) + d
	crossed := 0
	if nbCoordRaw < 0 || nbCoordRaw >= cart.Dims.Comp(axis) {
		crossed = -d // image shift in box lengths
	}
	nbCoord := coord
	nbCoord.SetComp(axis, nbCoordRaw)
	nb := cart.Wrap(nbCoord)
	nbMargin := dec.BlockLo(coord).Comp(axis) - base.Comp(axis) // = mLo, same on every rank
	nbBase := dec.BlockLo(nb).Comp(axis) - nbMargin

	gdims := dec.Lat.Dims.Comp(axis)
	cellAdj = base.Comp(axis) - nbBase + crossed*gdims
	posAdj = float64(crossed)*dec.Lat.Box.L.Comp(axis) +
		float64(base.Comp(axis)-nbBase)*dec.Lat.Side.Comp(axis)
	return cellAdj, posAdj
}
