//go:build !race

package parmd

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation allocates.
const raceEnabled = false
