package parmd

import (
	"cmp"
	"fmt"
	"slices"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
	"sctuple/internal/workload"
)

// computeShards is the fixed number of accumulation shards each rank's
// force evaluation is split into. The shard count — not the worker
// count — fixes both the work partition and the reduction order, so a
// rank's forces are bit-identical for every Options.Workers setting
// (and workers beyond computeShards would sit idle, so the worker
// count is capped here).
const computeShards = 16

// Message tags. Halo and force tags are offset per (axis, direction)
// so a protocol slip is caught by the tag check in comm.Recv.
// tagHealth carries the halo-mirror checksum exchange of the health
// probes, offset identically to the halo tag it audits.
// tagBalance carries the balance protocol: per-rank force-work times
// gathered to rank 0 (tagBalance) and the repartition decision
// broadcast back (tagBalance + 1).
const (
	tagMigrate = 100
	tagHalo    = 200
	tagForce   = 300
	tagHealth  = 400
	tagBalance = 500
)

// RankStats accumulates one rank's per-run operation counts — the
// inputs of the performance model (package perfmodel).
type RankStats struct {
	Steps            int
	OwnedAtoms       int   // at end of run
	SearchCandidates int64 // Eq. 12 search cost, summed over steps
	TuplesEvaluated  int64
	PairListEntries  int64 // Hybrid only
	AtomsImported    int64 // halo atoms received, summed over steps
	AtomsMigrated    int64 // atoms received in migration
	HaloMessages     int64 // halo + write-back messages received
	// ForceNs is the cumulative wall time of this rank's force work
	// (interior + boundary evaluation stages, excluding halo waits) —
	// the per-rank load measure the adaptive balancer equalizes and
	// Result.ForceImbalance summarizes.
	ForceNs int64
	// Virial is this rank's share of W = Σ f·r (eV), summed over force
	// evaluations; summing it over ranks gives the global virial of
	// the serial engines' ComputeStats (per-tuple virials are
	// translation invariant, so the rank-local frames do not matter).
	Virial float64
}

// Add accumulates other into s.
func (s *RankStats) Add(o RankStats) {
	s.Steps += o.Steps
	s.SearchCandidates += o.SearchCandidates
	s.TuplesEvaluated += o.TuplesEvaluated
	s.PairListEntries += o.PairListEntries
	s.AtomsImported += o.AtomsImported
	s.AtomsMigrated += o.AtomsMigrated
	s.HaloMessages += o.HaloMessages
	s.ForceNs += o.ForceNs
	s.Virial += o.Virial
}

// rankState is the complete state of one rank of a parallel run.
type rankState struct {
	p      *comm.Proc
	dec    *Decomp
	scheme Scheme
	model  *potential.Model

	coord    geom.IVec3
	lo, hi   geom.IVec3 // owned global cell range [lo, hi)
	mLo, mHi int        // halo margins in cells (per scheme)
	base     geom.IVec3 // global cell coords of the extended-lattice origin
	extLat   cell.Lattice

	// Atom storage: owned atoms in [0, nOwned), halo copies after.
	nOwned  int
	ids     []int64
	gpos    []geom.Vec3  // wrapped global positions (owned atoms only are authoritative)
	gcell   []geom.IVec3 // owner-assigned global cells (owned atoms)
	ecell   []geom.IVec3 // extended-lattice cell of every atom (owned + halo)
	lpos    []geom.Vec3  // local-frame positions (contiguous across the seam)
	vel     []geom.Vec3
	force   []geom.Vec3
	species []int32
	lcell   []int32 // linear extended cells, parallel to ecell

	bin        *cell.Binning
	ownedCells []geom.IVec3 // extended-lattice coords of owned cells
	// interiorCells/boundaryCells partition ownedCells by the compiled
	// plan's interior bounds: interior cells anchor only tuples over
	// owned atoms, so the overlapped path evaluates them while halo
	// data is still in flight; boundary cells wait for the imports.
	// Both keep ownedCells' relative order, so the two-stage dispatch
	// chunks deterministically.
	interiorCells []geom.IVec3
	boundaryCells []geom.IVec3
	// overlap selects the split-phase exchange (the default): post the
	// halo sends/receives, evaluate interior cells, complete the
	// receives, evaluate boundary cells. False runs the synchronous
	// import with the identical two-stage dispatch, so forces are
	// bit-identical between the modes.
	overlap bool
	// enums holds one enumerator set per worker goroutine (enumerators
	// are scratch and must not be shared between goroutines),
	// enums[w][term].
	enums    [][]*tuple.Enumerator
	pairEnum *tuple.Enumerator // Hybrid: FS(2) raw pair search

	// workers is the intra-rank force-evaluation parallelism (the
	// thread half of the paper's hybrid rank×thread execution); acc is
	// the sharded accumulator all force kernels write through.
	workers int
	acc     *kernel.Sharded

	// Canonical owned-storage sort state: the owned segment is kept in
	// (extended-lattice cell, global ID) order so the binning can use
	// contiguous storage spans. All scratch is reused; the common
	// solid-state step is an O(n) already-ordered check.
	sorter  cell.Sorter
	sortV3  []geom.Vec3
	sortIV  []geom.IVec3
	sortI64 []int64
	sortI32 []int32

	// Per-slot, per-term visitors and the hoisted shard closure of the
	// SC/FS cell dispatch — created once, so the step loop builds no
	// closures (cellVisitors[slot][term]).
	cellVisitors [][]tuple.Visitor
	cellFn       func(w, s int)
	curTerm      int
	curCells     []geom.IVec3

	// Hybrid scheme only: the model's pair/triplet terms plus the
	// hoisted directed-list and pruning scratch, reused across steps.
	pairTerm   potential.Term
	tripTerm   potential.Term
	hybCounts  []int32
	hybFill    []int32
	hybRaw     []rawPair
	hybEntries []hybridEntry
	tripShort  [][]int32 // per-worker pruning scratch
	hybEmit    tuple.Visitor
	hybPairV   []func(i, j int32, disp geom.Vec3, dist float64) // per slot
	hybTripV   []func(atoms [3]int32, pos [3]geom.Vec3)         // per slot
	hybPairFn  func(w, s int)
	hybTripFn  func(w, s int)

	// idOrder lists the owned storage slots in ascending global-ID
	// order — the Hybrid evaluation walks it so the shard partition and
	// accumulation order stay bit-identical to ID-ordered storage. It
	// is rebuilt lazily after migration or a re-sort.
	idOrder      []int32
	idOrderStale bool
	idCmp        func(a, b int32) int // hoisted comparator: no closure alloc per rebuild

	// Tuple-parity probe state, rank 0 only, built lazily at the first
	// sampled step and reused for the rest of the run: the gathered
	// global configuration, its binning over the global lattice, and the
	// SC/FS enumerator pair per term. parityOff latches a constructor
	// failure (a lattice too small for the full-shell span) so the
	// configuration limit is logged once, not at every sample.
	parityPos   []geom.Vec3
	parityBin   *cell.Binning
	parityEnums [][2]*tuple.Enumerator
	parityOff   bool

	// plan is the compiled communication schedule (peers, tags, slab
	// bounds, frame shifts); phaseState is its per-step scratch, one
	// entry per halo phase, reused across steps.
	plan       *ExchangePlan
	phaseState []haloPhaseState

	// bal is the adaptive-repartitioning state (nil when no Balancer is
	// configured); hopClamp relaxes the one-hop migration invariant
	// during the multi-round slab handoff a repartition runs — a moved
	// boundary may strand an atom several blocks from its new owner, and
	// the clamped rounds walk it over one hop at a time.
	bal      *balanceState
	hopClamp bool

	// rec records this rank's phase spans; nil (the default) keeps
	// every span site a single-branch no-op.
	rec *obs.RankRecorder

	// monitor receives this rank's invariant-probe observations (nil
	// disables them); healthStep marks the steps the halo-mirror probe
	// samples — the exchange path checks this one bool, so disabled
	// probing costs a single branch and the steady-state zero-allocation
	// guarantee of the exchange is untouched.
	monitor    *health.Monitor
	healthStep bool
	curStep    int

	// live, when non-nil, feeds this rank's per-step counter deltas
	// into the metrics registry as the run steps (see liveMetrics).
	live *liveMetrics

	stats RankStats
}

// newRankState builds the geometry, enumerators, and kernel
// accumulator of a rank. workers ≤ 1 evaluates forces serially;
// overlap selects the split-phase halo exchange.
func newRankState(p *comm.Proc, dec *Decomp, model *potential.Model, scheme Scheme, workers int, overlap bool) (*rankState, error) {
	r := &rankState{p: p, scheme: scheme, model: model, overlap: overlap, curStep: -1}
	if workers < 1 {
		workers = 1
	}
	r.workers = min(workers, computeShards)
	r.acc = kernel.NewSharded(computeShards)

	side := minSide(dec.Lat.Side)
	mLo, mHi, err := scheme.margins(model, side)
	if err != nil {
		return nil, err
	}
	r.mLo, r.mHi = mLo, mHi
	if scheme == SchemeHybrid {
		// One raw (both orientations) full-shell pair search; pair and
		// triplet terms are both served from the resulting list.
		for _, term := range model.Terms {
			switch term.N() {
			case 2:
				r.pairTerm = term
			case 3:
				r.tripTerm = term
			default:
				return nil, fmt.Errorf("parmd: Hybrid-MD cannot handle n=%d terms", term.N())
			}
		}
		if r.pairTerm == nil {
			return nil, fmt.Errorf("parmd: Hybrid-MD needs a pair term")
		}
	}
	if err := r.initGeometry(dec); err != nil {
		return nil, err
	}
	if err := r.buildEnumerators(); err != nil {
		return nil, err
	}

	switch scheme {
	case SchemeSC, SchemeFS:
		// Per-slot, per-term visitors plus one hoisted shard closure,
		// created here so the step loop allocates none. The visitors read
		// species (and the accumulator slot's force buffer) through
		// pointers, so they survive re-sorts and array growth; the shard
		// closure reads the enumerator set through r.enums, so it
		// survives the enumerator rebuild a repartition triggers.
		for s := 0; s < r.acc.Slots(); s++ {
			slot := r.acc.Slot(s)
			var vs []tuple.Visitor
			for _, term := range model.Terms {
				k := kernel.TermKernel{Term: term, Species: &r.species}
				vs = append(vs, k.Visitor(slot))
			}
			r.cellVisitors = append(r.cellVisitors, vs)
		}
		r.cellFn = func(w, s int) {
			cells := r.curCells
			lo, hi := kernel.Chunk(len(cells), r.acc.Slots(), s)
			if lo >= hi {
				return
			}
			en := r.enums[w][r.curTerm]
			en.SetKeys(r.ids)
			slot := r.acc.Slot(s)
			en.VisitCellsInto(cells[lo:hi], r.lpos, r.cellVisitors[s][r.curTerm], &slot.Enum)
		}
	case SchemeHybrid:
		r.tripShort = make([][]int32, r.workers)
		for w := range r.tripShort {
			r.tripShort[w] = make([]int32, 0, 64)
		}
		// Hoisted search emission plus per-slot evaluation visitors and
		// shard closures — the Hybrid analogue of the SC/FS visitor cache.
		r.hybEmit = func(atoms []int32, pos []geom.Vec3) {
			r.hybRaw = append(r.hybRaw, rawPair{atoms[0], atoms[1], pos[1].Sub(pos[0])})
			r.hybCounts[atoms[0]+1]++
		}
		for s := 0; s < r.acc.Slots(); s++ {
			slot := r.acc.Slot(s)
			pairK := kernel.TermKernel{Term: r.pairTerm, Species: &r.species}
			r.hybPairV = append(r.hybPairV, pairK.PairVisitor(slot, &r.lpos))
			if r.tripTerm != nil {
				tripK := kernel.TermKernel{Term: r.tripTerm, Species: &r.species}
				r.hybTripV = append(r.hybTripV, tripK.TripletVisitor(slot))
			}
		}
		// Both evaluation loops walk owned atoms in global-ID order via
		// idOrder: the shard partition chunks ID ranks, and each shard
		// visits its atoms' list entries in ID-ascending order — exactly
		// the stream ID-ordered storage produced, so forces stay
		// bit-identical under the canonical cell sort.
		r.hybPairFn = func(w, s int) {
			lo, hi := kernel.Chunk(r.nOwned, r.acc.Slots(), s)
			if lo >= hi {
				return
			}
			counts := r.hybCounts
			entries := r.hybEntries
			pv := r.hybPairV[s]
			for t := lo; t < hi; t++ {
				i := r.idOrder[t]
				idI := r.ids[i]
				for k := counts[i]; k < counts[i+1]; k++ {
					e := entries[k]
					if idI >= r.ids[e.j] {
						continue
					}
					pv(i, e.j, e.disp, e.dist)
				}
			}
		}
		r.hybTripFn = func(w, s int) {
			lo, hi := kernel.Chunk(r.nOwned, r.acc.Slots(), s)
			if lo >= hi {
				return
			}
			slot := r.acc.Slot(s)
			counts := r.hybCounts
			entries := r.hybEntries
			tv := r.hybTripV[s]
			rc3 := r.tripTerm.Cutoff()
			short := r.tripShort[w][:0]
			for t := lo; t < hi; t++ {
				j := r.idOrder[t]
				short = short[:0]
				for k := counts[j]; k < counts[j+1]; k++ {
					slot.Enum.Candidates++
					if entries[k].dist < rc3 {
						short = append(short, k)
					}
				}
				for a := 0; a < len(short); a++ {
					for b := a + 1; b < len(short); b++ {
						slot.Enum.Candidates++
						ea, eb := entries[short[a]], entries[short[b]]
						tv([3]int32{ea.j, j, eb.j}, [3]geom.Vec3{
							r.lpos[j].Add(ea.disp),
							r.lpos[j],
							r.lpos[j].Add(eb.disp),
						})
					}
				}
			}
			r.tripShort[w] = short
		}
	}
	r.idOrderStale = true
	r.idCmp = func(a, b int32) int { return cmp.Compare(r.ids[a], r.ids[b]) }
	return r, nil
}

// initGeometry derives every decomposition-dependent piece of rank
// state from dec: the owned block, the extended lattice and binning,
// the compiled exchange plan with its per-phase scratch, and the
// interior/boundary cell split. It is called once at construction and
// again by repartition when the slab boundaries move — slices are
// reset, not reallocated, where capacities allow.
func (r *rankState) initGeometry(dec *Decomp) error {
	r.dec = dec
	r.coord = dec.Cart.Coord(r.p.Rank())
	r.lo = dec.BlockLo(r.coord)
	r.hi = dec.BlockHi(r.coord)
	mLo, mHi := r.mLo, r.mHi
	t := max(mLo, mHi)
	if dec.MinBlockDim() < t {
		return fmt.Errorf("parmd: block dimension %d below halo thickness %d; use fewer ranks",
			dec.MinBlockDim(), t)
	}
	r.base = r.lo.Sub(geom.IV(mLo, mLo, mLo))
	r.plan = compileExchangePlan(dec, r.p.Rank(), mLo, mHi)
	if len(r.phaseState) != len(r.plan.Halo) {
		r.phaseState = make([]haloPhaseState, len(r.plan.Halo))
	}
	ext := r.hi.Sub(r.lo).Add(geom.IV(mLo+mHi, mLo+mHi, mLo+mHi))
	extBox := geom.NewBox(
		float64(ext.X)*dec.Lat.Side.X,
		float64(ext.Y)*dec.Lat.Side.Y,
		float64(ext.Z)*dec.Lat.Side.Z,
	)
	var err error
	r.extLat, err = cell.NewLatticeDims(extBox, ext)
	if err != nil {
		return err
	}
	r.bin = cell.NewBinning(r.extLat, nil)

	r.ownedCells = r.ownedCells[:0]
	r.interiorCells = r.interiorCells[:0]
	r.boundaryCells = r.boundaryCells[:0]
	block := r.hi.Sub(r.lo)
	for x := 0; x < block.X; x++ {
		for y := 0; y < block.Y; y++ {
			for z := 0; z < block.Z; z++ {
				c := geom.IV(x+mLo, y+mLo, z+mLo)
				r.ownedCells = append(r.ownedCells, c)
				if c.X >= r.plan.InteriorLo.X && c.X < r.plan.InteriorHi.X &&
					c.Y >= r.plan.InteriorLo.Y && c.Y < r.plan.InteriorHi.Y &&
					c.Z >= r.plan.InteriorLo.Z && c.Z < r.plan.InteriorHi.Z {
					r.interiorCells = append(r.interiorCells, c)
				} else {
					r.boundaryCells = append(r.boundaryCells, c)
				}
			}
		}
	}
	return nil
}

// buildEnumerators (re)builds the tuple enumerators, which bind the
// current binning: the per-worker SC/FS sets, or the Hybrid raw pair
// search. The evaluation closures read them through r.enums/r.pairEnum
// at call time, so a rebuild after repartition needs no closure work.
func (r *rankState) buildEnumerators() error {
	switch r.scheme {
	case SchemeSC, SchemeFS:
		fam := md.FamilySC
		if r.scheme == SchemeFS {
			fam = md.FamilyFS
		}
		if r.enums == nil {
			r.enums = make([][]*tuple.Enumerator, r.workers)
		}
		for w := 0; w < r.workers; w++ {
			set := r.enums[w][:0]
			for _, term := range r.model.Terms {
				pattern, err := fam.Pattern(term.N())
				if err != nil {
					return fmt.Errorf("parmd: %w", err)
				}
				en, err := tuple.NewBoundedEnumerator(r.bin, pattern, term.Cutoff(), tuple.DedupAuto)
				if err != nil {
					return fmt.Errorf("parmd: term n=%d: %w", term.N(), err)
				}
				set = append(set, en)
			}
			r.enums[w] = set
		}
	case SchemeHybrid:
		en, err := tuple.NewBoundedEnumerator(r.bin, core.FS(2), r.pairTerm.Cutoff(), tuple.DedupNone)
		if err != nil {
			return err
		}
		r.pairEnum = en
	}
	return nil
}

func minSide(v geom.Vec3) float64 {
	m := v.X
	if v.Y < m {
		m = v.Y
	}
	if v.Z < m {
		m = v.Z
	}
	return m
}

// adopt takes ownership of the atoms of a global configuration that
// fall in this rank's block. IDs are the configuration indices.
func (r *rankState) adopt(cfg *workload.Config) {
	for i, g := range cfg.Pos {
		gc := r.dec.Lat.CellOf(g)
		if r.ownsCell(gc) {
			r.ids = append(r.ids, int64(i))
			r.gpos = append(r.gpos, g)
			r.gcell = append(r.gcell, gc)
			r.vel = append(r.vel, cfg.Vel[i])
			r.species = append(r.species, cfg.Species[i])
		}
	}
	r.nOwned = len(r.ids)
	r.force = make([]geom.Vec3, r.nOwned)
	r.stats.OwnedAtoms = r.nOwned
}

// ownsCell reports whether a global cell is in this rank's block.
func (r *rankState) ownsCell(gc geom.IVec3) bool {
	return gc.X >= r.lo.X && gc.X < r.hi.X &&
		gc.Y >= r.lo.Y && gc.Y < r.hi.Y &&
		gc.Z >= r.lo.Z && gc.Z < r.hi.Z
}

// dropHalo truncates the atom arrays back to owned atoms only.
func (r *rankState) dropHalo() {
	r.ids = r.ids[:r.nOwned]
	r.gpos = r.gpos[:r.nOwned]
	r.gcell = r.gcell[:r.nOwned]
	r.vel = r.vel[:r.nOwned]
	r.species = r.species[:r.nOwned]
	r.force = r.force[:r.nOwned]
	r.ecell = r.ecell[:0]
	r.lpos = r.lpos[:0]
}

// deriveOwned recomputes the extended-lattice cell and local position
// of every owned atom from its owner-assigned global cell. Exact
// integer arithmetic on cells keeps rank-local binning consistent with
// the global decomposition even for atoms exactly on cell boundaries.
func (r *rankState) deriveOwned() {
	r.ecell = r.ecell[:0]
	r.lpos = r.lpos[:0]
	for i := 0; i < r.nOwned; i++ {
		ec := r.gcell[i].Sub(r.base)
		r.ecell = append(r.ecell, ec)
		r.lpos = append(r.lpos, r.localPos(r.gpos[i], 0, 0, 0))
	}
}

// localPos maps a wrapped global position into this rank's local
// frame, with kx, ky, kz the per-axis periodic image shifts (in box
// lengths) needed for halo copies.
func (r *rankState) localPos(g geom.Vec3, kx, ky, kz int) geom.Vec3 {
	L := r.dec.Lat.Box.L
	s := r.dec.Lat.Side
	return geom.V(
		g.X+float64(kx)*L.X-float64(r.base.X)*s.X,
		g.Y+float64(ky)*L.Y-float64(r.base.Y)*s.Y,
		g.Z+float64(kz)*L.Z-float64(r.base.Z)*s.Z,
	)
}

// rebin refreshes the span binning from the current ecell assignment.
// The owned segment is in canonical (cell, ID) order and every halo
// phase appends whole per-cell runs, so the storage is cell-run
// contiguous — the layout RebinSpans requires (and verifies).
func (r *rankState) rebin() error {
	if cap(r.lcell) < len(r.ecell) {
		// Headroom: the halo count fluctuates with thermal motion; an
		// exact fit would reallocate at every new high-water mark.
		r.lcell = make([]int32, len(r.ecell)+len(r.ecell)/8)
	}
	r.lcell = r.lcell[:len(r.ecell)]
	for i, ec := range r.ecell {
		r.lcell[i] = int32(r.extLat.Linear(ec))
	}
	return r.bin.RebinSpans(r.lcell)
}

// canonicalizeOwned re-sorts the owned segment into (extended-lattice
// cell, global ID) order — the canonical layout that makes per-cell
// storage contiguous. Already-ordered storage (every step a solid
// takes, except right after a migration) is detected in O(n) and left
// untouched; a real sort permutes all owned arrays through reused
// scratch, so steady-state steps allocate nothing either way.
func (r *rankState) canonicalizeOwned() {
	n := r.nOwned
	if cap(r.lcell) < n {
		r.lcell = make([]int32, n+n/8)
	}
	lc := r.lcell[:n]
	for i := 0; i < n; i++ {
		lc[i] = int32(r.extLat.Linear(r.ecell[i]))
	}
	if cell.Ordered(lc, r.ids[:n]) {
		return
	}
	perm := r.sorter.Plan(r.extLat.NumCells(), lc, r.ids[:n])
	permuteWith(&r.sortI64, r.ids, perm)
	permuteWith(&r.sortV3, r.gpos, perm)
	permuteWith(&r.sortIV, r.gcell, perm)
	permuteWith(&r.sortV3, r.vel, perm)
	permuteWith(&r.sortI32, r.species, perm)
	permuteWith(&r.sortV3, r.force, perm)
	permuteWith(&r.sortIV, r.ecell, perm)
	permuteWith(&r.sortV3, r.lpos, perm)
	r.idOrderStale = true
}

// permuteWith applies dst[k] = dst[perm[k]] over the first len(perm)
// elements, staging through the reusable scratch so the backing array
// (which visitors and captured slice headers may alias) stays put.
func permuteWith[T any](scratch *[]T, arr []T, perm []int32) {
	n := len(perm)
	if cap(*scratch) < n {
		// Headroom: n tracks the owned count, which fluctuates under
		// migration; an exact fit would reallocate at every new
		// high-water mark.
		*scratch = make([]T, n+n/8)
	}
	s := (*scratch)[:n]
	copy(s, arr[:n])
	cell.Permute(arr[:n], s, perm)
}

// ensureIDOrder rebuilds the owned-slot-by-ID-rank walk order if a
// migration or re-sort invalidated it. Hybrid evaluation is the only
// consumer; on steady-state steps this is two comparisons.
func (r *rankState) ensureIDOrder() {
	if !r.idOrderStale && len(r.idOrder) == r.nOwned {
		return
	}
	if cap(r.idOrder) < r.nOwned {
		r.idOrder = make([]int32, r.nOwned+r.nOwned/8)
	}
	r.idOrder = r.idOrder[:r.nOwned]
	for i := range r.idOrder {
		r.idOrder[i] = int32(i)
	}
	slices.SortFunc(r.idOrder, r.idCmp)
	r.idOrderStale = false
}
