package parmd

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/comm"
	"sctuple/internal/core"
	"sctuple/internal/geom"
	"sctuple/internal/kernel"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
	"sctuple/internal/potential"
	"sctuple/internal/tuple"
	"sctuple/internal/workload"
)

// computeShards is the fixed number of accumulation shards each rank's
// force evaluation is split into. The shard count — not the worker
// count — fixes both the work partition and the reduction order, so a
// rank's forces are bit-identical for every Options.Workers setting
// (and workers beyond computeShards would sit idle, so the worker
// count is capped here).
const computeShards = 16

// Message tags. Halo and force tags are offset per (axis, direction)
// so a protocol slip is caught by the tag check in comm.Recv.
// tagHealth carries the halo-mirror checksum exchange of the health
// probes, offset identically to the halo tag it audits.
const (
	tagMigrate = 100
	tagHalo    = 200
	tagForce   = 300
	tagHealth  = 400
)

// RankStats accumulates one rank's per-run operation counts — the
// inputs of the performance model (package perfmodel).
type RankStats struct {
	Steps            int
	OwnedAtoms       int   // at end of run
	SearchCandidates int64 // Eq. 12 search cost, summed over steps
	TuplesEvaluated  int64
	PairListEntries  int64 // Hybrid only
	AtomsImported    int64 // halo atoms received, summed over steps
	AtomsMigrated    int64 // atoms received in migration
	HaloMessages     int64 // halo + write-back messages received
	// Virial is this rank's share of W = Σ f·r (eV), summed over force
	// evaluations; summing it over ranks gives the global virial of
	// the serial engines' ComputeStats (per-tuple virials are
	// translation invariant, so the rank-local frames do not matter).
	Virial float64
}

// Add accumulates other into s.
func (s *RankStats) Add(o RankStats) {
	s.Steps += o.Steps
	s.SearchCandidates += o.SearchCandidates
	s.TuplesEvaluated += o.TuplesEvaluated
	s.PairListEntries += o.PairListEntries
	s.AtomsImported += o.AtomsImported
	s.AtomsMigrated += o.AtomsMigrated
	s.HaloMessages += o.HaloMessages
	s.Virial += o.Virial
}

// rankState is the complete state of one rank of a parallel run.
type rankState struct {
	p      *comm.Proc
	dec    *Decomp
	scheme Scheme
	model  *potential.Model

	coord    geom.IVec3
	lo, hi   geom.IVec3 // owned global cell range [lo, hi)
	mLo, mHi int        // halo margins in cells (per scheme)
	base     geom.IVec3 // global cell coords of the extended-lattice origin
	extLat   cell.Lattice

	// Atom storage: owned atoms in [0, nOwned), halo copies after.
	nOwned  int
	ids     []int64
	gpos    []geom.Vec3  // wrapped global positions (owned atoms only are authoritative)
	gcell   []geom.IVec3 // owner-assigned global cells (owned atoms)
	ecell   []geom.IVec3 // extended-lattice cell of every atom (owned + halo)
	lpos    []geom.Vec3  // local-frame positions (contiguous across the seam)
	vel     []geom.Vec3
	force   []geom.Vec3
	species []int32
	lcell   []int32 // linear extended cells, parallel to ecell

	bin        *cell.Binning
	ownedCells []geom.IVec3 // extended-lattice coords of owned cells
	// interiorCells/boundaryCells partition ownedCells by the compiled
	// plan's interior bounds: interior cells anchor only tuples over
	// owned atoms, so the overlapped path evaluates them while halo
	// data is still in flight; boundary cells wait for the imports.
	// Both keep ownedCells' relative order, so the two-stage dispatch
	// chunks deterministically.
	interiorCells []geom.IVec3
	boundaryCells []geom.IVec3
	// overlap selects the split-phase exchange (the default): post the
	// halo sends/receives, evaluate interior cells, complete the
	// receives, evaluate boundary cells. False runs the synchronous
	// import with the identical two-stage dispatch, so forces are
	// bit-identical between the modes.
	overlap bool
	// enums holds one enumerator set per worker goroutine (enumerators
	// are scratch and must not be shared between goroutines),
	// enums[w][term].
	enums    [][]*tuple.Enumerator
	pairEnum *tuple.Enumerator // Hybrid: FS(2) raw pair search

	// workers is the intra-rank force-evaluation parallelism (the
	// thread half of the paper's hybrid rank×thread execution); acc is
	// the sharded accumulator all force kernels write through.
	workers int
	acc     *kernel.Sharded

	// Hybrid scheme only: the model's pair/triplet terms plus the
	// hoisted directed-list and pruning scratch, reused across steps.
	pairTerm   potential.Term
	tripTerm   potential.Term
	hybCounts  []int32
	hybFill    []int32
	hybRaw     []rawPair
	hybEntries []hybridEntry
	tripShort  [][]int32 // per-worker pruning scratch

	// plan is the compiled communication schedule (peers, tags, slab
	// bounds, frame shifts); phaseState is its per-step scratch, one
	// entry per halo phase, reused across steps.
	plan       *ExchangePlan
	phaseState []haloPhaseState

	// rec records this rank's phase spans; nil (the default) keeps
	// every span site a single-branch no-op.
	rec *obs.RankRecorder

	// monitor receives this rank's invariant-probe observations (nil
	// disables them); healthStep marks the steps the halo-mirror probe
	// samples — the exchange path checks this one bool, so disabled
	// probing costs a single branch and the steady-state zero-allocation
	// guarantee of the exchange is untouched.
	monitor    *health.Monitor
	healthStep bool
	curStep    int

	stats RankStats
}

// newRankState builds the static geometry, enumerators, and kernel
// accumulator of a rank. workers ≤ 1 evaluates forces serially;
// overlap selects the split-phase halo exchange.
func newRankState(p *comm.Proc, dec *Decomp, model *potential.Model, scheme Scheme, workers int, overlap bool) (*rankState, error) {
	r := &rankState{p: p, dec: dec, scheme: scheme, model: model, overlap: overlap, curStep: -1}
	if workers < 1 {
		workers = 1
	}
	r.workers = min(workers, computeShards)
	r.acc = kernel.NewSharded(computeShards)
	r.coord = dec.Cart.Coord(p.Rank())
	r.lo = dec.BlockLo(r.coord)
	r.hi = dec.BlockHi(r.coord)

	side := minSide(dec.Lat.Side)
	mLo, mHi, err := scheme.margins(model, side)
	if err != nil {
		return nil, err
	}
	r.mLo, r.mHi = mLo, mHi
	t := max(mLo, mHi)
	if dec.MinBlockDim() < t {
		return nil, fmt.Errorf("parmd: block dimension %d below halo thickness %d; use fewer ranks",
			dec.MinBlockDim(), t)
	}
	r.base = r.lo.Sub(geom.IV(mLo, mLo, mLo))
	r.plan = compileExchangePlan(dec, p.Rank(), mLo, mHi)
	r.phaseState = make([]haloPhaseState, len(r.plan.Halo))
	ext := r.hi.Sub(r.lo).Add(geom.IV(mLo+mHi, mLo+mHi, mLo+mHi))
	extBox := geom.NewBox(
		float64(ext.X)*dec.Lat.Side.X,
		float64(ext.Y)*dec.Lat.Side.Y,
		float64(ext.Z)*dec.Lat.Side.Z,
	)
	r.extLat, err = cell.NewLatticeDims(extBox, ext)
	if err != nil {
		return nil, err
	}
	r.bin = cell.NewBinning(r.extLat, nil)

	block := r.hi.Sub(r.lo)
	for x := 0; x < block.X; x++ {
		for y := 0; y < block.Y; y++ {
			for z := 0; z < block.Z; z++ {
				c := geom.IV(x+mLo, y+mLo, z+mLo)
				r.ownedCells = append(r.ownedCells, c)
				if c.X >= r.plan.InteriorLo.X && c.X < r.plan.InteriorHi.X &&
					c.Y >= r.plan.InteriorLo.Y && c.Y < r.plan.InteriorHi.Y &&
					c.Z >= r.plan.InteriorLo.Z && c.Z < r.plan.InteriorHi.Z {
					r.interiorCells = append(r.interiorCells, c)
				} else {
					r.boundaryCells = append(r.boundaryCells, c)
				}
			}
		}
	}

	switch scheme {
	case SchemeSC, SchemeFS:
		fam := md.FamilySC
		if scheme == SchemeFS {
			fam = md.FamilyFS
		}
		for w := 0; w < r.workers; w++ {
			var set []*tuple.Enumerator
			for _, term := range model.Terms {
				pattern, err := fam.Pattern(term.N())
				if err != nil {
					return nil, fmt.Errorf("parmd: %w", err)
				}
				en, err := tuple.NewBoundedEnumerator(r.bin, pattern, term.Cutoff(), tuple.DedupAuto)
				if err != nil {
					return nil, fmt.Errorf("parmd: term n=%d: %w", term.N(), err)
				}
				set = append(set, en)
			}
			r.enums = append(r.enums, set)
		}
	case SchemeHybrid:
		// One raw (both orientations) full-shell pair search; pair and
		// triplet terms are both served from the resulting list.
		for _, term := range model.Terms {
			switch term.N() {
			case 2:
				r.pairTerm = term
			case 3:
				r.tripTerm = term
			default:
				return nil, fmt.Errorf("parmd: Hybrid-MD cannot handle n=%d terms", term.N())
			}
		}
		if r.pairTerm == nil {
			return nil, fmt.Errorf("parmd: Hybrid-MD needs a pair term")
		}
		en, err := tuple.NewBoundedEnumerator(r.bin, core.FS(2), r.pairTerm.Cutoff(), tuple.DedupNone)
		if err != nil {
			return nil, err
		}
		r.pairEnum = en
		r.tripShort = make([][]int32, r.workers)
		for w := range r.tripShort {
			r.tripShort[w] = make([]int32, 0, 64)
		}
	}
	return r, nil
}

func minSide(v geom.Vec3) float64 {
	m := v.X
	if v.Y < m {
		m = v.Y
	}
	if v.Z < m {
		m = v.Z
	}
	return m
}

// adopt takes ownership of the atoms of a global configuration that
// fall in this rank's block. IDs are the configuration indices.
func (r *rankState) adopt(cfg *workload.Config) {
	for i, g := range cfg.Pos {
		gc := r.dec.Lat.CellOf(g)
		if r.ownsCell(gc) {
			r.ids = append(r.ids, int64(i))
			r.gpos = append(r.gpos, g)
			r.gcell = append(r.gcell, gc)
			r.vel = append(r.vel, cfg.Vel[i])
			r.species = append(r.species, cfg.Species[i])
		}
	}
	r.nOwned = len(r.ids)
	r.force = make([]geom.Vec3, r.nOwned)
	r.stats.OwnedAtoms = r.nOwned
}

// ownsCell reports whether a global cell is in this rank's block.
func (r *rankState) ownsCell(gc geom.IVec3) bool {
	return gc.X >= r.lo.X && gc.X < r.hi.X &&
		gc.Y >= r.lo.Y && gc.Y < r.hi.Y &&
		gc.Z >= r.lo.Z && gc.Z < r.hi.Z
}

// dropHalo truncates the atom arrays back to owned atoms only.
func (r *rankState) dropHalo() {
	r.ids = r.ids[:r.nOwned]
	r.gpos = r.gpos[:r.nOwned]
	r.gcell = r.gcell[:r.nOwned]
	r.vel = r.vel[:r.nOwned]
	r.species = r.species[:r.nOwned]
	r.force = r.force[:r.nOwned]
	r.ecell = r.ecell[:0]
	r.lpos = r.lpos[:0]
}

// deriveOwned recomputes the extended-lattice cell and local position
// of every owned atom from its owner-assigned global cell. Exact
// integer arithmetic on cells keeps rank-local binning consistent with
// the global decomposition even for atoms exactly on cell boundaries.
func (r *rankState) deriveOwned() {
	r.ecell = r.ecell[:0]
	r.lpos = r.lpos[:0]
	for i := 0; i < r.nOwned; i++ {
		ec := r.gcell[i].Sub(r.base)
		r.ecell = append(r.ecell, ec)
		r.lpos = append(r.lpos, r.localPos(r.gpos[i], 0, 0, 0))
	}
}

// localPos maps a wrapped global position into this rank's local
// frame, with kx, ky, kz the per-axis periodic image shifts (in box
// lengths) needed for halo copies.
func (r *rankState) localPos(g geom.Vec3, kx, ky, kz int) geom.Vec3 {
	L := r.dec.Lat.Box.L
	s := r.dec.Lat.Side
	return geom.V(
		g.X+float64(kx)*L.X-float64(r.base.X)*s.X,
		g.Y+float64(ky)*L.Y-float64(r.base.Y)*s.Y,
		g.Z+float64(kz)*L.Z-float64(r.base.Z)*s.Z,
	)
}

// rebin refreshes the CSR binning from the current ecell assignment.
func (r *rankState) rebin() {
	if cap(r.lcell) < len(r.ecell) {
		r.lcell = make([]int32, len(r.ecell))
	}
	r.lcell = r.lcell[:len(r.ecell)]
	for i, ec := range r.ecell {
		r.lcell[i] = int32(r.extLat.Linear(ec))
	}
	r.bin.RebinCells(r.lcell)
}
