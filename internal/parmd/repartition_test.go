package parmd

import (
	"math"
	"sort"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/workload"
)

// repartSnapshot is one atom's state gathered after the forced
// repartition of world A — the fixed physics state world B is built at.
type repartSnapshot struct {
	id      int64
	pos     geom.Vec3
	vel     geom.Vec3
	force   geom.Vec3
	species int32
}

// TestRepartitionBitIdentity is the golden A/B guarantee of the
// adaptive balancer: repartitioning a running world onto new slab
// boundaries, then evaluating forces, gives bit-identical forces to a
// world freshly constructed on those boundaries at the same physics
// state. Because the canonical (cell, ID) storage order is a pure
// function of state and boundaries, the repartitioned rank state is
// indistinguishable from the fresh one — for every scheme, a 1-D and a
// 3-D topology, and both exchange modes.
func TestRepartitionBitIdentity(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 9)
	masses := make([]float64, len(model.Species))
	for i, s := range model.Species {
		masses[i] = s.Mass
	}
	const dt, steps = 0.5, 2

	topos := []geom.IVec3{{X: 2, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}}
	for _, scheme := range Schemes() {
		for _, topo := range topos {
			for _, overlap := range []bool{true, false} {
				cart, err := comm.NewCartDims(topo)
				if err != nil {
					t.Fatal(err)
				}
				decA, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
				if err != nil {
					t.Fatal(err)
				}
				// Shift every split axis's interior boundary one cell low —
				// a genuine multi-axis repartition on the 3-D topology.
				var starts [3][]int
				for axis := 0; axis < 3; axis++ {
					starts[axis] = decA.Starts(axis)
					if topo.Comp(axis) > 1 {
						starts[axis][1]--
					}
				}
				decB, err := NewDecompStarts(decA.Lat, cart, starts)
				if err != nil {
					t.Fatal(err)
				}

				// World A: run under decA, force the repartition to decB
				// mid-run, then evaluate forces and snapshot everything.
				snapsA := make([][]repartSnapshot, cart.Size())
				world := comm.NewWorld(cart.Size())
				defineTagClasses(world)
				err = world.Run(func(p *comm.Proc) error {
					r, err := newRankState(p, decA, model, scheme, 1, overlap)
					if err != nil {
						return err
					}
					r.adopt(cfg)
					if _, err := r.computeForces(); err != nil {
						return err
					}
					for step := 0; step < steps; step++ {
						half := 0.5 * dt * md.ForceToAccel
						for i := 0; i < r.nOwned; i++ {
							r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
						}
						for i := 0; i < r.nOwned; i++ {
							r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(dt))
						}
						if err := r.migrate(); err != nil {
							return err
						}
						if _, err := r.computeForces(); err != nil {
							return err
						}
						for i := 0; i < r.nOwned; i++ {
							r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
						}
					}
					if err := r.repartition(decB); err != nil {
						return err
					}
					// The owned blocks must now be decB's.
					co := cart.Coord(p.Rank())
					if r.lo != decB.BlockLo(co) || r.hi != decB.BlockHi(co) {
						t.Errorf("rank %d block [%v,%v), want [%v,%v)",
							p.Rank(), r.lo, r.hi, decB.BlockLo(co), decB.BlockHi(co))
					}
					if _, err := r.computeForces(); err != nil {
						return err
					}
					snap := make([]repartSnapshot, r.nOwned)
					for i := 0; i < r.nOwned; i++ {
						snap[i] = repartSnapshot{
							id:      r.ids[i],
							pos:     decB.Lat.Box.Wrap(r.gpos[i]),
							vel:     r.vel[i],
							force:   r.force[i],
							species: r.species[i],
						}
						// Every owned atom must sit in this rank's new block.
						if !r.ownsCell(r.gcell[i]) {
							t.Errorf("rank %d: atom %d in cell %v outside block after repartition",
								p.Rank(), r.ids[i], r.gcell[i])
						}
					}
					snapsA[p.Rank()] = snap
					return nil
				})
				if err != nil {
					t.Fatalf("%v topo %v overlap %v: world A: %v", scheme, topo, overlap, err)
				}

				var all []repartSnapshot
				for _, s := range snapsA {
					all = append(all, s...)
				}
				if len(all) != cfg.N() {
					t.Fatalf("%v topo %v: gathered %d atoms, want %d", scheme, topo, len(all), cfg.N())
				}
				sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

				// World B: fresh construction directly on decB at the
				// snapshot state.
				cfgB := &workload.Config{
					Box:     cfg.Box,
					Pos:     make([]geom.Vec3, len(all)),
					Vel:     make([]geom.Vec3, len(all)),
					Species: make([]int32, len(all)),
				}
				for i, a := range all {
					if a.id != int64(i) {
						t.Fatalf("%v topo %v: atom ID %d at position %d", scheme, topo, a.id, i)
					}
					cfgB.Pos[i] = a.pos
					cfgB.Vel[i] = a.vel
					cfgB.Species[i] = a.species
				}
				forcesB := make([][]repartSnapshot, cart.Size())
				world2 := comm.NewWorld(cart.Size())
				defineTagClasses(world2)
				err = world2.Run(func(p *comm.Proc) error {
					r, err := newRankState(p, decB, model, scheme, 1, overlap)
					if err != nil {
						return err
					}
					r.adopt(cfgB)
					if _, err := r.computeForces(); err != nil {
						return err
					}
					snap := make([]repartSnapshot, r.nOwned)
					for i := 0; i < r.nOwned; i++ {
						snap[i] = repartSnapshot{id: r.ids[i], force: r.force[i]}
					}
					forcesB[p.Rank()] = snap
					return nil
				})
				if err != nil {
					t.Fatalf("%v topo %v overlap %v: world B: %v", scheme, topo, overlap, err)
				}

				want := make([]geom.Vec3, len(all))
				for _, s := range forcesB {
					for _, a := range s {
						want[a.id] = a.force
					}
				}
				bad := 0
				for i, a := range all {
					if math.Float64bits(a.force.X) != math.Float64bits(want[i].X) ||
						math.Float64bits(a.force.Y) != math.Float64bits(want[i].Y) ||
						math.Float64bits(a.force.Z) != math.Float64bits(want[i].Z) {
						if bad == 0 {
							t.Errorf("%v topo %v overlap %v: atom %d force %v after repartition, %v fresh",
								scheme, topo, overlap, i, a.force, want[i])
						}
						bad++
					}
				}
				if bad > 0 {
					t.Errorf("%v topo %v overlap %v: %d/%d atoms differ bitwise",
						scheme, topo, overlap, bad, len(all))
				}
			}
		}
	}
}
