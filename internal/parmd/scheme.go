package parmd

import (
	"fmt"
	"math"

	"sctuple/internal/potential"
)

// Scheme selects which of the paper's three parallel codes a run uses.
type Scheme int

// The three codes benchmarked in §5.
const (
	// SchemeSC is SC-MD: shift-collapse patterns, octant import from 7
	// neighbor ranks in 3 forwarded communication steps.
	SchemeSC Scheme = iota
	// SchemeFS is FS-MD: full-shell patterns, 26-neighbor import.
	SchemeFS
	// SchemeHybrid is Hybrid-MD: full-shell pair search building a
	// Verlet pair list; triplets pruned from the list. 26-neighbor
	// import.
	SchemeHybrid
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeSC:
		return "SC-MD"
	case SchemeFS:
		return "FS-MD"
	case SchemeHybrid:
		return "Hybrid-MD"
	}
	return "?"
}

// Schemes lists all three codes, in the paper's plotting order.
func Schemes() []Scheme { return []Scheme{SchemeSC, SchemeFS, SchemeHybrid} }

// haloReach returns the halo thickness (in cells) a model's terms
// physically require on a lattice with the given minimum cell side: a
// chain of n-1 links each below r_cut-n extends at most (n-1)·r_cut-n
// along an axis, never past ceil of that over the cell side (and never
// past the pattern reach n-1). This is the slab thickness actually
// imported — e.g. one cell for the silica model (r_cut3 < r_cut2, §5),
// even though the n = 3 pattern formally spans two cells.
func haloReach(model *potential.Model, side float64) int {
	t := 0
	for _, term := range model.Terms {
		span := float64(term.N()-1) * term.Cutoff()
		k := int(math.Ceil(span/side - 1e-12))
		if k > term.N()-1 {
			k = term.N() - 1
		}
		if k < 1 {
			k = 1
		}
		if k > t {
			t = k
		}
	}
	return t
}

// margins returns the halo margin (in cells) on the low and high side
// of every axis for a scheme.
//
// SC-MD imports only the upper-corner octant (owner-compute relaxed,
// §4.2), restricted to the physically reachable slab — one cell for
// the silica workload, since r_cut3 < r_cut2/2 keeps triplet chains
// inside the first neighbor cell layer.
//
// FS-MD imports the full coverage of its uncollapsed pattern: a shell
// of thickness n_max − 1 on every side ((l+2(n-1))³ − l³, §4.3.1 and
// Eq. 33's full-shell counterpart), exactly as the production code
// does; and per §5, Hybrid-MD inherits FS-MD's import volume
// unchanged — the pair list trims its triplet search, not its halo.
func (s Scheme) margins(model *potential.Model, side float64) (lo, hi int, err error) {
	switch s {
	case SchemeSC:
		t := haloReach(model, side)
		return 0, t, nil
	case SchemeFS, SchemeHybrid:
		t := model.MaxN() - 1
		return t, t, nil
	}
	return 0, 0, fmt.Errorf("parmd: unknown scheme %d", s)
}
