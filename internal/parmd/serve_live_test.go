package parmd

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
	"sctuple/internal/obs/serve"
)

// TestLiveTelemetryServer is the end-to-end acceptance check of the
// telemetry server: a 2-rank run wired exactly like scmd -serve
// (registry + recorder + health monitor + step tee) answers /metrics
// (valid, parser-checked Prometheus text with the labeled comm
// families and parmd_imbalance), /healthz, /phases, and a streaming
// /steps subscriber — all while the simulation is still stepping.
// Under -race this also proves the endpoint reads are data-race-free
// against the recording ranks.
func TestLiveTelemetryServer(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 7)
	cart := comm.NewCart(2)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(2, 4096)
	mon := health.New(health.Config{Every: 4})
	tee := obs.NewStepTee()
	srv := &serve.Server{
		Registry: reg,
		Recorder: rec,
		Health:   mon,
		Steps:    tee,
		Info:     map[string]string{"model": model.Name},
	}
	handler := srv.Handler()
	get := func(target string, hdr ...string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		for i := 0; i+1 < len(hdr); i += 2 {
			req.Header.Set(hdr[i], hdr[i+1])
		}
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		return rr
	}

	steps := 60
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	var res *Result
	go func() {
		defer wg.Done()
		defer srv.Finish()
		res, runErr = Run(cfg, model, Options{
			Scheme: SchemeSC, Cart: cart, Dt: 0.5, Steps: steps,
			Recorder: rec, Metrics: reg, Health: mon,
			StepLog: obs.NewStepWriterTee(nil, tee),
		})
	}()

	// Wait until the run is visibly stepping (live registry counts),
	// then scrape every endpoint mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("run never started stepping")
		}
		if reg.Snapshot().Counters["parmd.steps"] > 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	metrics := get("/metrics")
	if metrics.Code != http.StatusOK {
		t.Fatalf("/metrics mid-run: status %d", metrics.Code)
	}
	body := metrics.Body.String()
	for _, want := range []string{
		"parmd_imbalance", `comm_bytes{class="halo"}`, "parmd_steps",
		"# TYPE comm_bytes counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("mid-run /metrics missing %q", want)
		}
	}
	// Every line must be a TYPE or sample line — the same shape the
	// serve package's exposition parser pins in detail.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// ok and warn both map to 2xx — a liveness probe must keep passing
	// while the run is healthy enough to continue.
	if rr := get("/healthz"); rr.Code/100 != 2 {
		t.Errorf("/healthz mid-run: status %d body %s", rr.Code, rr.Body.String())
	}
	var phases struct {
		Ranks  int `json:"ranks"`
		Phases []struct {
			Phase string `json:"phase"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(get("/phases").Body.Bytes(), &phases); err != nil {
		t.Fatalf("/phases mid-run: %v", err)
	}
	if phases.Ranks != 2 || len(phases.Phases) == 0 {
		t.Errorf("/phases mid-run: ranks %d, %d phases", phases.Ranks, len(phases.Phases))
	}

	// A streaming subscriber joining mid-run sees contiguous per-rank
	// step records until the run finishes and the stream ends cleanly.
	stream := get("/steps?buf=4096")
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if stream.Code != http.StatusOK {
		t.Fatalf("/steps: status %d", stream.Code)
	}
	lastByRank := map[int]int{}
	n := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var rec obs.StepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if last, seen := lastByRank[rec.Rank]; seen && rec.Step != last+1 {
			t.Fatalf("rank %d: step %d after %d (stream not contiguous)", rec.Rank, rec.Step, last)
		}
		lastByRank[rec.Rank] = rec.Step
		if rec.Counters["steps"] != 1 {
			t.Fatalf("mid-run join got cumulative counters, not per-step deltas: %v", rec.Counters)
		}
		n++
	}
	if n == 0 {
		t.Fatal("streaming subscriber saw no step records")
	}
	for rank, last := range lastByRank {
		if last != steps-1 {
			t.Errorf("rank %d stream ended at step %d, want %d", rank, last, steps-1)
		}
	}

	// After the run, the exact end-of-run reconciliation has replaced
	// the live approximations: the exposition totals must match the
	// registry snapshot that publishMetrics produced.
	final := reg.Snapshot()
	// parmd.steps counts force evaluations (the pre-loop setup
	// evaluation plus one per step); the reconciled registry must match
	// the Result's reduction exactly, not the live approximation.
	if got, want := final.Counters["parmd.steps"], int64(res.MaxRank().Steps); got != want {
		t.Errorf("final parmd.steps = %d, want %d (live adds not reconciled)", got, want)
	}
	if _, ok := final.Gauges["parmd.imbalance"]; !ok {
		t.Error("parmd.imbalance missing from final registry")
	}
}

// TestPublishMetricsNamesConsistent pins the name mapping between
// publishMetrics' registry exports and the obs name helpers: every
// comm/phase/health family the run registers must be recognized by
// obs.SplitLabeled (so the exposition lifts its middle segment into a
// label), and the per-class JSONL step-record keys must be the
// flattened form of the same registry names.
func TestPublishMetricsNamesConsistent(t *testing.T) {
	res := &Result{
		RankStats: []RankStats{{Steps: 3, OwnedAtoms: 10, ForceNs: 100}, {Steps: 3, OwnedAtoms: 12, ForceNs: 200}},
		CommByClass: map[string]comm.Stats{
			"halo": {Messages: 4, Bytes: 256}, "migrate": {Messages: 1, Bytes: 16},
		},
		Phases: []obs.PhaseStat{{Phase: "force:interior", MaxNs: 1e6, MeanNs: 1e6, PerRankNs: []int64{1e6, 1e6}}},
		Wall:   time.Second,
	}
	reg := obs.NewRegistry()
	publishMetrics(reg, res)
	snap := reg.Snapshot()

	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for _, name := range names {
		head, _, _ := strings.Cut(name, ".")
		switch head {
		case "comm", "phase", "health":
			if name == "phase.critical_path_fraction" {
				continue // two segments: flat by design
			}
			if _, _, _, ok := obs.SplitLabeled(name); !ok {
				t.Errorf("registry name %q not recognized by SplitLabeled; exposition will flatten it", name)
			}
		}
	}
	if _, ok := snap.Gauges["parmd.imbalance"]; !ok {
		t.Error("publishMetrics did not set parmd.imbalance without a balancer")
	}
	if _, ok := snap.Counters["parmd.repartitions"]; !ok {
		t.Error("publishMetrics did not set parmd.repartitions without a balancer")
	}
	for class := range res.CommByClass {
		regName := obs.CommClassMetric(class, "bytes")
		if _, ok := snap.Counters[regName]; !ok {
			t.Errorf("comm class %q bytes missing under %q", class, regName)
		}
		if got, want := obs.CommClassKey(class, "bytes"), obs.PromName(regName); got != want {
			t.Errorf("JSONL key %q != flattened registry name %q", got, want)
		}
	}
}

// TestPublishMetricsIdempotent: publishMetrics after a run whose live
// publisher already fed the registry must leave the same totals as on
// a fresh registry — Store semantics, not double-counted Adds.
func TestPublishMetricsIdempotent(t *testing.T) {
	res := &Result{
		RankStats:   []RankStats{{Steps: 5, TuplesEvaluated: 100}},
		CommByClass: map[string]comm.Stats{"halo": {Messages: 2, Bytes: 64}},
	}
	reg := obs.NewRegistry()
	// Simulate live approximations accumulated during the run.
	reg.Counter("parmd.steps").Add(4)
	reg.Counter("parmd.tuples_evaluated").Add(83)
	reg.Counter(obs.CommClassMetric("halo", "bytes")).Add(48)
	publishMetrics(reg, res)
	snap := reg.Snapshot()
	if got := snap.Counters["parmd.steps"]; got != 5 {
		t.Errorf("parmd.steps = %d, want exact 5", got)
	}
	if got := snap.Counters["parmd.tuples_evaluated"]; got != 100 {
		t.Errorf("parmd.tuples_evaluated = %d, want exact 100", got)
	}
	if got := snap.Counters["comm.halo.bytes"]; got != 64 {
		t.Errorf("comm.halo.bytes = %d, want exact 64", got)
	}
}
