package parmd

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/obs/health"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Options configures a parallel run.
type Options struct {
	Scheme Scheme
	Cart   comm.Cart // process topology; comm.NewCart(p) picks one
	Dt     float64   // fs
	Steps  int
	// Workers is the number of intra-rank force-evaluation goroutines
	// (the thread half of the paper's hybrid rank×thread execution);
	// ≤ 1 evaluates serially. Forces and energies are bit-identical for
	// every Workers setting: the fixed shard count of the kernel
	// accumulator, not the worker count, decides both the work
	// partition and the reduction order.
	Workers int
	// TraceEnergies records global PE/KE each step (costs two
	// reductions per step).
	TraceEnergies bool
	// Recorder, when non-nil, records per-rank phase spans (halo, bin,
	// per-term force, write-back, integrate, migrate, reduce) into its
	// ring buffers for trace export and imbalance analysis. nil keeps
	// the hot path span-free (one branch per span site, no allocation,
	// forces bit-identical either way).
	Recorder *obs.Recorder
	// StepLog, when non-nil, receives one JSONL record per rank per
	// step: wall time, the per-phase time decomposition (with Recorder
	// set), and the step's counter deltas.
	StepLog *obs.StepWriter
	// Metrics, when non-nil, absorbs the run's counters at completion —
	// summed RankStats, per-class comm traffic and receive-wait time,
	// per-phase imbalance gauges — and accumulates a per-step wall-time
	// histogram (parmd.step_ms) during the run.
	Metrics *obs.Registry
	// Balance, when non-nil, turns on telemetry-driven adaptive
	// repartitioning: every Balance.Every steps the ranks compare their
	// measured force-work time, and past Balance.Threshold the slab
	// boundaries of the decomposition move toward equal load (the
	// exchange plans recompile and whole cell slabs migrate to their new
	// owners mid-run). Off (nil) by default: a balanced run's
	// repartition points depend on wall-clock measurements, so
	// run-to-run trajectories are no longer bitwise reproducible.
	Balance *Balancer
	// Health, when non-nil, runs the sampled invariant probes inside
	// the step loop (energy drift, momentum, atom-count conservation,
	// halo mirror checksums, SC-vs-FS tuple parity) at the monitor's
	// cadence. nil keeps every probe site a single-branch no-op, so the
	// hot path is unchanged — including its zero-allocation guarantee.
	Health *health.Monitor
	// Log receives structured run-lifecycle events (run start/end, rank
	// failures); nil disables them.
	Log *obs.Logger
	// MeasureAllocs measures the heap allocations of the step loop:
	// ranks synchronize on a barrier before the first step and after
	// the last, and rank 0 reads the process-wide malloc counter at
	// both points. The per-step quotient lands in Result.StepAllocs.
	// Because every rank runs in one process here, the figure covers
	// the whole world's steady-state step loop — integration,
	// migration, binning and canonical sort, halo exchange, force
	// evaluation, write-back, and reductions. (In Worker mode the
	// counter is per OS process, so the figure covers rank 0 only.)
	MeasureAllocs bool
	// NoOverlap disables the overlapped (split-phase) halo exchange and
	// completes every receive before force evaluation begins. Both
	// modes run the identical interior/boundary two-stage dispatch, so
	// forces and energies are bit-identical either way; the flag exists
	// for A/B latency measurement (bench.Validate's synchronous wait
	// baseline) and debugging. The overlapped path is the default.
	NoOverlap bool
	// Transport, when non-nil, replaces the world's default channel
	// transport — the seam fault injection uses to exercise the
	// malformed-message and abort paths (see FaultTransport and scmd's
	// -fault flag), and the socket fabric plugs genuinely distributed
	// execution into (see RunSocket and scmd -transport socket).
	Transport comm.Transport
	// Worker, when non-nil, marks this process as a single rank of a
	// multi-process world: Run executes only Worker.Rank over the
	// (required) Transport, gathers the final state and per-rank
	// counters to rank 0 over the wire, and returns a Result whose
	// global fields (Final, Forces, RankStats, Comm) are populated on
	// rank 0 only. nil (the default) runs every rank in-process.
	Worker *WorkerRank
}

// WorkerRank identifies the one rank a worker process executes.
type WorkerRank struct {
	Rank int
}

// StepEnergy is one global energy sample.
type StepEnergy struct {
	Potential float64
	Kinetic   float64
}

// Total returns PE + KE.
func (e StepEnergy) Total() float64 { return e.Potential + e.Kinetic }

// Result collects the outcome of a parallel run.
type Result struct {
	// Final holds the gathered end state, ordered by global atom ID,
	// positions wrapped into the global box.
	Final *workload.Config
	// Forces holds the final per-atom forces, ordered by global ID.
	Forces []geom.Vec3
	// InitialPotential is the potential energy before the first step.
	InitialPotential float64
	// Energies holds one entry per step when TraceEnergies is set.
	Energies []StepEnergy
	// RankStats holds each rank's accumulated counters.
	RankStats []RankStats
	// Comm summarizes all communication of the run.
	Comm comm.Stats
	// CommByClass breaks Comm down by traffic class: "halo" (import),
	// "force" (write-back), "migrate", "collective" (reductions and
	// barriers), and "other". The classes sum to Comm. Each class's
	// Wait is the receive-blocked time the runtime accumulated for it.
	CommByClass map[string]comm.Stats
	// Phases holds the per-phase time decomposition across ranks
	// (max/mean/imbalance) when Options.Recorder was set.
	Phases []obs.PhaseStat
	// Health summarizes the invariant-probe outcomes when
	// Options.Health was set (empty otherwise).
	Health health.Summary
	// BalanceChecks, Repartitions, and Imbalance summarize the adaptive
	// balancer when Options.Balance was set: the number of collective
	// balance checks, how many of them repartitioned the decomposition,
	// and the force-phase imbalance (max/mean over ranks) measured at
	// the last check. Zero when the balancer was off; ForceImbalance()
	// gives the whole-run measure either way.
	BalanceChecks int
	Repartitions  int
	Imbalance     float64
	// StepAllocs is the mean number of heap allocations per step across
	// the whole step loop (all ranks, whole process), measured when
	// Options.MeasureAllocs is set with Steps > 0; -1 otherwise.
	StepAllocs float64
	// Wall is the wall-clock time of the SPMD section of the run.
	Wall time.Duration
}

// Run executes a complete parallel MD run of the given configuration
// and model over an in-process rank world, and gathers the final
// state. The decomposition's cell lattice uses the model's largest
// cutoff as minimum cell side, exactly like the serial engines, so
// serial and parallel runs are comparable.
func Run(cfg *workload.Config, model *potential.Model, opt Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !(opt.Dt > 0) && opt.Steps > 0 {
		return nil, fmt.Errorf("parmd: time step %g must be positive", opt.Dt)
	}
	if opt.Cart.Size() == 0 {
		return nil, fmt.Errorf("parmd: empty process topology")
	}
	dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), opt.Cart)
	if err != nil {
		return nil, err
	}
	// The global lattice must be large enough that a chain can never
	// close onto a periodic image of its own first atom.
	need := 3
	for _, t := range model.Terms {
		if t.N() > need {
			need = t.N()
		}
	}
	for axis := 0; axis < 3; axis++ {
		if dec.Lat.Dims.Comp(axis) < need {
			return nil, fmt.Errorf("parmd: global lattice %v needs ≥ %d cells per axis", dec.Lat.Dims, need)
		}
	}

	var world *comm.World
	switch {
	case opt.Worker != nil:
		if opt.Transport == nil {
			return nil, fmt.Errorf("parmd: Worker mode requires an explicit Transport")
		}
		if opt.Worker.Rank < 0 || opt.Worker.Rank >= opt.Cart.Size() {
			return nil, fmt.Errorf("parmd: worker rank %d outside topology of %d ranks",
				opt.Worker.Rank, opt.Cart.Size())
		}
		world = comm.NewWorldRank(opt.Cart.Size(), opt.Worker.Rank, opt.Transport)
	case opt.Transport != nil:
		world = comm.NewWorldTransport(opt.Cart.Size(), opt.Transport)
	default:
		world = comm.NewWorld(opt.Cart.Size())
	}
	defineTagClasses(world)
	world.SetLogger(opt.Log)
	opt.Log.Info("parmd run start",
		"scheme", opt.Scheme.String(), "ranks", world.Size(), "workers", opt.Workers,
		"steps", opt.Steps, "dt_fs", opt.Dt, "atoms", cfg.N())
	res := &Result{RankStats: make([]RankStats, world.Size()), StepAllocs: -1}
	if opt.TraceEnergies {
		res.Energies = make([]StepEnergy, opt.Steps)
	}
	var stepHist *obs.Histogram
	if opt.Metrics != nil {
		stepHist = opt.Metrics.Histogram("parmd.step_ms", obs.ExpBuckets(0.01, 2, 18))
	}
	finals := make([][]finalAtom, world.Size())

	wallStart := time.Now()
	err = world.Run(func(p *comm.Proc) (ferr error) {
		// Failures leave this closure as typed *RankError values with
		// rank/step/phase context: exchange errors arrive pre-wrapped,
		// everything else (setup, health aborts, the comm layer's abort
		// sentinel unwinding a receive blocked on a failed peer) is
		// wrapped here. World.Run then logs each failing rank through
		// Options.Log and joins every rank's error.
		var r *rankState
		defer func() {
			if rec := recover(); rec != nil {
				if !comm.IsAbort(rec) {
					panic(rec)
				}
				// AbortError keeps the fabric's typed cause (peer death,
				// protocol desync) instead of flattening to the sentinel.
				ferr = comm.AbortError(rec)
			}
			if ferr != nil {
				var re *RankError
				if !errors.As(ferr, &re) {
					step := -1
					if r != nil {
						step = r.curStep
					}
					ferr = &RankError{Rank: p.Rank(), Step: step, Phase: "run", Err: ferr}
				}
			}
		}()
		var err error
		r, err = newRankState(p, dec, model, opt.Scheme, opt.Workers, !opt.NoOverlap)
		if err != nil {
			return err
		}
		r.rec = opt.Recorder.Rank(p.Rank())
		r.monitor = opt.Health
		if opt.Metrics != nil {
			r.live = newLiveMetrics(opt.Metrics, p, opt.Recorder)
		}
		if opt.Balance != nil {
			r.initBalance(opt.Balance)
		}
		r.adopt(cfg)

		masses := make([]float64, len(model.Species))
		for i, s := range model.Species {
			masses[i] = s.Mass
		}

		r.rec.SetStep(-1) // spans before the loop tag the initial evaluation
		pe, err := r.computeForces()
		if err != nil {
			return err
		}
		sp := r.rec.StartSpan(phaseReduce)
		totalPE := p.AllReduceSum(pe)
		sp.End()
		if p.Rank() == 0 {
			res.InitialPotential = totalPE
		}

		// Per-step emission scratch: the emitter holds the previous
		// cumulative phase times and counters, subtracted each step to
		// get the step's own share. wallStart is the t_ns epoch, so
		// every rank's timestamps share one clock.
		logging := opt.StepLog != nil || stepHist != nil
		var em *stepEmitter
		if opt.StepLog != nil {
			em = newStepEmitter(opt.StepLog, r, p, wallStart)
		}

		if opt.Health.ParityEnabled() {
			r.prewarmParity(cfg.N())
		}

		// The socket fabric stamps outgoing frames with the current
		// step so wire captures and failure reports carry simulation
		// time; the channel transport doesn't implement the marker, so
		// the per-step branch below is a nil check in-process.
		marker, _ := opt.Transport.(comm.StepMarker)

		var mallocs0 uint64
		if opt.MeasureAllocs && opt.Steps > 0 {
			p.Barrier()
			if p.Rank() == 0 {
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				mallocs0 = m.Mallocs
			}
			p.Barrier() // no rank steps (and allocates) before the read
		}

		for step := 0; step < opt.Steps; step++ {
			var stepStart time.Time
			if logging {
				stepStart = time.Now()
			}
			r.rec.SetStep(step)
			r.curStep = step
			if marker != nil {
				marker.MarkStep(step)
			}
			r.healthStep = opt.Health.Due(step)
			// Velocity Verlet: half kick, drift, migrate, forces,
			// half kick.
			sp := r.rec.StartSpan(phaseIntegrate)
			half := 0.5 * opt.Dt * md.ForceToAccel
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			for i := 0; i < r.nOwned; i++ {
				r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(opt.Dt))
			}
			sp.End()
			if err := r.migrate(); err != nil {
				return err
			}
			// Balance checks sit between migration and the force
			// evaluation: a repartition's slab handoff reuses the migration
			// wire format (no forces carried), and the evaluation right
			// after recomputes them on the new owners.
			if r.bal != nil && step > 0 && step%opt.Balance.every() == 0 {
				sp := r.rec.StartSpan(phaseBalance)
				_, err := r.balanceCheck()
				sp.End()
				if err != nil {
					return r.rankErr("balance", err)
				}
			}
			pe, err := r.computeForces()
			if err != nil {
				return err
			}
			sp = r.rec.StartSpan(phaseIntegrate)
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			sp.End()
			if opt.TraceEnergies {
				ke := 0.0
				for i := 0; i < r.nOwned; i++ {
					ke += 0.5 * masses[r.species[i]] * r.vel[i].Norm2()
				}
				ke /= md.ForceToAccel
				sp = r.rec.StartSpan(phaseReduce)
				gpe := p.AllReduceSum(pe)
				gke := p.AllReduceSum(ke)
				sp.End()
				if p.Rank() == 0 {
					res.Energies[step] = StepEnergy{Potential: gpe, Kinetic: gke}
				}
			}
			if r.healthStep {
				if err := r.runHealthProbes(step, pe, masses, int64(cfg.N())); err != nil {
					return r.rankErr("health", err)
				}
			}
			if logging {
				wall := time.Since(stepStart)
				if stepHist != nil {
					stepHist.Observe(wall.Seconds() * 1e3)
				}
				if opt.StepLog.Active() {
					em.emit(step, wall)
				} else if em != nil {
					// No sink, no file, no live subscriber: skip the record
					// build but keep the delta scratch current, so a /steps
					// subscriber joining mid-run sees per-step values from
					// its first full step.
					em.advance()
				}
			}
			if r.live != nil {
				r.live.publish(r, p)
			}
		}

		if opt.MeasureAllocs && opt.Steps > 0 {
			p.Barrier()
			if p.Rank() == 0 {
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				res.StepAllocs = float64(m.Mallocs-mallocs0) / float64(opt.Steps)
			}
			p.Barrier() // no rank gathers (and allocates) before the read
		}

		// Gather final state. In-process, the collection is
		// shared-memory (the comm counters only meter the simulation's
		// own traffic); in worker mode the same records travel the wire
		// to rank 0, with the per-rank counters snapshotted first so
		// the gather's own traffic isn't counted either way.
		fin := make([]finalAtom, r.nOwned)
		for i := 0; i < r.nOwned; i++ {
			fin[i] = finalAtom{
				id:      r.ids[i],
				pos:     dec.Lat.Box.Wrap(r.gpos[i]),
				vel:     r.vel[i],
				force:   r.force[i],
				species: r.species[i],
			}
		}
		if opt.Worker == nil {
			finals[p.Rank()] = fin
			res.RankStats[p.Rank()] = r.stats
		} else if err := gatherDistributed(p, r, fin, finals, res); err != nil {
			return r.rankErr("gather", err)
		}
		if r.bal != nil && p.Rank() == 0 {
			res.BalanceChecks = r.bal.checks
			res.Repartitions = r.bal.repartitions
			res.Imbalance = r.bal.lastImb
		}
		return nil
	})
	res.Wall = time.Since(wallStart)
	res.Health = opt.Health.Summary()
	if err != nil {
		return nil, err
	}
	opt.Log.Info("parmd run complete",
		"steps", opt.Steps, "wall_ms", float64(res.Wall.Nanoseconds())/1e6,
		"healthy", res.Health.Healthy())

	if opt.Worker != nil && opt.Worker.Rank != 0 {
		// Non-root workers shipped their state to rank 0 and hold no
		// gathered fields: their Result carries this process's own
		// counters and phase decomposition only.
		res.Comm = world.TotalStats()
		res.CommByClass = make(map[string]comm.Stats)
		for _, name := range world.ClassNames() {
			res.CommByClass[name] = world.ClassStats(name)
		}
		res.Phases = opt.Recorder.PhaseStats()
		if err := opt.StepLog.Err(); err != nil {
			return nil, fmt.Errorf("parmd: telemetry step log: %w", err)
		}
		return res, nil
	}

	// Assemble the global final state ordered by atom ID.
	var all []finalAtom
	for _, f := range finals {
		all = append(all, f...)
	}
	if len(all) != cfg.N() {
		return nil, fmt.Errorf("parmd: gathered %d atoms, expected %d (atoms lost or duplicated)",
			len(all), cfg.N())
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	final := &workload.Config{
		Box:     cfg.Box,
		Pos:     make([]geom.Vec3, len(all)),
		Vel:     make([]geom.Vec3, len(all)),
		Species: make([]int32, len(all)),
	}
	res.Forces = make([]geom.Vec3, len(all))
	for i, a := range all {
		if a.id != int64(i) {
			return nil, fmt.Errorf("parmd: atom ID %d appears at position %d (atoms lost or duplicated)", a.id, i)
		}
		final.Pos[i] = a.pos
		final.Vel[i] = a.vel
		final.Species[i] = a.species
		res.Forces[i] = a.force
	}
	res.Final = final
	if opt.Worker == nil {
		// In worker mode rank 0 already summed these from the wire
		// gather (every process meters only its own rank).
		res.Comm = world.TotalStats()
		res.CommByClass = make(map[string]comm.Stats)
		for _, name := range world.ClassNames() {
			res.CommByClass[name] = world.ClassStats(name)
		}
	}
	res.Phases = opt.Recorder.PhaseStats()
	publishMetrics(opt.Metrics, res)
	if err := opt.StepLog.Err(); err != nil {
		return nil, fmt.Errorf("parmd: telemetry step log: %w", err)
	}
	return res, nil
}

// Step-phase IDs of the parallel loop (per-term force phases come from
// kernel.TermPhase). The names are shared by the trace timeline, the
// per-step records, and the registry gauges.
var (
	phaseIntegrate = obs.Phase("integrate")
	phaseMigrate   = obs.Phase("migrate")
	phaseBin       = obs.Phase("bin")
	phaseHalo      = obs.Phase("halo")
	// halo:wait is the time blocked completing posted halo receives —
	// with the overlapped exchange, the import latency the interior
	// computation failed to hide.
	phaseHaloWait = obs.Phase("halo:wait")
	// force:interior / force:boundary are the two stages of the split
	// force evaluation: interior cells run concurrently with the halo
	// transfers, boundary cells after the imports land.
	phaseForceInterior = obs.Phase("force:interior")
	phaseForceBoundary = obs.Phase("force:boundary")
	phaseSearch        = obs.Phase("search")
	phaseWriteback     = obs.Phase("writeback")
	phaseReduce        = obs.Phase("reduce")
	phaseHealth        = obs.Phase("health")
	// balance is the collective balance-check exchange; repartition is
	// the boundary move itself (plan recompilation plus slab migration),
	// recorded only on checks that trigger one.
	phaseBalance     = obs.Phase("balance")
	phaseRepartition = obs.Phase("repartition")
)

// defineTagClasses registers the simulation's traffic classes on a
// world so the runtime's counters split by exchange type — the richer
// structure the performance model and bench reports read.
func defineTagClasses(world *comm.World) {
	world.DefineTagClass("migrate", tagMigrate, tagHalo)
	world.DefineTagClass("halo", tagHalo, tagForce)
	world.DefineTagClass("force", tagForce, tagHealth)
	world.DefineTagClass("health", tagHealth, tagHealth+100)
	world.DefineTagClass("balance", tagBalance, tagBalance+100)
}
