package parmd

import (
	"fmt"
	"sort"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Options configures a parallel run.
type Options struct {
	Scheme Scheme
	Cart   comm.Cart // process topology; comm.NewCart(p) picks one
	Dt     float64   // fs
	Steps  int
	// Workers is the number of intra-rank force-evaluation goroutines
	// (the thread half of the paper's hybrid rank×thread execution);
	// ≤ 1 evaluates serially. Forces and energies are bit-identical for
	// every Workers setting: the fixed shard count of the kernel
	// accumulator, not the worker count, decides both the work
	// partition and the reduction order.
	Workers int
	// TraceEnergies records global PE/KE each step (costs two
	// reductions per step).
	TraceEnergies bool
}

// StepEnergy is one global energy sample.
type StepEnergy struct {
	Potential float64
	Kinetic   float64
}

// Total returns PE + KE.
func (e StepEnergy) Total() float64 { return e.Potential + e.Kinetic }

// Result collects the outcome of a parallel run.
type Result struct {
	// Final holds the gathered end state, ordered by global atom ID,
	// positions wrapped into the global box.
	Final *workload.Config
	// Forces holds the final per-atom forces, ordered by global ID.
	Forces []geom.Vec3
	// InitialPotential is the potential energy before the first step.
	InitialPotential float64
	// Energies holds one entry per step when TraceEnergies is set.
	Energies []StepEnergy
	// RankStats holds each rank's accumulated counters.
	RankStats []RankStats
	// Comm summarizes all communication of the run.
	Comm comm.Stats
	// CommByClass breaks Comm down by traffic class: "halo" (import),
	// "force" (write-back), "migrate", "collective" (reductions and
	// barriers), and "other". The classes sum to Comm.
	CommByClass map[string]comm.Stats
}

// MaxRank returns the component-wise maximum over RankStats, the
// critical-path load used by the performance model.
func (r *Result) MaxRank() RankStats {
	var m RankStats
	for _, s := range r.RankStats {
		if s.SearchCandidates > m.SearchCandidates {
			m.SearchCandidates = s.SearchCandidates
		}
		if s.TuplesEvaluated > m.TuplesEvaluated {
			m.TuplesEvaluated = s.TuplesEvaluated
		}
		if s.AtomsImported > m.AtomsImported {
			m.AtomsImported = s.AtomsImported
		}
		if s.OwnedAtoms > m.OwnedAtoms {
			m.OwnedAtoms = s.OwnedAtoms
		}
		if s.HaloMessages > m.HaloMessages {
			m.HaloMessages = s.HaloMessages
		}
	}
	return m
}

// Run executes a complete parallel MD run of the given configuration
// and model over an in-process rank world, and gathers the final
// state. The decomposition's cell lattice uses the model's largest
// cutoff as minimum cell side, exactly like the serial engines, so
// serial and parallel runs are comparable.
func Run(cfg *workload.Config, model *potential.Model, opt Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !(opt.Dt > 0) && opt.Steps > 0 {
		return nil, fmt.Errorf("parmd: time step %g must be positive", opt.Dt)
	}
	if opt.Cart.Size() == 0 {
		return nil, fmt.Errorf("parmd: empty process topology")
	}
	dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), opt.Cart)
	if err != nil {
		return nil, err
	}
	// The global lattice must be large enough that a chain can never
	// close onto a periodic image of its own first atom.
	need := 3
	for _, t := range model.Terms {
		if t.N() > need {
			need = t.N()
		}
	}
	for axis := 0; axis < 3; axis++ {
		if dec.Lat.Dims.Comp(axis) < need {
			return nil, fmt.Errorf("parmd: global lattice %v needs ≥ %d cells per axis", dec.Lat.Dims, need)
		}
	}

	world := comm.NewWorld(opt.Cart.Size())
	defineTagClasses(world)
	res := &Result{RankStats: make([]RankStats, world.Size())}
	if opt.TraceEnergies {
		res.Energies = make([]StepEnergy, opt.Steps)
	}
	type finalAtom struct {
		id      int64
		pos     geom.Vec3
		vel     geom.Vec3
		force   geom.Vec3
		species int32
	}
	finals := make([][]finalAtom, world.Size())

	err = world.Run(func(p *comm.Proc) error {
		r, err := newRankState(p, dec, model, opt.Scheme, opt.Workers)
		if err != nil {
			return err
		}
		r.adopt(cfg)

		masses := make([]float64, len(model.Species))
		for i, s := range model.Species {
			masses[i] = s.Mass
		}

		pe := r.computeForces()
		totalPE := p.AllReduceSum(pe)
		if p.Rank() == 0 {
			res.InitialPotential = totalPE
		}

		for step := 0; step < opt.Steps; step++ {
			// Velocity Verlet: half kick, drift, migrate, forces,
			// half kick.
			half := 0.5 * opt.Dt * md.ForceToAccel
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			for i := 0; i < r.nOwned; i++ {
				r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(opt.Dt))
			}
			r.migrate()
			pe := r.computeForces()
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			if opt.TraceEnergies {
				ke := 0.0
				for i := 0; i < r.nOwned; i++ {
					ke += 0.5 * masses[r.species[i]] * r.vel[i].Norm2()
				}
				ke /= md.ForceToAccel
				gpe := p.AllReduceSum(pe)
				gke := p.AllReduceSum(ke)
				if p.Rank() == 0 {
					res.Energies[step] = StepEnergy{Potential: gpe, Kinetic: gke}
				}
			}
		}

		// Gather final state (shared-memory collection; the comm
		// counters only meter the simulation's own traffic).
		fin := make([]finalAtom, r.nOwned)
		for i := 0; i < r.nOwned; i++ {
			fin[i] = finalAtom{
				id:      r.ids[i],
				pos:     dec.Lat.Box.Wrap(r.gpos[i]),
				vel:     r.vel[i],
				force:   r.force[i],
				species: r.species[i],
			}
		}
		finals[p.Rank()] = fin
		res.RankStats[p.Rank()] = r.stats
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble the global final state ordered by atom ID.
	var all []finalAtom
	for _, f := range finals {
		all = append(all, f...)
	}
	if len(all) != cfg.N() {
		return nil, fmt.Errorf("parmd: gathered %d atoms, expected %d (atoms lost or duplicated)",
			len(all), cfg.N())
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	final := &workload.Config{
		Box:     cfg.Box,
		Pos:     make([]geom.Vec3, len(all)),
		Vel:     make([]geom.Vec3, len(all)),
		Species: make([]int32, len(all)),
	}
	res.Forces = make([]geom.Vec3, len(all))
	for i, a := range all {
		if a.id != int64(i) {
			return nil, fmt.Errorf("parmd: atom ID %d appears at position %d (atoms lost or duplicated)", a.id, i)
		}
		final.Pos[i] = a.pos
		final.Vel[i] = a.vel
		final.Species[i] = a.species
		res.Forces[i] = a.force
	}
	res.Final = final
	res.Comm = world.TotalStats()
	res.CommByClass = make(map[string]comm.Stats)
	for _, name := range world.ClassNames() {
		res.CommByClass[name] = world.ClassStats(name)
	}
	return res, nil
}

// defineTagClasses registers the simulation's traffic classes on a
// world so the runtime's counters split by exchange type — the richer
// structure the performance model and bench reports read.
func defineTagClasses(world *comm.World) {
	world.DefineTagClass("migrate", tagMigrate, tagHalo)
	world.DefineTagClass("halo", tagHalo, tagForce)
	world.DefineTagClass("force", tagForce, tagForce+100)
}
