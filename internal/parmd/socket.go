package parmd

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// socketDialTimeout bounds rendezvous registration, the peer mesh
// dial/accept, and the handshakes of an in-process socket world.
const socketDialTimeout = 30 * time.Second

// RunSocket executes the same run as Run, but over a real socket
// fabric: one goroutine per rank, each with its own SocketTransport,
// World, and wire connections — the full frame protocol, rendezvous,
// and failure paths of separate worker processes, minus fork/exec.
// network is "unix" or "tcp" (loopback). The returned Result is rank
// 0's (the only one with the gathered global state). Forces are
// bit-identical to Run: the wire codec round-trips float64 bits
// exactly and the reduction order is topology-, not transport-, fixed.
//
// This is the harness benchmarks and tests use; scmd's launcher runs
// the same protocol with ranks as genuine OS processes.
func RunSocket(cfg *workload.Config, model *potential.Model, opt Options, network string) (*Result, error) {
	return runSocketWorlds(cfg, model, opt, network, nil)
}

// runSocketWorlds is RunSocket plus a transport hook: wrap, when
// non-nil, may interpose on each rank's transport (fault injection,
// mid-run kills). Every rank's error is joined into the returned one.
func runSocketWorlds(cfg *workload.Config, model *potential.Model, opt Options, network string, wrap func(rank int, tr *comm.SocketTransport) comm.Transport) (*Result, error) {
	size := opt.Cart.Size()
	if size == 0 {
		return nil, fmt.Errorf("parmd: empty process topology")
	}
	dir, err := os.MkdirTemp("", "scsock")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var ln net.Listener
	switch network {
	case "unix":
		ln, err = net.Listen("unix", filepath.Join(dir, "rdv.sock"))
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	default:
		return nil, fmt.Errorf("parmd: unknown socket network %q (want unix or tcp)", network)
	}
	if err != nil {
		return nil, err
	}
	token := comm.NewSessionToken()
	go comm.ServeRendezvous(ln, size, token, socketDialTimeout)

	results := make([]*Result, size)
	errs := make([]error, size)
	transports := make([]*comm.SocketTransport, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := comm.DialSocket(comm.SocketConfig{
				Network:    network,
				Rendezvous: ln.Addr().String(),
				Rank:       rank,
				Size:       size,
				Token:      token,
				Timeout:    socketDialTimeout,
				Log:        opt.Log,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: dial fabric: %w", rank, err)
				return
			}
			transports[rank] = tr
			o := opt
			o.Worker = &WorkerRank{Rank: rank}
			o.Transport = comm.Transport(tr)
			if wrap != nil {
				o.Transport = wrap(rank, tr)
			}
			results[rank], errs[rank] = Run(cfg, model, o)
		}(rank)
	}
	wg.Wait()
	for _, tr := range transports {
		if tr != nil {
			tr.Close()
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results[0], nil
}
