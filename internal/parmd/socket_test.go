package parmd

import (
	"errors"
	"math"
	"testing"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// TestSocketTransportBitIdentical is the transport-equivalence
// acceptance test: a 2-rank silica run over the socket fabric must
// produce bit-identical forces, positions, velocities, and initial
// potential to the in-process channel transport, for every scheme.
// The wire codec round-trips float64 bits exactly and the reduction
// order is fixed by the topology, so any difference is a transport
// bug.
func TestSocketTransportBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("socket fabric run in -short mode")
	}
	cfg, model := silicaConfig(t, 4, 300, 1)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes() {
		opt := Options{Scheme: scheme, Cart: cart, Dt: 1, Steps: 3}
		want, err := Run(cfg, model, opt)
		if err != nil {
			t.Fatalf("%v chan: %v", scheme, err)
		}
		got, err := RunSocket(cfg, model, opt, "unix")
		if err != nil {
			t.Fatalf("%v socket: %v", scheme, err)
		}
		if math.Float64bits(got.InitialPotential) != math.Float64bits(want.InitialPotential) {
			t.Errorf("%v: initial PE %.17g != %.17g", scheme, got.InitialPotential, want.InitialPotential)
		}
		if len(got.Forces) != len(want.Forces) {
			t.Fatalf("%v: %d forces, want %d", scheme, len(got.Forces), len(want.Forces))
		}
		for i := range want.Forces {
			if !bitsEqualVec3(got.Forces[i], want.Forces[i]) {
				t.Fatalf("%v: atom %d force %v != %v", scheme, i, got.Forces[i], want.Forces[i])
			}
			if !bitsEqualVec3(got.Final.Pos[i], want.Final.Pos[i]) {
				t.Fatalf("%v: atom %d position %v != %v", scheme, i, got.Final.Pos[i], want.Final.Pos[i])
			}
			if !bitsEqualVec3(got.Final.Vel[i], want.Final.Vel[i]) {
				t.Fatalf("%v: atom %d velocity %v != %v", scheme, i, got.Final.Vel[i], want.Final.Vel[i])
			}
		}
		// The gathered per-rank counters must describe the same
		// simulation: identical owned-atom and tuple totals.
		for r := range want.RankStats {
			if got.RankStats[r].TuplesEvaluated != want.RankStats[r].TuplesEvaluated ||
				got.RankStats[r].OwnedAtoms != want.RankStats[r].OwnedAtoms {
				t.Errorf("%v: rank %d stats %+v != %+v", scheme, r, got.RankStats[r], want.RankStats[r])
			}
		}
		if got.Comm.Messages == 0 || got.Comm.Bytes == 0 {
			t.Errorf("%v: socket run gathered no comm traffic (%+v)", scheme, got.Comm)
		}
	}
}

func bitsEqualVec3(a, b geom.Vec3) bool {
	return math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z)
}

// killTransport closes its socket fabric when the step loop reaches
// atStep — from the peers' side indistinguishable from the worker
// process dying mid-run.
type killTransport struct {
	*comm.SocketTransport
	atStep int
}

func (k *killTransport) MarkStep(step int) {
	if step >= k.atStep {
		k.SocketTransport.Close()
	}
	k.SocketTransport.MarkStep(step)
}

// TestSocketKilledWorkerAborts: when one rank's fabric dies mid-run,
// every survivor must unwind with a typed error carrying ErrAborted —
// no deadlock, no panic — and the run as a whole must fail.
func TestSocketKilledWorkerAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("socket fabric run in -short mode")
	}
	cfg, model := silicaConfig(t, 4, 300, 1)
	cart, err := comm.NewCartDims(geom.IV(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 50}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runSocketWorlds(cfg, model, opt, "unix",
			func(rank int, tr *comm.SocketTransport) comm.Transport {
				if rank == 1 {
					return &killTransport{SocketTransport: tr, atStep: 3}
				}
				return tr
			})
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err == nil {
			t.Fatal("run with a killed worker succeeded")
		}
		if !errors.Is(out.err, comm.ErrAborted) {
			t.Errorf("err = %v, want ErrAborted in chain", out.err)
		}
		var re *RankError
		if !errors.As(out.err, &re) {
			t.Errorf("err = %v, want *RankError with rank/step context", out.err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("killed worker deadlocked the fleet")
	}
}
