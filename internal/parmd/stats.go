package parmd

import (
	"math"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/obs"
)

// rankStatField is one entry of the reflection-free field table below:
// a stable snake_case name (the key metrics and step records are
// emitted under) plus get/set accessors through float64, wide enough
// for every counter in RankStats (int64 counts stay exact to 2⁵³).
type rankStatField struct {
	Name string
	Get  func(*RankStats) float64
	Set  func(*RankStats, float64)
}

// rankStatFields enumerates every field of RankStats exactly once —
// the single source the component-wise reductions (MaxRank, MeanRank),
// the registry export, and the per-step counter records all share, so
// a new RankStats field added here shows up everywhere at once.
var rankStatFields = []rankStatField{
	{"steps",
		func(s *RankStats) float64 { return float64(s.Steps) },
		func(s *RankStats, v float64) { s.Steps = int(v) }},
	{"owned_atoms",
		func(s *RankStats) float64 { return float64(s.OwnedAtoms) },
		func(s *RankStats, v float64) { s.OwnedAtoms = int(v) }},
	{"search_candidates",
		func(s *RankStats) float64 { return float64(s.SearchCandidates) },
		func(s *RankStats, v float64) { s.SearchCandidates = int64(v) }},
	{"tuples_evaluated",
		func(s *RankStats) float64 { return float64(s.TuplesEvaluated) },
		func(s *RankStats, v float64) { s.TuplesEvaluated = int64(v) }},
	{"pair_list_entries",
		func(s *RankStats) float64 { return float64(s.PairListEntries) },
		func(s *RankStats, v float64) { s.PairListEntries = int64(v) }},
	{"atoms_imported",
		func(s *RankStats) float64 { return float64(s.AtomsImported) },
		func(s *RankStats, v float64) { s.AtomsImported = int64(v) }},
	{"atoms_migrated",
		func(s *RankStats) float64 { return float64(s.AtomsMigrated) },
		func(s *RankStats, v float64) { s.AtomsMigrated = int64(v) }},
	{"halo_messages",
		func(s *RankStats) float64 { return float64(s.HaloMessages) },
		func(s *RankStats, v float64) { s.HaloMessages = int64(v) }},
	{"force_ns",
		func(s *RankStats) float64 { return float64(s.ForceNs) },
		func(s *RankStats, v float64) { s.ForceNs = int64(v) }},
	{"virial",
		func(s *RankStats) float64 { return s.Virial },
		func(s *RankStats, v float64) { s.Virial = v }},
}

// reduceRankStats folds all ranks' stats field by field through the
// shared obs.MaxMean reduction and assembles the requested component
// (pick receives each field's (max, mean) and chooses one).
func reduceRankStats(all []RankStats, pick func(max, mean float64) float64) RankStats {
	var out RankStats
	xs := make([]float64, len(all))
	for _, f := range rankStatFields {
		for i := range all {
			xs[i] = f.Get(&all[i])
		}
		mx, mean := obs.MaxMean(xs)
		f.Set(&out, pick(mx, mean))
	}
	return out
}

// MaxRank returns the component-wise maximum over RankStats — the
// critical-path load the performance model compares against.
func (r *Result) MaxRank() RankStats {
	if len(r.RankStats) == 0 {
		return RankStats{}
	}
	return reduceRankStats(r.RankStats, func(max, _ float64) float64 { return max })
}

// MeanRank returns the component-wise mean over RankStats; together
// with MaxRank it gives the per-counter load imbalance (max/mean).
func (r *Result) MeanRank() RankStats {
	if len(r.RankStats) == 0 {
		return RankStats{}
	}
	return reduceRankStats(r.RankStats, func(_, mean float64) float64 { return mean })
}

// rankStatDeltas fills counters with the per-field difference cur−prev
// under the table's names — one step's worth of counting for the
// per-step telemetry records.
func rankStatDeltas(cur, prev *RankStats, counters map[string]int64) {
	for _, f := range rankStatFields {
		counters[f.Name] = int64(f.Get(cur) - f.Get(prev))
	}
}

// liveMetrics is one rank's in-loop registry publisher: pre-resolved
// counter and gauge handles (resolved once at setup, so the steady
// state is a handful of atomic adds per step — no map lookups, no
// allocation) that keep the registry's cumulative counters current
// while the run is still stepping, so a live /metrics scrape sees
// real values instead of zeros. The live values are exact for
// monotone counters (they are the same deltas the step records
// carry) and approximate for the reduced gauges; publishMetrics
// overwrites everything with the exact end-of-run reduction via
// Counter.Store, so the final registry is identical whether or not a
// live publisher ran.
type liveMetrics struct {
	// counters is parallel to rankStatFields; nil entries are fields
	// that do not live-publish from this rank (virial everywhere —
	// it's a gauge of the summed final state — and steps on every rank
	// but 0, since the registry's steps counter is a run-global step
	// count, not a rank-step sum).
	counters []*obs.Counter
	imb      *obs.Gauge
	repart   *obs.Counter
	rec      *obs.Recorder

	classNames []string
	classBytes []*obs.Counter
	classMsgs  []*obs.Counter
	classWait  []*obs.Counter

	prev      RankStats
	prevClass []comm.Stats
	curClass  []comm.Stats
	rank0     bool
}

// newLiveMetrics resolves this rank's registry handles. The previous
// cumulative state starts at zero, so the first publish folds in the
// whole pre-loop setup (initial force evaluation, adoption) and the
// live counters track true cumulative totals from step 0 on.
func newLiveMetrics(reg *obs.Registry, p *comm.Proc, rec *obs.Recorder) *liveMetrics {
	lm := &liveMetrics{rec: rec, rank0: p.Rank() == 0}
	lm.counters = make([]*obs.Counter, len(rankStatFields))
	for i, f := range rankStatFields {
		switch f.Name {
		case "virial":
		case "steps":
			if lm.rank0 {
				lm.counters[i] = reg.Counter("parmd.steps")
			}
		default:
			lm.counters[i] = reg.Counter("parmd." + f.Name)
		}
	}
	if lm.rank0 {
		lm.imb = reg.Gauge("parmd.imbalance")
		lm.imb.Set(1) // present from step 0; refined below and at run end
		lm.repart = reg.Counter("parmd.repartitions")
		reg.Gauge("parmd.ranks").Set(float64(p.Size()))
	}
	lm.classNames = p.ClassNames()
	lm.classBytes = make([]*obs.Counter, len(lm.classNames))
	lm.classMsgs = make([]*obs.Counter, len(lm.classNames))
	lm.classWait = make([]*obs.Counter, len(lm.classNames))
	for i, name := range lm.classNames {
		lm.classBytes[i] = reg.Counter(obs.CommClassMetric(name, "bytes"))
		lm.classMsgs[i] = reg.Counter(obs.CommClassMetric(name, "messages"))
		lm.classWait[i] = reg.Counter(obs.CommClassMetric(name, "wait_ns"))
	}
	lm.prevClass = make([]comm.Stats, p.ClassCount())
	lm.curClass = make([]comm.Stats, p.ClassCount())
	return lm
}

// publish adds this rank's step deltas into the registry and, on rank
// 0, refreshes the live force-imbalance gauge (from the balancer's
// last collective check when one runs, else from the recorder's
// atomic per-rank force-phase clocks). Allocation-free.
func (lm *liveMetrics) publish(r *rankState, p *comm.Proc) {
	for i, f := range rankStatFields {
		c := lm.counters[i]
		if c == nil {
			continue
		}
		if d := int64(f.Get(&r.stats) - f.Get(&lm.prev)); d != 0 {
			c.Add(d)
		}
	}
	lm.prev = r.stats
	p.ClassStatsInto(lm.curClass)
	for i := range lm.classNames {
		cur, prev := lm.curClass[i], lm.prevClass[i]
		if d := cur.Bytes - prev.Bytes; d != 0 {
			lm.classBytes[i].Add(d)
		}
		if d := cur.Messages - prev.Messages; d != 0 {
			lm.classMsgs[i].Add(d)
		}
		if d := (cur.Wait - prev.Wait).Nanoseconds(); d != 0 {
			lm.classWait[i].Add(d)
		}
		lm.prevClass[i] = cur
	}
	if !lm.rank0 {
		return
	}
	if r.bal != nil {
		lm.repart.Store(int64(r.bal.repartitions))
		if r.bal.lastImb > 0 {
			lm.imb.Set(r.bal.lastImb)
		}
		return
	}
	if lm.rec != nil {
		n := lm.rec.Ranks()
		var max, sum float64
		for i := 0; i < n; i++ {
			rr := lm.rec.Rank(i)
			ns := float64(rr.PhaseNs(phaseForceInterior) + rr.PhaseNs(phaseForceBoundary))
			sum += ns
			if ns > max {
				max = ns
			}
		}
		if sum > 0 {
			lm.imb.Set(max / (sum / float64(n)))
		}
	}
}

// stepEmitter builds and writes one rank's per-step telemetry record:
// the wall time, a monotonic timestamp against the run's shared epoch,
// phase-time deltas (when a recorder runs), and counter deltas against
// the previous step's cumulative state. All scratch is persistent —
// the record's maps are cleared and refilled with the same keys each
// step (Go retains map buckets across clear, so the steady state
// allocates nothing even when a sink like the flight recorder consumes
// every step), and the comm_<class>_bytes keys and phase names are
// interned once at setup.
type stepEmitter struct {
	w     *obs.StepWriter
	r     *rankState
	p     *comm.Proc
	epoch time.Time

	rec        obs.StepRecord
	prevPhase  [obs.MaxPhases]int64
	phaseNames [obs.MaxPhases]string
	prevStats  RankStats
	prevWait   time.Duration
	classNames []string
	classKeys  []string // pre-built obs.CommClassKey(name, "bytes")
	prevClass  []comm.Stats
	curClass   []comm.Stats
}

// newStepEmitter builds the emitter and seeds the delta scratch from
// the current cumulative state, so the first step's record carries
// that step's own share rather than the setup's (initial force
// evaluation, adoption).
func newStepEmitter(w *obs.StepWriter, r *rankState, p *comm.Proc, epoch time.Time) *stepEmitter {
	e := &stepEmitter{w: w, r: r, p: p, epoch: epoch}
	e.rec.Rank = p.Rank()
	e.classNames = p.ClassNames()
	e.classKeys = make([]string, len(e.classNames))
	for i, name := range e.classNames {
		e.classKeys[i] = obs.CommClassKey(name, "bytes")
	}
	e.rec.Counters = make(map[string]int64, len(rankStatFields)+2+len(e.classNames))
	if r.rec != nil {
		e.rec.PhaseNs = make(map[string]int64, obs.MaxPhases)
	}
	e.prevClass = make([]comm.Stats, p.ClassCount())
	e.curClass = make([]comm.Stats, p.ClassCount())
	e.advance()
	return e
}

// advance rolls the per-step delta scratch forward without building a
// record — the inactive-writer path (no sink, no file, no live
// subscriber), so a subscriber that joins mid-run gets true per-step
// deltas from its first full step instead of a cumulative catch-up
// line. Allocation-free.
func (e *stepEmitter) advance() {
	e.prevStats = e.r.stats
	e.prevWait = e.p.Stats().Wait
	e.p.ClassStatsInto(e.prevClass)
	if e.r.rec != nil {
		e.r.rec.CopyPhaseNs(&e.prevPhase)
	}
}

// emit writes this rank's telemetry record for one step and advances
// the scratch. owned_atoms is reported as the current absolute value,
// the runtime's receive-wait delta rides along as comm_wait_ns, and
// each tag class's sent-byte delta as comm_<class>_bytes — so a step
// log can attribute a traffic spike to halo vs migrate vs write-back
// directly. Allocation-free in the steady state when no encoding
// consumer (file sink or tee subscriber) is attached.
func (e *stepEmitter) emit(step int, wall time.Duration) {
	e.rec.Step = step
	e.rec.WallNs = wall.Nanoseconds()
	e.rec.TNs = time.Since(e.epoch).Nanoseconds()
	clear(e.rec.Counters)
	rankStatDeltas(&e.r.stats, &e.prevStats, e.rec.Counters)
	e.rec.Counters["owned_atoms"] = int64(e.r.stats.OwnedAtoms)
	e.prevStats = e.r.stats
	wait := e.p.Stats().Wait
	e.rec.Counters["comm_wait_ns"] = (wait - e.prevWait).Nanoseconds()
	e.prevWait = wait
	e.p.ClassStatsInto(e.curClass)
	for i := range e.classNames {
		if d := e.curClass[i].Bytes - e.prevClass[i].Bytes; d != 0 {
			e.rec.Counters[e.classKeys[i]] = d
		}
		e.prevClass[i] = e.curClass[i]
	}
	if e.r.rec != nil {
		var cur [obs.MaxPhases]int64
		e.r.rec.CopyPhaseNs(&cur)
		clear(e.rec.PhaseNs)
		for i := range cur {
			if d := cur[i] - e.prevPhase[i]; d != 0 {
				name := e.phaseNames[i]
				if name == "" {
					name = obs.PhaseID(i).Name()
					e.phaseNames[i] = name
				}
				e.rec.PhaseNs[name] = d
			}
		}
		e.prevPhase = cur
	}
	e.w.WriteStep(e.rec)
}

// OverlapFraction returns the measured overlap efficiency of the
// split-phase halo exchange: the fraction of the exchange-completion
// window covered by interior force computation,
//
//	interior / (interior + wait)
//
// over the mean per-rank force:interior and halo:wait phase times. 1.0
// means every receive had already landed when the interior stage
// finished (the import latency was fully hidden); values near 0 mean
// the rank mostly sat blocked in halo:wait — no interior cells, or
// communication far slower than compute. Zero when no recorder ran or
// no exchange happened.
func (r *Result) OverlapFraction() float64 {
	var interior, wait float64
	for _, ps := range r.Phases {
		switch ps.Phase {
		case "force:interior":
			interior = ps.MeanNs
		case "halo:wait":
			wait = ps.MeanNs
		}
	}
	if interior+wait <= 0 {
		return 0
	}
	return interior / (interior + wait)
}

// ForceImbalance returns the whole-run force-phase load imbalance: the
// max over mean of the per-rank cumulative force-work time
// (RankStats.ForceNs). 1 means perfectly balanced; it is the quantity
// the adaptive balancer drives down (Result.Imbalance is the same
// measure over the last balance-check interval only).
func (r *Result) ForceImbalance() float64 {
	if len(r.RankStats) == 0 {
		return 1
	}
	var maxNs, sumNs int64
	for i := range r.RankStats {
		ns := r.RankStats[i].ForceNs
		sumNs += ns
		if ns > maxNs {
			maxNs = ns
		}
	}
	if sumNs <= 0 {
		return 1
	}
	return float64(maxNs) / (float64(sumNs) / float64(len(r.RankStats)))
}

// publishMetrics exports the run's accumulated counters into the
// registry: summed RankStats under parmd.*, per-class communication
// volume and receive-wait time under comm.<class>.*, and — when a span
// recorder ran — per-phase max-rank milliseconds and imbalance gauges
// under phase.*. Counters are Stored, not Added: a live publisher may
// have been feeding per-step approximations into the same registry
// all run, and the end-of-run reconciliation overwrites them with the
// exact totals — the final registry is identical either way.
func publishMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	var sum RankStats
	for _, s := range res.RankStats {
		sum.Add(s)
	}
	sum.Steps = 0
	for _, s := range res.RankStats {
		if s.Steps > sum.Steps {
			sum.Steps = s.Steps
		}
	}
	sum.OwnedAtoms = 0
	for _, s := range res.RankStats {
		sum.OwnedAtoms += s.OwnedAtoms
	}
	for _, f := range rankStatFields {
		if f.Name == "virial" {
			reg.Gauge("parmd.virial").Set(sum.Virial)
			continue
		}
		reg.Counter("parmd." + f.Name).Store(int64(f.Get(&sum)))
	}
	reg.Gauge("parmd.ranks").Set(float64(len(res.RankStats)))
	reg.Counter("parmd.repartitions").Store(int64(res.Repartitions))
	// parmd.imbalance is always present: the balancer's last collective
	// measure when one ran, the whole-run force imbalance otherwise.
	if res.BalanceChecks > 0 {
		reg.Gauge("parmd.imbalance").Set(res.Imbalance)
	} else {
		reg.Gauge("parmd.imbalance").Set(res.ForceImbalance())
	}

	for class, s := range res.CommByClass {
		reg.Counter(obs.CommClassMetric(class, "messages")).Store(s.Messages)
		reg.Counter(obs.CommClassMetric(class, "bytes")).Store(s.Bytes)
		reg.Counter(obs.CommClassMetric(class, "wait_ns")).Store(s.Wait.Nanoseconds())
	}

	for _, ps := range res.Phases {
		reg.Gauge("phase." + ps.Phase + ".max_ms").Set(float64(ps.MaxNs) / 1e6)
		reg.Gauge("phase." + ps.Phase + ".imbalance").Set(ps.Imbalance())
	}
	if len(res.Phases) > 0 {
		reg.Gauge("parmd.overlap_fraction").Set(res.OverlapFraction())
	}
	if len(res.Phases) > 0 && res.Wall > 0 {
		frac := float64(obs.CriticalPathNs(res.Phases)) / float64(res.Wall.Nanoseconds())
		reg.Gauge("phase.critical_path_fraction").Set(math.Min(frac, 1))
	}
}
