package parmd

import (
	"fmt"
	"testing"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
	"sctuple/internal/obs"
	"sctuple/internal/obs/flight"
	"sctuple/internal/obs/serve"
)

// TestStepLoopZeroAllocs: after warm-up, the complete parallel step —
// integration, migration, canonical owned-segment sort check, span
// rebin, halo exchange, force evaluation, force write-back — allocates
// nothing for any scheme, with the phase recorder disabled and
// enabled (its ring buffers are preallocated). The workload is the
// migration-free shifted crystal of the golden fixtures, so the
// measured steps are the steady state every long solid-state run sits
// in.
func TestStepLoopZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg, model := silicaConfig(t, 4, 300, 22)
	for i := range cfg.Pos {
		cfg.Pos[i] = cfg.Box.Wrap(cfg.Pos[i].Add(geom.V(0.8, 0.8, 0.8)))
	}
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	masses := make([]float64, len(model.Species))
	for i, s := range model.Species {
		masses[i] = s.Mass
	}
	const dt = 0.5
	for _, withRec := range []bool{false, true} {
		for _, scheme := range Schemes() {
			dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
			if err != nil {
				t.Fatal(err)
			}
			var recorder *obs.Recorder
			if withRec {
				recorder = obs.NewRecorder(cart.Size(), 4096)
			}
			world := comm.NewWorld(cart.Size())
			defineTagClasses(world)
			err = world.Run(func(p *comm.Proc) error {
				r, err := newRankState(p, dec, model, scheme, 1, true)
				if err != nil {
					return err
				}
				r.rec = recorder.Rank(p.Rank())
				r.adopt(cfg)
				if _, err := r.computeForces(); err != nil {
					return err
				}
				step := func() error {
					half := 0.5 * dt * md.ForceToAccel
					for i := 0; i < r.nOwned; i++ {
						r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
					}
					for i := 0; i < r.nOwned; i++ {
						r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(dt))
					}
					if err := r.migrate(); err != nil {
						return err
					}
					if _, err := r.computeForces(); err != nil {
						return err
					}
					for i := 0; i < r.nOwned; i++ {
						r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
					}
					return nil
				}
				var stepErr error
				run := func() {
					if err := step(); err != nil && stepErr == nil {
						stepErr = err
					}
				}
				// Warm up until every pooled buffer and scratch array on
				// every route has reached its working capacity.
				for k := 0; k < 30; k++ {
					run()
				}
				p.Barrier()
				if p.Rank() != 0 {
					for k := 0; k < 11; k++ {
						run()
					}
					p.Barrier()
					return stepErr
				}
				allocs := testing.AllocsPerRun(10, run)
				p.Barrier()
				if stepErr != nil {
					return stepErr
				}
				if allocs != 0 {
					return fmt.Errorf("%v recorder=%v: %g allocs per step, want 0", scheme, withRec, allocs)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}
	}
}

// TestStepTelemetryZeroAllocs: the full telemetry tail of the step
// loop — step-time histogram observation, the step emitter building
// full records into the flight recorder (the writer is active: a sink
// is attached, but no file and no /steps subscriber, so nothing is
// JSON-encoded), and the live registry publisher — stays
// allocation-free on top of the zero-alloc step. This is the exact
// configuration of an scmd run with -serve and nobody watching.
func TestStepTelemetryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg, model := silicaConfig(t, 4, 300, 22)
	for i := range cfg.Pos {
		cfg.Pos[i] = cfg.Box.Wrap(cfg.Pos[i].Add(geom.V(0.8, 0.8, 0.8)))
	}
	cart, _ := comm.NewCartDims(geom.IV(2, 1, 1))
	masses := make([]float64, len(model.Species))
	for i, s := range model.Species {
		masses[i] = s.Mass
	}
	const dt = 0.5
	dec, err := NewDecomp(cfg.Box, model.MaxCutoff(), cart)
	if err != nil {
		t.Fatal(err)
	}
	recorder := obs.NewRecorder(cart.Size(), 4096)
	reg := obs.NewRegistry()
	stepHist := reg.Histogram("parmd.step_ms", obs.ExpBuckets(0.01, 2, 18))
	tee := obs.NewStepTee()
	sw := obs.NewStepWriterTee(nil, tee)
	fl := flight.New(flight.Config{Ranks: cart.Size(), Registry: reg, Tee: tee})
	sw.SetSink(fl)
	// The server only holds references; attaching it must not change
	// the step loop's allocation behavior.
	_ = &serve.Server{Registry: reg, Recorder: recorder, Steps: tee, Flight: fl}

	world := comm.NewWorld(cart.Size())
	defineTagClasses(world)
	err = world.Run(func(p *comm.Proc) error {
		r, err := newRankState(p, dec, model, SchemeSC, 1, true)
		if err != nil {
			return err
		}
		r.rec = recorder.Rank(p.Rank())
		r.live = newLiveMetrics(reg, p, recorder)
		r.adopt(cfg)
		if _, err := r.computeForces(); err != nil {
			return err
		}
		em := newStepEmitter(sw, r, p, time.Now())
		stepN := 0
		step := func() error {
			start := time.Now()
			half := 0.5 * dt * md.ForceToAccel
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			for i := 0; i < r.nOwned; i++ {
				r.gpos[i] = r.gpos[i].Add(r.vel[i].Scale(dt))
			}
			if err := r.migrate(); err != nil {
				return err
			}
			if _, err := r.computeForces(); err != nil {
				return err
			}
			for i := 0; i < r.nOwned; i++ {
				r.vel[i] = r.vel[i].Add(r.force[i].Scale(half / masses[r.species[i]]))
			}
			wall := time.Since(start)
			stepHist.Observe(wall.Seconds() * 1e3)
			if !sw.Active() {
				return fmt.Errorf("step writer inactive despite the flight sink")
			}
			em.emit(stepN, wall)
			stepN++
			r.live.publish(r, p)
			return nil
		}
		var stepErr error
		run := func() {
			if err := step(); err != nil && stepErr == nil {
				stepErr = err
			}
		}
		for k := 0; k < 30; k++ {
			run()
		}
		p.Barrier()
		if p.Rank() != 0 {
			for k := 0; k < 11; k++ {
				run()
			}
			p.Barrier()
			return stepErr
		}
		allocs := testing.AllocsPerRun(10, run)
		p.Barrier()
		if stepErr != nil {
			return stepErr
		}
		if allocs != 0 {
			return fmt.Errorf("telemetry step tail: %g allocs per step, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}
