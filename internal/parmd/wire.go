package parmd

import (
	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// Shared wire codec for every parallel exchange. The three record
// types below are the only payloads the simulation moves — halo
// import, atom migration, and force write-back all encode through the
// same put/get pairs, so there is exactly one wire format to keep in
// sync (and one set of record sizes, exported for the performance
// model's Eq. 31 byte accounting).

// Wire sizes in bytes of the three record types.
const (
	// HaloAtomWireBytes is one imported halo atom:
	// id + species + extended cell + local position.
	HaloAtomWireBytes = 8 + 4 + 3*4 + 3*8 // 48
	// MigrantWireBytes is one migrating atom:
	// id + species + global position + velocity.
	MigrantWireBytes = 8 + 4 + 3*8 + 3*8 // 60
	// ForceWireBytes is one written-back force vector.
	ForceWireBytes = 3 * 8 // 24
)

// putHaloAtom appends one halo atom, already shifted into the
// receiver's frame.
func putHaloAtom(b *comm.Buffer, id int64, sp int32, ec geom.IVec3, lp geom.Vec3) {
	b.Int64(id)
	b.Int32(sp)
	b.Int32(int32(ec.X))
	b.Int32(int32(ec.Y))
	b.Int32(int32(ec.Z))
	b.Vec3(lp)
}

// getHaloAtom decodes one halo atom.
func getHaloAtom(rd *comm.Reader) (id int64, sp int32, ec geom.IVec3, lp geom.Vec3) {
	id = rd.Int64()
	sp = rd.Int32()
	ec = geom.IV(int(rd.Int32()), int(rd.Int32()), int(rd.Int32()))
	lp = rd.Vec3()
	return id, sp, ec, lp
}

// putMigrant appends one migrating atom in wrapped global coordinates.
func putMigrant(b *comm.Buffer, id int64, sp int32, gpos, vel geom.Vec3) {
	b.Int64(id)
	b.Int32(sp)
	b.Vec3(gpos)
	b.Vec3(vel)
}

// getMigrant decodes one migrating atom.
func getMigrant(rd *comm.Reader) (id int64, sp int32, gpos, vel geom.Vec3) {
	id = rd.Int64()
	sp = rd.Int32()
	gpos = rd.Vec3()
	vel = rd.Vec3()
	return id, sp, gpos, vel
}

// putForce appends one written-back force vector.
func putForce(b *comm.Buffer, f geom.Vec3) { b.Vec3(f) }

// getForce decodes one written-back force vector.
func getForce(rd *comm.Reader) geom.Vec3 { return rd.Vec3() }
