package parmd

import (
	"errors"
	"math"
	"testing"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
)

// TestWireRecordRoundTrip: every simulation record type survives
// encode/decode bit-exactly, including non-finite and signed-zero
// floats — the property the socket transport's bit-identity guarantee
// rests on.
func TestWireRecordRoundTrip(t *testing.T) {
	negZero := math.Copysign(0, -1)
	var b comm.Buffer
	putHaloAtom(&b, 1<<40, 3, geom.IV(-1, 7, 2), geom.V(1.5, negZero, math.Inf(1)))
	putMigrant(&b, -9, 1, geom.V(math.MaxFloat64, 2, 3), geom.V(-4, 5e-324, 6))
	putForce(&b, geom.V(math.Pi, -math.E, negZero))
	if got, want := b.Len(), HaloAtomWireBytes+MigrantWireBytes+ForceWireBytes; got != want {
		t.Fatalf("encoded %d bytes, want %d", got, want)
	}
	var rd comm.Reader
	rd.Reset(b.Bytes())
	id, sp, ec, lp := getHaloAtom(&rd)
	if id != 1<<40 || sp != 3 || ec != geom.IV(-1, 7, 2) {
		t.Errorf("halo atom: id=%d sp=%d ec=%v", id, sp, ec)
	}
	if math.Float64bits(lp.Y) != math.Float64bits(negZero) || !math.IsInf(lp.Z, 1) {
		t.Errorf("halo position bits not preserved: %v", lp)
	}
	mid, msp, g, v := getMigrant(&rd)
	if mid != -9 || msp != 1 || g.X != math.MaxFloat64 || v.Y != 5e-324 {
		t.Errorf("migrant: id=%d sp=%d g=%v v=%v", mid, msp, g, v)
	}
	f := getForce(&rd)
	if f.X != math.Pi || math.Float64bits(f.Z) != math.Float64bits(negZero) {
		t.Errorf("force: %v", f)
	}
	if rd.Remaining() != 0 || rd.Err() != nil {
		t.Errorf("remaining=%d err=%v", rd.Remaining(), rd.Err())
	}
}

// TestWireTruncatedTypedError: decoding a truncated record stream must
// surface a typed *comm.DecodeError, never panic — a socket peer can
// deliver short payloads.
func TestWireTruncatedTypedError(t *testing.T) {
	var b comm.Buffer
	putMigrant(&b, 1, 2, geom.V(1, 2, 3), geom.V(4, 5, 6))
	for cut := 1; cut < MigrantWireBytes; cut++ {
		var rd comm.Reader
		rd.Reset(b.Bytes()[:cut])
		getMigrant(&rd)
		var de *comm.DecodeError
		if err := rd.Err(); !errors.As(err, &de) {
			t.Fatalf("cut=%d: err = %v, want *comm.DecodeError", cut, err)
		}
	}
}

// TestFinalGatherRoundTrip: the distributed end-of-run gather encoding
// round-trips atoms, the full RankStats table, and per-class comm
// counters.
func TestFinalGatherRoundTrip(t *testing.T) {
	fin := []finalAtom{
		{id: 0, pos: geom.V(1, 2, 3), vel: geom.V(-1, 0, 1), force: geom.V(9, 8, 7), species: 1},
		{id: 41, pos: geom.V(0.5, 0.25, 0.125), vel: geom.V(2, 4, 8), force: geom.V(0, math.Copysign(0, -1), 0), species: 0},
	}
	var st RankStats
	for i, f := range rankStatFields {
		f.Set(&st, float64(i*i)+0.5)
	}
	classes := []comm.Stats{
		{Messages: 10, Bytes: 480, Wait: 3 * time.Millisecond},
		{Messages: 0, Bytes: 0, Wait: 0},
		{Messages: 7, Bytes: 8, Wait: time.Nanosecond},
	}
	var b comm.Buffer
	encodeFinalGather(&b, fin, &st, classes)

	gotFin, gotSt, gotCls, err := decodeFinalGather(b.Bytes(), len(classes))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFin) != len(fin) {
		t.Fatalf("decoded %d atoms, want %d", len(gotFin), len(fin))
	}
	for i := range fin {
		if gotFin[i] != fin[i] {
			t.Errorf("atom %d: %+v, want %+v", i, gotFin[i], fin[i])
		}
	}
	for _, f := range rankStatFields {
		if f.Get(&gotSt) != f.Get(&st) {
			t.Errorf("stat %s: %g, want %g", f.Name, f.Get(&gotSt), f.Get(&st))
		}
	}
	for i := range classes {
		if gotCls[i] != classes[i] {
			t.Errorf("class %d: %+v, want %+v", i, gotCls[i], classes[i])
		}
	}
}

// TestFinalGatherRejectsMalformed: class-count and stat-table skew,
// truncation, and trailing garbage all come back as errors.
func TestFinalGatherRejectsMalformed(t *testing.T) {
	var b comm.Buffer
	var st RankStats
	encodeFinalGather(&b, []finalAtom{{id: 1}}, &st, make([]comm.Stats, 2))
	good := b.Bytes()
	if _, _, _, err := decodeFinalGather(good, 2); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if _, _, _, err := decodeFinalGather(good, 3); err == nil {
		t.Error("class-count skew accepted")
	}
	if _, _, _, err := decodeFinalGather(good[:len(good)-4], 2); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, _, _, err := decodeFinalGather(append(append([]byte(nil), good...), 0), 2); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, _, _, err := decodeFinalGather(nil, 2); err == nil {
		t.Error("empty payload accepted")
	}
}

// FuzzDecodeFinalGather: arbitrary bytes must decode or fail cleanly —
// never panic, never allocate absurdly (the atom count is validated
// against the payload size before the slice is made).
func FuzzDecodeFinalGather(f *testing.F) {
	var b comm.Buffer
	var st RankStats
	encodeFinalGather(&b, []finalAtom{{id: 1, species: 2}}, &st, make([]comm.Stats, 5))
	f.Add(b.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, raw []byte) {
		decodeFinalGather(raw, 5)
	})
}

// FuzzWireRecordDecode: the three exchange records decoded from
// arbitrary bytes must never panic; failures are typed.
func FuzzWireRecordDecode(f *testing.F) {
	var b comm.Buffer
	putHaloAtom(&b, 1, 2, geom.IV(3, 4, 5), geom.V(6, 7, 8))
	f.Add(b.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var rd comm.Reader
		rd.Reset(raw)
		for rd.Remaining() > 0 {
			getHaloAtom(&rd)
			getMigrant(&rd)
			getForce(&rd)
		}
		if err := rd.Err(); err != nil {
			var de *comm.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-typed error %T: %v", err, err)
			}
		}
	})
}
