package parmd

import (
	"math"
	"sync"
	"testing"

	"sctuple/internal/comm"
	"sctuple/internal/geom"
	"sctuple/internal/md"
)

// TestParallelWorkersBitIdentical: because the fixed shard count of
// the kernel accumulator — not the worker count — decides both the
// work partition and the reduction order, every Workers setting must
// produce bit-identical forces, energies, and trajectories.
func TestParallelWorkersBitIdentical(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 400, 5)
	cart, err := comm.NewCartDims(geom.IV(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes() {
		ref, err := Run(cfg, model, Options{
			Scheme: scheme, Cart: cart, Dt: 1, Steps: 3, Workers: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// Includes counts above computeShards, which get clamped.
		for _, workers := range []int{2, 4, computeShards, computeShards + 7} {
			res, err := Run(cfg, model, Options{
				Scheme: scheme, Cart: cart, Dt: 1, Steps: 3, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", scheme, workers, err)
			}
			if res.InitialPotential != ref.InitialPotential {
				t.Errorf("%v workers=%d: PE %v != %v (workers changed the result)",
					scheme, workers, res.InitialPotential, ref.InitialPotential)
			}
			for i := range ref.Forces {
				if res.Forces[i] != ref.Forces[i] {
					t.Fatalf("%v workers=%d: atom %d force differs bitwise from workers=1",
						scheme, workers, i)
				}
				if res.Final.Pos[i] != ref.Final.Pos[i] {
					t.Fatalf("%v workers=%d: atom %d position differs bitwise from workers=1",
						scheme, workers, i)
				}
			}
		}
	}
}

// TestParallelVirialMatchesSerial: the rank-local virial shares must
// sum to the serial engine's global virial (per-tuple virials are
// translation invariant, so the rank-local frames do not matter).
func TestParallelVirialMatchesSerial(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 300, 6)
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.Compute(sys); err != nil {
		t.Fatal(err)
	}
	want := serial.Stats().Virial

	for _, scheme := range Schemes() {
		for _, dims := range []geom.IVec3{{X: 1, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}} {
			cart, err := comm.NewCartDims(dims)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, model, Options{
				Scheme: scheme, Cart: cart, Dt: 1, Steps: 0, Workers: 2,
			})
			if err != nil {
				t.Fatalf("%v %v: %v", scheme, dims, err)
			}
			got := 0.0
			for _, rs := range res.RankStats {
				got += rs.Virial
			}
			if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
				t.Errorf("%v %v: virial %.10g, serial %.10g", scheme, dims, got, want)
			}
		}
	}
}

// TestConcurrentEnginesRaceStress drives the shared-memory concurrent
// engine and a multi-worker parallel sim at the same time for several
// steps — the -race exercise of every goroutine boundary in the
// kernel, halo, and write-back paths.
func TestConcurrentEnginesRaceStress(t *testing.T) {
	cfg, model := silicaConfig(t, 4, 600, 7)
	var wg sync.WaitGroup
	wg.Add(2)

	go func() {
		defer wg.Done()
		sys, err := md.NewSystem(cfg, model)
		if err != nil {
			t.Error(err)
			return
		}
		conc, err := md.NewConcurrentCellEngine(model, sys.Box, md.FamilySC, 4)
		if err != nil {
			t.Error(err)
			return
		}
		sim, err := md.NewSim(sys, conc, 1.0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sim.Run(5); err != nil {
			t.Error(err)
		}
	}()

	go func() {
		defer wg.Done()
		cart, err := comm.NewCartDims(geom.IV(2, 2, 1))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := Run(cfg, model, Options{
			Scheme: SchemeSC, Cart: cart, Dt: 1, Steps: 5, Workers: 4,
		}); err != nil {
			t.Error(err)
		}
	}()

	wg.Wait()
}
