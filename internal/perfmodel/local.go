package perfmodel

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sctuple/internal/comm"
	"sctuple/internal/md"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// LocalMachine returns a Machine profile calibrated to the current
// host, so the analytic model can be compared against real in-process
// runs (bench.Validate) in absolute milliseconds rather than only in
// operation counts.
//
// Calibration (once per process, cached):
//
//   - Compute: the serial SC engine evaluates forces on the reference
//     silica system; the four Xeon compute constants are scaled by the
//     ratio of the measured evaluation time to the time the Xeon
//     profile predicts for the same operation counts. The relative
//     weights between candidate filtering, path application, and
//     pair/triplet evaluation are kept from the Xeon fit — only the
//     overall throughput is refitted.
//
//   - Communication: λ and β are measured by ping-pong over the same
//     in-process channel transport the parallel engines run on — an
//     empty-payload round trip for the per-message latency and a 1 MiB
//     payload for the effective bandwidth. On shared memory both are
//     far better than any cluster interconnect, which is exactly the
//     point: the profile describes the machine the measured runs
//     actually used.
func LocalMachine() (Machine, error) {
	localOnce.Do(func() {
		localMachine, localErr = calibrateLocal()
	})
	return localMachine, localErr
}

var (
	localOnce    sync.Once
	localMachine Machine
	localErr     error
)

func calibrateLocal() (Machine, error) {
	m := IntelXeon()
	m.Name = "local"
	m.TasksPerNode = runtime.NumCPU()

	scale, err := measureComputeScale(m)
	if err != nil {
		return Machine{}, err
	}
	m.CandidateTime *= scale
	m.PathTime *= scale
	m.PairEvalTime *= scale
	m.TripletEvalTime *= scale

	lat, bw, err := measurePingPong()
	if err != nil {
		return Machine{}, err
	}
	m.Latency = lat
	m.Bandwidth = bw
	return m, nil
}

// measureComputeScale times serial SC force evaluations on the
// reference system and returns measured / Xeon-modeled time. The
// minimum over a few repetitions rejects scheduling noise.
func measureComputeScale(xeon Machine) (float64, error) {
	model := potential.NewSilicaModel()
	cfg := workload.UniformSilica(rand.New(rand.NewSource(1)), referenceN)
	sys, err := md.NewSystem(cfg, model)
	if err != nil {
		return 0, err
	}
	engine, err := md.NewCellEngine(model, sys.Box, md.FamilySC)
	if err != nil {
		return 0, err
	}
	// Warm-up evaluation; also the source of the operation counts.
	if _, err := engine.Compute(sys); err != nil {
		return 0, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := engine.Compute(sys); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}

	r, err := MeasureRates(parmd.SchemeSC)
	if err != nil {
		return 0, err
	}
	n := float64(cfg.N())
	modeled := n * (r.SearchPerAtom*xeon.CandidateTime + r.PathsPerAtom*xeon.PathTime +
		r.PairsPerAtom*xeon.PairEvalTime + r.TripletsPerAtom*xeon.TripletEvalTime)
	if modeled <= 0 {
		return 0, fmt.Errorf("perfmodel: degenerate modeled reference time")
	}
	return best.Seconds() / modeled, nil
}

// pingPongIters and pingPongBytes size the latency and bandwidth
// probes: enough round trips to average channel-scheduling jitter,
// and a payload large enough that copy time dominates hand-off time.
const (
	pingPongIters = 200
	pingPongBytes = 1 << 20
)

// measurePingPong runs a 2-rank ping-pong over the in-process channel
// transport and returns the effective one-way latency (s) and
// bandwidth (B/s).
func measurePingPong() (lat, bw float64, err error) {
	world := comm.NewWorld(2)
	err = world.Run(func(p *comm.Proc) error {
		peer := 1 - p.Rank()
		small := make([]byte, 8)
		big := make([]byte, pingPongBytes)

		// Warm up both directions (and the transport's buffers).
		for i := 0; i < 4; i++ {
			if p.Rank() == 0 {
				p.Send(peer, 1, small)
				p.Recv(peer, 1)
			} else {
				p.Recv(peer, 1)
				p.Send(peer, 1, small)
			}
		}
		p.Barrier()

		start := time.Now()
		for i := 0; i < pingPongIters; i++ {
			if p.Rank() == 0 {
				p.Send(peer, 1, small)
				p.Recv(peer, 1)
			} else {
				p.Recv(peer, 1)
				p.Send(peer, 1, small)
			}
		}
		if p.Rank() == 0 {
			// One round trip = two one-way messages.
			lat = time.Since(start).Seconds() / float64(2*pingPongIters)
		}
		p.Barrier()

		start = time.Now()
		for i := 0; i < 8; i++ {
			if p.Rank() == 0 {
				p.Send(peer, 1, big)
				p.Recv(peer, 1)
			} else {
				p.Recv(peer, 1)
				p.Send(peer, 1, big)
			}
		}
		if p.Rank() == 0 {
			oneWay := time.Since(start).Seconds() / 16
			bw = pingPongBytes / oneWay
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if lat <= 0 || bw <= 0 {
		return 0, 0, fmt.Errorf("perfmodel: ping-pong produced non-positive constants")
	}
	return lat, bw, nil
}
