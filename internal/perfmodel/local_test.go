package perfmodel

import "testing"

// TestLocalMachine checks the calibrated local profile: every constant
// positive, and the process-wide cache returns the identical profile.
func TestLocalMachine(t *testing.T) {
	m, err := LocalMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "local" {
		t.Errorf("name = %q, want local", m.Name)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"CandidateTime", m.CandidateTime},
		{"PathTime", m.PathTime},
		{"PairEvalTime", m.PairEvalTime},
		{"TripletEvalTime", m.TripletEvalTime},
		{"Latency", m.Latency},
		{"Bandwidth", m.Bandwidth},
		{"TasksPerNode", float64(m.TasksPerNode)},
	} {
		if !(c.v > 0) {
			t.Errorf("%s = %g, want > 0", c.name, c.v)
		}
	}
	again, err := LocalMachine()
	if err != nil {
		t.Fatal(err)
	}
	if again != m {
		t.Errorf("second call returned a different profile: %+v vs %+v", again, m)
	}
}
