// Package perfmodel regenerates the paper's cluster benchmarks
// (Figures 8 and 9) without the clusters: a calibrated analytic time
// model combines per-atom operation rates measured from this
// repository's real engines with machine profiles for the two
// platforms of §5 (the USC-HPCC Intel Xeon X5650 cluster and Argonne's
// BlueGene/Q).
//
// The model is
//
//	T_step = T_search + T_eval + T_comm,
//	T_search = candidates · t_cand,
//	T_eval   = pairs · t_pair + triplets · t_triplet,
//	T_comm   = n_msg · λ + bytes / β          (Eq. 31),
//
// per task on the critical path. Operation counts come from measured
// per-atom rates (package md engines on a uniform silica workload,
// the paper's benchmark application) times the task's atom count;
// import volumes come from the octant/full-shell halo geometry of
// package parmd ((l+1)³−l³ vs (l+2)³−l³ cells for a block of l³
// cells). Who wins, by how much, and where the SC↔Hybrid crossover
// falls are therefore emergent properties of the implemented
// algorithms; only the four machine constants per platform are fitted.
package perfmodel

// Machine holds the effective per-task performance constants of a
// platform. The compute constants reflect per-MPI-task throughput
// (the paper runs 4 tasks per BlueGene/Q core); the communication
// constants are effective end-to-end values including software
// overhead, fitted so the model reproduces the paper's measured
// crossovers and scaling efficiencies (see EXPERIMENTS.md).
type Machine struct {
	Name string
	// CandidateTime is the time to examine one tuple-search candidate (s).
	CandidateTime float64
	// PathTime is the overhead of applying one computation path to one
	// cell (loop control and cell-list lookups, paid even when the
	// cells are sparse or empty — the dominant fixed cost of searching
	// fine-grained triplet lattices) (s).
	PathTime float64
	// PairEvalTime is the time to evaluate one pair interaction (s).
	PairEvalTime float64
	// TripletEvalTime is the time to evaluate one triplet interaction (s).
	TripletEvalTime float64
	// Latency is the effective per-message time λ (s).
	Latency float64
	// Bandwidth is the effective link bandwidth β (B/s).
	Bandwidth float64
	// TasksPerNode is the number of MPI tasks per node in the paper's
	// configuration (12 on Xeon; 16 cores × 4 tasks = 64 on BG/Q).
	TasksPerNode int
}

// IntelXeon models the USC-HPCC cluster of §5: dual 6-core 2.33 GHz
// Xeon X5650 nodes (12 tasks/node), Myrinet-class interconnect.
// Constants are fitted to the paper's Fig. 8(a) fine-grain speedups
// and Fig. 9(a) strong-scaling efficiencies (see EXPERIMENTS.md for
// the fit and its residuals).
func IntelXeon() Machine {
	return Machine{
		Name:            "Intel-Xeon",
		CandidateTime:   1.80e-9,
		PathTime:        4.32e-9,
		PairEvalTime:    27e-9,
		TripletEvalTime: 54e-9,
		Latency:         1.6e-6,
		Bandwidth:       36.4e6,
		TasksPerNode:    12,
	}
}

// BlueGeneQ models Argonne's BlueGene/Q of §5: 1.6 GHz PowerPC A2
// cores with 4 MPI tasks per core (64 tasks/node), 5-D torus network.
// Per-task compute is several times slower than a Xeon core while the
// torus network is relatively stronger — which is why the SC↔Hybrid
// crossover moves to much finer granularity than on Xeon (paper
// Fig. 8). Constants fitted as for IntelXeon.
func BlueGeneQ() Machine {
	return Machine{
		Name:            "BlueGene/Q",
		CandidateTime:   6.25e-9,
		PathTime:        0.5e-9,
		PairEvalTime:    94e-9,
		TripletEvalTime: 188e-9,
		Latency:         0.5e-6,
		Bandwidth:       75e6,
		TasksPerNode:    64,
	}
}

// Machines returns both platform profiles.
func Machines() []Machine { return []Machine{IntelXeon(), BlueGeneQ()} }
