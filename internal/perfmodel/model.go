package perfmodel

import (
	"fmt"
	"math"

	"sctuple/internal/parmd"
	"sctuple/internal/workload"
)

// Silica workload geometry shared by all of §5's benchmarks.
const (
	// CellSide is the pair cell side (= r_cut2 of the silica model).
	CellSide = 5.5
	// AtomsPerCell is ⟨ρ_cell⟩ for amorphous-silica density and
	// pair-sized cells.
	AtomsPerCell = workload.SilicaDensity * CellSide * CellSide * CellSide
	// haloAtomBytes and forceBytes are the implemented wire sizes of
	// one imported atom and one written-back force — taken from the
	// shared wire codec so Eq. 31's byte accounting can never drift
	// from what the exchange actually sends.
	haloAtomBytes = parmd.HaloAtomWireBytes
	forceBytes    = parmd.ForceWireBytes
)

// StepTime is the modeled per-step wall time of one task, decomposed.
type StepTime struct {
	Search  float64 // tuple-search (filtering) time
	Eval    float64 // interaction evaluation time
	Latency float64 // per-message λ·n_msg
	Volume  float64 // bytes/β
}

// Total returns the full step time.
func (t StepTime) Total() float64 { return t.Search + t.Eval + t.Latency + t.Volume }

// Comm returns the communication part.
func (t StepTime) Comm() float64 { return t.Latency + t.Volume }

// Model predicts per-step times for the silica workload on one
// machine.
type Model struct {
	Machine Machine
	rates   map[parmd.Scheme]Rates
}

// NewModel builds a model, measuring engine rates on first use.
func NewModel(m Machine) (*Model, error) {
	rates := make(map[parmd.Scheme]Rates)
	for _, s := range parmd.Schemes() {
		r, err := MeasureRates(s)
		if err != nil {
			return nil, err
		}
		rates[s] = r
	}
	return &Model{Machine: m, rates: rates}, nil
}

// Rates returns the measured per-atom rates of a scheme.
func (m *Model) Rates(s parmd.Scheme) Rates { return m.rates[s] }

// ImportAtoms returns the modeled number of halo atoms a task imports
// per step at granularity nPerTask, matching the halo geometry of
// package parmd for the silica workload (n_max = 3): SC-MD imports the
// one-cell upper-corner octant slab ((l+1)³ − l³ cells — r_cut3 <
// r_cut2/2 keeps triplet chains inside the first cell layer); FS-MD
// imports the full coverage of its pattern, a shell of thickness
// n_max−1 = 2 on every side ((l+4)³ − l³); Hybrid-MD inherits FS-MD's
// import unchanged (§5). l = (n/⟨ρ_cell⟩)^(1/3) is the block side in
// cells.
func ImportAtoms(scheme parmd.Scheme, nPerTask float64) float64 {
	l := math.Cbrt(nPerTask / AtomsPerCell)
	var cells float64
	switch scheme {
	case parmd.SchemeSC:
		cells = math.Pow(l+1, 3) - l*l*l
	default:
		cells = math.Pow(l+4, 3) - l*l*l
	}
	return cells * AtomsPerCell
}

// MessagesPerStep returns the per-step message count of a task:
// import plus force write-back phases (3+3 for SC's forwarded octant
// routing, 6+6 for the full shell) plus the 6 staged migration
// exchanges.
func MessagesPerStep(scheme parmd.Scheme) float64 {
	switch scheme {
	case parmd.SchemeSC:
		return 3 + 3 + 6
	default:
		return 6 + 6 + 6
	}
}

// StepTime returns the modeled per-step time of one task owning
// nPerTask atoms.
func (m *Model) StepTime(scheme parmd.Scheme, nPerTask float64) StepTime {
	r := m.rates[scheme]
	imported := ImportAtoms(scheme, nPerTask)
	bytes := imported * (haloAtomBytes + forceBytes)
	return StepTime{
		Search:  nPerTask * (r.SearchPerAtom*m.Machine.CandidateTime + r.PathsPerAtom*m.Machine.PathTime),
		Eval:    nPerTask * (r.PairsPerAtom*m.Machine.PairEvalTime + r.TripletsPerAtom*m.Machine.TripletEvalTime),
		Latency: MessagesPerStep(scheme) * m.Machine.Latency,
		Volume:  bytes / m.Machine.Bandwidth,
	}
}

// Fig8Row is one granularity point of Figure 8: modeled runtime per
// MD step for the three codes at N/P = Grain.
type Fig8Row struct {
	Grain float64
	SC    StepTime
	FS    StepTime
	Hy    StepTime
}

// Fig8 sweeps granularity (atoms per task) and returns the modeled
// runtimes of the three codes — the reproduction of Figure 8(a)/(b).
func (m *Model) Fig8(grains []float64) []Fig8Row {
	rows := make([]Fig8Row, len(grains))
	for i, g := range grains {
		rows[i] = Fig8Row{
			Grain: g,
			SC:    m.StepTime(parmd.SchemeSC, g),
			FS:    m.StepTime(parmd.SchemeFS, g),
			Hy:    m.StepTime(parmd.SchemeHybrid, g),
		}
	}
	return rows
}

// Crossover locates the granularity where SC-MD and Hybrid-MD trade
// the advantage (paper: ≈ 2095 on Xeon, ≈ 425 on BG/Q), by bisection
// over [lo, hi]. It returns an error when no crossover exists in the
// bracket.
func (m *Model) Crossover(lo, hi float64) (float64, error) {
	diff := func(g float64) float64 {
		return m.StepTime(parmd.SchemeSC, g).Total() - m.StepTime(parmd.SchemeHybrid, g).Total()
	}
	dlo, dhi := diff(lo), diff(hi)
	if dlo*dhi > 0 {
		return 0, fmt.Errorf("perfmodel: no SC/Hybrid crossover in [%g, %g]", lo, hi)
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi) // bisect in log space
		if diff(mid)*dlo <= 0 {
			hi = mid
		} else {
			lo = mid
			dlo = diff(lo)
		}
	}
	return math.Sqrt(lo * hi), nil
}

// Fig9Row is one point of the strong-scaling Figure 9.
type Fig9Row struct {
	Tasks  int
	Grain  float64
	SC     float64 // speedup vs reference
	FS     float64
	Hy     float64
	SCEff  float64 // parallel efficiency
	FSEff  float64
	HyEff  float64
	SCTime float64 // modeled step time (s)
	FSTime float64
	HyTime float64
}

// Fig9 models strong scaling of a fixed N-atom silica system over the
// given task counts, with speedups referenced to refTasks (one node in
// the paper's runs): S = T(ref)·(something fixed N) / T(P), η =
// S/(P/ref).
func (m *Model) Fig9(nAtoms float64, taskCounts []int, refTasks int) []Fig9Row {
	ref := map[parmd.Scheme]float64{}
	for _, s := range parmd.Schemes() {
		ref[s] = m.StepTime(s, nAtoms/float64(refTasks)).Total()
	}
	rows := make([]Fig9Row, len(taskCounts))
	for i, p := range taskCounts {
		g := nAtoms / float64(p)
		tSC := m.StepTime(parmd.SchemeSC, g).Total()
		tFS := m.StepTime(parmd.SchemeFS, g).Total()
		tHy := m.StepTime(parmd.SchemeHybrid, g).Total()
		scale := float64(p) / float64(refTasks)
		rows[i] = Fig9Row{
			Tasks: p, Grain: g,
			SC: ref[parmd.SchemeSC] / tSC, FS: ref[parmd.SchemeFS] / tFS, Hy: ref[parmd.SchemeHybrid] / tHy,
			SCTime: tSC, FSTime: tFS, HyTime: tHy,
		}
		rows[i].SCEff = rows[i].SC / scale
		rows[i].FSEff = rows[i].FS / scale
		rows[i].HyEff = rows[i].Hy / scale
	}
	return rows
}
