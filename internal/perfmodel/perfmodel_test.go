package perfmodel

import (
	"math"
	"testing"

	"sctuple/internal/parmd"
)

func TestMeasuredRatesSanity(t *testing.T) {
	sc, err := MeasureRates(parmd.SchemeSC)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := MeasureRates(parmd.SchemeFS)
	hy, _ := MeasureRates(parmd.SchemeHybrid)

	// All schemes evaluate the same physics: identical tuple counts.
	if math.Abs(sc.PairsPerAtom-hy.PairsPerAtom) > 1e-9 ||
		math.Abs(sc.TripletsPerAtom-hy.TripletsPerAtom) > 1e-9 ||
		math.Abs(sc.PairsPerAtom-fs.PairsPerAtom) > 1e-9 {
		t.Errorf("tuple counts differ across schemes: SC %+v FS %+v Hy %+v", sc, fs, hy)
	}
	// §5.1: FS searches about twice as many candidates as SC.
	if r := fs.SearchPerAtom / sc.SearchPerAtom; r < 1.7 || r > 2.2 {
		t.Errorf("FS/SC search ratio %g, want ≈ 27/14", r)
	}
	// Hybrid prunes triplets from the pair list: cheapest search.
	if !(hy.SearchPerAtom < sc.SearchPerAtom) {
		t.Errorf("Hybrid search %g not below SC %g", hy.SearchPerAtom, sc.SearchPerAtom)
	}
	// Pattern-application overhead dominates for the cell codes only.
	if !(sc.PathsPerAtom > 50 && hy.PathsPerAtom < 10) {
		t.Errorf("path application rates: SC %g, Hy %g", sc.PathsPerAtom, hy.PathsPerAtom)
	}
	// Physical plausibility of the silica workload: ~23 pairs within
	// 5.5 Å and ~9 triplets within 2.6 Å per atom.
	if sc.PairsPerAtom < 15 || sc.PairsPerAtom > 35 {
		t.Errorf("pairs per atom %g outside silica expectation", sc.PairsPerAtom)
	}
}

func TestImportGeometry(t *testing.T) {
	// SC imports must stay below the baselines at every granularity,
	// approaching the 3l² vs 12l² surface ratio of 1/4 for large l.
	for _, g := range []float64{24, 100, 1000, 10000, 1e6} {
		sc := ImportAtoms(parmd.SchemeSC, g)
		fs := ImportAtoms(parmd.SchemeFS, g)
		hy := ImportAtoms(parmd.SchemeHybrid, g)
		if !(sc < fs) || fs != hy {
			t.Errorf("g=%g: imports SC %g FS %g Hy %g", g, sc, fs, hy)
		}
	}
	r := ImportAtoms(parmd.SchemeSC, 1e9) / ImportAtoms(parmd.SchemeFS, 1e9)
	if math.Abs(r-0.25) > 0.02 {
		t.Errorf("asymptotic SC/FS import ratio %g, want ≈ 1/4", r)
	}
}

func TestModelFig8Shape(t *testing.T) {
	for _, machine := range Machines() {
		m, err := NewModel(machine)
		if err != nil {
			t.Fatal(err)
		}
		// SC-MD must be fastest at the finest grain of Fig. 8.
		fine := m.Fig8([]float64{24})[0]
		if !(fine.SC.Total() < fine.Hy.Total() && fine.SC.Total() < fine.FS.Total()) {
			t.Errorf("%s: SC not fastest at N/P=24", machine.Name)
		}
		// FS-MD is never the winner (paper Fig. 8: SC or Hybrid win).
		for _, g := range []float64{24, 300, 3000, 3e5} {
			row := m.Fig8([]float64{g})[0]
			if row.FS.Total() < row.SC.Total() && row.FS.Total() < row.Hy.Total() {
				t.Errorf("%s: FS wins at g=%g", machine.Name, g)
			}
		}
		// Runtime must be monotonically increasing in granularity.
		rows := m.Fig8([]float64{24, 100, 425, 2095, 10000})
		for i := 1; i < len(rows); i++ {
			if rows[i].SC.Total() <= rows[i-1].SC.Total() {
				t.Errorf("%s: SC time not increasing at %g", machine.Name, rows[i].Grain)
			}
		}
	}
}

func TestModelCrossoversExistAndOrder(t *testing.T) {
	xeon, err := NewModel(IntelXeon())
	if err != nil {
		t.Fatal(err)
	}
	bgq, err := NewModel(BlueGeneQ())
	if err != nil {
		t.Fatal(err)
	}
	xx, err := xeon.Crossover(30, 1e8)
	if err != nil {
		t.Fatalf("Xeon: %v", err)
	}
	xb, err := bgq.Crossover(30, 1e8)
	if err != nil {
		t.Fatalf("BGQ: %v", err)
	}
	// Paper Fig. 8: the BG/Q crossover falls at considerably finer
	// granularity than the Xeon one (425 vs 2095 in the paper).
	if !(xb < xx/3) {
		t.Errorf("crossovers: BGQ %g not well below Xeon %g", xb, xx)
	}
}

func TestModelFineGrainSpeedups(t *testing.T) {
	// The paper's headline finest-grain speedups: 9.7×/10.5× over
	// Hybrid/FS on Xeon, 5.1×/5.7× on BG/Q (§5.2). The model must land
	// within ±25%.
	cases := []struct {
		m    Machine
		vsHy float64
		vsFS float64
	}{
		{IntelXeon(), 9.7, 10.5},
		{BlueGeneQ(), 5.1, 5.7},
	}
	for _, c := range cases {
		m, err := NewModel(c.m)
		if err != nil {
			t.Fatal(err)
		}
		row := m.Fig8([]float64{24})[0]
		gotHy := row.Hy.Total() / row.SC.Total()
		gotFS := row.FS.Total() / row.SC.Total()
		if math.Abs(gotHy-c.vsHy)/c.vsHy > 0.25 {
			t.Errorf("%s: SC speedup vs Hybrid at N/P=24 = %.2f, paper %.1f", c.m.Name, gotHy, c.vsHy)
		}
		if math.Abs(gotFS-c.vsFS)/c.vsFS > 0.25 {
			t.Errorf("%s: SC speedup vs FS at N/P=24 = %.2f, paper %.1f", c.m.Name, gotFS, c.vsFS)
		}
	}
}

func TestModelFig9Shape(t *testing.T) {
	// Strong scaling of 0.88 M atoms on Xeon, 12 → 768 tasks: SC stays
	// far more efficient than both baselines, baselines collapse.
	m, err := NewModel(IntelXeon())
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Fig9(0.88e6, []int{12, 48, 192, 768}, 12)
	last := rows[len(rows)-1]
	if !(last.SCEff > 0.6) {
		t.Errorf("SC efficiency at 768 tasks = %.2f, want > 0.6 (paper 0.926)", last.SCEff)
	}
	if !(last.FSEff < 0.55 && last.HyEff < 0.4) {
		t.Errorf("baseline efficiencies FS %.2f Hy %.2f too high (paper 0.383/0.268)", last.FSEff, last.HyEff)
	}
	if !(last.SCEff > last.FSEff && last.FSEff > last.HyEff) {
		t.Errorf("Xeon efficiency ordering broken: SC %.2f FS %.2f Hy %.2f", last.SCEff, last.FSEff, last.HyEff)
	}
	// Reference row scales to exactly 1.
	if math.Abs(rows[0].SC-1) > 1e-12 || math.Abs(rows[0].SCEff-1) > 1e-12 {
		t.Errorf("reference row speedup %.3f eff %.3f", rows[0].SC, rows[0].SCEff)
	}
	// Speedups must increase with task count for SC.
	for i := 1; i < len(rows); i++ {
		if rows[i].SC <= rows[i-1].SC {
			t.Errorf("SC speedup not increasing at %d tasks", rows[i].Tasks)
		}
	}
}

func TestModelExtremeScalePoint(t *testing.T) {
	// §5.3: 50.3 M atoms on up to 524 288 BG/Q cores (2 097 152 tasks),
	// reference 128 cores (512 tasks): SC keeps > 60% efficiency.
	m, err := NewModel(BlueGeneQ())
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Fig9(50.3e6, []int{512, 16384, 524288, 2097152}, 512)
	last := rows[len(rows)-1]
	if !(last.SCEff > 0.6) {
		t.Errorf("extreme-scale SC efficiency %.2f, want > 0.6 (paper 0.919)", last.SCEff)
	}
}

func TestCrossoverErrorWhenNoBracket(t *testing.T) {
	m, err := NewModel(IntelXeon())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Crossover(30, 40); err == nil {
		t.Error("expected bracket error")
	}
}
