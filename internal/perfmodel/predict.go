package perfmodel

import "sctuple/internal/parmd"

// StepPrediction is the model's per-step expectation in nanoseconds,
// decomposed the way the flight recorder classifies measured phases:
// compute (search + evaluation) versus communication (latency +
// volume). Plain floats so the telemetry layer can consume it without
// importing this package (which sits above parmd).
type StepPrediction struct {
	ComputeNs float64
	CommNs    float64
	TotalNs   float64
}

// PredictStep maps StepTime (seconds) onto the telemetry layer's
// nanosecond compute/comm decomposition for one task owning nPerTask
// atoms — the bridge scmd uses to arm the flight recorder's
// model-residual detector.
func (m *Model) PredictStep(scheme parmd.Scheme, nPerTask float64) StepPrediction {
	t := m.StepTime(scheme, nPerTask)
	return StepPrediction{
		ComputeNs: (t.Search + t.Eval) * 1e9,
		CommNs:    t.Comm() * 1e9,
		TotalNs:   t.Total() * 1e9,
	}
}
