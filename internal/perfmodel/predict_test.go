package perfmodel

import (
	"math"
	"testing"

	"sctuple/internal/parmd"
)

func TestPredictStepMatchesStepTime(t *testing.T) {
	m, err := NewModel(IntelXeon())
	if err != nil {
		t.Fatal(err)
	}
	const grain = 1000
	for _, scheme := range parmd.Schemes() {
		st := m.StepTime(scheme, grain)
		p := m.PredictStep(scheme, grain)
		if p.ComputeNs <= 0 || p.CommNs <= 0 {
			t.Fatalf("%v: non-positive prediction %+v", scheme, p)
		}
		if math.Abs(p.ComputeNs-(st.Search+st.Eval)*1e9) > 1 {
			t.Errorf("%v: compute %g ns, want %g", scheme, p.ComputeNs, (st.Search+st.Eval)*1e9)
		}
		if math.Abs(p.CommNs-st.Comm()*1e9) > 1 {
			t.Errorf("%v: comm %g ns, want %g", scheme, p.CommNs, st.Comm()*1e9)
		}
		if math.Abs(p.TotalNs-(p.ComputeNs+p.CommNs)) > 1 {
			t.Errorf("%v: total %g ns != compute+comm %g", scheme, p.TotalNs, p.ComputeNs+p.CommNs)
		}
	}
}
