package perfmodel

import (
	"fmt"
	"math/rand"
	"sync"

	"sctuple/internal/md"
	"sctuple/internal/parmd"
	"sctuple/internal/potential"
	"sctuple/internal/workload"
)

// Rates holds the per-owned-atom, per-step operation counts of one
// scheme on the silica workload, measured by running the repository's
// real serial engines on a uniform reference system. These are
// density-dependent constants (the benchmarks keep ⟨ρ_cell⟩ fixed, as
// the paper does in §5.1), so they scale linearly to any granularity.
type Rates struct {
	SearchPerAtom   float64 // tuple-search candidates examined
	PathsPerAtom    float64 // (cell, path) pattern applications
	PairsPerAtom    float64 // pair interactions evaluated
	TripletsPerAtom float64 // triplet interactions evaluated
}

// referenceN is the size of the measurement system: large enough that
// every per-term lattice satisfies its pattern-span requirement and
// boundary noise is negligible, small enough to measure in
// milliseconds.
const referenceN = 3000

var (
	ratesOnce sync.Once
	ratesMap  map[parmd.Scheme]Rates
	ratesErr  error
)

// MeasureRates returns the per-atom operation rates of a scheme on
// the silica workload. Rates are measured once per process and
// cached; the reference configuration is deterministic.
func MeasureRates(scheme parmd.Scheme) (Rates, error) {
	ratesOnce.Do(func() {
		ratesMap, ratesErr = measureAll()
	})
	if ratesErr != nil {
		return Rates{}, ratesErr
	}
	return ratesMap[scheme], nil
}

func measureAll() (map[parmd.Scheme]Rates, error) {
	model := potential.NewSilicaModel()
	cfg := workload.UniformSilica(rand.New(rand.NewSource(1)), referenceN)
	out := make(map[parmd.Scheme]Rates)
	for _, scheme := range parmd.Schemes() {
		sys, err := md.NewSystem(cfg, model)
		if err != nil {
			return nil, err
		}
		var engine md.Engine
		switch scheme {
		case parmd.SchemeSC:
			engine, err = md.NewCellEngine(model, sys.Box, md.FamilySC)
		case parmd.SchemeFS:
			engine, err = md.NewCellEngine(model, sys.Box, md.FamilyFS)
		case parmd.SchemeHybrid:
			engine, err = md.NewHybridEngine(model, sys.Box)
		}
		if err != nil {
			return nil, fmt.Errorf("perfmodel: %v: %w", scheme, err)
		}
		if _, err := engine.Compute(sys); err != nil {
			return nil, fmt.Errorf("perfmodel: %v: %w", scheme, err)
		}
		st := engine.Stats()
		n := float64(cfg.N())
		out[scheme] = Rates{
			SearchPerAtom:   float64(st.SearchCandidates) / n,
			PathsPerAtom:    float64(st.PathApplications) / n,
			PairsPerAtom:    float64(st.TermTuples[2]) / n,
			TripletsPerAtom: float64(st.TermTuples[3]) / n,
		}
	}
	return out, nil
}
