package potential

import (
	"math"

	"sctuple/internal/geom"
)

// LennardJones is the truncated-and-shifted 12-6 Lennard-Jones pair
// potential
//
//	V(r) = 4ε[(σ/r)¹² − (σ/r)⁶] − V(rc)   for r < rc,
//
// a single-species pair (n = 2) term. The shift removes the energy
// discontinuity at the cutoff; the residual force discontinuity is
// O(ε/rc⁷) and negligible for rc ≥ 2.5σ.
type LennardJones struct {
	Epsilon float64 // well depth ε (eV)
	Sigma   float64 // zero-crossing distance σ (Å)
	Rc      float64 // cutoff (Å)

	shift float64 // V(rc) before shifting
}

// NewLennardJones builds the term and precomputes the energy shift.
func NewLennardJones(epsilon, sigma, rc float64) *LennardJones {
	lj := &LennardJones{Epsilon: epsilon, Sigma: sigma, Rc: rc}
	sr6 := math.Pow(sigma/rc, 6)
	lj.shift = 4 * epsilon * (sr6*sr6 - sr6)
	return lj
}

// NewLJModel wraps a Lennard-Jones term in a single-species model with
// the given atomic mass.
func NewLJModel(epsilon, sigma, rc, mass float64) *Model {
	return &Model{
		Name:    "lennard-jones",
		Species: []Species{{Name: "LJ", Mass: mass}},
		Terms:   []Term{NewLennardJones(epsilon, sigma, rc)},
	}
}

// N returns 2.
func (lj *LennardJones) N() int { return 2 }

// Cutoff returns the pair cutoff.
func (lj *LennardJones) Cutoff() float64 { return lj.Rc }

// Eval implements Term for the pair (i, j).
func (lj *LennardJones) Eval(_ []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	d := pos[0].Sub(pos[1])
	r2 := d.Norm2()
	if r2 >= lj.Rc*lj.Rc || r2 == 0 {
		return 0
	}
	s2 := lj.Sigma * lj.Sigma / r2
	s6 := s2 * s2 * s2
	s12 := s6 * s6
	e := 4*lj.Epsilon*(s12-s6) - lj.shift
	// F_i = -∂V/∂r_i = (24ε/r²)(2(σ/r)¹² − (σ/r)⁶) · (r_i − r_j)
	fr := 24 * lj.Epsilon * (2*s12 - s6) / r2
	fv := d.Scale(fr)
	f[0] = f[0].Add(fv)
	f[1] = f[1].Sub(fv)
	return e
}
