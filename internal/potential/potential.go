// Package potential implements the many-body interatomic potentials
// used by the MD engine: the n-body terms Φn of Eq. 2 in the paper.
//
// Each Term evaluates one n-body contribution per tuple, following the
// chain semantics of the tuple enumerator: a tuple (r0,…,r(n-1)) is a
// chain whose consecutive members lie within the term's link cutoff
// (Eq. 6). Pair terms see (i,j); three-body terms see (i,j,k) with j
// the central atom (both links attach to j); four-body terms see the
// dihedral chain (i,j,k,l).
//
// Terms return the tuple energy and accumulate forces on every tuple
// member simultaneously (Eq. 4), so Newton's third law holds exactly:
// the forces of one tuple always sum to zero.
//
// The package provides:
//
//   - LennardJones — classic pair fluid, for quickstarts and tests.
//   - Vashishta — the Vashishta-Rahman-Kalia 2+3-body silica model
//     (Vashishta et al., PRB 41, 12197 (1990)), the paper's benchmark
//     application, with r_cut3/r_cut2 ≈ 0.47.
//   - StillingerWeber — 2+3-body silicon.
//   - Torsion — a 4-body dihedral toy exercising n = 4 paths.
//
// Units: Å for length, eV for energy, amu for mass, and the derived
// time unit with fs conversions handled by package md.
package potential

import (
	"fmt"

	"sctuple/internal/geom"
)

// Term is one n-body potential term Φn.
type Term interface {
	// N returns the tuple length of the term (2 for pair terms, …).
	N() int
	// Cutoff returns the link cutoff r_cut-n applied between
	// consecutive tuple members during enumeration.
	Cutoff() float64
	// Eval returns the energy of one tuple and adds the forces on its
	// members into f (f has length N, parallel to pos). pos holds
	// image-resolved positions: consecutive members are geometrically
	// adjacent, so plain differences are correct displacements.
	// species holds the model species index of each member.
	Eval(species []int32, pos []geom.Vec3, f []geom.Vec3) float64
}

// Species describes one atom type of a model.
type Species struct {
	Name string
	Mass float64 // amu
}

// Model bundles the species table and the n-body terms of a force
// field. MaxN and MaxCutoff drive cell-lattice sizing.
type Model struct {
	Name    string
	Species []Species
	Terms   []Term
}

// MaxN returns the largest tuple length among the terms.
func (m *Model) MaxN() int {
	n := 0
	for _, t := range m.Terms {
		if t.N() > n {
			n = t.N()
		}
	}
	return n
}

// MaxCutoff returns the largest link cutoff among the terms, the
// minimum cell side for a single shared cell lattice.
func (m *Model) MaxCutoff() float64 {
	c := 0.0
	for _, t := range m.Terms {
		if t.Cutoff() > c {
			c = t.Cutoff()
		}
	}
	return c
}

// SpeciesIndex returns the index of the named species, or an error.
func (m *Model) SpeciesIndex(name string) (int32, error) {
	for i, s := range m.Species {
		if s.Name == name {
			return int32(i), nil
		}
	}
	return 0, fmt.Errorf("potential: model %q has no species %q", m.Name, name)
}

// Validate checks structural sanity of the model.
func (m *Model) Validate() error {
	if len(m.Species) == 0 {
		return fmt.Errorf("potential: model %q has no species", m.Name)
	}
	for _, s := range m.Species {
		if !(s.Mass > 0) {
			return fmt.Errorf("potential: species %q has non-positive mass", s.Name)
		}
	}
	if len(m.Terms) == 0 {
		return fmt.Errorf("potential: model %q has no terms", m.Name)
	}
	for _, t := range m.Terms {
		if t.N() < 2 {
			return fmt.Errorf("potential: term with n=%d < 2", t.N())
		}
		if !(t.Cutoff() > 0) {
			return fmt.Errorf("potential: term with non-positive cutoff")
		}
	}
	return nil
}

// NumericalForces computes -∂E/∂r for one tuple by central differences
// of a Term's energy, for verifying analytic forces in tests. h is the
// displacement step (1e-5 Å is a good default).
func NumericalForces(t Term, species []int32, pos []geom.Vec3, h float64) []geom.Vec3 {
	n := len(pos)
	f := make([]geom.Vec3, n)
	work := make([]geom.Vec3, n)
	sink := make([]geom.Vec3, n)
	energy := func() float64 {
		for i := range sink {
			sink[i] = geom.Vec3{}
		}
		return t.Eval(species, work, sink)
	}
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			copy(work, pos)
			work[i].SetComp(c, pos[i].Comp(c)+h)
			ep := energy()
			copy(work, pos)
			work[i].SetComp(c, pos[i].Comp(c)-h)
			em := energy()
			f[i].SetComp(c, -(ep-em)/(2*h))
		}
	}
	return f
}
