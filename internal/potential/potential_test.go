package potential

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
)

// checkForces compares the analytic forces of a term against central
// differences for many random tuples within the cutoff.
func checkForces(t *testing.T, term Term, species []int32, trials int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := term.N()
	rc := term.Cutoff()
	for trial := 0; trial < trials; trial++ {
		// Random chain with links in (0.55, 0.95)·rc: inside the
		// cutoff and away from both the singular core and the cutoff
		// edge, where finite differences lose accuracy.
		pos := make([]geom.Vec3, n)
		pos[0] = geom.V(rng.Float64(), rng.Float64(), rng.Float64())
		for k := 1; k < n; k++ {
			dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
			r := rc * (0.55 + 0.4*rng.Float64())
			pos[k] = pos[k-1].Add(dir.Scale(r))
		}
		analytic := make([]geom.Vec3, n)
		e := term.Eval(species, pos, analytic)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("trial %d: energy %v", trial, e)
		}
		numeric := NumericalForces(term, species, pos, 1e-6)
		scale := 1.0
		for i := range analytic {
			if m := analytic[i].Norm(); m > scale {
				scale = m
			}
		}
		for i := range analytic {
			diff := analytic[i].Sub(numeric[i]).Norm()
			if diff > tol*scale {
				t.Fatalf("trial %d atom %d: analytic %v numeric %v (diff %g, scale %g)",
					trial, i, analytic[i], numeric[i], diff, scale)
			}
		}
		// Newton's third law: per-tuple forces sum to zero.
		var sum geom.Vec3
		for _, fv := range analytic {
			sum = sum.Add(fv)
		}
		if sum.Norm() > 1e-9*scale {
			t.Fatalf("trial %d: tuple forces sum to %v", trial, sum)
		}
	}
}

func TestLennardJonesForces(t *testing.T) {
	lj := NewLennardJones(1.0, 1.0, 2.5)
	checkForces(t, lj, []int32{0, 0}, 200, 1, 1e-5)
}

func TestLennardJonesEnergyShift(t *testing.T) {
	lj := NewLennardJones(1.0, 1.0, 2.5)
	f := make([]geom.Vec3, 2)
	// Just inside the cutoff the energy must be ≈ 0 (continuous).
	e := lj.Eval(nil, []geom.Vec3{{}, geom.V(2.4999, 0, 0)}, f)
	if math.Abs(e) > 1e-3 {
		t.Errorf("energy near cutoff = %g, want ≈ 0", e)
	}
	// Outside the cutoff: exactly zero, no force.
	f[0], f[1] = geom.Vec3{}, geom.Vec3{}
	if e := lj.Eval(nil, []geom.Vec3{{}, geom.V(2.6, 0, 0)}, f); e != 0 || f[0] != (geom.Vec3{}) {
		t.Error("interaction beyond cutoff")
	}
	// Minimum at r = 2^(1/6)σ with depth ≈ ε (modulo the small shift).
	rmin := math.Pow(2, 1.0/6.0)
	e = lj.Eval(nil, []geom.Vec3{{}, geom.V(rmin, 0, 0)}, f)
	if math.Abs(e-(-1.0-(-0.0163))) > 2e-2 {
		t.Errorf("well depth = %g, want ≈ -1+shift", e)
	}
}

func TestVashishtaPairForces(t *testing.T) {
	m := NewSilicaModel()
	pair := m.Terms[0]
	for _, sp := range [][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		checkForces(t, pair, sp, 100, 2, 1e-4)
	}
}

func TestVashishtaPairSymmetric(t *testing.T) {
	m := NewSilicaModel()
	pair := m.Terms[0]
	pos := []geom.Vec3{{}, geom.V(2.1, 0.7, -0.4)}
	f := make([]geom.Vec3, 2)
	e1 := pair.Eval([]int32{0, 1}, pos, f)
	e2 := pair.Eval([]int32{1, 0}, pos, f)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("Si-O %g != O-Si %g", e1, e2)
	}
}

func TestVashishtaPairCutoffContinuity(t *testing.T) {
	m := NewSilicaModel()
	pair := m.Terms[0]
	f := make([]geom.Vec3, 2)
	for _, sp := range [][]int32{{0, 0}, {0, 1}, {1, 1}} {
		e := pair.Eval(sp, []geom.Vec3{{}, geom.V(5.4999, 0, 0)}, f)
		if math.Abs(e) > 1e-5 {
			t.Errorf("species %v: energy at cutoff = %g, want ≈ 0 (shifted)", sp, e)
		}
		// Force-shifted: force also ≈ 0 at the cutoff.
		f[0], f[1] = geom.Vec3{}, geom.Vec3{}
		pair.Eval(sp, []geom.Vec3{{}, geom.V(5.4999, 0, 0)}, f)
		if f[0].Norm() > 1e-4 {
			t.Errorf("species %v: force at cutoff = %v, want ≈ 0", sp, f[0])
		}
	}
}

func TestVashishtaTripletForces(t *testing.T) {
	m := NewSilicaModel()
	trip := m.Terms[1]
	// O-Si-O (center Si) and Si-O-Si (center O).
	checkForces(t, trip, []int32{1, 0, 1}, 100, 3, 1e-4)
	checkForces(t, trip, []int32{0, 1, 0}, 100, 4, 1e-4)
}

func TestVashishtaTripletInactiveCombinations(t *testing.T) {
	m := NewSilicaModel()
	trip := m.Terms[1]
	f := make([]geom.Vec3, 3)
	pos := []geom.Vec3{{}, geom.V(1.8, 0, 0), geom.V(1.8, 1.8, 0)}
	// Si-Si-Si and O-O-O have no bond-bending term (B = 0).
	if e := trip.Eval([]int32{0, 0, 0}, pos, f); e != 0 {
		t.Errorf("Si-Si-Si energy %g, want 0", e)
	}
	if e := trip.Eval([]int32{1, 1, 1}, pos, f); e != 0 {
		t.Errorf("O-O-O energy %g, want 0", e)
	}
}

func TestVashishtaTripletAngularMinimum(t *testing.T) {
	// The O-Si-O term must vanish exactly at the tetrahedral angle and
	// be positive elsewhere.
	m := NewSilicaModel()
	trip := m.Terms[1]
	f := make([]geom.Vec3, 3)
	r := 1.62 // typical Si-O bond length
	cos0 := -1.0 / 3.0
	theta0 := math.Acos(cos0)
	mk := func(theta float64) []geom.Vec3 {
		return []geom.Vec3{
			geom.V(r, 0, 0),
			{},
			geom.V(r*math.Cos(theta), r*math.Sin(theta), 0),
		}
	}
	if e := trip.Eval([]int32{1, 0, 1}, mk(theta0), f); math.Abs(e) > 1e-12 {
		t.Errorf("energy at θ̄ = %g, want 0", e)
	}
	for _, dt := range []float64{-0.3, 0.3} {
		if e := trip.Eval([]int32{1, 0, 1}, mk(theta0+dt), f); e <= 0 {
			t.Errorf("energy at θ̄%+g = %g, want > 0", dt, e)
		}
	}
}

func TestStillingerWeberForces(t *testing.T) {
	m := NewStillingerWeberModel(SiliconSW(), 28.0855)
	checkForces(t, m.Terms[0], []int32{0, 0}, 100, 5, 1e-4)
	checkForces(t, m.Terms[1], []int32{0, 0, 0}, 100, 6, 1e-4)
}

func TestStillingerWeberDimerProperties(t *testing.T) {
	// The SW pair term has its minimum near the Si-Si dimer distance
	// (~2.35 Å) with depth ≈ -ε·(something near 1); check the minimum
	// exists inside the cutoff and the energy vanishes at the cutoff.
	m := NewStillingerWeberModel(SiliconSW(), 28.0855)
	pair := m.Terms[0]
	f := make([]geom.Vec3, 2)
	best, bestR := math.Inf(1), 0.0
	for r := 2.0; r < pair.Cutoff(); r += 0.001 {
		e := pair.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(r, 0, 0)}, f)
		if e < best {
			best, bestR = e, r
		}
	}
	if math.Abs(bestR-2.35) > 0.05 {
		t.Errorf("SW pair minimum at %g Å, want ≈ 2.35", bestR)
	}
	if math.Abs(best-(-2.1683)) > 0.05 {
		t.Errorf("SW pair well depth %g, want ≈ -ε = -2.1683", best)
	}
}

func TestTorsionForces(t *testing.T) {
	tor := NewTorsion(0.3, 2.0)
	checkForces(t, tor, []int32{0, 0, 0, 0}, 200, 7, 1e-4)
}

func TestTorsionDihedralValues(t *testing.T) {
	tor := NewTorsion(1.0, 10.0)
	f := make([]geom.Vec3, 4)
	// Planar cis chain: φ = 0 ⇒ angular factor 2K.
	cis := []geom.Vec3{geom.V(0, 1, 0), {}, geom.V(1, 0, 0), geom.V(1, 1, 0)}
	// Planar trans chain: φ = π ⇒ angular factor 0.
	trans := []geom.Vec3{geom.V(0, 1, 0), {}, geom.V(1, 0, 0), geom.V(1, -1, 0)}
	eCis := tor.Eval(nil, cis, f)
	eTrans := tor.Eval(nil, trans, f)
	if eTrans > 1e-12 {
		t.Errorf("trans energy %g, want 0", eTrans)
	}
	if eCis <= eTrans {
		t.Errorf("cis energy %g not above trans %g", eCis, eTrans)
	}
	// Envelope: energy → 0 as a link stretches to the cutoff.
	far := []geom.Vec3{geom.V(0, 9.99, 0), {}, geom.V(1, 0, 0), geom.V(1, 1, 0)}
	if e := tor.Eval(nil, far, f); math.Abs(e) > 1e-4 {
		t.Errorf("stretched-link energy %g, want ≈ 0", e)
	}
}

func TestTorsionCollinearChainIsFinite(t *testing.T) {
	tor := NewTorsion(1.0, 3.0)
	f := make([]geom.Vec3, 4)
	pos := []geom.Vec3{{}, geom.V(1, 0, 0), geom.V(2, 0, 0), geom.V(3, 0, 0)}
	e := tor.Eval(nil, pos, f)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("collinear chain energy %v", e)
	}
	for i, fv := range f {
		if !fv.IsFinite() {
			t.Fatalf("collinear chain force[%d] = %v", i, fv)
		}
	}
}

func TestModelValidation(t *testing.T) {
	for _, m := range []*Model{
		NewSilicaModel(),
		NewLJModel(1, 1, 2.5, 39.948),
		NewStillingerWeberModel(SiliconSW(), 28.0855),
		NewTorsionModel(0.3, 2.0, 1.0, 1.0, 2.5, 12.0),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := &Model{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Error("empty model validated")
	}
}

func TestModelMaxima(t *testing.T) {
	m := NewSilicaModel()
	if m.MaxN() != 3 {
		t.Errorf("MaxN = %d", m.MaxN())
	}
	if m.MaxCutoff() != 5.5 {
		t.Errorf("MaxCutoff = %g", m.MaxCutoff())
	}
	if r := m.Terms[1].Cutoff() / m.Terms[0].Cutoff(); math.Abs(r-0.47) > 0.01 {
		t.Errorf("r_cut3/r_cut2 = %g, paper quotes ≈ 0.47", r)
	}
	tm := NewTorsionModel(0.3, 2.0, 1.0, 1.0, 2.5, 12.0)
	if tm.MaxN() != 4 {
		t.Errorf("torsion model MaxN = %d", tm.MaxN())
	}
}

func TestSpeciesIndex(t *testing.T) {
	m := NewSilicaModel()
	if i, err := m.SpeciesIndex("O"); err != nil || i != 1 {
		t.Errorf("SpeciesIndex(O) = %d, %v", i, err)
	}
	if _, err := m.SpeciesIndex("Xe"); err == nil {
		t.Error("unknown species accepted")
	}
}
