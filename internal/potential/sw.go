package potential

import (
	"math"

	"sctuple/internal/geom"
)

// StillingerWeberParams holds the classic Stillinger-Weber silicon
// parameters (Stillinger & Weber, PRB 31, 5262 (1985)).
type StillingerWeberParams struct {
	Epsilon float64 // energy scale ε (eV)
	Sigma   float64 // length scale σ (Å)
	A, B    float64 // pair strengths
	P, Q    float64 // pair exponents
	ACut    float64 // reduced cutoff a: pair/triplet cutoff is a·σ
	Lambda  float64 // three-body strength λ
	Gamma   float64 // three-body decay γ
}

// SiliconSW returns the published silicon parameter set.
func SiliconSW() StillingerWeberParams {
	return StillingerWeberParams{
		Epsilon: 2.1683,
		Sigma:   2.0951,
		A:       7.049556277,
		B:       0.6022245584,
		P:       4,
		Q:       0,
		ACut:    1.80,
		Lambda:  21.0,
		Gamma:   1.20,
	}
}

// swPair is the Stillinger-Weber two-body term
//
//	V₂(r) = εA (B(σ/r)^p − (σ/r)^q) exp(σ/(r − aσ)),
//
// which vanishes with all derivatives at r = aσ.
type swPair struct {
	p  StillingerWeberParams
	rc float64
}

// NewStillingerWeberModel builds a single-species SW model (silicon by
// default via SiliconSW). The three-body part reuses the Vashishta
// bond-bending term, to which SW's h-function is mathematically
// identical: B = ελ, cosθ̄ = −1/3, γ' = γσ, r0 = aσ, C = 0.
func NewStillingerWeberModel(p StillingerWeberParams, mass float64) *Model {
	rc := p.ACut * p.Sigma
	trip := [][][]VashishtaTripletParams{
		{{{B: p.Epsilon * p.Lambda, CosTheta0: -1.0 / 3.0, C: 0, Gamma: p.Gamma * p.Sigma, R0: rc}}},
	}
	return &Model{
		Name:    "stillinger-weber",
		Species: []Species{{Name: "Si", Mass: mass}},
		Terms: []Term{
			&swPair{p: p, rc: rc},
			NewVashishtaTripletTerm(rc, trip),
		},
	}
}

// N returns 2.
func (s *swPair) N() int { return 2 }

// Cutoff returns aσ.
func (s *swPair) Cutoff() float64 { return s.rc }

// Eval implements Term for the pair (i, j).
func (s *swPair) Eval(_ []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	d := pos[0].Sub(pos[1])
	r2 := d.Norm2()
	if r2 >= s.rc*s.rc || r2 == 0 {
		return 0
	}
	r := math.Sqrt(r2)
	p := s.p
	sp := math.Pow(p.Sigma/r, p.P)
	sq := math.Pow(p.Sigma/r, p.Q)
	expf := math.Exp(p.Sigma / (r - s.rc))
	v := p.Epsilon * p.A * (p.B*sp - sq) * expf
	dv := p.Epsilon*p.A*(-p.P*p.B*sp/r+p.Q*sq/r)*expf -
		v*p.Sigma/((r-s.rc)*(r-s.rc))
	fv := d.Scale(-dv / r)
	f[0] = f[0].Add(fv)
	f[1] = f[1].Sub(fv)
	return v
}
