package potential

import (
	"fmt"
	"math"

	"sctuple/internal/geom"
)

// TabulatedPair replaces an arbitrary pair term with a lookup table
// over r², the standard production optimization for expensive pair
// functions (the Vashishta two-body part costs an exp, a pow, and two
// divisions per evaluation; the table costs one multiply-add per
// channel). Energy and the force scalar F(r)/r are linearly
// interpolated on a uniform r² grid, which avoids the square root in
// the hot path entirely.
//
// Interpolation error is O(Δ(r²)²·V″); Resolution ≈ 4096 keeps silica
// pair energies within ~10⁻⁶ eV of the analytic form (asserted in the
// tests).
type TabulatedPair struct {
	src        Term
	rc         float64
	rc2        float64
	inv        float64 // bins / rc²
	numSpecies int

	// tables[a*numSpecies+b] holds energy and force-over-r samples on
	// the r² grid for the species pair (a, b).
	energy [][]float64
	fOverR [][]float64
}

// NewTabulatedPair samples the given pair term on a grid with the
// given resolution (number of bins; 4096 is a good default) for all
// species pairs of a model with numSpecies species.
func NewTabulatedPair(src Term, numSpecies, resolution int) (*TabulatedPair, error) {
	if src.N() != 2 {
		return nil, fmt.Errorf("potential: can only tabulate pair terms, got n=%d", src.N())
	}
	if resolution < 16 {
		return nil, fmt.Errorf("potential: resolution %d too small", resolution)
	}
	if numSpecies < 1 {
		return nil, fmt.Errorf("potential: numSpecies %d < 1", numSpecies)
	}
	t := &TabulatedPair{
		src:        src,
		rc:         src.Cutoff(),
		rc2:        src.Cutoff() * src.Cutoff(),
		numSpecies: numSpecies,
	}
	t.inv = float64(resolution) / t.rc2
	pos := []geom.Vec3{{}, {}}
	f := []geom.Vec3{{}, {}}
	sp := []int32{0, 0}
	for a := 0; a < numSpecies; a++ {
		for b := 0; b < numSpecies; b++ {
			e := make([]float64, resolution+1)
			fr := make([]float64, resolution+1)
			for i := 0; i <= resolution; i++ {
				r2 := (float64(i) + 0.5) / t.inv // bin-center sampling
				if r2 >= t.rc2 {
					break
				}
				r := math.Sqrt(r2)
				// Keep out of the singular core: below 25% of the
				// cutoff the table clamps to its innermost sample;
				// physical configurations never get there.
				if r < 0.25*t.rc {
					continue
				}
				sp[0], sp[1] = int32(a), int32(b)
				pos[1] = geom.V(r, 0, 0)
				f[0], f[1] = geom.Vec3{}, geom.Vec3{}
				e[i] = t.src.Eval(sp, pos, f)
				// Eval put F_i = -dV/dr·r̂ on atom 0 pointing along -x
				// (atom 1 is at +x), so f[0].X = -(-dV/dr) ... recover
				// the radial scalar F/r = f[1].X / r.
				fr[i] = f[1].X / r
			}
			// Fill the core region with the innermost valid sample so
			// lookups stay finite.
			first := 0
			for first <= resolution && e[first] == 0 && fr[first] == 0 {
				first++
			}
			for i := 0; i < first && first <= resolution; i++ {
				e[i] = e[first]
				fr[i] = fr[first]
			}
			t.energy = append(t.energy, e)
			t.fOverR = append(t.fOverR, fr)
		}
	}
	return t, nil
}

// N returns 2.
func (t *TabulatedPair) N() int { return 2 }

// Cutoff returns the source term's cutoff.
func (t *TabulatedPair) Cutoff() float64 { return t.rc }

// Eval implements Term by table lookup with linear interpolation.
func (t *TabulatedPair) Eval(species []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	d := pos[0].Sub(pos[1])
	r2 := d.Norm2()
	if r2 >= t.rc2 || r2 == 0 {
		return 0
	}
	idx := int(species[0])*t.numSpecies + int(species[1])
	e := t.energy[idx]
	fr := t.fOverR[idx]
	x := r2*t.inv - 0.5
	if x < 0 {
		x = 0
	}
	i := int(x)
	if i >= len(e)-1 {
		i = len(e) - 2
	}
	w := x - float64(i)
	energy := e[i]*(1-w) + e[i+1]*w
	scalar := fr[i]*(1-w) + fr[i+1]*w
	// The table stores F/r for the force on atom 1 displaced along +x
	// from atom 0; for a repulsive interaction that scalar is positive
	// and the force on atom 0 points along d = r₀ − r₁.
	fv := d.Scale(scalar)
	f[0] = f[0].Add(fv)
	f[1] = f[1].Sub(fv)
	return energy
}

// TabulatedModel clones a model with every pair term replaced by its
// table. Terms with n ≠ 2 are kept as-is.
func TabulatedModel(m *Model, resolution int) (*Model, error) {
	out := &Model{
		Name:    m.Name + "-tabulated",
		Species: append([]Species(nil), m.Species...),
	}
	for _, term := range m.Terms {
		if term.N() == 2 {
			tab, err := NewTabulatedPair(term, len(m.Species), resolution)
			if err != nil {
				return nil, err
			}
			out.Terms = append(out.Terms, tab)
			continue
		}
		out.Terms = append(out.Terms, term)
	}
	return out, nil
}
