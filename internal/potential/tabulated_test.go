package potential

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
)

func TestTabulatedPairAccuracy(t *testing.T) {
	model := NewSilicaModel()
	src := model.Terms[0]
	tab, err := NewTabulatedPair(src, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pos := []geom.Vec3{{}, {}}
	fa := []geom.Vec3{{}, {}}
	fb := []geom.Vec3{{}, {}}
	for trial := 0; trial < 2000; trial++ {
		r := 1.6 + rng.Float64()*(src.Cutoff()-1.65)
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
		pos[1] = dir.Scale(r)
		sp := []int32{int32(rng.Intn(2)), int32(rng.Intn(2))}
		fa[0], fa[1], fb[0], fb[1] = geom.Vec3{}, geom.Vec3{}, geom.Vec3{}, geom.Vec3{}
		eSrc := src.Eval(sp, pos, fa)
		eTab := tab.Eval(sp, pos, fb)
		if math.Abs(eSrc-eTab) > 2e-5*(1+math.Abs(eSrc)) {
			t.Fatalf("r=%.3f sp=%v: energy %g vs table %g", r, sp, eSrc, eTab)
		}
		if d := fa[0].Sub(fb[0]).Norm(); d > 5e-4*(1+fa[0].Norm()) {
			t.Fatalf("r=%.3f sp=%v: force %v vs table %v", r, sp, fa[0], fb[0])
		}
	}
}

func TestTabulatedPairCutoffAndCore(t *testing.T) {
	tab, err := NewTabulatedPair(NewLennardJones(1, 1, 2.5), 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f := []geom.Vec3{{}, {}}
	if e := tab.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(2.6, 0, 0)}, f); e != 0 {
		t.Errorf("beyond-cutoff energy %g", e)
	}
	// Deep core stays finite (clamped to the innermost sample).
	e := tab.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(0.05, 0, 0)}, f)
	if math.IsInf(e, 0) || math.IsNaN(e) {
		t.Errorf("core energy %v", e)
	}
}

func TestTabulatedPairNewtonThirdLaw(t *testing.T) {
	tab, err := NewTabulatedPair(NewLennardJones(1, 1, 2.5), 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	f := []geom.Vec3{{}, {}}
	tab.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(1.2, 0.4, -0.3)}, f)
	if s := f[0].Add(f[1]).Norm(); s > 1e-12 {
		t.Errorf("forces sum to %g", s)
	}
}

func TestTabulatedPairValidation(t *testing.T) {
	model := NewSilicaModel()
	if _, err := NewTabulatedPair(model.Terms[1], 2, 1024); err == nil {
		t.Error("triplet term tabulated")
	}
	if _, err := NewTabulatedPair(model.Terms[0], 2, 4); err == nil {
		t.Error("tiny resolution accepted")
	}
	if _, err := NewTabulatedPair(model.Terms[0], 0, 1024); err == nil {
		t.Error("zero species accepted")
	}
}

func TestTabulatedModel(t *testing.T) {
	model := NewSilicaModel()
	tab, err := TabulatedModel(model, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.MaxN() != 3 || tab.MaxCutoff() != model.MaxCutoff() {
		t.Errorf("tabulated model shape changed: maxN %d cutoff %g", tab.MaxN(), tab.MaxCutoff())
	}
	if _, ok := tab.Terms[0].(*TabulatedPair); !ok {
		t.Error("pair term not tabulated")
	}
	if tab.Terms[1] != model.Terms[1] {
		t.Error("triplet term should be shared, not copied")
	}
}

func TestTabulatedPairForceDirection(t *testing.T) {
	// At short range LJ is repulsive: the force on atom 0 points away
	// from atom 1.
	tab, err := NewTabulatedPair(NewLennardJones(1, 1, 2.5), 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f := []geom.Vec3{{}, {}}
	tab.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(0.9, 0, 0)}, f)
	if f[0].X >= 0 {
		t.Errorf("repulsive force on atom 0 has X = %g, want < 0", f[0].X)
	}
	// Near the minimum (r ≈ 1.12σ) attraction: force on atom 0 toward
	// atom 1.
	f[0], f[1] = geom.Vec3{}, geom.Vec3{}
	tab.Eval([]int32{0, 0}, []geom.Vec3{{}, geom.V(1.5, 0, 0)}, f)
	if f[0].X <= 0 {
		t.Errorf("attractive force on atom 0 has X = %g, want > 0", f[0].X)
	}
}
